// CsrGraph must be an exact read-only replica of the Graph it snapshots:
// same counts, same port numbering, same edge ids, and port_to/has_edge
// answers identical to Graph's linear scan — the binary search over the
// sorted-neighbor permutation is only allowed to be faster, never
// different. Checked over the seeded random corpus plus the degenerate
// shapes (empty, single node, path, star) where off-by-ones in the offset
// array or the per-row sort would hide.
#include "graph/csr_graph.hpp"
#include "graph/generators.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

namespace cpr {
namespace {

void expect_equivalent(const Graph& g, const CsrGraph& c) {
  ASSERT_EQ(c.node_count(), g.node_count());
  ASSERT_EQ(c.edge_count(), g.edge_count());
  EXPECT_EQ(c.max_degree(), g.max_degree());

  for (NodeId v = 0; v < g.node_count(); ++v) {
    ASSERT_EQ(c.degree(v), g.degree(v)) << "v=" << v;
    const auto& row = g.neighbors(v);
    const auto span = c.neighbors(v);
    ASSERT_EQ(span.size(), row.size()) << "v=" << v;
    for (Port p = 0; p < row.size(); ++p) {
      // Port numbering is the contract: position p must be the same
      // Adjacency record in both views.
      EXPECT_EQ(c.neighbor(v, p), row[p].neighbor) << "v=" << v << " p=" << p;
      EXPECT_EQ(c.edge_at(v, p), row[p].edge) << "v=" << v << " p=" << p;
      EXPECT_EQ(span[p].neighbor, row[p].neighbor);
      EXPECT_EQ(span[p].edge, row[p].edge);
    }
  }

  // port_to / has_edge agree with Graph's answer for every ordered pair.
  // Simple graphs have at most one port per neighbor, so equality of the
  // port (not just of existence) is required.
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(c.port_to(u, v), g.port_to(u, v)) << "u=" << u << " v=" << v;
      EXPECT_EQ(c.has_edge(u, v), g.has_edge(u, v)) << "u=" << u << " v=" << v;
    }
  }

  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(c.edge(e).u, g.edge(e).u) << "e=" << e;
    EXPECT_EQ(c.edge(e).v, g.edge(e).v) << "e=" << e;
    EXPECT_EQ(c.opposite(e, g.edge(e).u), g.edge(e).v);
    EXPECT_EQ(c.opposite(e, g.edge(e).v), g.edge(e).u);
  }
  EXPECT_EQ(c.edges().size(), g.edges().size());
}

TEST(CsrGraph, EmptyGraph) {
  const Graph g;
  const CsrGraph c(g);
  EXPECT_EQ(c.node_count(), 0u);
  EXPECT_EQ(c.edge_count(), 0u);
}

TEST(CsrGraph, SingleNodeNoEdges) {
  const Graph g(1);
  const CsrGraph c(g);
  ASSERT_EQ(c.node_count(), 1u);
  EXPECT_EQ(c.degree(0), 0u);
  EXPECT_TRUE(c.neighbors(0).empty());
  EXPECT_EQ(c.port_to(0, 0), kInvalidPort);
}

TEST(CsrGraph, PathGraph) {
  Graph g(5);
  for (NodeId v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1);
  expect_equivalent(g, CsrGraph(g));
}

TEST(CsrGraph, StarGraph) {
  // High-degree hub: the row sort and binary search get a row that spans
  // multiple cache lines; the leaves get one-entry rows.
  Graph g(33);
  for (NodeId v = 1; v < 33; ++v) g.add_edge(0, v);
  const CsrGraph c(g);
  expect_equivalent(g, c);
  for (NodeId v = 1; v < 33; ++v) {
    EXPECT_EQ(c.neighbor(0, c.port_to(0, v)), v);
  }
}

TEST(CsrGraph, IsolatedNodesBetweenEdges) {
  // Zero-degree rows in the middle of the offset array.
  Graph g(6);
  g.add_edge(0, 5);
  g.add_edge(2, 5);
  expect_equivalent(g, CsrGraph(g));
  EXPECT_EQ(CsrGraph(g).degree(1), 0u);
  EXPECT_EQ(CsrGraph(g).degree(3), 0u);
}

TEST(CsrGraph, SnapshotDoesNotTrackLaterMutation) {
  Graph g(3);
  g.add_edge(0, 1);
  const CsrGraph c(g);
  g.add_edge(1, 2);
  EXPECT_EQ(c.edge_count(), 1u);
  EXPECT_FALSE(c.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(CsrGraph, PortToCrossoverBoundary) {
  // port_to switches from the linear row scan to the binary search when a
  // row exceeds kPortToLinearScanCutoff neighbors. Pin both sides of the
  // boundary: a hub of exactly cutoff neighbors (last row served by the
  // scan) and one of cutoff + 1 (first row served by the search) must
  // give identical, correct answers for hits and misses alike.
  constexpr std::size_t kCut = CsrGraph::kPortToLinearScanCutoff;
  for (const std::size_t hub_degree : {kCut, kCut + 1}) {
    // Hub 0 connects to nodes 2, 4, 6, ... so odd ids are guaranteed
    // misses inside the neighbor id range (not just past its ends).
    const std::size_t n = 2 * hub_degree + 2;
    Graph g(n);
    for (std::size_t i = 0; i < hub_degree; ++i) {
      g.add_edge(0, static_cast<NodeId>(2 * (i + 1)));
    }
    const CsrGraph c(g);
    ASSERT_EQ(c.degree(0), hub_degree);
    for (NodeId v = 1; v < n; ++v) {
      EXPECT_EQ(c.port_to(0, v), g.port_to(0, v))
          << "deg=" << hub_degree << " v=" << v;
      if (v % 2 == 0) {
        // Hit: the port must lead back to v (port p is slot p of the row).
        EXPECT_EQ(c.neighbor(0, c.port_to(0, v)), v) << "deg=" << hub_degree;
      } else {
        EXPECT_EQ(c.port_to(0, v), kInvalidPort) << "deg=" << hub_degree;
      }
    }
    EXPECT_EQ(c.port_to(0, 0), kInvalidPort);  // self is never a neighbor
  }
}

class CsrGraphSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrGraphSeeds, MatchesGraphOnRandomCorpus) {
  Rng rng(GetParam());
  const std::size_t n = 8 + rng.index(40);
  const double p = 0.05 + 0.3 * rng.real();
  const Graph g = erdos_renyi_connected(n, p, rng);
  expect_equivalent(g, CsrGraph(g));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CsrGraphSeeds,
                         ::testing::Range<std::uint64_t>(1, 51));

}  // namespace
}  // namespace cpr
