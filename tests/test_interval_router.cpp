// Classic interval routing: correctness on every pair plus the ablation
// claim — identical labels, but Θ(deg·log n) node state versus the
// heavy-path router's O(log n).
#include "graph/generators.hpp"
#include "scheme/interval_router.hpp"
#include "scheme/tree_router.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace cpr {
namespace {

std::vector<EdgeId> all_edges(const Graph& g) {
  std::vector<EdgeId> e(g.edge_count());
  std::iota(e.begin(), e.end(), EdgeId{0});
  return e;
}

class IntervalSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSeeds, DeliversOnRandomTrees) {
  Rng rng(GetParam());
  const Graph tree = random_tree(35, rng);
  const NodeId root = static_cast<NodeId>(rng.index(35));
  const IntervalRouter router(tree, all_edges(tree), root);
  for (NodeId s = 0; s < tree.node_count(); ++s) {
    for (NodeId t = 0; t < tree.node_count(); ++t) {
      const RouteResult r = simulate_route(router, tree, s, t);
      ASSERT_TRUE(r.delivered) << "s=" << s << " t=" << t;
      // Tree paths are unique, so hops must match the tree router's.
      const TreeRouter reference(tree, all_edges(tree), root);
      EXPECT_EQ(r.hops(), reference.tree_path(s, t).size() - 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, IntervalSeeds,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(IntervalRouter, DeliversOnPathAndStar) {
  for (const Graph& g : {path_graph(20), star(20)}) {
    const IntervalRouter router(g, all_edges(g), 0);
    for (NodeId s = 0; s < g.node_count(); ++s) {
      for (NodeId t = 0; t < g.node_count(); ++t) {
        EXPECT_TRUE(simulate_route(router, g, s, t).delivered);
      }
    }
  }
}

TEST(IntervalRouter, EmptyGraphThrowsInsteadOfIndexingOutOfBounds) {
  const Graph g(0);
  EXPECT_THROW(IntervalRouter(g, {}, 0), std::invalid_argument);
  EXPECT_THROW(TreeRouter(g, {}, 0), std::invalid_argument);
}

TEST(IntervalRouter, SingleNodeDeliversToItself) {
  const Graph g(1);
  const IntervalRouter router(g, {}, 0);
  const RouteResult r = simulate_route(router, g, 0, 0);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.hops(), 0u);
  // Out-of-range root on a non-empty graph is rejected the same way.
  EXPECT_THROW(IntervalRouter(g, {}, 1), std::invalid_argument);
}

TEST(IntervalRouter, DeliversOnStarRootedAtLeaf) {
  // Rooting at a leaf makes the hub an internal node with n-2 children —
  // the child binary search and the parent fallback both get exercised on
  // every cross-leaf route.
  const std::size_t n = 12;
  const Graph g = star(n);
  const IntervalRouter router(g, all_edges(g), /*root=*/3);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      const RouteResult r = simulate_route(router, g, s, t);
      ASSERT_TRUE(r.delivered) << "s=" << s << " t=" << t;
      EXPECT_LE(r.hops(), 2u);
    }
  }
}

TEST(IntervalRouter, HubPaysLinearMemoryOnStars) {
  // The ablation: per-child boundaries make the star hub Θ(n log n) while
  // the heavy-path scheme stays logarithmic there.
  const std::size_t n = 512;
  const Graph g = star(n);
  const IntervalRouter interval(g, all_edges(g), 0);
  const TreeRouter heavy(g, all_edges(g), 0);
  const double lg = std::log2(static_cast<double>(n));
  EXPECT_GT(interval.local_memory_bits(0), n);  // ≥ 1 boundary per child
  EXPECT_LE(heavy.local_memory_bits(0), 5 * lg + 16);
  // Leaves are cheap in both.
  EXPECT_LE(interval.local_memory_bits(1), 4 * lg + 16);
}

TEST(IntervalRouter, MatchesHeavyPathOnBoundedDegree) {
  // On a binary tree both schemes are logarithmic per node.
  const std::size_t n = 255;
  const Graph g = kary_tree(n, 2);
  const IntervalRouter interval(g, all_edges(g), 0);
  const TreeRouter heavy(g, all_edges(g), 0);
  const double lg = std::log2(static_cast<double>(n));
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_LE(interval.local_memory_bits(v), 6 * lg + 24) << "v=" << v;
    EXPECT_LE(heavy.local_memory_bits(v), 5 * lg + 16) << "v=" << v;
  }
}

TEST(IntervalRouter, LabelsAreBareDfsNumbers) {
  const Graph g = random_tree(64, *std::make_unique<Rng>(9));
  const IntervalRouter router(g, all_edges(g), 0);
  for (NodeId v = 0; v < 64; ++v) {
    EXPECT_EQ(router.label_bits(v), 6u);  // log2(64)
    EXPECT_LT(router.make_header(v), 64u);
  }
}

}  // namespace
}  // namespace cpr
