// Differential test harness: the batched query runtime (`route_batch`)
// cross-checked against exhaustive ground truth (routing/exhaustive.hpp)
// on a corpus of seeded random graphs, one algebra per Table-1 row shape:
//
//   S  (shortest path)   : Cowen scheme, algebraic stretch w(p) ⪯ w(p*)³
//                          (Theorem 3 / Lemma 4).
//   WS (widest-shortest) : regular lex product, same stretch-3 bound.
//   W  (widest path)     : selective ⇒ w³ = w, so the stretch bound
//                          collapses to exact preference; additionally the
//                          preferred spanning tree routes every pair
//                          exactly (Theorem 1).
//   SW (shortest-widest) : not isotone — Cowen/Dijkstra are off the table;
//                          the src-dest table scheme built from the exact
//                          solver must reproduce ground truth at stretch 1.
//
// Everything is routed through route_batch over a multithreaded pool, so a
// scheduling bug that reordered or crossed query state would surface as a
// weight mismatch here.
#include "algebra/primitives.hpp"
#include "routing/exhaustive.hpp"
#include "routing/shortest_widest.hpp"
#include "scheme/cowen.hpp"
#include "scheme/spanning_tree.hpp"
#include "scheme/srcdest_table.hpp"
#include "scheme/tree_router.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace cpr {
namespace {

// Corpus shape: ~50 seeds × 9 nodes keeps exhaustive enumeration instant
// while staying above the gadget sizes where schemes degenerate.
constexpr std::size_t kNodes = 9;
constexpr double kEdgeProbability = 0.35;

std::vector<std::pair<NodeId, NodeId>> all_pairs(std::size_t n) {
  std::vector<std::pair<NodeId, NodeId>> qs;
  qs.reserve(n * (n - 1));
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s != t) qs.emplace_back(s, t);
    }
  }
  return qs;
}

// Routes all pairs through the scheme in one batch and checks every
// delivered path against the exhaustive optimum at algebraic stretch ≤ k.
template <RoutingAlgebra A, CompactRoutingScheme S>
void expect_batch_within_stretch(const A& alg, const Graph& g,
                                 const EdgeMap<typename A::Weight>& w,
                                 const S& scheme, std::size_t k,
                                 ThreadPool& pool) {
  const auto truth = exhaustive_all_pairs(alg, g, w, &pool);
  const auto queries = all_pairs(g.node_count());
  const auto results = route_batch(scheme, g, queries, &pool);
  ASSERT_EQ(results.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto [s, t] = queries[i];
    ASSERT_TRUE(truth[s][t].traversable())
        << alg.name() << " s=" << s << " t=" << t;
    ASSERT_TRUE(results[i].delivered)
        << alg.name() << " s=" << s << " t=" << t;
    EXPECT_TRUE(test::path_weight_within_stretch(alg, g, w, results[i].path,
                                                 *truth[s][t].weight, k))
        << " s=" << s << " t=" << t;
  }
}

class DifferentialSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialSeeds, ShortestPathCowenStretch3) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, GetParam(), kNodes, kEdgeProbability);
  ThreadPool pool(4);
  CowenOptions opt;
  opt.pool = &pool;
  const auto scheme = CowenScheme<ShortestPath>::build(
      alg, inst.graph, inst.weights, inst.rng, opt);
  expect_batch_within_stretch(alg, inst.graph, inst.weights, scheme, 3, pool);
}

TEST_P(DifferentialSeeds, WidestShortestCowenStretch3) {
  const WidestShortest alg{ShortestPath{16}, WidestPath{8}};
  auto inst = test::seeded_instance(alg, GetParam(), kNodes, kEdgeProbability);
  ThreadPool pool(4);
  CowenOptions opt;
  opt.pool = &pool;
  const auto scheme = CowenScheme<WidestShortest>::build(
      alg, inst.graph, inst.weights, inst.rng, opt);
  expect_batch_within_stretch(alg, inst.graph, inst.weights, scheme, 3, pool);
}

TEST_P(DifferentialSeeds, WidestPathCowenCollapsesToExact) {
  // Selective algebra: w ⊕ w = w, so stretch ≤ 3 *is* exact preference —
  // the harness pins the collapse by asking for k = 1.
  const WidestPath alg{8};
  auto inst = test::seeded_instance(alg, GetParam(), kNodes, kEdgeProbability);
  ThreadPool pool(4);
  CowenOptions opt;
  opt.pool = &pool;
  const auto scheme = CowenScheme<WidestPath>::build(
      alg, inst.graph, inst.weights, inst.rng, opt);
  expect_batch_within_stretch(alg, inst.graph, inst.weights, scheme, 1, pool);
}

TEST_P(DifferentialSeeds, WidestPathSpanningTreeIsExact) {
  // Theorem 1: for selective + monotone algebras the preferred spanning
  // tree carries a preferred path for every pair, so tree routing is
  // stretch-free. Routed through route_batch over the tree router.
  const WidestPath alg{8};
  auto inst = test::seeded_instance(alg, GetParam(), kNodes, kEdgeProbability);
  const Graph& g = inst.graph;
  ThreadPool pool(4);
  const auto truth = exhaustive_all_pairs(alg, g, inst.weights, &pool);
  const auto tree_edges = preferred_spanning_tree(alg, g, inst.weights);
  const TreeRouter router(g, tree_edges, 0);
  const auto queries = all_pairs(g.node_count());
  const auto results = route_batch(router, g, queries, &pool);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto [s, t] = queries[i];
    ASSERT_TRUE(results[i].delivered) << "s=" << s << " t=" << t;
    EXPECT_TRUE(test::path_weight_order_equal(alg, g, inst.weights,
                                              results[i].path,
                                              *truth[s][t].weight))
        << " s=" << s << " t=" << t;
  }
}

TEST_P(DifferentialSeeds, ShortestWidestSrcDestTablesAreExact) {
  // SW is monotone but not isotone: no Cowen scheme, no Dijkstra. The
  // paper's fallback — per-(source, destination) tables filled from the
  // exact solver — must reproduce the exhaustive optimum at stretch 1.
  const ShortestWidest alg;
  Rng rng(GetParam());
  const Graph g = erdos_renyi_connected(kNodes, kEdgeProbability, rng);
  const auto w = test::random_sw_weights(g, rng);
  ThreadPool pool(4);
  const auto truth = exhaustive_all_pairs(alg, g, w, &pool);
  std::vector<std::vector<NodePath>> paths(g.node_count());
  for (NodeId s = 0; s < g.node_count(); ++s) {
    paths[s] = shortest_widest_exact(alg, g, w, s).paths;
  }
  const SourceDestTableScheme scheme(g, paths);
  const auto queries = all_pairs(g.node_count());
  const auto results = route_batch(scheme, g, queries, &pool);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto [s, t] = queries[i];
    ASSERT_TRUE(results[i].delivered) << "s=" << s << " t=" << t;
    EXPECT_TRUE(test::path_weight_order_equal(alg, g, w, results[i].path,
                                              *truth[s][t].weight))
        << " s=" << s << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphCorpus, DifferentialSeeds,
                         ::testing::Range<std::uint64_t>(1, 51));

}  // namespace
}  // namespace cpr
