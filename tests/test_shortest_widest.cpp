// The exact shortest-widest solver against exhaustive ground truth (SW is
// the algebra where Dijkstra is unsound, so this solver is the scalable
// reference for the Table-1 SW row and the source-destination tables).
#include "graph/generators.hpp"
#include "routing/exhaustive.hpp"
#include "routing/shortest_widest.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

namespace cpr {
namespace {

using test::random_sw_weights;

class SwSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwSeeds, MatchesExhaustiveOnRandomGraphs) {
  Rng rng(GetParam());
  const ShortestWidest sw;
  const Graph g = erdos_renyi_connected(9, 0.35, rng);
  const auto w = random_sw_weights(g, rng);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto row = shortest_widest_exact(sw, g, w, s);
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s == t) continue;
      const auto truth = exhaustive_preferred(sw, g, w, s, t);
      ASSERT_TRUE(truth.traversable());
      ASSERT_TRUE(row.weight[t].has_value()) << "s=" << s << " t=" << t;
      EXPECT_TRUE(order_equal(sw, *row.weight[t], *truth.weight))
          << "s=" << s << " t=" << t << " exact=" << sw.to_string(*row.weight[t])
          << " truth=" << sw.to_string(*truth.weight);
      // The returned explicit path realizes the weight.
      EXPECT_TRUE(test::path_weight_order_equal(sw, g, w, row.paths[t],
                                                *row.weight[t]))
          << " s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SwSeeds,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(ShortestWidestExact, PrefersWiderOverCheaper) {
  // 0-1: cap 1, cost 1. 0-2-1: caps 5, costs 10 each. Widest wins even
  // though it is 20x more expensive.
  const ShortestWidest sw;
  Graph g(3);
  EdgeMap<ShortestWidest::Weight> w;
  g.add_edge(0, 1);
  w.push_back({1, 1});
  g.add_edge(0, 2);
  w.push_back({5, 10});
  g.add_edge(2, 1);
  w.push_back({5, 10});
  const auto row = shortest_widest_exact(sw, g, w, 0);
  ASSERT_TRUE(row.weight[1].has_value());
  EXPECT_EQ(row.weight[1]->first, 5u);
  EXPECT_EQ(row.weight[1]->second, 20u);
  EXPECT_EQ(row.paths[1], (NodePath{0, 2, 1}));
}

TEST(ShortestWidestExact, AmongWidestPicksCheapest) {
  // Two disjoint cap-4 routes with costs 9 and 3.
  const ShortestWidest sw;
  Graph g(4);
  EdgeMap<ShortestWidest::Weight> w;
  g.add_edge(0, 2);
  w.push_back({4, 5});
  g.add_edge(2, 1);
  w.push_back({4, 4});
  g.add_edge(0, 3);
  w.push_back({4, 1});
  g.add_edge(3, 1);
  w.push_back({4, 2});
  const auto row = shortest_widest_exact(sw, g, w, 0);
  EXPECT_EQ(row.weight[1]->first, 4u);
  EXPECT_EQ(row.weight[1]->second, 3u);
  EXPECT_EQ(row.paths[1], (NodePath{0, 3, 1}));
}

TEST(ShortestWidestExact, ZeroCapacityIsUnreachable) {
  const ShortestWidest sw;
  Graph g(3);
  EdgeMap<ShortestWidest::Weight> w;
  g.add_edge(0, 1);
  w.push_back({3, 1});
  g.add_edge(1, 2);
  w.push_back({0, 1});  // φ capacity
  const auto row = shortest_widest_exact(sw, g, w, 0);
  EXPECT_TRUE(row.weight[1].has_value());
  EXPECT_FALSE(row.weight[2].has_value());
}

}  // namespace
}  // namespace cpr
