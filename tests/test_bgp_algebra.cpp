// The BGP algebras: exact reproduction of composition Tables 2 and 3,
// preference orders, the first-label structural fact, monotonicity, and
// the deliberate failures (non-commutativity, non-delimitedness).
#include "algebra/property_check.hpp"
#include "bgp/bgp_algebra.hpp"

#include <gtest/gtest.h>

namespace cpr {
namespace {

constexpr BgpLabel C = BgpLabel::kCustomer;
constexpr BgpLabel R = BgpLabel::kPeer;
constexpr BgpLabel P = BgpLabel::kProvider;
constexpr BgpLabel PHI = BgpLabel::kPhi;

TEST(B1, Table2Composition) {
  const B1ProviderCustomer b1;
  // Table 2: rows are the first operand.
  EXPECT_EQ(b1.combine(C, C), C);
  EXPECT_EQ(b1.combine(C, P), PHI);  // valley: down then up
  EXPECT_EQ(b1.combine(P, C), P);
  EXPECT_EQ(b1.combine(P, P), P);
  EXPECT_EQ(b1.combine(PHI, C), PHI);
  EXPECT_EQ(b1.combine(C, PHI), PHI);
}

TEST(B2B3, Table3Composition) {
  const B2ValleyFree b2;
  const BgpLabel all[] = {C, R, P};
  const BgpLabel expected[3][3] = {
      {C, PHI, PHI},  // c ⊕ {c,r,p}
      {R, PHI, PHI},  // r ⊕ {c,r,p}
      {P, P, P},      // p ⊕ {c,r,p}
  };
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(b2.combine(all[i], all[j]), expected[i][j])
          << to_cstr(all[i]) << " ⊕ " << to_cstr(all[j]);
      // B3 shares the composition table; only preference differs.
      EXPECT_EQ(B3LocalPref{}.combine(all[i], all[j]), expected[i][j]);
    }
  }
}

TEST(B1B2, AllTraversablePathsEquallyPreferred) {
  const B1ProviderCustomer b1;
  EXPECT_TRUE(order_equal(b1, C, P));
  EXPECT_TRUE(b1.less(C, PHI));
  EXPECT_TRUE(b1.less(P, PHI));
  const B2ValleyFree b2;
  EXPECT_TRUE(order_equal(b2, C, R));
  EXPECT_TRUE(order_equal(b2, R, P));
}

TEST(B3, LocalPrefOrdersCustomerFirst) {
  const B3LocalPref b3;
  EXPECT_TRUE(b3.less(C, R));
  EXPECT_TRUE(b3.less(R, P));
  EXPECT_TRUE(b3.less(C, P));
  EXPECT_TRUE(b3.less(P, PHI));
  EXPECT_FALSE(b3.less(R, C));
}

TEST(BgpAlgebras, NotCommutativeNotDelimited) {
  const B1ProviderCustomer b1;
  EXPECT_NE(b1.combine(C, P), b1.combine(P, C));
  EXPECT_TRUE(b1.is_phi(b1.combine(C, P)));  // finite ⊕ finite = φ
  EXPECT_TRUE(b1.properties().right_associative_only);
  EXPECT_FALSE(b1.properties().delimited);
  Rng rng(1);
  const PropertyReport r = check_properties_sampled(b1, rng, 16);
  EXPECT_FALSE(r.commutative);
  EXPECT_FALSE(r.delimited);
  EXPECT_TRUE(r.monotone);  // prepending never improves
}

TEST(BgpAlgebras, MonotoneButNotIsotoneLikeThePaperSays) {
  // "B1 is monotone, but not regular neither delimited."
  const B3LocalPref b3;
  const AlgebraProperties p = b3.properties();
  EXPECT_TRUE(p.monotone);
  EXPECT_FALSE(p.isotone);
  EXPECT_FALSE(p.regular());
  // Concrete isotonicity failure in B3: c ⪯ p, but prepending c gives
  // c⊕c = c ≺ φ = c⊕p reversed... check the definitional direction:
  // a ⪯ b must imply x⊕a ⪯ x⊕b; take a = c, b = p, x = c:
  // c⊕c = c and c⊕p = φ, fine (c ⪯ φ). Take a = c ⪯ b = r, x = r:
  // r⊕c = r, r⊕r = φ, still ordered. The violation needs the other
  // direction: a = r ⪯ b = p with x = p: p⊕r = p ⪯ p⊕p = p. Isotonicity
  // actually survives these spot checks — the paper's "not regular"
  // rests on non-associativity/commutativity; pin that instead.
  Rng rng(2);
  const PropertyReport r = check_properties_sampled(b3, rng, 16);
  EXPECT_FALSE(r.commutative);
}

TEST(BgpAlgebras, FirstLabelDeterminesPathWeight) {
  // Structural fact used by the valley-free solver: the weight of any
  // traversable label sequence equals its first label.
  const B2ValleyFree b2;
  const std::vector<std::vector<BgpLabel>> traversable = {
      {P, P, R, C, C}, {P, C}, {R, C, C}, {C, C, C}, {P, R}, {P}, {C}, {R},
  };
  for (const auto& seq : traversable) {
    EXPECT_EQ(path_weight(b2, seq), seq.front());
  }
  const std::vector<std::vector<BgpLabel>> valleys = {
      {C, P}, {C, R}, {R, R}, {R, P}, {C, C, P}, {P, C, P}, {P, R, R},
  };
  for (const auto& seq : valleys) {
    EXPECT_EQ(path_weight(b2, seq), PHI);
  }
}

TEST(B4, LexicographicWithPathLength) {
  const B4LocalPrefShortest b4;
  using W = B4LocalPrefShortest::Weight;
  const W customer_long{C, 10}, provider_short{P, 1}, customer_short{C, 2};
  // Customer routes beat provider routes regardless of length...
  EXPECT_TRUE(b4.less(customer_long, provider_short));
  // ...and length breaks ties within a class.
  EXPECT_TRUE(b4.less(customer_short, customer_long));
  // Composition: labels compose by Table 3, lengths add.
  const W w = b4.combine({P, 1}, {C, 3});
  EXPECT_EQ(w.first, P);
  EXPECT_EQ(w.second, 4u);
  EXPECT_TRUE(b4.is_phi(b4.combine({C, 1}, {P, 1})));
  EXPECT_TRUE(b4.properties().monotone);
  EXPECT_FALSE(b4.properties().delimited);
}

TEST(BgpAlgebras, SamplesStayFinite) {
  Rng rng(3);
  const B1ProviderCustomer b1;
  const B2ValleyFree b2;
  for (int i = 0; i < 200; ++i) {
    const BgpLabel w1 = b1.sample(rng);
    EXPECT_TRUE(w1 == C || w1 == P);
    const BgpLabel w2 = b2.sample(rng);
    EXPECT_TRUE(w2 == C || w2 == R || w2 == P);
  }
}

TEST(BgpAlgebras, Rendering) {
  EXPECT_EQ(B1ProviderCustomer{}.name(), "B1 provider-customer");
  EXPECT_EQ(B2ValleyFree{}.name(), "B2 valley-free");
  EXPECT_EQ(B3LocalPref{}.name(), "B3 local-pref");
  EXPECT_EQ(B1ProviderCustomer{}.to_string(C), "c");
  EXPECT_EQ(B3LocalPref{}.to_string(PHI), "phi");
}

}  // namespace
}  // namespace cpr
