// The generalized Cowen scheme (Theorem 3): delivery and algebraic
// stretch ≤ 3 on regular algebras, ball-strictness behaviour, landmark
// promotion, and the sublinearity of the tables on strictly monotone
// algebras.
#include "algebra/primitives.hpp"
#include "graph/generators.hpp"
#include "routing/shortest_widest.hpp"
#include "scheme/cowen.hpp"
#include "scheme/dest_table.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cpr {
namespace {

template <RoutingAlgebra A>
void expect_stretch3(const A& alg, std::uint64_t seed, std::size_t n,
                     CowenOptions opt = {}) {
  auto inst = test::seeded_instance(alg, seed, n, 0.25);
  const Graph& g = inst.graph;
  const auto& w = inst.weights;
  const auto scheme = CowenScheme<A>::build(alg, g, w, inst.rng, opt);
  // Independent ground truth: the default build is streaming and keeps no
  // resident trees, so the stretch bound is checked against a fresh
  // all-pairs sweep rather than scheme internals.
  const auto truth = all_pairs_trees(alg, g, w);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      const RouteResult r = simulate_route(scheme, g, s, t);
      ASSERT_TRUE(r.delivered) << alg.name() << " s=" << s << " t=" << t;
      if (s == t) continue;
      const auto preferred = truth[t].weight(s);
      ASSERT_TRUE(preferred.has_value());
      EXPECT_TRUE(test::path_weight_within_stretch(alg, g, w, r.path,
                                                   *preferred, 3))
          << " s=" << s << " t=" << t;
    }
  }
}

class CowenSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CowenSeeds, ShortestPathStretch3) {
  expect_stretch3(ShortestPath{16}, GetParam(), 24);
}
TEST_P(CowenSeeds, MostReliableStretch3) {
  expect_stretch3(MostReliablePath{}, GetParam(), 20);
}
TEST_P(CowenSeeds, WidestShortestStretch3) {
  expect_stretch3(WidestShortest{ShortestPath{16}, WidestPath{8}},
                  GetParam(), 20);
}
TEST_P(CowenSeeds, WidestPathNonStrictBalls) {
  // Weakly monotone: correctness requires non-strict balls (the auto
  // choice). Stretch collapses to "preferred" because w^3 = w.
  expect_stretch3(WidestPath{8}, GetParam(), 16);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CowenSeeds,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(Cowen, AutoBallStrictnessFollowsSm) {
  Rng rng(1);
  const Graph g = erdos_renyi_connected(16, 0.3, rng);
  {
    const auto w = test::integer_weights(g, rng, 1, 9);
    const auto s =
        CowenScheme<ShortestPath>::build(ShortestPath{}, g, w, rng);
    EXPECT_TRUE(s.strict_balls());
  }
  {
    const auto w = test::integer_weights(g, rng, 1, 9);
    const auto s = CowenScheme<WidestPath>::build(WidestPath{}, g, w, rng);
    EXPECT_FALSE(s.strict_balls());
  }
}

TEST(Cowen, LandmarkPromotionCapsClusters) {
  Rng rng(2);
  const Graph g = erdos_renyi_connected(60, 0.15, rng);
  const auto w = test::integer_weights(g, rng, 1, 50);
  CowenOptions opt;
  opt.initial_landmarks = 2;  // tiny start forces promotion
  opt.cluster_cap = 8;
  const auto s =
      CowenScheme<ShortestPath>::build(ShortestPath{}, g, w, rng, opt);
  for (NodeId u = 0; u < 60; ++u) {
    EXPECT_LE(s.cluster_size(u), 8u) << "u=" << u;
  }
  EXPECT_GE(s.landmark_count(), 2u);
}

TEST(Cowen, LabelsAreThreeFieldsOfLogN) {
  Rng rng(3);
  const std::size_t n = 64;
  const Graph g = erdos_renyi_connected(n, 0.2, rng);
  const auto w = test::integer_weights(g, rng, 1, 9);
  const auto s = CowenScheme<ShortestPath>::build(ShortestPath{}, g, w, rng);
  const double lg = std::log2(static_cast<double>(n));
  const double lgd = std::log2(static_cast<double>(g.max_degree()) + 1);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_LE(s.label_bits(v), 2 * lg + lgd + 3) << "v=" << v;
  }
}

TEST(Cowen, TablesBeatFullTablesOnLargerGraphs) {
  // On a 300-node sparse graph the Cowen tables must undercut the
  // destination-table baseline at the worst node (Õ(√n) vs Θ(n log d)).
  Rng rng(4);
  const std::size_t n = 600;
  const Graph g = erdos_renyi_connected(n, 0.015, rng);
  const auto w = test::integer_weights(g, rng, 1, 1000);
  const auto cowen =
      CowenScheme<ShortestPath>::build(ShortestPath{}, g, w, rng);
  const auto tables =
      DestinationTableScheme::from_algebra(ShortestPath{}, g, w);
  const auto fp_cowen = measure_footprint(cowen, n);
  const auto fp_tables = measure_footprint(tables, n);
  EXPECT_LT(fp_cowen.max_node_bits, fp_tables.max_node_bits / 2);
  EXPECT_GT(fp_cowen.max_node_bits, 0u);
}

TEST(Cowen, HeaderCodecRoundTripsAtReportedSize) {
  Rng rng(8);
  const std::size_t n = 48;
  const Graph g = erdos_renyi_connected(n, 0.2, rng);
  const auto w = test::integer_weights(g, rng, 1, 99);
  const auto s = CowenScheme<ShortestPath>::build(ShortestPath{}, g, w, rng);
  for (NodeId v = 0; v < n; ++v) {
    const auto header = s.make_header(v);
    const auto [bytes, bits] = s.encode_header(header);
    EXPECT_EQ(bits, s.label_bits(v));
    const auto decoded = s.decode_header(bytes);
    EXPECT_EQ(decoded.target, header.target);
    EXPECT_EQ(decoded.landmark, header.landmark);
    EXPECT_EQ(decoded.port_at_landmark, header.port_at_landmark);
  }
}

TEST(Cowen, EveryNodeLandmarkDegeneratesGracefully) {
  // Forcing all nodes to be landmarks yields pure landmark routing:
  // stretch 1, tables of size n-1 (like destination tables).
  Rng rng(5);
  const Graph g = erdos_renyi_connected(12, 0.4, rng);
  const auto w = test::integer_weights(g, rng, 1, 9);
  CowenOptions opt;
  opt.initial_landmarks = 12;
  const auto s =
      CowenScheme<ShortestPath>::build(ShortestPath{}, g, w, rng, opt);
  EXPECT_EQ(s.landmark_count(), 12u);
  for (NodeId st = 0; st < 12; ++st) {
    for (NodeId t = 0; t < 12; ++t) {
      EXPECT_TRUE(simulate_route(s, g, st, t).delivered);
    }
  }
}

}  // namespace
}  // namespace cpr
