// Differential coverage for the compiled forwarding plane.
//
// Property, per seed of the random-graph corpus and per scheme family
// (heavy-path tree, interval, Cowen landmarks, RLE tables): the compiled
// FlatFib served by forward_batch is *bit-identical* — delivered flags
// and full hop-by-hop paths — to the object-based oracle
// (route_batch_object / simulate_route_with_failures), at 1 and 8
// threads, both freshly compiled and after a serialize → from_blob round
// trip. Plus: corrupted blobs (every byte position) and truncated blobs
// are rejected by the validating loader instead of misrouting.
#include "algebra/primitives.hpp"
#include "bgp/bgp_schemes.hpp"
#include "fib/compile.hpp"
#include "fib/forward_engine.hpp"
#include "routing/dijkstra.hpp"
#include "scheme/compressed_table.hpp"
#include "scheme/cowen.hpp"
#include "scheme/dest_table.hpp"
#include "scheme/interval_router.hpp"
#include "scheme/spanning_tree.hpp"
#include "scheme/tree_router.hpp"
#include "scheme/tz_name_independent.hpp"
#include "sim/resilience.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

namespace cpr {
namespace {

constexpr std::size_t kCorpusSeeds = 50;
constexpr std::size_t kN = 18;
constexpr double kP = 0.25;

std::vector<std::pair<NodeId, NodeId>> all_pairs(std::size_t n) {
  std::vector<std::pair<NodeId, NodeId>> q;
  q.reserve(n * n);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) q.emplace_back(s, t);
  }
  return q;
}

// next_hop[t][u] = neighbor of u toward t along the preferred tree of t.
template <RoutingAlgebra A>
std::vector<std::vector<NodeId>> preferred_next_hops(
    const A& alg, const Graph& g, const EdgeMap<typename A::Weight>& w) {
  const auto trees = all_pairs_trees(alg, CsrGraph(g), w);
  std::vector<std::vector<NodeId>> next(g.node_count());
  for (NodeId t = 0; t < g.node_count(); ++t) next[t] = trees[t].parent;
  return next;
}

// forward_batch output == oracle RouteResults, element by element.
void expect_identical(const std::vector<RouteResult>& oracle,
                      const FibBatchOutput& out, const char* what) {
  ASSERT_EQ(oracle.size(), out.results.size()) << what;
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(oracle[i].delivered, out.results[i].delivered != 0)
        << what << " query " << i;
    const auto path = out.path(i);
    ASSERT_EQ(oracle[i].path.size(), path.size()) << what << " query " << i;
    for (std::size_t k = 0; k < path.size(); ++k) {
      EXPECT_EQ(oracle[i].path[k], path[k])
          << what << " query " << i << " hop " << k;
    }
  }
}

// The full differential + round-trip battery for one built scheme.
template <typename S>
void check_family(const S& scheme, const Graph& g, std::uint64_t seed,
                  const char* family) {
  SCOPED_TRACE(testing::Message() << family << " seed " << seed);
  const auto queries = all_pairs(g.node_count());
  ThreadPool pool1(1), pool8(8);
  const auto oracle = route_batch_object(scheme, g, queries, &pool1);

  const FlatFib fib = compile_fib(scheme, g);
  for (ThreadPool* pool : {&pool1, &pool8}) {
    FibBatchOptions opt;
    opt.pool = pool;
    expect_identical(oracle, forward_batch(fib, queries, opt), "compiled");
  }

  // Serialize → zero-copy reload → identical answers, no reconstruction.
  const auto blob = fib.blob();
  const FlatFib reloaded =
      FlatFib::from_blob({blob.data(), blob.size()});
  EXPECT_EQ(reloaded.kind(), fib.kind());
  EXPECT_EQ(reloaded.node_count(), fib.node_count());
  {
    FibBatchOptions opt;
    opt.pool = &pool8;
    expect_identical(oracle, forward_batch(reloaded, queries, opt),
                     "reloaded");
  }

  // The rewired public route_batch dispatches to the compiled plane and
  // must agree with the object oracle too.
  const auto rewired = route_batch(scheme, g, queries, &pool8);
  ASSERT_EQ(rewired.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(oracle[i].delivered, rewired[i].delivered) << "query " << i;
    EXPECT_EQ(oracle[i].path, rewired[i].path) << "query " << i;
  }

  // Failure mode: dead-edge drops + loop detection against the
  // step-by-step oracle, paths included.
  Rng fail_rng(seed ^ 0xf00dull);
  std::vector<bool> down(g.edge_count(), false);
  for (std::size_t e :
       fail_rng.sample_without_replacement(g.edge_count(),
                                           g.edge_count() / 5)) {
    down[e] = true;
  }
  FibBatchOptions fopt;
  fopt.pool = &pool8;
  fopt.edge_down = &down;
  const FibBatchOutput failed = forward_batch(fib, queries, fopt);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto [s, t] = queries[i];
    const RouteResult r = simulate_route_with_failures(scheme, g, down, s, t);
    EXPECT_EQ(r.delivered, failed.results[i].delivered != 0)
        << "failure query " << i;
    EXPECT_EQ(r.looped, failed.results[i].looped != 0)
        << "failure query " << i;
    const auto path = failed.path(i);
    ASSERT_EQ(r.path.size(), path.size()) << "failure query " << i;
    for (std::size_t k = 0; k < path.size(); ++k) {
      EXPECT_EQ(r.path[k], path[k]) << "failure query " << i << " hop " << k;
    }
  }
}

class FibSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FibSeeds, TreeFamilyMatchesObjectPath) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, GetParam(), kN, kP);
  const auto scheme =
      SpanningTreeScheme<ShortestPath>::build(alg, inst.graph, inst.weights);
  check_family(scheme, inst.graph, GetParam(), "tree");
}

TEST_P(FibSeeds, IntervalFamilyMatchesObjectPath) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, GetParam(), kN, kP);
  const IntervalRouter router(
      inst.graph, preferred_spanning_tree(alg, inst.graph, inst.weights));
  check_family(router, inst.graph, GetParam(), "interval");
}

TEST_P(FibSeeds, CowenFamilyMatchesObjectPath) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, GetParam(), kN, kP);
  const auto scheme = CowenScheme<ShortestPath>::build(alg, inst.graph,
                                                       inst.weights, inst.rng);
  check_family(scheme, inst.graph, GetParam(), "cowen");
}

// Name-independent TZ: queries address external *names*; the compiled
// kTz arena resolves them through the bucketed dictionary and forwards
// in label space. The same generic battery applies — the oracle is the
// scheme's own object path, and the non-identity label permutation (the
// build draws one explicitly) means any node-id/label confusion in the
// walker or the compile adapter misroutes immediately.
TEST_P(FibSeeds, TzFamilyMatchesObjectPath) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, GetParam(), kN, kP);
  const auto scheme = TzNameIndependentScheme<ShortestPath>::build(
      alg, inst.graph, inst.weights, inst.rng);
  ASSERT_FALSE(scheme.labels().is_identity());
  check_family(scheme, inst.graph, GetParam(), "tz");
}

TEST_P(FibSeeds, TableFamilyMatchesObjectPath) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, GetParam(), kN, kP);
  const Graph& g = inst.graph;
  const auto tree_edges = preferred_spanning_tree(alg, g, inst.weights);
  const RootedTree tree = RootedTree::from_edges(g, tree_edges, 0);
  const CompressedTableScheme scheme(
      g, preferred_next_hops(alg, g, inst.weights),
      CompressedTableScheme::dfs_relabeling(g, tree.parent, 0));
  check_family(scheme, g, GetParam(), "table");
}

INSTANTIATE_TEST_SUITE_P(Corpus, FibSeeds,
                         ::testing::Range<std::uint64_t>(0, kCorpusSeeds));

// ---- Blob validation ----

FlatFib sample_fib() {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, 7, kN, kP);
  const auto scheme = CowenScheme<ShortestPath>::build(alg, inst.graph,
                                                       inst.weights, inst.rng);
  return compile_fib(scheme, inst.graph);
}

FlatFib sample_tz_fib() {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, 7, kN, kP);
  const auto scheme = TzNameIndependentScheme<ShortestPath>::build(
      alg, inst.graph, inst.weights, inst.rng);
  return compile_fib(scheme, inst.graph);
}

void expect_every_byte_flip_rejected(const FlatFib& fib) {
  const auto blob = fib.blob();
  const std::vector<std::uint8_t> bytes(blob.begin(), blob.end());
  // Every byte of the blob is guarded: header and directory fields by
  // explicit validation, padding by the all-zeros checks, sections by the
  // FNV checksum. Flip one bit per byte position and expect a loud throw.
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[pos] ^= 0x20;
    EXPECT_THROW(FlatFib::from_blob(corrupt), std::runtime_error)
        << "undetected corruption at byte " << pos;
  }
}

TEST(FibBlob, EveryByteFlipIsRejected) {
  expect_every_byte_flip_rejected(sample_fib());
}

// The v4 sections (label map, dictionary) are covered by the same FNV
// checksum and the same structural validation as everything else; a v4
// blob must reject every single-byte flip just like a v3 one.
TEST(FibBlob, TzEveryByteFlipIsRejected) {
  const FlatFib fib = sample_tz_fib();
  ASSERT_EQ(fib.blob_version(), 4u);
  expect_every_byte_flip_rejected(fib);
}

TEST(FibBlob, TruncationIsRejected) {
  const FlatFib fib = sample_fib();
  const auto blob = fib.blob();
  const std::vector<std::uint8_t> bytes(blob.begin(), blob.end());
  for (const double frac : {0.0, 0.1, 0.25, 0.5, 0.75, 0.99}) {
    const std::size_t keep =
        static_cast<std::size_t>(static_cast<double>(bytes.size()) * frac);
    const std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + keep);
    EXPECT_THROW(FlatFib::from_blob(cut), std::runtime_error)
        << "undetected truncation to " << keep << " bytes";
  }
}

TEST(FibBlob, EmptyAndGarbageInputsAreRejected) {
  EXPECT_THROW(FlatFib::from_blob({}), std::runtime_error);
  const std::vector<std::uint8_t> garbage(256, 0xab);
  EXPECT_THROW(FlatFib::from_blob(garbage), std::runtime_error);
}

// ---- Degenerate graphs ----
//
// v2 legalizes node_count == 0, and single-node / single-edge graphs hit
// every boundary condition in the per-kind validators (empty CSRs,
// sentinel-only offset arrays, rootless trees). Every compiled family
// must round-trip through blob() → from_blob and keep forwarding.

// Serialize → reload → serve an (empty) batch; validation must accept.
void expect_degenerate_roundtrip(const FlatFib& fib, std::size_t n) {
  EXPECT_EQ(fib.node_count(), n);
  const auto blob = fib.blob();
  const FlatFib reloaded = FlatFib::from_blob({blob.data(), blob.size()});
  EXPECT_EQ(reloaded.kind(), fib.kind());
  EXPECT_EQ(reloaded.node_count(), n);
  const auto queries = all_pairs(n);
  FibBatchOptions opt;
  const FibBatchOutput out = forward_batch(reloaded, queries, opt);
  ASSERT_EQ(out.results.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    // On these tiny connected graphs every pair must deliver.
    EXPECT_EQ(out.results[i].delivered != 0, true) << "query " << i;
  }
}

// The empty graph has no scheme builders, so assemble the minimal valid
// arena of each kind by hand: sentinel-only offset arrays and zero-length
// payload sections.
TEST(FibDegenerate, EmptyGraphRoundTripsEveryKind) {
  const Graph g(0);
  const std::vector<std::uint32_t> sentinel{0};
  const std::vector<std::uint32_t> none;
  {
    FibBuilder b(FibKind::kTree, 0);
    b.add_topology(g);
    b.add_array(fib_section::kTreeNodes, std::vector<FibTreeNode>(1));
    b.add_array(fib_section::kTreeLightPorts, none);
    b.add_array(fib_section::kTreeLabelOff, sentinel);
    b.add_array(fib_section::kTreeLabelSeq, none);
    expect_degenerate_roundtrip(b.finish(), 0);
  }
  {
    FibBuilder b(FibKind::kInterval, 0);
    b.add_topology(g);
    b.add_array(fib_section::kIntervalNodes, std::vector<FibIntervalNode>(1));
    b.add_array(fib_section::kIntervalChildIn, none);
    b.add_array(fib_section::kIntervalChildPort, none);
    expect_degenerate_roundtrip(b.finish(), 0);
  }
  {
    FibBuilder b(FibKind::kCowen, 0);
    b.add_topology(g);
    b.add_array(fib_section::kCowenRowOff, sentinel);
    b.add_array(fib_section::kCowenRowLen, none);
    b.add_array(fib_section::kCowenRows, std::vector<std::uint64_t>{});
    b.add_array(fib_section::kCowenLandmark, none);
    b.add_array(fib_section::kCowenLandmarkPort, none);
    expect_degenerate_roundtrip(b.finish(), 0);
  }
  {
    // kTz adds the label map (empty permutation) and the dictionary —
    // whose header must still carry a nonzero bucket count (the shared
    // sizing helper never returns 0) with every slot empty.
    FibBuilder b(FibKind::kTz, 0);
    b.add_topology(g);
    b.add_array(fib_section::kCowenRowOff, sentinel);
    b.add_array(fib_section::kCowenRowLen, none);
    b.add_array(fib_section::kCowenRows, std::vector<std::uint64_t>{});
    b.add_array(fib_section::kCowenLandmark, none);
    b.add_array(fib_section::kCowenLandmarkPort, none);
    b.add_array(fib_section::kLabelMap, none);
    b.add_array(fib_section::kDictionary,
                std::vector<std::uint64_t>{1, 1, kFibDictEmpty});
    expect_degenerate_roundtrip(b.finish(), 0);
  }
  {
    FibBuilder b(FibKind::kTable, 0);
    b.add_topology(g);
    b.add_array(fib_section::kTableRowOff, sentinel);
    b.add_array(fib_section::kTableRuns, std::vector<std::uint64_t>{});
    b.add_array(fib_section::kTableRelabel, none);
    expect_degenerate_roundtrip(b.finish(), 0);
  }
  {
    FibBuilder b(FibKind::kMesh, 0);
    b.add_topology(g);
    b.add_array(fib_section::kMeshInfo, sentinel);  // component_count == 0
    b.add_array(fib_section::kMeshComp, none);
    b.add_array(fib_section::kMeshPeerPort, none);
    b.add_array(fib_section::kMeshNodes, std::vector<FibTreeNode>(1));
    b.add_array(fib_section::kMeshLightPorts, none);
    b.add_array(fib_section::kMeshLabelOff, sentinel);
    b.add_array(fib_section::kMeshLabelSeq, none);
    expect_degenerate_roundtrip(b.finish(), 0);
  }
}

// A nonzero component count on an empty FIB must be rejected, not served.
TEST(FibDegenerate, EmptyMeshWithComponentsIsRejected) {
  FibBuilder b(FibKind::kMesh, 0);
  b.add_topology(Graph(0));
  b.add_array(fib_section::kMeshInfo, std::vector<std::uint32_t>{1});
  b.add_array(fib_section::kMeshComp, std::vector<std::uint32_t>{});
  b.add_array(fib_section::kMeshPeerPort, std::vector<std::uint32_t>{});
  b.add_array(fib_section::kMeshNodes, std::vector<FibTreeNode>(1));
  b.add_array(fib_section::kMeshLightPorts, std::vector<std::uint32_t>{});
  b.add_array(fib_section::kMeshLabelOff, std::vector<std::uint32_t>{0});
  b.add_array(fib_section::kMeshLabelSeq, std::vector<std::uint32_t>{});
  EXPECT_THROW(b.finish(), std::runtime_error);
}

// Single-node and two-node-single-edge instances of the plain families,
// put through the full differential battery (compile, round-trip,
// route_batch, failure modes).
void check_plain_degenerate(const Graph& g, std::uint64_t seed) {
  const ShortestPath alg{16};
  Rng rng(seed);
  const auto w = test::sampled_weights(alg, g, rng);
  {
    const auto scheme = SpanningTreeScheme<ShortestPath>::build(alg, g, w);
    check_family(scheme, g, seed, "tree-degenerate");
  }
  {
    const IntervalRouter router(g, preferred_spanning_tree(alg, g, w));
    check_family(router, g, seed, "interval-degenerate");
  }
  {
    const auto scheme = CowenScheme<ShortestPath>::build(alg, g, w, rng);
    check_family(scheme, g, seed, "cowen-degenerate");
  }
  {
    const auto tree_edges = preferred_spanning_tree(alg, g, w);
    const RootedTree tree = RootedTree::from_edges(g, tree_edges, 0);
    const CompressedTableScheme scheme(
        g, preferred_next_hops(alg, g, w),
        CompressedTableScheme::dfs_relabeling(g, tree.parent, 0));
    check_family(scheme, g, seed, "table-degenerate");
  }
  {
    const auto scheme = DestinationTableScheme::from_algebra(alg, g, w);
    check_family(scheme, g, seed, "dest-table-degenerate");
  }
  {
    // n == 1 forces the identity label map (no non-trivial permutation
    // exists); the scheme and the kTz walker must still deliver.
    const auto scheme =
        TzNameIndependentScheme<ShortestPath>::build(alg, g, w, rng);
    check_family(scheme, g, seed, "tz-degenerate");
  }
}

TEST(FibDegenerate, SingleNodePlainFamilies) {
  check_plain_degenerate(Graph(1), 11);
}

TEST(FibDegenerate, TwoNodeSingleEdgePlainFamilies) {
  Graph g(2);
  g.add_edge(0, 1);
  check_plain_degenerate(g, 12);
}

TEST(FibDegenerate, SingleNodeBgpFamilies) {
  AsTopology topo;
  topo.graph = Digraph(1);
  const ProviderTreeScheme pt(topo);
  check_family(pt, pt.shadow(), 21, "provider-tree-n1");
  const SvfcPeerMeshScheme mesh(topo);
  EXPECT_EQ(mesh.component_count(), 1u);
  check_family(mesh, mesh.shadow(), 21, "mesh-n1");
  const Graph shadow = topo.graph.undirected_shadow();
  const auto tables = bgp_destination_tables(topo, shadow);
  check_family(tables, shadow, 21, "bgp-dest-table-n1");
}

TEST(FibDegenerate, TwoNodeSingleProviderEdgeBgpFamilies) {
  AsTopology topo;
  topo.graph = Digraph(2);
  topo.graph.add_arc_pair(1, 0);  // 1's provider is 0
  topo.relation.push_back(Relationship::kProvider);
  topo.relation.push_back(Relationship::kCustomer);
  const ProviderTreeScheme pt(topo);
  check_family(pt, pt.shadow(), 22, "provider-tree-n2");
  const SvfcPeerMeshScheme mesh(topo);
  EXPECT_EQ(mesh.component_count(), 1u);
  check_family(mesh, mesh.shadow(), 22, "mesh-n2");
  const Graph shadow = topo.graph.undirected_shadow();
  const auto tables = bgp_destination_tables(topo, shadow);
  check_family(tables, shadow, 22, "bgp-dest-table-n2");
}

TEST(FibDegenerate, TwoPeeredRootsCompileAsTwoComponentMesh) {
  // Two single-node provider trees joined only by the root peering —
  // the smallest FIB whose peer matrix actually routes a packet.
  AsTopology topo;
  topo.graph = Digraph(2);
  topo.graph.add_arc_pair(0, 1);
  topo.relation.push_back(Relationship::kPeer);
  topo.relation.push_back(Relationship::kPeer);
  const SvfcPeerMeshScheme mesh(topo);
  EXPECT_EQ(mesh.component_count(), 2u);
  check_family(mesh, mesh.shadow(), 23, "mesh-two-roots");
}

}  // namespace
}  // namespace cpr
