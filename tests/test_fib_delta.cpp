// Differential coverage for in-place FIB patching (FibDelta →
// FlatFib::apply_delta → MaintainedFib).
//
// The contract, per seed of the churn corpus: after EVERY event prefix,
// forward_batch on the *patched* arena — one arena kept alive across the
// whole trace, absorbing each apply_event's FibDelta by in-place patching
// or compaction — is bit-identical (delivered flags, loop flags, full
// hop-by-hop paths) to forward_batch on a FRESH compile_fib of the
// repaired scheme, at 1 and 8 threads, both on the healthy graph and
// under the trace's current dead-edge mask. The fresh compile is the
// differential oracle; the maintained arena is what the sim layer serves.
//
// Plus unit coverage of the apply_delta edge cases the corpus cannot
// reach deterministically: slack exhaustion (reject, arena untouched),
// malformed patches, generation-counter torn-read detection.
#include "algebra/primitives.hpp"
#include "fib/compile.hpp"
#include "fib/fib_delta.hpp"
#include "fib/forward_engine.hpp"
#include "scheme/cowen.hpp"
#include "scheme/spanning_tree.hpp"
#include "scheme/tz_name_independent.hpp"
#include "sim/churn.hpp"
#include "sim/resilience.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

namespace cpr {
namespace {

constexpr std::size_t kCorpusSeeds = 50;
constexpr std::size_t kN = 18;
constexpr double kP = 0.25;
constexpr std::size_t kEvents = 12;

std::vector<std::pair<NodeId, NodeId>> all_pairs(std::size_t n) {
  std::vector<std::pair<NodeId, NodeId>> q;
  q.reserve(n * n);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) q.emplace_back(s, t);
  }
  return q;
}

void expect_identical_batches(const FibBatchOutput& patched,
                              const FibBatchOutput& fresh, const char* what) {
  ASSERT_EQ(patched.results.size(), fresh.results.size()) << what;
  for (std::size_t i = 0; i < patched.results.size(); ++i) {
    EXPECT_EQ(patched.results[i].delivered, fresh.results[i].delivered)
        << what << " query " << i;
    EXPECT_EQ(patched.results[i].looped, fresh.results[i].looped)
        << what << " query " << i;
    const auto pp = patched.path(i);
    const auto fp = fresh.path(i);
    ASSERT_EQ(pp.size(), fp.size()) << what << " query " << i;
    for (std::size_t k = 0; k < pp.size(); ++k) {
      EXPECT_EQ(pp[k], fp[k]) << what << " query " << i << " hop " << k;
    }
  }
}

// Patched arena vs fresh oracle arena: same batch, 1 and 8 threads,
// without and with the current dead-edge mask.
void expect_plane_matches_oracle(const FlatFib& patched, const FlatFib& fresh,
                                 std::span<const std::pair<NodeId, NodeId>> q,
                                 const std::vector<bool>& down,
                                 const char* what) {
  ThreadPool pool1(1), pool8(8);
  for (ThreadPool* pool : {&pool1, &pool8}) {
    FibBatchOptions opt;
    opt.pool = pool;
    expect_identical_batches(forward_batch(patched, q, opt),
                             forward_batch(fresh, q, opt), what);
    opt.edge_down = &down;
    expect_identical_batches(forward_batch(patched, q, opt),
                             forward_batch(fresh, q, opt), what);
  }
}

class DeltaSeeds : public ::testing::TestWithParam<std::uint64_t> {};

// Tree family: deltas are empty (kNoop / kRerank leave the router
// byte-identical) or whole-FIB recompiles (kSwap renumbers the DFS), so
// the maintained arena exercises the noop and compaction paths.
TEST_P(DeltaSeeds, TreePlaneMatchesFreshCompileAfterEveryEvent) {
  const ShortestPath alg{16};
  const std::uint64_t seed = GetParam();
  auto inst = test::seeded_instance(alg, seed, kN, kP);
  const Graph& g = inst.graph;
  Rng trace_rng(seed ^ 0x5eedull);
  const auto trace =
      random_churn_trace(alg, g, inst.weights, kEvents, trace_rng);

  ChurnEngine<ShortestPath> engine(alg, g, inst.weights);
  auto scheme = SpanningTreeScheme<ShortestPath>::build(alg, g, inst.weights);
  MaintainedFib<SpanningTreeScheme<ShortestPath>> plane(scheme, g);
  const auto queries = all_pairs(g.node_count());

  for (std::size_t i = 0; i < trace.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "seed " << seed << " event " << i);
    const auto applied = engine.apply(trace[i]);
    const TreeRepair repair = scheme.apply_event(
        applied.edge, applied.old_weight, applied.new_weight,
        engine.weights());
    plane.absorb(repair.fib_delta, scheme);
    const FlatFib fresh = compile_fib(scheme, g);
    expect_plane_matches_oracle(plane.fib(), fresh, queries,
                                engine.down_mask(), "tree");
  }
  EXPECT_EQ(plane.stats().events, trace.size());
  EXPECT_EQ(plane.stats().noops + plane.stats().compactions, trace.size());
}

// Cowen family: single-edge repairs emit row/slot patches that land in
// the arena's reserved slack — the in-place path this PR exists for.
TEST_P(DeltaSeeds, CowenPlaneMatchesFreshCompileAfterEveryEvent) {
  const ShortestPath alg{16};
  const std::uint64_t seed = GetParam();
  auto inst = test::seeded_instance(alg, seed, kN, kP);
  const Graph& g = inst.graph;
  Rng trace_rng(seed ^ 0xc0ffeeull);
  const auto trace =
      random_churn_trace(alg, g, inst.weights, kEvents, trace_rng);

  ChurnEngine<ShortestPath> engine(alg, g, inst.weights);
  auto scheme =
      CowenScheme<ShortestPath>::build(alg, g, inst.weights, inst.rng);
  // Force the repair down the incremental path (dirty fraction can never
  // exceed 1) and never compact on delta width: every event must flow
  // through emitted row/slot patches, the code this test exists for. On
  // these small corpus graphs the natural thresholds would compact away
  // most of the patch coverage.
  FibMaintainOptions opt = fib_churn_maintain_options();
  opt.compaction_fraction = 2.0;
  MaintainedFib<CowenScheme<ShortestPath>> plane(scheme, g, opt);
  const auto queries = all_pairs(g.node_count());

  std::size_t fast_path_events = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "seed " << seed << " event " << i);
    const auto applied = engine.apply(trace[i]);
    const auto repair = scheme.apply_event(applied.edge, applied.old_weight,
                                           applied.new_weight,
                                           engine.weights(),
                                           /*rebuild_dirty_fraction=*/2.0);
    if (plane.absorb(repair.fib_delta, scheme)) ++fast_path_events;
    // The oracle compiles with zero slack — layout differs, behaviour
    // must not.
    const FlatFib fresh = compile_fib(scheme, g);
    expect_plane_matches_oracle(plane.fib(), fresh, queries,
                                engine.down_mask(), "cowen");
  }
  EXPECT_EQ(plane.stats().events, trace.size());
  // The slack profile must keep the fast path alive: most events of a
  // short trace patch (or noop) in place rather than compacting.
  EXPECT_GT(fast_path_events, trace.size() / 2)
      << "slack profile degenerated to recompiling";
  EXPECT_GT(plane.stats().patched, 0u) << "no event exercised apply_delta";
}

// TZ family: the scheme translates every Cowen repair into label space —
// row patches re-keyed by label, landmark slot patches re-indexed from
// node to label — before the maintainer sees it. Names and labels are
// stable across weight churn, so a correct translation never touches the
// label map or dictionary sections; the differential against a fresh
// label-preserving compile catches any slot that was left in node space.
TEST_P(DeltaSeeds, TzPlaneMatchesFreshCompileAfterEveryEvent) {
  const ShortestPath alg{16};
  const std::uint64_t seed = GetParam();
  auto inst = test::seeded_instance(alg, seed, kN, kP);
  const Graph& g = inst.graph;
  Rng trace_rng(seed ^ 0xc0ffeeull);
  const auto trace =
      random_churn_trace(alg, g, inst.weights, kEvents, trace_rng);

  ChurnEngine<ShortestPath> engine(alg, g, inst.weights);
  auto scheme = TzNameIndependentScheme<ShortestPath>::build(
      alg, g, inst.weights, inst.rng);
  FibMaintainOptions opt = fib_churn_maintain_options();
  opt.compaction_fraction = 2.0;  // same rationale as the Cowen trace
  MaintainedFib<TzNameIndependentScheme<ShortestPath>> plane(scheme, g, opt);
  const auto queries = all_pairs(g.node_count());

  std::size_t fast_path_events = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "seed " << seed << " event " << i);
    const auto applied = engine.apply(trace[i]);
    const auto repair = scheme.apply_event(applied.edge, applied.old_weight,
                                           applied.new_weight,
                                           engine.weights(),
                                           /*rebuild_dirty_fraction=*/2.0);
    if (plane.absorb(repair.fib_delta, scheme)) ++fast_path_events;
    const FlatFib fresh = compile_fib(scheme, g);
    expect_plane_matches_oracle(plane.fib(), fresh, queries,
                                engine.down_mask(), "tz");
  }
  EXPECT_EQ(plane.stats().events, trace.size());
  EXPECT_GT(fast_path_events, trace.size() / 2)
      << "slack profile degenerated to recompiling";
  EXPECT_GT(plane.stats().patched, 0u) << "no event exercised apply_delta";
}

INSTANTIATE_TEST_SUITE_P(Corpus, DeltaSeeds,
                         ::testing::Range<std::uint64_t>(0, kCorpusSeeds));

// ---- apply_delta unit coverage ----

struct CowenFixture {
  Graph g;
  CowenScheme<ShortestPath> scheme;
  static CowenFixture make(std::uint64_t seed) {
    const ShortestPath alg{16};
    auto inst = test::seeded_instance(alg, seed, kN, kP);
    auto scheme =
        CowenScheme<ShortestPath>::build(alg, inst.graph, inst.weights,
                                         inst.rng);
    return {inst.graph, std::move(scheme)};
  }
};

TEST(FibApplyDelta, EmptyDeltaIsANoop) {
  auto fx = CowenFixture::make(3);
  FlatFib fib = compile_fib(fx.scheme, fx.g);
  const auto before = fib.blob();
  const std::vector<std::uint8_t> snapshot(before.begin(), before.end());
  EXPECT_TRUE(fib.apply_delta(FibDelta{}));
  const auto after = fib.blob();
  EXPECT_TRUE(std::equal(snapshot.begin(), snapshot.end(), after.begin(),
                         after.end()));
}

TEST(FibApplyDelta, RecompileDeltaIsRefused) {
  auto fx = CowenFixture::make(3);
  FlatFib fib = compile_fib(fx.scheme, fx.g);
  FibDelta d;
  d.recompile = true;
  d.touched_nodes = fx.g.node_count();
  EXPECT_FALSE(fib.apply_delta(d));
}

TEST(FibApplyDelta, RowGrowthBeyondCapacityIsRefusedUntouched) {
  auto fx = CowenFixture::make(3);
  // Zero slack: any row growth must be refused.
  FlatFib fib = compile_fib(fx.scheme, fx.g, FibCompileOptions{});
  const auto before = fib.blob();
  const std::vector<std::uint8_t> snapshot(before.begin(), before.end());

  const auto& row = fx.scheme.table(0);
  std::vector<std::uint64_t> grown;
  for (const auto& [target, port] : row) {
    grown.push_back(fib_pack_entry(target, port));
  }
  // Append a strictly larger key so the row stays sorted but overflows.
  const std::uint32_t big_key =
      grown.empty() ? 1u : fib_entry_key(grown.back()) + 1;
  grown.push_back(fib_pack_entry(big_key, 0));
  FibDelta d;
  d.touched_nodes = 1;
  d.patches.push_back(fib_patch_row_u64(fib_section::kCowenRows, 0, grown));
  EXPECT_FALSE(fib.apply_delta(d));
  const auto after = fib.blob();
  EXPECT_TRUE(std::equal(snapshot.begin(), snapshot.end(), after.begin(),
                         after.end()))
      << "refused delta must leave the arena untouched";

  // With slack reserved, the same growth patches in place.
  FlatFib slacked =
      compile_fib(fx.scheme, fx.g, fib_churn_maintain_options().compile);
  EXPECT_TRUE(slacked.apply_delta(d));
  // The patched arena still validates end to end (checksum refreshed,
  // slack re-zeroed, row_len updated).
  const auto blob = slacked.blob();
  EXPECT_NO_THROW(FlatFib::from_blob({blob.data(), blob.size()}));
}

TEST(FibApplyDelta, MalformedPatchesAreRefused) {
  auto fx = CowenFixture::make(3);
  FlatFib fib =
      compile_fib(fx.scheme, fx.g, fib_churn_maintain_options().compile);
  const std::uint32_t n = static_cast<std::uint32_t>(fx.g.node_count());
  {
    FibDelta d;  // row index out of range
    d.touched_nodes = 1;
    d.patches.push_back(
        fib_patch_row_u64(fib_section::kCowenRows, n, {fib_pack_entry(1, 0)}));
    EXPECT_FALSE(fib.apply_delta(d));
  }
  {
    FibDelta d;  // unsorted row keys
    d.touched_nodes = 1;
    d.patches.push_back(fib_patch_row_u64(
        fib_section::kCowenRows, 0,
        {fib_pack_entry(5, 0), fib_pack_entry(2, 0)}));
    EXPECT_FALSE(fib.apply_delta(d));
  }
  {
    FibDelta d;  // landmark id out of range
    d.touched_nodes = 1;
    d.patches.push_back(fib_patch_u32(fib_section::kCowenLandmark, 0, n));
    EXPECT_FALSE(fib.apply_delta(d));
  }
  {
    FibDelta d;  // unknown section
    d.touched_nodes = 1;
    d.patches.push_back(fib_patch_u32(fib_section::kTreeNodes, 0, 0));
    EXPECT_FALSE(fib.apply_delta(d));
  }
}

// ---- Label-section patches (kTz arenas) ----

struct TzFixture {
  Graph g;
  TzNameIndependentScheme<ShortestPath> scheme;
  static TzFixture make(std::uint64_t seed) {
    const ShortestPath alg{16};
    auto inst = test::seeded_instance(alg, seed, kN, kP);
    auto scheme = TzNameIndependentScheme<ShortestPath>::build(
        alg, inst.graph, inst.weights, inst.rng);
    return {inst.graph, std::move(scheme)};
  }
};

// Weight churn never relabels, so the corpus trace above cannot reach the
// kLabelMap / kDictionary patch paths; drive them directly. A rewrite of
// a label slot and a dictionary bucket with their current contents is the
// minimal *consistent* patch — it must take the full seqlock round trip
// (generation +2, checksum refreshed, empty-fill re-stamped) and leave
// behavior and deep validation intact.
TEST(FibApplyDelta, LabelAndDictionaryPatchesApplyInPlace) {
  auto fx = TzFixture::make(3);
  FlatFib fib =
      compile_fib(fx.scheme, fx.g, fib_churn_maintain_options().compile);
  const auto queries = all_pairs(fx.g.node_count());
  const FibBatchOutput before = forward_batch(fib, queries);
  const std::uint64_t g0 = fib.generation();

  const auto& tz = fib.tz();
  const std::uint64_t b0 = fib_dict_bucket(0, tz.dict_bucket_count);
  std::vector<std::uint64_t> bucket;
  for (std::uint64_t i = 0; i < tz.dict_bucket_cap; ++i) {
    const std::uint64_t e = tz.dict[b0 * tz.dict_bucket_cap + i];
    if (e == kFibDictEmpty) break;
    bucket.push_back(e);
  }
  ASSERT_FALSE(bucket.empty()) << "name 0's bucket has at least name 0";

  FibDelta d;
  d.touched_nodes = 1;
  d.patches.push_back(
      fib_patch_u32(fib_section::kLabelMap, 0, tz.label_of[0]));
  d.patches.push_back(fib_patch_row_u64(
      fib_section::kDictionary, static_cast<std::uint32_t>(b0), bucket));
  ASSERT_TRUE(fib.apply_delta(d));
  EXPECT_EQ(fib.generation(), g0 + 2);

  const auto blob = fib.blob();
  EXPECT_NO_THROW(FlatFib::from_blob({blob.data(), blob.size()}));
  expect_identical_batches(forward_batch(fib, queries), before,
                           "label patch");
}

TEST(FibApplyDelta, MalformedLabelPatchesAreRefused) {
  auto fx = TzFixture::make(3);
  FlatFib fib =
      compile_fib(fx.scheme, fx.g, fib_churn_maintain_options().compile);
  const std::uint32_t n = static_cast<std::uint32_t>(fx.g.node_count());
  const auto& tz = fib.tz();
  {
    FibDelta d;  // label out of range
    d.touched_nodes = 1;
    d.patches.push_back(fib_patch_u32(fib_section::kLabelMap, 0, n));
    EXPECT_FALSE(fib.apply_delta(d));
  }
  {
    FibDelta d;  // row out of range
    d.touched_nodes = 1;
    d.patches.push_back(fib_patch_u32(fib_section::kLabelMap, n, 0));
    EXPECT_FALSE(fib.apply_delta(d));
  }
  {
    FibDelta d;  // bucket index out of range
    d.touched_nodes = 1;
    d.patches.push_back(fib_patch_row_u64(
        fib_section::kDictionary,
        static_cast<std::uint32_t>(tz.dict_bucket_count),
        {fib_pack_entry(0, 0)}));
    EXPECT_FALSE(fib.apply_delta(d));
  }
  {
    FibDelta d;  // entry hashed to the wrong bucket
    const std::uint64_t b0 = fib_dict_bucket(0, tz.dict_bucket_count);
    std::uint32_t stray = 1;
    while (stray < n &&
           fib_dict_bucket(stray, tz.dict_bucket_count) == b0) {
      ++stray;
    }
    if (stray < n) {
      d.touched_nodes = 1;
      d.patches.push_back(fib_patch_row_u64(
          fib_section::kDictionary, static_cast<std::uint32_t>(b0),
          {fib_pack_entry(stray, tz.label_of[stray])}));
      EXPECT_FALSE(fib.apply_delta(d));
    }
  }
  {
    FibDelta d;  // more entries than the bucket's capacity
    std::vector<std::uint64_t> flood;
    for (std::uint64_t i = 0; i <= tz.dict_bucket_cap; ++i) {
      flood.push_back(fib_pack_entry(static_cast<std::uint32_t>(i), 0));
    }
    d.touched_nodes = 1;
    d.patches.push_back(
        fib_patch_row_u64(fib_section::kDictionary, 0, flood));
    EXPECT_FALSE(fib.apply_delta(d));
  }
  {
    FibDelta d;  // label sections are kTz-only: refused on a kCowen arena
    auto cx = CowenFixture::make(3);
    FlatFib cowen =
        compile_fib(cx.scheme, cx.g, fib_churn_maintain_options().compile);
    d.touched_nodes = 1;
    d.patches.push_back(fib_patch_u32(fib_section::kLabelMap, 0, 0));
    EXPECT_FALSE(cowen.apply_delta(d));
  }
}

TEST(FibApplyDelta, GenerationAdvancesTwicePerPatch) {
  auto fx = CowenFixture::make(3);
  FlatFib fib =
      compile_fib(fx.scheme, fx.g, fib_churn_maintain_options().compile);
  const std::uint64_t g0 = fib.generation();
  EXPECT_EQ(g0 % 2, 0u) << "stable arena must sit on an even generation";
  FibDelta d;
  d.touched_nodes = 1;
  d.patches.push_back(
      fib_patch_u32(fib_section::kCowenLandmarkPort, 0, kInvalidPort));
  ASSERT_TRUE(fib.apply_delta(d));
  EXPECT_EQ(fib.generation(), g0 + 2);
  EXPECT_EQ(fib.generation() % 2, 0u);
}

// The sim layer serves churn measurements straight off the maintained
// arena; spot-check that the report exposes how the trace was absorbed.
TEST(ChurnResilience, ReportsFibAbsorptionCounters) {
  const ShortestPath alg{16};
  // Large enough that a single-edge repair touches well under the
  // compaction fraction of the nodes — the natural in-place regime.
  auto inst = test::seeded_instance(alg, 9, 64, 0.1);
  Rng trace_rng(0xabcdef);
  const auto trace =
      random_churn_trace(alg, inst.graph, inst.weights, 10, trace_rng);
  ChurnEngine<ShortestPath> engine(alg, inst.graph, inst.weights);
  auto scheme = CowenScheme<ShortestPath>::build(alg, inst.graph,
                                                 inst.weights, inst.rng);
  Rng pair_rng(7);
  const ChurnResilienceReport report = measure_resilience_under_churn(
      scheme, engine, trace, /*pairs_per_event=*/40, pair_rng);
  EXPECT_EQ(report.events, trace.size());
  // Every non-noop event was absorbed one way or the other.
  EXPECT_LE(report.fib_patched + report.fib_compactions, report.events);
  EXPECT_GT(report.fib_patched, 0u)
      << "churn service never exercised the in-place patch path";
}

}  // namespace
}  // namespace cpr
