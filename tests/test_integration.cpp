// Cross-module integration sweeps: generate a topology family instance,
// sample weights for an algebra, build every applicable scheme, route
// every pair, and check delivery + algebraic optimality/stretch. These
// are the "does the whole pipeline hold together" tests, parameterized
// over (algebra, family, seed).
#include "algebra/lex_product.hpp"
#include "algebra/more_algebras.hpp"
#include "algebra/policy_parser.hpp"
#include "algebra/primitives.hpp"
#include "graph/generators.hpp"
#include "routing/dijkstra.hpp"
#include "routing/path_vector.hpp"
#include "routing/shortest_widest.hpp"
#include "scheme/cowen.hpp"
#include "scheme/dest_table.hpp"
#include "scheme/spanning_tree.hpp"
#include "scheme/tree_router.hpp"

#include <gtest/gtest.h>

namespace cpr {
namespace {

struct Instance {
  std::string family;
  Graph graph;
};

Instance make_instance(std::size_t family_index, std::size_t n,
                       std::uint64_t seed) {
  Rng rng(seed * 101 + family_index);
  switch (family_index) {
    case 0: return {"erdos-renyi", erdos_renyi_connected(n, 0.15, rng)};
    case 1: return {"barabasi-albert", barabasi_albert(n, 2, rng)};
    case 2: return {"watts-strogatz", watts_strogatz(n, 2, 0.2, rng)};
    case 3: return {"grid", grid(n / 6, 6)};
    case 4: return {"random-tree", random_tree(n, rng)};
    default: return {"ring", ring(n)};
  }
}

class IntegrationSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(IntegrationSweep, RegularAlgebrasFullPipeline) {
  const auto [family, seed] = GetParam();
  const Instance inst = make_instance(family, 30, seed);
  const Graph& g = inst.graph;
  Rng rng(seed);

  // Run the pipeline for the two regular archetypes: incompressible
  // (widest-shortest) and selective (widest).
  {
    const WidestShortest ws{ShortestPath{32}, WidestPath{16}};
    EdgeMap<WidestShortest::Weight> w(g.edge_count());
    for (auto& x : w) x = ws.sample(rng);
    const auto tables = DestinationTableScheme::from_algebra(ws, g, w);
    const auto cowen = CowenScheme<WidestShortest>::build(ws, g, w, rng);
    const auto trees = all_pairs_trees(ws, g, w);
    for (NodeId s = 0; s < g.node_count(); s += 3) {
      for (NodeId t = 0; t < g.node_count(); t += 2) {
        if (s == t) continue;
        const RouteResult via_table = simulate_route(tables, g, s, t);
        ASSERT_TRUE(via_table.delivered)
            << inst.family << " table s=" << s << " t=" << t;
        const auto tw = weight_of_path(ws, g, w, via_table.path);
        ASSERT_TRUE(tw.has_value());
        EXPECT_TRUE(order_equal(ws, *tw, *trees[t].weight(s)))
            << inst.family << " s=" << s << " t=" << t;

        const RouteResult via_cowen = simulate_route(cowen, g, s, t);
        ASSERT_TRUE(via_cowen.delivered)
            << inst.family << " cowen s=" << s << " t=" << t;
        const auto cw = weight_of_path(ws, g, w, via_cowen.path);
        ASSERT_TRUE(cw.has_value());
        EXPECT_TRUE(
            algebraic_stretch(ws, *trees[t].weight(s), *cw, 3).has_value())
            << inst.family << " stretch>3 s=" << s << " t=" << t;
      }
    }
  }
  {
    const WidestPath wp{16};
    EdgeMap<std::uint64_t> w(g.edge_count());
    for (auto& x : w) x = wp.sample(rng);
    const auto tree_edges = preferred_spanning_tree(wp, g, w);
    const TreeRouter router(g, tree_edges);
    const auto trees = all_pairs_trees(wp, g, w);
    for (NodeId s = 0; s < g.node_count(); s += 2) {
      for (NodeId t = 0; t < g.node_count(); t += 3) {
        if (s == t) continue;
        const RouteResult r = simulate_route(router, g, s, t);
        ASSERT_TRUE(r.delivered) << inst.family;
        const auto rw = weight_of_path(wp, g, w, r.path);
        ASSERT_TRUE(rw.has_value());
        EXPECT_TRUE(order_equal(wp, *rw, *trees[t].weight(s)))
            << inst.family << " s=" << s << " t=" << t;
      }
    }
  }
}

TEST_P(IntegrationSweep, SolversAgreeAcrossEngines) {
  const auto [family, seed] = GetParam();
  const Instance inst = make_instance(family, 24, seed + 7);
  const Graph& g = inst.graph;
  Rng rng(seed);
  const ShortestPath alg{16};
  EdgeMap<std::uint64_t> w(g.edge_count());
  for (auto& x : w) x = alg.sample(rng);
  auto [dg, aw] = as_symmetric_digraph(g, w);
  for (NodeId t = 0; t < g.node_count(); t += 5) {
    const auto dij = dijkstra(alg, g, w, t);
    const auto pv = path_vector(alg, dg, aw, t);
    ASSERT_TRUE(pv.converged);
    for (NodeId u = 0; u < g.node_count(); ++u) {
      if (u == t) continue;
      ASSERT_TRUE(dij.reachable(u));
      ASSERT_TRUE(pv.reachable(u));
      EXPECT_TRUE(order_equal(alg, *dij.weight(u), *pv.weight[u]))
          << inst.family << " u=" << u << " t=" << t;
    }
  }
}

TEST_P(IntegrationSweep, ParsedPoliciesMatchConcreteOnInstances) {
  const auto [family, seed] = GetParam();
  const Instance inst = make_instance(family, 18, seed + 13);
  const Graph& g = inst.graph;
  Rng rng(seed);
  const WidestShortest concrete{ShortestPath{64}, WidestPath{64}};
  const AnyAlgebra parsed = parse_policy("lex(shortest, widest)");
  EdgeMap<WidestShortest::Weight> cw(g.edge_count());
  EdgeMap<AnyWeight> pw(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    cw[e] = concrete.sample(rng);
    pw[e] = AnyWeight{std::any{std::make_pair(
        AnyWeight{std::any{cw[e].first}}, AnyWeight{std::any{cw[e].second}})}};
  }
  for (NodeId s = 0; s < g.node_count(); s += 4) {
    const auto a = dijkstra(concrete, g, cw, s);
    const auto b = dijkstra(parsed, g, pw, s);
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s == t) continue;
      ASSERT_TRUE(a.reachable(t));
      ASSERT_TRUE(b.reachable(t));
      const auto& pair_w = b.weight(t)->as<std::pair<AnyWeight, AnyWeight>>();
      EXPECT_EQ(pair_w.first.as<std::uint64_t>(), a.weight(t)->first);
      EXPECT_EQ(pair_w.second.as<std::uint64_t>(), a.weight(t)->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, IntegrationSweep,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 2, 3, 4, 5),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(Integration, CappedPolicyEndToEnd) {
  // Bounded-delay routing through the full pipeline: parse, sample, build
  // tables, verify every delivered route respects the budget.
  Rng rng(5);
  const AnyAlgebra policy = parse_policy("capped(shortest(8), 30)");
  const Graph g = erdos_renyi_connected(25, 0.25, rng);
  EdgeMap<AnyWeight> w(g.edge_count());
  for (auto& x : w) x = policy.sample(rng);
  const auto tables = DestinationTableScheme::from_algebra(policy, g, w);
  std::size_t delivered = 0, refused = 0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s == t) continue;
      const RouteResult r = simulate_route(tables, g, s, t);
      if (!r.delivered) {
        ++refused;  // no within-budget path exists
        continue;
      }
      ++delivered;
      const auto rw = weight_of_path(policy, g, w, r.path);
      ASSERT_TRUE(rw.has_value());
      EXPECT_FALSE(policy.is_phi(*rw)) << "s=" << s << " t=" << t;
    }
  }
  EXPECT_GT(delivered, 0u);
}

}  // namespace
}  // namespace cpr
