// RLE destination tables: correctness, and the relabeling ablation — the
// same routes cost Θ(n) bits under identity labels but O(deg·log n) under
// DFS labels of the preferred tree (for tree-routed selective algebras).
#include "algebra/primitives.hpp"
#include "graph/generators.hpp"
#include "routing/dijkstra.hpp"
#include "scheme/compressed_table.hpp"
#include "scheme/mesh.hpp"
#include "scheme/spanning_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace cpr {
namespace {

std::vector<std::vector<NodeId>> tree_next_hops(const Graph& g,
                                                const RootedTree& tree) {
  // All routes follow the tree: toward t, next hop is the neighbor on the
  // unique tree path. Compute per destination with a rooted orientation.
  const std::size_t n = g.node_count();
  std::vector<std::vector<NodeId>> next(n, std::vector<NodeId>(n, kInvalidNode));
  // For each pair, climb to the LCA using parent pointers.
  std::vector<std::size_t> depth(n, 0);
  {
    std::vector<NodeId> order{tree.root};
    for (std::size_t i = 0; i < order.size(); ++i) {
      for (NodeId c : tree.children[order[i]]) {
        depth[c] = depth[order[i]] + 1;
        order.push_back(c);
      }
    }
  }
  for (NodeId t = 0; t < n; ++t) {
    for (NodeId u = 0; u < n; ++u) {
      if (u == t) continue;
      NodeId a = u, b = t, first_from_u = kInvalidNode;
      NodeId b_child = b;
      while (depth[a] > depth[b]) {
        if (first_from_u == kInvalidNode) first_from_u = tree.parent[u];
        a = tree.parent[a];
      }
      while (depth[b] > depth[a]) {
        b_child = b;
        b = tree.parent[b];
      }
      while (a != b) {
        if (first_from_u == kInvalidNode) first_from_u = tree.parent[u];
        a = tree.parent[a];
        b_child = b;
        b = tree.parent[b];
      }
      // If u is on t's root path (a == u), the next hop is u's child
      // toward t; otherwise it's u's parent.
      next[t][u] =
          first_from_u != kInvalidNode ? first_from_u : b_child;
    }
  }
  return next;
}

TEST(CompressedTable, DeliversOnTreeRoutesBothLabelings) {
  Rng rng(3);
  const WidestPath alg{8};
  const Graph g = erdos_renyi_connected(24, 0.25, rng);
  EdgeMap<std::uint64_t> w(g.edge_count());
  for (auto& x : w) x = alg.sample(rng);
  const auto tree_edges = preferred_spanning_tree(alg, g, w);
  const RootedTree tree = RootedTree::from_edges(g, tree_edges);
  const auto next = tree_next_hops(g, tree);

  std::vector<NodeId> identity(g.node_count());
  std::iota(identity.begin(), identity.end(), NodeId{0});
  const CompressedTableScheme plain(g, next, identity);
  const CompressedTableScheme relabeled(
      g, next,
      CompressedTableScheme::dfs_relabeling(g, tree.parent, tree.root));

  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      EXPECT_TRUE(simulate_route(plain, g, s, t).delivered)
          << "plain s=" << s << " t=" << t;
      EXPECT_TRUE(simulate_route(relabeled, g, s, t).delivered)
          << "relabeled s=" << s << " t=" << t;
    }
  }
}

TEST(CompressedTable, DfsRelabelingCollapsesRuns) {
  // On a path graph routed over itself, DFS labels make each node's table
  // exactly two runs (left side / right side); identity labels do too on
  // a path (already sorted), so use a random tree where identity labels
  // scatter.
  Rng rng(5);
  const Graph g = random_tree(200, rng);
  std::vector<EdgeId> edges(g.edge_count());
  std::iota(edges.begin(), edges.end(), EdgeId{0});
  const RootedTree tree = RootedTree::from_edges(g, edges, 0);
  const auto next = tree_next_hops(g, tree);

  std::vector<NodeId> identity(g.node_count());
  std::iota(identity.begin(), identity.end(), NodeId{0});
  const CompressedTableScheme plain(g, next, identity);
  const CompressedTableScheme relabeled(
      g, next, CompressedTableScheme::dfs_relabeling(g, tree.parent, 0));

  std::size_t plain_runs = 0, relabeled_runs = 0;
  std::size_t plain_bits = 0, relabeled_bits = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    plain_runs += plain.run_count(u);
    relabeled_runs += relabeled.run_count(u);
    plain_bits = std::max(plain_bits, plain.local_memory_bits(u));
    relabeled_bits = std::max(relabeled_bits, relabeled.local_memory_bits(u));
    // Under DFS labels: at most deg(u) + 2 runs (one interval per child,
    // the self slot, and the "everything else via parent" remainder).
    EXPECT_LE(relabeled.run_count(u), g.degree(u) + 3) << "u=" << u;
  }
  // Aggregate runs shrink (most nodes are leaves with ~3 runs in either
  // labeling, so the aggregate ratio is modest)...
  EXPECT_LT(relabeled_runs, plain_runs);
  // ...but at the worst (high-degree) node the DFS labeling is decisive.
  EXPECT_LT(relabeled_bits, plain_bits / 2);
}

TEST(CompressedTable, RejectsBadRelabelSize) {
  const Graph g = path_graph(4);
  std::vector<std::vector<NodeId>> next(4, std::vector<NodeId>(4, kInvalidNode));
  EXPECT_THROW(CompressedTableScheme(g, next, {0, 1}), std::invalid_argument);
}

TEST(CompressedTable, RejectsDuplicateAndOutOfRangeLabels) {
  // A relabeling with a duplicate aliases two destinations onto one table
  // column and silently misroutes — it must be rejected up front, as must
  // labels outside [0, n).
  const Graph g = path_graph(4);
  std::vector<std::vector<NodeId>> next(4, std::vector<NodeId>(4, kInvalidNode));
  EXPECT_THROW(CompressedTableScheme(g, next, {0, 1, 1, 2}),
               std::invalid_argument);
  EXPECT_THROW(CompressedTableScheme(g, next, {0, 1, 2, 7}),
               std::invalid_argument);
}

TEST(CompressedTable, EmptyGraphConstructsAndRelabelingThrows) {
  const Graph g(0);
  const std::vector<std::vector<NodeId>> next;
  // An empty table scheme is vacuous but well-formed...
  EXPECT_NO_THROW(CompressedTableScheme(g, next, {}));
  // ...while a DFS relabeling has no root to start from.
  EXPECT_THROW(CompressedTableScheme::dfs_relabeling(g, {}, 0),
               std::invalid_argument);
}

TEST(CompressedTable, SingleNodeDeliversToItself) {
  const Graph g(1);
  const std::vector<std::vector<NodeId>> next{{kInvalidNode}};
  const CompressedTableScheme scheme(
      g, next, CompressedTableScheme::dfs_relabeling(g, {0}, 0));
  EXPECT_TRUE(simulate_route(scheme, g, 0, 0).delivered);
  EXPECT_EQ(scheme.run_count(0), 1u);
}

TEST(CompressedTable, StarCollapsesLeafTablesToTwoRuns) {
  const std::size_t n = 10;
  const Graph g = star(n);
  std::vector<EdgeId> edges(g.edge_count());
  std::iota(edges.begin(), edges.end(), EdgeId{0});
  const RootedTree tree = RootedTree::from_edges(g, edges, 0);
  const auto next = tree_next_hops(g, tree);
  const CompressedTableScheme scheme(
      g, next, CompressedTableScheme::dfs_relabeling(g, tree.parent, 0));
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      EXPECT_TRUE(simulate_route(scheme, g, s, t).delivered)
          << "s=" << s << " t=" << t;
    }
  }
  // A leaf sees: itself (no route) and everything else via the hub —
  // under DFS labels its own slot splits the label space into ≤ 3 runs.
  for (NodeId leaf = 1; leaf < n; ++leaf) {
    EXPECT_LE(scheme.run_count(leaf), 3u) << "leaf=" << leaf;
  }
}

TEST(CompleteMesh, RoutesWithIdOnlyState) {
  const std::size_t n = 40;
  const Graph g = complete(n);
  const CompleteMeshScheme mesh(g);
  for (NodeId s = 0; s < n; s += 3) {
    for (NodeId t = 0; t < n; t += 2) {
      const RouteResult r = simulate_route(mesh, g, s, t);
      ASSERT_TRUE(r.delivered);
      EXPECT_LE(r.hops(), 1u);  // complete graph: one hop max
    }
  }
  const double lg = std::log2(static_cast<double>(n));
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_LE(mesh.local_memory_bits(v), lg + 1);
  }
  // Designed ports are a bijection onto {0..n-2} at each node.
  std::vector<bool> seen(n - 1, false);
  for (NodeId t = 0; t < n; ++t) {
    if (t == 5) continue;
    const Port p = mesh.designed_port(5, t);
    ASSERT_LT(p, n - 1);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(CompleteMesh, RejectsIncompleteGraphs) {
  EXPECT_THROW(CompleteMeshScheme{path_graph(5)}, std::invalid_argument);
}

}  // namespace
}  // namespace cpr
