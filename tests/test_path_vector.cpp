// Path-vector solver: agreement with Dijkstra on regular algebras
// (independent algorithms, same preferred weights) and right-associative
// behaviour on directed BGP-labeled graphs.
#include "algebra/primitives.hpp"
#include "bgp/bgp_algebra.hpp"
#include "graph/generators.hpp"
#include "routing/dijkstra.hpp"
#include "routing/path_vector.hpp"

#include <gtest/gtest.h>

namespace cpr {
namespace {

class PathVectorSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathVectorSeeds, AgreesWithDijkstraOnShortestPath) {
  Rng rng(GetParam());
  const ShortestPath alg{16};
  const Graph g = erdos_renyi_connected(14, 0.3, rng);
  EdgeMap<std::uint64_t> w(g.edge_count());
  for (auto& x : w) x = alg.sample(rng);
  auto [dg, aw] = as_symmetric_digraph(g, w);
  for (NodeId t = 0; t < g.node_count(); t += 3) {
    const auto routes = path_vector(alg, dg, aw, t);
    EXPECT_TRUE(routes.converged);
    const auto tree = dijkstra(alg, g, w, t);
    for (NodeId u = 0; u < g.node_count(); ++u) {
      if (u == t) continue;
      ASSERT_TRUE(routes.reachable(u));
      EXPECT_TRUE(order_equal(alg, *routes.weight[u], *tree.weight(u)))
          << "u=" << u << " t=" << t;
      // The advertised path must start at u, end at t, and realize the
      // advertised weight.
      const NodePath& p = routes.path[u];
      ASSERT_GE(p.size(), 2u);
      EXPECT_EQ(p.front(), u);
      EXPECT_EQ(p.back(), t);
      const auto pw = weight_of_path(alg, dg, aw, p);
      ASSERT_TRUE(pw.has_value());
      EXPECT_TRUE(order_equal(alg, *pw, *routes.weight[u]));
    }
  }
}

TEST_P(PathVectorSeeds, AgreesWithDijkstraOnWidestPath) {
  Rng rng(GetParam() + 100);
  const WidestPath alg{8};
  const Graph g = erdos_renyi_connected(12, 0.3, rng);
  EdgeMap<std::uint64_t> w(g.edge_count());
  for (auto& x : w) x = alg.sample(rng);
  auto [dg, aw] = as_symmetric_digraph(g, w);
  const auto tree = dijkstra(alg, g, w, 0);
  const auto routes = path_vector(alg, dg, aw, 0);
  EXPECT_TRUE(routes.converged);
  for (NodeId u = 1; u < g.node_count(); ++u) {
    ASSERT_TRUE(routes.reachable(u));
    EXPECT_TRUE(order_equal(alg, *routes.weight[u], *tree.weight(u)));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, PathVectorSeeds,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(PathVector, RespectsRightAssociativeComposition) {
  // Directed 3-node line with B1 labels: 0 →p 1 →c 2 (up then down).
  // Weight must compose p ⊕ c = p and the path must be traversable;
  // the reverse direction 2 →p 1 →c 0 likewise.
  const B1ProviderCustomer b1;
  Digraph d(3);
  ArcMap<BgpLabel> w;
  d.add_arc_pair(0, 1);  // 0→1 provider link ("up")
  w.push_back(BgpLabel::kProvider);
  w.push_back(BgpLabel::kCustomer);
  d.add_arc_pair(1, 2);  // 1→2 customer link ("down")
  w.push_back(BgpLabel::kCustomer);
  w.push_back(BgpLabel::kProvider);

  const auto to2 = path_vector(b1, d, w, 2);
  ASSERT_TRUE(to2.reachable(0));
  EXPECT_EQ(*to2.weight[0], BgpLabel::kProvider);  // p ⊕ c = p
  EXPECT_EQ(to2.path[0], (NodePath{0, 1, 2}));

  const auto to0 = path_vector(b1, d, w, 0);
  ASSERT_TRUE(to0.reachable(2));
  EXPECT_EQ(*to0.weight[2], BgpLabel::kProvider);
}

TEST(PathVector, ValleyPathsAreRejected) {
  // Node 1 is a customer of both 0 and 2 (a classic stub AS): 0 and 2
  // cannot transit through 1 in either direction (c ⊕ p = φ), while 1
  // reaches both of its providers directly.
  const B1ProviderCustomer b1;
  Digraph d(3);
  ArcMap<BgpLabel> w;
  d.add_arc_pair(0, 1);  // 0→1 is "down": 1 is 0's customer
  w.push_back(BgpLabel::kCustomer);
  w.push_back(BgpLabel::kProvider);
  d.add_arc_pair(1, 2);  // 1→2 is "up": 2 is 1's provider
  w.push_back(BgpLabel::kProvider);
  w.push_back(BgpLabel::kCustomer);

  const auto to2 = path_vector(b1, d, w, 2);
  EXPECT_FALSE(to2.reachable(0));  // 0→1→2 is c ⊕ p = φ: a valley
  EXPECT_TRUE(to2.reachable(1));
  EXPECT_EQ(*to2.weight[1], BgpLabel::kProvider);
  const auto to0 = path_vector(b1, d, w, 0);
  EXPECT_FALSE(to0.reachable(2));  // 2→1→0 is the mirrored valley
  EXPECT_TRUE(to0.reachable(1));
}

TEST(PathVector, TieBreakIsDeterministicAndHopMinimal) {
  // Ring of 5 unit-weight edges: two routes per pair; the shorter arc
  // must win, and reruns give identical paths.
  const ShortestPath alg;
  const Graph g = ring(5);
  EdgeMap<std::uint64_t> w(g.edge_count(), 1);
  auto [dg, aw] = as_symmetric_digraph(g, w);
  const auto a = path_vector(alg, dg, aw, 0);
  const auto b = path_vector(alg, dg, aw, 0);
  for (NodeId u = 1; u < 5; ++u) {
    EXPECT_EQ(a.path[u], b.path[u]);
    EXPECT_LE(a.path[u].size() - 1, 2u);  // ring distance ≤ 2 from node 0
  }
}

TEST(PathVector, ReportsNonConvergenceWithinBudget) {
  // With max_rounds = 1 on a long line, distant nodes cannot have settled.
  const ShortestPath alg;
  const Graph g = path_graph(8);
  EdgeMap<std::uint64_t> w(g.edge_count(), 1);
  auto [dg, aw] = as_symmetric_digraph(g, w);
  const auto routes = path_vector(alg, dg, aw, 7, /*max_rounds=*/1);
  EXPECT_FALSE(routes.converged);
}

}  // namespace
}  // namespace cpr
