// The work-stealing pool and parallel_for: startup/shutdown hygiene,
// exception propagation from tasks and loop bodies, nesting safety, and a
// stress run with 10k tiny tasks. These are the properties every parallel
// construction in the library leans on.
#include "util/random.hpp"
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cpr {
namespace {

TEST(ThreadPool, StartsRequestedThreadsAndShutsDownCleanly) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    // Destructor joins with no work submitted.
  }
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SubmittedTasksRunAndReturnValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ShutdownDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.push([&ran] { ran.fetch_add(1); });
    }
    // Destructor must execute everything submitted before it.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, TaskExceptionArrivesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(pool, 5, 6, [&](std::size_t i) {
    EXPECT_EQ(i, 5u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, BodyExceptionRethrownOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 1000,
                   [](std::size_t i) {
                     if (i == 137) throw std::logic_error("body failed");
                   }),
      std::logic_error);
  // Pool remains usable afterwards.
  std::atomic<int> ok{0};
  parallel_for(pool, 0, 10, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ParallelFor, NestedLoopsMakeProgress) {
  // An inner parallel_for issued from worker context must complete even
  // when every worker is tied up in the outer loop — the caller
  // participates in chunk execution, so nesting cannot deadlock.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> cells(32 * 32);
  parallel_for(pool, 0, 32, [&](std::size_t row) {
    parallel_for(pool, 0, 32, [&](std::size_t col) {
      cells[row * 32 + col].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].load(), 1) << "cell=" << i;
  }
}

TEST(ParallelFor, WorksOnSingleThreadPool) {
  ThreadPool pool(1);
  std::vector<int> out(256, 0);
  parallel_for(pool, 0, out.size(),
               [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ParallelForBlocks, ChunksPartitionTheRange) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  parallel_for_blocks(pool, 10, 1000, 64,
                      [&](std::size_t lo, std::size_t hi) {
                        std::lock_guard<std::mutex> lock(mutex);
                        blocks.push_back({lo, hi});
                      });
  std::sort(blocks.begin(), blocks.end());
  std::size_t expect_lo = 10;
  for (const auto& [lo, hi] : blocks) {
    EXPECT_EQ(lo, expect_lo);
    EXPECT_LE(hi - lo, 64u);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, 1000u);
}

TEST(ThreadPoolStress, TenThousandTinyTasks) {
  ThreadPool pool(8);
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(10000);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i + 1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 10000ull * 10001ull / 2);
}

TEST(ThreadPoolStress, ManyConcurrentParallelFors) {
  // Several caller threads sharing one pool, each running its own
  // parallel_for — the cross-thread submit/steal paths under contention.
  ThreadPool pool(4);
  std::vector<std::thread> callers;
  std::vector<std::atomic<std::size_t>> totals(4);
  for (std::size_t c = 0; c < 4; ++c) {
    callers.emplace_back([&pool, &totals, c] {
      for (int round = 0; round < 10; ++round) {
        std::atomic<std::size_t> local{0};
        parallel_for(pool, 0, 500,
                     [&](std::size_t) { local.fetch_add(1); });
        totals[c].fetch_add(local.load());
      }
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(totals[c].load(), 500u * 10);
  }
}

TEST(Rng, ForkIsDeterministicAndScheduleIndependent) {
  Rng a(42), b(42);
  // Consuming the parent must not change what the children see.
  (void)a.uniform(0, 1000);
  for (std::uint64_t stream = 0; stream < 16; ++stream) {
    Rng ca = a.fork(stream);
    Rng cb = b.fork(stream);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(ca.uniform(0, 1 << 30), cb.uniform(0, 1 << 30));
    }
  }
  // Distinct streams diverge.
  Rng c0 = a.fork(0), c1 = a.fork(1);
  bool differs = false;
  for (int i = 0; i < 8; ++i) {
    differs |= c0.uniform(0, 1 << 30) != c1.uniform(0, 1 << 30);
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace cpr
