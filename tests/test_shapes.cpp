// The adversarial tree/graph shapes added for the ablations.
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "scheme/tree_router.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace cpr {
namespace {

TEST(Shapes, CaterpillarStructure) {
  const Graph g = caterpillar(10, 3);
  EXPECT_EQ(g.node_count(), 40u);
  EXPECT_EQ(g.edge_count(), 39u);  // a tree
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 4u);   // spine end: 1 spine + 3 legs
  EXPECT_EQ(g.degree(5), 5u);   // interior spine: 2 spine + 3 legs
  EXPECT_EQ(g.degree(39), 1u);  // leg
}

TEST(Shapes, BroomStructure) {
  const Graph g = broom(6, 10);
  EXPECT_EQ(g.node_count(), 16u);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_EQ(g.degree(5), 11u);  // hub: 1 handle + 10 bristles
  EXPECT_EQ(hop_diameter(g), 6u);  // handle end (5 hops to hub) + bristle
}

TEST(Shapes, LollipopStructure) {
  const Graph g = lollipop(5, 4);
  EXPECT_EQ(g.node_count(), 9u);
  EXPECT_EQ(g.edge_count(), 10u + 4u);  // K5 + tail
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(hop_diameter(g), 5u);  // across the clique then down the tail
}

TEST(Shapes, CompleteBipartiteStructure) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.node_count(), 7u);
  EXPECT_EQ(g.edge_count(), 12u);
  for (NodeId u = 0; u < 3; ++u) EXPECT_EQ(g.degree(u), 4u);
  for (NodeId v = 3; v < 7; ++v) EXPECT_EQ(g.degree(v), 3u);
  EXPECT_EQ(hop_diameter(g), 2u);
}

TEST(Shapes, TreeRouterHandlesTheTreeShapes) {
  for (const Graph& tree :
       {caterpillar(8, 4), broom(10, 20), kary_tree(31, 2)}) {
    std::vector<EdgeId> edges(tree.edge_count());
    std::iota(edges.begin(), edges.end(), EdgeId{0});
    const TreeRouter router(tree, edges, 0);
    for (NodeId s = 0; s < tree.node_count(); s += 3) {
      for (NodeId t = 0; t < tree.node_count(); t += 2) {
        EXPECT_TRUE(simulate_route(router, tree, s, t).delivered)
            << "s=" << s << " t=" << t;
      }
    }
  }
}

}  // namespace
}  // namespace cpr
