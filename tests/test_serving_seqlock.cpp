// Concurrency proof for the seqlock serving plane (run under the tsan
// preset in CI): forward_batch readers racing a live apply_delta patcher
// must only ever return batches bit-identical to a fresh compile of some
// scheme state they could legally have observed — never a torn mixture —
// and a writer crash mid-patch (injected via the test hook) must leave
// readers retrying/refusing and the next writer refusing the odd parity,
// with recovery through MaintainedFib compaction.
//
// Legality window: the patcher publishes two atomic counters around each
// absorbed event — `started` before apply_event/absorb, `finished`
// after. A reader samples lo = finished before its batch and
// hi = started after it; any coherent snapshot it can have walked is one
// of the scheme states lo..hi, so its batch hash must equal one of the
// precomputed fresh-compile hashes in that range. Every hash is computed
// from the full output (delivered + loop flags + hop-by-hop paths), so
// "legal" really means bit-identical serving.
#include "algebra/primitives.hpp"
#include "fib/compile.hpp"
#include "fib/fib_delta.hpp"
#include "fib/forward_engine.hpp"
#include "scheme/cowen.hpp"
#include "sim/churn.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace cpr {
namespace {

constexpr std::size_t kCorpusSeeds = 50;
constexpr std::size_t kN = 18;
constexpr double kP = 0.25;
constexpr std::size_t kEvents = 12;
constexpr std::size_t kReaderThreads = 8;

using test::all_pairs;
using test::batch_hash;

class ServingSeeds : public ::testing::TestWithParam<std::uint64_t> {};

// Satellite: 1 patcher thread driving the churn trace against 8 reader
// threads; every completed batch must be bit-identical to a fresh
// compile of some legally observable generation.
TEST_P(ServingSeeds, ConcurrentBatchesMatchSomeLegalGeneration) {
  const ShortestPath alg{16};
  const std::uint64_t seed = GetParam();
  auto inst = test::seeded_instance(alg, seed, kN, kP);
  const Graph& g = inst.graph;
  Rng trace_rng(seed ^ 0x5e41ull);
  const auto trace =
      random_churn_trace(alg, g, inst.weights, kEvents, trace_rng);
  const auto queries = all_pairs(g.node_count());

  // Precompute the oracle hash of every event prefix: expected[j] is a
  // fresh compile of the scheme after events 0..j-1. This replays the
  // trace on a scratch scheme/engine so the serving run below starts
  // from the same initial state.
  std::vector<std::uint64_t> expected;
  {
    auto inst2 = test::seeded_instance(alg, seed, kN, kP);
    ChurnEngine<ShortestPath> engine(alg, inst2.graph, inst2.weights);
    auto scheme = CowenScheme<ShortestPath>::build(alg, inst2.graph,
                                                   inst2.weights, inst2.rng);
    expected.push_back(
        batch_hash(forward_batch(compile_fib(scheme, inst2.graph), queries)));
    for (const auto& ev : trace) {
      const auto applied = engine.apply(ev);
      scheme.apply_event(applied.edge, applied.old_weight, applied.new_weight,
                         engine.weights(), /*rebuild_dirty_fraction=*/2.0);
      expected.push_back(batch_hash(
          forward_batch(compile_fib(scheme, inst2.graph), queries)));
    }
  }

  ChurnEngine<ShortestPath> engine(alg, g, inst.weights);
  auto scheme =
      CowenScheme<ShortestPath>::build(alg, g, inst.weights, inst.rng);
  // Force the in-place seqlock path (as the delta corpus tests do): on
  // these small graphs the natural thresholds would compact away the
  // very races this test exists to provoke.
  FibMaintainOptions mopt = fib_churn_maintain_options();
  mopt.compaction_fraction = 2.0;
  MaintainedFib<CowenScheme<ShortestPath>> plane(scheme, g, mopt);

  std::atomic<std::size_t> started{0};   // events whose absorb began
  std::atomic<std::size_t> finished{0};  // events whose absorb completed
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> illegal{0};
  std::atomic<std::size_t> batches{0};
  std::atomic<std::uint64_t> retries{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads);
  for (std::size_t r = 0; r < kReaderThreads; ++r) {
    readers.emplace_back([&] {
      ThreadPool pool(1);
      FibBatchOptions opt;
      opt.pool = &pool;
      opt.seqlock_max_retries = 1u << 20;
      while (!stop.load(std::memory_order_acquire)) {
        const std::size_t lo = finished.load(std::memory_order_acquire);
        const auto arena = plane.arena();
        const FibBatchOutput out = forward_batch(*arena, queries, opt);
        const std::size_t hi = started.load(std::memory_order_acquire);
        retries.fetch_add(out.seqlock_retries, std::memory_order_relaxed);
        batches.fetch_add(1, std::memory_order_relaxed);
        if (!test::hash_in_window(expected, batch_hash(out), lo, hi)) {
          illegal.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // The patcher: one thread, the single-writer contract.
  for (const auto& ev : trace) {
    started.fetch_add(1, std::memory_order_release);
    const auto applied = engine.apply(ev);
    const auto repair =
        scheme.apply_event(applied.edge, applied.old_weight,
                           applied.new_weight, engine.weights(),
                           /*rebuild_dirty_fraction=*/2.0);
    plane.absorb(repair.fib_delta, scheme);
    finished.fetch_add(1, std::memory_order_release);
    std::this_thread::yield();  // give batches a chance to interleave
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(illegal.load(), 0u)
      << "a reader served a batch matching NO legally observable "
         "generation (torn serving) out of "
      << batches.load() << " batches";
  EXPECT_GT(batches.load(), 0u);
  EXPECT_GT(plane.stats().patched, 0u)
      << "trace never exercised the seqlock patch path";
}

INSTANTIATE_TEST_SUITE_P(Corpus, ServingSeeds,
                         ::testing::Range<std::uint64_t>(0, kCorpusSeeds));

// ---- Writer-crash regression (the apply_delta parity re-verify) ----

struct CowenFixture {
  Graph g;
  CowenScheme<ShortestPath> scheme;
  static CowenFixture make(std::uint64_t seed) {
    const ShortestPath alg{16};
    auto inst = test::seeded_instance(alg, seed, kN, kP);
    auto scheme = CowenScheme<ShortestPath>::build(alg, inst.graph,
                                                   inst.weights, inst.rng);
    return {inst.graph, std::move(scheme)};
  }
};

// A two-slot delta any slacked Cowen arena accepts.
FibDelta two_slot_delta() {
  FibDelta d;
  d.touched_nodes = 2;
  d.patches.push_back(
      fib_patch_u32(fib_section::kCowenLandmarkPort, 0, kInvalidPort));
  d.patches.push_back(
      fib_patch_u32(fib_section::kCowenLandmarkPort, 1, kInvalidPort));
  return d;
}

TEST(SeqlockCrash, MidPatchCrashLeavesReadersRefusingNeverTorn) {
  auto fx = CowenFixture::make(7);
  FlatFib fib =
      compile_fib(fx.scheme, fx.g, fib_churn_maintain_options().compile);
  const auto queries = all_pairs(fx.g.node_count());

  // Writer dies after the first of two patches: generation stays odd.
  fib.simulate_writer_crash_after_for_test(1);
  EXPECT_TRUE(fib.apply_delta(two_slot_delta()));
  ASSERT_EQ(fib.generation() % 2, 1u)
      << "crash hook must leave the patch window open";

  // Strict readers refuse immediately...
  FibBatchOptions opt;
  EXPECT_THROW(forward_batch(fib, queries, opt), std::runtime_error);
  // ...and retrying readers keep retrying, then refuse — they never
  // return a result from the torn window.
  opt.seqlock_max_retries = 4;
  try {
    forward_batch(fib, queries, opt);
    FAIL() << "a batch was served off a torn arena";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("patch in progress"),
              std::string::npos)
        << e.what();
  }

  // The parity re-verify: a next writer must refuse to compound the
  // torn window, even though every patch in its delta is valid.
  EXPECT_FALSE(fib.apply_delta(two_slot_delta()))
      << "apply_delta compounded a crashed writer's odd generation";
}

TEST(SeqlockCrash, MaintainerRecoversByCompaction) {
  auto fx = CowenFixture::make(7);
  FibMaintainOptions mopt = fib_churn_maintain_options();
  mopt.compaction_fraction = 2.0;
  MaintainedFib<CowenScheme<ShortestPath>> plane(fx.scheme, fx.g, mopt);
  const auto queries = all_pairs(fx.g.node_count());

  // A reader pins the arena that is about to be torn.
  const auto torn = plane.arena();
  plane.fib_for_test().simulate_writer_crash_after_for_test(1);
  plane.absorb(two_slot_delta(), fx.scheme);
  ASSERT_EQ(torn->generation() % 2, 1u);

  // The next absorb finds the odd parity, refuses to patch, and
  // recovers by compacting into a fresh arena readers can adopt.
  plane.absorb(two_slot_delta(), fx.scheme);
  EXPECT_GT(plane.stats().compactions, 0u)
      << "recovery from a crashed writer must compact";
  const auto fresh = plane.arena();
  EXPECT_NE(fresh.get(), torn.get());
  EXPECT_EQ(fresh->generation() % 2, 0u);
  EXPECT_NO_THROW(forward_batch(*fresh, queries));
  // The torn arena stays refused for as long as anyone still holds it.
  EXPECT_THROW(forward_batch(*torn, queries), std::runtime_error);
}

// The retrying read path also rides out *completed* patches: a batch
// spanning an apply_delta re-runs and returns the settled state.
TEST(SeqlockRetry, BatchSpanningAPatchRetriesToTheSettledState) {
  auto fx = CowenFixture::make(11);
  FlatFib fib =
      compile_fib(fx.scheme, fx.g, fib_churn_maintain_options().compile);
  const auto queries = all_pairs(fx.g.node_count());

  std::atomic<bool> stop{false};
  std::thread patcher([&] {
    // Flip one landmark-port slot back and forth; each flip is a full
    // seqlock write cycle.
    const Port orig = fx.scheme.port_at_landmark(0);
    bool flip = false;
    while (!stop.load(std::memory_order_acquire)) {
      FibDelta d;
      d.touched_nodes = 1;
      d.patches.push_back(fib_patch_u32(fib_section::kCowenLandmarkPort, 0,
                                        flip ? kInvalidPort : orig));
      ASSERT_TRUE(fib.apply_delta(d));
      flip = !flip;
      std::this_thread::yield();
    }
  });

  ThreadPool pool(2);
  FibBatchOptions opt;
  opt.pool = &pool;
  opt.seqlock_max_retries = 1u << 20;
  for (int i = 0; i < 200; ++i) {
    const FibBatchOutput out = forward_batch(fib, queries, opt);
    // Every result is from a coherent snapshot: sources deliver to
    // themselves and paths start at their sources — cheap invariants a
    // torn walk breaks loudly.
    for (std::size_t q = 0; q < queries.size(); ++q) {
      if (queries[q].first == queries[q].second) {
        ASSERT_TRUE(out.results[q].delivered);
      }
      ASSERT_EQ(out.path(q).front(), queries[q].first);
    }
  }
  stop.store(true, std::memory_order_release);
  patcher.join();
}

}  // namespace
}  // namespace cpr
