// Property-based differential testing of incremental churn repair.
//
// The property: after *every* event of a seeded random churn trace, the
// incrementally repaired scheme is identical to a from-scratch rebuild on
// the engine's current φ-masked weight map —
//   SpanningTreeScheme::apply_event  vs  SpanningTreeScheme::build
//   CowenScheme::apply_event         vs  CowenScheme::rebuild_from
// (rebuild_from goes through all_pairs_trees + full table construction,
// a different code path from the per-root dijkstra_into patching, so the
// comparison is not a tautology; the Cowen repair is forced down the
// incremental path by passing a dirty-fraction threshold > 1).
//
// When a trace fails, it is minimized before being reported: the failing
// prefix is cut at the first mismatching event, then earlier events are
// greedily dropped while the replay still mismatches, and the shrunk
// trace is printed event-by-event — a handful of lines to paste into a
// regression test instead of a 20-event haystack.
#include "algebra/primitives.hpp"
#include "routing/dijkstra.hpp"
#include "scheme/cowen.hpp"
#include "scheme/spanning_tree.hpp"
#include "sim/churn.hpp"
#include "sim/resilience.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace cpr {
namespace {

// Forces CowenScheme::apply_event to stay on the incremental path: the
// dirty fraction can never exceed 1, so the fallback never triggers and
// the differential oracle exercises the patching code, not rebuild_from.
constexpr double kNeverRebuild = 2.0;

template <RoutingAlgebra A>
std::string describe_event(const A& alg,
                           const ChurnEvent<typename A::Weight>& ev,
                           const Graph& g) {
  std::ostringstream out;
  out << "t=" << ev.time << " edge=" << ev.edge << " (" << g.edge(ev.edge).u
      << "-" << g.edge(ev.edge).v << ") ";
  switch (ev.kind) {
    case ChurnKind::kEdgeDown:
      out << "DOWN";
      break;
    case ChurnKind::kEdgeUp:
      out << "UP w=" << alg.to_string(ev.new_weight);
      break;
    case ChurnKind::kWeightChange:
      out << "CHANGE w=" << alg.to_string(ev.new_weight);
      break;
  }
  return out.str();
}

// One replay of a (possibly shrunk) trace against fresh schemes.
enum class ReplayOutcome {
  kAllMatch,   // every event's incremental state matched the rebuild
  kMismatch,   // differential property violated (index reported)
  kInvalid,    // the trace is inconsistent / disconnects the graph
};

struct ReplayResult {
  ReplayOutcome outcome = ReplayOutcome::kAllMatch;
  std::size_t first_mismatch = 0;
  std::string detail;  // which structure diverged, for the failure report
};

// The scenario is a pure function of (alg, seed): replays always rebuild
// the same graph, weights and (Cowen) landmark choice, so shrinking can
// re-run candidate traces at will.
template <RoutingAlgebra A>
struct ChurnScenario {
  A alg;
  std::uint64_t seed = 0;
  std::size_t n = 18;
  double p = 0.25;
  std::size_t events = 20;

  std::vector<ChurnEvent<typename A::Weight>> make_trace() const {
    auto inst = test::seeded_instance(alg, seed, n, p);
    Rng trace_rng(seed ^ 0x9e3779b97f4a7c15ull);
    return random_churn_trace(alg, inst.graph, inst.weights, events,
                              trace_rng);
  }

  ReplayResult replay(
      const std::vector<ChurnEvent<typename A::Weight>>& trace) const {
    ReplayResult result;
    auto inst = test::seeded_instance(alg, seed, n, p);
    const Graph& g = inst.graph;
    try {
      ChurnEngine<A> engine(alg, g, inst.weights);
      auto tree = SpanningTreeScheme<A>::build(alg, g, inst.weights);
      auto cowen = CowenScheme<A>::build(alg, g, inst.weights, inst.rng);
      // The oracle shares the incremental scheme's (pinned) landmark set;
      // per event it does a full pinned-landmark rebuild.
      CowenScheme<A> oracle(cowen);

      for (std::size_t i = 0; i < trace.size(); ++i) {
        const AppliedChurn<typename A::Weight> applied =
            engine.apply(trace[i]);
        tree.apply_event(applied.edge, applied.old_weight, applied.new_weight,
                         engine.weights());
        cowen.apply_event(applied.edge, applied.old_weight, applied.new_weight,
                          engine.weights(), kNeverRebuild);

        const auto tree_oracle =
            SpanningTreeScheme<A>::build(alg, g, engine.weights());
        oracle.rebuild_from(engine.weights());

        const std::string diff = compare(g, tree, tree_oracle, cowen, oracle);
        if (!diff.empty()) {
          result.outcome = ReplayOutcome::kMismatch;
          result.first_mismatch = i;
          result.detail = diff;
          return result;
        }
      }
    } catch (const std::exception&) {
      // Shrunk candidates can become inconsistent (an up whose down was
      // dropped) or disconnect the graph; such traces are not evidence.
      result.outcome = ReplayOutcome::kInvalid;
      return result;
    }
    return result;
  }

  // Byte-level comparison of every piece of repaired state. Returns a
  // description of the first divergence, empty when identical.
  static std::string compare(const Graph& g, const SpanningTreeScheme<A>& tree,
                             const SpanningTreeScheme<A>& tree_oracle,
                             const CowenScheme<A>& cowen,
                             const CowenScheme<A>& oracle) {
    if (tree.tree_edges() != tree_oracle.tree_edges()) {
      return "spanning tree edge sets differ";
    }
    for (NodeId u = 0; u < g.node_count(); ++u) {
      std::ostringstream at;
      at << " at u=" << u;
      if (cowen.landmark_of(u) != oracle.landmark_of(u)) {
        return "cowen landmark_of" + at.str();
      }
      if (cowen.cluster_size(u) != oracle.cluster_size(u)) {
        return "cowen cluster_size" + at.str();
      }
      if (cowen.table(u) != oracle.table(u)) {
        return "cowen table" + at.str();
      }
      if (cowen.port_at_landmark(u) != oracle.port_at_landmark(u)) {
        return "cowen port_at_landmark" + at.str();
      }
    }
    return {};
  }

  // Greedy minimization: cut at the first mismatch, then drop earlier
  // events while the shrunk trace still mismatches on replay.
  std::vector<ChurnEvent<typename A::Weight>> shrink(
      std::vector<ChurnEvent<typename A::Weight>> failing,
      std::size_t first_mismatch) const {
    failing.resize(first_mismatch + 1);
    bool progress = true;
    while (progress && failing.size() > 1) {
      progress = false;
      for (std::size_t i = 0; i + 1 < failing.size(); ++i) {
        auto candidate = failing;
        candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
        const ReplayResult r = replay(candidate);
        if (r.outcome == ReplayOutcome::kMismatch) {
          candidate.resize(r.first_mismatch + 1);
          failing = std::move(candidate);
          progress = true;
          break;
        }
      }
    }
    return failing;
  }
};

template <RoutingAlgebra A>
void run_differential_trace(const A& alg, std::uint64_t seed) {
  ChurnScenario<A> scenario{alg, seed};
  const auto trace = scenario.make_trace();
  ASSERT_FALSE(trace.empty()) << alg.name() << " seed=" << seed;
  const ReplayResult full = scenario.replay(trace);
  ASSERT_NE(full.outcome, ReplayOutcome::kInvalid)
      << alg.name() << " seed=" << seed
      << ": generated trace must be consistent";
  if (full.outcome == ReplayOutcome::kAllMatch) return;

  // Minimize before reporting.
  const auto shrunk = scenario.shrink(trace, full.first_mismatch);
  auto inst = test::seeded_instance(alg, seed, scenario.n, scenario.p);
  std::ostringstream report;
  report << alg.name() << " seed=" << seed << ": incremental repair diverged ("
         << full.detail << ") at event " << full.first_mismatch << " of "
         << trace.size() << ".\nShrunk to " << shrunk.size()
         << " event(s):\n";
  for (const auto& ev : shrunk) {
    report << "  " << describe_event(alg, ev, inst.graph) << "\n";
  }
  ADD_FAILURE() << report.str();
}

class ChurnSeeds : public ::testing::TestWithParam<std::uint64_t> {};

// 18 seeds × 3 algebras = 54 seeded traces, ≥50 as the harness pins.
// The algebras cover Table 1's spread: strictly monotone additive
// (shortest path), tie-heavy bottleneck (widest path, where order-equal
// ≠ byte-equal and non-strict balls kick in), and multiplicative
// reliability.
TEST_P(ChurnSeeds, ShortestPathIncrementalMatchesRebuild) {
  run_differential_trace(ShortestPath{16}, GetParam());
}
TEST_P(ChurnSeeds, WidestPathIncrementalMatchesRebuild) {
  run_differential_trace(WidestPath{8}, GetParam());
}
TEST_P(ChurnSeeds, MostReliableIncrementalMatchesRebuild) {
  run_differential_trace(MostReliablePath{}, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Traces, ChurnSeeds,
                         ::testing::Range<std::uint64_t>(1, 19));

// The Cowen fallback path: a threshold of 0 pushes every event with a
// non-empty dirty set through the parallel rebuild_from, which must land
// in the same state as the forced-incremental path.
TEST(ChurnDifferential, FallbackRebuildAgreesWithIncremental) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, 77, 18, 0.25);
  ChurnEngine<ShortestPath> engine(alg, inst.graph, inst.weights);
  auto incremental =
      CowenScheme<ShortestPath>::build(alg, inst.graph, inst.weights, inst.rng);
  CowenScheme<ShortestPath> fallback(incremental);

  Rng trace_rng(7);
  const auto trace =
      random_churn_trace(alg, inst.graph, inst.weights, 12, trace_rng);
  ASSERT_FALSE(trace.empty());
  bool saw_fallback = false;
  for (const auto& ev : trace) {
    const auto applied = engine.apply(ev);
    incremental.apply_event(applied.edge, applied.old_weight,
                            applied.new_weight, engine.weights(),
                            kNeverRebuild);
    const CowenRepairStats stats = fallback.apply_event(
        applied.edge, applied.old_weight, applied.new_weight, engine.weights(),
        /*rebuild_dirty_fraction=*/0.0);
    saw_fallback = saw_fallback || stats.full_rebuild;
    for (NodeId u = 0; u < inst.graph.node_count(); ++u) {
      ASSERT_EQ(incremental.landmark_of(u), fallback.landmark_of(u)) << u;
      ASSERT_EQ(incremental.cluster_size(u), fallback.cluster_size(u)) << u;
      ASSERT_EQ(incremental.table(u), fallback.table(u)) << u;
      ASSERT_EQ(incremental.port_at_landmark(u), fallback.port_at_landmark(u))
          << u;
    }
  }
  EXPECT_TRUE(saw_fallback);
}

TEST(ChurnEngine, RejectsInconsistentEvents) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, 3, 10, 0.4);
  ChurnEngine<ShortestPath> engine(alg, inst.graph, inst.weights);

  ChurnEvent<std::uint64_t> down{0.0, ChurnKind::kEdgeDown, 0, {}};
  engine.apply(down);
  EXPECT_FALSE(engine.alive(0));
  EXPECT_EQ(engine.down_count(), 1u);
  EXPECT_TRUE(engine.down_mask()[0]);
  // Double down.
  EXPECT_THROW(engine.apply(down), std::invalid_argument);
  // Weight change on a dead edge.
  ChurnEvent<std::uint64_t> change{1.0, ChurnKind::kWeightChange, 0, 3};
  EXPECT_THROW(engine.apply(change), std::invalid_argument);
  // Up with a φ payload.
  ChurnEvent<std::uint64_t> bad_up{2.0, ChurnKind::kEdgeUp, 0,
                                   alg.phi()};
  EXPECT_THROW(engine.apply(bad_up), std::invalid_argument);
  // Legal up restores the edge.
  ChurnEvent<std::uint64_t> up{3.0, ChurnKind::kEdgeUp, 0, 5};
  const auto applied = engine.apply(up);
  EXPECT_TRUE(engine.alive(0));
  EXPECT_EQ(applied.new_weight, 5u);
  EXPECT_TRUE(alg.is_phi(applied.old_weight));
  // Up on a live edge.
  EXPECT_THROW(engine.apply(up), std::invalid_argument);
  // Out-of-range edge id.
  ChurnEvent<std::uint64_t> oob{4.0, ChurnKind::kEdgeDown,
                                inst.graph.edge_count(), {}};
  EXPECT_THROW(engine.apply(oob), std::invalid_argument);
}

TEST(ChurnEngine, ErrorMessagesCarryEventContext) {
  // A malformed trace must be locatable from the message alone: index in
  // the applied sequence, timestamp, edge id.
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, 3, 10, 0.4);
  ChurnEngine<ShortestPath> engine(alg, inst.graph, inst.weights);
  ASSERT_EQ(engine.applied_events(), 0u);

  engine.apply({0.0, ChurnKind::kEdgeDown, 2, {}});
  engine.apply({1.0, ChurnKind::kEdgeUp, 2, 7});
  ASSERT_EQ(engine.applied_events(), 2u);

  const auto message_of = [&](const ChurnEvent<std::uint64_t>& ev) {
    try {
      engine.apply(ev);
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string("NO THROW");
  };

  // The third event (index 2) goes bad; failed applies must not advance
  // the index.
  EXPECT_EQ(message_of({2.5, ChurnKind::kEdgeUp, 2, 7}),
            "ChurnEngine: edge already up (event index 2, t=2.500000, edge 2)");
  EXPECT_EQ(message_of({3.0, ChurnKind::kEdgeUp, 2, alg.phi()}),
            "ChurnEngine: edge already up (event index 2, t=3.000000, edge 2)");
  EXPECT_EQ(
      message_of({3.5, ChurnKind::kEdgeDown, inst.graph.edge_count(), {}}),
      "ChurnEngine: event edge out of range (event index 2, t=3.500000, edge " +
          std::to_string(inst.graph.edge_count()) + ")");
  engine.apply({4.0, ChurnKind::kEdgeDown, 2, {}});
  EXPECT_EQ(message_of({4.5, ChurnKind::kEdgeDown, 2, {}}),
            "ChurnEngine: edge already down (event index 3, t=4.500000, edge 2)");
  EXPECT_EQ(message_of({5.0, ChurnKind::kWeightChange, 2, 9}),
            "ChurnEngine: weight change on a down edge (event index 3, "
            "t=5.000000, edge 2)");
  EXPECT_EQ(message_of({5.5, ChurnKind::kEdgeUp, 2, alg.phi()}),
            "ChurnEngine: up event with phi weight (event index 3, t=5.500000, "
            "edge 2)");
  EXPECT_EQ(engine.applied_events(), 3u);
}

TEST(ChurnEngine, GeneratedTracesStayConsistentAndConnected) {
  const ShortestPath alg{32};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto inst = test::seeded_instance(alg, seed, 16, 0.3);
    Rng trace_rng(seed);
    const auto trace =
        random_churn_trace(alg, inst.graph, inst.weights, 30, trace_rng);
    ChurnEngine<ShortestPath> engine(alg, inst.graph, inst.weights);
    for (const auto& ev : trace) {
      ASSERT_NO_THROW(engine.apply(ev)) << "seed=" << seed;
      // keep_connected holds after every prefix, not just at the end.
      ASSERT_TRUE(engine.connected()) << "seed=" << seed;
    }
  }
}

// Protocol wiring: a down-only churn trace, translated by
// protocol_failures onto the mirrored digraph, must leave the path-vector
// protocol converged to the preferred weights of the φ-masked overlay —
// i.e. failures really do act as withdrawals and the survivors re-route.
TEST(ChurnProtocolWiring, FailuresBecomeWithdrawals) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, 21, 14, 0.35);
  const Graph& g = inst.graph;

  ChurnTraceOptions opt;
  opt.p_down = 1.0;  // only failures have a protocol counterpart
  opt.p_up = 0.0;
  Rng trace_rng(9);
  const auto trace =
      random_churn_trace(alg, g, inst.weights, 4, trace_rng, opt);
  ASSERT_FALSE(trace.empty());

  ChurnEngine<ShortestPath> engine(alg, g, inst.weights);
  for (const auto& ev : trace) engine.apply(ev);

  const Digraph mirror = digraph_mirror(g);
  ASSERT_EQ(mirror.arc_count(), 2 * g.edge_count());
  const ArcMap<std::uint64_t> arc_w = mirror_arc_weights(g, inst.weights);
  const auto failures = protocol_failures(trace);
  ASSERT_EQ(failures.size(), trace.size());

  PathVectorProtocol<ShortestPath> proto(alg, mirror, arc_w);
  const NodeId dest = 0;
  Rng proto_rng(4);
  const auto result = proto.run(dest, proto_rng, {}, failures);
  ASSERT_TRUE(result.converged);

  // Oracle: preferred weights on the post-churn overlay (undirected
  // weights are symmetric, so the tree from dest gives every v→dest
  // weight).
  const auto oracle = dijkstra(alg, g, engine.weights(), dest);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v == dest) continue;
    ASSERT_EQ(result.has_route(v), oracle.weight(v).has_value()) << "v=" << v;
    if (result.has_route(v)) {
      EXPECT_TRUE(order_equal(alg, *result.weight[v], *oracle.weight(v)))
          << "v=" << v << " proto=" << alg.to_string(*result.weight[v])
          << " oracle=" << alg.to_string(*oracle.weight(v));
    }
  }
}

// Convergence-window measurement: after repair the spanning-tree scheme
// routes over a valid spanning tree of the *live* overlay (the trace
// keeps the graph connected), so the repaired delivery rate is exactly 1
// while the stale rate is whatever the convergence window lost.
TEST(ChurnResilience, RepairedTreeDeliversEverything) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, 13, 20, 0.25);
  ChurnEngine<ShortestPath> engine(alg, inst.graph, inst.weights);
  auto scheme =
      SpanningTreeScheme<ShortestPath>::build(alg, inst.graph, inst.weights);

  Rng trace_rng(31);
  const auto trace =
      random_churn_trace(alg, inst.graph, inst.weights, 15, trace_rng);
  Rng pair_rng(8);
  const ChurnResilienceReport report = measure_resilience_under_churn(
      scheme, engine, trace, /*pairs_per_event=*/40, pair_rng);

  EXPECT_EQ(report.events, trace.size());
  EXPECT_EQ(report.pairs_per_event, 40u);
  EXPECT_DOUBLE_EQ(report.repaired_rate(), 1.0);
  EXPECT_LE(report.stale_delivered, report.repaired_delivered);
}

}  // namespace
}  // namespace cpr
