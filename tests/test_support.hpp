// Shared test scaffolding: the seeded random-graph corpus, algebra weight
// fixtures, and path-weight comparators that the scheme/solver tests keep
// needing. Everything is a pure function of the seeds passed in, so test
// cases stay reproducible and the parallel-determinism harness can rebuild
// byte-identical instances at will.
#pragma once

#include "algebra/algebra.hpp"
#include "fib/forward_engine.hpp"
#include "graph/generators.hpp"
#include "routing/path.hpp"
#include "routing/shortest_widest.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

namespace cpr::test {

// Every edge id of g in id order — the "whole graph is the tree" input of
// the tree-router tests.
inline std::vector<EdgeId> all_edges(const Graph& g) {
  std::vector<EdgeId> e(g.edge_count());
  std::iota(e.begin(), e.end(), EdgeId{0});
  return e;
}

// One alg-sampled weight per edge, drawn in edge-id order.
template <RoutingAlgebra A>
EdgeMap<typename A::Weight> sampled_weights(const A& alg, const Graph& g,
                                            Rng& rng) {
  EdgeMap<typename A::Weight> w(g.edge_count());
  for (auto& x : w) x = alg.sample(rng);
  return w;
}

// Integer weights in [lo, hi], in edge-id order.
inline EdgeMap<std::uint64_t> integer_weights(const Graph& g, Rng& rng,
                                              std::uint64_t lo,
                                              std::uint64_t hi) {
  EdgeMap<std::uint64_t> w(g.edge_count());
  for (auto& x : w) x = rng.uniform(lo, hi);
  return w;
}

// Shortest-widest fixtures: {capacity in [1, cap_max], cost in
// [1, cost_max]} per edge. Small ranges on purpose — ties are where SW
// solvers go wrong.
inline EdgeMap<ShortestWidest::Weight> random_sw_weights(
    const Graph& g, Rng& rng, std::uint64_t cap_max = 5,
    std::uint64_t cost_max = 9) {
  EdgeMap<ShortestWidest::Weight> w(g.edge_count());
  for (auto& x : w) {
    x = {rng.uniform(1, cap_max), rng.uniform(1, cost_max)};
  }
  return w;
}

// A seeded instance of the random-graph corpus: connected G(n, p) plus
// alg-sampled edge weights, all drawn from Rng(seed). The returned rng has
// consumed exactly the graph + weights, matching the historical pattern
// where scheme construction continues on the same stream.
template <RoutingAlgebra A>
struct SeededInstance {
  Rng rng;
  Graph graph;
  EdgeMap<typename A::Weight> weights;
};

template <RoutingAlgebra A>
SeededInstance<A> seeded_instance(const A& alg, std::uint64_t seed,
                                  std::size_t n, double p) {
  SeededInstance<A> inst{Rng(seed), Graph{}, {}};
  inst.graph = erdos_renyi_connected(n, p, inst.rng);
  inst.weights = sampled_weights(alg, inst.graph, inst.rng);
  return inst;
}

// ---- Forwarding-plane differential helpers ----

// Every (source, target) pair over n nodes in row-major order — the
// exhaustive query batch the forwarding differentials run.
inline std::vector<std::pair<NodeId, NodeId>> all_pairs(std::size_t n) {
  std::vector<std::pair<NodeId, NodeId>> q;
  q.reserve(n * n);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) q.emplace_back(s, t);
  }
  return q;
}

// FNV-1a over the complete batch output: result flags and the full
// recorded walks. Two batches hash equal iff they serve identically.
inline std::uint64_t batch_hash(const FibBatchOutput& out) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    const FibRouteResult& r = out.results[i];
    mix(r.delivered);
    mix(r.looped);
    const auto path = out.path(i);
    mix(path.size());
    for (const NodeId v : path) mix(v);
  }
  return h;
}

// Legality-window check (test_serving_seqlock.cpp's contract, shared by
// the cross-process patch-channel harness): a batch bracketed by
// generation counters lo/hi is legal iff its hash equals one of the
// fresh-compile hashes expected[lo..hi] (hi clamped to the corpus).
inline bool hash_in_window(const std::vector<std::uint64_t>& expected,
                           std::uint64_t h, std::size_t lo, std::size_t hi) {
  for (std::size_t j = lo; j <= hi && j < expected.size(); ++j) {
    if (expected[j] == h) return true;
  }
  return false;
}

// ---- Path-weight comparators ----

// The path realizes exactly the expected weight (up to order-equality).
template <RoutingAlgebra A>
::testing::AssertionResult path_weight_order_equal(
    const A& alg, const Graph& g, const EdgeMap<typename A::Weight>& w,
    const NodePath& path, const typename A::Weight& expected) {
  const auto achieved = weight_of_path(alg, g, w, path);
  if (!achieved.has_value()) {
    return ::testing::AssertionFailure()
           << alg.name() << ": path has no weight (size " << path.size()
           << ")";
  }
  if (!order_equal(alg, *achieved, expected)) {
    return ::testing::AssertionFailure()
           << alg.name() << ": achieved " << alg.to_string(*achieved)
           << " != expected " << alg.to_string(expected);
  }
  return ::testing::AssertionSuccess();
}

// The path's weight is within algebraic stretch k of the preferred weight:
// w(path) ⪯ preferred^k (Definition 3).
template <RoutingAlgebra A>
::testing::AssertionResult path_weight_within_stretch(
    const A& alg, const Graph& g, const EdgeMap<typename A::Weight>& w,
    const NodePath& path, const typename A::Weight& preferred,
    std::size_t k) {
  const auto achieved = weight_of_path(alg, g, w, path);
  if (!achieved.has_value()) {
    return ::testing::AssertionFailure()
           << alg.name() << ": path has no weight (size " << path.size()
           << ")";
  }
  const auto stretch = algebraic_stretch(alg, preferred, *achieved, k);
  if (!stretch.has_value()) {
    return ::testing::AssertionFailure()
           << alg.name() << ": achieved " << alg.to_string(*achieved)
           << " exceeds stretch " << k << " of preferred "
           << alg.to_string(preferred);
  }
  return ::testing::AssertionSuccess();
}

}  // namespace cpr::test
