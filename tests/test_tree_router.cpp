// The heavy-path tree router: delivery on every pair, agreement with the
// unique in-tree path, and the O(log n) label/memory guarantees that make
// Theorem 1's Θ(log n) rows of Table 1 real.
#include "graph/generators.hpp"
#include "scheme/tree_router.hpp"
#include "test_support.hpp"
#include "util/bitstream.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cpr {
namespace {

using test::all_edges;

void expect_all_pairs_delivered(const Graph& tree, NodeId root) {
  const TreeRouter router(tree, all_edges(tree), root);
  for (NodeId s = 0; s < tree.node_count(); ++s) {
    for (NodeId t = 0; t < tree.node_count(); ++t) {
      const RouteResult r = simulate_route(router, tree, s, t);
      ASSERT_TRUE(r.delivered) << "s=" << s << " t=" << t;
      EXPECT_EQ(r.path, router.tree_path(s, t)) << "s=" << s << " t=" << t;
    }
  }
}

class TreeRouterSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeRouterSeeds, DeliversOnRandomTrees) {
  Rng rng(GetParam());
  const Graph tree = random_tree(40, rng);
  expect_all_pairs_delivered(tree, static_cast<NodeId>(rng.index(40)));
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, TreeRouterSeeds,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(TreeRouter, DeliversOnPathStarAndKaryTrees) {
  expect_all_pairs_delivered(path_graph(17), 0);
  expect_all_pairs_delivered(path_graph(17), 8);
  expect_all_pairs_delivered(star(33), 0);
  expect_all_pairs_delivered(star(33), 5);  // root a leaf of the star
  expect_all_pairs_delivered(kary_tree(40, 3), 0);
}

TEST(TreeRouter, SingleNodeTrivia) {
  Graph g(1);
  const TreeRouter router(g, {}, 0);
  const RouteResult r = simulate_route(router, g, 0, 0);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.hops(), 0u);
}

TEST(TreeRouter, MemoryAndLabelsAreLogarithmic) {
  // Worst-ish cases: star (huge degree), path (deep), caterpillar,
  // random. Bound: c·log2(n) + c' bits with small constants.
  Rng rng(3);
  for (std::size_t n : {64u, 256u, 1024u}) {
    std::vector<std::pair<std::string, Graph>> shapes;
    shapes.push_back({"star", star(n)});
    shapes.push_back({"path", path_graph(n)});
    shapes.push_back({"random", random_tree(n, rng)});
    shapes.push_back({"binary", kary_tree(n, 2)});
    const double lg = std::log2(static_cast<double>(n));
    for (const auto& [name, tree] : shapes) {
      const TreeRouter router(tree, all_edges(tree), 0);
      for (NodeId v = 0; v < tree.node_count(); ++v) {
        EXPECT_LE(router.local_memory_bits(v), 5 * lg + 16)
            << name << " n=" << n << " v=" << v;
        EXPECT_LE(router.label_bits(v), 5 * lg + 16)
            << name << " n=" << n << " v=" << v;
      }
    }
  }
}

TEST(TreeRouter, StarLabelsStayTiny) {
  // On a star every leaf is a light child of the root at light depth 1;
  // the i-th biggest light subtree has size 1 so gamma indices grow, but
  // the label is still one gamma code + the dfs number.
  const Graph g = star(512);
  const TreeRouter router(g, all_edges(g), 0);
  EXPECT_LE(router.label_bits(0), 10u);  // root: dfs number only
  std::size_t worst = 0;
  for (NodeId v = 1; v < 512; ++v) {
    worst = std::max(worst, router.label_bits(v));
  }
  EXPECT_LE(worst, 9u + 2 * 9u + 1u);  // dfs + gamma(≤511)
}

TEST(TreeRouter, TreePathEndpointsAndAdjacency) {
  Rng rng(9);
  const Graph tree = random_tree(30, rng);
  const TreeRouter router(tree, all_edges(tree), 0);
  for (NodeId s = 0; s < 30; s += 5) {
    for (NodeId t = 0; t < 30; t += 3) {
      const NodePath p = router.tree_path(s, t);
      ASSERT_FALSE(p.empty());
      EXPECT_EQ(p.front(), s);
      EXPECT_EQ(p.back(), t);
      EXPECT_TRUE(is_simple_path(tree, p) || p.size() == 1);
    }
  }
}

TEST(TreeRouter, MalformedLabelFailsClosed) {
  const Graph g = star(8);
  const TreeRouter router(g, all_edges(g), 0);
  TreeRouter::Header h;
  h.target_dfs = 3;
  h.light_sequence = {};  // missing light entry
  const Decision d = router.forward(0, h);
  EXPECT_FALSE(d.deliver);
  EXPECT_EQ(d.port, kInvalidPort);
}

TEST(TreeRouter, HeaderCodecRoundTripsAtReportedSize) {
  // The label codec must produce exactly label_bits(v) bits and decode
  // back to an identical header — this is what makes the Θ(log n) label
  // claims of Table 1 bit-honest.
  Rng rng(11);
  for (const Graph& tree :
       {random_tree(128, rng), star(64), path_graph(50), kary_tree(81, 3)}) {
    const TreeRouter router(tree, all_edges(tree), 0);
    for (NodeId v = 0; v < tree.node_count(); ++v) {
      const auto header = router.make_header(v);
      const auto [bytes, bits] = router.encode_header(header);
      EXPECT_EQ(bits, router.label_bits(v)) << "v=" << v;
      const auto decoded = router.decode_header(bytes, bits);
      EXPECT_EQ(decoded.target_dfs, header.target_dfs);
      EXPECT_EQ(decoded.light_sequence, header.light_sequence);
    }
  }
}

TEST(TreeRouter, DecodedHeadersRouteCorrectly) {
  Rng rng(12);
  const Graph tree = random_tree(60, rng);
  const TreeRouter router(tree, all_edges(tree), 0);
  for (NodeId s = 0; s < 60; s += 7) {
    for (NodeId t = 0; t < 60; t += 3) {
      const auto [bytes, bits] = router.encode_header(router.make_header(t));
      auto header = router.decode_header(bytes, bits);
      // Hand-rolled walk with the decoded header.
      NodeId cur = s;
      for (int hop = 0; hop < 200; ++hop) {
        const Decision d = router.forward(cur, header);
        if (d.deliver) break;
        ASSERT_NE(d.port, kInvalidPort);
        cur = tree.neighbor(cur, d.port);
      }
      EXPECT_EQ(cur, t) << "s=" << s;
    }
  }
}

TEST(TreeRouter, HeaderMatchesLabelBits) {
  // The in-memory header and the counted label must describe the same
  // fields: dfs number within range, light sequence decodable.
  Rng rng(5);
  const Graph tree = random_tree(64, rng);
  const TreeRouter router(tree, all_edges(tree), 0);
  for (NodeId v = 0; v < 64; ++v) {
    const auto h = router.make_header(v);
    EXPECT_LT(h.target_dfs, 64u);
    EXPECT_GE(router.label_bits(v), bits_for_universe(64));
  }
}

}  // namespace
}  // namespace cpr
