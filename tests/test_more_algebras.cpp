// Hop count, real-valued costs, and the capped (non-delimited) algebra —
// including the Section-4.1 pitfall: a regular but non-delimited algebra
// where a within-stretch-3 detour simply does not exist.
#include "algebra/more_algebras.hpp"
#include "algebra/primitives.hpp"
#include "algebra/property_check.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "routing/dijkstra.hpp"
#include "routing/exhaustive.hpp"
#include "scheme/cowen.hpp"

#include <gtest/gtest.h>

namespace cpr {
namespace {

TEST(HopCountAlgebra, AxiomsAndClaims) {
  Rng rng(1);
  const HopCount h;
  const PropertyReport r = check_properties_sampled(h, rng, 8);
  EXPECT_TRUE(r.axioms_hold());
  EXPECT_TRUE(validate_claims(h.properties(), r).empty());
  EXPECT_EQ(h.combine(2, 3), 5u);
  EXPECT_TRUE(h.is_phi(h.combine(h.phi(), 1)));
}

TEST(HopCountAlgebra, MatchesBfsDistances) {
  Rng rng(2);
  const Graph g = erdos_renyi_connected(20, 0.2, rng);
  EdgeMap<std::uint64_t> w(g.edge_count(), 1);
  const auto tree = dijkstra(HopCount{}, g, w, 0);
  const auto bfs = bfs_distances(g, 0);
  for (NodeId v = 1; v < g.node_count(); ++v) {
    EXPECT_EQ(*tree.weight(v), bfs[v]) << "v=" << v;
  }
}

TEST(RealCostAlgebra, AxiomsAndClaims) {
  Rng rng(3);
  const RealCost rc;
  const PropertyReport r = check_properties_sampled(rc, rng, 16);
  EXPECT_TRUE(r.axioms_hold()) << describe(r);
  EXPECT_TRUE(validate_claims(rc.properties(), r).empty());
  EXPECT_TRUE(rc.is_phi(rc.combine(rc.phi(), 1.0)));
  EXPECT_DOUBLE_EQ(rc.combine(1.25, 2.5), 3.75);
}

TEST(CappedAlgebra, CombinesUpToBudgetThenPhi) {
  const auto bounded = capped(ShortestPath{8}, std::uint64_t{10});
  EXPECT_EQ(bounded.combine(4, 5), 9u);
  EXPECT_EQ(bounded.combine(5, 5), 10u);
  EXPECT_TRUE(bounded.is_phi(bounded.combine(6, 5)));
  EXPECT_TRUE(bounded.is_phi(bounded.combine(bounded.phi(), 1)));
  EXPECT_NE(bounded.name().find("capped at 10"), std::string::npos);
}

TEST(CappedAlgebra, RemainsRegularButNotDelimited) {
  const auto bounded = capped(ShortestPath{8}, std::uint64_t{12});
  const AlgebraProperties p = bounded.properties();
  EXPECT_TRUE(p.regular());
  EXPECT_TRUE(p.strictly_monotone);
  EXPECT_FALSE(p.delimited);
  EXPECT_FALSE(p.incompressible_by_thm2());  // Thm 2 premise needs D
  Rng rng(4);
  const PropertyReport r = check_properties_sampled(bounded, rng, 14);
  EXPECT_TRUE(r.monotone);
  EXPECT_TRUE(r.isotone) << describe(r);
  EXPECT_TRUE(r.strictly_monotone);
  EXPECT_FALSE(r.delimited);  // the checker must find a capped pair
  EXPECT_TRUE(validate_claims(p, r).empty());
}

TEST(CappedAlgebra, SamplesRespectBudget) {
  const auto bounded = capped(ShortestPath{100}, std::uint64_t{7});
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LE(bounded.sample(rng), 7u);
  }
}

TEST(CappedAlgebra, DijkstraRespectsTheBudget) {
  // Bounded-delay routing: a long cheap chain becomes unreachable once
  // the accumulated delay exceeds the budget.
  const auto bounded = capped(ShortestPath{8}, std::uint64_t{5});
  const Graph g = path_graph(8);
  EdgeMap<std::uint64_t> w(g.edge_count(), 1);
  const auto tree = dijkstra(bounded, g, w, 0);
  EXPECT_TRUE(tree.reachable(5));   // delay 5 = budget
  EXPECT_FALSE(tree.reachable(6));  // delay 6 > budget
  EXPECT_FALSE(tree.reachable(7));
}

TEST(CappedAlgebra, AgreesWithExhaustiveOnRandomGraphs) {
  const auto bounded = capped(ShortestPath{6}, std::uint64_t{14});
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const Graph g = erdos_renyi_connected(9, 0.35, rng);
    EdgeMap<std::uint64_t> w(g.edge_count());
    for (auto& x : w) x = bounded.sample(rng);
    for (NodeId s = 0; s < g.node_count(); ++s) {
      const auto tree = dijkstra(bounded, g, w, s);
      for (NodeId t = 0; t < g.node_count(); ++t) {
        if (s == t) continue;
        const auto truth = exhaustive_preferred(bounded, g, w, s, t);
        ASSERT_EQ(tree.reachable(t), truth.traversable())
            << "seed=" << seed << " s=" << s << " t=" << t;
        if (truth.traversable()) {
          EXPECT_TRUE(order_equal(bounded, *tree.weight(t), *truth.weight));
        }
      }
    }
  }
}

TEST(CappedAlgebra, Section41PitfallStretchedPathMayBePhi) {
  // The paper (Section 4.1): for non-delimited algebras "stretch-k" is
  // not even well defined, because w(p*)^k can be φ. Here w(p*) = 4 with
  // budget 10: the preferred path exists, but its cube 12 is already
  // untraversable — a stretch-3 detour is a contradiction in terms.
  const auto bounded = capped(ShortestPath{8}, std::uint64_t{10});
  const std::uint64_t preferred = 4;
  EXPECT_TRUE(bounded.is_phi(power(bounded, preferred, 3)));
  // Definition 3 taken literally now certifies an *untraversable* route
  // as "stretch 3", because φ ⪯ (w(p*))³ = φ — exactly the absurdity the
  // paper points out ("it allows the stretched path to be of infinite
  // weight"). We pin the pathology:
  EXPECT_EQ(algebraic_stretch(bounded, preferred, bounded.phi(), 8),
            std::optional<std::size_t>{3});
  // A within-budget detour of weight 8 still certifies at k = 2.
  EXPECT_EQ(algebraic_stretch(bounded, preferred, std::uint64_t{8}, 8),
            std::optional<std::size_t>{2});
}

TEST(CappedAlgebra, CowenDeliversWhenBudgetIsGenerous) {
  // With a budget comfortably above 3x the diameter cost, the capped
  // algebra behaves like plain shortest path and the Cowen scheme works.
  const auto bounded = capped(ShortestPath{4}, std::uint64_t{1000});
  Rng rng(6);
  const Graph g = erdos_renyi_connected(20, 0.3, rng);
  EdgeMap<std::uint64_t> w(g.edge_count());
  for (auto& x : w) x = bounded.sample(rng);
  const auto scheme =
      CowenScheme<CappedAlgebra<ShortestPath>>::build(bounded, g, w, rng);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      EXPECT_TRUE(simulate_route(scheme, g, s, t).delivered);
    }
  }
}

TEST(CappedAlgebra, CowenCanStrandPacketsWhenBudgetIsTight) {
  // The executable form of the Section-4.1 warning: on a ring with a
  // tight budget, landmark detours can exceed the budget — the route the
  // scheme produces is not traversable under the algebra even though a
  // preferred path exists. We detect it as a delivered-but-φ route (or a
  // failed delivery), and require that at least one pair exhibits it.
  const auto bounded = capped(ShortestPath{1}, std::uint64_t{6});
  const Graph g = ring(12);
  EdgeMap<std::uint64_t> w(g.edge_count(), 1);
  bool pitfall = false;
  for (std::uint64_t seed = 1; seed <= 10 && !pitfall; ++seed) {
    Rng rng(seed);
    CowenOptions opt;
    opt.initial_landmarks = 2;
    const auto scheme = CowenScheme<CappedAlgebra<ShortestPath>>::build(
        bounded, g, w, rng, opt);
    for (NodeId s = 0; s < g.node_count() && !pitfall; ++s) {
      for (NodeId t = 0; t < g.node_count() && !pitfall; ++t) {
        if (s == t) continue;
        const auto truth = dijkstra(bounded, g, w, s);
        if (!truth.reachable(t)) continue;  // preferred path must exist
        const RouteResult r = simulate_route(scheme, g, s, t);
        if (!r.delivered) {
          pitfall = true;
        } else {
          const auto achieved = weight_of_path(bounded, g, w, r.path);
          if (achieved.has_value() && bounded.is_phi(*achieved)) {
            pitfall = true;
          }
        }
      }
    }
  }
  EXPECT_TRUE(pitfall)
      << "expected at least one stranded/untraversable route on the ring";
}

}  // namespace
}  // namespace cpr
