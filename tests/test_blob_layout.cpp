// Golden-file pin of the on-disk "CPRFIB03" arena layout.
//
// ArenaStore publishes these blobs as files that *other processes* —
// possibly running older or newer builds — mmap and serve, so the byte
// layout is a wire format now, not an implementation detail. This test
// builds a small hand-specified Cowen arena and compares it
// byte-for-byte against tests/golden/cowen_small_v3.hex; it also spells
// out the header field offsets, little-endian encoding, and 64-byte
// section alignment as direct assertions, so a diff here tells the
// reader exactly which layout promise broke. Any intentional change to
// the format must bump the magic version and regenerate the golden file
// (run with CPR_UPDATE_GOLDEN=1) — silently shifting bytes would make
// every published arena in a fleet unreadable or, worse, misread.
//
// tests/golden/cowen_small_v2.hex — the previous format's pin — stays
// in the tree as the *backward-compat* artifact: a fleet rolls forward
// with v2 blobs still on disk, so today's loader must keep opening and
// serving yesterday's bytes (through the binary-search path; v2 has no
// Eytzinger mirror).
#include "fib/flat_fib.hpp"
#include "fib/forward_engine.hpp"
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace cpr {
namespace {

#ifndef CPR_GOLDEN_DIR
#error "CPR_GOLDEN_DIR must point at tests/golden"
#endif

const std::string kGoldenPath =
    std::string(CPR_GOLDEN_DIR) + "/cowen_small_v3.hex";
const std::string kGoldenV2Path =
    std::string(CPR_GOLDEN_DIR) + "/cowen_small_v2.hex";
const std::string kGoldenV4Path =
    std::string(CPR_GOLDEN_DIR) + "/cowen_small_v4.hex";

// The golden arena: a 3-node path 0-1-2 with fully hand-written Cowen
// sections (capacity 2 per row, node 1 as everyone's landmark). Every
// byte of the result is determined by this function and the format —
// no scheme construction, no RNG — so the golden file pins exactly the
// serialization layer.
FlatFib build_golden_fib() {
  Graph g(3);
  g.add_edge(0, 1);  // edge 0: port 0 at both ends
  g.add_edge(1, 2);  // edge 1: port 1 at node 1, port 0 at node 2
  FibBuilder b(FibKind::kCowen, 3);
  b.add_topology(g);
  const std::vector<std::uint32_t> row_off = {0, 2, 4, 6};  // capacity CSR
  const std::vector<std::uint32_t> row_len = {1, 2, 1};
  const std::vector<std::uint64_t> rows = {
      fib_pack_entry(1, 0), 0,                          // node 0 (+slack)
      fib_pack_entry(0, 0), fib_pack_entry(2, 1),       // node 1
      fib_pack_entry(1, 0), 0,                          // node 2 (+slack)
  };
  const std::vector<std::uint32_t> landmark = {1, 1, 1};
  const std::vector<std::uint32_t> landmark_port = {0, kInvalidPort, 0};
  b.add_array(fib_section::kCowenRowOff, row_off);
  b.add_array(fib_section::kCowenRowLen, row_len);
  b.add_array(fib_section::kCowenRows, rows);
  b.add_array(fib_section::kCowenLandmark, landmark);
  b.add_array(fib_section::kCowenLandmarkPort, landmark_port);
  return b.finish();
}

// The v4 golden arena: the same 3-node path, lifted to the
// name-independent kTz kind with the hand-picked label permutation
// node 0 → 2, node 1 → 0, node 2 → 1. Rows are re-keyed (and re-sorted)
// by label, the landmark arrays are indexed by label, and the two new
// sections pin the v4 wire format: the label map and the bucketed
// name → label dictionary (one bucket of capacity 4 at n = 3, exactly
// what fib_dict_bucket_count sizes).
FlatFib build_golden_tz_fib() {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  FibBuilder b(FibKind::kTz, 3);
  b.add_topology(g);
  const std::vector<std::uint32_t> row_off = {0, 2, 4, 6};  // capacity CSR
  const std::vector<std::uint32_t> row_len = {1, 2, 1};
  const std::vector<std::uint64_t> rows = {
      fib_pack_entry(0, 0), 0,                     // node 0: landmark's label
      fib_pack_entry(1, 1), fib_pack_entry(2, 0),  // node 1: both neighbors
      fib_pack_entry(0, 0), 0,                     // node 2
  };
  // Indexed by label: every label's landmark is node 1 (label 0); the
  // port toward it from node_of(label) — node 1 itself has none.
  const std::vector<std::uint32_t> landmark = {0, 0, 0};
  const std::vector<std::uint32_t> landmark_port = {kInvalidPort, 0, 0};
  const std::vector<std::uint32_t> label_of = {2, 0, 1};
  const std::vector<std::uint64_t> dictionary = {
      1, 4,  // bucket_count, bucket_cap
      fib_pack_entry(0, 2), fib_pack_entry(1, 0), fib_pack_entry(2, 1),
      kFibDictEmpty,
  };
  b.add_array(fib_section::kCowenRowOff, row_off);
  b.add_array(fib_section::kCowenRowLen, row_len);
  b.add_array(fib_section::kCowenRows, rows);
  b.add_array(fib_section::kCowenLandmark, landmark);
  b.add_array(fib_section::kCowenLandmarkPort, landmark_port);
  b.add_array(fib_section::kLabelMap, label_of);
  b.add_array(fib_section::kDictionary, dictionary);
  return b.finish();
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2 + bytes.size() / 32 + 1);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i > 0 && i % 32 == 0) out.push_back('\n');
    out.push_back(digits[bytes[i] >> 4]);
    out.push_back(digits[bytes[i] & 0xf]);
  }
  out.push_back('\n');
  return out;
}

std::vector<std::uint8_t> from_hex(const std::string& text) {
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::vector<std::uint8_t> bytes;
  int hi = -1;
  for (const char c : text) {
    const int v = nibble(c);
    if (v < 0) continue;  // whitespace/newlines
    if (hi < 0) {
      hi = v;
    } else {
      bytes.push_back(static_cast<std::uint8_t>((hi << 4) | v));
      hi = -1;
    }
  }
  return bytes;
}

template <typename T>
T read_le(std::span<const std::uint8_t> blob, std::size_t offset) {
  T v{};
  std::memcpy(&v, blob.data() + offset, sizeof(T));
  return v;
}

TEST(BlobLayout, GoldenFileMatchesByteForByte) {
  const FlatFib fib = build_golden_fib();
  const auto blob = fib.blob();

  if (std::getenv("CPR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
    out << to_hex(blob);
    GTEST_SKIP() << "golden file regenerated at " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in) << "missing golden file " << kGoldenPath
                  << " (generate with CPR_UPDATE_GOLDEN=1)";
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const std::vector<std::uint8_t> golden = from_hex(text);

  ASSERT_EQ(blob.size(), golden.size())
      << "CPRFIB03 blob size changed — this is a wire-format break; bump "
         "the version and regenerate the golden file deliberately";
  for (std::size_t i = 0; i < golden.size(); ++i) {
    ASSERT_EQ(blob[i], golden[i])
        << "CPRFIB03 byte " << i << " changed — wire-format break; bump "
           "the version and regenerate the golden file deliberately";
  }
}

// Yesterday's wire format: the committed v2 golden (no Eytzinger
// mirror) must keep opening under today's validator and serve the same
// routes — fleets roll the binary forward without republishing arenas.
TEST(BlobLayout, V2BlobStillOpensAndServes) {
  std::ifstream in(kGoldenV2Path);
  ASSERT_TRUE(in) << "missing v2 compat golden " << kGoldenV2Path;
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const std::vector<std::uint8_t> golden = from_hex(text);

  const FlatFib fib = FlatFib::from_blob({golden.data(), golden.size()});
  EXPECT_EQ(fib.blob_version(), 2u);
  EXPECT_EQ(fib.kind(), FibKind::kCowen);
  EXPECT_EQ(fib.cowen().eyt, nullptr);  // no mirror: binary-search path
  const std::vector<std::pair<NodeId, NodeId>> queries = {
      {0, 2}, {2, 0}, {0, 1}, {1, 0}};
  for (const FibDispatch mode : {FibDispatch::kScalar, FibDispatch::kSimd}) {
    FibBatchOptions opt;
    opt.dispatch = mode;
    const FibBatchOutput out = forward_batch(fib, queries, opt);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_TRUE(out.results[i].delivered)
          << "query " << i << " dispatch " << static_cast<int>(mode);
    }
    const auto p = out.path(0);
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p[1], 1u);
  }
}

TEST(BlobLayout, GoldenBytesReopenAndServe) {
  std::ifstream in(kGoldenPath);
  if (!in) GTEST_SKIP() << "golden file not generated yet";
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const std::vector<std::uint8_t> golden = from_hex(text);

  // Yesterday's bytes must open under today's validator and route: the
  // path graph delivers 0 -> 2 through the landmark at 1.
  const FlatFib fib = FlatFib::from_blob({golden.data(), golden.size()});
  EXPECT_EQ(fib.kind(), FibKind::kCowen);
  EXPECT_EQ(fib.node_count(), 3u);
  const std::vector<std::pair<NodeId, NodeId>> queries = {
      {0, 2}, {2, 0}, {0, 1}, {1, 0}};
  const FibBatchOutput out = forward_batch(fib, queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(out.results[i].delivered) << "query " << i;
  }
  const auto p = out.path(0);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], 0u);
  EXPECT_EQ(p[1], 1u);
  EXPECT_EQ(p[2], 2u);
}

// The v4 pin: same update discipline as the v3 golden. A kTz arena is
// the first (and so far only) content that emits the CPRFIB04 magic —
// arenas without label sections must keep serializing byte-identical v3
// (which the v3 golden above enforces).
TEST(BlobLayout, TzGoldenFileMatchesByteForByte) {
  const FlatFib fib = build_golden_tz_fib();
  const auto blob = fib.blob();

  if (std::getenv("CPR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenV4Path, std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << kGoldenV4Path;
    out << to_hex(blob);
    GTEST_SKIP() << "golden file regenerated at " << kGoldenV4Path;
  }

  std::ifstream in(kGoldenV4Path);
  ASSERT_TRUE(in) << "missing golden file " << kGoldenV4Path
                  << " (generate with CPR_UPDATE_GOLDEN=1)";
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const std::vector<std::uint8_t> golden = from_hex(text);

  ASSERT_EQ(blob.size(), golden.size())
      << "CPRFIB04 blob size changed — wire-format break; bump the "
         "version and regenerate the golden file deliberately";
  for (std::size_t i = 0; i < golden.size(); ++i) {
    ASSERT_EQ(blob[i], golden[i])
        << "CPRFIB04 byte " << i << " changed — wire-format break; bump "
           "the version and regenerate the golden file deliberately";
  }
}

// v4 header + directory shape, and the name-addressed routes: names
// resolve through the dictionary, forwarding runs in label space, and
// the path graph still delivers 0 → 2 through the landmark at node 1.
TEST(BlobLayout, TzGoldenBytesReopenAndServe) {
  const FlatFib fib = build_golden_tz_fib();
  const auto blob = fib.blob();
  ASSERT_GE(blob.size(), 40u);
  EXPECT_EQ(std::memcmp(blob.data(), "CPRFIB04", 8), 0);
  EXPECT_EQ(read_le<std::uint32_t>(blob, 8), 6u);  // kind = kTz
  // 3 topology + 5 cowen + label map + dictionary + synthesized mirror.
  EXPECT_EQ(read_le<std::uint32_t>(blob, 16), 11u);

  const FlatFib reopened = FlatFib::from_blob({blob.data(), blob.size()});
  EXPECT_EQ(reopened.blob_version(), 4u);
  EXPECT_EQ(reopened.kind(), FibKind::kTz);
  const std::vector<std::pair<NodeId, NodeId>> queries = {
      {0, 2}, {2, 0}, {0, 1}, {1, 0}};
  for (const FibDispatch mode : {FibDispatch::kScalar, FibDispatch::kSimd}) {
    FibBatchOptions opt;
    opt.dispatch = mode;
    const FibBatchOutput out = forward_batch(reopened, queries, opt);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_TRUE(out.results[i].delivered)
          << "query " << i << " dispatch " << static_cast<int>(mode);
    }
    const auto p = out.path(0);
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p[1], 1u);
  }
}

// A kTz kind stamped into a pre-v4 container must be rejected: the label
// sections it depends on cannot exist there, and an old reader's "unknown
// kind" failure is exactly what the version gate reproduces forward.
TEST(BlobLayout, TzKindInV3ContainerIsRejected) {
  const FlatFib fib = build_golden_fib();  // a v3 Cowen arena
  const auto blob = fib.blob();
  std::vector<std::uint8_t> bytes(blob.begin(), blob.end());
  std::uint32_t kind = 6;  // kTz
  std::memcpy(bytes.data() + 8, &kind, 4);
  EXPECT_THROW(FlatFib::from_blob(bytes), std::runtime_error);
}

// The layout promises, stated as offsets — the documentation of record
// for anyone parsing these files outside this codebase.
TEST(BlobLayout, HeaderAndDirectoryOffsetsArePinned) {
  const FlatFib fib = build_golden_fib();
  const auto blob = fib.blob();

  // Header: magic[8] | kind u32 | node_count u32 | section_count u32 |
  // reserved u32 | payload_bytes u64 | checksum u64 — 40 bytes, all
  // little-endian.
  ASSERT_GE(blob.size(), 40u);
  EXPECT_EQ(std::memcmp(blob.data(), "CPRFIB03", 8), 0);
  EXPECT_EQ(read_le<std::uint32_t>(blob, 8), 3u);   // kind = kCowen
  EXPECT_EQ(read_le<std::uint32_t>(blob, 12), 3u);  // node_count
  const std::uint32_t sections = read_le<std::uint32_t>(blob, 16);
  EXPECT_EQ(sections, 9u);  // 3 topology + 5 cowen + synthesized mirror
  EXPECT_EQ(read_le<std::uint32_t>(blob, 20), 0u);  // reserved
  const std::uint64_t payload_bytes = read_le<std::uint64_t>(blob, 24);
  EXPECT_EQ(40u + 24u * sections + payload_bytes +
                (64u - (40u + 24u * sections) % 64u) % 64u,
            blob.size());

  // Directory: 24-byte entries {id u32, pad u32, offset u64, bytes u64}
  // starting at byte 40; offsets are blob-relative and 64-byte aligned;
  // sections appear in the order the builder added them, with the
  // synthesized v3 Eytzinger mirror appended last — so the v2 ordering
  // is a strict prefix of the v3 ordering.
  const std::uint32_t expected_ids[] = {
      fib_section::kTopoOffsets,       fib_section::kTopoNeighbor,
      fib_section::kTopoEdge,          fib_section::kCowenRowOff,
      fib_section::kCowenRowLen,       fib_section::kCowenRows,
      fib_section::kCowenLandmark,     fib_section::kCowenLandmarkPort,
      fib_section::kCowenRowsEyt,
  };
  std::uint64_t prev_end = 40 + 24ull * sections;
  for (std::uint32_t s = 0; s < sections; ++s) {
    const std::size_t e = 40 + 24ull * s;
    EXPECT_EQ(read_le<std::uint32_t>(blob, e), expected_ids[s])
        << "directory entry " << s;
    EXPECT_EQ(read_le<std::uint32_t>(blob, e + 4), 0u) << "pad " << s;
    const std::uint64_t offset = read_le<std::uint64_t>(blob, e + 8);
    EXPECT_EQ(offset % 64, 0u) << "section " << s << " misaligned";
    EXPECT_GE(offset, prev_end) << "section " << s << " overlaps";
    prev_end = offset + read_le<std::uint64_t>(blob, e + 16);
  }

  // Endianness of the payload itself: the first Cowen row entry is
  // fib_pack_entry(1, 0) = key 1 in the high u32, port 0 in the low —
  // stored little-endian, so bytes 4..7 of the entry read 01 00 00 00.
  const std::uint64_t rows_off = read_le<std::uint64_t>(blob, 40 + 24ull * 5 + 8);
  EXPECT_EQ(read_le<std::uint64_t>(blob, rows_off), fib_pack_entry(1, 0));
  const std::uint8_t expect_bytes[8] = {0, 0, 0, 0, 1, 0, 0, 0};
  EXPECT_EQ(std::memcmp(blob.data() + rows_off, expect_bytes, 8), 0)
      << "packed row entries must serialize little-endian";
}

}  // namespace
}  // namespace cpr
