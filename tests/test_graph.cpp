#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cpr {
namespace {

TEST(Graph, AddNodesAndEdges) {
  Graph g(3);
  EXPECT_EQ(g.node_count(), 3u);
  const EdgeId e = g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge(e).u, 0u);
  EXPECT_EQ(g.edge(e).v, 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.add_node(), 3u);
}

TEST(Graph, RejectsSelfLoopsAndParallels) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 7), std::out_of_range);
}

TEST(Graph, PortsAndOpposite) {
  Graph g(4);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  const EdgeId e = g.add_edge(1, 3);
  EXPECT_EQ(g.port_to(1, 3), 2u);
  EXPECT_EQ(g.neighbor(1, g.port_to(1, 3)), 3u);
  EXPECT_EQ(g.port_to(1, 1), kInvalidPort);
  EXPECT_EQ(g.opposite(e, 1), 3u);
  EXPECT_EQ(g.opposite(e, 3), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(Digraph, ArcPairsAreMirrored) {
  Digraph d(3);
  const ArcId fwd = d.add_arc_pair(0, 1);
  const ArcId bwd = d.reverse(fwd);
  EXPECT_EQ(d.arc(fwd).from, 0u);
  EXPECT_EQ(d.arc(fwd).to, 1u);
  EXPECT_EQ(d.arc(bwd).from, 1u);
  EXPECT_EQ(d.arc(bwd).to, 0u);
  EXPECT_EQ(d.reverse(bwd), fwd);
  EXPECT_EQ(d.out_degree(0), 1u);
  EXPECT_EQ(d.in_degree(0), 1u);
  EXPECT_THROW(d.add_arc_pair(0, 1), std::invalid_argument);
  EXPECT_THROW(d.add_arc_pair(2, 2), std::invalid_argument);
}

TEST(Digraph, UndirectedShadowKeepsAdjacency) {
  Digraph d(4);
  d.add_arc_pair(0, 1);
  d.add_arc_pair(1, 2);
  d.add_arc_pair(2, 3);
  const Graph g = d.undirected_shadow();
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Algorithms, Connectivity) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_FALSE(is_connected(g));
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  EXPECT_TRUE(is_connected(g));
}

TEST(Algorithms, BfsDistancesAndParents) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(3, 2);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[4], std::numeric_limits<std::size_t>::max());
  const auto par = bfs_parents(g, 0);
  EXPECT_EQ(par[0], 0u);
  EXPECT_TRUE(par[2] == 1u || par[2] == 3u);
  EXPECT_EQ(par[4], kInvalidNode);
}

TEST(Algorithms, HopDiameter) {
  Graph path(4);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  path.add_edge(2, 3);
  EXPECT_EQ(hop_diameter(path), 3u);
  EXPECT_EQ(hop_diameter(Graph(1)), 0u);
}

TEST(Algorithms, SpanningTreeCheck) {
  Graph g(4);
  const EdgeId e0 = g.add_edge(0, 1);
  const EdgeId e1 = g.add_edge(1, 2);
  const EdgeId e2 = g.add_edge(2, 3);
  const EdgeId e3 = g.add_edge(3, 0);
  EXPECT_TRUE(is_spanning_tree(g, {e0, e1, e2}));
  EXPECT_FALSE(is_spanning_tree(g, {e0, e1}));           // too few
  EXPECT_FALSE(is_spanning_tree(g, {e0, e1, e2, e3}));   // too many
}

TEST(Algorithms, UnionFind) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(0, 2));
  EXPECT_EQ(uf.find(3), uf.find(1));
}

TEST(Algorithms, StronglyConnectedComponents) {
  // 0 -> 1 -> 2 -> 0 form an SCC; 3 hangs off it.
  const auto succ = [](NodeId v) -> std::vector<NodeId> {
    switch (v) {
      case 0: return {1};
      case 1: return {2};
      case 2: return {0, 3};
      default: return {};
    }
  };
  const auto comp = strongly_connected_components(4, succ);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(Algorithms, TopologicalOrderDetectsCycles) {
  const auto dag = [](NodeId v) -> std::vector<NodeId> {
    return v == 0 ? std::vector<NodeId>{1, 2}
                  : (v == 1 ? std::vector<NodeId>{2} : std::vector<NodeId>{});
  };
  const auto order = topological_order(3, dag);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->front(), 0u);
  EXPECT_EQ(order->back(), 2u);

  const auto cyclic = [](NodeId v) -> std::vector<NodeId> {
    return {static_cast<NodeId>((v + 1) % 3)};
  };
  EXPECT_FALSE(topological_order(3, cyclic).has_value());
}

TEST(GraphIo, EdgeListRoundTrip) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  std::stringstream buffer;
  write_edge_list(g, buffer);
  const Graph h = read_edge_list(buffer);
  EXPECT_EQ(h.node_count(), 4u);
  EXPECT_EQ(h.edge_count(), 3u);
  EXPECT_TRUE(h.has_edge(1, 2));
}

TEST(GraphIo, WeightedEdgeListRoundTrip) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EdgeMap<std::uint64_t> w = {7, 9};
  std::stringstream buffer;
  write_weighted_edge_list(g, w, buffer);
  EdgeMap<std::uint64_t> w2;
  const Graph h = read_weighted_edge_list(buffer, w2);
  EXPECT_EQ(h.edge_count(), 2u);
  EXPECT_EQ(w2, w);
}

TEST(GraphIo, MalformedInputThrows) {
  std::stringstream buffer("not a header");
  EXPECT_THROW(read_edge_list(buffer), std::runtime_error);
}

TEST(GraphIo, DotContainsAllEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  std::vector<std::string> labels = {"a", "b"};
  const std::string dot = to_dot(g, &labels);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"b\""), std::string::npos);

  Digraph d(2);
  d.add_arc_pair(0, 1);
  const std::string ddot = to_dot(d);
  EXPECT_NE(ddot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(ddot.find("n1 -> n0"), std::string::npos);
}

}  // namespace
}  // namespace cpr
