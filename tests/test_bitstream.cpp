// Round-trip tests for the bit-exact encoders. Every memory figure the
// benches report flows through BitWriter, so these tests are what makes
// the reported bit counts trustworthy.
#include "util/bitstream.hpp"
#include "util/random.hpp"

#include <gtest/gtest.h>

namespace cpr {
namespace {

TEST(BitWriter, EmptyHasZeroBits) {
  BitWriter w;
  EXPECT_EQ(w.bit_count(), 0u);
  EXPECT_TRUE(w.bytes().empty());
}

TEST(BitWriter, SingleBitRoundTrip) {
  BitWriter w;
  w.write_bit(true);
  w.write_bit(false);
  w.write_bit(true);
  EXPECT_EQ(w.bit_count(), 3u);
  BitReader r(w.bytes());
  EXPECT_TRUE(r.read_bit());
  EXPECT_FALSE(r.read_bit());
  EXPECT_TRUE(r.read_bit());
}

TEST(BitWriter, FixedWidthRoundTrip) {
  BitWriter w;
  w.write_bits(0xdeadbeefcafef00dull, 64);
  w.write_bits(0x2a, 7);
  BitReader r(w.bytes());
  EXPECT_EQ(r.read_bits(64), 0xdeadbeefcafef00dull);
  EXPECT_EQ(r.read_bits(7), 0x2au);
}

TEST(BitWriter, RejectsOversizedWidth) {
  BitWriter w;
  EXPECT_THROW(w.write_bits(0, 65), std::invalid_argument);
}

TEST(BitReader, ThrowsPastEnd) {
  BitWriter w;
  w.write_bits(1, 4);
  BitReader r(w.bytes());
  r.read_bits(4);
  // The byte has 4 padding bits, then the stream ends.
  r.read_bits(4);
  EXPECT_THROW(r.read_bits(1), std::out_of_range);
}

TEST(Varint, SmallValuesUseOneByte) {
  BitWriter w;
  w.write_varint(127);
  EXPECT_EQ(w.bit_count(), 8u);
}

TEST(Varint, RoundTripSweep) {
  Rng rng(1);
  std::vector<std::uint64_t> values = {0, 1, 127, 128, 300, 1u << 20};
  for (int i = 0; i < 200; ++i) {
    values.push_back(rng.uniform(0, ~0ull));
  }
  BitWriter w;
  for (auto v : values) w.write_varint(v);
  BitReader r(w.bytes());
  for (auto v : values) EXPECT_EQ(r.read_varint(), v);
}

TEST(Gamma, KnownLengths) {
  // gamma(1) = "1" (1 bit), gamma(2..3) = 3 bits, gamma(4..7) = 5 bits.
  auto bits_of = [](std::uint64_t v) {
    BitWriter w;
    w.write_gamma(v);
    return w.bit_count();
  };
  EXPECT_EQ(bits_of(1), 1u);
  EXPECT_EQ(bits_of(2), 3u);
  EXPECT_EQ(bits_of(3), 3u);
  EXPECT_EQ(bits_of(4), 5u);
  EXPECT_EQ(bits_of(7), 5u);
  EXPECT_EQ(bits_of(8), 7u);
}

TEST(Gamma, RejectsZero) {
  BitWriter w;
  EXPECT_THROW(w.write_gamma(0), std::invalid_argument);
}

TEST(Gamma, RoundTripSweep) {
  Rng rng(7);
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 1; v <= 130; ++v) values.push_back(v);
  for (int i = 0; i < 100; ++i) values.push_back(rng.uniform(1, 1u << 30));
  BitWriter w;
  for (auto v : values) w.write_gamma(v);
  BitReader r(w.bytes());
  for (auto v : values) EXPECT_EQ(r.read_gamma(), v);
}

TEST(Bounded, UsesCeilLog2Bits) {
  EXPECT_EQ(bits_for_universe(1), 1u);
  EXPECT_EQ(bits_for_universe(2), 1u);
  EXPECT_EQ(bits_for_universe(3), 2u);
  EXPECT_EQ(bits_for_universe(4), 2u);
  EXPECT_EQ(bits_for_universe(5), 3u);
  EXPECT_EQ(bits_for_universe(1024), 10u);
  EXPECT_EQ(bits_for_universe(1025), 11u);
}

TEST(Bounded, RoundTripSweep) {
  Rng rng(42);
  BitWriter w;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t universe = rng.uniform(1, 1u << 20);
    const std::uint64_t value = rng.uniform(0, universe - 1);
    entries.push_back({value, universe});
    w.write_bounded(value, universe);
  }
  BitReader r(w.bytes());
  for (const auto& [value, universe] : entries) {
    EXPECT_EQ(r.read_bounded(universe), value);
  }
}

TEST(Bounded, MixedStreamRoundTrip) {
  // Interleave all encodings to catch alignment bugs.
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    BitWriter w;
    std::vector<std::tuple<int, std::uint64_t, std::uint64_t>> log;
    for (int i = 0; i < 40; ++i) {
      const int kind = static_cast<int>(rng.uniform(0, 3));
      switch (kind) {
        case 0: {
          const auto v = rng.uniform(0, 1);
          w.write_bit(v != 0);
          log.push_back({0, v, 0});
          break;
        }
        case 1: {
          const auto v = rng.uniform(0, 1u << 16);
          w.write_varint(v);
          log.push_back({1, v, 0});
          break;
        }
        case 2: {
          const auto v = rng.uniform(1, 1u << 16);
          w.write_gamma(v);
          log.push_back({2, v, 0});
          break;
        }
        default: {
          const auto u = rng.uniform(2, 1u << 12);
          const auto v = rng.uniform(0, u - 1);
          w.write_bounded(v, u);
          log.push_back({3, v, u});
          break;
        }
      }
    }
    BitReader r(w.bytes());
    for (const auto& [kind, v, u] : log) {
      switch (kind) {
        case 0: EXPECT_EQ(r.read_bit(), v != 0); break;
        case 1: EXPECT_EQ(r.read_varint(), v); break;
        case 2: EXPECT_EQ(r.read_gamma(), v); break;
        default: EXPECT_EQ(r.read_bounded(u), v); break;
      }
    }
  }
}

TEST(BitWidth, Boundaries) {
  EXPECT_EQ(bit_width_of(0), 1u);
  EXPECT_EQ(bit_width_of(1), 1u);
  EXPECT_EQ(bit_width_of(2), 2u);
  EXPECT_EQ(bit_width_of(255), 8u);
  EXPECT_EQ(bit_width_of(256), 9u);
}

}  // namespace
}  // namespace cpr
