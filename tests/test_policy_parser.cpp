// The type-erased algebra and the policy-expression parser: erased
// algebras must behave identically to their concrete counterparts through
// the whole pipeline (checker, Dijkstra, schemes), and the parser must
// build the right compositions.
#include "algebra/any_algebra.hpp"
#include "algebra/policy_parser.hpp"
#include "algebra/property_check.hpp"
#include "graph/generators.hpp"
#include "routing/dijkstra.hpp"
#include "routing/shortest_widest.hpp"
#include "scheme/dest_table.hpp"

#include <gtest/gtest.h>

namespace cpr {
namespace {

TEST(AnyAlgebra, MirrorsTheWrappedAlgebra) {
  const ShortestPath concrete{16};
  const AnyAlgebra erased = AnyAlgebra::wrap(concrete);
  EXPECT_EQ(erased.name(), concrete.name());
  EXPECT_TRUE(erased.properties().strictly_monotone);
  const auto a = erased.weight_from_integer(3);
  const auto b = erased.weight_from_integer(4);
  EXPECT_EQ(erased.combine(a, b).as<std::uint64_t>(), 7u);
  EXPECT_TRUE(erased.less(a, b));
  EXPECT_FALSE(erased.less(b, a));
  EXPECT_TRUE(erased.is_phi(erased.phi()));
  EXPECT_EQ(erased.to_string(a), "3");
}

TEST(AnyAlgebra, PassesThePropertyChecker) {
  Rng rng(1);
  const AnyAlgebra erased = AnyAlgebra::wrap(WidestPath{16});
  const PropertyReport r = check_properties_sampled(erased, rng, 14);
  EXPECT_TRUE(r.axioms_hold());
  EXPECT_TRUE(r.selective);
  EXPECT_TRUE(validate_claims(erased.properties(), r).empty());
}

TEST(AnyAlgebra, DijkstraMatchesConcrete) {
  Rng rng(2);
  const Graph g = erdos_renyi_connected(14, 0.3, rng);
  const auto ints = random_integer_weights(g, 1, 9, rng);
  const ShortestPath concrete;
  const AnyAlgebra erased = AnyAlgebra::wrap(concrete);
  EdgeMap<AnyWeight> erased_weights;
  for (const auto w : ints) {
    erased_weights.push_back(erased.weight_from_integer(w));
  }
  const auto truth = dijkstra(concrete, g, ints, 0);
  const auto wrapped = dijkstra(erased, g, erased_weights, 0);
  for (NodeId v = 1; v < g.node_count(); ++v) {
    ASSERT_TRUE(wrapped.reachable(v));
    EXPECT_EQ(wrapped.weight(v)->as<std::uint64_t>(), *truth.weight(v));
  }
}

TEST(PolicyParser, ParsesPrimitives) {
  EXPECT_EQ(parse_policy("shortest").name(), "shortest-path");
  EXPECT_EQ(parse_policy("widest(8)").name(), "widest-path");
  EXPECT_EQ(parse_policy("usable").name(), "usable-path");
  EXPECT_EQ(parse_policy("hops").name(), "hop-count");
  EXPECT_EQ(parse_policy("b3").name(), "B3 local-pref");
  EXPECT_EQ(parse_policy("  reliable  ").name(), "most-reliable-path");
}

TEST(PolicyParser, ParsesCompositions) {
  const AnyAlgebra ws = parse_policy("lex(shortest, widest)");
  EXPECT_EQ(ws.name(), "shortest-path x widest-path");
  // Proposition-1 flags flow through the erased product.
  EXPECT_TRUE(ws.properties().strictly_monotone);
  EXPECT_TRUE(ws.properties().isotone);

  const AnyAlgebra sw = parse_policy("lex(widest, shortest)");
  EXPECT_TRUE(sw.properties().strictly_monotone);
  EXPECT_FALSE(sw.properties().isotone);

  const AnyAlgebra nested = parse_policy("lex(lex(shortest,widest),usable)");
  EXPECT_TRUE(nested.properties().regular());
}

TEST(PolicyParser, ParsedWidestShortestComputesLikeConcrete) {
  Rng rng(3);
  const Graph g = erdos_renyi_connected(10, 0.4, rng);
  const WidestShortest concrete;
  EdgeMap<WidestShortest::Weight> cw(g.edge_count());
  for (auto& x : cw) x = {rng.uniform(1, 9), rng.uniform(1, 9)};

  const AnyAlgebra parsed = parse_policy("lex(shortest, widest)");
  EdgeMap<AnyWeight> pw;
  for (const auto& x : cw) {
    pw.push_back(AnyWeight{
        std::any{std::make_pair(AnyWeight{std::any{x.first}},
                                AnyWeight{std::any{x.second}})}});
  }
  const auto truth = dijkstra(concrete, g, cw, 0);
  const auto erased = dijkstra(parsed, g, pw, 0);
  for (NodeId v = 1; v < g.node_count(); ++v) {
    ASSERT_TRUE(erased.reachable(v));
    const auto& w = erased.weight(v)->as<std::pair<AnyWeight, AnyWeight>>();
    EXPECT_EQ(w.first.as<std::uint64_t>(), truth.weight(v)->first);
    EXPECT_EQ(w.second.as<std::uint64_t>(), truth.weight(v)->second);
  }
}

TEST(PolicyParser, CappedBudgetsWork) {
  const AnyAlgebra capped_sp = parse_policy("capped(shortest, 10)");
  EXPECT_FALSE(capped_sp.properties().delimited);
  const auto a = capped_sp.weight_from_integer(6);
  const auto b = capped_sp.weight_from_integer(5);
  EXPECT_TRUE(capped_sp.is_phi(capped_sp.combine(a, b)));
  const auto c = capped_sp.weight_from_integer(4);
  // capped() wraps an erased inner algebra, so the payload is one level
  // of AnyWeight deeper than for a primitive.
  EXPECT_EQ(
      capped_sp.combine(c, b).as<AnyWeight>().as<std::uint64_t>(), 9u);
  // Order dispatches through both layers.
  EXPECT_TRUE(capped_sp.less(c, b));
}

TEST(PolicyParser, EndToEndThroughDestinationTables) {
  Rng rng(4);
  const AnyAlgebra policy = parse_policy("lex(shortest(16), widest(8))");
  const Graph g = erdos_renyi_connected(12, 0.35, rng);
  EdgeMap<AnyWeight> w(g.edge_count());
  for (auto& x : w) x = policy.sample(rng);
  const auto scheme = DestinationTableScheme::from_algebra(policy, g, w);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      EXPECT_TRUE(simulate_route(scheme, g, s, t).delivered);
    }
  }
}

TEST(PolicyParser, RejectsMalformedExpressions) {
  EXPECT_THROW(parse_policy(""), PolicyParseError);
  EXPECT_THROW(parse_policy("nonsense"), PolicyParseError);
  EXPECT_THROW(parse_policy("lex(shortest)"), PolicyParseError);
  EXPECT_THROW(parse_policy("lex(shortest, widest) trailing"),
               PolicyParseError);
  EXPECT_THROW(parse_policy("capped(shortest)"), PolicyParseError);
  EXPECT_THROW(parse_policy("capped(shortest, widest)"), PolicyParseError);
  EXPECT_THROW(parse_policy("lex(shortest,"), PolicyParseError);
  EXPECT_THROW(parse_policy("shortest(1,2,3"), PolicyParseError);
  // BGP labels have no integer interpretation for a cap budget.
  EXPECT_THROW(parse_policy("capped(b1, 3)"), std::invalid_argument);
  EXPECT_THROW(parse_policy("bottleneck(0)"), PolicyParseError);
}

TEST(PolicyParser, VocabularyIsNonEmpty) {
  EXPECT_GE(policy_vocabulary().size(), 14u);
}

}  // namespace
}  // namespace cpr
