// Differential coverage for the SIMD / lockstep forwarding path.
//
// The dispatch contract (fib/forward_engine.hpp) is that FibDispatch is
// a pure performance knob: for any arena and any batch, the lockstep
// AVX2 path and the scalar reference path must produce bit-identical
// results — delivered flags, hop-by-hop paths, path lengths — which this
// suite checks against each other and against the object oracle over the
// same 50-seed random-graph corpus as test_fib.cpp, at 1 and 8 threads,
// with and without path recording, and with the hot-destination cache on
// (the cache memoizes a pure function, so it must never change answers,
// only speed). A larger Cowen instance pushes row lengths past
// kRowSearchLinearCutoff so the Eytzinger search — not just the short-row
// scan — is exercised, and a corrupted mirror is rejected by the loader.
//
// Under TSan (or off x86-64) fib_simd_supported() is false and kSimd
// resolves to scalar; the differential pairs then compare scalar against
// scalar, which keeps the suite meaningful as a no-crash/no-race check
// while the bit-identity claims are enforced by the native ASan runs.
#include "algebra/primitives.hpp"
#include "fib/compile.hpp"
#include "fib/forward_engine.hpp"
#include "graph/csr_graph.hpp"
#include "routing/dijkstra.hpp"
#include "scheme/compressed_table.hpp"
#include "scheme/cowen.hpp"
#include "scheme/interval_router.hpp"
#include "scheme/spanning_tree.hpp"
#include "scheme/tz_name_independent.hpp"
#include "sim/workload.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

namespace cpr {
namespace {

constexpr std::size_t kCorpusSeeds = 50;
constexpr std::size_t kN = 18;
constexpr double kP = 0.25;

using test::all_pairs;

// Two batch outputs agree field-for-field, paths included (when both
// recorded them).
void expect_same_output(const FibBatchOutput& a, const FibBatchOutput& b,
                        bool compare_paths, const char* what) {
  ASSERT_EQ(a.results.size(), b.results.size()) << what;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].delivered, b.results[i].delivered)
        << what << " query " << i;
    EXPECT_EQ(a.results[i].looped, b.results[i].looped)
        << what << " query " << i;
    EXPECT_EQ(a.results[i].path_len, b.results[i].path_len)
        << what << " query " << i;
    if (!compare_paths) continue;
    const auto pa = a.path(i);
    const auto pb = b.path(i);
    ASSERT_EQ(pa.size(), pb.size()) << what << " query " << i;
    for (std::size_t k = 0; k < pa.size(); ++k) {
      EXPECT_EQ(pa[k], pb[k]) << what << " query " << i << " hop " << k;
    }
  }
}

FibBatchOutput run(const FlatFib& fib,
                   const std::vector<std::pair<NodeId, NodeId>>& queries,
                   FibDispatch dispatch, ThreadPool* pool, bool record_paths,
                   bool hot_cache) {
  FibBatchOptions opt;
  opt.pool = pool;
  opt.dispatch = dispatch;
  opt.record_paths = record_paths;
  opt.hot_dest_cache = hot_cache;
  return forward_batch(fib, queries, opt);
}

// The full scalar-vs-SIMD battery for one compiled scheme: paths on/off,
// hot cache on/off, 1 and 8 threads, all anchored to the object oracle.
template <typename S>
void check_dispatch_identical(
    const S& scheme, const Graph& g,
    const std::vector<std::pair<NodeId, NodeId>>& queries,
    const char* family) {
  SCOPED_TRACE(family);
  const FlatFib fib = compile_fib(scheme, g);
  ThreadPool pool1(1), pool8(8);
  const auto oracle = route_batch_object(scheme, g, queries, &pool1);

  for (ThreadPool* pool : {&pool1, &pool8}) {
    const auto scalar =
        run(fib, queries, FibDispatch::kScalar, pool, true, false);
    const auto simd = run(fib, queries, FibDispatch::kSimd, pool, true, false);
    expect_same_output(scalar, simd, /*compare_paths=*/true, "paths");

    // Anchor to the oracle, not just to each other.
    ASSERT_EQ(oracle.size(), simd.results.size());
    for (std::size_t i = 0; i < oracle.size(); ++i) {
      EXPECT_EQ(oracle[i].delivered, simd.results[i].delivered != 0)
          << "oracle query " << i;
      const auto path = simd.path(i);
      ASSERT_EQ(oracle[i].path.size(), path.size()) << "oracle query " << i;
      for (std::size_t k = 0; k < path.size(); ++k) {
        EXPECT_EQ(oracle[i].path[k], path[k])
            << "oracle query " << i << " hop " << k;
      }
    }

    // Stats-only serving mode (the refilling lockstep walk) and the
    // hot-destination cache must both be invisible in the outputs.
    const auto scalar_stats =
        run(fib, queries, FibDispatch::kScalar, pool, false, false);
    const auto simd_stats =
        run(fib, queries, FibDispatch::kSimd, pool, false, false);
    const auto simd_cached =
        run(fib, queries, FibDispatch::kSimd, pool, false, true);
    const auto scalar_cached =
        run(fib, queries, FibDispatch::kScalar, pool, false, true);
    expect_same_output(scalar, scalar_stats, false, "scalar stats");
    expect_same_output(scalar, simd_stats, false, "simd stats");
    expect_same_output(scalar, simd_cached, false, "simd hot-cache");
    expect_same_output(scalar, scalar_cached, false, "scalar hot-cache");
  }
}

class FibSimdSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FibSimdSeeds, TreeFamilyDispatchIdentical) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, GetParam(), kN, kP);
  const auto scheme =
      SpanningTreeScheme<ShortestPath>::build(alg, inst.graph, inst.weights);
  check_dispatch_identical(scheme, inst.graph,
                           all_pairs(inst.graph.node_count()), "tree");
}

TEST_P(FibSimdSeeds, IntervalFamilyDispatchIdentical) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, GetParam(), kN, kP);
  const IntervalRouter router(
      inst.graph, preferred_spanning_tree(alg, inst.graph, inst.weights));
  check_dispatch_identical(router, inst.graph,
                           all_pairs(inst.graph.node_count()), "interval");
}

TEST_P(FibSimdSeeds, CowenFamilyDispatchIdentical) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, GetParam(), kN, kP);
  const auto scheme = CowenScheme<ShortestPath>::build(alg, inst.graph,
                                                       inst.weights, inst.rng);
  check_dispatch_identical(scheme, inst.graph,
                           all_pairs(inst.graph.node_count()), "cowen");
}

// The kTz lockstep walker shares the Cowen row kernels but adds the
// name → label dictionary resolve and the label-space deliver test; the
// scalar path is its reference, the object path the oracle. The 50-seed
// corpus runs a fresh label permutation per seed.
TEST_P(FibSimdSeeds, TzFamilyDispatchIdentical) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, GetParam(), kN, kP);
  const auto scheme = TzNameIndependentScheme<ShortestPath>::build(
      alg, inst.graph, inst.weights, inst.rng);
  check_dispatch_identical(scheme, inst.graph,
                           all_pairs(inst.graph.node_count()), "tz");
}

TEST_P(FibSimdSeeds, TableFamilyDispatchIdentical) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, GetParam(), kN, kP);
  const Graph& g = inst.graph;
  const auto trees = all_pairs_trees(alg, CsrGraph(g), inst.weights);
  std::vector<std::vector<NodeId>> next(g.node_count());
  for (NodeId t = 0; t < g.node_count(); ++t) next[t] = trees[t].parent;
  const auto tree_edges = preferred_spanning_tree(alg, g, inst.weights);
  const RootedTree tree = RootedTree::from_edges(g, tree_edges, 0);
  const CompressedTableScheme scheme(
      g, next, CompressedTableScheme::dfs_relabeling(g, tree.parent, 0));
  check_dispatch_identical(scheme, g, all_pairs(g.node_count()), "table");
}

INSTANTIATE_TEST_SUITE_P(Corpus, FibSimdSeeds,
                         ::testing::Range<std::uint64_t>(0, kCorpusSeeds));

// ---- Dispatch resolution ----

TEST(FibSimdDispatch, ForcedScalarNeverResolvesToSimd) {
  EXPECT_EQ(fib_resolve_dispatch(FibDispatch::kScalar), FibDispatch::kScalar);
}

TEST(FibSimdDispatch, AutoAndSimdFollowCpuSupport) {
  const FibDispatch want =
      fib_simd_supported() ? FibDispatch::kSimd : FibDispatch::kScalar;
  EXPECT_EQ(fib_resolve_dispatch(FibDispatch::kAuto), want);
  EXPECT_EQ(fib_resolve_dispatch(FibDispatch::kSimd), want);
}

// Failure-mode batches are pinned to the scalar path no matter what the
// caller requested: the pin used to be an implementation detail buried
// in forward_batch's dispatch expression, now it is the documented
// contract of fib_resolve_batch_dispatch (and asserted in the engine).
// The differential failure suites rely on it — they compare against the
// step-by-step scalar oracle.
TEST(FibSimdDispatch, EdgeDownBatchesArePinnedToScalar) {
  const std::vector<bool> down;
  for (const FibDispatch req :
       {FibDispatch::kAuto, FibDispatch::kScalar, FibDispatch::kSimd}) {
    FibBatchOptions opt;
    opt.dispatch = req;
    EXPECT_EQ(fib_resolve_batch_dispatch(opt), fib_resolve_dispatch(req));
    opt.edge_down = &down;
    EXPECT_EQ(fib_resolve_batch_dispatch(opt), FibDispatch::kScalar)
        << "edge_down batches must resolve to the scalar path";
  }
}

// The compiled rows and the CSR adjacency use the same linear-scan
// crossover; if one is re-pinned the other must be re-measured too
// (see the comments at both definitions).
TEST(FibSimdDispatch, RowCutoffMatchesCsrPortCutoff) {
  EXPECT_EQ(kRowSearchLinearCutoff, CsrGraph::kPortToLinearScanCutoff);
}

// ---- Long Cowen rows: the Eytzinger search path ----

// At n = 600 the landmark/cluster rows are far longer than
// kRowSearchLinearCutoff, so lookups take the Eytzinger branch (and the
// AVX2 short-row scan only for the short tail). The premise is asserted,
// not assumed.
TEST(FibSimdLargeRows, CowenEytzingerPathDispatchIdentical) {
  const ShortestPath alg{1024};
  const std::size_t n = 600;
  Rng rng(97);
  const Graph g = erdos_renyi_connected(n, 6.0 / static_cast<double>(n - 1),
                                        rng);
  const auto w = test::sampled_weights(alg, g, rng);
  const auto scheme = CowenScheme<ShortestPath>::build(alg, g, w, rng);
  const FlatFib fib = compile_fib(scheme, g);

  const auto& cowen = fib.cowen();
  ASSERT_NE(cowen.eyt, nullptr);
  std::uint32_t longest = 0;
  for (NodeId v = 0; v < n; ++v) {
    longest = std::max(longest, cowen.row_len[v]);
  }
  ASSERT_GT(longest, kRowSearchLinearCutoff)
      << "instance too small to exercise the Eytzinger branch";

  // Uniform pairs plus a Zipf draw (skew concentrates destinations, the
  // hot-cache's intended regime).
  Rng qrng(1234);
  std::vector<std::pair<NodeId, NodeId>> queries;
  for (std::size_t i = 0; i < 2000; ++i) {
    const NodeId s = static_cast<NodeId>(qrng.index(n));
    NodeId t = static_cast<NodeId>(qrng.index(n));
    if (t == s) t = static_cast<NodeId>((t + 1) % n);
    queries.push_back({s, t});
  }
  WorkloadGenerator zipf(WorkloadGenerator::Kind::kZipf, g, qrng);
  for (std::size_t i = 0; i < 2000; ++i) {
    const Demand d = zipf.next();
    queries.push_back({d.source, d.target});
  }
  check_dispatch_identical(scheme, g, queries, "cowen-large");
}

// Same large instance through the TZ layer: label-keyed rows of the same
// lengths, so the kTz lockstep walker's Eytzinger branch (shared with
// Cowen) runs against label keys, after a dictionary resolve per query.
TEST(FibSimdLargeRows, TzEytzingerPathDispatchIdentical) {
  const ShortestPath alg{1024};
  const std::size_t n = 600;
  Rng rng(97);
  const Graph g = erdos_renyi_connected(n, 6.0 / static_cast<double>(n - 1),
                                        rng);
  const auto w = test::sampled_weights(alg, g, rng);
  const auto scheme =
      TzNameIndependentScheme<ShortestPath>::build(alg, g, w, rng);
  const FlatFib fib = compile_fib(scheme, g);

  const auto& cowen = fib.cowen();
  ASSERT_NE(cowen.eyt, nullptr);
  std::uint32_t longest = 0;
  for (NodeId v = 0; v < n; ++v) {
    longest = std::max(longest, cowen.row_len[v]);
  }
  ASSERT_GT(longest, kRowSearchLinearCutoff)
      << "instance too small to exercise the Eytzinger branch";

  Rng qrng(1234);
  std::vector<std::pair<NodeId, NodeId>> queries;
  for (std::size_t i = 0; i < 2000; ++i) {
    const NodeId s = static_cast<NodeId>(qrng.index(n));
    NodeId t = static_cast<NodeId>(qrng.index(n));
    if (t == s) t = static_cast<NodeId>((t + 1) % n);
    queries.push_back({s, t});
  }
  WorkloadGenerator zipf(WorkloadGenerator::Kind::kZipf, g, qrng);
  for (std::size_t i = 0; i < 2000; ++i) {
    const Demand d = zipf.next();
    queries.push_back({d.source, d.target});
  }
  check_dispatch_identical(scheme, g, queries, "tz-large");
}

// ---- Mirror validation ----

// Swapping two Eytzinger mirror entries (checksum patched up) must be
// caught by the loader's mirror-recomputation check — a wrong mirror
// would silently misroute exact-match lookups.
TEST(FibSimdMirror, CorruptedMirrorIsRejected) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, 11, kN, kP);
  const auto scheme = CowenScheme<ShortestPath>::build(alg, inst.graph,
                                                       inst.weights, inst.rng);
  const FlatFib fib = compile_fib(scheme, inst.graph);
  const auto blob = fib.blob();
  std::vector<std::uint8_t> bytes(blob.begin(), blob.end());

  // Header: magic[8], kind u32, node_count u32, section_count u32,
  // reserved u32, payload_bytes u64, checksum u64 (offset 32).
  // Directory entries (24B each from offset 40): id u32, pad u32,
  // offset u64, bytes u64.
  std::uint32_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + 16, 4);
  std::uint64_t payload_bytes = 0;
  std::memcpy(&payload_bytes, bytes.data() + 24, 8);
  const std::size_t payload_begin = bytes.size() - payload_bytes;

  std::uint64_t eyt_off = 0, eyt_bytes = 0;
  for (std::uint32_t s = 0; s < section_count; ++s) {
    const std::uint8_t* e = bytes.data() + 40 + s * 24;
    std::uint32_t id = 0;
    std::memcpy(&id, e, 4);
    if (id == fib_section::kCowenRowsEyt) {
      std::memcpy(&eyt_off, e + 8, 8);
      std::memcpy(&eyt_bytes, e + 16, 8);
    }
  }
  ASSERT_GT(eyt_bytes, 16u) << "mirror section missing or too small";

  // Find two adjacent mirror entries with different values and swap them:
  // the multiset of keys is unchanged, only the Eytzinger order breaks.
  auto* eyt = reinterpret_cast<std::uint64_t*>(bytes.data() + eyt_off);
  const std::size_t entries = eyt_bytes / 8;
  std::size_t at = entries;
  for (std::size_t i = 0; i + 1 < entries; ++i) {
    if (eyt[i] != eyt[i + 1] && eyt[i] != 0 && eyt[i + 1] != 0) {
      at = i;
      break;
    }
  }
  ASSERT_LT(at, entries) << "no distinct adjacent mirror entries to swap";
  std::swap(eyt[at], eyt[at + 1]);

  // Re-seal the checksum so only the mirror check can object.
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = payload_begin; i < bytes.size(); ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  std::memcpy(bytes.data() + 32, &h, 8);

  EXPECT_THROW(FlatFib::from_blob(bytes), std::runtime_error);
}

// ---- Label layer validation (v4 byte surgery) ----
//
// Like the mirror test above, these corrupt a *semantic* invariant and
// re-seal the FNV checksum, so only the deep validators can object: a
// label map that silently stopped being a permutation, or a dictionary
// slot that disagrees with it, would misdeliver every packet whose name
// resolves through the broken entry — to a plausible-looking wrong node.

struct SectionSpan {
  std::uint64_t off = 0;
  std::uint64_t bytes = 0;
};

SectionSpan locate_section(const std::vector<std::uint8_t>& bytes,
                           std::uint32_t want) {
  std::uint32_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + 16, 4);
  SectionSpan s;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint8_t* e = bytes.data() + 40 + i * 24;
    std::uint32_t id = 0;
    std::memcpy(&id, e, 4);
    if (id == want) {
      std::memcpy(&s.off, e + 8, 8);
      std::memcpy(&s.bytes, e + 16, 8);
    }
  }
  return s;
}

void reseal_checksum(std::vector<std::uint8_t>& bytes) {
  std::uint64_t payload_bytes = 0;
  std::memcpy(&payload_bytes, bytes.data() + 24, 8);
  const std::size_t payload_begin = bytes.size() - payload_bytes;
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = payload_begin; i < bytes.size(); ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  std::memcpy(bytes.data() + 32, &h, 8);
}

std::vector<std::uint8_t> tz_blob_bytes() {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, 11, kN, kP);
  const auto scheme = TzNameIndependentScheme<ShortestPath>::build(
      alg, inst.graph, inst.weights, inst.rng);
  const FlatFib fib = compile_fib(scheme, inst.graph);
  const auto blob = fib.blob();
  return {blob.begin(), blob.end()};
}

TEST(FibTzValidation, DuplicatedLabelInMapIsRejected) {
  std::vector<std::uint8_t> bytes = tz_blob_bytes();
  const SectionSpan lm = locate_section(bytes, fib_section::kLabelMap);
  ASSERT_GE(lm.bytes, 8u) << "label map section missing";
  auto* labels = reinterpret_cast<std::uint32_t*>(bytes.data() + lm.off);
  labels[0] = labels[1];  // two nodes claim one label: not a permutation
  reseal_checksum(bytes);
  EXPECT_THROW(FlatFib::from_blob(bytes), std::runtime_error);
}

TEST(FibTzValidation, DictionarySlotDisagreeingWithLabelMapIsRejected) {
  std::vector<std::uint8_t> bytes = tz_blob_bytes();
  std::uint32_t n = 0;
  std::memcpy(&n, bytes.data() + 12, 4);
  ASSERT_GT(n, 1u);
  const SectionSpan ds = locate_section(bytes, fib_section::kDictionary);
  ASSERT_GE(ds.bytes, 24u) << "dictionary section missing";
  auto* dict = reinterpret_cast<std::uint64_t*>(bytes.data() + ds.off);
  const std::uint64_t slots = ds.bytes / 8 - 2;
  std::size_t at = slots;
  for (std::size_t i = 0; i < slots; ++i) {
    if (dict[2 + i] != kFibDictEmpty) {
      at = i;
      break;
    }
  }
  ASSERT_LT(at, slots) << "no live dictionary slot";
  const std::uint32_t name = fib_entry_key(dict[2 + at]);
  const std::uint32_t label = fib_entry_port(dict[2 + at]);
  // Still a well-formed (name, label) pair — label in range, bucket and
  // order untouched — but it now resolves the name to the *wrong* label.
  dict[2 + at] = fib_pack_entry(name, (label + 1) % n);
  reseal_checksum(bytes);
  EXPECT_THROW(FlatFib::from_blob(bytes), std::runtime_error);
}

// ---- The hot-destination cache probe (per-shard self-disable) ----

// The cache memoizes (node, target) -> decision, which only pays under
// skew; under uniform traffic every lookup misses and the cache is pure
// overhead (the ROADMAP regression). Each shard therefore probes its
// first kHotCacheProbeLookups lookups and switches itself off when the
// early hit rate is uniform-like. The probe must be invisible in the
// results — bit-identical with and without the cache, both workloads —
// and visible in the counter: uniform traffic fails the probe in (at
// least) most shards, while Zipf skew keeps the cache on in far more of
// them. Both workloads are seeded draws, so the split is deterministic.
TEST(FibHotCacheProbe, UniformDisablesShardsZipfKeepsThemResultsIdentical) {
  const ShortestPath alg{1024};
  const std::size_t n = 600;
  Rng rng(97);
  const Graph g = erdos_renyi_connected(n, 6.0 / static_cast<double>(n - 1),
                                        rng);
  const auto w = test::sampled_weights(alg, g, rng);
  const auto scheme = CowenScheme<ShortestPath>::build(alg, g, w, rng);
  const FlatFib fib = compile_fib(scheme, g);

  const auto draw = [&](WorkloadGenerator::Kind kind, double zipf_s) {
    Rng qrng(4242);
    WorkloadGenerator gen(kind, g, qrng, /*hotspot_count=*/4,
                          /*hotspot_fraction=*/0.7, zipf_s);
    std::vector<std::pair<NodeId, NodeId>> q;
    q.reserve(20000);
    for (std::size_t i = 0; i < 20000; ++i) {
      const Demand d = gen.next();
      q.push_back({d.source, d.target});
    }
    return q;
  };
  const auto uniform = draw(WorkloadGenerator::Kind::kUniform, 1.1);
  const auto zipf = draw(WorkloadGenerator::Kind::kZipf, 1.4);

  ThreadPool pool(4);
  std::uint32_t disabled_uniform = 0;
  std::uint32_t disabled_zipf = 0;
  for (const auto* queries : {&uniform, &zipf}) {
    const bool is_uniform = queries == &uniform;
    SCOPED_TRACE(is_uniform ? "uniform" : "zipf");
    const auto plain =
        run(fib, *queries, FibDispatch::kAuto, &pool, true, false);
    const auto cached =
        run(fib, *queries, FibDispatch::kAuto, &pool, true, true);
    expect_same_output(plain, cached, /*compare_paths=*/true,
                      "hot-cache probe");
    EXPECT_EQ(plain.hot_cache_disabled_shards, 0u)
        << "the counter must stay 0 with the cache off";
    EXPECT_EQ(plain.hot_cache_lookups, 0u)
        << "lookup counters must stay 0 with the cache off";
    (is_uniform ? disabled_uniform : disabled_zipf) =
        cached.hot_cache_disabled_shards;
    if (!is_uniform) {
      // Hit-rate floor on the Zipf suite: the hash change from the
      // 64-bit golden multiply to the folded 32-bit Fibonacci multiply
      // must not cost collisions where the cache earns its keep. The
      // steady-state Zipf(1.4) hit rate sits well above 1/2; 0.35 leaves
      // slack for probe-window misses while catching any real
      // distribution regression.
      ASSERT_GT(cached.hot_cache_lookups, 0u);
      const double hit_rate =
          static_cast<double>(cached.hot_cache_hits) /
          static_cast<double>(cached.hot_cache_lookups);
      EXPECT_GT(hit_rate, 0.35)
          << "zipf hot-cache hit rate regressed (hits="
          << cached.hot_cache_hits << " lookups="
          << cached.hot_cache_lookups << ")";
    }
  }

  EXPECT_GT(disabled_uniform, static_cast<std::uint32_t>(kFibShards / 2))
      << "uniform traffic should fail the probe in most shards";
  EXPECT_LT(disabled_zipf, disabled_uniform)
      << "zipf skew should keep the cache on where it earns its keep";
}

}  // namespace
}  // namespace cpr
