// Lemma 1, constructive direction: for monotone + selective algebras the
// Kruskal-by-⪯ tree contains a preferred path for every pair.
#include "algebra/primitives.hpp"
#include "graph/generators.hpp"
#include "routing/dijkstra.hpp"
#include "routing/exhaustive.hpp"
#include "scheme/spanning_tree.hpp"

#include <gtest/gtest.h>

namespace cpr {
namespace {

// In-tree s→t path via the rooted-tree parent pointers.
NodePath in_tree_path(const RootedTree& t, NodeId s, NodeId target) {
  // Climb both to the root recording the chains, then splice at the LCA.
  std::vector<NodeId> sa, sb;
  for (NodeId x = s;; x = t.parent[x]) {
    sa.push_back(x);
    if (x == t.root) break;
  }
  for (NodeId x = target;; x = t.parent[x]) {
    sb.push_back(x);
    if (x == t.root) break;
  }
  // Trim the common suffix, keep one shared node.
  while (sa.size() >= 2 && sb.size() >= 2 &&
         sa[sa.size() - 2] == sb[sb.size() - 2]) {
    sa.pop_back();
    sb.pop_back();
  }
  NodePath p(sa.begin(), sa.end());
  for (std::size_t i = sb.size() - 1; i-- > 0;) p.push_back(sb[i]);
  return p;
}

template <RoutingAlgebra A>
void expect_tree_paths_preferred(const A& alg, std::uint64_t seed,
                                 std::size_t n = 10) {
  Rng rng(seed);
  const Graph g = erdos_renyi_connected(n, 0.35, rng);
  EdgeMap<typename A::Weight> w(g.edge_count());
  for (auto& x : w) x = alg.sample(rng);
  const auto tree_edges = preferred_spanning_tree(alg, g, w);
  ASSERT_TRUE(is_spanning_tree(g, tree_edges));
  const RootedTree tree = RootedTree::from_edges(g, tree_edges);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = static_cast<NodeId>(s + 1); t < g.node_count(); ++t) {
      const auto truth = exhaustive_preferred(alg, g, w, s, t);
      ASSERT_TRUE(truth.traversable());
      const NodePath p = in_tree_path(tree, s, t);
      ASSERT_TRUE(is_simple_path(g, p));
      const auto pw = weight_of_path(alg, g, w, p);
      ASSERT_TRUE(pw.has_value());
      EXPECT_TRUE(order_equal(alg, *pw, *truth.weight))
          << alg.name() << " s=" << s << " t=" << t;
    }
  }
}

class TreeSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeSeeds, WidestPathTreeIsOptimal) {
  expect_tree_paths_preferred(WidestPath{8}, GetParam());
}
TEST_P(TreeSeeds, UsablePathTreeIsOptimal) {
  expect_tree_paths_preferred(UsablePath{}, GetParam());
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, TreeSeeds,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(PreferredSpanningTree, WidestIsMaximumSpanningTree) {
  // On a 4-cycle with capacities 4,3,2,1 Kruskal-by-⪯ keeps the three
  // widest edges.
  Graph g = ring(4);
  EdgeMap<std::uint64_t> w = {4, 3, 2, 1};
  const auto tree = preferred_spanning_tree(WidestPath{}, g, w);
  ASSERT_EQ(tree.size(), 3u);
  for (EdgeId e : tree) EXPECT_NE(e, 3u);  // capacity-1 edge excluded
}

TEST(PreferredSpanningTree, NotOptimalForNonSelectiveAlgebra) {
  // Shortest path is not selective; on a triangle 1-1-1 the tree must
  // miss one direct edge, so some pair is forced onto a 2-hop path with
  // weight 2 ≻ 1. (Lemma 1 necessity, algebra side.)
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  EdgeMap<std::uint64_t> w = {1, 1, 1};
  const auto tree_edges = preferred_spanning_tree(ShortestPath{}, g, w);
  const RootedTree tree = RootedTree::from_edges(g, tree_edges);
  bool some_pair_suboptimal = false;
  for (NodeId s = 0; s < 3; ++s) {
    for (NodeId t = static_cast<NodeId>(s + 1); t < 3; ++t) {
      const NodePath p = in_tree_path(tree, s, t);
      const auto pw = weight_of_path(ShortestPath{}, g, w, p);
      if (pw.has_value() && *pw > 1) some_pair_suboptimal = true;
    }
  }
  EXPECT_TRUE(some_pair_suboptimal);
}

TEST(RootedTree, StructureAndSizes) {
  Graph g(5);
  std::vector<EdgeId> edges;
  edges.push_back(g.add_edge(0, 1));
  edges.push_back(g.add_edge(0, 2));
  edges.push_back(g.add_edge(2, 3));
  edges.push_back(g.add_edge(2, 4));
  const RootedTree t = RootedTree::from_edges(g, edges, 0);
  EXPECT_EQ(t.parent[0], 0u);
  EXPECT_EQ(t.parent[3], 2u);
  EXPECT_EQ(t.subtree_size[0], 5u);
  EXPECT_EQ(t.subtree_size[2], 3u);
  EXPECT_EQ(t.children[0].size(), 2u);
}

TEST(RootedTree, RejectsNonSpanningInput) {
  Graph g(4);
  const EdgeId e0 = g.add_edge(0, 1);
  const EdgeId e1 = g.add_edge(1, 2);
  const EdgeId e2 = g.add_edge(2, 3);
  // Too few edges.
  EXPECT_THROW(RootedTree::from_edges(g, {e0, e2}, 0), std::invalid_argument);
  // Right count, but a triangle leaves node 3 uncovered.
  const EdgeId e3 = g.add_edge(0, 2);
  (void)e3;
  EXPECT_THROW(RootedTree::from_edges(g, {e0, e1, e3}, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace cpr
