// Table-driven finite algebras: construction validation, exhaustive
// classification, and agreement with the hand-written primitives they can
// emulate.
#include "algebra/finite_algebra.hpp"
#include "algebra/primitives.hpp"
#include "graph/generators.hpp"
#include "lowerbound/counterexamples.hpp"
#include "routing/dijkstra.hpp"
#include "routing/exhaustive.hpp"
#include "scheme/spanning_tree.hpp"

#include <gtest/gtest.h>

namespace cpr {
namespace {

TEST(FiniteAlgebra, ValidatesConstructorInputs) {
  using W = FiniteAlgebra::Weight;
  EXPECT_THROW(FiniteAlgebra({}, {}), std::invalid_argument);
  EXPECT_THROW(FiniteAlgebra({0}, {0, 1}), std::invalid_argument);   // table size
  EXPECT_THROW(FiniteAlgebra({0, 0, 0, 0}, {0, 0}), std::invalid_argument);
  EXPECT_THROW(FiniteAlgebra({9, 0, 0, 0}, {0, 1}), std::invalid_argument);
  EXPECT_NO_THROW(FiniteAlgebra(std::vector<W>{0, 1, 1, 1},
                                std::vector<W>{0, 1}));
}

TEST(FiniteAlgebra, KeepingTheBetterWeightBreaksMonotonicity) {
  // The tempting dual of bottleneck — combine keeps the *more* preferred
  // weight — is not a usable policy: prepending a good edge would improve
  // a path, violating monotonicity. The exhaustive classifier must agree.
  using W = FiniteAlgebra::Weight;
  const std::size_t k = 4;
  std::vector<W> rank = {0, 1, 2, 3};
  std::vector<W> table(k * k);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b) {
      table[a * k + b] = static_cast<W>(std::min(a, b));
    }
  }
  const FiniteAlgebra best_wins(table, rank, "finite-best-wins");
  const FiniteClassification c = classify(best_wins);
  EXPECT_TRUE(c.associative);
  EXPECT_TRUE(c.observed.selective);
  EXPECT_FALSE(c.observed.monotone);  // min(0, 3) = 0 ≺ 3
}

TEST(FiniteAlgebra, BottleneckEmulatesWidestPath) {
  // combine = index-max (least preferred wins) is widest path after the
  // relabeling capacity w ↦ index (k - w).
  const std::size_t k = 4;
  const FiniteAlgebra bottleneck = FiniteAlgebra::bottleneck(k);
  const FiniteClassification c = classify(bottleneck);
  EXPECT_TRUE(c.associative);
  EXPECT_TRUE(c.commutative);
  EXPECT_TRUE(c.observed.selective);
  EXPECT_TRUE(c.observed.monotone);
  EXPECT_TRUE(c.observed.isotone);
  EXPECT_TRUE(c.observed.delimited);
  EXPECT_FALSE(c.observed.strictly_monotone);
  EXPECT_EQ(bottleneck.combine(0, 3), 3);

  using W = FiniteAlgebra::Weight;
  Rng rng(3);
  const Graph g = erdos_renyi_connected(10, 0.35, rng);
  EdgeMap<std::uint64_t> caps(g.edge_count());
  for (auto& x : caps) x = rng.uniform(1, k);
  EdgeMap<W> indices(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    indices[e] = static_cast<W>(k - caps[e]);
  }
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto wide = dijkstra(WidestPath{}, g, caps, s);
    const auto fin = dijkstra(bottleneck, g, indices, s);
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s == t) continue;
      ASSERT_TRUE(wide.reachable(t));
      ASSERT_TRUE(fin.reachable(t));
      EXPECT_EQ(static_cast<std::uint64_t>(k - *fin.weight(t)),
                *wide.weight(t))
          << "s=" << s << " t=" << t;
    }
  }
}

TEST(FiniteAlgebra, AdditiveCappedTableIsStrictlyMonotoneNonDelimited) {
  // Saturating addition with a φ ceiling: w_a ⊕ w_b = a+b, φ beyond the
  // table — the finite fragment of the capped shortest-path algebra.
  using W = FiniteAlgebra::Weight;
  const std::size_t k = 4;  // weights w0..w3 standing for 1..4
  std::vector<W> rank = {0, 1, 2, 3};
  std::vector<W> table(k * k);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b) {
      const std::size_t sum = (a + 1) + (b + 1);  // semantic values
      table[a * k + b] = sum - 1 < k ? static_cast<W>(sum - 1)
                                     : static_cast<W>(k);  // φ
    }
  }
  const FiniteAlgebra add(table, rank, "finite-capped-add");
  const FiniteClassification c = classify(add);
  EXPECT_TRUE(c.associative);
  EXPECT_TRUE(c.observed.strictly_monotone);
  EXPECT_FALSE(c.observed.delimited);
  EXPECT_FALSE(c.observed.selective);
}

TEST(FiniteAlgebra, RandomTablesAreCommutativeByConstruction) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const FiniteAlgebra alg = random_finite_algebra(5, 0.2, rng);
    for (FiniteAlgebra::Weight a = 0; a < 5; ++a) {
      for (FiniteAlgebra::Weight b = 0; b < 5; ++b) {
        EXPECT_EQ(alg.combine(a, b), alg.combine(b, a));
      }
    }
  }
}

TEST(FiniteAlgebra, SampledSurveyRespectsLemma1) {
  // A smaller in-test version of bench_random_algebras: every selective
  // structured sample must admit optimal trees on a random instance.
  Rng rng(11);
  std::size_t checked = 0;
  for (int i = 0; i < 400 && checked < 8; ++i) {
    FiniteAlgebra alg = random_structured_algebra(rng);
    const FiniteClassification c = classify(alg);
    if (!c.associative || !c.commutative || !c.observed.monotone ||
        !c.observed.selective) {
      continue;
    }
    ++checked;
    const Graph g = erdos_renyi_connected(8, 0.4, rng);
    EdgeMap<FiniteAlgebra::Weight> w(g.edge_count());
    for (auto& x : w) x = alg.sample(rng);
    const auto tree_edges = preferred_spanning_tree(alg, g, w);
    ASSERT_TRUE(is_spanning_tree(g, tree_edges));
    Graph tree(g.node_count());
    EdgeMap<FiniteAlgebra::Weight> tw;
    for (EdgeId e : tree_edges) {
      tree.add_edge(g.edge(e).u, g.edge(e).v);
      tw.push_back(w[e]);
    }
    for (NodeId s = 0; s < g.node_count(); ++s) {
      for (NodeId t = static_cast<NodeId>(s + 1); t < g.node_count(); ++t) {
        const auto best = exhaustive_preferred(alg, g, w, s, t);
        if (!best.traversable()) continue;
        const auto in_tree = exhaustive_preferred(alg, tree, tw, s, t);
        ASSERT_TRUE(in_tree.traversable());
        EXPECT_TRUE(order_equal(alg, *in_tree.weight, *best.weight))
            << alg.name() << " s=" << s << " t=" << t;
      }
    }
  }
  EXPECT_GE(checked, 3u) << "survey found too few selective samples";
}

TEST(FiniteAlgebra, Rendering) {
  const FiniteAlgebra alg = FiniteAlgebra::bottleneck(3, "demo");
  EXPECT_EQ(alg.name(), "demo");
  EXPECT_EQ(alg.to_string(1), "w1");
  EXPECT_EQ(alg.to_string(alg.phi()), "phi");
  EXPECT_EQ(alg.encoded_bits(0), 2u);
}

}  // namespace
}  // namespace cpr
