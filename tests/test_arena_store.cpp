// Lifecycle coverage for the multi-process serving plane (ArenaStore):
// publish/rename crash-consistency, checksum rejection of corrupt
// publications with fallback to the newest valid generation, RCU unmap
// discipline (snapshots outlive prune), and — the satellite headliner —
// a forked child reader that watches the writer publish three
// generations (one deliberately corrupted) and die between temp-write
// and rename, asserting it only ever served validated generations.
//
// The fork test is skipped under TSan (fork + sanitizer runtimes do not
// mix); every single-process test runs under every preset, so the same
// store logic is still sanitizer-covered.
#include "algebra/primitives.hpp"
#include "fib/arena_store.hpp"
#include "fib/compile.hpp"
#include "fib/forward_engine.hpp"
#include "scheme/cowen.hpp"
#include "scheme/tz_name_independent.hpp"
#include "sim/churn.hpp"
#include "sim/serving.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>
#include <vector>

namespace cpr {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kN = 18;
constexpr double kP = 0.25;

// Fresh store directory per test, removed on scope exit.
struct StoreDir {
  fs::path path;
  explicit StoreDir(const char* tag)
      : path(fs::temp_directory_path() /
             (std::string("cpr_arena_") + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
  }
  ~StoreDir() { fs::remove_all(path); }
};

using test::all_pairs;
using test::batch_hash;

// A compiled Cowen arena; different seeds give structurally different
// arenas, so distinct generations serve distinguishably.
FlatFib make_fib(std::uint64_t seed) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, seed, kN, kP);
  auto scheme = CowenScheme<ShortestPath>::build(alg, inst.graph,
                                                 inst.weights, inst.rng);
  return compile_fib(scheme, inst.graph,
                     fib_churn_maintain_options().compile);
}

std::vector<std::uint8_t> corrupted_copy(const FlatFib& fib) {
  const auto blob = fib.blob();
  std::vector<std::uint8_t> bytes(blob.begin(), blob.end());
  bytes[bytes.size() / 2] ^= 0x5a;  // payload flip: checksum must catch it
  return bytes;
}

TEST(ArenaStore, PublishRoundTripsThroughMmap) {
  StoreDir dir("roundtrip");
  const FlatFib fib = make_fib(3);
  const auto queries = all_pairs(fib.node_count());
  const std::uint64_t want = batch_hash(forward_batch(fib, queries));

  ArenaStore writer(dir.path);
  EXPECT_EQ(writer.publish(fib), 1u);

  ArenaStore reader(dir.path);
  const auto arena = reader.current();
  ASSERT_NE(arena, nullptr);
  EXPECT_EQ(arena->generation(), 1u);
  EXPECT_FALSE(arena->fib().writable())
      << "mmap'd arenas must be immutable";
  EXPECT_EQ(arena->byte_size(), fib.blob().size());
  EXPECT_EQ(batch_hash(forward_batch(arena->fib(), queries)), want)
      << "the mapped generation must serve bit-identically to its source";
}

// v4 (kTz) arenas flow through the same publish → mmap → serve pipeline:
// the store is format-agnostic bytes, but the validating open on the
// reader side must accept the label sections and serve name-addressed
// queries bit-identically to the in-process arena.
TEST(ArenaStore, TzArenaPublishRoundTripsThroughMmap) {
  StoreDir dir("tz_roundtrip");
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, 3, kN, kP);
  auto scheme = TzNameIndependentScheme<ShortestPath>::build(
      alg, inst.graph, inst.weights, inst.rng);
  const FlatFib fib = compile_fib(scheme, inst.graph,
                                  fib_churn_maintain_options().compile);
  ASSERT_EQ(fib.blob_version(), 4u);
  const auto queries = all_pairs(fib.node_count());
  const std::uint64_t want = batch_hash(forward_batch(fib, queries));

  ArenaStore writer(dir.path);
  EXPECT_EQ(writer.publish(fib), 1u);

  ArenaStore reader(dir.path);
  const auto arena = reader.current();
  ASSERT_NE(arena, nullptr);
  EXPECT_EQ(arena->fib().kind(), FibKind::kTz);
  EXPECT_EQ(arena->fib().blob_version(), 4u);
  EXPECT_EQ(batch_hash(forward_batch(arena->fib(), queries)), want)
      << "the mapped v4 generation must serve bit-identically";
}

TEST(ArenaStore, WriterCrashBeforeRenameLeavesOldGenerationCurrent) {
  StoreDir dir("crash_rename");
  const FlatFib a = make_fib(3);
  const FlatFib b = make_fib(4);

  ArenaStore writer(dir.path);
  writer.publish(a);
  // The writer dies after writing + fsyncing the temp, before rename:
  // the new generation must be invisible.
  writer.publish(b, PublishStop::kBeforeRename);

  ArenaStore reader(dir.path);
  const auto arena = reader.current();
  ASSERT_NE(arena, nullptr);
  EXPECT_EQ(arena->generation(), 1u);

  // A restarted writer sweeps the abandoned temp and republishes; only
  // then does the new generation appear. The crashed publish never
  // became visible, so its number (2) is free for reuse.
  ArenaStore restarted(dir.path);
  EXPECT_EQ(restarted.remove_stale_temps(), 1u);
  restarted.publish(b);
  EXPECT_EQ(reader.current()->generation(), 2u);
}

TEST(ArenaStore, WriterCrashBeforeCurrentKeepsServingOldGeneration) {
  StoreDir dir("crash_current");
  const FlatFib a = make_fib(3);
  const FlatFib b = make_fib(4);

  ArenaStore writer(dir.path);
  writer.publish(a);
  // Dies between the arena rename and the CURRENT update: the file
  // exists but was never published, so readers stay on generation 1.
  writer.publish(b, PublishStop::kBeforeCurrent);

  ArenaStore reader(dir.path);
  ASSERT_NE(reader.current(), nullptr);
  EXPECT_EQ(reader.current()->generation(), 1u);
}

TEST(ArenaStore, CorruptPublicationIsRejectedAndFallsBack) {
  StoreDir dir("corrupt");
  const FlatFib fib = make_fib(3);
  const auto queries = all_pairs(fib.node_count());
  const std::uint64_t want = batch_hash(forward_batch(fib, queries));

  ArenaStore writer(dir.path);
  writer.publish(fib);
  // Generation 2 publishes completely — CURRENT names it — but its
  // payload is corrupt: the checksum must reject it and the reader must
  // fall back to generation 1.
  const auto bad = corrupted_copy(fib);
  writer.publish_blob({bad.data(), bad.size()});

  ArenaStore reader(dir.path);
  const auto arena = reader.current();
  ASSERT_NE(arena, nullptr);
  EXPECT_EQ(arena->generation(), 1u)
      << "an unvalidated arena must never be served";
  EXPECT_EQ(batch_hash(forward_batch(arena->fib(), queries)), want);

  // The next valid publication supersedes both.
  writer.publish(fib);
  EXPECT_EQ(reader.current()->generation(), 3u);
}

TEST(ArenaStore, GarbledCurrentFallsBackToNewestValidGeneration) {
  StoreDir dir("garbled");
  const FlatFib fib = make_fib(3);
  ArenaStore writer(dir.path);
  writer.publish(fib);
  writer.publish(fib);
  {
    std::ofstream out(dir.path / "CURRENT", std::ios::trunc);
    out << "not-an-arena-name\n";
  }
  ArenaStore reader(dir.path);
  const auto arena = reader.current();
  ASSERT_NE(arena, nullptr);
  EXPECT_EQ(arena->generation(), 2u);
}

TEST(ArenaStore, EmptyStoreServesNothing) {
  StoreDir dir("empty");
  ArenaStore reader(dir.path);
  EXPECT_EQ(reader.current(), nullptr);
}

TEST(ArenaStore, SnapshotsSurvivePruneAndNewerPublishes) {
  StoreDir dir("prune");
  const FlatFib fib = make_fib(3);
  const auto queries = all_pairs(fib.node_count());
  const std::uint64_t want = batch_hash(forward_batch(fib, queries));

  ArenaStore writer(dir.path);
  ArenaStore reader(dir.path);
  writer.publish(fib);
  // Pin generation 1, then bury it under newer generations and unlink
  // its file: the RCU contract says the held mapping keeps serving.
  const auto pinned = reader.current();
  ASSERT_NE(pinned, nullptr);
  writer.publish(fib);
  writer.publish(fib);
  EXPECT_EQ(writer.prune(3), 2u);
  EXPECT_FALSE(fs::exists(pinned->path()));
  EXPECT_EQ(batch_hash(forward_batch(pinned->fib(), queries)), want)
      << "a pinned snapshot must outlive its file";
  // A fresh resolve moves to the newest generation.
  EXPECT_EQ(reader.current()->generation(), 3u);
}

TEST(ArenaStore, RestartedWriterContinuesGenerationSequence) {
  StoreDir dir("restart");
  const FlatFib fib = make_fib(3);
  {
    ArenaStore writer(dir.path);
    writer.publish(fib);
    writer.publish(fib);
  }
  ArenaStore writer(dir.path);
  EXPECT_EQ(writer.next_generation(), 3u)
      << "generation numbers must never be reused";
}

// ---- The fork test: a real reader process watching a live writer ----

// Child protocol: poll the store until the DONE marker appears, checking
// on every poll that the served arena is one of the two valid
// generations and serves bit-identically to it; after DONE, the final
// resolve must land on generation 2 (3 is corrupt, 4 was abandoned).
// Exit codes make the failure mode readable in the parent's assert.
constexpr int kChildOk = 0;
constexpr int kChildSawInvalidGeneration = 10;
constexpr int kChildSawWrongBytes = 11;
constexpr int kChildFinalGenerationWrong = 12;
constexpr int kChildNeverSawArena = 13;

int child_reader_main(const fs::path& dir, std::uint64_t hash_gen1,
                      std::uint64_t hash_gen2,
                      const std::vector<std::pair<NodeId, NodeId>>& queries) {
  ArenaStore store(dir);
  ThreadPool pool(2);
  FibBatchOptions opt;
  opt.pool = &pool;
  bool saw_any = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!fs::exists(dir / "DONE")) {
    if (std::chrono::steady_clock::now() > deadline) break;
    if (const auto arena = store.current()) {
      saw_any = true;
      const std::uint64_t gen = arena->generation();
      if (gen != 1 && gen != 2) return kChildSawInvalidGeneration;
      const std::uint64_t h =
          batch_hash(forward_batch(arena->fib(), queries, opt));
      if (h != (gen == 1 ? hash_gen1 : hash_gen2)) return kChildSawWrongBytes;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (!saw_any) return kChildNeverSawArena;
  const auto final_arena = store.current();
  if (!final_arena || final_arena->generation() != 2) {
    return kChildFinalGenerationWrong;
  }
  const std::uint64_t h =
      batch_hash(forward_batch(final_arena->fib(), queries, opt));
  return h == hash_gen2 ? kChildOk : kChildSawWrongBytes;
}

TEST(ArenaStoreMultiProcess, ChildReaderOnlyServesValidatedGenerations) {
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "fork-based test is not reliable under TSan; the "
                  "single-process lifecycle tests above cover the store";
#else
  StoreDir dir("fork");
  const FlatFib gen1 = make_fib(3);
  const FlatFib gen2 = make_fib(4);
  const auto queries = all_pairs(gen1.node_count());
  const std::uint64_t hash1 = batch_hash(forward_batch(gen1, queries));
  const std::uint64_t hash2 = batch_hash(forward_batch(gen2, queries));

  ArenaStore writer(dir.path);
  writer.publish(gen1);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // In the child: never return into gtest, never run atexit handlers.
    ::_exit(child_reader_main(dir.path, hash1, hash2, queries));
  }

  const auto breathe = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  breathe();
  writer.publish(gen2);
  breathe();
  // Generation 3: published all the way — CURRENT names it — but the
  // payload is corrupt. The child must keep serving generation 2.
  const auto bad = corrupted_copy(gen2);
  writer.publish_blob({bad.data(), bad.size()});
  breathe();
  // Generation 4: the writer is killed between temp-write and rename.
  writer.publish(gen2, PublishStop::kBeforeRename);
  breathe();
  {
    std::ofstream out(dir.path / "DONE");
    out << "done\n";
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child reader crashed";
  EXPECT_EQ(WEXITSTATUS(status), kChildOk)
      << "10=invalid generation served, 11=torn/wrong bytes served, "
         "12=wrong final generation, 13=never saw an arena";
#endif
}

// ---- The sim layer end to end (writer role + reader role in-process) --

TEST(ServingSim, ChurnServedThroughStore) {
  StoreDir dir("sim");
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, 9, 64, 0.1);
  Rng trace_rng(0xfeedull);
  const auto trace =
      random_churn_trace(alg, inst.graph, inst.weights, 10, trace_rng);
  ChurnEngine<ShortestPath> engine(alg, inst.graph, inst.weights);
  auto scheme = CowenScheme<ShortestPath>::build(alg, inst.graph,
                                                 inst.weights, inst.rng);
  Rng pair_rng(7);
  const StoreServeReport report = serve_churn_through_store(
      scheme, engine, trace, dir.path, /*pairs_per_event=*/40, pair_rng,
      /*publish_every=*/2);
  EXPECT_EQ(report.events, trace.size());
  // Initial publish + one per two events (trace length is even).
  EXPECT_EQ(report.published, 1 + trace.size() / 2);
  EXPECT_GT(report.generations_seen, 1u)
      << "the reader never picked up a newer generation";
  EXPECT_EQ(report.queries, trace.size() * 40);
  EXPECT_GT(report.delivery_fraction(), 0.5);
  EXPECT_GT(report.maintain.patched, 0u)
      << "the writer role never exercised the seqlock patch path";
}

// The channel-driven sibling: the same churn trace served through the
// MAP_SHARED patch segment. One publish up front; every in-place delta
// must reach the reader with zero further publishes, and the reader must
// actually be on the live segment (via_channel), not the .fib fallback.
TEST(ServingSim, ChurnServedThroughChannel) {
  StoreDir dir("simch");
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, 9, 64, 0.1);
  Rng trace_rng(0xfeedull);
  const auto trace =
      random_churn_trace(alg, inst.graph, inst.weights, 10, trace_rng);
  ChurnEngine<ShortestPath> engine(alg, inst.graph, inst.weights);
  auto scheme = CowenScheme<ShortestPath>::build(alg, inst.graph,
                                                 inst.weights, inst.rng);
  Rng pair_rng(7);
  const ChannelServeReport report = serve_churn_through_channel(
      scheme, engine, trace, dir.path, /*pairs_per_event=*/40, pair_rng);
  EXPECT_EQ(report.events, trace.size());
  EXPECT_EQ(report.patched + report.refused, trace.size());
  EXPECT_GT(report.patched, 0u)
      << "no delta ever travelled through the live segment";
  // Every publish is accounted for: the initial one plus one per
  // refused (recompile-demanding) delta — nothing per patched delta.
  EXPECT_EQ(report.published, 1 + report.refused);
  EXPECT_EQ(report.generations_seen, report.published)
      << "the reader missed (or double-counted) a generation";
  EXPECT_GT(report.channel_batches, 0u)
      << "the reader never served through the live segment";
  EXPECT_EQ(report.queries, trace.size() * 40);
  EXPECT_GT(report.delivery_fraction(), 0.5);
  if (report.refused == 0) {
    EXPECT_EQ(report.patches_visible, report.patched)
        << "the final snapshot's header disagrees with the patch count";
  }
}

}  // namespace
}  // namespace cpr
