// BGP planes under provider-edge churn (Theorems 6 and 7 as serving
// systems, not static objects).
//
// The BGP schemes have no incremental repair — a topology event means a
// rebuild — so churn here is premise-preserving edge flaps: a provider
// arc pair whose customer is multihomed goes down (the reduced topology
// still satisfies A1/A2 and keeps the same roots), the schemes are
// rebuilt, and after EVERY such down and the matching up:
//   - every delivered path is re-checked valley-free against the
//     directed arc labels of the *current* topology,
//   - the compiled plane (compile_fib → forward_batch, 1 and 8 threads,
//     with and without a dead-edge mask) stays bit-identical to the
//     object-path oracle,
//   - the rebuilt arena flows through MaintainedFib as a compaction,
//     the same absorption path the sim layer uses.
// Plus: the resilience sim runs both schemes on the compiled plane.
#include "bgp/bgp_schemes.hpp"
#include "fib/compile.hpp"
#include "fib/fib_delta.hpp"
#include "fib/forward_engine.hpp"
#include "sim/resilience.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

namespace cpr {
namespace {

AsTopology random_topo(std::uint64_t seed, std::size_t n, std::size_t tier1) {
  Rng rng(seed);
  AsTopologyOptions opt;
  opt.nodes = n;
  opt.tier1 = tier1;
  opt.max_providers = 2;
  return generate_as_topology(opt, rng);
}

std::size_t provider_count(const AsTopology& topo, NodeId u) {
  std::size_t c = 0;
  for (ArcId a : topo.graph.out_arcs(u)) {
    if (topo.relation[a] == Relationship::kProvider) ++c;
  }
  return c;
}

// The topology with arc pair `pair_base` (even id, plus its reverse)
// removed — the "edge down" state of one churn event.
AsTopology without_arc_pair(const AsTopology& topo, ArcId pair_base) {
  AsTopology out;
  out.graph = Digraph(topo.graph.node_count());
  for (ArcId a = 0; a + 1 < topo.graph.arc_count(); a += 2) {
    if (a == pair_base) continue;
    const auto& arc = topo.graph.arc(a);
    out.graph.add_arc_pair(arc.from, arc.to);
    out.relation.push_back(topo.relation[a]);
    out.relation.push_back(topo.relation[a + 1]);
  }
  return out;
}

// Provider arc pairs whose removal preserves the theorems' premises:
// the customer keeps at least one other provider, so A1/A2 and the root
// set survive and both schemes still construct.
std::vector<ArcId> eligible_provider_flaps(const AsTopology& topo,
                                           std::size_t limit) {
  std::vector<ArcId> flaps;
  for (ArcId a = 0; a < topo.graph.arc_count() && flaps.size() < limit; ++a) {
    if (topo.relation[a] != Relationship::kProvider) continue;
    const ArcId base = a - (a % 2);
    if (provider_count(topo, topo.graph.arc(a).from) >= 2) {
      flaps.push_back(base);
    }
  }
  return flaps;
}

// Every pair delivers and every delivered path is traversable (non-φ)
// under B2's valley-free labels of the current topology.
template <typename Scheme>
void expect_valley_free(const AsTopology& topo, const Scheme& s,
                        const Graph& shadow, const char* when) {
  const B2ValleyFree b2;
  const auto labels = topo.labels();
  for (NodeId src = 0; src < shadow.node_count(); ++src) {
    for (NodeId dst = 0; dst < shadow.node_count(); ++dst) {
      const RouteResult r = simulate_route(s, shadow, src, dst);
      ASSERT_TRUE(r.delivered) << when << " src=" << src << " dst=" << dst;
      if (src == dst) continue;
      const auto w = weight_of_path(b2, topo.graph, labels, r.path);
      ASSERT_TRUE(w.has_value()) << when << " src=" << src << " dst=" << dst;
      EXPECT_FALSE(b2.is_phi(*w))
          << "valley in path, " << when << " src=" << src << " dst=" << dst;
    }
  }
}

// Compiled plane vs object oracle: 1 and 8 threads, healthy and with a
// seeded dead-edge mask over the shadow graph.
template <typename Scheme>
void expect_compiled_matches_oracle(const Scheme& s, const Graph& shadow,
                                    std::uint64_t seed, const char* when) {
  std::vector<std::pair<NodeId, NodeId>> queries;
  for (NodeId a = 0; a < shadow.node_count(); ++a) {
    for (NodeId b = 0; b < shadow.node_count(); ++b) queries.emplace_back(a, b);
  }
  const FlatFib fib = compile_fib(s, shadow);

  // The rebuilt arena is absorbed the way the sim layer would: as a
  // whole-FIB compaction through MaintainedFib.
  MaintainedFib<Scheme> plane(s, shadow);
  FibDelta rebuild;
  rebuild.recompile = true;
  rebuild.touched_nodes = shadow.node_count();
  EXPECT_FALSE(plane.absorb(rebuild, s)) << when;
  EXPECT_EQ(plane.stats().compactions, 1u) << when;

  Rng fail_rng(seed ^ 0xfa11ull);
  std::vector<bool> down(shadow.edge_count(), false);
  for (std::size_t e : fail_rng.sample_without_replacement(
           shadow.edge_count(), shadow.edge_count() / 5)) {
    down[e] = true;
  }

  ThreadPool pool1(1), pool8(8);
  for (ThreadPool* pool : {&pool1, &pool8}) {
    const auto oracle = route_batch_object(s, shadow, queries, pool);
    FibBatchOptions opt;
    opt.pool = pool;
    for (const FlatFib* f : {&fib, &plane.fib()}) {
      const FibBatchOutput out = forward_batch(*f, queries, opt);
      ASSERT_EQ(out.results.size(), oracle.size()) << when;
      for (std::size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(oracle[i].delivered, out.results[i].delivered != 0)
            << when << " query " << i;
        const auto path = out.path(i);
        ASSERT_EQ(oracle[i].path.size(), path.size()) << when << " query " << i;
        for (std::size_t k = 0; k < path.size(); ++k) {
          EXPECT_EQ(oracle[i].path[k], path[k])
              << when << " query " << i << " hop " << k;
        }
      }
    }
    // Failure mode against the step-by-step oracle.
    opt.edge_down = &down;
    const FibBatchOutput failed = forward_batch(fib, queries, opt);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const RouteResult r = simulate_route_with_failures(
          s, shadow, down, queries[i].first, queries[i].second);
      EXPECT_EQ(r.delivered, failed.results[i].delivered != 0)
          << when << " failure query " << i;
      EXPECT_EQ(r.looped, failed.results[i].looped != 0)
          << when << " failure query " << i;
    }
  }
}

class BgpChurnSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BgpChurnSeeds, ProviderTreeSurvivesProviderEdgeFlaps) {
  const std::uint64_t seed = GetParam();
  const AsTopology topo = random_topo(seed, 20, 1);
  ASSERT_TRUE(satisfies_a1_global_reachability(topo));
  ASSERT_TRUE(satisfies_a2_no_provider_loops(topo));
  const auto flaps = eligible_provider_flaps(topo, 3);
  for (const ArcId base : flaps) {
    SCOPED_TRACE(testing::Message() << "seed " << seed << " flap arc " << base);
    // Down: rebuild on the reduced topology.
    const AsTopology reduced = without_arc_pair(topo, base);
    ASSERT_TRUE(satisfies_a1_global_reachability(reduced));
    ASSERT_TRUE(satisfies_a2_no_provider_loops(reduced));
    const ProviderTreeScheme down_scheme(reduced);
    expect_valley_free(reduced, down_scheme, down_scheme.shadow(), "down");
    expect_compiled_matches_oracle(down_scheme, down_scheme.shadow(), seed,
                                   "down");
    // Up: rebuild on the restored topology.
    const ProviderTreeScheme up_scheme(topo);
    expect_valley_free(topo, up_scheme, up_scheme.shadow(), "up");
    expect_compiled_matches_oracle(up_scheme, up_scheme.shadow(), seed, "up");
  }
}

TEST_P(BgpChurnSeeds, PeerMeshSurvivesProviderEdgeFlaps) {
  const std::uint64_t seed = GetParam();
  const AsTopology topo = random_topo(seed + 1000, 20, 3);
  ASSERT_TRUE(satisfies_a1_global_reachability(topo));
  const auto flaps = eligible_provider_flaps(topo, 3);
  for (const ArcId base : flaps) {
    SCOPED_TRACE(testing::Message() << "seed " << seed << " flap arc " << base);
    const AsTopology reduced = without_arc_pair(topo, base);
    ASSERT_TRUE(satisfies_a1_global_reachability(reduced));
    const SvfcPeerMeshScheme down_scheme(reduced);
    expect_valley_free(reduced, down_scheme, down_scheme.shadow(), "down");
    expect_compiled_matches_oracle(down_scheme, down_scheme.shadow(), seed,
                                   "down");
    const SvfcPeerMeshScheme up_scheme(topo);
    expect_valley_free(topo, up_scheme, up_scheme.shadow(), "up");
    expect_compiled_matches_oracle(up_scheme, up_scheme.shadow(), seed, "up");
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, BgpChurnSeeds,
                         ::testing::Range<std::uint64_t>(0, 50));

// The resilience sim serves both BGP planes from compiled arenas
// (route_pairs_with_failures probes compile_fib and batches the walk).
TEST(BgpResilience, ProviderTreeRunsOnCompiledPlane) {
  const AsTopology topo = random_topo(77, 40, 1);
  const ProviderTreeScheme scheme(topo);
  Rng rng(5);
  const ResilienceReport report =
      measure_resilience(scheme, scheme.shadow(), /*failures=*/4,
                         /*trials=*/300, rng);
  EXPECT_GT(report.pairs_tested, 0u);
  // Static tree scheme under 4 dead edges: some loss is expected, total
  // collapse is not.
  EXPECT_GT(report.delivery_rate(), 0.2);
}

TEST(BgpResilience, PeerMeshRunsOnCompiledPlane) {
  const AsTopology topo = random_topo(78, 40, 4);
  const SvfcPeerMeshScheme scheme(topo);
  Rng rng(6);
  const ResilienceReport report =
      measure_resilience(scheme, scheme.shadow(), /*failures=*/4,
                         /*trials=*/300, rng);
  EXPECT_GT(report.pairs_tested, 0u);
  EXPECT_GT(report.delivery_rate(), 0.2);
}

}  // namespace
}  // namespace cpr
