// Generalized Dijkstra vs. exhaustive ground truth across the regular
// Table-1 algebras, plus the documented unsoundness on the non-isotone
// shortest-widest algebra.
#include "algebra/lex_product.hpp"
#include "algebra/primitives.hpp"
#include "graph/generators.hpp"
#include "routing/dijkstra.hpp"
#include "routing/exhaustive.hpp"
#include "routing/shortest_widest.hpp"

#include <gtest/gtest.h>

namespace cpr {
namespace {

// Compares Dijkstra's weights against exhaustive enumeration on a random
// small graph (weights must match up to order-equality; paths themselves
// may differ under ties).
template <RoutingAlgebra A>
void expect_matches_exhaustive(const A& alg, std::uint64_t seed) {
  Rng rng(seed);
  const Graph g = erdos_renyi_connected(9, 0.35, rng);
  EdgeMap<typename A::Weight> w(g.edge_count());
  for (auto& x : w) x = alg.sample(rng);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto tree = dijkstra(alg, g, w, s);
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s == t) continue;
      const auto truth = exhaustive_preferred(alg, g, w, s, t);
      ASSERT_EQ(tree.reachable(t), truth.traversable())
          << alg.name() << " s=" << s << " t=" << t;
      if (!truth.traversable()) continue;
      EXPECT_TRUE(order_equal(alg, *tree.weight(t), *truth.weight))
          << alg.name() << " s=" << s << " t=" << t << " dijkstra="
          << alg.to_string(*tree.weight(t))
          << " exhaustive=" << alg.to_string(*truth.weight);
      // The extracted path must realize the reported weight.
      const auto path = tree.extract_path(t);
      const auto pw = weight_of_path(alg, g, w, path);
      ASSERT_TRUE(pw.has_value());
      EXPECT_TRUE(order_equal(alg, *pw, *tree.weight(t)));
    }
  }
}

class DijkstraSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DijkstraSeeds, ShortestPathMatchesExhaustive) {
  expect_matches_exhaustive(ShortestPath{16}, GetParam());
}
TEST_P(DijkstraSeeds, WidestPathMatchesExhaustive) {
  expect_matches_exhaustive(WidestPath{8}, GetParam());
}
TEST_P(DijkstraSeeds, MostReliableMatchesExhaustive) {
  expect_matches_exhaustive(MostReliablePath{}, GetParam());
}
TEST_P(DijkstraSeeds, WidestShortestMatchesExhaustive) {
  expect_matches_exhaustive(WidestShortest{ShortestPath{16}, WidestPath{8}},
                            GetParam());
}
TEST_P(DijkstraSeeds, UsablePathMatchesExhaustive) {
  expect_matches_exhaustive(UsablePath{}, GetParam());
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DijkstraSeeds,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Dijkstra, LineGraphDistances) {
  const Graph g = path_graph(5);
  EdgeMap<std::uint64_t> w = {1, 2, 3, 4};
  const auto tree = dijkstra(ShortestPath{}, g, w, 0);
  EXPECT_FALSE(tree.weight(0).has_value());  // empty path has no weight
  EXPECT_EQ(*tree.weight(1), 1u);
  EXPECT_EQ(*tree.weight(4), 10u);
  EXPECT_EQ(tree.extract_path(4), (NodePath{0, 1, 2, 3, 4}));
  EXPECT_EQ(tree.hops[4], 4u);
}

TEST(Dijkstra, PhiEdgesAreImpassable) {
  // A widest-path edge of capacity 0 is φ: unreachable through it.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EdgeMap<std::uint64_t> w = {5, 0};
  const auto tree = dijkstra(WidestPath{}, g, w, 0);
  EXPECT_TRUE(tree.reachable(1));
  EXPECT_FALSE(tree.reachable(2));
  EXPECT_TRUE(tree.extract_path(2).empty());
}

TEST(Dijkstra, HopTieBreakPrefersShorterPaths) {
  // Two equal-weight routes 0→3: direct edge (weight 4) and 0-1-2-3
  // (1+1+2 = 4). The tie-break must pick the 1-hop path.
  Graph g(4);
  EdgeMap<std::uint64_t> w;
  g.add_edge(0, 1);
  w.push_back(1);
  g.add_edge(1, 2);
  w.push_back(1);
  g.add_edge(2, 3);
  w.push_back(2);
  g.add_edge(0, 3);
  w.push_back(4);
  const auto tree = dijkstra(ShortestPath{}, g, w, 0);
  EXPECT_EQ(*tree.weight(3), 4u);
  EXPECT_EQ(tree.hops[3], 1u);
  EXPECT_EQ(tree.extract_path(3), (NodePath{0, 3}));
}

TEST(Dijkstra, UnsoundOnShortestWidest) {
  // The canonical non-isotone failure: the greedy settles node 2 through
  // the widest prefix, but the best shortest-widest path to node 3 uses
  // the narrower prefix. Dijkstra's answer is strictly worse than truth.
  //
  //   0 --(cap 10, cost 10)-- 2 --(cap 1, cost 1)-- 3
  //   0 --(cap 1, cost 1)---- 2                (parallel route via node 1)
  const ShortestWidest sw;
  Graph g(4);
  EdgeMap<ShortestWidest::Weight> w;
  g.add_edge(0, 2);
  w.push_back({10, 10});
  g.add_edge(0, 1);
  w.push_back({1, 1});
  g.add_edge(1, 2);
  w.push_back({1, 1});
  g.add_edge(2, 3);
  w.push_back({1, 1});
  const auto tree = dijkstra(sw, g, w, 0);
  const auto truth = exhaustive_preferred(sw, g, w, 0, 3);
  ASSERT_TRUE(truth.traversable());
  // Ground truth: bottleneck 1 either way, so cost decides: 0-1-2-3 = 3.
  EXPECT_EQ(truth.weight->second, 3u);
  // Dijkstra settled 2 via the wide edge and reports cost 11 — suboptimal.
  EXPECT_TRUE(sw.less(*truth.weight, *tree.weight(3)));
}

TEST(Dijkstra, AllPairsTreesCoverEveryRoot) {
  Rng rng(3);
  const Graph g = erdos_renyi_connected(12, 0.3, rng);
  const auto w = random_integer_weights(g, 1, 9, rng);
  const auto trees = all_pairs_trees(ShortestPath{}, g, w);
  ASSERT_EQ(trees.size(), g.node_count());
  for (NodeId s = 0; s < g.node_count(); ++s) {
    EXPECT_EQ(trees[s].source, s);
    for (NodeId t = 0; t < g.node_count(); ++t) {
      EXPECT_TRUE(trees[s].reachable(t));
    }
  }
}

}  // namespace
}  // namespace cpr
