#include "util/stats.hpp"
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cpr {
namespace {

TEST(Summary, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Summary, SingleValue) {
  const Summary s = summarize({5.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 5.0);
}

TEST(Summary, KnownDistribution) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_NEAR(s.p90, 90.1, 0.01);
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 7.0);
  }
  const LinearFit f = fit_line(x, y);
  EXPECT_NEAR(f.slope, 3.0, 1e-9);
  EXPECT_NEAR(f.intercept, 7.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(fit_line({1.0}, {2.0}).slope, 0.0);
  EXPECT_DOUBLE_EQ(fit_line({2.0, 2.0}, {1.0, 5.0}).slope, 0.0);
}

TEST(GrowthClass, RecognizesLinear) {
  std::vector<double> n, bits;
  for (double x : {64.0, 128.0, 256.0, 512.0, 1024.0}) {
    n.push_back(x);
    bits.push_back(12.0 * x + 30);
  }
  const GrowthClass g = classify_growth(n, bits);
  EXPECT_EQ(g.best_label, "n");
  EXPECT_NEAR(g.power_exponent, 1.0, 0.05);
}

TEST(GrowthClass, RecognizesLogarithmic) {
  std::vector<double> n, bits;
  for (double x : {64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0}) {
    n.push_back(x);
    bits.push_back(5.0 * std::log2(x));
  }
  const GrowthClass g = classify_growth(n, bits);
  EXPECT_EQ(g.best_label, "log n");
  EXPECT_LT(g.power_exponent, 0.5);
}

TEST(GrowthClass, RecognizesQuadratic) {
  std::vector<double> n, bits;
  for (double x : {32.0, 64.0, 128.0, 256.0}) {
    n.push_back(x);
    bits.push_back(2.0 * x * x);
  }
  EXPECT_EQ(classify_growth(n, bits).best_label, "n^2");
}

TEST(GrowthClass, RecognizesSqrt) {
  std::vector<double> n, bits;
  for (double x : {64.0, 256.0, 1024.0, 4096.0, 16384.0}) {
    n.push_back(x);
    bits.push_back(40.0 * std::sqrt(x));
  }
  EXPECT_EQ(classify_growth(n, bits).best_label, "sqrt(n)");
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0, 10, 5);
  h.add(-1);   // clamps to first bin
  h.add(0.5);
  h.add(9.5);
  h.add(42);   // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  const std::string text = h.render(10);
  EXPECT_NE(text.find("#"), std::string::npos);
}

TEST(TextTable, AlignsAndPads) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b"});  // short row padded
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(std::size_t{42}), "42");
}

}  // namespace
}  // namespace cpr
