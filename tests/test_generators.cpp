#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

namespace cpr {
namespace {

TEST(Generators, ErdosRenyiIsConnected) {
  Rng rng(1);
  for (std::size_t n : {8u, 32u, 100u}) {
    const Graph g = erdos_renyi_connected(n, 0.2, rng);
    EXPECT_EQ(g.node_count(), n);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, ErdosRenyiStitchesSparseGraphs) {
  Rng rng(2);
  // p = 0 forces the stitch path: result is a path over representatives.
  const Graph g = erdos_renyi_connected(16, 0.0, rng, 2);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.edge_count(), 15u);
}

TEST(Generators, BarabasiAlbertDegrees) {
  Rng rng(3);
  const Graph g = barabasi_albert(60, 2, rng);
  EXPECT_EQ(g.node_count(), 60u);
  EXPECT_TRUE(is_connected(g));
  // Each of the 57 later nodes adds exactly 2 edges to the 3-clique seed.
  EXPECT_EQ(g.edge_count(), 3u + 57u * 2u);
  EXPECT_THROW(barabasi_albert(3, 3, rng), std::invalid_argument);
}

TEST(Generators, PreferentialAttachmentShapeAndKnob) {
  Rng rng(7);
  const Graph g = preferential_attachment(80, 2, 0.25, rng);
  EXPECT_EQ(g.node_count(), 80u);
  EXPECT_TRUE(is_connected(g));
  // Same edge budget as BA: seed clique plus m edges per later node.
  EXPECT_EQ(g.edge_count(), 3u + 77u * 2u);
  // Deterministic under seed, like every generator here.
  Rng a(11), b(11);
  const Graph ga = preferential_attachment(40, 2, 0.25, a);
  const Graph gb = preferential_attachment(40, 2, 0.25, b);
  ASSERT_EQ(ga.edge_count(), gb.edge_count());
  for (const auto& e : ga.edges()) EXPECT_TRUE(gb.has_edge(e.u, e.v));
  EXPECT_THROW(preferential_attachment(3, 3, 0.25, rng),
               std::invalid_argument);
  EXPECT_THROW(preferential_attachment(10, 2, 1.5, rng),
               std::invalid_argument);
}

TEST(Generators, PreferentialAttachmentSkewsDegrees) {
  // The degree tail must be heavier than uniform attachment's: with a
  // pure preferential draw the max degree on n=400 far exceeds the ~2m
  // mean. A loose floor keeps the assertion robust across seeds.
  Rng rng(13);
  const Graph skewed = preferential_attachment(400, 2, 0.0, rng);
  const Graph mixed = preferential_attachment(400, 2, 1.0, rng);
  EXPECT_GE(skewed.max_degree(), 20u);
  // Full uniform attachment flattens the tail the preferential draw grows.
  EXPECT_GT(skewed.max_degree(), mixed.max_degree());
}

TEST(Generators, WattsStrogatzStaysConnected) {
  Rng rng(4);
  const Graph g = watts_strogatz(40, 2, 0.3, rng);
  EXPECT_EQ(g.node_count(), 40u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_THROW(watts_strogatz(4, 2, 0.3, rng), std::invalid_argument);
}

TEST(Generators, GridShape) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  // 3 rows * 3 horizontal + 2 * 4 vertical = 17.
  EXPECT_EQ(g.edge_count(), 17u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.max_degree(), 4u);
}

TEST(Generators, HypercubeShape) {
  const Graph g = hypercube(4);
  EXPECT_EQ(g.node_count(), 16u);
  EXPECT_EQ(g.edge_count(), 32u);  // n * d / 2
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(hop_diameter(g), 4u);
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(5);
  const Graph g = random_tree(50, rng);
  EXPECT_EQ(g.edge_count(), 49u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, StarRingCompletePath) {
  EXPECT_EQ(star(10).max_degree(), 9u);
  EXPECT_EQ(ring(10).edge_count(), 10u);
  EXPECT_EQ(complete(6).edge_count(), 15u);
  EXPECT_EQ(path_graph(5).edge_count(), 4u);
  EXPECT_EQ(hop_diameter(path_graph(5)), 4u);
}

TEST(Generators, KaryTreeShape) {
  const Graph g = kary_tree(13, 3);
  EXPECT_EQ(g.edge_count(), 12u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 3u);  // root has 3 children
}

TEST(Generators, DeterministicUnderSeed) {
  Rng a(77), b(77);
  const Graph ga = barabasi_albert(30, 2, a);
  const Graph gb = barabasi_albert(30, 2, b);
  ASSERT_EQ(ga.edge_count(), gb.edge_count());
  for (EdgeId e = 0; e < ga.edge_count(); ++e) {
    EXPECT_EQ(ga.edge(e).u, gb.edge(e).u);
    EXPECT_EQ(ga.edge(e).v, gb.edge(e).v);
  }
}

TEST(Generators, StandardFamiliesAllConnected) {
  Rng rng(6);
  for (const auto& fam : standard_families(48, rng)) {
    EXPECT_TRUE(is_connected(fam.graph)) << fam.name;
    EXPECT_GE(fam.graph.node_count(), 40u) << fam.name;
  }
}

TEST(Generators, RandomWeightsInRange) {
  Rng rng(8);
  const Graph g = ring(20);
  const auto w = random_integer_weights(g, 5, 9, rng);
  ASSERT_EQ(w.size(), g.edge_count());
  for (auto x : w) {
    EXPECT_GE(x, 5u);
    EXPECT_LE(x, 9u);
  }
}

}  // namespace
}  // namespace cpr
