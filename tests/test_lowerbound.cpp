// The lower-bound constructions: Fig.-1 gadgets (Lemma 1 necessity), the
// Theorem-4/Fig.-2 family with shortest-widest weights, and the BGP
// constructions of Theorems 5 and 8.
#include "algebra/primitives.hpp"
#include "lowerbound/counterexamples.hpp"
#include "lowerbound/counting.hpp"
#include "lowerbound/entropy.hpp"
#include "lowerbound/fg_family.hpp"
#include "routing/exhaustive.hpp"
#include "routing/path_vector.hpp"

#include <gtest/gtest.h>

namespace cpr {
namespace {

// All simple s→t paths of an undirected graph (tiny graphs only).
std::vector<NodePath> all_simple_paths(const Graph& g, NodeId s, NodeId t) {
  std::vector<NodePath> out;
  NodePath current{s};
  std::vector<bool> visited(g.node_count(), false);
  visited[s] = true;
  const auto dfs = [&](auto&& self, NodeId u) -> void {
    if (u == t) {
      out.push_back(current);
      return;
    }
    for (const auto& adj : g.neighbors(u)) {
      if (visited[adj.neighbor]) continue;
      visited[adj.neighbor] = true;
      current.push_back(adj.neighbor);
      self(self, adj.neighbor);
      current.pop_back();
      visited[adj.neighbor] = false;
    }
  };
  dfs(dfs, s);
  return out;
}

// ---- Fig. 1 gadgets ----

TEST(Fig1, AutoSelectivityViolationKillsTheTree) {
  // Shortest path with w = 1: 1 ⊕ 1 = 2 ≻ 1. Preferred paths are exactly
  // the three direct edges — no spanning tree holds them all.
  const ShortestPath s;
  const auto [g, w] = fig1a_gadget(s, 1);
  for (NodeId a = 0; a < 3; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b < 3; ++b) {
      const auto preferred = all_preferred_paths(s, g, w, a, b);
      ASSERT_EQ(preferred.size(), 1u);
      EXPECT_EQ(preferred[0], (NodePath{a, b}));
    }
  }
  EXPECT_FALSE(exists_preferred_spanning_tree(s, g, w));
}

TEST(Fig1, SelectiveControlAlgebraKeepsTheTree) {
  // The same triangle under widest path (selective): a tree suffices.
  const WidestPath wp;
  const auto [g, w] = fig1a_gadget(wp, 5);
  EXPECT_TRUE(exists_preferred_spanning_tree(wp, g, w));
}

TEST(Fig1, CaseBViolation) {
  // w1 = 1 ≺ w2 = 2 with w1 ⊕ w2 = 3 ≻ w2 (shortest path).
  const ShortestPath s;
  const auto [g, w] = fig1b_gadget(s, 1, 2);
  EXPECT_FALSE(exists_preferred_spanning_tree(s, g, w));
  // Preferred paths are the direct edges here too.
  for (NodeId a = 0; a < 3; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b < 3; ++b) {
      const auto best = exhaustive_preferred(s, g, w, a, b);
      EXPECT_EQ(best.path, (NodePath{a, b}));
    }
  }
}

TEST(Fig1, CaseCViolationWithEqualWeights) {
  // Most-reliable path with w1 = w2 = 1/2: composing two halves gives 1/4,
  // strictly worse — preferred paths are the cycle edges only.
  const MostReliablePath r;
  const auto [g, w] = fig1c_gadget(r, 0.5, 0.5);
  EXPECT_FALSE(exists_preferred_spanning_tree(r, g, w));
  // Adjacent pairs prefer the direct edge; diagonal pairs get a two-hop
  // path of weight 1/4 (traversable, per the delimitedness remark).
  const auto diag = exhaustive_preferred(r, g, w, 0, 2);
  ASSERT_TRUE(diag.traversable());
  EXPECT_DOUBLE_EQ(*diag.weight, 0.25);
  EXPECT_EQ(diag.path.size(), 3u);
}

TEST(Fig1, UsablePathAlwaysMapsToATree) {
  const UsablePath u;
  const auto [g, w] = fig1c_gadget(u, 1, 1);
  EXPECT_TRUE(exists_preferred_spanning_tree(u, g, w));
}

// ---- Theorem 4 / Fig. 2 family ----

TEST(FgFamily, StructureMatchesFig2) {
  // p = 2, δ = 2, all words: the Fig.-2 sample graph (2 centers, 4
  // gadgets, 4 targets).
  const FgFamily f = make_fg_family(2, 2, all_words(2, 2));
  EXPECT_EQ(f.centers.size(), 2u);
  EXPECT_EQ(f.gadgets[0].size(), 2u);
  EXPECT_EQ(f.targets.size(), 4u);
  EXPECT_EQ(f.graph.node_count(), 2u + 4u + 4u);
  // Edges: 2*2 center-gadget + 4 targets * 2 = 12.
  EXPECT_EQ(f.graph.edge_count(), 12u);
  // Target for word [1,0] attaches to z[0][1] and z[1][0].
  const NodeId t10 = f.targets[2];  // lexicographic order: 00,01,10,11
  EXPECT_TRUE(f.graph.has_edge(f.gadgets[0][1], t10));
  EXPECT_TRUE(f.graph.has_edge(f.gadgets[1][0], t10));
  EXPECT_FALSE(f.graph.has_edge(f.gadgets[0][0], t10));
}

TEST(FgFamily, RejectsMalformedWords) {
  EXPECT_THROW(make_fg_family(2, 2, {{0}}), std::invalid_argument);
  EXPECT_THROW(make_fg_family(2, 2, {{0, 5}}), std::invalid_argument);
  EXPECT_THROW(make_fg_family(0, 2, {}), std::invalid_argument);
}

TEST(FgFamily, WordEnumerationAndSampling) {
  EXPECT_EQ(all_words(3, 2).size(), 8u);
  EXPECT_EQ(all_words(2, 3).size(), 9u);
  Rng rng(1);
  const auto ws = random_words(4, 3, 10, rng);
  EXPECT_EQ(ws.size(), 10u);
  for (const auto& w : ws) {
    EXPECT_EQ(w.size(), 4u);
    for (auto sym : w) EXPECT_LT(sym, 3u);
  }
}

TEST(Theorem4, SwWeightsSatisfyCondition1) {
  const ShortestWidest sw;
  for (std::size_t k : {1u, 2u, 3u}) {
    for (std::size_t p : {2u, 3u, 4u}) {
      const auto ws = theorem4_sw_weights(p, k);
      EXPECT_TRUE(satisfies_condition_1(sw, ws, k))
          << "p=" << p << " k=" << k;
    }
  }
}

TEST(Theorem4, EqualWeightsViolateCondition1) {
  const ShortestWidest sw;
  const std::vector<ShortestWidest::Weight> ws = {{1, 1}, {1, 1}};
  EXPECT_FALSE(satisfies_condition_1(sw, ws, 1));
}

TEST(Theorem4, PreferredPathsAreTwoHopAndDetoursBreachStretch) {
  const std::size_t k = 2;
  const ShortestWidest sw;
  const FgFamily f = make_fg_family(2, 2, all_words(2, 2));
  const auto ws = theorem4_sw_weights(2, k);
  ASSERT_TRUE(satisfies_condition_1(sw, ws, k));
  const auto w = instantiate_weights<ShortestWidest>(f, ws);

  for (std::size_t i = 0; i < f.centers.size(); ++i) {
    for (std::size_t word_idx = 0; word_idx < f.targets.size(); ++word_idx) {
      const NodeId c = f.centers[i];
      const NodeId t = f.targets[word_idx];
      const auto best = exhaustive_preferred(sw, f.graph, w, c, t);
      ASSERT_TRUE(best.traversable());
      // Preferred path: c_i → z_i,word[i] → t with weight w_i².
      EXPECT_EQ(best.path.size(), 3u);
      EXPECT_EQ(best.path[1], f.gadgets[i][f.words[word_idx][i]]);
      EXPECT_TRUE(order_equal(sw, *best.weight, power(sw, ws[i], 2)));
      // Every other simple path breaches stretch k.
      for (const auto& path : all_simple_paths(f.graph, c, t)) {
        if (path == best.path) continue;
        const auto pw = weight_of_path(sw, f.graph, w, path);
        ASSERT_TRUE(pw.has_value());
        const auto stretch = algebraic_stretch(sw, *best.weight, *pw, k);
        EXPECT_FALSE(stretch.has_value())
            << "a detour within stretch " << k << " exists: c=" << c
            << " t=" << t;
      }
    }
  }
}

TEST(Entropy, SaturatesAtTheCountingBound) {
  // τ = 2, δ = 2: only 4 possible port maps at a center; with many
  // sampled instances all of them must appear — measured entropy equals
  // the theoretical τ·log₂δ exactly.
  const ShortestWidest sw;
  const auto ws = theorem4_sw_weights(2, 2);
  Rng rng(5);
  const auto est = measure_center_entropy(sw, 2, 2, 2, ws, 64, rng,
                                          sw_exact_solver(sw));
  EXPECT_EQ(est.distinct_maps, 4u);
  EXPECT_DOUBLE_EQ(est.log2_distinct, 2.0);
  EXPECT_DOUBLE_EQ(est.theoretical_bits, 2.0);
}

TEST(Entropy, SwSolverAgreesWithExhaustive) {
  const ShortestWidest sw;
  const auto ws = theorem4_sw_weights(2, 2);
  const FgFamily f = make_fg_family(2, 2, all_words(2, 2));
  const auto fast =
      center_port_map(sw, f, ws, 0, sw_exact_solver(sw));
  const auto slow = center_port_map(sw, f, ws, 0, exhaustive_solver(sw));
  EXPECT_EQ(fast, slow);
  // On the full-word family the map at center 0 is exactly the word
  // projection: targets in lexicographic order have first symbols
  // 0,0,1,1.
  EXPECT_EQ(fast, (std::vector<std::uint32_t>{0, 0, 1, 1}));
}

TEST(CountingBound, MatchesClosedForm) {
  const CountingBound b = fg_family_counting_bound(4, 8, 100);
  EXPECT_DOUBLE_EQ(b.per_center_bits, 300.0);   // 100 · log2 8
  EXPECT_DOUBLE_EQ(b.total_center_bits, 1200.0);
  EXPECT_DOUBLE_EQ(b.family_log2, 1200.0);
}

// ---- Theorems 5 and 8: BGP constructions ----

TEST(Theorem5, B1DetoursAreValleys) {
  const B1ProviderCustomer b1;
  const AsTopology topo = fg_b1_topology(2, 2, all_words(2, 2));
  const auto labels = topo.labels();
  const Graph shadow = topo.graph.undirected_shadow();
  const FgFamily f = make_fg_family(2, 2, all_words(2, 2));

  // The construction violates A1 (centers cannot reach each other)...
  EXPECT_FALSE(satisfies_a1_global_reachability(topo));
  // ...which is exactly why Theorem 6's fix needs A1.
  for (std::size_t i = 0; i < f.centers.size(); ++i) {
    for (NodeId t : f.targets) {
      const NodeId c = f.centers[i];
      for (const auto& path : all_simple_paths(shadow, c, t)) {
        const auto pw = weight_of_path(b1, topo.graph, labels, path);
        ASSERT_TRUE(pw.has_value());
        if (path.size() == 3) {
          // Two-hop down-down paths are the preferred ones (weight c).
          EXPECT_EQ(*pw, BgpLabel::kCustomer);
        } else {
          EXPECT_TRUE(b1.is_phi(*pw))
              << "non-preferred path is traversable: c=" << c << " t=" << t;
        }
      }
    }
  }
}

TEST(Theorem8, B3DetoursWeighAtLeastPeer) {
  const B3LocalPref b3;
  const AsTopology topo = fg_b3_topology(2, 2, all_words(2, 2));
  // The peer patch restores A1 and keeps A2.
  EXPECT_TRUE(satisfies_a1_global_reachability(topo));
  EXPECT_TRUE(satisfies_a2_no_provider_loops(topo));

  const auto labels = topo.labels();
  const FgFamily f = make_fg_family(2, 2, all_words(2, 2));
  for (std::size_t i = 0; i < f.centers.size(); ++i) {
    for (NodeId t : f.targets) {
      const NodeId c_node = f.centers[i];
      const auto routes = path_vector(b3, topo.graph, labels, t);
      ASSERT_TRUE(routes.reachable(c_node));
      // Preferred: the customer route (weight c, 2 hops).
      EXPECT_EQ(*routes.weight[c_node], BgpLabel::kCustomer);
      EXPECT_EQ(routes.path[c_node].size(), 3u);
    }
  }
  // Stretch is powerless: r ≻ c^k for every k since c^k = c.
  EXPECT_FALSE(algebraic_stretch(b3, BgpLabel::kCustomer, BgpLabel::kPeer, 64)
                   .has_value());
}

TEST(Theorem5, ConstructionScalesWithParameters) {
  const AsTopology small = fg_b1_topology(2, 2, all_words(2, 2));
  const AsTopology large = fg_b1_topology(3, 3, all_words(3, 3));
  EXPECT_GT(large.graph.node_count(), small.graph.node_count());
  const CountingBound bs = fg_family_counting_bound(2, 2, 4);
  const CountingBound bl = fg_family_counting_bound(3, 3, 27);
  EXPECT_GT(bl.per_center_bits, bs.per_center_bits);
}

}  // namespace
}  // namespace cpr
