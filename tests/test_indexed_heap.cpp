// The indexed-heap Dijkstra must be a drop-in replacement for the
// lazy-deletion priority-queue version it displaced: same comparator →
// same settle order → bit-identical trees. `reference_dijkstra` below *is*
// the displaced implementation (std::priority_queue, stale-entry skipping,
// std::optional weights), kept here as the differential oracle; the
// equivalence is checked field-for-field over the seeded corpus for every
// Table 1 algebra the greedy is sound on. Plus direct unit tests of the
// heap's decrease-key mechanics, which the differential test alone could
// mask (a heap that degenerated to a sorted scan would still be correct).
#include "algebra/primitives.hpp"
#include "routing/dijkstra.hpp"
#include "routing/indexed_heap.hpp"
#include "routing/shortest_widest.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <optional>
#include <queue>
#include <vector>

namespace cpr {
namespace {

// ---- Differential oracle: the pre-refactor lazy-queue Dijkstra ----

template <typename W>
struct ReferenceTree {
  NodeId source = kInvalidNode;
  std::vector<NodeId> parent;
  std::vector<EdgeId> parent_edge;
  std::vector<std::optional<W>> weight;
  std::vector<std::size_t> hops;
};

template <RoutingAlgebra A>
ReferenceTree<typename A::Weight> reference_dijkstra(
    const A& alg, const Graph& g, const EdgeMap<typename A::Weight>& w,
    NodeId source) {
  using W = typename A::Weight;
  const std::size_t n = g.node_count();
  ReferenceTree<W> tree;
  tree.source = source;
  tree.parent.assign(n, kInvalidNode);
  tree.parent_edge.assign(n, kInvalidEdge);
  tree.weight.assign(n, std::nullopt);
  tree.hops.assign(n, 0);
  tree.parent[source] = source;

  struct Entry {
    W weight;
    std::size_t hops;
    NodeId node;
  };
  auto worse = [&alg](const Entry& a, const Entry& b) {
    if (alg.less(a.weight, b.weight)) return false;
    if (alg.less(b.weight, a.weight)) return true;
    if (a.hops != b.hops) return a.hops > b.hops;
    return a.node > b.node;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> queue(worse);
  std::vector<bool> settled(n, false);

  auto relax = [&](NodeId from, const Graph::Adjacency& adj, const W& cand,
                   std::size_t hops) {
    if (alg.is_phi(cand)) return;
    const NodeId v = adj.neighbor;
    if (settled[v] || v == source) return;
    const bool improves =
        !tree.weight[v].has_value() || alg.less(cand, *tree.weight[v]) ||
        (order_equal(alg, cand, *tree.weight[v]) && hops < tree.hops[v]);
    if (improves) {
      tree.weight[v] = cand;
      tree.hops[v] = hops;
      tree.parent[v] = from;
      tree.parent_edge[v] = adj.edge;
      queue.push({cand, hops, v});
    }
  };

  settled[source] = true;
  for (const auto& adj : g.neighbors(source)) {
    relax(source, adj, w[adj.edge], 1);
  }
  while (!queue.empty()) {
    const Entry top = queue.top();
    queue.pop();
    if (settled[top.node]) continue;
    if (!tree.weight[top.node].has_value() ||
        !order_equal(alg, *tree.weight[top.node], top.weight) ||
        tree.hops[top.node] != top.hops) {
      continue;  // stale entry
    }
    settled[top.node] = true;
    for (const auto& adj : g.neighbors(top.node)) {
      relax(top.node, adj, alg.combine(top.weight, w[adj.edge]), top.hops + 1);
    }
  }
  return tree;
}

// Bit-identical, not just order-equal: same parents, same parent edges,
// same hop counts, same reachability, and exactly equal weight values.
template <RoutingAlgebra A>
void expect_trees_identical(const A& alg, const Graph& g,
                            const EdgeMap<typename A::Weight>& w) {
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto got = dijkstra(alg, g, w, s);
    const auto want = reference_dijkstra(alg, g, w, s);
    ASSERT_EQ(got.source, want.source);
    ASSERT_EQ(got.parent, want.parent) << alg.name() << " s=" << s;
    ASSERT_EQ(got.parent_edge, want.parent_edge) << alg.name() << " s=" << s;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      ASSERT_EQ(got.has_weight(v), want.weight[v].has_value())
          << alg.name() << " s=" << s << " v=" << v;
      if (want.weight[v].has_value()) {
        EXPECT_EQ(got.hops[v], want.hops[v])
            << alg.name() << " s=" << s << " v=" << v;
        EXPECT_EQ(got.weight_at(v), *want.weight[v])
            << alg.name() << " s=" << s << " v=" << v;
      }
    }
  }
}

class HeapDijkstraSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeapDijkstraSeeds, ShortestPathMatchesLazyQueue) {
  const ShortestPath alg{1024};
  auto inst = test::seeded_instance(alg, GetParam(), 36, 0.15);
  expect_trees_identical(alg, inst.graph, inst.weights);
}

TEST_P(HeapDijkstraSeeds, WidestPathMatchesLazyQueue) {
  // Widest path is tie-heavy (few distinct capacities), exercising the
  // hop/id tie-break arms of the comparator.
  const WidestPath alg{8};
  auto inst = test::seeded_instance(alg, GetParam(), 36, 0.2);
  expect_trees_identical(alg, inst.graph, inst.weights);
}

TEST_P(HeapDijkstraSeeds, MostReliableMatchesLazyQueue) {
  const MostReliablePath alg{};
  auto inst = test::seeded_instance(alg, GetParam(), 30, 0.2);
  expect_trees_identical(alg, inst.graph, inst.weights);
}

TEST_P(HeapDijkstraSeeds, UsablePathMatchesLazyQueue) {
  // Boolean weights: everything reachable ties, so the tree is decided
  // entirely by hops-then-id.
  const UsablePath alg{};
  auto inst = test::seeded_instance(alg, GetParam(), 30, 0.2);
  expect_trees_identical(alg, inst.graph, inst.weights);
}

TEST_P(HeapDijkstraSeeds, WidestShortestMatchesLazyQueue) {
  const WidestShortest alg{ShortestPath{64}, WidestPath{8}};
  auto inst = test::seeded_instance(alg, GetParam(), 30, 0.2);
  expect_trees_identical(alg, inst.graph, inst.weights);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, HeapDijkstraSeeds,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(IndexedHeapDijkstra, DisconnectedComponentStaysUnreached) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EdgeMap<std::uint64_t> w{3, 5};
  const auto tree = dijkstra(ShortestPath{64}, g, w, 0);
  EXPECT_TRUE(tree.reachable(1));
  EXPECT_FALSE(tree.reachable(2));
  EXPECT_FALSE(tree.reachable(3));
  EXPECT_FALSE(tree.weight(2).has_value());
  EXPECT_TRUE(tree.extract_path(3).empty());
}

// ---- Direct heap mechanics ----

using Heap = IndexedDaryHeap<std::uint64_t>;
using HeapEntry = Heap::Entry;

// Smaller weight first, node id tie-break — the shape the Dijkstra
// comparator has (hops unused here).
struct EntryBetter {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.weight != b.weight) return a.weight < b.weight;
    return a.node < b.node;
  }
};

HeapEntry entry(std::uint64_t key, NodeId node) { return {key, 0, node}; }

TEST(IndexedHeap, PopsInKeyOrder) {
  const std::vector<std::uint64_t> key{50, 10, 40, 20, 30, 10};
  EntryBetter better;
  Heap h;
  h.reset(key.size());
  for (NodeId v = 0; v < key.size(); ++v) h.push(entry(key[v], v), better);
  std::vector<NodeId> popped;
  while (!h.empty()) popped.push_back(h.pop(better).node);
  // Equal keys (10 at nodes 1 and 5) resolve by node id.
  EXPECT_EQ(popped, (std::vector<NodeId>{1, 5, 3, 4, 2, 0}));
}

TEST(IndexedHeap, DecreaseKeyReordersWithoutDuplicates) {
  EntryBetter better;
  Heap h;
  h.reset(5);
  for (NodeId v = 0; v < 5; ++v) h.push(entry(9 - v, v), better);
  ASSERT_EQ(h.size(), 5u);

  h.update(entry(1, 0), better);  // improve the worst node to best...
  EXPECT_EQ(h.size(), 5u);        // ...without growing the heap
  const HeapEntry top = h.pop(better);
  EXPECT_EQ(top.node, 0u);
  EXPECT_EQ(top.weight, 1u);  // pop returns the improved key
  EXPECT_TRUE(h.settled(0));

  h.update(entry(2, 3), better);  // decrease-key mid-drain
  EXPECT_EQ(h.pop(better).node, 3u);
  EXPECT_EQ(h.pop(better).node, 4u);
}

TEST(IndexedHeap, TracksNodeStates) {
  EntryBetter better;
  Heap h;
  h.reset(3);
  EXPECT_TRUE(h.never_seen(0));
  h.mark_settled(0);  // the source never enters the heap
  EXPECT_TRUE(h.settled(0));
  EXPECT_FALSE(h.in_heap(0));
  h.push(entry(1, 1), better);
  EXPECT_TRUE(h.in_heap(1));
  EXPECT_FALSE(h.settled(1));
  EXPECT_EQ(h.pop(better).node, 1u);
  EXPECT_TRUE(h.settled(1));
  EXPECT_TRUE(h.never_seen(2));
}

TEST(IndexedHeap, ResetClearsStateForReuse) {
  EntryBetter better;
  Heap h;
  h.reset(2);
  h.push(entry(3, 0), better);
  h.push(entry(1, 1), better);
  (void)h.pop(better);

  h.reset(2);  // same buffers, fresh run
  EXPECT_TRUE(h.empty());
  EXPECT_TRUE(h.never_seen(0));
  EXPECT_TRUE(h.never_seen(1));
  h.push(entry(3, 0), better);
  EXPECT_EQ(h.pop(better).node, 0u);
}

TEST(IndexedHeap, RandomizedAgainstSortedOrder) {
  // 200 nodes with random (often colliding) keys must drain in exactly
  // the comparator's total order, after a burst of random decreases.
  Rng rng(99);
  std::vector<std::uint64_t> key(200);
  for (auto& k : key) k = rng.uniform(0, 30);
  EntryBetter better;
  Heap h;
  h.reset(key.size());
  for (NodeId v = 0; v < key.size(); ++v) h.push(entry(key[v], v), better);
  for (int i = 0; i < 100; ++i) {
    const NodeId v = static_cast<NodeId>(rng.index(key.size()));
    if (!h.in_heap(v) || key[v] == 0) continue;
    key[v] -= rng.uniform(1, key[v]);
    h.update(entry(key[v], v), better);
  }
  std::vector<NodeId> want(key.size());
  std::iota(want.begin(), want.end(), NodeId{0});
  std::sort(want.begin(), want.end(), [&key](NodeId a, NodeId b) {
    if (key[a] != key[b]) return key[a] < key[b];
    return a < b;
  });
  std::vector<NodeId> got;
  while (!h.empty()) got.push_back(h.pop(better).node);
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace cpr
