// Theorems 6 and 7: the compact BGP schemes deliver over valley-free
// paths with logarithmic per-node state, and the destination-table
// baseline implements the valley-free solver's routes.
#include "bgp/bgp_schemes.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cpr {
namespace {

AsTopology random_topo(std::uint64_t seed, std::size_t n, std::size_t tier1,
                       double peers = 0.0) {
  Rng rng(seed);
  AsTopologyOptions opt;
  opt.nodes = n;
  opt.tier1 = tier1;
  opt.max_providers = 2;
  opt.extra_peer_prob = peers;
  return generate_as_topology(opt, rng);
}

// Checks that the scheme delivers every pair over a path that is
// traversable (non-φ) under B2's labels — the correctness notion for the
// equal-preference algebras B1/B2.
template <typename Scheme>
void expect_valley_free_delivery(const AsTopology& topo, const Scheme& s,
                                 const Graph& shadow) {
  const B2ValleyFree b2;
  const auto labels = topo.labels();
  for (NodeId src = 0; src < shadow.node_count(); ++src) {
    for (NodeId dst = 0; dst < shadow.node_count(); ++dst) {
      const RouteResult r = simulate_route(s, shadow, src, dst);
      ASSERT_TRUE(r.delivered) << "src=" << src << " dst=" << dst;
      if (src == dst) continue;
      const auto w = weight_of_path(b2, topo.graph, labels, r.path);
      ASSERT_TRUE(w.has_value()) << "src=" << src << " dst=" << dst;
      EXPECT_FALSE(b2.is_phi(*w))
          << "valley in path, src=" << src << " dst=" << dst;
    }
  }
}

class BgpSchemeSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BgpSchemeSeeds, Theorem6ProviderTreeDelivers) {
  const AsTopology topo = random_topo(GetParam(), 40, 1);
  ASSERT_TRUE(satisfies_a1_global_reachability(topo));
  ASSERT_TRUE(satisfies_a2_no_provider_loops(topo));
  const ProviderTreeScheme scheme(topo);
  expect_valley_free_delivery(topo, scheme, scheme.shadow());
}

TEST_P(BgpSchemeSeeds, Theorem7SvfcMeshDelivers) {
  const AsTopology topo = random_topo(GetParam() + 30, 40, 4);
  ASSERT_TRUE(satisfies_a1_global_reachability(topo));
  const SvfcPeerMeshScheme scheme(topo);
  EXPECT_EQ(scheme.component_count(), 4u);
  expect_valley_free_delivery(topo, scheme, scheme.shadow());
}

TEST_P(BgpSchemeSeeds, DestinationTablesMatchValleyFreeSolver) {
  const AsTopology topo = random_topo(GetParam() + 60, 24, 2, 0.05);
  const Graph shadow = topo.graph.undirected_shadow();
  const auto scheme = bgp_destination_tables(topo, shadow);
  const B3LocalPref b3;
  const auto labels = topo.labels();
  for (NodeId t = 0; t < shadow.node_count(); ++t) {
    const auto truth = valley_free_reachability(topo, t);
    for (NodeId s = 0; s < shadow.node_count(); ++s) {
      if (s == t) continue;
      const RouteResult r = simulate_route(scheme, shadow, s, t);
      if (truth.klass[s] == ValleyFreeClass::kUnreachable) {
        EXPECT_FALSE(r.delivered);
        continue;
      }
      ASSERT_TRUE(r.delivered) << "s=" << s << " t=" << t;
      // Delivered weight matches the solver's class exactly (B3-preferred).
      const auto w = weight_of_path(b3, topo.graph, labels, r.path);
      ASSERT_TRUE(w.has_value());
      EXPECT_EQ(*w, truth.weight(s)) << "s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, BgpSchemeSeeds,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(ProviderTreeScheme, MemoryIsLogarithmic) {
  for (std::size_t n : {64u, 256u, 1024u}) {
    const AsTopology topo = random_topo(n, n, 1);
    const ProviderTreeScheme scheme(topo);
    const double lg = std::log2(static_cast<double>(n));
    const auto fp = measure_footprint(scheme, n);
    EXPECT_LE(fp.max_node_bits, 5 * lg + 16) << "n=" << n;
    EXPECT_LE(fp.max_label_bits, 5 * lg + 16) << "n=" << n;
  }
}

TEST(SvfcPeerMeshScheme, MemoryIsLogarithmic) {
  for (std::size_t n : {64u, 256u, 1024u}) {
    const AsTopology topo = random_topo(n + 1, n, 5);
    const SvfcPeerMeshScheme scheme(topo);
    const double lg = std::log2(static_cast<double>(n));
    const auto fp = measure_footprint(scheme, n);
    EXPECT_LE(fp.max_node_bits, 6 * lg + 20) << "n=" << n;
    EXPECT_LE(fp.max_label_bits, 6 * lg + 20) << "n=" << n;
  }
}

TEST(SvfcPeerMeshScheme, IgnoresLateralPeersButStaysCorrect) {
  // Lateral (non-root) peer links exist in the topology; the scheme never
  // uses them — routes stay inside the provider trees + root mesh and
  // remain valley-free.
  const AsTopology topo = random_topo(5, 32, 3, 0.1);
  const SvfcPeerMeshScheme scheme(topo);
  expect_valley_free_delivery(topo, scheme, scheme.shadow());
}

TEST(SvfcPeerMeshScheme, SingleComponentDegeneratesToProviderTree) {
  const AsTopology topo = random_topo(6, 24, 1);
  const SvfcPeerMeshScheme mesh(topo);
  EXPECT_EQ(mesh.component_count(), 1u);
  const ProviderTreeScheme tree(topo);
  // Same routes hop for hop.
  for (NodeId s = 0; s < 24; s += 2) {
    for (NodeId t = 0; t < 24; t += 3) {
      const RouteResult a = simulate_route(mesh, mesh.shadow(), s, t);
      const RouteResult b = simulate_route(tree, tree.shadow(), s, t);
      ASSERT_TRUE(a.delivered);
      ASSERT_TRUE(b.delivered);
      EXPECT_EQ(a.path, b.path) << "s=" << s << " t=" << t;
    }
  }
}

TEST(ProviderTreeScheme, RejectsMultiRootTopologies) {
  const AsTopology topo = random_topo(3, 20, 3);
  EXPECT_THROW(ProviderTreeScheme{topo}, std::invalid_argument);
}

TEST(SvfcPeerMeshScheme, RejectsUnpeeredRoots) {
  // Two provider trees, no peer mesh.
  AsTopology topo;
  topo.graph = Digraph(4);
  auto provider = [&](NodeId cust, NodeId prov) {
    topo.graph.add_arc_pair(cust, prov);
    topo.relation.push_back(Relationship::kProvider);
    topo.relation.push_back(Relationship::kCustomer);
  };
  provider(2, 0);
  provider(3, 1);
  EXPECT_THROW(SvfcPeerMeshScheme{topo}, std::invalid_argument);
}

TEST(ProviderTreeScheme, PathsClimbThenDescend) {
  // On a provider chain 3 → 2 → 1 → 0, routing 3 → 1 must go straight up
  // without overshooting to the root.
  AsTopology topo;
  topo.graph = Digraph(4);
  auto provider = [&](NodeId cust, NodeId prov) {
    topo.graph.add_arc_pair(cust, prov);
    topo.relation.push_back(Relationship::kProvider);
    topo.relation.push_back(Relationship::kCustomer);
  };
  provider(1, 0);
  provider(2, 1);
  provider(3, 2);
  const ProviderTreeScheme scheme(topo);
  const RouteResult r = simulate_route(scheme, scheme.shadow(), 3, 1);
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.path, (NodePath{3, 2, 1}));
}

}  // namespace
}  // namespace cpr
