// Executable proofs: the Lemma-2 cyclic-subsemigroup embedding (shortest
// paths survive the relabeling n ↦ wⁿ) and the Theorem-6 reduction of B1
// to the usable-path algebra on the provider tree.
#include "algebra/more_algebras.hpp"
#include "bgp/valley_free.hpp"
#include "graph/generators.hpp"
#include "lowerbound/embedding.hpp"
#include "routing/dijkstra.hpp"
#include "routing/exhaustive.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cpr {
namespace {

class EmbeddingSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EmbeddingSeeds, ReliabilityEmbedsShortestPaths) {
  // Lemma 2 on R: generator w = 1/2 in ((0,1),0,*,≥); the map n ↦ (1/2)ⁿ
  // is an order isomorphism onto the cyclic subsemigroup, so a path is
  // shortest for the integer weights iff it is preferred for the powers.
  Rng rng(GetParam());
  const MostReliablePath r{/*allow_one=*/false};
  const ShortestPath s{6};
  const Graph g = erdos_renyi_connected(9, 0.35, rng);
  EdgeMap<std::uint64_t> ints(g.edge_count());
  for (auto& x : ints) x = rng.uniform(1, 6);
  const auto powers = cyclic_embedding(r, 0.5, ints);

  for (NodeId src = 0; src < g.node_count(); ++src) {
    const auto int_tree = dijkstra(s, g, ints, src);
    const auto pow_tree = dijkstra(r, g, powers, src);
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (src == t) continue;
      ASSERT_TRUE(int_tree.reachable(t));
      ASSERT_TRUE(pow_tree.reachable(t));
      // Same optimum: (1/2)^(shortest distance).
      EXPECT_DOUBLE_EQ(*pow_tree.weight(t),
                       std::pow(0.5, static_cast<double>(*int_tree.weight(t))))
          << "src=" << src << " t=" << t;
    }
  }
}

TEST_P(EmbeddingSeeds, CappedAlgebraEmbedsWhenBudgetAllows) {
  // The same reduction works inside any delimited SM algebra as long as
  // the powers stay finite; with a generous budget the capped algebra
  // behaves identically to its root.
  Rng rng(GetParam() + 50);
  const auto bounded = capped(ShortestPath{4}, std::uint64_t{1000});
  const ShortestPath s{4};
  const Graph g = erdos_renyi_connected(8, 0.4, rng);
  EdgeMap<std::uint64_t> ints(g.edge_count());
  for (auto& x : ints) x = rng.uniform(1, 4);
  // Generator 3: n ↦ 3n.
  const auto scaled = cyclic_embedding(bounded, std::uint64_t{3}, ints);
  const auto int_tree = dijkstra(s, g, ints, 0);
  const auto scaled_tree = dijkstra(bounded, g, scaled, 0);
  for (NodeId t = 1; t < g.node_count(); ++t) {
    EXPECT_EQ(*scaled_tree.weight(t), 3 * *int_tree.weight(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Random, EmbeddingSeeds,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(Embedding, RejectsZeroWeights) {
  const MostReliablePath r{false};
  EXPECT_THROW(cyclic_embedding(r, 0.5, {1, 0, 2}), std::invalid_argument);
}

TEST(Theorem6Reduction, UsablePathsCoverAllPairsThroughTheRoot) {
  Rng rng(9);
  AsTopologyOptions opt;
  opt.nodes = 30;
  opt.tier1 = 1;
  const AsTopology topo = generate_as_topology(opt, rng);
  const Theorem6Reduction red = theorem6_reduction(topo);
  const UsablePath u;

  // Claims (i)-(ii) from the proof: every node reaches the root — hence
  // every other node — over weight-1 edges.
  const auto tree = dijkstra(u, red.shadow, red.usable, red.root);
  for (NodeId v = 0; v < red.shadow.node_count(); ++v) {
    ASSERT_TRUE(tree.reachable(v)) << "v=" << v;
    if (v != red.root) {
      EXPECT_EQ(*tree.weight(v), 1);
    }
  }

  // Claim (iii): tree paths, read back in the digraph, are valley-free.
  const B1ProviderCustomer b1;
  const auto labels = topo.labels();
  for (NodeId v = 1; v < red.shadow.node_count(); ++v) {
    const NodePath up = tree.extract_path(v);  // root -> v along tree
    const auto w = weight_of_path(b1, topo.graph, labels, up);
    ASSERT_TRUE(w.has_value());
    EXPECT_FALSE(b1.is_phi(*w)) << "v=" << v;
  }
}

TEST(Theorem6Reduction, NonProviderEdgesAreUnusable) {
  Rng rng(10);
  AsTopologyOptions opt;
  opt.nodes = 20;
  opt.tier1 = 1;
  opt.max_providers = 3;  // multihoming: some provider links unused
  const AsTopology topo = generate_as_topology(opt, rng);
  const Theorem6Reduction red = theorem6_reduction(topo);
  const UsablePath u;
  std::size_t usable = 0, unusable = 0;
  for (const auto w : red.usable) {
    (u.is_phi(w) ? unusable : usable) += 1;
  }
  EXPECT_EQ(usable, red.shadow.node_count() - 1);  // exactly the tree
  EXPECT_GT(unusable, 0u);  // the spare multihoming links
}

TEST(Theorem6Reduction, RequiresUniqueRoot) {
  Rng rng(11);
  AsTopologyOptions opt;
  opt.nodes = 16;
  opt.tier1 = 3;
  const AsTopology topo = generate_as_topology(opt, rng);
  EXPECT_THROW(theorem6_reduction(topo), std::invalid_argument);
}

}  // namespace
}  // namespace cpr
