// Failure-injection harness semantics + AS-relationship serialization.
#include "algebra/primitives.hpp"
#include "bgp/as_io.hpp"
#include "graph/generators.hpp"
#include "scheme/dest_table.hpp"
#include "scheme/tree_router.hpp"
#include "sim/resilience.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

namespace cpr {
namespace {

TEST(Resilience, NoFailuresMeansFullDelivery) {
  Rng rng(1);
  const Graph g = erdos_renyi_connected(20, 0.3, rng);
  const auto w = random_integer_weights(g, 1, 9, rng);
  const auto scheme =
      DestinationTableScheme::from_algebra(ShortestPath{}, g, w);
  const ResilienceReport r = measure_resilience(scheme, g, 0, 500, rng);
  EXPECT_EQ(r.delivered, r.pairs_tested);
  EXPECT_EQ(r.lost_but_connected, 0u);
}

TEST(Resilience, PacketDropsAtTheDeadLink) {
  // Path 0-1-2: failing edge (1,2) strands destination 2 exactly at the
  // failed hop, with the path recording the progress made.
  const Graph g = path_graph(3);
  EdgeMap<std::uint64_t> w(g.edge_count(), 1);
  const auto scheme =
      DestinationTableScheme::from_algebra(ShortestPath{}, g, w);
  std::vector<bool> down(g.edge_count(), false);
  down[1] = true;  // edge 1-2
  const RouteResult r = simulate_route_with_failures(scheme, g, down, 0, 2);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.path, (NodePath{0, 1}));
  EXPECT_TRUE(simulate_route_with_failures(scheme, g, down, 0, 1).delivered);
}

TEST(Resilience, TreeSchemesLoseWholeSubtrees) {
  // Star: failing one spoke cuts exactly the pairs involving that leaf.
  const std::size_t n = 16;
  const Graph g = star(n);
  std::vector<EdgeId> edges(g.edge_count());
  std::iota(edges.begin(), edges.end(), EdgeId{0});
  const TreeRouter tree(g, edges, 0);
  std::vector<bool> down(g.edge_count(), false);
  down[3] = true;  // spoke to leaf 4 (edge ids follow construction order)
  const NodeId cut_leaf = g.opposite(3, 0);
  std::size_t lost = 0, tested = 0;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      ++tested;
      const bool delivered =
          simulate_route_with_failures(tree, g, down, s, t).delivered;
      if (!delivered) {
        ++lost;
        EXPECT_TRUE(s == cut_leaf || t == cut_leaf);
      }
    }
  }
  EXPECT_EQ(lost, 2 * (n - 2) + 2);  // every pair touching the cut leaf
  EXPECT_EQ(tested, n * (n - 1));
}

TEST(Resilience, LostButConnectedSeparatesPartitionFromFragility) {
  // Ring: one failure leaves the graph connected, but the tree scheme
  // (path spanning tree) loses all pairs across the cut — all of them
  // "lost but connected".
  const std::size_t n = 12;
  const Graph g = ring(n);
  // Spanning tree = the ring minus the last edge.
  std::vector<EdgeId> tree_edges(n - 1);
  std::iota(tree_edges.begin(), tree_edges.end(), EdgeId{0});
  const TreeRouter tree(g, tree_edges, 0);
  Rng rng(5);
  // Fail a known tree edge deterministically by monkey-patching the RNG
  // path: use measure_resilience with 1 failure repeatedly until a tree
  // edge happens to fail, then check accounting.
  bool saw_fragility = false;
  for (int attempt = 0; attempt < 20 && !saw_fragility; ++attempt) {
    const ResilienceReport r = measure_resilience(tree, g, 1, 400, rng);
    if (r.delivered < r.pairs_tested) {
      EXPECT_GT(r.lost_but_connected, 0u);  // ring stays connected
      saw_fragility = true;
    }
  }
  EXPECT_TRUE(saw_fragility);
}

// A scheme that is deliberately broken: every node forwards out of port 0
// and never delivers, so a packet on the 2-node path graph bounces
// 0 → 1 → 0 forever. With an equality-comparable header the simulator
// must prove the loop from the first revisited (node, header) state —
// after 2 hops — rather than spinning through the whole 4n+16 budget and
// reporting it indistinguishably from a long path.
struct PingPongScheme {
  using Header = NodeId;
  Header make_header(NodeId target) const { return target; }
  Decision forward(NodeId, Header&) const { return Decision::via(0); }
  std::size_t local_memory_bits(NodeId) const { return 0; }
  std::size_t label_bits(NodeId) const { return 0; }
};
static_assert(CompactRoutingScheme<PingPongScheme>);

TEST(Resilience, DetectsForwardingLoopsExactly) {
  const Graph g = path_graph(2);
  const std::vector<bool> down(g.edge_count(), false);
  const RouteResult r =
      simulate_route_with_failures(PingPongScheme{}, g, down, 0, 1);
  EXPECT_FALSE(r.delivered);
  EXPECT_TRUE(r.looped);
  // Stopped at the first revisited state: 0 → 1 → 0, not 4n+16 hops.
  EXPECT_EQ(r.path, (NodePath{0, 1, 0}));
}

TEST(Resilience, LoopFlagStaysClearOnDeliveryAndDrops) {
  const Graph g = path_graph(3);
  EdgeMap<std::uint64_t> w(g.edge_count(), 1);
  const auto scheme =
      DestinationTableScheme::from_algebra(ShortestPath{}, g, w);
  std::vector<bool> down(g.edge_count(), false);
  EXPECT_FALSE(simulate_route_with_failures(scheme, g, down, 0, 2).looped);
  down[1] = true;
  const RouteResult dropped =
      simulate_route_with_failures(scheme, g, down, 0, 2);
  EXPECT_FALSE(dropped.delivered);
  EXPECT_FALSE(dropped.looped);  // a drop is not a loop
}

// Header types without operator== (none in-tree today, but the simulator
// supports them) must still terminate via the hop budget. Pin the
// compile-time dispatch with a header that cannot be compared.
struct OpaqueHeader {
  NodeId target = kInvalidNode;
  bool operator==(const OpaqueHeader&) const = delete;
};
struct OpaquePingPongScheme {
  using Header = OpaqueHeader;
  Header make_header(NodeId target) const { return {target}; }
  Decision forward(NodeId, Header&) const { return Decision::via(0); }
  std::size_t local_memory_bits(NodeId) const { return 0; }
  std::size_t label_bits(NodeId) const { return 0; }
};

TEST(Resilience, NonComparableHeadersFallBackToHopBudget) {
  const Graph g = path_graph(2);
  const std::vector<bool> down(g.edge_count(), false);
  const RouteResult r =
      simulate_route_with_failures(OpaquePingPongScheme{}, g, down, 0, 1,
                                   /*max_hops=*/10);
  EXPECT_FALSE(r.delivered);
  EXPECT_FALSE(r.looped);          // cannot be proven without equality
  EXPECT_EQ(r.path.size(), 12u);   // burned the whole budget instead
}

TEST(AsIo, RoundTripPreservesRelationships) {
  Rng rng(3);
  AsTopologyOptions opt;
  opt.nodes = 24;
  opt.tier1 = 3;
  opt.extra_peer_prob = 0.05;
  const AsTopology topo = generate_as_topology(opt, rng);

  std::stringstream buffer;
  write_as_rel(topo, buffer);
  const AsRelLoadResult loaded = read_as_rel(buffer);
  ASSERT_EQ(loaded.topology.graph.node_count(), topo.graph.node_count());
  ASSERT_EQ(loaded.topology.graph.arc_count(), topo.graph.arc_count());
  // Identity mapping here (ids are already dense), so relations must
  // match arc for arc after lookup.
  for (ArcId a = 0; a < topo.graph.arc_count(); ++a) {
    const auto& arc = topo.graph.arc(a);
    const ArcId b = loaded.topology.graph.find_arc(arc.from, arc.to);
    ASSERT_NE(b, kInvalidArc);
    EXPECT_EQ(loaded.topology.relation[b], topo.relation[a])
        << arc.from << "->" << arc.to;
  }
}

TEST(AsIo, ParsesCaidaStyleInput) {
  std::stringstream in(
      "# inferred relationships\n"
      "100|200|-1\n"   // 100 provides transit to 200
      "200|300|-1\n"
      "100|400|0\n");  // 100 and 400 peer
  const AsRelLoadResult loaded = read_as_rel(in);
  EXPECT_EQ(loaded.topology.graph.node_count(), 4u);
  const NodeId as100 = loaded.id_of_asn.at(100);
  const NodeId as200 = loaded.id_of_asn.at(200);
  const NodeId as400 = loaded.id_of_asn.at(400);
  // 200's out-arc to 100 is "to my provider".
  const ArcId up = loaded.topology.graph.find_arc(as200, as100);
  ASSERT_NE(up, kInvalidArc);
  EXPECT_EQ(loaded.topology.relation[up], Relationship::kProvider);
  const ArcId peer = loaded.topology.graph.find_arc(as100, as400);
  ASSERT_NE(peer, kInvalidArc);
  EXPECT_EQ(loaded.topology.relation[peer], Relationship::kPeer);
  // Exactly one root (AS 100 has no provider).
  EXPECT_EQ(loaded.topology.roots().size(), 2u);  // 100 and 400
}

TEST(AsIo, RejectsMalformedLines) {
  std::stringstream bad1("1|2\n");
  EXPECT_THROW(read_as_rel(bad1), std::runtime_error);
  std::stringstream bad2("1|2|7\n");
  EXPECT_THROW(read_as_rel(bad2), std::runtime_error);
  std::stringstream bad3("a|2|-1\n");
  EXPECT_THROW(read_as_rel(bad3), std::runtime_error);
}

}  // namespace
}  // namespace cpr
