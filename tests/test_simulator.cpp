// The hop-by-hop simulator itself: loop guard, invalid ports, header
// rewriting, footprint aggregation.
#include "scheme/scheme.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

namespace cpr {
namespace {

// A deliberately broken scheme that always forwards on port 0: on a ring
// it loops forever (caught by the guard); on a path it bounces.
struct Port0Scheme {
  using Header = NodeId;
  Header make_header(NodeId t) const { return t; }
  Decision forward(NodeId u, Header& h) const {
    if (u == h) return Decision::delivered();
    return Decision::via(0);
  }
  std::size_t local_memory_bits(NodeId) const { return 1; }
  std::size_t label_bits(NodeId) const { return 1; }
};
static_assert(CompactRoutingScheme<Port0Scheme>);

TEST(Simulator, LoopGuardTrips) {
  const Graph g = ring(6);
  const Port0Scheme s;
  const RouteResult r = simulate_route(s, g, 0, 3, /*max_hops=*/20);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.hops(), 21u);  // guard allows max_hops+1 forwards then stops
  EXPECT_FALSE(r.looped);    // without detect_loops, nothing is proven
}

TEST(Simulator, DetectLoopsProvesTheLoopExactly) {
  // Same broken scheme, but with exact (node, header) tracking on: the
  // walk ping-pongs 0 → 1 → 0 and the first revisited state proves the
  // loop, instead of burning the hop budget and reporting it
  // indistinguishably from a long path.
  const Graph g = ring(6);
  const Port0Scheme s;
  const RouteResult r = simulate_route(s, g, 0, 3, /*max_hops=*/20,
                                       /*detect_loops=*/true);
  EXPECT_FALSE(r.delivered);
  EXPECT_TRUE(r.looped);
  EXPECT_EQ(r.path, (NodePath{0, 1, 0}));
}

TEST(Simulator, DetectLoopsStaysClearOnDelivery) {
  // A correct walk under detect_loops must deliver with the flag clear —
  // the tracking may not misfire on states that merely look similar.
  const Graph g = ring(6);
  const Port0Scheme s;
  const RouteResult r = simulate_route(s, g, 3, 3, /*max_hops=*/0,
                                       /*detect_loops=*/true);
  EXPECT_TRUE(r.delivered);
  EXPECT_FALSE(r.looped);
}

TEST(Simulator, DefaultGuardScalesWithGraph) {
  const Graph g = ring(8);
  const Port0Scheme s;
  const RouteResult r = simulate_route(s, g, 0, 4);
  EXPECT_FALSE(r.delivered);
  EXPECT_GT(r.hops(), 8u);
}

struct InvalidPortScheme {
  using Header = NodeId;
  Header make_header(NodeId t) const { return t; }
  Decision forward(NodeId, Header&) const { return Decision::via(99); }
  std::size_t local_memory_bits(NodeId) const { return 0; }
  std::size_t label_bits(NodeId) const { return 0; }
};
static_assert(CompactRoutingScheme<InvalidPortScheme>);

TEST(Simulator, OutOfRangePortAborts) {
  const Graph g = ring(4);
  const InvalidPortScheme s;
  const RouteResult r = simulate_route(s, g, 0, 2);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.path, (NodePath{0}));
}

// A scheme that counts down in the header — exercises header rewriting.
struct CountdownScheme {
  using Header = std::pair<NodeId, int>;
  Header make_header(NodeId t) const { return {t, 3}; }
  Decision forward(NodeId u, Header& h) const {
    if (u == h.first) return Decision::delivered();
    if (h.second-- <= 0) return Decision::via(kInvalidPort);
    return Decision::via(1);  // "right" around the ring
  }
  std::size_t local_memory_bits(NodeId) const { return 0; }
  std::size_t label_bits(NodeId) const { return 0; }
};
static_assert(CompactRoutingScheme<CountdownScheme>);

TEST(Simulator, HeaderStatePersistsAcrossHops) {
  const Graph g = ring(8);
  const CountdownScheme s;
  // Target 3 hops away in port-1 direction is reached before the counter
  // dies; farther targets are not.
  NodeId three_away = g.neighbor(0, 1);
  three_away = g.neighbor(three_away, 1);
  three_away = g.neighbor(three_away, 1);
  EXPECT_TRUE(simulate_route(s, g, 0, three_away).delivered);
}

TEST(Simulator, SourceEqualsTargetDeliversInPlace) {
  const Graph g = ring(4);
  const Port0Scheme s;
  const RouteResult r = simulate_route(s, g, 2, 2);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.hops(), 0u);
}

struct VaryingBitsScheme {
  using Header = NodeId;
  Header make_header(NodeId t) const { return t; }
  Decision forward(NodeId u, Header& h) const {
    return u == h ? Decision::delivered() : Decision::via(kInvalidPort);
  }
  std::size_t local_memory_bits(NodeId v) const { return 10 * (v + 1); }
  std::size_t label_bits(NodeId v) const { return v + 1; }
};
static_assert(CompactRoutingScheme<VaryingBitsScheme>);

TEST(Simulator, FootprintAggregatesMaxAndMean) {
  const VaryingBitsScheme s;
  const auto fp = measure_footprint(s, 4);
  EXPECT_EQ(fp.max_node_bits, 40u);
  EXPECT_DOUBLE_EQ(fp.mean_node_bits, 25.0);
  EXPECT_EQ(fp.max_label_bits, 4u);
  EXPECT_DOUBLE_EQ(fp.mean_label_bits, 2.5);
}

}  // namespace
}  // namespace cpr
