// Streamed-vs-materialized Cowen construction differential (ISSUE 9).
//
// CowenOptions::Construction::kMaterialized is the exhaustive oracle: it
// builds all n preferred-path trees and derives landmarks, clusters,
// tables and labels from Θ(n²) scans. The streaming default replaces
// those phases with batched landmark SSSPs plus truncated-ball Dijkstras
// and must produce a **bit-identical** scheme — same landmark set, same
// promotions, same cluster sizes, same flat tables, same encoded labels —
// at every thread count. This suite pins that equivalence over a 50-seed
// corpus for the keyed/strict lane (ShortestPath), plus non-strict and
// generic-heap lanes (WidestPath, MostReliablePath), promotion-heavy
// options, disconnected graphs, the stats-only table-less mode, and the
// post-build churn path (apply_event lazily materializes and must then
// repair byte-identically). Runs under ASan and TSan in CI.
#include "algebra/primitives.hpp"
#include "graph/generators.hpp"
#include "scheme/cowen.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cpr {
namespace {

template <RoutingAlgebra A>
void expect_identical(const CowenScheme<A>& streamed,
                      const CowenScheme<A>& oracle, std::size_t n,
                      const char* what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(streamed.landmark_count(), oracle.landmark_count());
  EXPECT_EQ(streamed.initial_landmark_count(),
            oracle.initial_landmark_count());
  EXPECT_EQ(streamed.promoted_landmark_count(),
            oracle.promoted_landmark_count());
  EXPECT_EQ(streamed.strict_balls(), oracle.strict_balls());
  for (NodeId u = 0; u < n; ++u) {
    ASSERT_EQ(streamed.is_landmark(u), oracle.is_landmark(u)) << "u=" << u;
    ASSERT_EQ(streamed.landmark_of(u), oracle.landmark_of(u)) << "u=" << u;
    ASSERT_EQ(streamed.cluster_size(u), oracle.cluster_size(u)) << "u=" << u;
    ASSERT_EQ(streamed.port_at_landmark(u), oracle.port_at_landmark(u))
        << "u=" << u;
    ASSERT_EQ(streamed.table(u), oracle.table(u)) << "u=" << u;
    // Labels byte for byte, not just field-wise.
    const auto [sb, sbits] = streamed.encode_header(streamed.make_header(u));
    const auto [ob, obits] = oracle.encode_header(oracle.make_header(u));
    ASSERT_EQ(sbits, obits) << "u=" << u;
    ASSERT_EQ(sb, ob) << "u=" << u;
  }
}

// Builds the same instance three ways — streamed on 1 thread, streamed on
// 8 threads, materialized — from identical rng streams, and demands
// bit-identity.
template <RoutingAlgebra A>
void differential(const A& alg, const Graph& g,
                  const EdgeMap<typename A::Weight>& w, std::uint64_t seed,
                  CowenOptions base = {}) {
  const std::size_t n = g.node_count();
  ThreadPool pool1(1);
  ThreadPool pool8(8);

  CowenOptions streamed1 = base;
  streamed1.construction = CowenOptions::Construction::kStreaming;
  streamed1.pool = &pool1;
  Rng r1(seed);
  const auto s1 = CowenScheme<A>::build(alg, g, w, r1, streamed1);

  CowenOptions streamed8 = base;
  streamed8.construction = CowenOptions::Construction::kStreaming;
  streamed8.pool = &pool8;
  // Odd batch so multi-round promotion sweeps cross batch boundaries.
  streamed8.landmark_batch = 3;
  Rng r8(seed);
  const auto s8 = CowenScheme<A>::build(alg, g, w, r8, streamed8);

  CowenOptions materialized = base;
  materialized.construction = CowenOptions::Construction::kMaterialized;
  materialized.pool = &pool8;
  Rng rm(seed);
  const auto oracle = CowenScheme<A>::build(alg, g, w, rm, materialized);

  EXPECT_FALSE(s1.trees_materialized());
  EXPECT_TRUE(oracle.trees_materialized());
  expect_identical(s1, oracle, n, "streamed@1 vs materialized");
  expect_identical(s8, oracle, n, "streamed@8 vs materialized");
}

class StreamSeeds : public ::testing::TestWithParam<std::uint64_t> {};

// The keyed/strict fast lane over the full 50-seed corpus.
TEST_P(StreamSeeds, CowenStreamShortestPathBitIdentical) {
  const std::uint64_t seed = GetParam();
  auto inst = test::seeded_instance(ShortestPath{64}, seed, 48, 0.15);
  differential(ShortestPath{64}, inst.graph, inst.weights, seed * 7 + 1);
}

INSTANTIATE_TEST_SUITE_P(FiftySeeds, StreamSeeds,
                         ::testing::Range<std::uint64_t>(1, 51));

class StreamSeedsWide : public ::testing::TestWithParam<std::uint64_t> {};

// Non-strict balls (weakly monotone) — clusters are fat and landmarks can
// sit exactly on ball boundaries.
TEST_P(StreamSeedsWide, CowenStreamWidestPathBitIdentical) {
  const std::uint64_t seed = GetParam();
  auto inst = test::seeded_instance(WidestPath{8}, seed, 40, 0.18);
  differential(WidestPath{8}, inst.graph, inst.weights, seed * 11 + 3);
}

// Generic-heap lane (no 128-bit order key).
TEST_P(StreamSeedsWide, CowenStreamMostReliableBitIdentical) {
  const std::uint64_t seed = GetParam();
  auto inst = test::seeded_instance(MostReliablePath{}, seed, 36, 0.2);
  differential(MostReliablePath{}, inst.graph, inst.weights, seed * 13 + 5);
}

INSTANTIATE_TEST_SUITE_P(TenSeeds, StreamSeedsWide,
                         ::testing::Range<std::uint64_t>(1, 11));

class StreamPromotion : public ::testing::TestWithParam<std::uint64_t> {};

// Tiny initial sample + tight cap forces multiple promotion rounds, so
// the streaming fold sees landmarks arriving across several sweeps.
TEST_P(StreamPromotion, CowenStreamPromotionRoundsBitIdentical) {
  const std::uint64_t seed = GetParam();
  auto inst = test::seeded_instance(ShortestPath{64}, seed, 56, 0.12);
  CowenOptions opt;
  opt.initial_landmarks = 2;
  opt.cluster_cap = 8;
  differential(ShortestPath{64}, inst.graph, inst.weights, seed * 17 + 7,
               opt);
  const auto count_promotions = [&] {
    Rng r(seed * 17 + 7);
    CowenOptions o = opt;
    auto s = CowenScheme<ShortestPath>::build(ShortestPath{64}, inst.graph,
                                              inst.weights, r, o);
    return s.promoted_landmark_count();
  };
  EXPECT_GT(count_promotions(), 0u)
      << "options failed to force promotions — differential under-covers";
}

INSTANTIATE_TEST_SUITE_P(TenSeeds, StreamPromotion,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(CowenStream, DisconnectedGraphBitIdentical) {
  // Two components: truncated balls and landmark folds must agree on
  // unreachable landmark tie-breaks (smallest id) and absent radii.
  Rng grng(33);
  const Graph a = erdos_renyi_connected(20, 0.25, grng);
  const Graph b = erdos_renyi_connected(14, 0.3, grng);
  Graph g(a.node_count() + b.node_count());
  EdgeMap<std::uint64_t> w;
  Rng wrng(44);
  for (const auto& e : a.edges()) {
    g.add_edge(e.u, e.v);
    w.push_back(wrng.uniform(1, 30));
  }
  const NodeId off = static_cast<NodeId>(a.node_count());
  for (const auto& e : b.edges()) {
    g.add_edge(off + e.u, off + e.v);
    w.push_back(wrng.uniform(1, 30));
  }
  differential(ShortestPath{64}, g, w, 909);
}

TEST(CowenStream, TreeAccessorThrowsUntilMaterialized) {
  auto inst = test::seeded_instance(ShortestPath{64}, 5, 24, 0.25);
  auto s = CowenScheme<ShortestPath>::build(ShortestPath{64}, inst.graph,
                                            inst.weights, inst.rng);
  EXPECT_FALSE(s.trees_materialized());
  EXPECT_THROW((void)s.tree(0), std::logic_error);
  s.rebuild_from(inst.weights);
  EXPECT_TRUE(s.trees_materialized());
  EXPECT_NO_THROW((void)s.tree(0));
}

TEST(CowenStream, ApplyEventAfterStreamedBuildMatchesOracle) {
  const ShortestPath alg{64};
  auto inst = test::seeded_instance(alg, 21, 40, 0.18);
  const Graph& g = inst.graph;
  const std::size_t n = g.node_count();

  ThreadPool pool(4);
  CowenOptions sopt;
  sopt.pool = &pool;
  sopt.construction = CowenOptions::Construction::kStreaming;
  Rng rs(777);
  auto streamed = CowenScheme<ShortestPath>::build(alg, g, inst.weights, rs,
                                                   sopt);
  CowenOptions mopt = sopt;
  mopt.construction = CowenOptions::Construction::kMaterialized;
  Rng rm(777);
  auto oracle = CowenScheme<ShortestPath>::build(alg, g, inst.weights, rm,
                                                 mopt);

  // A few weight moves on the same edge stream: the streamed scheme
  // materializes its trees lazily inside the first event, after which
  // every repair must stay byte-identical to the oracle's.
  EdgeMap<std::uint64_t> w = inst.weights;
  Rng erng(99);
  for (int event = 0; event < 6; ++event) {
    const EdgeId e = static_cast<EdgeId>(erng.index(g.edge_count()));
    const std::uint64_t old_w = w[e];
    const std::uint64_t new_w = erng.uniform(1, 60);
    w[e] = new_w;
    const auto rs_stats = streamed.apply_event(e, old_w, new_w, w);
    const auto ro_stats = oracle.apply_event(e, old_w, new_w, w);
    EXPECT_EQ(rs_stats.dirty_trees, ro_stats.dirty_trees);
    EXPECT_EQ(rs_stats.patched_targets, ro_stats.patched_targets);
    EXPECT_EQ(rs_stats.full_rebuild, ro_stats.full_rebuild);
    expect_identical(streamed, oracle, n, "post-event");
  }
  EXPECT_TRUE(streamed.trees_materialized());
  for (NodeId t = 0; t < n; ++t) {
    for (NodeId u = 0; u < n; ++u) {
      ASSERT_EQ(streamed.tree(t).parent[u], oracle.tree(t).parent[u]);
    }
  }
}

TEST(CowenStream, StatsOnlyModeSkipsTablesKeepsLabelsExact) {
  const ShortestPath alg{64};
  auto inst = test::seeded_instance(alg, 12, 44, 0.16);
  const std::size_t n = inst.graph.node_count();

  CowenOptions full;
  full.construction = CowenOptions::Construction::kStreaming;
  Rng rf(555);
  const auto with_tables =
      CowenScheme<ShortestPath>::build(alg, inst.graph, inst.weights, rf,
                                       full);

  CowenOptions stats = full;
  stats.materialize_tables = false;
  Rng rn(555);
  const auto stats_only =
      CowenScheme<ShortestPath>::build(alg, inst.graph, inst.weights, rn,
                                       stats);

  EXPECT_EQ(stats_only.landmark_count(), with_tables.landmark_count());
  EXPECT_EQ(stats_only.promoted_landmark_count(),
            with_tables.promoted_landmark_count());
  for (NodeId u = 0; u < n; ++u) {
    ASSERT_EQ(stats_only.landmark_of(u), with_tables.landmark_of(u));
    ASSERT_EQ(stats_only.cluster_size(u), with_tables.cluster_size(u));
    ASSERT_EQ(stats_only.port_at_landmark(u), with_tables.port_at_landmark(u));
    EXPECT_TRUE(stats_only.table(u).empty());
  }
}

}  // namespace
}  // namespace cpr
