// The valley-free solver against the generic path-vector engine, the
// topology generator, and the A1/A2 assumption checkers.
#include "bgp/as_topology.hpp"
#include "bgp/svfc.hpp"
#include "bgp/valley_free.hpp"
#include "routing/path.hpp"
#include "routing/path_vector.hpp"

#include <gtest/gtest.h>

namespace cpr {
namespace {

class VfSeeds : public ::testing::TestWithParam<std::uint64_t> {};

AsTopology random_topo(std::uint64_t seed, std::size_t n, std::size_t tier1,
                       double peers) {
  Rng rng(seed);
  AsTopologyOptions opt;
  opt.nodes = n;
  opt.tier1 = tier1;
  opt.max_providers = 2;
  opt.extra_peer_prob = peers;
  return generate_as_topology(opt, rng);
}

TEST_P(VfSeeds, AgreesWithPathVectorUnderB3) {
  const AsTopology topo = random_topo(GetParam(), 24, 3, 0.05);
  const B3LocalPref b3;
  const auto labels = topo.labels();
  for (NodeId t = 0; t < topo.graph.node_count(); t += 4) {
    const auto direct = valley_free_reachability(topo, t);
    const auto pv = path_vector(b3, topo.graph, labels, t);
    EXPECT_TRUE(pv.converged);
    for (NodeId s = 0; s < topo.graph.node_count(); ++s) {
      if (s == t) continue;
      const bool direct_reach =
          direct.klass[s] != ValleyFreeClass::kUnreachable;
      ASSERT_EQ(direct_reach, pv.reachable(s)) << "s=" << s << " t=" << t;
      if (!direct_reach) continue;
      // B3's preferred weight is the best reachability class.
      EXPECT_TRUE(order_equal(b3, direct.weight(s), *pv.weight[s]))
          << "s=" << s << " t=" << t << " direct=" << to_cstr(direct.weight(s))
          << " pv=" << to_cstr(*pv.weight[s]);
      // The realized path must be traversable with that exact weight.
      const auto p = direct.extract_path(s);
      ASSERT_FALSE(p.empty());
      const auto pw = weight_of_path(b3, topo.graph, labels, p);
      ASSERT_TRUE(pw.has_value());
      EXPECT_EQ(*pw, direct.weight(s));
    }
  }
}

TEST_P(VfSeeds, SingleRootTopologySatisfiesAssumptions) {
  const AsTopology topo = random_topo(GetParam() + 50, 20, 1, 0.0);
  EXPECT_TRUE(satisfies_a2_no_provider_loops(topo));
  EXPECT_TRUE(satisfies_a1_global_reachability(topo));
  EXPECT_EQ(topo.roots().size(), 1u);
}

TEST_P(VfSeeds, MultiRootMeshSatisfiesAssumptions) {
  const AsTopology topo = random_topo(GetParam() + 80, 24, 4, 0.0);
  EXPECT_TRUE(satisfies_a2_no_provider_loops(topo));
  EXPECT_TRUE(satisfies_a1_global_reachability(topo));
  EXPECT_EQ(topo.roots().size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, VfSeeds,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(ValleyFree, ClassesOnAKnownTopology) {
  //        0 (root)
  //       / \            (0 is provider of 1 and 2; 3 is 1's customer)
  //      1   2           1 -- 2 peer link
  //      |
  //      3
  Rng rng(0);
  AsTopology topo;
  topo.graph = Digraph(4);
  auto provider = [&](NodeId cust, NodeId prov) {
    topo.graph.add_arc_pair(cust, prov);
    topo.relation.push_back(Relationship::kProvider);
    topo.relation.push_back(Relationship::kCustomer);
  };
  auto peer = [&](NodeId a, NodeId b) {
    topo.graph.add_arc_pair(a, b);
    topo.relation.push_back(Relationship::kPeer);
    topo.relation.push_back(Relationship::kPeer);
  };
  provider(1, 0);
  provider(2, 0);
  provider(3, 1);
  peer(1, 2);

  const auto to3 = valley_free_reachability(topo, 3);
  EXPECT_EQ(to3.klass[1], ValleyFreeClass::kDown);   // 1 →c 3
  EXPECT_EQ(to3.klass[0], ValleyFreeClass::kDown);   // 0 →c 1 →c 3
  EXPECT_EQ(to3.klass[2], ValleyFreeClass::kPeer);   // 2 →r 1 →c 3
  EXPECT_EQ(to3.weight(2), BgpLabel::kPeer);

  const auto to2 = valley_free_reachability(topo, 2);
  EXPECT_EQ(to2.klass[0], ValleyFreeClass::kDown);
  EXPECT_EQ(to2.klass[1], ValleyFreeClass::kPeer);   // peer beats up-down
  EXPECT_EQ(to2.klass[3], ValleyFreeClass::kUp);     // 3 →p 1 →r 2
  EXPECT_EQ(to2.extract_path(3), (NodePath{3, 1, 2}));
}

TEST(ValleyFree, PathsAreValleyFreeOnRandomTopologies) {
  const AsTopology topo = random_topo(7, 30, 2, 0.1);
  const B2ValleyFree b2;
  const auto labels = topo.labels();
  for (NodeId t = 0; t < topo.graph.node_count(); ++t) {
    const auto r = valley_free_reachability(topo, t);
    for (NodeId s = 0; s < topo.graph.node_count(); ++s) {
      if (s == t || r.klass[s] == ValleyFreeClass::kUnreachable) continue;
      const auto p = r.extract_path(s);
      const auto pw = weight_of_path(b2, topo.graph, labels, p);
      ASSERT_TRUE(pw.has_value()) << "s=" << s << " t=" << t;
      EXPECT_FALSE(b2.is_phi(*pw)) << "s=" << s << " t=" << t;
    }
  }
}

TEST_P(VfSeeds, ReachabilityMatchesPathVectorUnderB2) {
  // B2 has no preference among traversable paths, so only reachability
  // is comparable between the solvers — and it must coincide.
  const AsTopology topo = random_topo(GetParam() + 200, 20, 2, 0.1);
  const B2ValleyFree b2;
  const auto labels = topo.labels();
  for (NodeId t = 0; t < topo.graph.node_count(); t += 5) {
    const auto direct = valley_free_reachability(topo, t);
    const auto pv = path_vector(b2, topo.graph, labels, t);
    EXPECT_TRUE(pv.converged);
    for (NodeId s = 0; s < topo.graph.node_count(); ++s) {
      if (s == t) continue;
      EXPECT_EQ(direct.klass[s] != ValleyFreeClass::kUnreachable,
                pv.reachable(s))
          << "s=" << s << " t=" << t;
    }
  }
}

TEST_P(VfSeeds, B4ComputesClassThenHopCount) {
  // B4 = B3 × S with unit costs: the true optimum is (best class, fewest
  // hops among *all* valley-free paths of that class), which the generic
  // path-vector engine computes. The specialized solver agrees on the
  // class but only realizes *a* path of that class built from per-node
  // preferred continuations — a node on the way may prefer a longer
  // customer route over a shorter provider one, so its hops can exceed
  // the B4 optimum (never undercut it).
  const AsTopology topo = random_topo(GetParam() + 300, 18, 2, 0.05);
  const B4LocalPrefShortest b4;
  const auto labels = topo.labels();
  ArcMap<B4LocalPrefShortest::Weight> w(labels.size());
  for (std::size_t a = 0; a < labels.size(); ++a) w[a] = {labels[a], 1};

  for (NodeId t = 0; t < topo.graph.node_count(); t += 3) {
    const auto direct = valley_free_reachability(topo, t);
    const auto pv = path_vector(b4, topo.graph, w, t);
    EXPECT_TRUE(pv.converged);
    for (NodeId s = 0; s < topo.graph.node_count(); ++s) {
      if (s == t) continue;
      const bool reach = direct.klass[s] != ValleyFreeClass::kUnreachable;
      ASSERT_EQ(reach, pv.reachable(s)) << "s=" << s << " t=" << t;
      if (!reach) continue;
      EXPECT_EQ(pv.weight[s]->first, direct.weight(s))
          << "class mismatch s=" << s << " t=" << t;
      EXPECT_LE(pv.weight[s]->second, direct.hops[s])
          << "optimum above realized s=" << s << " t=" << t;
      // The B4-optimal route is itself a traversable valley-free path.
      const auto pw = weight_of_path(b4, topo.graph, w, pv.path[s]);
      ASSERT_TRUE(pw.has_value());
      EXPECT_FALSE(b4.is_phi(*pw));
      EXPECT_EQ(pw->second, pv.path[s].size() - 1);
    }
  }
}

TEST(AsTopology, A2ViolationIsDetected) {
  Rng rng(5);
  AsTopologyOptions opt;
  opt.nodes = 12;
  opt.violate_a2 = true;
  const AsTopology topo = generate_as_topology(opt, rng);
  EXPECT_FALSE(satisfies_a2_no_provider_loops(topo));
}

TEST(AsTopology, TwoRootsWithoutPeeringViolateA1) {
  // Two separate provider trees with no peer mesh: roots cannot reach
  // each other (any path would be c* then p*, a valley).
  AsTopology topo;
  topo.graph = Digraph(4);
  auto provider = [&](NodeId cust, NodeId prov) {
    topo.graph.add_arc_pair(cust, prov);
    topo.relation.push_back(Relationship::kProvider);
    topo.relation.push_back(Relationship::kCustomer);
  };
  provider(2, 0);
  provider(3, 1);
  topo.graph.add_arc_pair(2, 3);  // plain peer would fix it; use provider
  topo.relation.push_back(Relationship::kProvider);
  topo.relation.push_back(Relationship::kCustomer);
  EXPECT_FALSE(satisfies_a1_global_reachability(topo));
}

TEST(AsTopology, LabelsMirrorRelations) {
  const AsTopology topo = random_topo(9, 10, 1, 0.2);
  const auto labels = topo.labels();
  ASSERT_EQ(labels.size(), topo.graph.arc_count());
  for (ArcId a = 0; a < topo.graph.arc_count(); ++a) {
    const ArcId rev = topo.graph.reverse(a);
    if (labels[a] == BgpLabel::kProvider) {
      EXPECT_EQ(labels[rev], BgpLabel::kCustomer);
    } else if (labels[a] == BgpLabel::kPeer) {
      EXPECT_EQ(labels[rev], BgpLabel::kPeer);
    }
  }
}

TEST(Svfc, DecompositionGroupsByPreferredRoot) {
  const AsTopology topo = random_topo(11, 30, 3, 0.0);
  const SvfcDecomposition d = decompose_svfc(topo);
  EXPECT_EQ(d.component_count(), 3u);
  EXPECT_TRUE(roots_fully_peered(topo, d));
  for (NodeId v = 0; v < topo.graph.node_count(); ++v) {
    // Following preferred providers from v must land on v's component root.
    NodeId x = v;
    while (d.preferred_provider[x] != kInvalidNode) {
      x = d.preferred_provider[x];
    }
    EXPECT_EQ(x, d.component_root[d.component[v]]);
  }
}

TEST(Svfc, ThrowsOnProviderCycle) {
  Rng rng(6);
  AsTopologyOptions opt;
  opt.nodes = 8;
  opt.violate_a2 = true;
  const AsTopology topo = generate_as_topology(opt, rng);
  EXPECT_THROW(decompose_svfc(topo), std::runtime_error);
}

}  // namespace
}  // namespace cpr
