// Fault-injection harness for the cross-process live patch channel
// (fib/patch_channel.hpp) — real child processes, real SIGKILLs.
//
// The tentpole differential forks a writer process that streams the
// 50-seed churn corpus through a MAP_SHARED "CPRPCH01" segment while two
// reader processes (one polling PatchChannelReader, one StoreWatcher)
// run forward_batch against their own mappings. Every completed reader
// batch must be bit-identical to a fresh compile of some generation the
// reader could legally have observed — the legality window is the
// segment's seqlock word sampled before/after the batch, the same
// contract test_serving_seqlock.cpp proves in-process — and the store
// must end the run with exactly ONE published generation: every row the
// readers saw move arrived through the live segment, zero republishes.
//
// The crash matrix SIGKILLs the writer child at each protocol step
// (mid-patch with the seqlock window open, post-patch before the
// checksum fold, mid-publish between arena rename and CURRENT) and
// asserts the parent-visible state: readers never serve a torn row, a
// standby writer's flock acquire succeeds over the corpse, and
// recover() either adopts the sealed segment in place or republishes.
//
// Fork tests are skipped under TSan (fork + sanitizer runtimes do not
// mix); the in-process concurrency leg at the bottom points readers and
// patch_channel_snapshot at the WRITER's own mapping — same virtual
// addresses, so TSan can see both sides of every race — and runs under
// every preset.
#include "algebra/primitives.hpp"
#include "fib/arena_store.hpp"
#include "fib/compile.hpp"
#include "fib/fib_delta.hpp"
#include "fib/forward_engine.hpp"
#include "fib/patch_channel.hpp"
#include "scheme/cowen.hpp"
#include "sim/churn.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace cpr {
namespace {

namespace fs = std::filesystem;
using test::all_pairs;
using test::batch_hash;

constexpr std::size_t kCorpusSeeds = 50;
constexpr std::size_t kN = 18;
constexpr double kP = 0.25;
constexpr std::size_t kEvents = 12;

// Fresh store directory per test, removed on scope exit.
struct StoreDir {
  fs::path path;
  explicit StoreDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("cpr_pch_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~StoreDir() { fs::remove_all(path); }
};

// A churn-compiled Cowen arena (slack baked in, so deltas patch in
// place); different seeds give structurally different arenas.
FlatFib make_fib(std::uint64_t seed) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, seed, kN, kP);
  auto scheme = CowenScheme<ShortestPath>::build(alg, inst.graph,
                                                 inst.weights, inst.rng);
  return compile_fib(scheme, inst.graph, fib_churn_maintain_options().compile);
}

// An owned, writable byte-copy — the "what should the segment serve
// after these deltas" oracle the differentials patch offline.
FlatFib writable_copy(const FlatFib& fib) {
  return FlatFib::from_blob(fib.blob());
}

// A two-slot delta any slacked Cowen arena accepts (and that changes
// serving: two landmark ports go dark).
FibDelta two_slot_delta() {
  FibDelta d;
  d.touched_nodes = 2;
  d.patches.push_back(
      fib_patch_u32(fib_section::kCowenLandmarkPort, 0, kInvalidPort));
  d.patches.push_back(
      fib_patch_u32(fib_section::kCowenLandmarkPort, 1, kInvalidPort));
  return d;
}

// Retry-tolerant serve hash: the arena may be a live segment a writer is
// patching, so ride out seqlock windows instead of throwing.
std::uint64_t serve_hash(const FlatFib& fib,
                         const std::vector<std::pair<NodeId, NodeId>>& queries,
                         ThreadPool* pool = nullptr) {
  FibBatchOptions opt;
  opt.pool = pool;
  opt.seqlock_max_retries = 1u << 20;
  return batch_hash(forward_batch(fib, queries, opt));
}

// Header of an on-disk segment file, read through a private copy of the
// bytes (the crash matrix inspects segments whose writer is dead).
bool read_segment_header_file(const fs::path& path, PatchSegmentHeader* h) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  return patch_channel_read_header(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size(), h);
}

template <typename T>
T read_le(std::span<const std::uint8_t> bytes, std::size_t offset) {
  T v{};
  std::memcpy(&v, bytes.data() + offset, sizeof(T));
  return v;
}

// ---------------------------------------------------------------------------
// Wire format: the "CPRPCH01" segment header, pinned byte for byte.

#ifndef CPR_GOLDEN_DIR
#error "CPR_GOLDEN_DIR must point at tests/golden"
#endif

const std::string kGoldenPath =
    std::string(CPR_GOLDEN_DIR) + "/patch_channel_v1.hex";

// The golden arena of test_blob_layout.cpp: a 3-node path 0-1-2 with
// fully hand-written Cowen sections — every byte of the embedded blob is
// determined by the builder and the format, no RNG — so the golden file
// pins exactly the segment serialization layer.
FlatFib build_golden_fib() {
  Graph g(3);
  g.add_edge(0, 1);  // edge 0: port 0 at both ends
  g.add_edge(1, 2);  // edge 1: port 1 at node 1, port 0 at node 2
  FibBuilder b(FibKind::kCowen, 3);
  b.add_topology(g);
  const std::vector<std::uint32_t> row_off = {0, 2, 4, 6};  // capacity CSR
  const std::vector<std::uint32_t> row_len = {1, 2, 1};
  const std::vector<std::uint64_t> rows = {
      fib_pack_entry(1, 0), 0,                     // node 0 (+slack)
      fib_pack_entry(0, 0), fib_pack_entry(2, 1),  // node 1
      fib_pack_entry(1, 0), 0,                     // node 2 (+slack)
  };
  const std::vector<std::uint32_t> landmark = {1, 1, 1};
  const std::vector<std::uint32_t> landmark_port = {0, kInvalidPort, 0};
  b.add_array(fib_section::kCowenRowOff, row_off);
  b.add_array(fib_section::kCowenRowLen, row_len);
  b.add_array(fib_section::kCowenRows, rows);
  b.add_array(fib_section::kCowenLandmark, landmark);
  b.add_array(fib_section::kCowenLandmarkPort, landmark_port);
  return b.finish();
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2 + bytes.size() / 32 + 1);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i > 0 && i % 32 == 0) out.push_back('\n');
    out.push_back(digits[bytes[i] >> 4]);
    out.push_back(digits[bytes[i] & 0xf]);
  }
  out.push_back('\n');
  return out;
}

std::vector<std::uint8_t> from_hex(const std::string& text) {
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::vector<std::uint8_t> bytes;
  int hi = -1;
  for (const char c : text) {
    const int v = nibble(c);
    if (v < 0) continue;  // whitespace/newlines
    if (hi < 0) {
      hi = v;
    } else {
      bytes.push_back(static_cast<std::uint8_t>((hi << 4) | v));
      hi = -1;
    }
  }
  return bytes;
}

TEST(PatchSegmentWire, GoldenFileMatchesByteForByte) {
  const FlatFib fib = build_golden_fib();
  const auto blob = fib.blob();
  const auto segment = patch_channel_segment_bytes(blob, 1, 0);

  if (std::getenv("CPR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
    out << to_hex(segment);
    GTEST_SKIP() << "golden file regenerated at " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in) << "missing golden file " << kGoldenPath
                  << " (generate with CPR_UPDATE_GOLDEN=1)";
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const std::vector<std::uint8_t> golden = from_hex(text);

  ASSERT_EQ(segment.size(), golden.size())
      << "CPRPCH01 segment size changed — this is a wire-format break; "
         "bump the version and regenerate the golden file deliberately";
  for (std::size_t i = 0; i < golden.size(); ++i) {
    ASSERT_EQ(segment[i], golden[i])
        << "CPRPCH01 byte " << i << " changed — wire-format break; bump "
           "the version and regenerate the golden file deliberately";
  }
}

// The layout promises, stated as offsets — the documentation of record
// for anyone parsing arena-<gen>.pch outside this codebase.
TEST(PatchSegmentWire, HeaderOffsetsArePinned) {
  const FlatFib fib = build_golden_fib();
  const auto blob = fib.blob();
  const auto segment = patch_channel_segment_bytes(blob, 7, 0);
  const std::span<const std::uint8_t> bytes(segment);

  ASSERT_EQ(segment.size(), kPatchSegmentHeaderBytes + blob.size());
  EXPECT_EQ(std::memcmp(segment.data(), "CPRPCH01", 8), 0);
  EXPECT_EQ(read_le<std::uint64_t>(bytes, patch_segment::kArenaGeneration),
            7u);
  EXPECT_EQ(read_le<std::uint64_t>(bytes, patch_segment::kSeq), 0u)
      << "a fresh segment must publish with the patch window closed";
  EXPECT_EQ(read_le<std::uint64_t>(bytes, patch_segment::kPatchesApplied), 0u);
  EXPECT_EQ(read_le<std::uint64_t>(bytes, patch_segment::kWriterFence), 0u)
      << "fence 0 = unowned";
  EXPECT_EQ(read_le<std::uint64_t>(bytes, patch_segment::kPayloadBytes),
            blob.size());
  ASSERT_EQ(blob.size() % 8, 0u);
  EXPECT_EQ(read_le<std::uint64_t>(bytes, patch_segment::kChecksum),
            patch_channel_checksum(
                reinterpret_cast<const std::uint64_t*>(blob.data()),
                blob.size() / 8));
  EXPECT_EQ(read_le<std::uint64_t>(bytes, patch_segment::kReserved), 0u);
  EXPECT_EQ(std::memcmp(segment.data() + kPatchSegmentHeaderBytes, blob.data(),
                        blob.size()),
            0)
      << "the embedded blob must be byte-identical to the arena";

  PatchSegmentHeader h;
  ASSERT_TRUE(patch_channel_read_header(segment.data(), segment.size(), &h));
  EXPECT_EQ(h.arena_generation, 7u);
  EXPECT_EQ(h.payload_bytes, blob.size());
}

TEST(PatchSegmentWire, EncoderRejectsUnalignedBlobs) {
  const std::vector<std::uint8_t> garbage(7, 0xab);
  EXPECT_THROW(patch_channel_segment_bytes({garbage.data(), garbage.size()},
                                           1, 0),
               std::runtime_error);
}

TEST(PatchSegmentWire, ChecksumIsPositionWeighted) {
  const std::uint64_t words[3] = {1, 2, 3};    // 1*1 + 2*3 + 3*5 = 22
  EXPECT_EQ(patch_channel_checksum(words, 3), 22u);
  const std::uint64_t swapped[3] = {2, 1, 3};  // 2*1 + 1*3 + 3*5 = 20
  EXPECT_NE(patch_channel_checksum(swapped, 3),
            patch_channel_checksum(words, 3))
      << "a plain sum would miss word transpositions";
}

// ---------------------------------------------------------------------------
// Writer fencing: flock(2) keeps two live writers out of one segment.

TEST(WriterFence, SecondLiveWriterIsRefusedUntilTheOwnerDies) {
  StoreDir dir("fence");
  const FlatFib fib0 = make_fib(3);
  const auto blob0 = fib0.blob();
  {
    auto owner = PatchChannelWriter::acquire(dir.path, 1);
    EXPECT_THROW(PatchChannelWriter::acquire(dir.path, 2),
                 std::runtime_error)
        << "two live writers must never both own one store";
    EXPECT_EQ(owner.publish(fib0), 1u);
    PatchSegmentHeader h;
    ASSERT_TRUE(patch_channel_read_header(owner.segment_for_test(),
                                          owner.segment_bytes_for_test(), &h));
    EXPECT_EQ(h.writer_fence, 1u) << "the owner stamps its token on attach";
  }
  // The owner released the lock (here by destruction; the kernel does
  // the same on SIGKILL — the fork matrix proves that path). A standby
  // now gets in and adopts the sealed head, restamping the fence.
  auto standby = PatchChannelWriter::acquire(dir.path, 3);
  EXPECT_EQ(standby.recover({blob0.data(), blob0.size()}), 1u);
  EXPECT_EQ(standby.last_takeover(), TakeoverOutcome::kAdoptedSealed);
  PatchSegmentHeader h;
  ASSERT_TRUE(patch_channel_read_header(standby.segment_for_test(),
                                        standby.segment_bytes_for_test(), &h));
  EXPECT_EQ(h.writer_fence, 3u);
}

// ---------------------------------------------------------------------------
// Live patches through the channel, single process: zero republishes.

TEST(PatchChannelLive, ReaderServesPatchedRowsWithZeroRepublishes) {
  StoreDir dir("live");
  const FlatFib fib0 = make_fib(7);
  const auto queries = all_pairs(fib0.node_count());
  const std::uint64_t h0 = batch_hash(forward_batch(fib0, queries));
  FlatFib patched = writable_copy(fib0);
  ASSERT_TRUE(patched.apply_delta(two_slot_delta()));
  const std::uint64_t h1 = batch_hash(forward_batch(patched, queries));
  ASSERT_NE(h0, h1) << "the probe delta must change serving";

  auto writer = PatchChannelWriter::acquire(dir.path, 42);
  EXPECT_EQ(writer.publish(fib0), 1u);
  EXPECT_EQ(writer.fence_token(), 42u);

  PatchChannelReader reader(dir.path);
  const auto arena = reader.current();
  ASSERT_NE(arena, nullptr);
  EXPECT_TRUE(arena->via_channel());
  EXPECT_EQ(arena->arena_generation(), 1u);
  EXPECT_EQ(arena->seq(), 0u);
  EXPECT_EQ(arena->patches_applied(), 0u);
  EXPECT_EQ(arena->byte_size(),
            kPatchSegmentHeaderBytes + fib0.blob().size());
  EXPECT_EQ(serve_hash(arena->fib(), queries), h0);

  // The writer patches; the reader's EXISTING mapping serves the new
  // rows — same generation, same mmap, no publish anywhere.
  ASSERT_TRUE(writer.apply(two_slot_delta()));
  const auto arena2 = reader.current();
  EXPECT_EQ(arena2.get(), arena.get())
      << "a live patch must not force a re-adoption";
  EXPECT_EQ(arena2->arena_generation(), 1u);
  EXPECT_EQ(arena2->seq(), 2u);
  EXPECT_EQ(arena2->patches_applied(), 1u);
  EXPECT_EQ(serve_hash(arena2->fib(), queries), h1)
      << "the patched row must be visible across the mapping";

  // Zero-republish proof: the store still holds exactly one generation.
  ArenaStore probe(dir.path);
  EXPECT_EQ(probe.generations(), (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(probe.current_generation(), 1u);
}

TEST(PatchChannelLive, ReaderFallsBackToPlainStores) {
  StoreDir dir("plain");
  const FlatFib fib0 = make_fib(3);
  const auto queries = all_pairs(fib0.node_count());
  const std::uint64_t h0 = batch_hash(forward_batch(fib0, queries));

  // A PR-6 store: no patch channel, no segment files.
  ArenaStore writer(dir.path);
  writer.publish(fib0);

  PatchChannelReader reader(dir.path);
  const auto arena = reader.current();
  ASSERT_NE(arena, nullptr);
  EXPECT_FALSE(arena->via_channel());
  EXPECT_EQ(arena->arena_generation(), 1u);
  EXPECT_EQ(arena->seq(), 0u);
  EXPECT_EQ(arena->patches_applied(), 0u);
  EXPECT_EQ(serve_hash(arena->fib(), queries), h0);
}

TEST(PatchChannelLive, WatcherAdoptsPatchesInPlaceAndCutsOverOnPublish) {
  StoreDir dir("watcher");
  const FlatFib fib0 = make_fib(7);
  const FlatFib next = make_fib(8);
  const auto queries = all_pairs(fib0.node_count());
  const std::uint64_t h0 = batch_hash(forward_batch(fib0, queries));
  FlatFib patched = writable_copy(fib0);
  ASSERT_TRUE(patched.apply_delta(two_slot_delta()));
  const std::uint64_t h1 = batch_hash(forward_batch(patched, queries));
  const std::uint64_t h2 = batch_hash(forward_batch(next, queries));

  auto writer = PatchChannelWriter::acquire(dir.path, 7);
  writer.publish(fib0);

  StoreWatcher watcher(dir.path);
  ASSERT_TRUE(watcher.wait_for_generation(1, std::chrono::seconds(10)));
  const auto snap = watcher.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->via_channel());
  EXPECT_EQ(watcher.cutovers(), 1u);
  EXPECT_EQ(serve_hash(snap->fib(), queries), h0);

  // A live patch needs NO cutover: the published snapshot's mapping
  // already serves the new rows.
  ASSERT_TRUE(writer.apply(two_slot_delta()));
  const auto snap2 = watcher.snapshot();
  EXPECT_EQ(snap2.get(), snap.get());
  EXPECT_EQ(snap2->patches_applied(), 1u);
  EXPECT_EQ(serve_hash(snap2->fib(), queries), h1);
  EXPECT_EQ(watcher.cutovers(), 1u);

  // A whole new generation DOES cut over, between batches.
  writer.publish(next);
  ASSERT_TRUE(watcher.wait_for_generation(2, std::chrono::seconds(10)));
  EXPECT_EQ(watcher.cutovers(), 2u);
  const auto snap3 = watcher.snapshot();
  ASSERT_NE(snap3, nullptr);
  EXPECT_EQ(snap3->arena_generation(), 2u);
  EXPECT_EQ(serve_hash(snap3->fib(), queries), h2);
}

// ---------------------------------------------------------------------------
// Takeover outcomes, in-process (these run under every sanitizer; the
// fork matrix below proves the same transitions with a genuinely dead
// writer).

TEST(PatchChannelTakeover, OddParityHeadIsRepublished) {
  StoreDir dir("tk_odd");
  const FlatFib fib0 = make_fib(7);
  const auto blob0 = fib0.blob();
  {
    auto w = PatchChannelWriter::acquire(dir.path, 1);
    w.publish(fib0);
    // Dies inside the seqlock window: seq left odd in the segment.
    ASSERT_TRUE(w.apply(two_slot_delta(), PatchStop::kMidPatch));
  }
  PatchSegmentHeader h;
  ArenaStore probe(dir.path);
  ASSERT_TRUE(read_segment_header_file(probe.segment_file(1), &h));
  ASSERT_EQ(h.seq % 2, 1u) << "crash hook must leave the window open";

  auto standby = PatchChannelWriter::acquire(dir.path, 2);
  EXPECT_EQ(standby.recover({blob0.data(), blob0.size()}), 2u);
  EXPECT_EQ(standby.last_takeover(), TakeoverOutcome::kRepublished)
      << "an open patch window must never be adopted";
  EXPECT_EQ(standby.patches_applied(), 0u);
}

TEST(PatchChannelTakeover, StaleChecksumHeadIsRepublished) {
  StoreDir dir("tk_sum");
  const FlatFib fib0 = make_fib(7);
  const auto blob0 = fib0.blob();
  {
    auto w = PatchChannelWriter::acquire(dir.path, 1);
    w.publish(fib0);
    // Dies after the window closed but before the checksum fold: seq is
    // even, the sum disagrees with the bytes forever.
    ASSERT_TRUE(w.apply(two_slot_delta(), PatchStop::kBeforeChecksum));
  }
  PatchSegmentHeader h;
  ArenaStore probe(dir.path);
  ASSERT_TRUE(read_segment_header_file(probe.segment_file(1), &h));
  ASSERT_EQ(h.seq % 2, 0u);

  auto standby = PatchChannelWriter::acquire(dir.path, 2);
  EXPECT_EQ(standby.recover({blob0.data(), blob0.size()}), 2u);
  EXPECT_EQ(standby.last_takeover(), TakeoverOutcome::kRepublished)
      << "bytes nothing vouches for must never be adopted";
}

TEST(PatchChannelTakeover, SealedHeadIsAdoptedInPlaceWithPatchesIntact) {
  StoreDir dir("tk_sealed");
  const FlatFib fib0 = make_fib(7);
  const auto blob0 = fib0.blob();
  const auto queries = all_pairs(fib0.node_count());
  FlatFib patched = writable_copy(fib0);
  ASSERT_TRUE(patched.apply_delta(two_slot_delta()));
  const std::uint64_t h1 = batch_hash(forward_batch(patched, queries));

  PatchChannelReader reader(dir.path);
  {
    auto w = PatchChannelWriter::acquire(dir.path, 1);
    w.publish(fib0);
    ASSERT_TRUE(w.apply(two_slot_delta()));  // fully sealed
    // A reader adopts the live segment while the first writer owns it...
    const auto arena = reader.current();
    ASSERT_NE(arena, nullptr);
    ASSERT_TRUE(arena->via_channel());
  }
  // ...the writer dies; the standby adopts the SAME segment in place:
  // no republish, the delivered patch survives the failover, and the
  // reader's mapping never went away.
  auto standby = PatchChannelWriter::acquire(dir.path, 2);
  EXPECT_EQ(standby.recover({blob0.data(), blob0.size()}), 1u);
  EXPECT_EQ(standby.last_takeover(), TakeoverOutcome::kAdoptedSealed);
  EXPECT_EQ(standby.patches_applied(), 1u)
      << "adoption must preserve already-delivered patches";
  EXPECT_EQ(serve_hash(standby.fib(), queries), h1);

  const auto arena = reader.current();
  ASSERT_NE(arena, nullptr);
  EXPECT_TRUE(arena->via_channel());
  EXPECT_EQ(arena->arena_generation(), 1u);
  EXPECT_EQ(serve_hash(arena->fib(), queries), h1);

  // The standby keeps patching where the dead writer stopped, and the
  // reader sees it live — failover is invisible to the serving path.
  ASSERT_TRUE(standby.apply(two_slot_delta()));
  EXPECT_EQ(arena->patches_applied(), 2u);
  EXPECT_EQ(serve_hash(reader.current()->fib(), queries), h1)
      << "re-darkening dark ports must be a serving no-op";
  ArenaStore probe(dir.path);
  EXPECT_EQ(probe.generations(), (std::vector<std::uint64_t>{1}));
}

// ---------------------------------------------------------------------------
// The fork-based crash matrix: SIGKILL the writer at every protocol
// step; the parent inspects what a genuinely dead process left behind.

#if !defined(__SANITIZE_THREAD__)

// Forks `child`, which must never return into gtest. The parent asserts
// the child died by the signal it raised (SIGKILL — nothing ran after).
template <typename Child>
void fork_and_expect_sigkill(Child child) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    child();
    ::_exit(97);  // unreachable: child() ends in raise(SIGKILL)
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "writer child exited instead of dying";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
}

TEST(PatchChannelCrashMatrix, WriterKilledMidPatchNeverTearsReaders) {
  StoreDir dir("kill_mid");
  const FlatFib fib0 = make_fib(7);
  const auto blob0 = fib0.blob();
  const auto queries = all_pairs(fib0.node_count());
  const std::uint64_t h0 = batch_hash(forward_batch(fib0, queries));
  FlatFib patched = writable_copy(fib0);
  ASSERT_TRUE(patched.apply_delta(two_slot_delta()));
  const std::uint64_t h1 = batch_hash(forward_batch(patched, queries));
  ASSERT_NE(h0, h1);

  fork_and_expect_sigkill([&] {
    auto writer = PatchChannelWriter::acquire(dir.path, 111);
    writer.publish(fib0);
    writer.apply(two_slot_delta(), PatchStop::kMidPatch);
    ::raise(SIGKILL);
  });

  // The corpse left the seqlock window open in the shared segment.
  ArenaStore probe(dir.path);
  PatchSegmentHeader h;
  ASSERT_TRUE(read_segment_header_file(probe.segment_file(1), &h));
  EXPECT_EQ(h.arena_generation, 1u);
  EXPECT_EQ(h.seq % 2, 1u);
  EXPECT_EQ(h.writer_fence, 111u);

  // A fresh reader refuses the torn segment (bounded snapshot retries,
  // then abandon) and serves the pristine arena file instead — never a
  // torn row, never the half-applied delta.
  PatchChannelReader reader(dir.path);
  auto arena = reader.current();
  ASSERT_NE(arena, nullptr);
  EXPECT_FALSE(arena->via_channel());
  EXPECT_EQ(arena->arena_generation(), 1u);
  EXPECT_EQ(batch_hash(forward_batch(arena->fib(), queries)), h0);

  // The kernel released the dead writer's flock: the standby gets in,
  // refuses the open window, and republishes the fallback.
  auto standby = PatchChannelWriter::acquire(dir.path, 222);
  EXPECT_EQ(standby.recover({blob0.data(), blob0.size()}), 2u);
  EXPECT_EQ(standby.last_takeover(), TakeoverOutcome::kRepublished);

  arena = reader.current();
  ASSERT_NE(arena, nullptr);
  EXPECT_TRUE(arena->via_channel());
  EXPECT_EQ(arena->arena_generation(), 2u);
  EXPECT_EQ(serve_hash(arena->fib(), queries), h0);

  // Failover complete: the standby patches and the reader sees it live.
  ASSERT_TRUE(standby.apply(two_slot_delta()));
  EXPECT_EQ(serve_hash(reader.current()->fib(), queries), h1);
}

TEST(PatchChannelCrashMatrix, WriterKilledBeforeChecksumFoldIsDetected) {
  StoreDir dir("kill_sum");
  const FlatFib fib0 = make_fib(7);
  const auto blob0 = fib0.blob();
  const auto queries = all_pairs(fib0.node_count());
  const std::uint64_t h0 = batch_hash(forward_batch(fib0, queries));

  fork_and_expect_sigkill([&] {
    auto writer = PatchChannelWriter::acquire(dir.path, 111);
    writer.publish(fib0);
    writer.apply(two_slot_delta(), PatchStop::kBeforeChecksum);
    ::raise(SIGKILL);
  });

  // Even parity, but the checksum never caught up with the patched
  // bytes: the one crash a seqlock alone cannot flag.
  ArenaStore probe(dir.path);
  PatchSegmentHeader h;
  ASSERT_TRUE(read_segment_header_file(probe.segment_file(1), &h));
  EXPECT_EQ(h.seq, 2u);
  EXPECT_EQ(h.patches_applied, 0u);

  // Readers must treat it as a dead writer, not a sealed segment.
  PatchChannelReader reader(dir.path);
  const auto arena = reader.current();
  ASSERT_NE(arena, nullptr);
  EXPECT_FALSE(arena->via_channel())
      << "a checksum-stale segment was adopted";
  EXPECT_EQ(batch_hash(forward_batch(arena->fib(), queries)), h0);

  auto standby = PatchChannelWriter::acquire(dir.path, 222);
  EXPECT_EQ(standby.recover({blob0.data(), blob0.size()}), 2u);
  EXPECT_EQ(standby.last_takeover(), TakeoverOutcome::kRepublished);
  EXPECT_EQ(serve_hash(reader.current()->fib(), queries), h0);
}

TEST(PatchChannelCrashMatrix, WriterKilledMidPublishKeepsSealedHead) {
  StoreDir dir("kill_pub");
  const FlatFib fib0 = make_fib(7);
  const FlatFib next = make_fib(8);
  const auto blob0 = fib0.blob();
  const auto next_blob = next.blob();
  const auto queries = all_pairs(fib0.node_count());
  FlatFib patched = writable_copy(fib0);
  ASSERT_TRUE(patched.apply_delta(two_slot_delta()));
  const std::uint64_t h1 = batch_hash(forward_batch(patched, queries));

  fork_and_expect_sigkill([&] {
    auto writer = PatchChannelWriter::acquire(dir.path, 111);
    writer.publish(fib0);
    if (!writer.apply(two_slot_delta())) ::_exit(96);
    // Dies mid-publish of generation 2: arena renamed into place, no
    // segment, CURRENT still naming generation 1.
    writer.store().publish_blob({next_blob.data(), next_blob.size()},
                                PublishStop::kBeforeCurrent);
    ::raise(SIGKILL);
  });

  ArenaStore probe(dir.path);
  EXPECT_EQ(probe.current_generation(), 1u);
  EXPECT_TRUE(fs::exists(probe.arena_file(2)));
  EXPECT_FALSE(fs::exists(probe.segment_file(2)));

  // The standby adopts the sealed generation-1 segment in place: the
  // patch delivered before the crash survives, nothing republishes.
  auto standby = PatchChannelWriter::acquire(dir.path, 222);
  EXPECT_EQ(standby.recover({blob0.data(), blob0.size()}), 1u);
  EXPECT_EQ(standby.last_takeover(), TakeoverOutcome::kAdoptedSealed);
  EXPECT_EQ(standby.patches_applied(), 1u);
  EXPECT_EQ(standby.generation_now(), 1u);

  PatchChannelReader reader(dir.path);
  const auto arena = reader.current();
  ASSERT_NE(arena, nullptr);
  EXPECT_TRUE(arena->via_channel());
  EXPECT_EQ(arena->arena_generation(), 1u);
  EXPECT_EQ(serve_hash(arena->fib(), queries), h1)
      << "the pre-crash patch must survive the failover";
}

// ---------------------------------------------------------------------------
// The tentpole: a forked writer streams the churn corpus through the
// shared segment; two forked readers legality-check every batch.

// Child exit codes, so a failing matrix names its failure mode.
constexpr int kChildOk = 0;
constexpr int kReaderIllegalBatch = 20;       // batch matched NO legal state
constexpr int kReaderWrongGeneration = 21;    // a republish happened
constexpr int kReaderNeverAdopted = 22;
constexpr int kReaderNeverSawFinal = 23;
constexpr int kReaderWrongFinalBytes = 24;
constexpr int kWriterApplyRefused = 30;
constexpr int kWriterHandshakeTimeout = 31;

bool wait_for_file(const fs::path& p,
                   std::chrono::steady_clock::time_point deadline) {
  while (!fs::exists(p)) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

void touch(const fs::path& p) {
  std::ofstream out(p);
  out << "x\n";
}

// Writer child: publish ONCE, then stream every delta through the live
// segment. Any republish would show up as generation 2 on disk — the
// parent and both readers assert there never is one.
int child_writer_main(const fs::path& dir, const FlatFib& fib0,
                      const std::vector<FibDelta>& deltas) {
  auto writer = PatchChannelWriter::acquire(
      dir, static_cast<std::uint64_t>(::getpid()));
  writer.publish(fib0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  // Both readers must observe the pre-patch state before churn starts.
  if (!wait_for_file(dir / "READY.polling", deadline) ||
      !wait_for_file(dir / "READY.watcher", deadline)) {
    return kWriterHandshakeTimeout;
  }
  for (const FibDelta& d : deltas) {
    if (!writer.apply(d)) return kWriterApplyRefused;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  touch(dir / "DONE");
  return kChildOk;
}

// The shared reader loop: `take` yields the current arena snapshot
// (polling reader or store watcher). Every batch is bracketed by the
// segment's seqlock word: lo = seq/2 before (completed patch windows),
// hi = (seq+1)/2 after (a window the batch may have overlapped), and the
// batch hash must equal expected[j] for some j in [lo, hi]. File-backed
// fallbacks read seq() == 0 and must therefore serve expected[0] — the
// pristine publish — exactly.
template <typename Take>
int reader_loop(const fs::path& dir, const std::vector<std::uint64_t>& expected,
                const std::vector<std::pair<NodeId, NodeId>>& queries,
                const char* ready_name, Take take) {
  const std::size_t patches_expected = expected.size() - 1;
  ThreadPool pool(2);
  FibBatchOptions opt;
  opt.pool = &pool;
  opt.seqlock_max_retries = 1u << 20;
  bool ready = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const std::shared_ptr<const ChannelArena> arena = take();
    if (arena == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (!ready) {
      touch(dir / ready_name);
      ready = true;
    }
    if (arena->arena_generation() != 1) return kReaderWrongGeneration;
    const std::uint64_t lo = arena->seq() >> 1;
    const FibBatchOutput out = forward_batch(arena->fib(), queries, opt);
    const std::uint64_t hi = (arena->seq() + 1) >> 1;
    if (!test::hash_in_window(expected, batch_hash(out), lo, hi)) {
      return kReaderIllegalBatch;
    }
    if (fs::exists(dir / "DONE") && arena->via_channel() &&
        arena->patches_applied() == patches_expected) {
      // Quiesced: the final bytes must be exactly the last churn state.
      const std::uint64_t h =
          batch_hash(forward_batch(arena->fib(), queries, opt));
      return h == expected.back() ? kChildOk : kReaderWrongFinalBytes;
    }
  }
  return ready ? kReaderNeverSawFinal : kReaderNeverAdopted;
}

int child_polling_reader_main(
    const fs::path& dir, const std::vector<std::uint64_t>& expected,
    const std::vector<std::pair<NodeId, NodeId>>& queries) {
  PatchChannelReader reader(dir);
  return reader_loop(dir, expected, queries, "READY.polling",
                     [&] { return reader.current(); });
}

int child_watcher_reader_main(
    const fs::path& dir, const std::vector<std::uint64_t>& expected,
    const std::vector<std::pair<NodeId, NodeId>>& queries) {
  StoreWatcher watcher(dir);
  return reader_loop(dir, expected, queries, "READY.watcher",
                     [&] { return watcher.snapshot(); });
}

class PatchChannelSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PatchChannelSeeds, CrossProcessBatchesMatchSomeLegalGeneration) {
  const std::uint64_t seed = GetParam();
  StoreDir dir("fork_" + std::to_string(seed));
  const ShortestPath alg{16};

  // Build the scheme and its churn-compiled arena, then replay the churn
  // trace OFFLINE: expected[j] is the serve hash after deltas 0..j-1,
  // computed on a private copy AND anchored against a fresh compile of
  // the evolved scheme — "legal" really means bit-identical to a fresh
  // compile of that state. The prefix stops at the first delta the
  // in-place protocol would refuse (recompile, slack exhausted), which
  // is deterministic per seed, so writer and oracle agree exactly.
  auto inst = test::seeded_instance(alg, seed, kN, kP);
  const Graph& g = inst.graph;
  auto scheme =
      CowenScheme<ShortestPath>::build(alg, g, inst.weights, inst.rng);
  const FlatFib fib0 =
      compile_fib(scheme, g, fib_churn_maintain_options().compile);
  const auto queries = all_pairs(g.node_count());

  Rng trace_rng(seed ^ 0x5e41ull);
  const auto trace =
      random_churn_trace(alg, g, inst.weights, kEvents, trace_rng);

  FlatFib replay = writable_copy(fib0);
  std::vector<FibDelta> deltas;
  std::vector<std::uint64_t> expected;
  expected.push_back(batch_hash(forward_batch(replay, queries)));
  {
    ChurnEngine<ShortestPath> engine(alg, g, inst.weights);
    for (const auto& ev : trace) {
      const auto applied = engine.apply(ev);
      const auto repair = scheme.apply_event(
          applied.edge, applied.old_weight, applied.new_weight,
          engine.weights(), /*rebuild_dirty_fraction=*/2.0);
      const FibDelta& delta = repair.fib_delta;
      if (delta.recompile) break;
      if (delta.empty()) continue;
      if (!replay.apply_delta(delta)) break;
      const std::uint64_t h = batch_hash(forward_batch(replay, queries));
      if (h != batch_hash(forward_batch(compile_fib(scheme, g), queries))) {
        break;  // patched state drifted from a fresh compile: not legal
      }
      deltas.push_back(delta);
      expected.push_back(h);
    }
  }
  if (deltas.empty()) {
    // A quiet trace still must exercise the channel: fall back to the
    // synthetic two-slot delta every slacked Cowen arena accepts.
    FibDelta d = two_slot_delta();
    ASSERT_TRUE(replay.apply_delta(d));
    deltas.push_back(std::move(d));
    expected.push_back(batch_hash(forward_batch(replay, queries)));
  }

  const pid_t writer_pid = ::fork();
  ASSERT_GE(writer_pid, 0);
  if (writer_pid == 0) ::_exit(child_writer_main(dir.path, fib0, deltas));
  const pid_t poll_pid = ::fork();
  ASSERT_GE(poll_pid, 0);
  if (poll_pid == 0) {
    ::_exit(child_polling_reader_main(dir.path, expected, queries));
  }
  const pid_t watch_pid = ::fork();
  ASSERT_GE(watch_pid, 0);
  if (watch_pid == 0) {
    ::_exit(child_watcher_reader_main(dir.path, expected, queries));
  }

  const auto reap = [](pid_t pid, const char* who) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid) << who;
    ASSERT_TRUE(WIFEXITED(status)) << who << " crashed";
    EXPECT_EQ(WEXITSTATUS(status), kChildOk)
        << who << ": 20=batch matched no legal generation (torn serving), "
                  "21=saw a republished generation, 22=never adopted, "
                  "23=never saw the final state, 24=wrong final bytes, "
                  "30=writer refused a delta the oracle accepted, "
                  "31=reader handshake timed out";
  };
  reap(writer_pid, "writer");
  reap(poll_pid, "polling reader");
  reap(watch_pid, "watcher reader");

  // The zero-republish counter proof, from the store itself: every one
  // of the deltas.size() patches the readers just legality-checked
  // traveled through generation 1's live segment.
  ArenaStore probe(dir.path);
  EXPECT_EQ(probe.generations(), (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(probe.current_generation(), 1u);
  PatchSegmentHeader h;
  ASSERT_TRUE(read_segment_header_file(probe.segment_file(1), &h));
  EXPECT_EQ(h.patches_applied, deltas.size());
  EXPECT_EQ(h.seq, 2 * deltas.size());
}

INSTANTIATE_TEST_SUITE_P(Corpus, PatchChannelSeeds,
                         ::testing::Range<std::uint64_t>(0, kCorpusSeeds));

#endif  // !defined(__SANITIZE_THREAD__)

// ---------------------------------------------------------------------------
// In-process concurrency leg (runs under EVERY preset, TSan included):
// reader threads and snapshot adopters race a live patcher over the
// writer's own mapping — same virtual addresses, so TSan watches both
// sides of the seqlock and the checksum fold.

TEST(PatchChannelConcurrency, SnapshotsAndBatchesRaceALivePatcher) {
  StoreDir dir("race");
  const FlatFib fib0 = make_fib(11);
  const auto queries = all_pairs(fib0.node_count());
  const std::uint64_t h0 = batch_hash(forward_batch(fib0, queries));
  FlatFib flipped = writable_copy(fib0);
  FibDelta dark;
  dark.touched_nodes = 1;
  dark.patches.push_back(
      fib_patch_u32(fib_section::kCowenLandmarkPort, 0, kInvalidPort));
  ASSERT_TRUE(flipped.apply_delta(dark));
  const std::uint64_t h1 = batch_hash(forward_batch(flipped, queries));

  auto writer = PatchChannelWriter::acquire(dir.path, 9);
  writer.publish(fib0);
  const Port orig = [&] {
    // Recover the original port value straight from the pristine arena.
    return static_cast<Port>(
        fib0.cowen().landmark_port[0]);
  }();

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> illegal{0};
  std::atomic<std::size_t> batches{0};
  std::atomic<std::size_t> snapshots_ok{0};

  std::vector<std::thread> workers;
  for (int r = 0; r < 2; ++r) {
    workers.emplace_back([&] {
      ThreadPool pool(1);
      FibBatchOptions opt;
      opt.pool = &pool;
      opt.seqlock_max_retries = 1u << 20;
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t h =
            batch_hash(forward_batch(writer.fib(), queries, opt));
        batches.fetch_add(1, std::memory_order_relaxed);
        if (h != h0 && h != h1) {
          illegal.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  workers.emplace_back([&] {
    // The adopter's view: seqlock-stable snapshots of the same mapping.
    // Transient failures (a fold in flight) are allowed; successes must
    // carry a header that vouches for generation 1.
    while (!stop.load(std::memory_order_acquire)) {
      PatchSegmentHeader h;
      const auto copy = patch_channel_snapshot(
          writer.segment_for_test(), writer.segment_bytes_for_test(), 4096,
          &h);
      if (!copy.empty() && h.arena_generation == 1) {
        snapshots_ok.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });

  // The patcher: 64 alternating flips of one landmark-port slot, each a
  // full cross-process patch (seqlock window + checksum fold).
  constexpr std::size_t kFlips = 64;
  for (std::size_t i = 0; i < kFlips; ++i) {
    FibDelta d;
    d.touched_nodes = 1;
    d.patches.push_back(fib_patch_u32(fib_section::kCowenLandmarkPort, 0,
                                      i % 2 == 0 ? kInvalidPort : orig));
    ASSERT_TRUE(writer.apply(d));
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();

  EXPECT_EQ(illegal.load(), 0u)
      << "a batch matched neither reachable state (torn serving) out of "
      << batches.load();
  EXPECT_GT(batches.load(), 0u);
  EXPECT_GT(snapshots_ok.load(), 0u)
      << "no snapshot ever validated against the live patcher";
  EXPECT_EQ(writer.patches_applied(), kFlips);
  // kFlips is even: the last flip restored the original port.
  EXPECT_EQ(serve_hash(writer.fib(), queries), h0);
}

}  // namespace
}  // namespace cpr
