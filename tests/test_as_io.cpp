// CAIDA as-rel loader robustness (ISSUE 9 satellite): real datasets are
// messy — CRLF endings, comment banners, the serial-2 4th column,
// duplicate lines from concatenated snapshots — and a loader feeding the
// Internet-scale construction sweeps has to either take a line cleanly or
// reject it with enough context to find it in a multi-megabyte file.
// These tests pin both halves of that contract: the leniencies parse to
// the same topology, and every rejection is a std::runtime_error carrying
// the 1-based line number and the offending line text.
#include "bgp/as_io.hpp"

#include <gtest/gtest.h>

#include <initializer_list>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cpr {
namespace {

AsRelLoadResult load(const std::string& text) {
  std::stringstream in(text);
  return read_as_rel(in);
}

// The rejection contract: std::runtime_error whose message contains every
// needle (the failure kind, the line number, the line text).
void expect_rejects(const std::string& text,
                    std::initializer_list<const char*> needles) {
  std::stringstream in(text);
  try {
    read_as_rel(in);
    FAIL() << "expected std::runtime_error for input: " << text;
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    for (const char* needle : needles) {
      EXPECT_NE(msg.find(needle), std::string::npos)
          << "message \"" << msg << "\" lacks \"" << needle << "\"";
    }
  }
}

TEST(AsIoRobust, CommentsBlanksAndCrlfAreTolerated) {
  const auto loaded = load(
      "# inferred relationships, serial-1\r\n"
      "\r\n"
      "  \t\r\n"
      "100|200|-1\r\n"
      "200|300|0\r\n"
      "# trailing banner\n");
  EXPECT_EQ(loaded.topology.graph.node_count(), 3u);
  EXPECT_EQ(loaded.topology.graph.arc_count(), 4u);  // two links, two arcs each
}

TEST(AsIoRobust, SerialTwoFourthFieldIsIgnored) {
  const auto a = load("100|200|-1|bgp\n100|300|0|mlp\n");
  const auto b = load("100|200|-1\n100|300|0\n");
  ASSERT_EQ(a.topology.graph.arc_count(), b.topology.graph.arc_count());
  for (ArcId arc = 0; arc < a.topology.graph.arc_count(); ++arc) {
    EXPECT_EQ(a.topology.relation[arc], b.topology.relation[arc]);
  }
}

TEST(AsIoRobust, FieldsMayCarryPadding) {
  const auto loaded = load(" 100 |\t200 | -1 \n");
  EXPECT_EQ(loaded.topology.graph.node_count(), 2u);
  const NodeId p = loaded.id_of_asn.at(100);
  const NodeId c = loaded.id_of_asn.at(200);
  const ArcId down = loaded.topology.graph.find_arc(p, c);
  ASSERT_NE(down, kInvalidArc);
  EXPECT_EQ(loaded.topology.relation[down], Relationship::kCustomer);
}

TEST(AsIoRobust, ExactDuplicateLinesAreSkipped) {
  // Same p2c twice, and the same peer link written in both orientations —
  // concatenated snapshots do both. One link each.
  const auto loaded = load(
      "100|200|-1\n"
      "100|200|-1\n"
      "200|300|0\n"
      "300|200|0\n");
  EXPECT_EQ(loaded.topology.graph.node_count(), 3u);
  EXPECT_EQ(loaded.topology.graph.arc_count(), 4u);
}

TEST(AsIoRobust, ConflictingRelationshipsNameBothLines) {
  // Peer vs p2c for the same pair.
  expect_rejects("100|200|0\n100|200|-1\n",
                 {"conflicting relationship", "100|200", "(first on line 1)",
                  "line 2"});
  // p2c with the provider flipped is a conflict, not a duplicate.
  expect_rejects("100|200|-1\n200|100|-1\n",
                 {"conflicting relationship", "(first on line 1)", "line 2"});
}

TEST(AsIoRobust, MalformedLinesCarryLineNumberAndText) {
  expect_rejects("100|200|-1\n1|2\n", {"malformed line", "line 2", "1|2"});
  expect_rejects("1|2|0|src|extra\n", {"too many fields", "line 1"});
  expect_rejects("100|200|-1\n\n300||0\n", {"bad AS numbers", "line 3"});
  expect_rejects("a|2|-1\n", {"bad AS numbers", "line 1", "a|2|-1"});
  expect_rejects("1|2|\n", {"bad relation field", "line 1"});
  expect_rejects("1|2|p2c\n", {"bad relation field", "line 1"});
}

TEST(AsIoRobust, TruncatedFinalLineIsRejectedNotDropped) {
  // A download cut mid-line must fail loudly, not silently shrink the
  // topology.
  expect_rejects("100|200|-1\n300|4", {"malformed line", "line 2", "300|4"});
}

TEST(AsIoRobust, UnknownRelationCodesAndSelfLoopsAreRejected) {
  expect_rejects("1|2|7\n", {"unknown relation code 7", "line 1"});
  expect_rejects("1|2|-2\n", {"unknown relation code -2", "line 1"});
  expect_rejects("5|5|0\n", {"self-loop", "line 1", "5|5|0"});
}

TEST(AsIoRobust, SparseAsnsGetDenseIds) {
  const auto loaded = load("4200000000|15169|-1\n15169|3356|0\n");
  EXPECT_EQ(loaded.topology.graph.node_count(), 3u);
  EXPECT_EQ(loaded.id_of_asn.size(), 3u);
  for (const auto& [asn, id] : loaded.id_of_asn) {
    EXPECT_LT(id, 3u) << asn;
  }
}

TEST(AsIoUnderlay, BuildsUnitWeightedSimpleGraph) {
  const auto loaded = load(
      "100|200|-1\n"
      "100|300|-1\n"
      "200|300|0\n"
      "300|400|-1\n");
  const AsUnderlay u = as_rel_underlay(loaded);
  EXPECT_EQ(u.graph.node_count(), 4u);
  EXPECT_EQ(u.graph.edge_count(), 4u);  // one undirected edge per AS pair
  ASSERT_EQ(u.unit_weights.size(), u.graph.edge_count());
  for (const auto w : u.unit_weights) EXPECT_EQ(w, 1u);
  // asn_of_node inverts id_of_asn.
  ASSERT_EQ(u.asn_of_node.size(), loaded.id_of_asn.size());
  for (const auto& [asn, id] : loaded.id_of_asn) {
    EXPECT_EQ(u.asn_of_node[id], asn);
  }
  // Every loaded adjacency survives as an undirected edge.
  const NodeId a = loaded.id_of_asn.at(200);
  const NodeId b = loaded.id_of_asn.at(300);
  EXPECT_TRUE(u.graph.has_edge(a, b));
}

}  // namespace
}  // namespace cpr
