// Parallel construction must be bit-identical to sequential construction:
// the same seeded instance built with 1, 2 and 8 threads has to produce
// exactly the same landmark sets, tables, labels, headers and memory
// accounting. This is what makes the differential harness able to pin
// results, and what makes "n threads" a pure wall-clock knob rather than a
// behavioural one.
#include "algebra/primitives.hpp"
#include "routing/shortest_widest.hpp"
#include "scheme/cowen.hpp"
#include "scheme/scheme.hpp"
#include "scheme/spanning_tree.hpp"
#include "sim/churn.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cpr {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 8};

// Rebuilds the same seeded instance under a pool of the given size. The
// instance (graph + weights + rng) is recreated per build so each build
// consumes an identical randomness stream; `host` keeps the graph alive
// for the lifetime of the returned scheme.
template <RoutingAlgebra A>
CowenScheme<A> build_with_pool(const A& alg, std::uint64_t seed,
                               std::size_t n, ThreadPool& pool,
                               test::SeededInstance<A>& host) {
  host = test::seeded_instance(alg, seed, n, 0.25);
  CowenOptions opt;
  opt.pool = &pool;
  return CowenScheme<A>::build(alg, host.graph, host.weights, host.rng, opt);
}

template <RoutingAlgebra A>
void expect_bit_identical_builds(const A& alg, std::uint64_t seed,
                                 std::size_t n) {
  ThreadPool reference_pool(1);
  test::SeededInstance<A> reference_host;
  const auto reference =
      build_with_pool(alg, seed, n, reference_pool, reference_host);
  const Graph& g = reference_host.graph;

  for (const std::size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    test::SeededInstance<A> host;
    const auto parallel = build_with_pool(alg, seed, n, pool, host);

    ASSERT_EQ(parallel.landmark_count(), reference.landmark_count())
        << alg.name() << " threads=" << threads;
    ASSERT_EQ(parallel.strict_balls(), reference.strict_balls());
    for (NodeId u = 0; u < g.node_count(); ++u) {
      EXPECT_EQ(parallel.is_landmark(u), reference.is_landmark(u))
          << alg.name() << " threads=" << threads << " u=" << u;
      EXPECT_EQ(parallel.landmark_of(u), reference.landmark_of(u))
          << alg.name() << " threads=" << threads << " u=" << u;
      EXPECT_EQ(parallel.cluster_size(u), reference.cluster_size(u))
          << alg.name() << " threads=" << threads << " u=" << u;
      // Routing tables entry-by-entry.
      ASSERT_EQ(parallel.table(u), reference.table(u))
          << alg.name() << " threads=" << threads << " u=" << u;
      // Memory accounting has to agree bit-for-bit, not just in size.
      EXPECT_EQ(parallel.local_memory_bits(u), reference.local_memory_bits(u))
          << alg.name() << " threads=" << threads << " u=" << u;
      // Labels: same reported size and same encoded bytes.
      EXPECT_EQ(parallel.label_bits(u), reference.label_bits(u));
      const auto [pb, pbits] = parallel.encode_header(parallel.make_header(u));
      const auto [rb, rbits] =
          reference.encode_header(reference.make_header(u));
      EXPECT_EQ(pbits, rbits);
      EXPECT_EQ(pb, rb) << alg.name() << " threads=" << threads << " u=" << u;
    }
  }
}

class DeterminismSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismSeeds, CowenShortestPath) {
  expect_bit_identical_builds(ShortestPath{16}, GetParam(), 28);
}
TEST_P(DeterminismSeeds, CowenMostReliable) {
  expect_bit_identical_builds(MostReliablePath{}, GetParam(), 20);
}
TEST_P(DeterminismSeeds, CowenWidestShortest) {
  expect_bit_identical_builds(WidestShortest{ShortestPath{16}, WidestPath{8}},
                              GetParam(), 20);
}
TEST_P(DeterminismSeeds, CowenWidestPathNonStrictBalls) {
  expect_bit_identical_builds(WidestPath{8}, GetParam(), 16);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DeterminismSeeds,
                         ::testing::Range<std::uint64_t>(1, 6));

// Incremental churn repair fans its phases (dirty detection, tree
// recompute, reassignment, table patch, cluster deltas) over the scheme's
// pool; every phase writes disjoint slots, so the repaired state must be
// bit-identical for any thread count. The same seeded trace is played in
// lockstep against a 1-thread reference and the wider pools, comparing
// after *every* event — a schedule-dependent bug can't hide behind a
// later event that happens to repair it.
template <RoutingAlgebra A>
void expect_bit_identical_repairs(const A& alg, std::uint64_t seed,
                                  std::size_t n) {
  // Force the incremental path: the dirty fraction can never exceed 1.
  constexpr double kNeverRebuild = 2.0;
  constexpr std::size_t kEvents = 12;

  // The trace is a pure function of (alg, seed), generated against its
  // own copy of the seeded instance.
  auto trace_host = test::seeded_instance(alg, seed, n, 0.25);
  Rng trace_rng(seed * 1000 + 17);
  const auto trace = random_churn_trace(alg, trace_host.graph,
                                        trace_host.weights, kEvents,
                                        trace_rng);
  ASSERT_FALSE(trace.empty()) << alg.name() << " seed=" << seed;

  for (const std::size_t threads : kThreadCounts) {
    // Fresh reference per width (cheap at test sizes) so both sides
    // replay the identical trace from the identical start state.
    ThreadPool reference_pool(1);
    test::SeededInstance<A> reference_host;
    auto reference =
        build_with_pool(alg, seed, n, reference_pool, reference_host);
    ChurnEngine<A> ref_engine(alg, reference_host.graph,
                              reference_host.weights);

    ThreadPool pool(threads);
    test::SeededInstance<A> host;
    auto parallel = build_with_pool(alg, seed, n, pool, host);
    ChurnEngine<A> engine(alg, host.graph, host.weights);

    for (std::size_t i = 0; i < trace.size(); ++i) {
      const auto applied = engine.apply(trace[i]);
      const auto ref_applied = ref_engine.apply(trace[i]);
      parallel.apply_event(applied.edge, applied.old_weight,
                           applied.new_weight, engine.weights(),
                           kNeverRebuild);
      reference.apply_event(ref_applied.edge, ref_applied.old_weight,
                            ref_applied.new_weight, ref_engine.weights(),
                            kNeverRebuild);
      for (NodeId u = 0; u < host.graph.node_count(); ++u) {
        ASSERT_EQ(parallel.landmark_of(u), reference.landmark_of(u))
            << alg.name() << " threads=" << threads << " event=" << i
            << " u=" << u;
        ASSERT_EQ(parallel.cluster_size(u), reference.cluster_size(u))
            << alg.name() << " threads=" << threads << " event=" << i
            << " u=" << u;
        ASSERT_EQ(parallel.table(u), reference.table(u))
            << alg.name() << " threads=" << threads << " event=" << i
            << " u=" << u;
        ASSERT_EQ(parallel.port_at_landmark(u), reference.port_at_landmark(u))
            << alg.name() << " threads=" << threads << " event=" << i
            << " u=" << u;
        ASSERT_EQ(parallel.local_memory_bits(u),
                  reference.local_memory_bits(u))
            << alg.name() << " threads=" << threads << " event=" << i
            << " u=" << u;
      }
    }
  }
}

TEST_P(DeterminismSeeds, ChurnRepairShortestPath) {
  expect_bit_identical_repairs(ShortestPath{16}, GetParam(), 20);
}
TEST_P(DeterminismSeeds, ChurnRepairWidestPathNonStrictBalls) {
  expect_bit_identical_repairs(WidestPath{8}, GetParam(), 16);
}

TEST(ParallelDeterminism, AllPairsTreesMatchSequentialDijkstra) {
  const ShortestPath alg{64};
  auto inst = test::seeded_instance(alg, 7, 40, 0.2);
  ThreadPool pool8(8);
  const auto parallel = all_pairs_trees(alg, inst.graph, inst.weights, &pool8);
  for (NodeId s = 0; s < inst.graph.node_count(); ++s) {
    const auto seq = dijkstra(alg, inst.graph, inst.weights, s);
    ASSERT_EQ(parallel[s].parent, seq.parent) << "s=" << s;
    ASSERT_EQ(parallel[s].parent_edge, seq.parent_edge) << "s=" << s;
    ASSERT_EQ(parallel[s].hops, seq.hops) << "s=" << s;
    for (NodeId v = 0; v < inst.graph.node_count(); ++v) {
      ASSERT_EQ(parallel[s].weight(v).has_value(),
                seq.weight(v).has_value());
      if (seq.weight(v).has_value()) {
        EXPECT_TRUE(order_equal(alg, *parallel[s].weight(v), *seq.weight(v)));
      }
    }
  }
}

TEST(ParallelDeterminism, RootedForestMatchesPerRootBuilds) {
  Rng rng(11);
  const Graph g = erdos_renyi_connected(60, 0.1, rng);
  const auto w = test::integer_weights(g, rng, 1, 9);
  const auto tree_edges = preferred_spanning_tree(WidestPath{}, g, w);
  std::vector<NodeId> roots;
  for (NodeId r = 0; r < g.node_count(); ++r) roots.push_back(r);

  ThreadPool pool1(1), pool2(2), pool8(8);
  const auto f1 = rooted_forest(g, tree_edges, roots, &pool1);
  const auto f2 = rooted_forest(g, tree_edges, roots, &pool2);
  const auto f8 = rooted_forest(g, tree_edges, roots, &pool8);
  for (std::size_t i = 0; i < roots.size(); ++i) {
    const RootedTree seq = RootedTree::from_edges(g, tree_edges, roots[i]);
    for (const RootedTree* f : {&f1[i], &f2[i], &f8[i]}) {
      ASSERT_EQ(f->root, seq.root) << "root=" << roots[i];
      ASSERT_EQ(f->parent, seq.parent) << "root=" << roots[i];
      ASSERT_EQ(f->parent_edge, seq.parent_edge) << "root=" << roots[i];
      ASSERT_EQ(f->children, seq.children) << "root=" << roots[i];
      ASSERT_EQ(f->subtree_size, seq.subtree_size) << "root=" << roots[i];
    }
  }
}

TEST(ParallelDeterminism, PooledScratchDoesNotLeakAcrossRuns) {
  // Dijkstra's frontier heap is thread_local and reused across runs
  // (routing/dijkstra.hpp), and construction randomness reaches tasks
  // only via Rng::fork streams. Neither may make a build depend on what
  // the worker did before: a scheme built on a thread whose scratch is
  // dirty from unrelated sweeps must equal one built on fresh threads.
  const ShortestPath alg{16};

  ThreadPool fresh_pool(2);
  test::SeededInstance<ShortestPath> fresh_host;
  const auto fresh = build_with_pool(alg, 5, 24, fresh_pool, fresh_host);

  ThreadPool dirty_pool(2);
  // Pollute the pool's (and the calling thread's) scratch heaps with
  // sweeps over differently-sized graphs and a different algebra.
  for (std::uint64_t seed : {91u, 92u}) {
    auto junk = test::seeded_instance(WidestPath{8}, seed, 57, 0.1);
    (void)all_pairs_trees(WidestPath{8}, junk.graph, junk.weights,
                          &dirty_pool);
    (void)dijkstra(WidestPath{8}, junk.graph, junk.weights, 0);
  }
  test::SeededInstance<ShortestPath> dirty_host;
  const auto dirty = build_with_pool(alg, 5, 24, dirty_pool, dirty_host);

  ASSERT_EQ(dirty.landmark_count(), fresh.landmark_count());
  for (NodeId u = 0; u < fresh_host.graph.node_count(); ++u) {
    EXPECT_EQ(dirty.is_landmark(u), fresh.is_landmark(u)) << "u=" << u;
    EXPECT_EQ(dirty.landmark_of(u), fresh.landmark_of(u)) << "u=" << u;
    ASSERT_EQ(dirty.table(u), fresh.table(u)) << "u=" << u;
    EXPECT_EQ(dirty.local_memory_bits(u), fresh.local_memory_bits(u))
        << "u=" << u;
  }
}

TEST(ParallelDeterminism, RouteBatchMatchesSimulateRoute) {
  const ShortestPath alg{64};
  auto inst = test::seeded_instance(alg, 3, 32, 0.25);
  const auto scheme =
      CowenScheme<ShortestPath>::build(alg, inst.graph, inst.weights, inst.rng);
  std::vector<std::pair<NodeId, NodeId>> queries;
  for (NodeId s = 0; s < inst.graph.node_count(); ++s) {
    for (NodeId t = 0; t < inst.graph.node_count(); ++t) {
      queries.emplace_back(s, t);
    }
  }
  ThreadPool pool8(8);
  const auto batched = route_batch(scheme, inst.graph, queries, &pool8);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto [s, t] = queries[i];
    const RouteResult individual = simulate_route(scheme, inst.graph, s, t);
    EXPECT_EQ(batched[i].delivered, individual.delivered)
        << "s=" << s << " t=" << t;
    EXPECT_EQ(batched[i].path, individual.path) << "s=" << s << " t=" << t;
  }
}

}  // namespace
}  // namespace cpr
