// Algebra-layer tests: axioms and property classification for the Table-1
// algebras, the Proposition-1 lexicographic-product calculus (experiment
// E11), subalgebras, and the algebraic stretch of Definition 3.
#include "algebra/algebra.hpp"
#include "algebra/lex_product.hpp"
#include "algebra/primitives.hpp"
#include "algebra/property_check.hpp"
#include "algebra/subalgebra.hpp"
#include "routing/shortest_widest.hpp"

#include <gtest/gtest.h>

namespace cpr {
namespace {

template <RoutingAlgebra A>
PropertyReport checked(const A& alg, std::uint64_t seed = 11,
                       std::size_t samples = 20) {
  Rng rng(seed);
  PropertyReport r = check_properties_sampled(alg, rng, samples);
  EXPECT_TRUE(r.axioms_hold()) << alg.name() << ": " << describe(r);
  EXPECT_TRUE(validate_claims(alg.properties(), r).empty())
      << alg.name() << ": " << describe(r);
  return r;
}

TEST(ShortestPathAlgebra, AxiomsAndClaims) {
  const PropertyReport r = checked(ShortestPath{});
  EXPECT_TRUE(r.strictly_monotone);
  EXPECT_TRUE(r.isotone);
  EXPECT_TRUE(r.cancellative);
  EXPECT_FALSE(r.selective);  // 1 ⊕ 1 = 2 ∉ {1}
}

TEST(ShortestPathAlgebra, SaturatesInsteadOfWrapping) {
  ShortestPath s;
  const auto big = s.phi() - 1;
  EXPECT_TRUE(s.is_phi(s.combine(big, big)));
  EXPECT_TRUE(s.is_phi(s.combine(s.phi(), 1)));
  EXPECT_EQ(s.combine(3, 4), 7u);
}

TEST(WidestPathAlgebra, AxiomsAndClaims) {
  const PropertyReport r = checked(WidestPath{});
  EXPECT_TRUE(r.selective);
  EXPECT_TRUE(r.monotone);
  EXPECT_FALSE(r.strictly_monotone);  // min(w, w) = w, never strictly worse
}

TEST(WidestPathAlgebra, WiderIsPreferred) {
  WidestPath w;
  EXPECT_TRUE(w.less(10, 3));
  EXPECT_FALSE(w.less(3, 10));
  EXPECT_EQ(w.combine(10, 3), 3u);   // bottleneck
  EXPECT_TRUE(w.less(1, w.phi()));   // any capacity beats none
}

TEST(MostReliableAlgebra, AxiomsAndClaims) {
  const PropertyReport r = checked(MostReliablePath{});
  EXPECT_TRUE(r.monotone);
  EXPECT_TRUE(r.isotone);
  EXPECT_TRUE(MostReliablePath{}.properties().sm_subalgebra);
}

TEST(MostReliableAlgebra, WeightOneBreaksStrictMonotonicity) {
  // 1 ⊕ w = w: with the neutral weight present, SM fails (R is only
  // weakly monotone; Lemma 2 applies through its (0,1) subalgebra).
  const MostReliablePath r;
  const PropertyReport rep = check_properties(r, {0.25, 0.5, 1.0});
  EXPECT_FALSE(rep.strictly_monotone);
  EXPECT_TRUE(rep.monotone);
  EXPECT_TRUE(rep.axioms_hold());
}

TEST(MostReliableAlgebra, StrictSubalgebraIsStrictlyMonotone) {
  // ...but the (0,1) subalgebra of Lemma 2 is strictly monotone.
  const PropertyReport r = checked(MostReliablePath{/*allow_one=*/false});
  EXPECT_TRUE(r.strictly_monotone);
  EXPECT_TRUE(r.delimited);
}

TEST(UsablePathAlgebra, AxiomsAndClaims) {
  const PropertyReport r = checked(UsablePath{});
  EXPECT_TRUE(r.selective);
  EXPECT_TRUE(r.condensed);
  EXPECT_TRUE(r.cancellative);
  EXPECT_TRUE(r.monotone);
  EXPECT_FALSE(r.strictly_monotone);
}

TEST(SubalgebraWrapper, RestrictsSamplingAndInherits) {
  MostReliablePath root;
  AlgebraProperties claimed = root.properties();
  claimed.strictly_monotone = true;
  Subalgebra<MostReliablePath> sub(
      root, [](const MostReliablePath&, const double& w) { return w < 1.0; },
      claimed, "reliable-(0,1)");
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_LT(sub.sample(rng), 1.0);
  checked(sub);
  EXPECT_EQ(sub.name(), "reliable-(0,1)");
  EXPECT_TRUE(sub.contains(0.5));
  EXPECT_FALSE(sub.contains(1.0));
}

// ---- Proposition 1: property calculus of lexicographic products ----

TEST(Proposition1, WidestShortestMatchesTable1) {
  // WS = S × W: SM (first factor SM) and isotone (N(S) holds).
  const WidestShortest ws;
  const AlgebraProperties p = ws.properties();
  EXPECT_TRUE(p.strictly_monotone);
  EXPECT_TRUE(p.isotone);
  EXPECT_TRUE(p.delimited);
  EXPECT_TRUE(p.regular());
  const PropertyReport r = checked(ws, 13);
  EXPECT_TRUE(r.strictly_monotone);
  EXPECT_TRUE(r.isotone);
}

TEST(Proposition1, ShortestWidestMatchesTable1) {
  // SW = W × S: SM (M(W) ∧ SM(S)) but NOT isotone (¬N(W) ∧ ¬C(S)).
  const ShortestWidest sw;
  const AlgebraProperties p = sw.properties();
  EXPECT_TRUE(p.strictly_monotone);
  EXPECT_FALSE(p.isotone);
  EXPECT_TRUE(p.delimited);
  EXPECT_FALSE(p.regular());
}

TEST(Proposition1, ShortestWidestIsotonicityCounterexample) {
  // The concrete violation from Section 3.1: a = (2,5) ⪯ b = (1,1) yet
  // prefixing both with c = (1,10) reverses the preference.
  const ShortestWidest sw;
  const ShortestWidest::Weight a{2, 5}, b{1, 1}, c{1, 10};
  EXPECT_TRUE(sw.less(a, b));
  EXPECT_TRUE(sw.less(sw.combine(c, b), sw.combine(c, a)));
  // The empirical checker finds it too.
  const PropertyReport r = check_properties(sw, {a, b, c});
  EXPECT_FALSE(r.isotone);
  EXPECT_TRUE(r.axioms_hold());
}

TEST(Proposition1, ProductOfSelectivesKeepsMonotone) {
  // U × U: both monotone, so the product is monotone; both condensed so
  // isotone too.
  const auto uu = lex_product(UsablePath{}, UsablePath{});
  EXPECT_TRUE(uu.properties().monotone);
  EXPECT_TRUE(uu.properties().isotone);
  EXPECT_FALSE(uu.properties().strictly_monotone);
  checked(uu);
}

TEST(Proposition1, SmSubalgebraPropagates) {
  // R × W: R is only weakly monotone but carries an SM subalgebra, which
  // survives the product (Lemma 2 applies to R × W as well).
  const auto rw = lex_product(MostReliablePath{}, WidestPath{});
  EXPECT_TRUE(rw.properties().sm_subalgebra);
  EXPECT_TRUE(rw.properties().incompressible_by_thm2());
}

TEST(Proposition1, TripleProductViaNesting) {
  // (S × W) × U — nesting works and stays regular.
  const auto swu = lex_product(WidestShortest{}, UsablePath{});
  EXPECT_TRUE(swu.properties().regular());
  checked(swu, 17, 12);
}

TEST(LexProduct, CombineAndOrder) {
  const WidestShortest ws;  // (cost, capacity)
  const WidestShortest::Weight a{3, 10}, b{2, 4};
  const auto ab = ws.combine(a, b);
  EXPECT_EQ(ab.first, 5u);   // costs add
  EXPECT_EQ(ab.second, 4u);  // capacities bottleneck
  EXPECT_TRUE(ws.less(b, a));  // cheaper wins
  const WidestShortest::Weight c{3, 12};
  EXPECT_TRUE(ws.less(c, a));  // tie on cost → wider wins
}

TEST(LexProduct, PhiWhenEitherComponentInfinite) {
  const ShortestWidest sw;
  EXPECT_TRUE(sw.is_phi({0, 5}));                   // zero capacity
  EXPECT_TRUE(sw.is_phi({3, ShortestPath{}.phi()}));
  EXPECT_FALSE(sw.is_phi({3, 5}));
  EXPECT_TRUE(sw.is_phi(sw.phi()));
}

TEST(LexProduct, NamesAndRendering) {
  const WidestShortest ws;
  EXPECT_EQ(ws.name(), "shortest-path x widest-path");
  EXPECT_EQ(ws.to_string({3, 7}), "(3, 7)");
  EXPECT_GT(ws.encoded_bits({3, 7}), 0u);
}

// ---- Path weights, powers, algebraic stretch ----

TEST(PathWeight, FoldsRightToLeft) {
  ShortestPath s;
  EXPECT_EQ(path_weight(s, {1, 2, 3}), 6u);
  WidestPath w;
  EXPECT_EQ(path_weight(w, {5, 2, 9}), 2u);
}

TEST(Power, MatchesRepeatedCombine) {
  ShortestPath s;
  EXPECT_EQ(power(s, 3, 1), 3u);
  EXPECT_EQ(power(s, 3, 4), 12u);
  WidestPath w;
  EXPECT_EQ(power(w, 7, 5), 7u);  // idempotent: w^k = w
  MostReliablePath r;
  EXPECT_DOUBLE_EQ(power(r, 0.5, 3), 0.125);
}

TEST(AlgebraicStretch, ShortestPathIsMultiplicative) {
  ShortestPath s;
  EXPECT_EQ(algebraic_stretch(s, 10, 10), std::optional<std::size_t>{1});
  EXPECT_EQ(algebraic_stretch(s, 10, 25), std::optional<std::size_t>{3});
  EXPECT_EQ(algebraic_stretch(s, 10, 30), std::optional<std::size_t>{3});
  EXPECT_EQ(algebraic_stretch(s, 10, 31), std::optional<std::size_t>{4});
}

TEST(AlgebraicStretch, SelectiveAlgebrasCollapseToOne) {
  // w^k = w for widest path, so any weight ⪰ preferred has unbounded
  // stretch and any weight order-equal has stretch 1 — Section 4.1's
  // observation that stretch-3 paths are exactly the preferred ones.
  WidestPath w;
  EXPECT_EQ(algebraic_stretch(w, 5, 5), std::optional<std::size_t>{1});
  EXPECT_EQ(algebraic_stretch(w, 5, 7), std::optional<std::size_t>{1});
  EXPECT_FALSE(algebraic_stretch(w, 5, 3).has_value());
}

TEST(AlgebraicStretch, UnreachableWithinCap) {
  ShortestPath s;
  EXPECT_FALSE(algebraic_stretch(s, 1, 100, 16).has_value());
  EXPECT_FALSE(algebraic_stretch(s, 1, s.phi()).has_value());
}

TEST(OrderHelpers, MinAndEquality) {
  ShortestPath s;
  EXPECT_TRUE(order_equal(s, 4, 4));
  EXPECT_FALSE(order_equal(s, 4, 5));
  EXPECT_TRUE(leq(s, 4, 5));
  EXPECT_FALSE(leq(s, 5, 4));
  EXPECT_EQ(min_weight(s, 9, 2), 2u);
}

TEST(PropertyChecker, DetectsBrokenClaims) {
  // Claim selectivity for shortest path — the checker must refute it.
  AlgebraProperties bogus = ShortestPath{}.properties();
  bogus.selective = true;
  Rng rng(3);
  const PropertyReport r = check_properties_sampled(ShortestPath{}, rng, 12);
  EXPECT_FALSE(validate_claims(bogus, r).empty());
}

TEST(PropertyChecker, ReportsCounterexamples) {
  Rng rng(4);
  const PropertyReport r = check_properties_sampled(ShortestPath{}, rng, 10);
  EXPECT_FALSE(r.selective);
  EXPECT_FALSE(r.counterexamples.empty());
  EXPECT_NE(describe(r).find("selectivity"), std::string::npos);
}

}  // namespace
}  // namespace cpr
