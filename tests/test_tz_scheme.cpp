// The name-independent TZ layer (scheme/tz_name_independent.hpp):
// delivery and stretch ≤ 3 under arbitrary (non-identity) label
// permutations, hop-for-hop agreement with the embedded Cowen scheme,
// dictionary-resolution consistency, label codec round-trips, and the
// honest memory accounting (dictionary share included).
#include "algebra/primitives.hpp"
#include "graph/generators.hpp"
#include "routing/dijkstra.hpp"
#include "scheme/cowen.hpp"
#include "scheme/tz_name_independent.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace cpr {
namespace {

template <RoutingAlgebra A>
void expect_tz_stretch3(const A& alg, std::uint64_t seed, std::size_t n) {
  auto inst = test::seeded_instance(alg, seed, n, 0.25);
  const Graph& g = inst.graph;
  const auto& w = inst.weights;
  const auto scheme =
      TzNameIndependentScheme<A>::build(alg, g, w, inst.rng);
  const auto truth = all_pairs_trees(alg, g, w);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      const RouteResult r = simulate_route(scheme, g, s, t);
      ASSERT_TRUE(r.delivered) << alg.name() << " s=" << s << " t=" << t;
      if (s == t) continue;
      const auto preferred = truth[t].weight(s);
      ASSERT_TRUE(preferred.has_value());
      EXPECT_TRUE(test::path_weight_within_stretch(alg, g, w, r.path,
                                                   *preferred, 3))
          << " s=" << s << " t=" << t;
    }
  }
}

class TzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TzSeeds, ShortestPathStretch3) {
  expect_tz_stretch3(ShortestPath{16}, GetParam(), 24);
}
TEST_P(TzSeeds, WidestShortestStretch3) {
  expect_tz_stretch3(WidestShortest{ShortestPath{16}, WidestPath{8}},
                     GetParam(), 20);
}

// The label bijection makes every TZ forwarding decision equal the
// embedded Cowen scheme's decision on the same (node, target): the two
// object paths must walk identical hop sequences for every pair. This is
// the theorem the whole layer rests on — stretch ≤ 3 is inherited, not
// re-proven.
TEST_P(TzSeeds, MatchesEmbeddedCowenHopForHop) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, GetParam(), 24, 0.25);
  const Graph& g = inst.graph;
  const auto scheme = TzNameIndependentScheme<ShortestPath>::build(
      alg, g, inst.weights, inst.rng);
  ASSERT_FALSE(scheme.labels().is_identity());
  const CowenScheme<ShortestPath>& cowen = scheme.cowen();
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      const RouteResult tz = simulate_route(scheme, g, s, t);
      const RouteResult cw = simulate_route(cowen, g, s, t);
      ASSERT_EQ(cw.delivered, tz.delivered) << "s=" << s << " t=" << t;
      ASSERT_EQ(cw.path, tz.path) << "s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, TzSeeds,
                         ::testing::Range<std::uint64_t>(1, 7));

// Internet-like degree distributions are the scheme's motivating regime
// (Krioukov–Fall–Yang run TZ on such graphs): preferential attachment,
// measured multiplicative stretch per pair, hard ≤ 3 everywhere. The
// aggregate distribution is printed so the docs' quoted numbers
// (docs/forwarding_plane.md) can be re-derived from this exact test.
TEST(TzScheme, PreferentialAttachmentStretchDistribution) {
  const ShortestPath alg{1 << 20};
  const std::size_t n = 200;
  Rng rng(42);
  const Graph g = preferential_attachment(n, 3, /*uniform_mix=*/0.0, rng);
  const auto w = test::integer_weights(g, rng, 1, 16);
  const auto scheme =
      TzNameIndependentScheme<ShortestPath>::build(alg, g, w, rng);
  const auto truth = all_pairs_trees(alg, g, w);

  std::size_t pairs = 0, stretched = 0;
  double worst = 1.0, sum = 0.0;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      const RouteResult r = simulate_route(scheme, g, s, t);
      ASSERT_TRUE(r.delivered) << "s=" << s << " t=" << t;
      const auto preferred = truth[t].weight(s);
      ASSERT_TRUE(preferred.has_value());
      const auto achieved = weight_of_path(alg, g, w, r.path);
      ASSERT_TRUE(achieved.has_value());
      const double ratio = static_cast<double>(*achieved) /
                           static_cast<double>(*preferred);
      EXPECT_LE(ratio, 3.0) << "s=" << s << " t=" << t;
      worst = std::max(worst, ratio);
      sum += ratio;
      ++pairs;
      if (ratio > 1.0) ++stretched;
    }
  }
  // Headline numbers for the docs; failure output shows them too.
  std::printf(
      "tz pa(n=%zu, m=3): mean stretch %.4f, max %.4f, stretched pairs "
      "%.2f%%, landmarks %zu\n",
      n, sum / static_cast<double>(pairs), worst,
      100.0 * static_cast<double>(stretched) / static_cast<double>(pairs),
      scheme.landmark_count());
  EXPECT_LE(worst, 3.0);
}

// make_header's dictionary resolution must agree with the label map on
// every name, and the codec must round-trip bit-exactly.
TEST(TzScheme, HeadersResolveAndRoundTrip) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, 5, 32, 0.2);
  const auto scheme = TzNameIndependentScheme<ShortestPath>::build(
      alg, inst.graph, inst.weights, inst.rng);
  const auto& labels = scheme.labels();
  for (NodeId t = 0; t < inst.graph.node_count(); ++t) {
    const auto h = scheme.make_header(t);
    EXPECT_EQ(h.target, t);
    EXPECT_EQ(h.target_label, labels.label_of(t));
    const NodeId lm = scheme.cowen().landmark_of(t);
    ASSERT_NE(lm, kInvalidNode);
    EXPECT_EQ(h.landmark_label, labels.label_of(lm));
    const auto [bytes, bits] = scheme.encode_header(h);
    EXPECT_EQ(bits, scheme.label_bits(t));
    EXPECT_EQ(scheme.decode_header(bytes), h);
  }
}

// Name-independence is paid for in memory: each node's bill includes its
// label and its owned dictionary bucket on top of the labeled ball
// table. The total dictionary charge across nodes must cover all n
// names, and labels stay O(log n)-sized (four bounded fields).
TEST(TzScheme, MemoryAccountsForDictionaryShare) {
  const ShortestPath alg{16};
  auto inst = test::seeded_instance(alg, 6, 64, 0.15);
  const std::size_t n = inst.graph.node_count();
  const auto scheme = TzNameIndependentScheme<ShortestPath>::build(
      alg, inst.graph, inst.weights, inst.rng);
  std::size_t total_tz = 0;
  for (NodeId u = 0; u < n; ++u) total_tz += scheme.local_memory_bits(u);
  std::size_t total_cowen = 0;
  for (NodeId u = 0; u < n; ++u) {
    total_cowen += scheme.cowen().local_memory_bits(u);
  }
  EXPECT_GT(total_tz, total_cowen)
      << "the dictionary share must show up in the bill";

  const double lg = std::log2(static_cast<double>(n));
  const double lgd =
      std::log2(static_cast<double>(inst.graph.max_degree()) + 1);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_LE(scheme.label_bits(v), 3 * lg + lgd + 4) << "v=" << v;
  }
}

// The permutation is seeded: same seed, same labels; and it is never the
// identity for n >= 2, so the differential suites genuinely exercise the
// name/label split.
TEST(TzScheme, LabelPermutationIsSeededAndNonIdentity) {
  const ShortestPath alg{16};
  auto a = test::seeded_instance(alg, 9, 24, 0.25);
  auto b = test::seeded_instance(alg, 9, 24, 0.25);
  const auto sa = TzNameIndependentScheme<ShortestPath>::build(
      alg, a.graph, a.weights, a.rng);
  const auto sb = TzNameIndependentScheme<ShortestPath>::build(
      alg, b.graph, b.weights, b.rng);
  ASSERT_FALSE(sa.labels().is_identity());
  EXPECT_EQ(sa.labels().raw_label_of(), sb.labels().raw_label_of());
}

}  // namespace
}  // namespace cpr
