// Workload generators and the evaluation harness.
#include "algebra/primitives.hpp"
#include "graph/generators.hpp"
#include "scheme/dest_table.hpp"
#include "sim/workload.hpp"

#include <gtest/gtest.h>

namespace cpr {
namespace {

TEST(Workload, DemandsNeverSelfLoop) {
  Rng rng(1);
  const Graph g = erdos_renyi_connected(20, 0.3, rng);
  for (const auto kind :
       {WorkloadGenerator::Kind::kUniform, WorkloadGenerator::Kind::kGravity,
        WorkloadGenerator::Kind::kHotspot, WorkloadGenerator::Kind::kZipf}) {
    WorkloadGenerator w(kind, g, rng);
    for (int i = 0; i < 500; ++i) {
      const Demand d = w.next();
      EXPECT_NE(d.source, d.target);
      EXPECT_LT(d.source, g.node_count());
      EXPECT_LT(d.target, g.node_count());
    }
  }
}

TEST(Workload, GravityFavorsHighDegreeNodes) {
  // A star: the hub has degree n-1; gravity sampling must pick it far
  // more often than any leaf.
  Rng rng(2);
  const Graph g = star(40);
  WorkloadGenerator w(WorkloadGenerator::Kind::kGravity, g, rng);
  std::size_t hub_hits = 0, total = 4000;
  for (std::size_t i = 0; i < total; ++i) {
    const Demand d = w.next();
    hub_hits += (d.source == 0) + (d.target == 0);
  }
  // Hub mass = 39/(2*39) = 1/2 of endpoint picks.
  EXPECT_GT(hub_hits, total * 2 / 3);  // of 2*total endpoints
}

TEST(Workload, HotspotConcentratesTargets) {
  Rng rng(3);
  const Graph g = erdos_renyi_connected(50, 0.15, rng);
  WorkloadGenerator w(WorkloadGenerator::Kind::kHotspot, g, rng,
                      /*hotspot_count=*/2, /*hotspot_fraction=*/0.9);
  std::map<NodeId, std::size_t> target_counts;
  for (int i = 0; i < 3000; ++i) ++target_counts[w.next().target];
  std::vector<std::size_t> counts;
  for (const auto& [node, c] : target_counts) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());
  // The top two targets soak up most of the traffic.
  EXPECT_GT(counts[0] + counts[1], 3000u * 3 / 5);
}

TEST(Workload, ZipfIsDeterministicPerSeed) {
  Rng graph_rng(5);
  const Graph g = erdos_renyi_connected(64, 0.15, graph_rng);
  Rng a(77), b(77), c(78);
  WorkloadGenerator wa(WorkloadGenerator::Kind::kZipf, g, a);
  WorkloadGenerator wb(WorkloadGenerator::Kind::kZipf, g, b);
  WorkloadGenerator wc(WorkloadGenerator::Kind::kZipf, g, c);
  bool differs_from_c = false;
  for (int i = 0; i < 1000; ++i) {
    const Demand da = wa.next(), db = wb.next(), dc = wc.next();
    EXPECT_EQ(da.source, db.source);
    EXPECT_EQ(da.target, db.target);
    differs_from_c |= da.target != dc.target;
  }
  EXPECT_TRUE(differs_from_c) << "different seeds drew identical traffic";
}

TEST(Workload, ZipfConcentratesTargetsByRank) {
  // With exponent 1.1 over n=200 ranks, the single top rank holds
  // 1 / H(200, 1.1) ≈ 17% of the target mass and the top ten hold ~44%;
  // uniform would give 0.5% / 5%. Checking loose thresholds on both pins
  // the skew without being a flaky exact-distribution test.
  Rng graph_rng(6);
  const Graph g = erdos_renyi_connected(200, 0.05, graph_rng);
  Rng rng(42);
  WorkloadGenerator w(WorkloadGenerator::Kind::kZipf, g, rng);
  std::map<NodeId, std::size_t> counts;
  const std::size_t total = 20000;
  for (std::size_t i = 0; i < total; ++i) ++counts[w.next().target];
  std::vector<std::size_t> sorted;
  for (const auto& [node, c] : counts) sorted.push_back(c);
  std::sort(sorted.rbegin(), sorted.rend());
  EXPECT_GT(sorted[0], total / 10);  // top destination ≥ 10%
  std::size_t top10 = 0;
  for (std::size_t i = 0; i < 10 && i < sorted.size(); ++i) top10 += sorted[i];
  EXPECT_GT(top10, total / 3);  // top ten ≥ 33%
}

TEST(Workload, ZipfSourcesStayUniformish) {
  // Sources are drawn uniformly regardless of the target skew: no node
  // should dominate the source side the way ranks dominate targets.
  Rng graph_rng(7);
  const Graph g = erdos_renyi_connected(100, 0.08, graph_rng);
  Rng rng(9);
  WorkloadGenerator w(WorkloadGenerator::Kind::kZipf, g, rng);
  std::map<NodeId, std::size_t> counts;
  const std::size_t total = 20000;
  for (std::size_t i = 0; i < total; ++i) ++counts[w.next().source];
  std::size_t top = 0;
  for (const auto& [node, c] : counts) top = std::max(top, c);
  EXPECT_LT(top, total / 20);  // uniform expectation 1%, allow 5%
}

TEST(Workload, EvaluationOnPerfectSchemeIsStretchOne) {
  Rng rng(4);
  const ShortestPath alg{16};
  const Graph g = erdos_renyi_connected(24, 0.3, rng);
  EdgeMap<std::uint64_t> w(g.edge_count());
  for (auto& x : w) x = alg.sample(rng);
  const auto trees = all_pairs_trees(alg, g, w);
  const auto scheme = DestinationTableScheme::from_algebra(alg, g, w);
  WorkloadGenerator workload(WorkloadGenerator::Kind::kUniform, g, rng);
  const auto ev = evaluate_workload(
      scheme, alg, g, w, trees, workload, 800,
      [](std::uint64_t p, std::uint64_t a) {
        return static_cast<double>(a) / static_cast<double>(p);
      });
  EXPECT_EQ(ev.delivered, ev.demands);
  EXPECT_DOUBLE_EQ(ev.stretch_1_fraction, 1.0);
  EXPECT_NEAR(ev.stretch_stats.max, 1.0, 1e-12);
  EXPECT_GT(ev.hop_stats.mean, 1.0);
}

}  // namespace
}  // namespace cpr
