// Destination tables (Observation 1 / Proposition 2) and the
// source-destination fallback for non-isotone algebras.
#include "algebra/primitives.hpp"
#include "graph/generators.hpp"
#include "routing/dijkstra.hpp"
#include "routing/shortest_widest.hpp"
#include "scheme/dest_table.hpp"
#include "scheme/srcdest_table.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cpr {
namespace {

// Delivery along a path whose weight is order-equal to the preferred
// weight, for every pair — Proposition 2's "implements A on G".
template <RoutingAlgebra A>
void expect_dest_tables_implement(const A& alg, std::uint64_t seed,
                                  std::size_t n = 16) {
  Rng rng(seed);
  const Graph g = erdos_renyi_connected(n, 0.3, rng);
  EdgeMap<typename A::Weight> w(g.edge_count());
  for (auto& x : w) x = alg.sample(rng);
  const auto scheme = DestinationTableScheme::from_algebra(alg, g, w);
  const auto trees = all_pairs_trees(alg, g, w);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      const RouteResult r = simulate_route(scheme, g, s, t);
      ASSERT_TRUE(r.delivered) << alg.name() << " s=" << s << " t=" << t;
      if (s == t) continue;
      const auto pw = weight_of_path(alg, g, w, r.path);
      ASSERT_TRUE(pw.has_value());
      EXPECT_TRUE(order_equal(alg, *pw, *trees[t].weight(s)))
          << alg.name() << " s=" << s << " t=" << t;
    }
  }
}

class DestTableSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DestTableSeeds, ShortestPath) {
  expect_dest_tables_implement(ShortestPath{16}, GetParam());
}
TEST_P(DestTableSeeds, WidestPath) {
  expect_dest_tables_implement(WidestPath{8}, GetParam());
}
TEST_P(DestTableSeeds, MostReliable) {
  expect_dest_tables_implement(MostReliablePath{}, GetParam());
}
TEST_P(DestTableSeeds, WidestShortest) {
  expect_dest_tables_implement(
      WidestShortest{ShortestPath{16}, WidestPath{8}}, GetParam());
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DestTableSeeds,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(DestTable, MemoryIsThetaNLogD) {
  // On a ring (degree 2) the table costs ~2 bits per destination: one
  // reachability flag + one port bit.
  Rng rng(1);
  const std::size_t n = 128;
  const Graph g = ring(n);
  const auto w = random_integer_weights(g, 1, 9, rng);
  const auto scheme =
      DestinationTableScheme::from_algebra(ShortestPath{}, g, w);
  const auto fp = measure_footprint(scheme, n);
  EXPECT_GE(fp.max_node_bits, n - 1);      // at least 1 bit per destination
  EXPECT_LE(fp.max_node_bits, 4 * n);      // and O(n log d) with d = 2
  EXPECT_EQ(scheme.label_bits(0), 7u);     // log2(128)
}

TEST(DestTable, UnreachableDestinationsFailClosed) {
  // Disconnected pair: the scheme reports an invalid port, the simulator
  // gives up, nothing loops.
  Graph g(3);
  g.add_edge(0, 1);
  EdgeMap<std::uint64_t> w = {1};
  const auto scheme =
      DestinationTableScheme::from_algebra(ShortestPath{}, g, w);
  const RouteResult r = simulate_route(scheme, g, 0, 2);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.path, (NodePath{0}));
}

TEST(SrcDestTable, ImplementsShortestWidest) {
  const ShortestWidest sw;
  Rng rng(7);
  const Graph g = erdos_renyi_connected(14, 0.3, rng);
  EdgeMap<ShortestWidest::Weight> w(g.edge_count());
  for (auto& x : w) x = {rng.uniform(1, 5), rng.uniform(1, 9)};

  std::vector<std::vector<NodePath>> paths(g.node_count());
  std::vector<std::vector<std::optional<ShortestWidest::Weight>>> truth(
      g.node_count());
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto row = shortest_widest_exact(sw, g, w, s);
    paths[s] = row.paths;
    truth[s] = row.weight;
  }
  const SourceDestTableScheme scheme(g, paths);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s == t) continue;
      const RouteResult r = simulate_route(scheme, g, s, t);
      ASSERT_TRUE(r.delivered) << "s=" << s << " t=" << t;
      const auto pw = weight_of_path(sw, g, w, r.path);
      ASSERT_TRUE(pw.has_value());
      EXPECT_TRUE(order_equal(sw, *pw, *truth[s][t]));
    }
  }
}

TEST(SrcDestTable, StoresOnlyTransitEntries) {
  // On a path graph the middle node carries entries for pairs crossing
  // it; a leaf only for pairs it originates/terminates.
  const Graph g = path_graph(5);
  std::vector<std::vector<NodePath>> paths(5, std::vector<NodePath>(5));
  for (NodeId s = 0; s < 5; ++s) {
    for (NodeId t = 0; t < 5; ++t) {
      if (s == t) continue;
      NodePath p;
      if (s < t) {
        for (NodeId x = s; x <= t; ++x) p.push_back(x);
      } else {
        for (NodeId x = s; x != t; --x) p.push_back(x);
        p.push_back(t);
      }
      paths[s][t] = p;
    }
  }
  const SourceDestTableScheme scheme(g, paths);
  EXPECT_GT(scheme.entry_count(2), scheme.entry_count(0));
  // Node 0 appears as transit for no pair: only its own 4 destinations.
  EXPECT_EQ(scheme.entry_count(0), 4u);
  // Memory grows with entries.
  EXPECT_GT(scheme.local_memory_bits(2), scheme.local_memory_bits(0));
}

TEST(SrcDestTable, MissingEntryFailsClosed) {
  const Graph g = path_graph(3);
  std::vector<std::vector<NodePath>> paths(3, std::vector<NodePath>(3));
  paths[0][2] = {0, 1, 2};  // only one route installed
  const SourceDestTableScheme scheme(g, paths);
  EXPECT_TRUE(simulate_route(scheme, g, 0, 2).delivered);
  EXPECT_FALSE(simulate_route(scheme, g, 2, 0).delivered);
}

}  // namespace
}  // namespace cpr
