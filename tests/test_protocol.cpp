// The asynchronous path-vector protocol simulator: convergence to the
// synchronous fixed point for monotone algebras regardless of message
// timing, valley handling under BGP algebras, and link-failure
// reconvergence (implicit withdrawals).
#include "algebra/primitives.hpp"
#include "bgp/as_topology.hpp"
#include "bgp/valley_free.hpp"
#include "graph/generators.hpp"
#include "proto/path_vector_protocol.hpp"
#include "routing/path_vector.hpp"

#include <gtest/gtest.h>

namespace cpr {
namespace {

class ProtocolSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolSeeds, ConvergesToFixedPointShortestPath) {
  Rng rng(GetParam());
  const ShortestPath alg{16};
  const Graph g = erdos_renyi_connected(16, 0.3, rng);
  EdgeMap<std::uint64_t> w(g.edge_count());
  for (auto& x : w) x = alg.sample(rng);
  auto [dg, aw] = as_symmetric_digraph(g, w);

  const NodeId dest = 0;
  const auto truth = path_vector(alg, dg, aw, dest);
  PathVectorProtocol<ShortestPath> proto(alg, dg, aw);
  // Several asynchrony seeds: the final weights must be timing-invariant.
  for (std::uint64_t timing = 1; timing <= 3; ++timing) {
    Rng timing_rng(timing * 1000 + GetParam());
    const auto result = proto.run(dest, timing_rng);
    ASSERT_TRUE(result.converged);
    for (NodeId u = 1; u < g.node_count(); ++u) {
      ASSERT_TRUE(result.has_route(u)) << "u=" << u;
      ASSERT_TRUE(truth.reachable(u));
      EXPECT_TRUE(order_equal(alg, *result.weight[u], *truth.weight[u]))
          << "u=" << u << " timing=" << timing;
      // The selected path must realize the selected weight.
      const auto pw = weight_of_path(alg, dg, aw, result.path[u]);
      ASSERT_TRUE(pw.has_value());
      EXPECT_TRUE(order_equal(alg, *pw, *result.weight[u]));
    }
  }
}

TEST_P(ProtocolSeeds, ConvergesOnBgpTopologies) {
  Rng rng(GetParam() + 40);
  AsTopologyOptions opt;
  opt.nodes = 20;
  opt.tier1 = 2;
  opt.extra_peer_prob = 0.05;
  const AsTopology topo = generate_as_topology(opt, rng);
  const B3LocalPref b3;
  const auto labels = topo.labels();
  PathVectorProtocol<B3LocalPref> proto(b3, topo.graph, labels);

  const NodeId dest = static_cast<NodeId>(opt.nodes - 1);
  const auto truth = valley_free_reachability(topo, dest);
  Rng timing_rng(GetParam());
  const auto result = proto.run(dest, timing_rng);
  ASSERT_TRUE(result.converged);
  for (NodeId u = 0; u < topo.graph.node_count(); ++u) {
    if (u == dest) continue;
    const bool reachable = truth.klass[u] != ValleyFreeClass::kUnreachable;
    ASSERT_EQ(result.has_route(u), reachable) << "u=" << u;
    if (reachable) {
      EXPECT_EQ(*result.weight[u], truth.weight(u)) << "u=" << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ProtocolSeeds,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(Protocol, LineTopologyMessageCount) {
  // On a line, each node advertises once: messages = Θ(n).
  const ShortestPath alg;
  const Graph g = path_graph(10);
  EdgeMap<std::uint64_t> w(g.edge_count(), 1);
  auto [dg, aw] = as_symmetric_digraph(g, w);
  PathVectorProtocol<ShortestPath> proto(alg, dg, aw);
  Rng rng(1);
  const auto result = proto.run(0, rng);
  ASSERT_TRUE(result.converged);
  EXPECT_GE(result.messages_delivered, 9u);
  EXPECT_LE(result.messages_delivered, 40u);
  EXPECT_EQ(result.path[9].size(), 10u);
}

TEST(Protocol, LinkFailureTriggersReconvergence) {
  // Square 0-1-2-3: route 2→0 initially may use either side; failing the
  // arc (1,0) must leave 1 and 2 routed via 3.
  const ShortestPath alg;
  Graph g(4);
  EdgeMap<std::uint64_t> w;
  g.add_edge(0, 1);
  w.push_back(1);
  g.add_edge(1, 2);
  w.push_back(1);
  g.add_edge(2, 3);
  w.push_back(1);
  g.add_edge(3, 0);
  w.push_back(1);
  auto [dg, aw] = as_symmetric_digraph(g, w);
  PathVectorProtocol<ShortestPath> proto(alg, dg, aw);

  const ArcId failing = dg.find_arc(0, 1);
  ASSERT_NE(failing, kInvalidArc);
  Rng rng(3);
  const auto result =
      proto.run(0, rng, {}, {{/*time=*/50.0, /*arc=*/failing}});
  ASSERT_TRUE(result.converged);
  // After the failure, 1 must route via 2-3-0.
  ASSERT_TRUE(result.has_route(1));
  EXPECT_EQ(result.path[1], (NodePath{1, 2, 3, 0}));
  EXPECT_EQ(*result.weight[1], 3u);
  ASSERT_TRUE(result.has_route(2));
  EXPECT_EQ(*result.weight[2], 2u);
}

TEST(Protocol, PartitionWithdrawsRoutes) {
  // Failing the only link strands the far side with no route.
  const ShortestPath alg;
  Graph g(3);
  EdgeMap<std::uint64_t> w;
  g.add_edge(0, 1);
  w.push_back(1);
  g.add_edge(1, 2);
  w.push_back(1);
  auto [dg, aw] = as_symmetric_digraph(g, w);
  PathVectorProtocol<ShortestPath> proto(alg, dg, aw);
  const ArcId cut = dg.find_arc(0, 1);
  Rng rng(4);
  const auto result = proto.run(0, rng, {}, {{60.0, cut}});
  ASSERT_TRUE(result.converged);
  EXPECT_FALSE(result.has_route(1));
  EXPECT_FALSE(result.has_route(2));
}

TEST(Protocol, FailureBeforeAnnouncementIsHarmless) {
  const ShortestPath alg;
  const Graph g = ring(6);
  EdgeMap<std::uint64_t> w(g.edge_count(), 2);
  auto [dg, aw] = as_symmetric_digraph(g, w);
  PathVectorProtocol<ShortestPath> proto(alg, dg, aw);
  const ArcId cut = dg.find_arc(2, 3);
  Rng rng(5);
  // Fail at t=0 (before most announcements land): ring minus one edge is
  // a line; everything still converges with routes around the other way.
  const auto result = proto.run(0, rng, {}, {{0.0, cut}});
  ASSERT_TRUE(result.converged);
  for (NodeId u = 1; u < 6; ++u) {
    EXPECT_TRUE(result.has_route(u)) << "u=" << u;
  }
  EXPECT_EQ(*result.weight[3], 6u);  // 3-4-5-0, not 3-2-1-0
}

TEST(Protocol, RunAllDestinationsCoversEveryTarget) {
  const ShortestPath alg;
  const Graph g = ring(8);
  EdgeMap<std::uint64_t> w(g.edge_count(), 1);
  auto [dg, aw] = as_symmetric_digraph(g, w);
  PathVectorProtocol<ShortestPath> proto(alg, dg, aw);
  Rng rng(9);
  const auto all = proto.run_all_destinations(rng);
  ASSERT_EQ(all.size(), 8u);
  for (NodeId t = 0; t < 8; ++t) {
    EXPECT_TRUE(all[t].converged);
    for (NodeId u = 0; u < 8; ++u) {
      if (u == t) continue;
      ASSERT_TRUE(all[t].has_route(u)) << "u=" << u << " t=" << t;
      // Ring distances: min(|u-t|, 8-|u-t|).
      const std::uint64_t d = u > t ? u - t : t - u;
      EXPECT_EQ(*all[t].weight[u], std::min<std::uint64_t>(d, 8 - d));
    }
    // Adj-RIB state is populated (each node heard from both neighbors).
    for (NodeId u = 0; u < 8; ++u) {
      if (u != t) {
        EXPECT_GT(all[t].rib_path_nodes[u], 0u);
      }
    }
  }
}

TEST(Protocol, OscillationGuardReportsNonConvergence) {
  const ShortestPath alg;
  const Graph g = complete(6);
  EdgeMap<std::uint64_t> w(g.edge_count(), 1);
  auto [dg, aw] = as_symmetric_digraph(g, w);
  PathVectorProtocol<ShortestPath> proto(alg, dg, aw);
  Rng rng(6);
  ProtocolOptions opt;
  opt.max_events = 3;  // far too few to converge
  const auto result = proto.run(0, rng, opt);
  EXPECT_FALSE(result.converged);
}

}  // namespace
}  // namespace cpr
