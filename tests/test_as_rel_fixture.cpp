// End-to-end sweep over the checked-in CAIDA-style as-rel snapshot
// excerpt (tests/data/as_rel_caida_excerpt.txt.gz): gunzip → read_as_rel
// → as_rel_underlay → landmark scheme builds (Cowen and the
// name-independent TZ layer) → compile_fib → forward_batch — the full
// pipeline a measured dataset takes, on a topology with the real shape
// (tier-1 clique, transit hierarchy, stub fringe) rather than a G(n, p)
// draw. Skips cleanly when the build has no zlib.
#include "algebra/primitives.hpp"
#include "bgp/as_io.hpp"
#include "fib/compile.hpp"
#include "fib/forward_engine.hpp"
#include "routing/dijkstra.hpp"
#include "scheme/cowen.hpp"
#include "scheme/tz_name_independent.hpp"
#include "test_support.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace cpr {
namespace {

#ifndef CPR_TEST_DATA_DIR
#error "CPR_TEST_DATA_DIR must point at tests/data"
#endif

const std::string kFixture =
    std::string(CPR_TEST_DATA_DIR) + "/as_rel_caida_excerpt.txt.gz";

// GTEST_SKIP needs a void context, so the gate stays a macro used at the
// top of each test body.
#define CPR_SKIP_WITHOUT_FIXTURE()                                      \
  do {                                                                  \
    if (!as_rel_gz_supported()) {                                       \
      GTEST_SKIP() << "build has no zlib; gzipped fixture not loadable"; \
    }                                                                   \
    if (!std::ifstream(kFixture)) {                                     \
      GTEST_SKIP() << "fixture missing: " << kFixture;                  \
    }                                                                   \
  } while (false)

TEST(AsRelFixture, SnapshotLoadsWithRealisticShape) {
  CPR_SKIP_WITHOUT_FIXTURE();
  const AsRelLoadResult loaded = read_as_rel_gz(kFixture);
  const AsUnderlay u = as_rel_underlay(loaded);
  // The excerpt is a few thousand links over ~2k ASes; pin loose floors
  // so a silently truncated fixture fails loudly.
  EXPECT_GT(u.graph.node_count(), 1500u);
  EXPECT_GT(u.graph.edge_count(), 3000u);
  ASSERT_EQ(u.unit_weights.size(), u.graph.edge_count());
  ASSERT_EQ(u.asn_of_node.size(), u.graph.node_count());
  // Tier-1 clique members from the fixture header must be present.
  bool has_3356 = false;
  for (const std::uint64_t asn : u.asn_of_node) has_3356 |= (asn == 3356);
  EXPECT_TRUE(has_3356);
  // Connected: one Dijkstra from node 0 reaches everyone (the underlay
  // a scheme build needs — no AS is transit-less in the excerpt).
  EdgeMap<std::uint64_t> w(u.graph.edge_count());
  for (auto& x : w) x = 1;
  const ShortestPath alg{};
  const auto tree = dijkstra(alg, u.graph, w, 0);
  for (NodeId v = 0; v < u.graph.node_count(); ++v) {
    ASSERT_TRUE(tree.reachable(v)) << "AS graph disconnected at "
                                   << u.asn_of_node[v];
  }
}

// The full build → compile → serve sweep, both landmark schemes. Sampled
// queries must all deliver through the compiled plane (scalar and SIMD
// agreeing), and sampled TZ routes must sit within stretch 3 of the
// hop-count ground truth.
TEST(AsRelFixture, UnderlayBuildsCompilesAndServesEndToEnd) {
  CPR_SKIP_WITHOUT_FIXTURE();
  const AsRelLoadResult loaded = read_as_rel_gz(kFixture);
  const AsUnderlay u = as_rel_underlay(loaded);
  const Graph& g = u.graph;
  const std::size_t n = g.node_count();
  EdgeMap<std::uint64_t> w(g.edge_count());
  for (auto& x : w) x = 1;

  const ShortestPath alg{};
  Rng rng(2026);
  const auto scheme =
      TzNameIndependentScheme<ShortestPath>::build(alg, g, w, rng);
  ASSERT_FALSE(scheme.labels().is_identity());
  const FlatFib fib = compile_fib(scheme, g);
  EXPECT_EQ(fib.kind(), FibKind::kTz);
  EXPECT_EQ(fib.blob_version(), 4u);

  Rng qrng(7);
  std::vector<std::pair<NodeId, NodeId>> queries;
  for (std::size_t i = 0; i < 4000; ++i) {
    const NodeId s = static_cast<NodeId>(qrng.index(n));
    NodeId t = static_cast<NodeId>(qrng.index(n));
    if (t == s) t = static_cast<NodeId>((t + 1) % n);
    queries.push_back({s, t});
  }

  ThreadPool pool(4);
  FibBatchOptions opt;
  opt.pool = &pool;
  const FibBatchOutput scalar_out = [&] {
    FibBatchOptions o = opt;
    o.dispatch = FibDispatch::kScalar;
    return forward_batch(fib, queries, o);
  }();
  const FibBatchOutput simd_out = [&] {
    FibBatchOptions o = opt;
    o.dispatch = FibDispatch::kSimd;
    return forward_batch(fib, queries, o);
  }();
  ASSERT_EQ(scalar_out.results.size(), queries.size());
  EXPECT_EQ(test::batch_hash(scalar_out), test::batch_hash(simd_out))
      << "dispatch paths diverged on the AS underlay";
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(scalar_out.results[i].delivered)
        << "undelivered: AS " << u.asn_of_node[queries[i].first] << " -> "
        << u.asn_of_node[queries[i].second];
  }

  // Stretch spot-check against per-target Dijkstra ground truth on a
  // handful of sampled targets (full all-pairs would dwarf the suite).
  Rng trng(11);
  for (std::size_t k = 0; k < 12; ++k) {
    const NodeId t = static_cast<NodeId>(trng.index(n));
    const auto truth = dijkstra(alg, g, w, t);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (queries[i].second != t || queries[i].first == t) continue;
      const auto span = scalar_out.path(i);
      const NodePath path(span.begin(), span.end());
      const auto preferred = truth.weight(queries[i].first);
      ASSERT_TRUE(preferred.has_value());
      EXPECT_TRUE(test::path_weight_within_stretch(alg, g, w, path,
                                                   *preferred, 3))
          << "s=" << queries[i].first << " t=" << t;
    }
  }

  // And the plain Cowen build on the same underlay still compiles and
  // serves (the v3 pipeline the sweep used before the label layer).
  Rng crng(2027);
  const auto cowen = CowenScheme<ShortestPath>::build(alg, g, w, crng);
  const FlatFib cfib = compile_fib(cowen, g);
  EXPECT_EQ(cfib.kind(), FibKind::kCowen);
  const FibBatchOutput cowen_out = forward_batch(cfib, queries, opt);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(cowen_out.results[i].delivered) << "cowen undelivered " << i;
  }
}

// A corrupt gzip stream must be reported as such, not parsed as a prefix.
TEST(AsRelFixture, TruncatedGzipIsRejected) {
  CPR_SKIP_WITHOUT_FIXTURE();
  std::ifstream in(kFixture, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 512u);
  const std::string cut = bytes.substr(0, bytes.size() / 2);
  const std::string tmp = ::testing::TempDir() + "as_rel_truncated.gz";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << cut;
  }
  EXPECT_THROW(read_as_rel_gz(tmp), std::runtime_error);
}

}  // namespace
}  // namespace cpr
