// The storage/optimality trade-off, live: Cowen's stretch-3 scheme
// against full destination tables on a growing network.
//
//   $ ./compact_scheme_demo [nodes] [seed]
//
// Builds a random topology under shortest-path routing, constructs both
// schemes, routes a few thousand sampled packets through each, and prints
// the trade: the landmark scheme's tables are a fraction of the full
// tables, at the price of a bounded detour (algebraic stretch ≤ 3,
// Lemma 4) on out-of-cluster routes.
#include "algebra/primitives.hpp"
#include "graph/generators.hpp"
#include "scheme/cowen.hpp"
#include "scheme/dest_table.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include <iostream>

using namespace cpr;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 400;
  Rng rng(argc > 2 ? std::stoull(argv[2]) : 11);

  const ShortestPath alg{1024};
  const Graph g =
      erdos_renyi_connected(n, 6.0 / static_cast<double>(n - 1), rng);
  EdgeMap<std::uint64_t> w(g.edge_count());
  for (auto& x : w) x = alg.sample(rng);

  std::cout << "building schemes on " << n << " nodes / " << g.edge_count()
            << " edges...\n";
  // Materialized so the demo can read preferred weights off the trees.
  CowenOptions copt;
  copt.construction = CowenOptions::Construction::kMaterialized;
  const auto cowen = CowenScheme<ShortestPath>::build(alg, g, w, rng, copt);
  const auto tables = DestinationTableScheme::from_algebra(alg, g, w);

  // Route sampled demands through both schemes.
  Histogram stretch_hist(1.0, 3.0, 8);
  std::size_t direct = 0, via_landmark = 0;
  double worst_ratio = 1.0;
  for (int trial = 0; trial < 4000; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.index(n));
    const NodeId t = static_cast<NodeId>(rng.index(n));
    if (s == t) continue;
    const RouteResult r = simulate_route(cowen, g, s, t);
    if (!r.delivered) {
      std::cout << "undelivered pair! s=" << s << " t=" << t << "\n";
      return 1;
    }
    const auto achieved = weight_of_path(alg, g, w, r.path);
    const auto preferred = cowen.tree(t).weight(s);
    const double ratio = static_cast<double>(*achieved) /
                         static_cast<double>(*preferred);
    worst_ratio = std::max(worst_ratio, ratio);
    stretch_hist.add(ratio);
    (ratio == 1.0 ? direct : via_landmark) += 1;
  }

  const auto fp_cowen = measure_footprint(cowen, n);
  const auto fp_tables = measure_footprint(tables, n);

  TextTable table({"scheme", "max bits/node", "mean bits/node",
                   "label bits", "stretch guarantee"});
  table.add_row({"destination tables", TextTable::num(fp_tables.max_node_bits),
                 TextTable::num(fp_tables.mean_node_bits, 0),
                 TextTable::num(fp_tables.max_label_bits), "1 (preferred)"});
  table.add_row({"cowen landmarks (" + TextTable::num(cowen.landmark_count()) +
                     " landmarks)",
                 TextTable::num(fp_cowen.max_node_bits),
                 TextTable::num(fp_cowen.mean_node_bits, 0),
                 TextTable::num(fp_cowen.max_label_bits), "<= 3 (Lemma 4)"});
  table.print(std::cout);

  std::cout << "\nrouted demands: " << direct + via_landmark << " ("
            << direct << " at stretch 1, " << via_landmark
            << " detoured)\nworst observed multiplicative stretch: "
            << worst_ratio << "\n\nstretch histogram:\n"
            << stretch_hist.render(48);
  return 0;
}
