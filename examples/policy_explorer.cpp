// Interactive policy explorer: type a policy expression, get the paper's
// verdict on it — classification, the theorem that applies, the right
// scheme, and measured router memory on a sample topology.
//
//   $ ./policy_explorer "lex(shortest, widest)" [nodes] [seed]
//   $ ./policy_explorer "capped(shortest, 40)"
//   $ ./policy_explorer help
#include "algebra/policy_parser.hpp"
#include "algebra/property_check.hpp"
#include "graph/generators.hpp"
#include "routing/dijkstra.hpp"
#include "scheme/dest_table.hpp"
#include "scheme/spanning_tree.hpp"
#include "scheme/tree_router.hpp"

#include <iostream>

using namespace cpr;

int main(int argc, char** argv) {
  const std::string expr =
      argc > 1 ? argv[1] : std::string("lex(shortest, widest)");
  if (expr == "help" || expr == "--help") {
    std::cout << "usage: policy_explorer \"<policy>\" [nodes] [seed]\n"
              << "vocabulary:\n";
    for (const auto& word : policy_vocabulary()) {
      std::cout << "  " << word << "\n";
    }
    return 0;
  }
  const std::size_t n = argc > 2 ? std::stoul(argv[2]) : 64;
  Rng rng(argc > 3 ? std::stoull(argv[3]) : 7);

  AnyAlgebra policy;
  try {
    policy = parse_policy(expr);
  } catch (const PolicyParseError& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 1;
  }
  std::cout << "policy: " << policy.name() << "\n";

  // Classification (claims + empirical checker).
  const AlgebraProperties props = policy.properties();
  PropertyReport obs = check_properties_sampled(policy, rng, 16);
  obs.counterexamples.clear();
  std::cout << "checker: " << describe(obs) << "\n";
  for (const auto& v : validate_claims(props, obs)) {
    std::cout << "CLAIM VIOLATION: " << v << "\n";
  }

  std::cout << "\nverdict:\n";
  if (props.right_associative_only) {
    std::cout << "  non-commutative (BGP-style) algebra: use the "
                 "path-vector engine and the Section-5 schemes\n"
              << "  (see interdomain_bgp and bench_bgp).\n";
    return 0;
  }
  if (props.compressible_by_thm1()) {
    std::cout << "  Theorem 1: compressible — preferred spanning tree + "
                 "tree router, Theta(log n) bits.\n";
  } else if (props.incompressible_by_thm2()) {
    std::cout << "  Theorem 2: incompressible — Omega(n) bits per router."
              << (props.regular() && props.delimited
                      ? " Theorem 3: a stretch-3 Cowen scheme exists."
                      : "")
              << "\n";
  } else if (props.regular() && !props.delimited) {
    std::cout << "  regular but non-delimited: tables work, but stretch is "
                 "ill-defined (Section 4.1).\n";
  } else if (!props.isotone) {
    std::cout << "  non-isotone: destination-based forwarding is unsound "
                 "(Prop. 2); per-pair tables and Theorem 4 apply.\n";
  }

  // Deploy on a sample topology and measure.
  const Graph g =
      erdos_renyi_connected(n, 6.0 / static_cast<double>(n - 1), rng);
  EdgeMap<AnyWeight> w(g.edge_count());
  for (auto& x : w) x = policy.sample(rng);

  std::cout << "\ndeployment on a " << n << "-node / " << g.edge_count()
            << "-edge random topology:\n";
  if (props.regular()) {
    const auto tables = DestinationTableScheme::from_algebra(policy, g, w);
    std::size_t ok = 0;
    for (NodeId s = 0; s < g.node_count(); ++s) {
      ok += simulate_route(tables, g, s, (s + n / 2) % n).delivered ? 1 : 0;
    }
    const auto fp = measure_footprint(tables, n);
    std::cout << "  destination tables: " << fp.max_node_bits
              << " bits at the worst router, " << ok << "/" << n
              << " probes delivered\n";
  }
  if (props.compressible_by_thm1()) {
    const auto tree_edges = preferred_spanning_tree(policy, g, w);
    const TreeRouter router(g, tree_edges);
    const auto fp = measure_footprint(router, n);
    std::size_t ok = 0;
    for (NodeId s = 0; s < g.node_count(); ++s) {
      ok += simulate_route(router, g, s, (s + n / 3) % n).delivered ? 1 : 0;
    }
    std::cout << "  tree router:        " << fp.max_node_bits
              << " bits at the worst router, " << ok << "/" << n
              << " probes delivered\n";
  }

  // Show one preferred path.
  const auto tree = dijkstra(policy, g, w, 0);
  const NodeId far = static_cast<NodeId>(n - 1);
  if (tree.reachable(far)) {
    std::cout << "\npreferred 0 -> " << far << ":";
    for (NodeId hop : tree.extract_path(far)) std::cout << " " << hop;
    std::cout << "  weight " << policy.to_string(*tree.weight(far)) << "\n";
  }
  return 0;
}
