// Ethernet switching as usable-path routing — the paper's footnote 5:
// "the fact that Ethernet runs over what is called the Spanning Tree
// Protocol shows the expressiveness of Lemma 1."
//
//   $ ./ethernet_stp [switches] [seed]
//
// A switched LAN is a graph whose links are all equally usable (the U
// algebra: one finite weight, every traversable path equally preferred).
// U is selective + monotone, so Lemma 1 says a preferred spanning tree
// exists — that tree IS what STP computes — and Theorem 1 says forwarding
// over it needs only Θ(log n) state per switch, versus the Θ(n·log d) MAC
// table a naive flat design would burn. The demo builds the LAN, runs the
// Kruskal-by-⪯ construction (which for U is just "any spanning tree",
// exactly STP's attitude), routes frames through the tree router, and
// contrasts the two memory footprints. It also shows what STP gives up:
// cross-links are dark fiber (longer tree detours), measured as hop
// stretch.
#include "algebra/primitives.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "routing/dijkstra.hpp"
#include "scheme/dest_table.hpp"
#include "scheme/spanning_tree.hpp"
#include "scheme/tree_router.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include <iostream>

using namespace cpr;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 48;
  Rng rng(argc > 2 ? std::stoull(argv[2]) : 5);

  // A LAN with redundant uplinks: a random connected topology with mean
  // degree ~4 (the redundancy STP exists to tame).
  const Graph lan =
      erdos_renyi_connected(n, 4.0 / static_cast<double>(n - 1), rng);
  const UsablePath u;
  EdgeMap<UsablePath::Weight> w(lan.edge_count(), 1);

  std::cout << "LAN: " << n << " switches, " << lan.edge_count()
            << " links (" << lan.edge_count() - (n - 1)
            << " redundant)\n";

  // Lemma 1 constructive direction = STP: a preferred spanning tree.
  const auto tree_edges = preferred_spanning_tree(u, lan, w);
  std::cout << "STP blocks " << lan.edge_count() - tree_edges.size()
            << " ports; " << tree_edges.size() << " links forward.\n\n";

  const TreeRouter stp(lan, tree_edges);
  const auto mac_tables = DestinationTableScheme::from_algebra(u, lan, w);

  // Route every pair over the tree; record hop stretch vs the direct
  // (hop-count) optimum the blocked links could have offered.
  Summary stretch;
  {
    std::vector<double> ratios;
    for (NodeId s = 0; s < n; ++s) {
      const auto direct = bfs_distances(lan, s);
      for (NodeId t = 0; t < n; ++t) {
        if (s == t) continue;
        const RouteResult r = simulate_route(stp, lan, s, t);
        if (!r.delivered) {
          std::cout << "frame lost?! s=" << s << " t=" << t << "\n";
          return 1;
        }
        ratios.push_back(static_cast<double>(r.hops()) /
                         static_cast<double>(direct[t]));
      }
    }
    stretch = summarize(std::move(ratios));
  }

  TextTable table({"design", "state at the busiest switch", "frame paths"});
  const auto fp_tree = measure_footprint(stp, n);
  const auto fp_tables = measure_footprint(mac_tables, n);
  table.add_row({"STP + tree labels (Thm 1)",
                 TextTable::num(fp_tree.max_node_bits) + " bits",
                 "tree-only, mean hop stretch " +
                     TextTable::num(stretch.mean, 2) + " (max " +
                     TextTable::num(stretch.max, 2) + ")"});
  table.add_row({"flat MAC tables",
                 TextTable::num(fp_tables.max_node_bits) + " bits",
                 "shortest available, stretch 1"});
  table.print(std::cout);

  std::cout << "\nAll traversable paths are equally preferred under U, so "
               "the tree paths are *optimal in the\nalgebra* (weight-"
               "stretch 1) even while hop counts inflate — exactly why "
               "Lemma 1 lets\nEthernet get away with a tree.\n";
  return 0;
}
