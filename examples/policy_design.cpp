// Policy design workbench — the paper's conclusions pitch the algebraic
// framework as "guidelines to roughly classify routing policies": define
// a policy as an algebra, run the property checker, read off which
// theorem applies, and get the right scheme.
//
//   $ ./policy_design
//
// We walk three designs:
//   1. "bandwidth-tiers" — capacities bucketed into 4 service tiers
//      (selective ⇒ tree routing, Θ(log n)).
//   2. "tier-then-cost" — tiers with cost tie-break, a lexicographic
//      product (strictly monotone ⇒ Ω(n), but regular ⇒ stretch-3).
//   3. "delay-budget" — cost capped at a delay budget (regular but
//      non-delimited ⇒ even stretch-3 is ill-defined; Section 4.1).
#include "algebra/lex_product.hpp"
#include "algebra/more_algebras.hpp"
#include "algebra/primitives.hpp"
#include "algebra/property_check.hpp"
#include "algebra/subalgebra.hpp"
#include "graph/generators.hpp"
#include "scheme/spanning_tree.hpp"
#include "scheme/tree_router.hpp"

#include <iostream>

using namespace cpr;

namespace {

template <RoutingAlgebra A>
void classify(const A& alg) {
  std::cout << "policy: " << alg.name() << "\n";
  Rng rng(1);
  PropertyReport obs = check_properties_sampled(alg, rng, 16);
  const AlgebraProperties cl = alg.properties();
  const auto violations = validate_claims(cl, obs);
  obs.counterexamples.clear();  // flags only; the checker keeps details
  std::cout << "  checker: " << describe(obs) << "\n";
  std::cout << "  claims consistent: " << (violations.empty() ? "yes" : "NO")
            << "\n";
  if (cl.compressible_by_thm1()) {
    std::cout << "  => Theorem 1: selective+monotone — compressible, route "
                 "over the preferred spanning tree (Theta(log n) bits)\n";
  } else if (cl.incompressible_by_thm2()) {
    std::cout << "  => Theorem 2: delimited + strictly monotone — "
                 "incompressible, Omega(n) bits";
    if (cl.regular() && cl.delimited) {
      std::cout << "; Theorem 3: regular — stretch-3 Cowen scheme applies";
    }
    std::cout << "\n";
  } else if (cl.regular() && !cl.delimited) {
    std::cout << "  => regular but NOT delimited: destination tables are "
                 "correct, but \"stretch\" is ill-defined (Section 4.1) — "
                 "landmark detours may be untraversable\n";
  } else if (!cl.isotone) {
    std::cout << "  => non-isotone: destination-based forwarding breaks; "
                 "fall back to source-destination tables (O(n^2 log d)) "
                 "and mind Theorem 4\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== designing routing policies with the algebraic "
               "toolbox ===\n\n";

  // 1. Bandwidth tiers: widest path over a 4-value weight set. A
  //    subalgebra of W — still selective, still tree-routable.
  const Subalgebra<WidestPath> tiers(
      WidestPath{64},
      [](const WidestPath&, const std::uint64_t& w) {
        return w == 1 || w == 4 || w == 16 || w == 64;
      },
      WidestPath{}.properties(), "bandwidth-tiers");
  classify(tiers);

  // 2. Tiers with cost tie-break: S × tiers.
  const auto tier_cost = lex_product(ShortestPath{16}, tiers);
  classify(tier_cost);

  // 3. Delay budget: additive delay, paths beyond 50 forbidden.
  const auto budget = capped(ShortestPath{16}, std::uint64_t{50});
  classify(budget);

  // And put design #1 to work end to end.
  Rng rng(7);
  const Graph g = erdos_renyi_connected(64, 0.1, rng);
  EdgeMap<std::uint64_t> w(g.edge_count());
  for (auto& x : w) x = tiers.sample(rng);
  const auto tree = preferred_spanning_tree(tiers, g, w);
  const TreeRouter router(g, tree);
  const auto fp = measure_footprint(router, g.node_count());
  std::size_t delivered = 0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    delivered += simulate_route(router, g, s, (s + 17) % 64).delivered;
  }
  std::cout << "bandwidth-tiers deployed on 64 nodes: " << delivered
            << "/64 probes delivered, worst router " << fp.max_node_bits
            << " bits, labels " << fp.max_label_bits << " bits\n";
  return 0;
}
