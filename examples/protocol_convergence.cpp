// Watching a path-vector protocol converge — and reconverge after a
// link failure — on an AS hierarchy under the B3 local-preference policy.
//
//   $ ./protocol_convergence [nodes] [seed]
//
// The asynchronous simulator delivers every update message with random
// delay over FIFO channels; we print the message counts, convergence
// times, and the route a stub AS holds before and after losing the link
// to its primary provider.
#include "bgp/as_topology.hpp"
#include "bgp/valley_free.hpp"
#include "proto/path_vector_protocol.hpp"
#include "util/table.hpp"

#include <iostream>

using namespace cpr;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 48;
  Rng rng(argc > 2 ? std::stoull(argv[2]) : 21);

  AsTopologyOptions opt;
  opt.nodes = n;
  opt.tier1 = 3;
  opt.max_providers = 2;
  opt.extra_peer_prob = 0.02;
  const AsTopology topo = generate_as_topology(opt, rng);
  const B3LocalPref b3;
  const auto labels = topo.labels();
  const NodeId dest = static_cast<NodeId>(n - 1);

  std::cout << "AS topology: " << n << " ASes, "
            << topo.graph.arc_count() / 2
            << " relationships; destination AS " << dest << "\n\n";

  // Phase 1: cold convergence.
  PathVectorProtocol<B3LocalPref> proto(b3, topo.graph, labels);
  Rng timing(3);
  const auto cold = proto.run(dest, timing);
  std::cout << "cold start: " << cold.messages_delivered
            << " messages, converged at t=" << cold.convergence_time
            << "\n";

  // The exact solver must agree with what the protocol computed.
  const auto truth = valley_free_reachability(topo, dest);
  std::size_t agree = 0, routed = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (u == dest) continue;
    if (cold.has_route(u)) {
      ++routed;
      if (*cold.weight[u] == truth.weight(u)) ++agree;
    }
  }
  std::cout << "routes: " << routed << "/" << n - 1
            << " ASes routed; weight agreement with the valley-free "
               "solver: "
            << agree << "/" << routed << "\n\n";

  // Phase 2: fail the first arc on some AS's chosen path and reconverge.
  // Prefer a high-id (stub, likely multihomed) AS so the failure usually
  // has a backup route to fall over to.
  NodeId victim = kInvalidNode;
  for (NodeId u = static_cast<NodeId>(n); u-- > 0 && victim == kInvalidNode;) {
    if (u == dest || !cold.has_route(u) || cold.path[u].size() < 3) continue;
    std::size_t providers = 0;
    for (ArcId a : topo.graph.out_arcs(u)) {
      providers += topo.relation[a] == Relationship::kProvider ? 1 : 0;
    }
    if (providers >= 2) victim = u;  // multihomed: a backup route exists
  }
  if (victim == kInvalidNode) {
    std::cout << "no multi-hop route to fail; try another seed\n";
    return 0;
  }
  const ArcId failing_arc =
      topo.graph.find_arc(cold.path[victim][0], cold.path[victim][1]);
  std::cout << "failing the link " << cold.path[victim][0] << " -- "
            << cold.path[victim][1] << " (AS " << victim
            << "'s next hop) at t=" << cold.convergence_time + 50 << "\n";

  Rng timing2(3);
  const auto warm = proto.run(
      dest, timing2, {},
      {{cold.convergence_time + 50.0, failing_arc}});
  std::cout << "with failure: " << warm.messages_delivered
            << " messages total ("
            << warm.messages_delivered - cold.messages_delivered
            << " extra for reconvergence)\n";

  TextTable table({"AS " + std::to_string(victim), "path", "weight"});
  auto render = [](const NodePath& p) {
    std::string s;
    for (std::size_t i = 0; i < p.size(); ++i) {
      s += std::to_string(p[i]) + (i + 1 < p.size() ? "-" : "");
    }
    return s;
  };
  table.add_row({"before failure", render(cold.path[victim]),
                 cold.has_route(victim) ? to_cstr(*cold.weight[victim]) : "-"});
  table.add_row({"after failure", render(warm.path[victim]),
                 warm.has_route(victim) ? to_cstr(*warm.weight[victim]) : "-"});
  table.print(std::cout);

  std::cout << "\nImplicit withdrawals propagate and the protocol settles "
               "on the next-best valley-free route\n(or none, if the "
               "failure partitioned the hierarchy).\n";
  return 0;
}
