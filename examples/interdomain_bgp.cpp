// Inter-domain (BGP) policy routing over a synthetic AS hierarchy.
//
//   $ ./interdomain_bgp [nodes] [tier1] [seed]
//
// Generates a Gao–Rexford-style AS topology (provider/customer/peer
// relationships), checks the paper's assumptions A1 (global reachability)
// and A2 (no provider loops), computes valley-free routes under the
// local-preference algebra B3, and builds the Theorem-6/7 compact schemes
// whose per-node state is logarithmic — versus the linear destination
// tables a naive deployment would use.
#include "bgp/bgp_schemes.hpp"
#include "routing/path_vector.hpp"
#include "util/table.hpp"

#include <iostream>

using namespace cpr;

int main(int argc, char** argv) {
  AsTopologyOptions opt;
  opt.nodes = argc > 1 ? std::stoul(argv[1]) : 64;
  opt.tier1 = argc > 2 ? std::stoul(argv[2]) : 3;
  opt.max_providers = 2;
  Rng rng(argc > 3 ? std::stoull(argv[3]) : 42);
  const AsTopology topo = generate_as_topology(opt, rng);

  std::cout << "AS topology: " << topo.graph.node_count() << " ASes, "
            << topo.graph.arc_count() / 2 << " relationships, "
            << topo.roots().size() << " tier-1 roots\n";
  std::cout << "A1 (global reachability): "
            << (satisfies_a1_global_reachability(topo) ? "holds" : "violated")
            << "\n";
  std::cout << "A2 (no provider loops):   "
            << (satisfies_a2_no_provider_loops(topo) ? "holds" : "violated")
            << "\n\n";

  // Valley-free routes toward a stub AS under B3 (customer ≺ peer ≺
  // provider): where does each class of route come from?
  const NodeId stub = static_cast<NodeId>(topo.graph.node_count() - 1);
  const auto reach = valley_free_reachability(topo, stub);
  std::size_t down = 0, peer = 0, up = 0;
  for (NodeId v = 0; v < topo.graph.node_count(); ++v) {
    switch (reach.klass[v]) {
      case ValleyFreeClass::kDown: ++down; break;
      case ValleyFreeClass::kPeer: ++peer; break;
      case ValleyFreeClass::kUp: ++up; break;
      default: break;
    }
  }
  std::cout << "routes toward AS " << stub
            << " by class: customer=" << down << " peer=" << peer
            << " provider=" << up << "\n";
  const NodeId probe = 1;
  std::cout << "AS " << probe << " reaches AS " << stub << " via:";
  for (NodeId hop : reach.extract_path(probe)) std::cout << " " << hop;
  std::cout << " (weight " << to_cstr(reach.weight(probe)) << ")\n\n";

  // Cross-check with the path-vector protocol simulation.
  const B3LocalPref b3;
  const auto pv = path_vector(b3, topo.graph, topo.labels(), stub);
  std::cout << "path-vector converged in " << pv.rounds << " rounds; "
            << "weight agreement with the direct solver: "
            << (pv.reachable(probe) &&
                        order_equal(b3, *pv.weight[probe],
                                    reach.weight(probe))
                    ? "yes"
                    : "NO")
            << "\n\n";

  // Compact schemes (Theorems 6 and 7) vs the table baseline.
  TextTable table({"scheme", "theorem", "max bits/node", "max label bits"});
  const Graph shadow = topo.graph.undirected_shadow();
  {
    const auto base = bgp_destination_tables(topo, shadow);
    const auto fp = measure_footprint(base, shadow.node_count());
    table.add_row({"destination tables", "baseline (Obs. 1)",
                   TextTable::num(fp.max_node_bits),
                   TextTable::num(fp.max_label_bits)});
  }
  if (topo.roots().size() == 1) {
    const ProviderTreeScheme scheme(topo);
    const auto fp = measure_footprint(scheme, shadow.node_count());
    table.add_row({"provider tree", "Theorem 6",
                   TextTable::num(fp.max_node_bits),
                   TextTable::num(fp.max_label_bits)});
  } else {
    const SvfcPeerMeshScheme scheme(topo);
    const auto fp = measure_footprint(scheme, shadow.node_count());
    table.add_row({"SVFC + peer mesh (" +
                       TextTable::num(scheme.component_count()) +
                       " components)",
                   "Theorem 7", TextTable::num(fp.max_node_bits),
                   TextTable::num(fp.max_label_bits)});
    // Spot-check a cross-component route.
    const RouteResult r = simulate_route(scheme, scheme.shadow(), probe, stub);
    std::cout << "compact-scheme route " << probe << " -> " << stub << ":";
    for (NodeId hop : r.path) std::cout << " " << hop;
    std::cout << " (delivered: " << r.delivered << ")\n";
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nEqual-preference valley-free routing compresses to "
               "O(log n) bits per AS under A1+A2\n"
               "(Theorems 6-7); adding local preference (B3) forfeits that "
               "(Theorem 8).\n";
  return 0;
}
