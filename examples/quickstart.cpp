// Quickstart: define a routing policy as an algebra, compute preferred
// paths, build a routing scheme, and route a packet hop by hop.
//
//   $ ./quickstart
//
// The scenario: a small ISP backbone where links have both a cost and a
// capacity, routed under the widest-shortest path policy WS = S × W
// (cheapest path, capacity as the tie-break) — the composite algebra from
// Section 2.2 of the paper.
#include "algebra/lex_product.hpp"
#include "algebra/primitives.hpp"
#include "algebra/property_check.hpp"
#include "routing/dijkstra.hpp"
#include "routing/shortest_widest.hpp"
#include "scheme/dest_table.hpp"

#include <iostream>

using namespace cpr;

int main() {
  // 1. A small backbone: 6 routers, links carry (cost, capacity).
  Graph g(6);
  EdgeMap<WidestShortest::Weight> weights;
  auto link = [&](NodeId u, NodeId v, std::uint64_t cost,
                  std::uint64_t capacity) {
    g.add_edge(u, v);
    weights.push_back({cost, capacity});
  };
  link(0, 1, 1, 10);
  link(1, 2, 1, 10);
  link(2, 5, 1, 1);   // cheap but thin path to 5
  link(0, 3, 2, 100);
  link(3, 4, 2, 100);
  link(4, 5, 2, 100); // pricier but fat path to 5
  link(1, 4, 3, 50);

  // 2. The policy: widest-shortest path, a lexicographic product.
  const WidestShortest ws;  // = ShortestPath × WidestPath
  std::cout << "policy: " << ws.name() << "\n";

  // 3. Inspect its algebraic properties — this decides which machinery
  //    applies (Table 1 of the paper).
  const AlgebraProperties props = ws.properties();
  std::cout << "regular (monotone+isotone): " << std::boolalpha
            << props.regular() << "\n"
            << "strictly monotone:          " << props.strictly_monotone
            << "\n"
            << "=> destination-based tables are correct (Prop. 2), but no\n"
            << "   sublinear tables exist (Thm 2); stretch-3 compact "
               "routing does (Thm 3).\n\n";

  // 4. Preferred paths from router 0 (generalized Dijkstra — sound
  //    because WS is regular).
  const auto tree = dijkstra(ws, g, weights, 0);
  for (NodeId t = 1; t < g.node_count(); ++t) {
    std::cout << "preferred 0 -> " << t << ": ";
    for (NodeId hop : tree.extract_path(t)) std::cout << hop << " ";
    std::cout << " weight = " << ws.to_string(*tree.weight(t)) << "\n";
  }

  // 5. Build destination tables (Observation 1) and route a packet.
  const auto scheme = DestinationTableScheme::from_algebra(ws, g, weights);
  const RouteResult r = simulate_route(scheme, g, /*source=*/0, /*target=*/5);
  std::cout << "\nrouted packet 0 -> 5 over:";
  for (NodeId hop : r.path) std::cout << " " << hop;
  std::cout << "\ndelivered: " << r.delivered << "\n";

  // 6. What does this cost in router memory? (Definition 2, bit-exact.)
  const auto fp = measure_footprint(scheme, g.node_count());
  std::cout << "worst-router table size: " << fp.max_node_bits
            << " bits; address size: " << fp.max_label_bits << " bits\n";
  return 0;
}
