// QoS routing scenario: one network, four policies.
//
//   $ ./qos_routing [nodes] [seed]
//
// Builds a random service-provider topology with per-link cost, capacity
// and reliability, then routes the same source–destination demand under
// four policies from Table 1 — shortest path, widest path, most-reliable
// path, and shortest-widest path — showing how the preferred route and
// the router-memory footprint change with the policy. This is the
// "broader set of path attributes" motivation from the paper's
// introduction made concrete.
#include "algebra/lex_product.hpp"
#include "algebra/primitives.hpp"
#include "graph/generators.hpp"
#include "routing/dijkstra.hpp"
#include "routing/exhaustive.hpp"
#include "routing/shortest_widest.hpp"
#include "scheme/dest_table.hpp"
#include "scheme/spanning_tree.hpp"
#include "scheme/tree_router.hpp"
#include "util/table.hpp"

#include <iostream>
#include <sstream>

using namespace cpr;

namespace {

std::string render_path(const NodePath& p) {
  std::ostringstream out;
  for (std::size_t i = 0; i < p.size(); ++i) {
    out << p[i] << (i + 1 < p.size() ? "-" : "");
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 24;
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 7;
  Rng rng(seed);

  // One topology, three independent link attributes.
  const Graph g = erdos_renyi_connected(n, 3.0 / static_cast<double>(n) + 0.08, rng);
  const auto cost = random_integer_weights(g, 1, 20, rng);
  const auto capacity = random_integer_weights(g, 1, 100, rng);
  EdgeMap<double> reliability(g.edge_count());
  for (auto& r : reliability) {
    r = static_cast<double>(rng.uniform(90, 100)) / 100.0;
  }
  EdgeMap<ShortestWidest::Weight> cap_cost(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    cap_cost[e] = {capacity[e], cost[e]};
  }

  const NodeId src = 0;
  const NodeId dst = static_cast<NodeId>(n - 1);
  std::cout << "demand: " << src << " -> " << dst << " on a " << n
            << "-node topology (" << g.edge_count() << " links)\n\n";

  TextTable table({"policy", "preferred path", "weight", "worst router bits",
                   "scheme"});

  {  // Shortest path: destination tables (incompressible, Θ(n)).
    const ShortestPath s;
    const auto tree = dijkstra(s, g, cost, src);
    const auto scheme = DestinationTableScheme::from_algebra(s, g, cost);
    table.add_row({s.name(), render_path(tree.extract_path(dst)),
                   s.to_string(*tree.weight(dst)),
                   TextTable::num(measure_footprint(scheme, n).max_node_bits),
                   "dest tables"});
  }
  {  // Widest path: preferred spanning tree (compressible, Θ(log n)).
    const WidestPath w;
    const auto tree = dijkstra(w, g, capacity, src);
    const auto st = preferred_spanning_tree(w, g, capacity);
    const TreeRouter router(g, st);
    table.add_row({w.name(), render_path(tree.extract_path(dst)),
                   w.to_string(*tree.weight(dst)),
                   TextTable::num(measure_footprint(router, n).max_node_bits),
                   "tree router"});
  }
  {  // Most reliable path (multiplicative, incompressible).
    const MostReliablePath r;
    const auto tree = dijkstra(r, g, reliability, src);
    const auto scheme =
        DestinationTableScheme::from_algebra(r, g, reliability);
    table.add_row({r.name(), render_path(tree.extract_path(dst)),
                   r.to_string(*tree.weight(dst)),
                   TextTable::num(measure_footprint(scheme, n).max_node_bits),
                   "dest tables"});
  }
  {  // Shortest-widest: non-isotone — needs the exact solver and per-pair
     // tables (the Õ(n²) fallback).
    const ShortestWidest sw;
    const auto row = shortest_widest_exact(sw, g, cap_cost, src);
    table.add_row({sw.name(), render_path(row.paths[dst]),
                   sw.to_string(*row.weight[dst]), "-",
                   "src-dest tables (see bench_table1)"});
  }
  table.print(std::cout);

  std::cout << "\nSame links, four different 'best' routes — and two very "
               "different memory regimes:\n"
               "selective policies ride a spanning tree in O(log n) bits; "
               "strictly monotone ones pin\n"
               "Θ(n)-bit tables to every router (Theorems 1 and 2).\n";
  return 0;
}
