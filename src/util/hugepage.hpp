// Transparent-huge-page advice for large flat arenas.
//
// The compiled FIB arenas (src/fib) are a few MB of randomly probed flat
// arrays; at n=50k the per-hop walk touches 3-4 sections spread over
// hundreds of 4 KiB pages, so on top of the data-cache misses the walk
// pays dTLB misses. Backing the arena with 2 MiB transparent huge pages
// collapses the page count by 512x and takes the TLB out of the picture.
// THP in "madvise" mode (the common distro default) only promotes ranges
// an application asks about, so FlatFib and ArenaStore advise their
// backing stores explicitly; in "always" mode the advice is a no-op and
// in "never" mode it fails silently — either way forwarding results are
// unaffected, only the page size changes.
#pragma once

#include <cstddef>

namespace cpr {

// Arenas below this size span too few pages for TLB pressure to matter;
// skip the syscall. 2 MiB is the x86-64 huge page size, so smaller
// regions could not be promoted anyway.
inline constexpr std::size_t kHugePageMinBytes = 2u << 20;

// Advises the kernel (madvise MADV_HUGEPAGE) to back the given range
// with transparent huge pages. The range is shrunk to the page-aligned
// interior, so any buffer is acceptable, not just page-aligned ones.
// Returns true when the advice was accepted; false when the range is too
// small once aligned, the kernel lacks THP, or madvise rejects the
// mapping (e.g. some file-backed maps) — callers treat false as "serve
// from 4 KiB pages", never as an error.
bool advise_huge_pages(const void* data, std::size_t bytes);

// Reads /sys/kernel/mm/transparent_hugepage/enabled and reports the
// bracketed mode: "always", "madvise", "never", or "unavailable" when
// the file is missing (no THP support). Recorded in bench metadata so
// BENCH_*.json baselines say what page backing they measured.
const char* transparent_hugepage_mode();

}  // namespace cpr
