// Small statistics toolkit used by the benchmark harness: summaries,
// histograms, and the log-log slope fit that classifies measured memory
// growth as Θ(log n) / Θ(n) / Θ(n²) in the Table-1 reproduction.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cpr {

struct Summary {
  std::size_t count = 0;
  double min = 0, max = 0, mean = 0, stddev = 0;
  double p50 = 0, p90 = 0, p99 = 0;
};

Summary summarize(std::vector<double> values);

// Least-squares fit of y = a + b*x.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
  double r2 = 0;
};

LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y);

// Growth-classification helper: fits log(y) against log(x) and against
// log(log(x)). Reports the power-law exponent and which of the candidate
// shapes {log n, sqrt(n), n, n^2} explains the data best.
struct GrowthClass {
  double power_exponent = 0;   // b in y ~ x^b
  double power_r2 = 0;
  std::string best_label;      // "log n", "sqrt(n)", "n", "n^2"
};

GrowthClass classify_growth(const std::vector<double>& n,
                            const std::vector<double>& bits);

// Fixed-bin histogram over [lo, hi]; values outside are clamped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double v);
  std::string render(std::size_t width = 40) const;
  std::size_t total() const { return total_; }

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace cpr
