// Bit-exact serialization primitives.
//
// Every routing scheme in this library reports its per-node memory
// footprint as the length of a real, decodable bit stream produced through
// BitWriter (see Definition 2 in the paper: M_A(R,u) is the number of bits
// needed to encode the local routing function R_u). Keeping the encoding
// honest — instead of quoting asymptotic formulas — is what lets the
// benchmarks distinguish Θ(log n) from Θ(n) empirically.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace cpr {

// Append-only bit buffer. Bits are packed LSB-first into bytes.
class BitWriter {
 public:
  // Appends the low `nbits` bits of `value` (0 <= nbits <= 64).
  void write_bits(std::uint64_t value, unsigned nbits);

  // Appends a single bit.
  void write_bit(bool bit) { write_bits(bit ? 1 : 0, 1); }

  // LEB128-style variable-length encoding: 7 payload bits per chunk plus a
  // continuation bit. Costs 8*ceil(bits(value)/7) bits.
  void write_varint(std::uint64_t value);

  // Elias-gamma code for value >= 1: 2*floor(log2 v) + 1 bits. This is the
  // code used for the telescoping light-port sequences in the tree router.
  void write_gamma(std::uint64_t value);

  // Fixed-width encoding sized for values in [0, universe): uses
  // ceil(log2(universe)) bits (1 bit minimum).
  void write_bounded(std::uint64_t value, std::uint64_t universe);

  // Pads with zero bits to the next byte boundary. Framing for the raw
  // byte sections of the FIB blob format (fib/flat_fib.hpp): bit-packed
  // header fields first, then aligned bulk arrays appended bytewise.
  void align_to_byte();

  // Appends nbytes raw bytes. Requires byte alignment (call align_to_byte
  // first); unlike write_bits this is a bulk append, not a per-bit loop,
  // so multi-megabyte arena sections serialize at memcpy speed.
  void write_raw(const void* data, std::size_t nbytes);

  std::size_t bit_count() const { return bit_count_; }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

// Sequential reader over a BitWriter's output. Decoding every field back is
// the round-trip check the unit tests use to prove the reported sizes are
// not fictional.
class BitReader {
 public:
  explicit BitReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(&bytes) {}

  std::uint64_t read_bits(unsigned nbits);
  bool read_bit() { return read_bits(1) != 0; }
  std::uint64_t read_varint();
  std::uint64_t read_gamma();
  std::uint64_t read_bounded(std::uint64_t universe);

  // Mirror of BitWriter::align_to_byte / write_raw: skips to the next
  // byte boundary, then bulk-copies nbytes (throws std::out_of_range past
  // the end, like read_bits).
  void align_to_byte();
  void read_raw(void* out, std::size_t nbytes);

  std::size_t position() const { return pos_; }
  bool exhausted() const { return pos_ >= bytes_->size() * 8; }

 private:
  const std::vector<std::uint8_t>* bytes_;
  std::size_t pos_ = 0;
};

// Number of bits in the minimal binary representation of v (0 -> 1).
unsigned bit_width_of(std::uint64_t v);

// ceil(log2(universe)) with a 1-bit floor; the per-entry cost of an index
// into a table of `universe` slots.
unsigned bits_for_universe(std::uint64_t universe);

}  // namespace cpr
