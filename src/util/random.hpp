// Deterministic, seedable randomness for generators, schemes and tests.
//
// Everything stochastic in the library (topology generators, landmark
// sampling in the Cowen scheme, property-checker weight sampling) threads
// an explicit Rng so experiments are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace cpr {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
      : seed_(seed), engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  // Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform(0, n == 0 ? 0 : n - 1));
  }

  // Uniform real in [0, 1).
  double real() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  bool coin(double p) { return real() < p; }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  // Samples k distinct values from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k) {
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::swap(pool[i], pool[i + index(n - i)]);
    }
    pool.resize(k);
    return pool;
  }

  std::mt19937_64& engine() { return engine_; }

  // Deterministic child stream for parallel task `stream`: the returned
  // Rng is a pure function of (construction seed, stream), independent of
  // how much this Rng has been consumed and of any thread schedule. This
  // is what keeps parallel constructions bit-identical across thread
  // counts — task i always draws from fork(i), never from a shared stream.
  //
  // This independence is also what the pooled per-thread scratch buffers
  // (e.g. the thread_local Dijkstra heap in routing/dijkstra.hpp) lean
  // on: a worker's scratch may have served any mix of earlier tasks, so
  // nothing random may flow through it — randomness enters a task only
  // via its fork stream, and scratch state is fully reset per run.
  // test_parallel_determinism.cpp pins both halves of this contract.
  Rng fork(std::uint64_t stream) const {
    // splitmix64 finalizer over seed ⊕ golden-ratio-scrambled stream id.
    std::uint64_t z = seed_ + 0x9e3779b97f4a7c15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return Rng(z ^ (z >> 31));
  }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace cpr
