#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace cpr {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string TextTable::num(std::size_t v) { return std::to_string(v); }

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : header_[c];
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  line(header_);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) line(row);
}

std::string TextTable::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

}  // namespace cpr
