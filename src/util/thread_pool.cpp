#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>

namespace cpr {
namespace {

// Which worker of which pool the current thread is; unset on non-pool
// threads. Lets push() use the local deque and try_pop() know whom to
// steal for.
thread_local ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_worker = static_cast<std::size_t>(-1);

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::push(std::function<void()> task) {
  if (tls_pool == this) {
    WorkerQueue& q = *queues_[tls_worker];
    std::lock_guard<std::mutex> lock(q.mutex);
    q.deque.push_back(std::move(task));
  } else {
    std::lock_guard<std::mutex> lock(injection_mutex_);
    injection_.push_back(std::move(task));
  }
  wake_.notify_one();
}

bool ThreadPool::try_pop(std::size_t worker, std::function<void()>& out) {
  {  // Own deque, back first (LIFO keeps nested work hot).
    WorkerQueue& q = *queues_[worker];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.deque.empty()) {
      out = std::move(q.deque.back());
      q.deque.pop_back();
      return true;
    }
  }
  {  // Injection queue, FIFO.
    std::lock_guard<std::mutex> lock(injection_mutex_);
    if (!injection_.empty()) {
      out = std::move(injection_.front());
      injection_.pop_front();
      return true;
    }
  }
  // Steal from the front of a victim's deque (the oldest task is likely
  // the largest remaining piece of work).
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& q = *queues_[(worker + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.deque.empty()) {
      out = std::move(q.deque.front());
      q.deque.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_pool = this;
  tls_worker = index;
  std::function<void()> task;
  for (;;) {
    if (try_pop(index, task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stopping_) {
      // Drain anything pushed between the failed try_pop above and the
      // stop flag: every task submitted before the destructor runs.
      lock.unlock();
      while (try_pop(index, task)) {
        task();
        task = nullptr;
      }
      return;
    }
    // The timed wait covers the benign race where a push lands between the
    // failed try_pop and this wait (push does not hold sleep_mutex_).
    wake_.wait_for(lock, std::chrono::milliseconds(2));
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool* pool = [] {
    std::size_t threads = 0;
    if (const char* env = std::getenv("CPR_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) threads = static_cast<std::size_t>(v);
    }
    return new ThreadPool(threads);  // leaked: must outlive static dtors
  }();
  return *pool;
}

void parallel_for_impl(
    ThreadPool& pool, std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t total = end - begin;
  const std::size_t chunks = (total + grain - 1) / grain;

  struct State {
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::size_t chunks = 0;
    std::mutex mutex;
    std::condition_variable all_done;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  state->chunks = chunks;

  // Chunk executor shared by the caller and the pool helpers. `body` is
  // captured by reference: any drain() that claims a chunk (cursor <
  // chunks) implies the caller is still blocked below, so the reference is
  // alive; stale helpers that start after completion bail on the first
  // cursor check without touching it.
  auto drain = [state, begin, end, grain, &body]() {
    for (;;) {
      const std::size_t c =
          state->cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= state->chunks) return;
      if (!state->failed.load(std::memory_order_acquire)) {
        const std::size_t lo = begin + c * grain;
        const std::size_t hi = std::min(end, lo + grain);
        try {
          body(lo, hi);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->mutex);
          if (!state->error) state->error = std::current_exception();
          state->failed.store(true, std::memory_order_release);
        }
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->chunks) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->all_done.notify_all();
      }
    }
  };

  // One helper per worker is enough: each drains chunks until the cursor
  // runs out. The caller drains too, so progress never depends on the pool
  // actually scheduling the helpers (nested calls, single-thread pools).
  const std::size_t helpers = std::min(pool.thread_count(), chunks - 1);
  for (std::size_t i = 0; i < helpers; ++i) pool.push(drain);
  drain();
  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) >= state->chunks;
  });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace cpr
