// Work-stealing thread pool and deterministic parallel-for.
//
// The constructions in this library are embarrassingly parallel — per-root
// policy-Dijkstra runs, per-node ball/cluster scans, per-query route
// simulations — so a single shared pool with per-worker deques (owner
// pushes/pops at the back, thieves steal from the front) covers all of
// them. Two design rules keep parallel construction *bit-identical* to the
// sequential one regardless of thread count, which the determinism tests
// pin:
//
//   1. Parallel loops only ever write to disjoint, pre-sized output slots
//      indexed by the loop variable; scheduling order is irrelevant.
//   2. Reductions happen on the calling thread after the loop, in index
//      order (ordered reduction), never via shared accumulators.
//
// Randomness is never drawn inside a parallel region; tasks that need it
// take a per-task Rng forked from the master seed (Rng::fork), so the
// stream consumed by task i is a pure function of (seed, i).
//
// parallel_for is nesting-safe: the calling thread participates in
// executing chunks, so an inner parallel_for issued from a worker makes
// progress even if every other worker is busy — no deadlock, and a pool
// with zero threads degrades to plain sequential execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cpr {

class ThreadPool {
 public:
  // threads == 0 asks for hardware_concurrency (at least 1 worker).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  // Schedules a task; the future carries the result or the exception the
  // task threw. Called from a worker thread, the task lands on that
  // worker's own deque (LIFO for locality); otherwise on the injection
  // queue.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    push([task]() { (*task)(); });
    return future;
  }

  // The process-wide pool used when callers do not pass one explicitly.
  // Sized from the CPR_THREADS environment variable when set, else
  // hardware_concurrency.
  static ThreadPool& global();

  // Fire-and-forget variant of submit (no future, no result).
  void push(std::function<void()> task);

 private:
  // Pops one task for `worker` (own deque → injection queue → steal).
  bool try_pop(std::size_t worker, std::function<void()>& out);
  void worker_loop(std::size_t index);

  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> deque;
  };

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex injection_mutex_;
  std::deque<std::function<void()>> injection_;

  std::mutex sleep_mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

// Runs f(i) for i in [begin, end). The range is split into chunks of
// `grain` indices handed out through an atomic cursor; the caller executes
// chunks too and returns only when every index has been processed. The
// first exception thrown by any f(i) is rethrown on the caller (further
// chunks are abandoned, in-flight ones drain). Output must be written to
// disjoint slots for determinism — see the header comment.
void parallel_for_impl(ThreadPool& pool, std::size_t begin, std::size_t end,
                       std::size_t grain,
                       const std::function<void(std::size_t, std::size_t)>& body);

template <typename F>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, F&& f,
                  std::size_t grain = 1) {
  const auto body = [&f](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
  };
  parallel_for_impl(pool, begin, end, grain, body);
}

// Block variant: f(lo, hi) receives whole chunks, so per-chunk scratch
// state (arenas, header caches) amortizes across `grain` iterations.
template <typename F>
void parallel_for_blocks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         std::size_t grain, F&& f) {
  parallel_for_impl(pool, begin, end, grain,
                    [&f](std::size_t lo, std::size_t hi) { f(lo, hi); });
}

}  // namespace cpr
