#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace cpr {

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  double sum = 0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double var = 0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(var / static_cast<double>(values.size() - 1))
                 : 0.0;
  auto pct = [&](double q) {
    const double idx = q * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return values[lo] * (1 - frac) + values[hi] * frac;
  };
  s.p50 = pct(0.50);
  s.p90 = pct(0.90);
  s.p99 = pct(0.99);
  return s;
}

LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  LinearFit f;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return f;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return f;
  f.slope = (dn * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / dn;
  double ss_res = 0, ss_tot = 0;
  const double ybar = sy / dn;
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = f.intercept + f.slope * x[i];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - ybar) * (y[i] - ybar);
  }
  f.r2 = ss_tot > 1e-12 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

GrowthClass classify_growth(const std::vector<double>& n,
                            const std::vector<double>& bits) {
  GrowthClass g;
  const std::size_t k = std::min(n.size(), bits.size());
  if (k < 2) return g;

  std::vector<double> ln(k), lb(k);
  for (std::size_t i = 0; i < k; ++i) {
    ln[i] = std::log(n[i]);
    lb[i] = std::log(std::max(bits[i], 1.0));
  }
  const LinearFit power = fit_line(ln, lb);
  g.power_exponent = power.slope;
  g.power_r2 = power.r2;

  // Candidate shapes: residual of bits against c * shape(n), c chosen by
  // least squares through the origin. Smallest normalized residual wins.
  struct Candidate {
    const char* label;
    double (*shape)(double);
  };
  static const Candidate candidates[] = {
      {"log n", [](double x) { return std::log2(std::max(x, 2.0)); }},
      {"sqrt(n)", [](double x) { return std::sqrt(x); }},
      {"n", [](double x) { return x; }},
      {"n^2", [](double x) { return x * x; }},
  };
  double best = -1;
  for (const auto& c : candidates) {
    double num = 0, den = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const double s = c.shape(n[i]);
      num += s * bits[i];
      den += s * s;
    }
    const double coeff = den > 0 ? num / den : 0;
    double res = 0, tot = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const double pred = coeff * c.shape(n[i]);
      res += (bits[i] - pred) * (bits[i] - pred);
      tot += bits[i] * bits[i];
    }
    const double score = tot > 0 ? 1.0 - res / tot : 0.0;
    if (score > best) {
      best = score;
      g.best_label = c.label;
    }
  }
  return g;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double v) {
  v = std::clamp(v, lo_, hi_);
  const double span = hi_ - lo_;
  std::size_t bin =
      span > 0 ? static_cast<std::size_t>((v - lo_) / span *
                                          static_cast<double>(counts_.size()))
               : 0;
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
  ++total_;
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream out;
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  const double span = hi_ - lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double a = lo_ + span * static_cast<double>(i) /
                               static_cast<double>(counts_.size());
    const double b = lo_ + span * static_cast<double>(i + 1) /
                               static_cast<double>(counts_.size());
    const std::size_t bar = counts_[i] * width / peak;
    out << "[" << a << ", " << b << ") " << std::string(bar, '#') << " "
        << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace cpr
