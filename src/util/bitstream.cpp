#include "util/bitstream.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace cpr {

void BitWriter::write_bits(std::uint64_t value, unsigned nbits) {
  if (nbits > 64) throw std::invalid_argument("write_bits: nbits > 64");
  for (unsigned i = 0; i < nbits; ++i) {
    const std::size_t byte = bit_count_ / 8;
    const unsigned off = bit_count_ % 8;
    if (byte == bytes_.size()) bytes_.push_back(0);
    if ((value >> i) & 1u) bytes_[byte] |= static_cast<std::uint8_t>(1u << off);
    ++bit_count_;
  }
}

void BitWriter::write_varint(std::uint64_t value) {
  do {
    std::uint8_t chunk = value & 0x7fu;
    value >>= 7;
    write_bits(chunk | (value != 0 ? 0x80u : 0u), 8);
  } while (value != 0);
}

void BitWriter::write_gamma(std::uint64_t value) {
  if (value == 0) throw std::invalid_argument("write_gamma: value must be >= 1");
  const unsigned len = bit_width_of(value);  // floor(log2 v) + 1
  for (unsigned i = 1; i < len; ++i) write_bit(false);
  write_bit(true);                                // unary length marker
  if (len > 1) write_bits(value, len - 1);        // low bits after implicit MSB
}

void BitWriter::write_bounded(std::uint64_t value, std::uint64_t universe) {
  write_bits(value, bits_for_universe(universe));
}

void BitWriter::align_to_byte() {
  while (bit_count_ % 8 != 0) write_bit(false);
}

void BitWriter::write_raw(const void* data, std::size_t nbytes) {
  if (bit_count_ % 8 != 0) {
    throw std::logic_error("write_raw: stream is not byte-aligned");
  }
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + nbytes);
  bit_count_ += nbytes * 8;
}

std::uint64_t BitReader::read_bits(unsigned nbits) {
  if (nbits > 64) throw std::invalid_argument("read_bits: nbits > 64");
  std::uint64_t out = 0;
  for (unsigned i = 0; i < nbits; ++i) {
    const std::size_t byte = pos_ / 8;
    const unsigned off = pos_ % 8;
    if (byte >= bytes_->size()) throw std::out_of_range("BitReader: past end");
    if (((*bytes_)[byte] >> off) & 1u) out |= (std::uint64_t{1} << i);
    ++pos_;
  }
  return out;
}

std::uint64_t BitReader::read_varint() {
  std::uint64_t out = 0;
  unsigned shift = 0;
  while (true) {
    const std::uint64_t chunk = read_bits(8);
    out |= (chunk & 0x7fu) << shift;
    if ((chunk & 0x80u) == 0) return out;
    shift += 7;
    if (shift >= 64) throw std::runtime_error("read_varint: overflow");
  }
}

std::uint64_t BitReader::read_gamma() {
  unsigned zeros = 0;
  while (!read_bit()) {
    if (++zeros > 64) throw std::runtime_error("read_gamma: malformed");
  }
  if (zeros == 0) return 1;
  return (std::uint64_t{1} << zeros) | read_bits(zeros);
}

std::uint64_t BitReader::read_bounded(std::uint64_t universe) {
  return read_bits(bits_for_universe(universe));
}

void BitReader::align_to_byte() {
  pos_ = (pos_ + 7) / 8 * 8;
}

void BitReader::read_raw(void* out, std::size_t nbytes) {
  if (pos_ % 8 != 0) {
    throw std::logic_error("read_raw: stream is not byte-aligned");
  }
  const std::size_t byte = pos_ / 8;
  if (byte + nbytes > bytes_->size()) {
    throw std::out_of_range("BitReader: past end");
  }
  std::copy(bytes_->data() + byte, bytes_->data() + byte + nbytes,
            static_cast<std::uint8_t*>(out));
  pos_ += nbytes * 8;
}

unsigned bit_width_of(std::uint64_t v) {
  return v == 0 ? 1u : static_cast<unsigned>(std::bit_width(v));
}

unsigned bits_for_universe(std::uint64_t universe) {
  if (universe <= 2) return 1;
  return static_cast<unsigned>(std::bit_width(universe - 1));
}

}  // namespace cpr
