#include "util/hugepage.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <string>

namespace cpr {

bool advise_huge_pages(const void* data, std::size_t bytes) {
#ifdef MADV_HUGEPAGE
  if (bytes < kHugePageMinBytes) return false;
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) return false;
  const auto psize = static_cast<std::uintptr_t>(page);
  const auto lo = reinterpret_cast<std::uintptr_t>(data);
  const std::uintptr_t begin = (lo + psize - 1) / psize * psize;
  const std::uintptr_t end = (lo + bytes) / psize * psize;
  if (end <= begin) return false;
  return ::madvise(reinterpret_cast<void*>(begin), end - begin,
                   MADV_HUGEPAGE) == 0;
#else
  (void)data;
  (void)bytes;
  return false;
#endif
}

const char* transparent_hugepage_mode() {
  std::ifstream in("/sys/kernel/mm/transparent_hugepage/enabled");
  std::string line;
  if (!in || !std::getline(in, line)) return "unavailable";
  const std::size_t open = line.find('[');
  const std::size_t close = line.find(']');
  if (open == std::string::npos || close == std::string::npos ||
      close <= open + 1) {
    return "unavailable";
  }
  const std::string mode = line.substr(open + 1, close - open - 1);
  if (mode == "always") return "always";
  if (mode == "madvise") return "madvise";
  if (mode == "never") return "never";
  return "unavailable";
}

}  // namespace cpr
