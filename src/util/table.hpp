// Console table printer for the benchmark harness. Every bench binary
// prints the same rows/series the paper reports through this formatter so
// the outputs line up visually with the paper's tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cpr {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Appends a row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with limited precision, integers exactly.
  static std::string num(double v, int precision = 2);
  static std::string num(std::size_t v);

  void print(std::ostream& out) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cpr
