// Empirical routing-function entropy — the measurable face of the
// Fraigniaud–Gavoille counting argument (Proposition 3 / Theorem 4).
//
// The lower-bound proofs hinge on one fact: across the instances of the
// graph family, a center node c_i must realize *different* local routing
// functions (different target→port maps), and a routing scheme must be
// able to reproduce whichever one its instance requires — hence
// log₂(#distinct functions) bits at c_i. This module makes that counting
// executable: sample instances, extract c_i's preferred-port map with an
// exact solver, and count distinct maps. On the Theorem-4 family the map
// is exactly the i-th projection of the word assignment, so the measured
// entropy saturates at min(log₂ samples, τ·log₂ δ) — the benches show the
// saturation curve climbing along the theoretical bound.
#pragma once

#include "algebra/algebra.hpp"
#include "lowerbound/fg_family.hpp"
#include "routing/exhaustive.hpp"
#include "routing/shortest_widest.hpp"

#include <cmath>
#include <set>
#include <vector>

namespace cpr {

struct EntropyEstimate {
  std::size_t instances = 0;      // sampled word assignments
  std::size_t distinct_maps = 0;  // distinct port maps observed at the center
  double log2_distinct = 0;       // measured entropy (bits)
  double theoretical_bits = 0;    // τ · log2 δ
};

// The target→port forwarding map at center index `center` for one
// instance: port = the gadget index j of the first hop z_{center,j} on
// the preferred center→target path. `solve(graph, weights, s, t)` must
// return the preferred path (node sequence); exhaustive_solver below is
// the generic choice, sw_exact_solver the fast one for shortest-widest.
template <RoutingAlgebra A, typename Solver>
std::vector<std::uint32_t> center_port_map(
    [[maybe_unused]] const A& alg, const FgFamily& family,
    const std::vector<typename A::Weight>& ws, std::size_t center,
    Solver&& solve) {
  const auto w = instantiate_weights<A>(family, ws);
  std::vector<std::uint32_t> map;
  map.reserve(family.targets.size());
  for (const NodeId t : family.targets) {
    const NodePath best = solve(family.graph, w, family.centers[center], t);
    std::uint32_t port = static_cast<std::uint32_t>(-1);
    if (best.size() >= 2) {
      const NodeId hop = best[1];
      for (std::size_t j = 0; j < family.gadgets[center].size(); ++j) {
        if (family.gadgets[center][j] == hop) {
          port = static_cast<std::uint32_t>(j);
        }
      }
    }
    map.push_back(port);
  }
  return map;
}

// Generic ground-truth solver (exponential; fine for tiny instances).
template <RoutingAlgebra A>
auto exhaustive_solver(const A& alg) {
  return [&alg](const Graph& g, const EdgeMap<typename A::Weight>& w,
                NodeId s, NodeId t) {
    return exhaustive_preferred(alg, g, w, s, t).path;
  };
}

// Polynomial exact solver for the shortest-widest instantiation (the
// family's usual algebra) — exhaustive DFS on the layered family explodes
// before its pruning kicks in, this stays fast at any τ.
inline auto sw_exact_solver(const ShortestWidest& sw) {
  return [&sw](const Graph& g, const EdgeMap<ShortestWidest::Weight>& w,
               NodeId s, NodeId t) {
    return shortest_widest_exact(sw, g, w, s).paths[t];
  };
}

// Samples `instances` word assignments and counts the distinct port maps
// induced at center 0.
template <RoutingAlgebra A, typename Solver>
EntropyEstimate measure_center_entropy(
    const A& alg, std::size_t p, std::size_t delta, std::size_t targets,
    const std::vector<typename A::Weight>& ws, std::size_t instances,
    Rng& rng, Solver&& solve) {
  EntropyEstimate e;
  e.instances = instances;
  e.theoretical_bits = static_cast<double>(targets) *
                       std::log2(static_cast<double>(delta));
  std::set<std::vector<std::uint32_t>> maps;
  for (std::size_t i = 0; i < instances; ++i) {
    const FgFamily f =
        make_fg_family(p, delta, random_words(p, delta, targets, rng));
    maps.insert(center_port_map(alg, f, ws, 0, solve));
  }
  e.distinct_maps = maps.size();
  e.log2_distinct = std::log2(static_cast<double>(maps.size()));
  return e;
}

template <RoutingAlgebra A>
EntropyEstimate measure_center_entropy(
    const A& alg, std::size_t p, std::size_t delta, std::size_t targets,
    const std::vector<typename A::Weight>& ws, std::size_t instances,
    Rng& rng) {
  return measure_center_entropy(alg, p, delta, targets, ws, instances, rng,
                                exhaustive_solver(alg));
}

}  // namespace cpr
