#include "lowerbound/counterexamples.hpp"

#include "graph/algorithms.hpp"

namespace cpr {

std::vector<std::vector<EdgeId>> all_spanning_trees(const Graph& g) {
  std::vector<std::vector<EdgeId>> out;
  const std::size_t n = g.node_count();
  const std::size_t m = g.edge_count();
  if (n == 0 || m < n - 1 || m > 24) return out;

  std::vector<EdgeId> chosen;
  // Enumerate all (n-1)-subsets of edges; keep acyclic spanning ones.
  const auto recurse = [&](auto&& self, EdgeId next) -> void {
    if (chosen.size() == n - 1) {
      if (is_spanning_tree(g, chosen)) out.push_back(chosen);
      return;
    }
    if (next >= m || m - next < (n - 1) - chosen.size()) return;
    chosen.push_back(next);
    self(self, next + 1);
    chosen.pop_back();
    self(self, next + 1);
  };
  recurse(recurse, 0);
  return out;
}

}  // namespace cpr
