#include "lowerbound/fg_family.hpp"

#include "bgp/valley_free.hpp"

#include <stdexcept>

namespace cpr {

std::vector<Word> all_words(std::size_t p, std::size_t delta) {
  std::vector<Word> out;
  Word current(p, 0);
  while (true) {
    out.push_back(current);
    std::size_t i = p;
    while (i > 0) {
      --i;
      if (++current[i] < delta) break;
      current[i] = 0;
      if (i == 0) return out;
    }
    if (p == 0) return out;
  }
}

std::vector<Word> random_words(std::size_t p, std::size_t delta,
                               std::size_t count, Rng& rng) {
  std::vector<Word> out(count, Word(p, 0));
  for (auto& word : out) {
    for (auto& symbol : word) {
      symbol = static_cast<std::uint32_t>(rng.index(delta));
    }
  }
  return out;
}

FgFamily make_fg_family(std::size_t p, std::size_t delta,
                        std::vector<Word> words) {
  if (p < 1 || delta < 2) {
    throw std::invalid_argument("fg family: need p >= 1, delta >= 2");
  }
  FgFamily f;
  f.p = p;
  f.delta = delta;
  f.words = std::move(words);
  const std::size_t n = p + p * delta + f.words.size();
  f.graph = Graph(n);

  for (std::size_t i = 0; i < p; ++i) {
    f.centers.push_back(static_cast<NodeId>(i));
  }
  f.gadgets.assign(p, {});
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < delta; ++j) {
      const NodeId z = static_cast<NodeId>(p + i * delta + j);
      f.gadgets[i].push_back(z);
      f.graph.add_edge(f.centers[i], z);
      f.edge_level.push_back(i);
    }
  }
  for (std::size_t k = 0; k < f.words.size(); ++k) {
    const NodeId t = static_cast<NodeId>(p + p * delta + k);
    f.targets.push_back(t);
    const Word& word = f.words[k];
    if (word.size() != p) {
      throw std::invalid_argument("fg family: word length != p");
    }
    for (std::size_t i = 0; i < p; ++i) {
      if (word[i] >= delta) {
        throw std::invalid_argument("fg family: symbol out of range");
      }
      f.graph.add_edge(f.gadgets[i][word[i]], t);
      f.edge_level.push_back(i);
    }
  }
  return f;
}

std::vector<ShortestWidest::Weight> theorem4_sw_weights(std::size_t p,
                                                        std::size_t k) {
  std::vector<ShortestWidest::Weight> ws;
  ws.reserve(p);
  std::uint64_t cost = 1;  // (2k)^{i-1}
  for (std::size_t i = 1; i <= p; ++i) {
    ws.push_back({static_cast<std::uint64_t>(i), cost});
    cost *= 2 * static_cast<std::uint64_t>(k);
  }
  return ws;
}

namespace {

// Builds the digraph version: every family edge becomes a "down" arc from
// the earlier layer to the later one (label c ⇒ the reverse arc is p, the
// source node being the provider).
AsTopology layered_down_topology(const FgFamily& f) {
  AsTopology topo;
  topo.graph = Digraph(f.graph.node_count());
  for (EdgeId e = 0; e < f.graph.edge_count(); ++e) {
    const auto& edge = f.graph.edge(e);
    // Family edges are added as (upper, lower): (c_i, z_ij) and (z_ij, t).
    topo.graph.add_arc_pair(edge.u, edge.v);
    topo.relation.push_back(Relationship::kCustomer);  // downstream
    topo.relation.push_back(Relationship::kProvider);  // upstream
  }
  return topo;
}

}  // namespace

AsTopology fg_b1_topology(std::size_t p, std::size_t delta,
                          const std::vector<Word>& words) {
  return layered_down_topology(make_fg_family(p, delta, words));
}

AsTopology fg_b3_topology(std::size_t p, std::size_t delta,
                          const std::vector<Word>& words) {
  AsTopology topo = layered_down_topology(make_fg_family(p, delta, words));
  const std::size_t n = topo.graph.node_count();
  // Patch A1: add a peer arc between every mutually unreachable pair.
  std::vector<ValleyFreeReachability> reach;
  reach.reserve(n);
  for (NodeId t = 0; t < n; ++t) {
    reach.push_back(valley_free_reachability(topo, t));
  }
  for (NodeId a = 0; a + 1 < n; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b < n; ++b) {
      const bool a_to_b = reach[b].klass[a] != ValleyFreeClass::kUnreachable;
      const bool b_to_a = reach[a].klass[b] != ValleyFreeClass::kUnreachable;
      if (!a_to_b || !b_to_a) {
        if (!topo.graph.has_arc(a, b)) {
          topo.graph.add_arc_pair(a, b);
          topo.relation.push_back(Relationship::kPeer);
          topo.relation.push_back(Relationship::kPeer);
        }
      }
    }
  }
  return topo;
}

}  // namespace cpr
