#include "lowerbound/counting.hpp"

#include <cmath>

namespace cpr {

CountingBound fg_family_counting_bound(std::size_t p, std::size_t delta,
                                       std::size_t targets) {
  CountingBound b;
  const double log_delta = std::log2(static_cast<double>(delta));
  b.per_center_bits = static_cast<double>(targets) * log_delta;
  b.total_center_bits = static_cast<double>(p) * b.per_center_bits;
  b.family_log2 = b.total_center_bits;  // δ^(p·τ) word assignments
  return b;
}

}  // namespace cpr
