// The information-theoretic counting argument behind the Ω(n) lower
// bounds (Proposition 3, Theorems 4, 5, 8).
//
// Lower bounds cannot be "measured", but the counting that powers them
// can be made explicit: on the Fraigniaud–Gavoille family each center c_i
// must be able to reproduce, for every target t, which of its δ gadget
// neighbors leads to t — a function from τ targets to δ ports, of which
// there are δ^τ, requiring τ·log₂ δ bits at c_i in the worst case. With
// τ = Θ(n) targets this is the Ω(n log δ) bound. The benches print this
// bound next to the *measured* sizes of the schemes we actually built, so
// "the best upper bound we have tracks the lower bound" is visible in the
// output.
#pragma once

#include <cstddef>

namespace cpr {

struct CountingBound {
  double family_log2 = 0;        // log2 of the number of distinct instances
  double per_center_bits = 0;    // τ · log2 δ
  double total_center_bits = 0;  // p · τ · log2 δ
};

// p centers, alphabet δ, τ target nodes.
CountingBound fg_family_counting_bound(std::size_t p, std::size_t delta,
                                       std::size_t targets);

}  // namespace cpr
