// Executable proof artifacts: the weight embeddings inside Lemma 2 and
// Theorem 6.
//
// Lemma 2 (incompressibility transfer): in a delimited, strictly monotone
// algebra every element w generates an infinite cyclic subsemigroup
// {w, w², w³, …} order-isomorphic to (N, +, ≤); relabeling a
// shortest-path instance's integer weights n ↦ wⁿ therefore produces an
// instance of A whose preferred paths are exactly the original shortest
// paths. `cyclic_embedding` performs the relabeling; the tests check the
// preferred-path equivalence on random instances, which is the entire
// content of the reduction.
//
// Theorem 6 (compressibility transfer): under A1+A2 the B1 digraph maps
// to an undirected instance G' of the usable-path algebra U — weight 1 on
// each node's preferred-provider edge, φ on everything else — in which
// every pair is connected by a usable path (through the unique root).
// `theorem6_reduction` builds G'; the tests check A1-style reachability
// in G' and that U's preferred tree paths are valley-free in the
// original.
#pragma once

#include "algebra/algebra.hpp"
#include "algebra/primitives.hpp"
#include "bgp/svfc.hpp"
#include "graph/graph.hpp"

#include <stdexcept>

namespace cpr {

// Relabels integer edge weights n ↦ wⁿ in the target algebra. Requires
// strictly positive integer weights (0 has no power) small enough that
// the powers stay finite.
template <RoutingAlgebra A>
EdgeMap<typename A::Weight> cyclic_embedding(
    const A& alg, const typename A::Weight& generator,
    const EdgeMap<std::uint64_t>& integer_weights) {
  EdgeMap<typename A::Weight> out;
  out.reserve(integer_weights.size());
  for (const std::uint64_t n : integer_weights) {
    if (n == 0) throw std::invalid_argument("cyclic_embedding: weight 0");
    out.push_back(power(alg, generator, n));
  }
  return out;
}

// The Theorem-6 construction: G' over the same nodes, with weight 1
// (usable) on each node's preferred-provider edge and φ on every other
// edge of the shadow graph. Requires a single root (A1+A2 premises).
struct Theorem6Reduction {
  Graph shadow;                       // undirected shadow of the digraph
  EdgeMap<UsablePath::Weight> usable; // 1 on provider-tree edges, φ else
  NodeId root = kInvalidNode;
};

inline Theorem6Reduction theorem6_reduction(const AsTopology& topo) {
  const SvfcDecomposition d = decompose_svfc(topo);
  if (d.component_count() != 1) {
    throw std::invalid_argument(
        "theorem6_reduction: needs a unique root (A1+A2)");
  }
  Theorem6Reduction r;
  r.shadow = topo.graph.undirected_shadow();
  r.root = d.component_root[0];
  const UsablePath u;
  r.usable.assign(r.shadow.edge_count(), u.phi());
  for (NodeId v = 0; v < r.shadow.node_count(); ++v) {
    if (d.provider_arc[v] != kInvalidArc) {
      r.usable[d.provider_arc[v] / 2] = 1;  // arc pair a/2 = shadow edge
    }
  }
  return r;
}

}  // namespace cpr
