// The Fraigniaud–Gavoille graph family used in Theorem 4 (Fig. 2) and in
// the BGP lower bounds (Theorems 5 and 8).
//
// Layered structure: p "center" nodes c_i, each with δ gadget neighbors
// z_i1..z_iδ, and a set of target nodes t — one per *word* of length p
// over the alphabet {0..δ-1} — where z_ij connects to t exactly when the
// i-th symbol of t's word is j. Every (c_i, z_ij) and (z_ij, t) edge is at
// "level" i and carries the weight w_i of the instantiating algebra.
//
// With weights satisfying condition (1) of Theorem 4
//     w_i ⊕ w_j ≻ w_i^{2k}  (i ≠ j),
// the preferred c_i→t path is the 2-hop w_i path through the unique z_ij
// with word_t[i] = j, and *any* detour breaches stretch k. A routing
// scheme of stretch k must therefore encode, at c_i, the full map
// word → port (τ log δ bits for τ targets) — the counting argument in
// counting.hpp.
#pragma once

#include "algebra/algebra.hpp"
#include "bgp/as_topology.hpp"
#include "graph/graph.hpp"
#include "routing/shortest_widest.hpp"

#include <vector>

namespace cpr {

using Word = std::vector<std::uint32_t>;  // length p, symbols in [0, δ)

struct FgFamily {
  std::size_t p = 0;      // number of centers
  std::size_t delta = 0;  // alphabet size
  Graph graph;
  std::vector<std::size_t> edge_level;  // per edge: which w_i it carries
  std::vector<NodeId> centers;          // the c_i
  std::vector<std::vector<NodeId>> gadgets;  // z[i][j]
  std::vector<NodeId> targets;               // one per word
  std::vector<Word> words;
};

// All δ^p words in lexicographic order (keep p·log δ small).
std::vector<Word> all_words(std::size_t p, std::size_t delta);

// A uniformly random word set of the given size (may repeat words across
// targets — the counting argument allows it).
std::vector<Word> random_words(std::size_t p, std::size_t delta,
                               std::size_t count, Rng& rng);

FgFamily make_fg_family(std::size_t p, std::size_t delta,
                        std::vector<Word> words);

// Weight instantiation: edge e carries ws[edge_level[e]].
template <RoutingAlgebra A>
EdgeMap<typename A::Weight> instantiate_weights(
    const FgFamily& family, const std::vector<typename A::Weight>& ws) {
  EdgeMap<typename A::Weight> w(family.graph.edge_count());
  for (EdgeId e = 0; e < family.graph.edge_count(); ++e) {
    w[e] = ws[family.edge_level[e]];
  }
  return w;
}

// Shortest-widest weights satisfying condition (1) for a given stretch
// target k (Section 4.2's construction: b_i = i, c_i = (2k)^{i-1}).
std::vector<ShortestWidest::Weight> theorem4_sw_weights(std::size_t p,
                                                        std::size_t k);

// Checks condition (1): w_i ⊕ w_j ≻ w_i^{2k} and w_i ⊕ w_j ≻ w_j^{2k} for
// all i ≠ j.
template <RoutingAlgebra A>
bool satisfies_condition_1(const A& alg,
                           const std::vector<typename A::Weight>& ws,
                           std::size_t k) {
  for (std::size_t i = 0; i < ws.size(); ++i) {
    for (std::size_t j = 0; j < ws.size(); ++j) {
      if (i == j) continue;
      const auto mix = alg.combine(ws[i], ws[j]);
      if (!alg.less(power(alg, ws[i], 2 * k), mix)) return false;
      if (!alg.less(power(alg, ws[j], 2 * k), mix)) return false;
    }
  }
  return true;
}

// Theorem 5: the same layered family as a provider-customer digraph —
// every (c_i → z_ij) and (z_ij → t) arc goes *down* (label c), so
// preferred c→t paths have weight c and every detour hits a valley (φ).
AsTopology fg_b1_topology(std::size_t p, std::size_t delta,
                          const std::vector<Word>& words);

// Theorem 8: the B1 construction patched for A1 by adding a peer arc
// between every mutually unreachable pair; preferred c→t paths keep
// weight c, every detour now weighs r or φ, both ≻ c^k.
AsTopology fg_b3_topology(std::size_t p, std::size_t delta,
                          const std::vector<Word>& words);

}  // namespace cpr
