// The Fig.-1 counterexample gadgets (Lemma 1, necessity direction).
//
// If a delimited algebra is monotone but not selective, preferred paths
// need not live in any spanning tree. The proof distinguishes three ways
// selectivity can fail and exhibits a gadget for each:
//
//   (a) w ⊕ w ≻ w (auto-selectivity fails): a triangle with all edges w —
//       every preferred path is a direct edge, and three direct edges
//       cannot fit in a tree.
//   (b) w1 ≺ w2 and w1 ⊕ w2 ≻ w2: a triangle with edges w1, w2, w2.
//   (c) w1 = w2 with w1 ⊕ w2 ≻ w2: a 4-cycle with alternating weights.
//
// `exists_preferred_spanning_tree` brute-forces every spanning tree of a
// small graph and checks whether some tree contains a preferred path for
// every pair — the executable form of "the algebra maps to a tree on this
// instance".
#pragma once

#include "algebra/algebra.hpp"
#include "graph/graph.hpp"
#include "routing/exhaustive.hpp"

#include <utility>
#include <vector>

namespace cpr {

template <RoutingAlgebra A>
using WeightedGraph = std::pair<Graph, EdgeMap<typename A::Weight>>;

// (a) triangle, all edges w.
template <RoutingAlgebra A>
WeightedGraph<A> fig1a_gadget(const A&, const typename A::Weight& w) {
  Graph g(3);
  EdgeMap<typename A::Weight> wm;
  g.add_edge(0, 1);
  wm.push_back(w);
  g.add_edge(1, 2);
  wm.push_back(w);
  g.add_edge(0, 2);
  wm.push_back(w);
  return {std::move(g), std::move(wm)};
}

// (b) triangle with one w1 edge and two w2 edges (w1 ≺ w2 expected).
template <RoutingAlgebra A>
WeightedGraph<A> fig1b_gadget(const A&, const typename A::Weight& w1,
                              const typename A::Weight& w2) {
  Graph g(3);
  EdgeMap<typename A::Weight> wm;
  g.add_edge(0, 1);
  wm.push_back(w1);
  g.add_edge(0, 2);
  wm.push_back(w2);
  g.add_edge(1, 2);
  wm.push_back(w2);
  return {std::move(g), std::move(wm)};
}

// (c) 4-cycle with alternating weights w1, w2 (w1 = w2 in the lemma's
// third case, but the gadget is usable with any pair).
template <RoutingAlgebra A>
WeightedGraph<A> fig1c_gadget(const A&, const typename A::Weight& w1,
                              const typename A::Weight& w2) {
  Graph g(4);
  EdgeMap<typename A::Weight> wm;
  g.add_edge(0, 1);
  wm.push_back(w1);
  g.add_edge(1, 2);
  wm.push_back(w2);
  g.add_edge(2, 3);
  wm.push_back(w1);
  g.add_edge(3, 0);
  wm.push_back(w2);
  return {std::move(g), std::move(wm)};
}

// Every spanning tree of g, as edge-id sets. Exponential; only for the
// gadget-sized graphs.
std::vector<std::vector<EdgeId>> all_spanning_trees(const Graph& g);

// True iff some spanning tree contains, for every connected pair (s,t), an
// in-tree path whose weight is order-equal to the preferred s–t weight
// (and traversable). This is the instance-level "maps to a tree" test.
template <RoutingAlgebra A>
bool exists_preferred_spanning_tree(const A& alg, const Graph& g,
                                    const EdgeMap<typename A::Weight>& w) {
  const std::size_t n = g.node_count();
  // Ground-truth preferred weights for all pairs.
  std::vector<std::vector<PreferredPath<typename A::Weight>>> best(n);
  for (NodeId s = 0; s < n; ++s) {
    best[s].resize(n);
    for (NodeId t = 0; t < n; ++t) {
      if (s != t) best[s][t] = exhaustive_preferred(alg, g, w, s, t);
    }
  }
  for (const auto& tree_edges : all_spanning_trees(g)) {
    // Tree adjacency for in-tree path extraction.
    Graph tree(n);
    EdgeMap<typename A::Weight> tw;
    for (EdgeId e : tree_edges) {
      tree.add_edge(g.edge(e).u, g.edge(e).v);
      tw.push_back(w[e]);
    }
    bool ok = true;
    for (NodeId s = 0; s < n && ok; ++s) {
      for (NodeId t = static_cast<NodeId>(s + 1); t < n && ok; ++t) {
        if (!best[s][t].traversable()) continue;
        const auto in_tree = exhaustive_preferred(alg, tree, tw, s, t);
        ok = in_tree.traversable() &&
             order_equal(alg, *in_tree.weight, *best[s][t].weight);
      }
    }
    if (ok) return true;
  }
  return false;
}

}  // namespace cpr
