// Plain-text graph I/O: a line-oriented edge-list format ("n m" header,
// then "u v" lines) and Graphviz DOT export for eyeballing the adversarial
// constructions. Weighted variants carry one integer weight per edge.
#pragma once

#include "graph/digraph.hpp"
#include "graph/graph.hpp"

#include <iosfwd>
#include <string>

namespace cpr {

void write_edge_list(const Graph& g, std::ostream& out);
Graph read_edge_list(std::istream& in);

void write_weighted_edge_list(const Graph& g,
                              const EdgeMap<std::uint64_t>& weights,
                              std::ostream& out);
Graph read_weighted_edge_list(std::istream& in,
                              EdgeMap<std::uint64_t>& weights_out);

// DOT rendering; edge labels optional (indexed by edge id).
std::string to_dot(const Graph& g,
                   const std::vector<std::string>* edge_labels = nullptr);
std::string to_dot(const Digraph& g,
                   const std::vector<std::string>* arc_labels = nullptr);

}  // namespace cpr
