// Undirected graph substrate.
//
// The paper models the network as a finite, connected, simple, undirected
// graph G(V,E) whose nodes have locally labeled ports
// LE(v,·) ∈ {1..deg(v)}. We represent ports 0-based as positions in the
// adjacency list; schemes that rely on designer-chosen port numbering
// (the tree router, the peer-mesh labeling) install their own permutation
// on top. Edge weights live outside the graph in EdgeMap<W> arrays indexed
// by edge id, so one topology can carry weights from many algebras at once.
#pragma once

#include <concepts>
#include <cstdint>
#include <vector>

namespace cpr {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
using Port = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);
inline constexpr Port kInvalidPort = static_cast<Port>(-1);

template <typename W>
using EdgeMap = std::vector<W>;

template <typename W>
using NodeMap = std::vector<W>;

class Graph {
 public:
  struct Adjacency {
    NodeId neighbor;
    EdgeId edge;
  };

  Graph() = default;
  explicit Graph(std::size_t n) : adj_(n) {}

  NodeId add_node();

  // Adds an undirected edge; parallel edges and self-loops are rejected
  // (the model assumes a simple graph). Returns the new edge id.
  EdgeId add_edge(NodeId u, NodeId v);

  std::size_t node_count() const { return adj_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  std::size_t degree(NodeId v) const { return adj_[v].size(); }
  std::size_t max_degree() const;

  // Port p at node v leads to this neighbor / over this edge.
  NodeId neighbor(NodeId v, Port p) const { return adj_[v][p].neighbor; }
  EdgeId edge_at(NodeId v, Port p) const { return adj_[v][p].edge; }

  // Port at u that leads to v, or kInvalidPort. O(deg u).
  Port port_to(NodeId u, NodeId v) const;

  bool has_edge(NodeId u, NodeId v) const {
    return port_to(u, v) != kInvalidPort;
  }

  const std::vector<Adjacency>& neighbors(NodeId v) const { return adj_[v]; }

  struct Edge {
    NodeId u, v;
  };
  const Edge& edge(EdgeId e) const { return edges_[e]; }
  const std::vector<Edge>& edges() const { return edges_; }

  // The endpoint of e that is not `from`.
  NodeId opposite(EdgeId e, NodeId from) const {
    return edges_[e].u == from ? edges_[e].v : edges_[e].u;
  }

 private:
  std::vector<std::vector<Adjacency>> adj_;
  std::vector<Edge> edges_;
};

// Read-only topology interface shared by Graph and the flat CsrGraph view
// (graph/csr_graph.hpp). Algorithms that only traverse adjacency (Dijkstra,
// exhaustive enumeration) are templated over this, so callers that sweep
// the same topology many times can hand in the CSR snapshot and pay the
// pointer-chasing layout only once.
template <typename G>
concept GraphTopology = requires(const G g, NodeId v, Port p) {
  { g.node_count() } -> std::convertible_to<std::size_t>;
  { g.degree(v) } -> std::convertible_to<std::size_t>;
  { g.neighbors(v) };
  { g.neighbor(v, p) } -> std::convertible_to<NodeId>;
  { g.edge_at(v, p) } -> std::convertible_to<EdgeId>;
  { g.port_to(v, v) } -> std::convertible_to<Port>;
};

}  // namespace cpr
