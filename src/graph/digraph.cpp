#include "graph/digraph.hpp"

#include <stdexcept>

namespace cpr {

NodeId Digraph::add_node() {
  out_.emplace_back();
  in_degree_.push_back(0);
  return static_cast<NodeId>(out_.size() - 1);
}

ArcId Digraph::add_arc_pair(NodeId u, NodeId v) {
  if (u >= out_.size() || v >= out_.size()) {
    throw std::out_of_range("Digraph::add_arc_pair: node id out of range");
  }
  if (u == v) throw std::invalid_argument("Digraph::add_arc_pair: self-loop");
  if (has_arc(u, v)) {
    throw std::invalid_argument("Digraph::add_arc_pair: parallel arc");
  }
  const ArcId fwd = static_cast<ArcId>(arcs_.size());
  const ArcId bwd = fwd + 1;
  arcs_.push_back({u, v, bwd});
  arcs_.push_back({v, u, fwd});
  out_[u].push_back(fwd);
  out_[v].push_back(bwd);
  ++in_degree_[v];
  ++in_degree_[u];
  return fwd;
}

ArcId Digraph::find_arc(NodeId u, NodeId v) const {
  for (ArcId a : out_[u]) {
    if (arcs_[a].to == v) return a;
  }
  return kInvalidArc;
}

Graph Digraph::undirected_shadow() const {
  Graph g(node_count());
  for (ArcId a = 0; a < arcs_.size(); ++a) {
    const Arc& arc = arcs_[a];
    if (a < arc.reverse) {  // visit each pair once
      g.add_edge(arc.from, arc.to);
    }
  }
  return g;
}

}  // namespace cpr
