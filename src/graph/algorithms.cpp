#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>
#include <stack>

namespace cpr {

bool is_connected(const Graph& g) {
  if (g.node_count() <= 1) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(), [](std::size_t d) {
    return d == std::numeric_limits<std::size_t>::max();
  });
}

std::vector<NodeId> connected_components(const Graph& g) {
  const std::size_t n = g.node_count();
  std::vector<NodeId> comp(n, kInvalidNode);
  NodeId next = 0;
  for (NodeId s = 0; s < n; ++s) {
    if (comp[s] != kInvalidNode) continue;
    comp[s] = next;
    std::deque<NodeId> queue{s};
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const auto& a : g.neighbors(u)) {
        if (comp[a.neighbor] == kInvalidNode) {
          comp[a.neighbor] = next;
          queue.push_back(a.neighbor);
        }
      }
    }
    ++next;
  }
  return comp;
}

std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source) {
  std::vector<std::size_t> dist(g.node_count(),
                                std::numeric_limits<std::size_t>::max());
  dist[source] = 0;
  std::deque<NodeId> queue{source};
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const auto& a : g.neighbors(u)) {
      if (dist[a.neighbor] == std::numeric_limits<std::size_t>::max()) {
        dist[a.neighbor] = dist[u] + 1;
        queue.push_back(a.neighbor);
      }
    }
  }
  return dist;
}

std::vector<NodeId> bfs_parents(const Graph& g, NodeId source) {
  std::vector<NodeId> parent(g.node_count(), kInvalidNode);
  parent[source] = source;
  std::deque<NodeId> queue{source};
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const auto& a : g.neighbors(u)) {
      if (parent[a.neighbor] == kInvalidNode) {
        parent[a.neighbor] = u;
        queue.push_back(a.neighbor);
      }
    }
  }
  return parent;
}

std::size_t hop_diameter(const Graph& g) {
  std::size_t diameter = 0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (std::size_t d : bfs_distances(g, s)) {
      if (d != std::numeric_limits<std::size_t>::max()) {
        diameter = std::max(diameter, d);
      }
    }
  }
  return diameter;
}

bool is_spanning_tree(const Graph& g, const std::vector<EdgeId>& tree_edges) {
  const std::size_t n = g.node_count();
  if (n == 0) return tree_edges.empty();
  if (tree_edges.size() != n - 1) return false;
  UnionFind uf(n);
  for (EdgeId e : tree_edges) {
    const auto& edge = g.edge(e);
    if (!uf.unite(edge.u, edge.v)) return false;  // cycle
  }
  return true;
}

UnionFind::UnionFind(std::size_t n) : parent_(n), rank_(n, 0) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t UnionFind::find(std::size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t x, std::size_t y) {
  x = find(x);
  y = find(y);
  if (x == y) return false;
  if (rank_[x] < rank_[y]) std::swap(x, y);
  parent_[y] = x;
  if (rank_[x] == rank_[y]) ++rank_[x];
  return true;
}

std::vector<NodeId> strongly_connected_components(
    std::size_t n, const std::function<std::vector<NodeId>(NodeId)>& succ) {
  // Iterative Tarjan.
  constexpr NodeId kUnset = kInvalidNode;
  std::vector<NodeId> index(n, kUnset), lowlink(n, 0), comp(n, kUnset);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  NodeId next_index = 0, next_comp = 0;

  struct Frame {
    NodeId v;
    std::vector<NodeId> successors;
    std::size_t next = 0;
  };

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnset) continue;
    std::stack<Frame> frames;
    frames.push({root, succ(root)});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& f = frames.top();
      if (f.next < f.successors.size()) {
        const NodeId w = f.successors[f.next++];
        if (index[w] == kUnset) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push({w, succ(w)});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        const NodeId v = f.v;
        if (lowlink[v] == index[v]) {
          while (true) {
            const NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp[w] = next_comp;
            if (w == v) break;
          }
          ++next_comp;
        }
        frames.pop();
        if (!frames.empty()) {
          lowlink[frames.top().v] =
              std::min(lowlink[frames.top().v], lowlink[v]);
        }
      }
    }
  }
  return comp;
}

std::optional<std::vector<NodeId>> topological_order(
    std::size_t n, const std::function<std::vector<NodeId>(NodeId)>& succ) {
  std::vector<std::size_t> indeg(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : succ(v)) ++indeg[w];
  }
  std::deque<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push_back(v);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (NodeId w : succ(v)) {
      if (--indeg[w] == 0) ready.push_back(w);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

}  // namespace cpr
