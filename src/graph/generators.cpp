#include "graph/generators.hpp"

#include "graph/algorithms.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cpr {

Graph erdos_renyi_connected(std::size_t n, double p, Rng& rng, int max_tries) {
  if (n == 0) return Graph{};
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    Graph g(n);
    for (NodeId u = 0; u + 1 < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (rng.coin(p)) g.add_edge(u, v);
      }
    }
    if (is_connected(g)) return g;
    if (attempt + 1 == max_tries) {
      // Stitch components together with random edges so sweeps never spin.
      auto comp = connected_components(g);
      std::vector<NodeId> representative;
      std::vector<bool> seen(1 + *std::max_element(comp.begin(), comp.end()),
                             false);
      for (NodeId v = 0; v < n; ++v) {
        if (!seen[comp[v]]) {
          seen[comp[v]] = true;
          representative.push_back(v);
        }
      }
      for (std::size_t i = 1; i < representative.size(); ++i) {
        g.add_edge(representative[i - 1], representative[i]);
      }
      return g;
    }
  }
  return Graph{};  // unreachable
}

Graph barabasi_albert(std::size_t n, std::size_t m, Rng& rng) {
  if (m == 0 || n <= m) throw std::invalid_argument("barabasi_albert: n > m >= 1");
  Graph g(n);
  // Seed clique of m+1 nodes.
  std::vector<NodeId> endpoints;  // degree-weighted sampling pool
  for (NodeId u = 0; u <= m; ++u) {
    for (NodeId v = u + 1; v <= m; ++v) {
      g.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId v = static_cast<NodeId>(m + 1); v < n; ++v) {
    std::vector<NodeId> targets;
    while (targets.size() < m) {
      const NodeId t = endpoints[rng.index(endpoints.size())];
      if (t != v && std::find(targets.begin(), targets.end(), t) ==
                        targets.end()) {
        targets.push_back(t);
      }
    }
    for (NodeId t : targets) {
      g.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return g;
}

Graph preferential_attachment(std::size_t n, std::size_t m,
                              double uniform_mix, Rng& rng) {
  if (m == 0 || n <= m) {
    throw std::invalid_argument("preferential_attachment: n > m >= 1");
  }
  if (uniform_mix < 0.0 || uniform_mix > 1.0) {
    throw std::invalid_argument(
        "preferential_attachment: uniform_mix in [0, 1]");
  }
  Graph g(n);
  // Seed clique of m+1 nodes, then each new node attaches m edges whose
  // far endpoints are degree-weighted draws from the endpoint pool —
  // except with probability uniform_mix each draw is uniform over the
  // existing nodes instead, which tempers the tail exponent the pure
  // Barabási–Albert process fixes at 3 (the knob sweeps between
  // scale-free and near-uniform attachment for the Internet-like bench
  // topologies; see docs/internet_scale.md).
  std::vector<NodeId> endpoints;
  for (NodeId u = 0; u <= m; ++u) {
    for (NodeId v = u + 1; v <= m; ++v) {
      g.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId v = static_cast<NodeId>(m + 1); v < n; ++v) {
    std::vector<NodeId> targets;
    while (targets.size() < m) {
      const NodeId t = rng.coin(uniform_mix)
                           ? static_cast<NodeId>(rng.index(v))
                           : endpoints[rng.index(endpoints.size())];
      if (t != v && std::find(targets.begin(), targets.end(), t) ==
                        targets.end()) {
        targets.push_back(t);
      }
    }
    for (NodeId t : targets) {
      g.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return g;
}

Graph watts_strogatz(std::size_t n, std::size_t k, double beta, Rng& rng) {
  if (n < 2 * k + 2) throw std::invalid_argument("watts_strogatz: n too small");
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= k; ++j) {
      const NodeId v = static_cast<NodeId>((u + j) % n);
      if (!g.has_edge(u, v)) g.add_edge(u, v);
    }
  }
  // Rewire: for each lattice edge, with prob beta replace the far endpoint.
  const auto original = g.edges();
  Graph h(n);
  for (const auto& e : original) {
    NodeId u = e.u, v = e.v;
    if (rng.coin(beta)) {
      for (int tries = 0; tries < 16; ++tries) {
        const NodeId w = static_cast<NodeId>(rng.index(n));
        if (w != u && !h.has_edge(u, w)) {
          v = w;
          break;
        }
      }
    }
    if (!h.has_edge(u, v) && u != v) h.add_edge(u, v);
  }
  // Keep connected for routing experiments.
  if (!is_connected(h)) {
    auto comp = connected_components(h);
    for (NodeId v = 1; v < n; ++v) {
      if (comp[v] != comp[0] && !h.has_edge(0, v)) {
        h.add_edge(0, v);
        comp = connected_components(h);
      }
    }
  }
  return h;
}

Graph grid(std::size_t rows, std::size_t cols) {
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph hypercube(unsigned dimensions) {
  const std::size_t n = std::size_t{1} << dimensions;
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (unsigned b = 0; b < dimensions; ++b) {
      const NodeId v = u ^ (NodeId{1} << b);
      if (u < v) g.add_edge(u, v);
    }
  }
  return g;
}

Graph random_tree(std::size_t n, Rng& rng) {
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>(rng.index(v)));
  }
  return g;
}

Graph star(std::size_t n) {
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph ring(std::size_t n) {
  Graph g(n);
  if (n < 3) {
    if (n == 2) g.add_edge(0, 1);
    return g;
  }
  for (NodeId v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>((v + 1) % n));
  }
  return g;
}

Graph complete(std::size_t n) {
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph kary_tree(std::size_t n, std::size_t arity) {
  if (arity == 0) throw std::invalid_argument("kary_tree: arity >= 1");
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>((v - 1) / arity));
  }
  return g;
}

Graph caterpillar(std::size_t spine, std::size_t legs_per_node) {
  Graph g(spine * (1 + legs_per_node));
  for (NodeId s = 0; s + 1 < spine; ++s) g.add_edge(s, s + 1);
  NodeId next = static_cast<NodeId>(spine);
  for (NodeId s = 0; s < spine; ++s) {
    for (std::size_t l = 0; l < legs_per_node; ++l) g.add_edge(s, next++);
  }
  return g;
}

Graph broom(std::size_t handle, std::size_t bristles) {
  Graph g(handle + bristles);
  for (NodeId v = 0; v + 1 < handle; ++v) g.add_edge(v, v + 1);
  for (std::size_t b = 0; b < bristles; ++b) {
    g.add_edge(static_cast<NodeId>(handle - 1),
               static_cast<NodeId>(handle + b));
  }
  return g;
}

Graph lollipop(std::size_t clique, std::size_t tail) {
  Graph g(clique + tail);
  for (NodeId u = 0; u + 1 < clique; ++u) {
    for (NodeId v = u + 1; v < clique; ++v) g.add_edge(u, v);
  }
  for (std::size_t t = 0; t < tail; ++t) {
    g.add_edge(static_cast<NodeId>(clique - 1 + t),
               static_cast<NodeId>(clique + t));
  }
  return g;
}

Graph complete_bipartite(std::size_t a, std::size_t b) {
  Graph g(a + b);
  for (NodeId u = 0; u < a; ++u) {
    for (std::size_t v = 0; v < b; ++v) {
      g.add_edge(u, static_cast<NodeId>(a + v));
    }
  }
  return g;
}

std::vector<FamilyInstance> standard_families(std::size_t n, Rng& rng) {
  std::vector<FamilyInstance> out;
  const double p = std::min(1.0, 4.0 / static_cast<double>(n) +
                                     2.0 * std::max(1.0, std::log2(double(n))) /
                                         static_cast<double>(n));
  out.push_back({"erdos-renyi", erdos_renyi_connected(n, p, rng)});
  if (n >= 4) out.push_back({"barabasi-albert", barabasi_albert(n, 2, rng)});
  if (n >= 8) out.push_back({"watts-strogatz", watts_strogatz(n, 2, 0.2, rng)});
  {
    std::size_t r = 1;
    while ((r + 1) * (r + 1) <= n) ++r;
    out.push_back({"grid", grid(r, n / r)});
  }
  out.push_back({"random-tree", random_tree(n, rng)});
  out.push_back({"star", star(n)});
  return out;
}

EdgeMap<std::uint64_t> random_integer_weights(const Graph& g, std::uint64_t lo,
                                              std::uint64_t hi, Rng& rng) {
  EdgeMap<std::uint64_t> w(g.edge_count());
  for (auto& x : w) x = rng.uniform(lo, hi);
  return w;
}

}  // namespace cpr
