// Directed graph substrate for Section 5 (non-delimited / BGP algebras).
//
// The paper models the inter-domain network as a simple, symmetric,
// strongly connected digraph with possibly asymmetric weights: every arc
// (u,v) has a paired reverse arc (v,u), and the two carry independent
// weights (w(i,j) = p implies w(j,i) = c in the provider-customer algebra).
// We store the pairing explicitly so algebra weight assignments can enforce
// the reversal rule.
#pragma once

#include "graph/graph.hpp"

#include <vector>

namespace cpr {

using ArcId = std::uint32_t;
inline constexpr ArcId kInvalidArc = static_cast<ArcId>(-1);

template <typename W>
using ArcMap = std::vector<W>;

class Digraph {
 public:
  struct Arc {
    NodeId from, to;
    ArcId reverse;  // the paired opposite-direction arc
  };

  Digraph() = default;
  explicit Digraph(std::size_t n) : out_(n), in_degree_(n, 0) {}

  NodeId add_node();

  // Adds the symmetric arc pair u->v and v->u; returns the id of u->v
  // (the reverse is always that id + 1). Simple-graph rules apply.
  ArcId add_arc_pair(NodeId u, NodeId v);

  std::size_t node_count() const { return out_.size(); }
  std::size_t arc_count() const { return arcs_.size(); }

  std::size_t out_degree(NodeId v) const { return out_[v].size(); }
  std::size_t in_degree(NodeId v) const { return in_degree_[v]; }

  const Arc& arc(ArcId a) const { return arcs_[a]; }
  ArcId reverse(ArcId a) const { return arcs_[a].reverse; }

  // Out-arc ids from v; the position of an arc in this list is v's local
  // port number for it.
  const std::vector<ArcId>& out_arcs(NodeId v) const { return out_[v]; }

  ArcId find_arc(NodeId u, NodeId v) const;
  bool has_arc(NodeId u, NodeId v) const {
    return find_arc(u, v) != kInvalidArc;
  }

  // The undirected shadow of the digraph (one edge per arc pair), used by
  // Theorem 6's reduction to the usable-path algebra on G'.
  Graph undirected_shadow() const;

 private:
  std::vector<std::vector<ArcId>> out_;
  std::vector<std::size_t> in_degree_;
  std::vector<Arc> arcs_;
};

}  // namespace cpr
