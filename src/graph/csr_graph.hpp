// Flat-memory (CSR) view of a Graph, built once and read from hot loops.
//
// Graph stores one std::vector<Adjacency> per node — convenient while the
// topology is being built, but every neighbor scan chases a second
// pointer and the per-node vectors are scattered across the heap. The
// constructions this library spends its time in (per-root policy-Dijkstra
// sweeps, Cowen ball/cluster growth, table fill) only ever *read* the
// topology, so they route over this compressed-sparse-row snapshot
// instead: one offsets array plus one packed {neighbor, edge} array,
// adjacency in port order, everything contiguous.
//
// Port semantics are preserved exactly: port p of node v is position
// offsets[v] + p, the same Adjacency record Graph::neighbors(v)[p] holds.
// On top of the port-ordered rows the view keeps a neighbor-sorted
// permutation per row so port_to/has_edge — the lookup scheme
// construction loops (Cowen table fill, tree-router forwarding) hammer —
// can binary-search hub rows in O(log deg u); short rows take a
// contiguous linear scan instead, which is faster below a few dozen
// neighbors.
//
// The view is a snapshot: mutating the source Graph afterwards does not
// update it (rebuild instead). It does not hold a reference to the Graph.
#pragma once

#include "graph/graph.hpp"

#include <span>

namespace cpr {

class CsrGraph {
 public:
  // port_to scans rows of at most this many neighbors linearly and
  // binary-searches longer ones. The crossover is empirical: on the
  // sparse sweep topologies (mean degree ~6) a handful of contiguous
  // compares beats the branchy search plus the permutation indirection,
  // and hub rows are where the O(log deg) search pays off.
  // Re-measured for the v3 Eytzinger work (fib/flat_fib.hpp,
  // kRowSearchLinearCutoff): the branchless mirror search edges out the
  // scan even at short lengths, but keeping short compiled rows on the
  // scan path costs ≤ ~20% on a minority population and buys mirror-less
  // v2 arenas full-speed service — so both cutoffs stay pinned at 16
  // and are asserted equal in tests/test_fib_simd.cpp.
  // tests/test_csr_graph.cpp pins both sides of the boundary.
  static constexpr std::size_t kPortToLinearScanCutoff = 16;

  CsrGraph() = default;
  explicit CsrGraph(const Graph& g);

  std::size_t node_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t edge_count() const { return edges_.size(); }

  std::size_t degree(NodeId v) const {
    return offsets_[v + 1] - offsets_[v];
  }
  std::size_t max_degree() const { return max_degree_; }

  // Port p at node v leads to this neighbor / over this edge (identical
  // numbering to the source Graph).
  NodeId neighbor(NodeId v, Port p) const { return adj_[offsets_[v] + p].neighbor; }
  EdgeId edge_at(NodeId v, Port p) const { return adj_[offsets_[v] + p].edge; }

  // The adjacency row of v in port order, as a contiguous span.
  std::span<const Graph::Adjacency> neighbors(NodeId v) const {
    return {adj_.data() + offsets_[v], degree(v)};
  }

  // Global slot index of port 0 at v (row_begin(v) + p addresses port p);
  // lets callers keep per-slot side arrays aligned with the packed rows,
  // e.g. the edge weights all_pairs_trees gathers once per sweep batch.
  std::size_t row_begin(NodeId v) const { return offsets_[v]; }

  // Port at u that leads to v, or kInvalidPort. O(log deg u).
  Port port_to(NodeId u, NodeId v) const;

  bool has_edge(NodeId u, NodeId v) const {
    return port_to(u, v) != kInvalidPort;
  }

  const Graph::Edge& edge(EdgeId e) const { return edges_[e]; }
  const std::vector<Graph::Edge>& edges() const { return edges_; }

  // The endpoint of e that is not `from`.
  NodeId opposite(EdgeId e, NodeId from) const {
    return edges_[e].u == from ? edges_[e].v : edges_[e].u;
  }

 private:
  std::vector<std::uint32_t> offsets_;       // n + 1 row starts into adj_
  std::vector<Graph::Adjacency> adj_;        // packed rows, port order
  std::vector<NodeId> sorted_neighbors_;     // per row: neighbor ids ascending
  std::vector<Port> sorted_ports_;           // parallel: port of that neighbor
  std::vector<Graph::Edge> edges_;           // endpoint pairs by edge id
  std::size_t max_degree_ = 0;
};

}  // namespace cpr
