// Topology generators for the experiment sweeps.
//
// The memory-requirement definition (Definition 2) quantifies over all
// graphs of size n; the benchmarks approximate that with a family sweep
// covering the standard shapes from the compact-routing literature
// (Erdős–Rényi, Barabási–Albert, Watts–Strogatz, grids, hypercubes, trees,
// stars, rings) plus the adversarial constructions in src/lowerbound/.
#pragma once

#include "graph/graph.hpp"
#include "util/random.hpp"

#include <string>
#include <vector>

namespace cpr {

// G(n,p) conditioned on connectivity: resamples until connected (p must be
// comfortably above the connectivity threshold) or, after `max_tries`,
// connects leftover components with random edges.
Graph erdos_renyi_connected(std::size_t n, double p, Rng& rng,
                            int max_tries = 32);

// Barabási–Albert preferential attachment, m edges per new node.
Graph barabasi_albert(std::size_t n, std::size_t m, Rng& rng);

// Tunable power-law attachment for the Internet-like construction sweeps:
// like barabasi_albert, but each of a new node's m attachment draws is
// uniform over existing nodes with probability uniform_mix (0 = pure BA,
// tail exponent 3; larger values flatten the hubs toward uniform random
// attachment). uniform_mix must be in [0, 1].
Graph preferential_attachment(std::size_t n, std::size_t m,
                              double uniform_mix, Rng& rng);

// Watts–Strogatz small world: ring lattice with k nearest neighbors per
// side, each edge rewired with probability beta (rewires that would create
// duplicates are skipped).
Graph watts_strogatz(std::size_t n, std::size_t k, double beta, Rng& rng);

// rows x cols grid.
Graph grid(std::size_t rows, std::size_t cols);

// d-dimensional hypercube (2^d nodes).
Graph hypercube(unsigned dimensions);

// Uniform random labeled tree (random attachment to an earlier node).
Graph random_tree(std::size_t n, Rng& rng);

Graph star(std::size_t n);
Graph ring(std::size_t n);
Graph complete(std::size_t n);
Graph path_graph(std::size_t n);

// Balanced k-ary tree with n nodes.
Graph kary_tree(std::size_t n, std::size_t arity);

// Caterpillar: a path spine with `legs_per_node` leaves on every spine
// node — moderate degree, deep structure (tree-routing stressor).
Graph caterpillar(std::size_t spine, std::size_t legs_per_node);

// Broom: a path of `handle` nodes ending in a star of `bristles` leaves —
// combines depth with one huge-degree hub.
Graph broom(std::size_t handle, std::size_t bristles);

// Lollipop: a clique of `clique` nodes with a path of `tail` nodes hanging
// off it (the classic hitting-time pathology; dense + deep).
Graph lollipop(std::size_t clique, std::size_t tail);

// Complete bipartite K_{a,b}.
Graph complete_bipartite(std::size_t a, std::size_t b);

// A named family for sweeps.
struct FamilyInstance {
  std::string name;
  Graph graph;
};

// Instantiates the default benchmark family set at the given size.
std::vector<FamilyInstance> standard_families(std::size_t n, Rng& rng);

// Random edge weights in [lo, hi] as integers, one per edge.
EdgeMap<std::uint64_t> random_integer_weights(const Graph& g, std::uint64_t lo,
                                              std::uint64_t hi, Rng& rng);

}  // namespace cpr
