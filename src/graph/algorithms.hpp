// Basic graph algorithms shared by the routing layers: connectivity,
// BFS distance fields, spanning-tree extraction, and Tarjan SCCs on the
// directed substrate (used by the SVFC decomposition of Theorem 7).
#pragma once

#include "graph/digraph.hpp"
#include "graph/graph.hpp"

#include <functional>
#include <optional>
#include <vector>

namespace cpr {

bool is_connected(const Graph& g);

// Component index per node, components numbered from 0.
std::vector<NodeId> connected_components(const Graph& g);

// Hop distances from `source`; unreachable nodes get SIZE_MAX.
std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source);

// BFS tree parent pointers from `source` (source's parent is itself).
std::vector<NodeId> bfs_parents(const Graph& g, NodeId source);

// Exact hop diameter via BFS from every node (O(nm)); returns 0 for n <= 1.
std::size_t hop_diameter(const Graph& g);

// Checks that `tree_edges` (by edge id) forms a spanning tree of g.
bool is_spanning_tree(const Graph& g, const std::vector<EdgeId>& tree_edges);

// Union-find used by the Kruskal-style preferred-spanning-tree builder
// (Lemma 1's constructive direction).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);
  std::size_t find(std::size_t x);
  // Returns false if x and y were already joined.
  bool unite(std::size_t x, std::size_t y);

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
};

// Tarjan strongly connected components over an arbitrary successor
// relation (so callers can filter arcs, e.g. "customer-provider arcs
// only" for SVFCs). Returns a component index per node; components are
// numbered in reverse topological order.
std::vector<NodeId> strongly_connected_components(
    std::size_t n, const std::function<std::vector<NodeId>(NodeId)>& succ);

// Topological order of a DAG given by `succ`; nullopt if a cycle exists.
// Used to check Assumption A2 (no directed provider cycles).
std::optional<std::vector<NodeId>> topological_order(
    std::size_t n, const std::function<std::vector<NodeId>(NodeId)>& succ);

}  // namespace cpr
