#include "graph/csr_graph.hpp"

#include <algorithm>
#include <numeric>

namespace cpr {

CsrGraph::CsrGraph(const Graph& g) {
  const std::size_t n = g.node_count();
  offsets_.resize(n + 1);
  offsets_[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + static_cast<std::uint32_t>(g.degree(v));
    max_degree_ = std::max(max_degree_, g.degree(v));
  }
  adj_.resize(offsets_[n]);
  sorted_neighbors_.resize(offsets_[n]);
  sorted_ports_.resize(offsets_[n]);
  for (NodeId v = 0; v < n; ++v) {
    const auto& row = g.neighbors(v);
    std::copy(row.begin(), row.end(), adj_.begin() + offsets_[v]);
    // Neighbor-sorted permutation of the row for the binary-search lookup.
    Port* ports = sorted_ports_.data() + offsets_[v];
    std::iota(ports, ports + row.size(), Port{0});
    std::sort(ports, ports + row.size(), [&row](Port a, Port b) {
      return row[a].neighbor < row[b].neighbor;
    });
    for (std::size_t k = 0; k < row.size(); ++k) {
      sorted_neighbors_[offsets_[v] + k] = row[ports[k]].neighbor;
    }
  }
  edges_ = g.edges();
}

Port CsrGraph::port_to(NodeId u, NodeId v) const {
  const std::size_t begin = offsets_[u];
  const std::size_t deg = offsets_[u + 1] - begin;
  // Short rows: scan the port-ordered row directly (see the constant's
  // comment for the crossover rationale); the binary search over the
  // neighbor-sorted permutation only pays off on hub rows.
  if (deg <= kPortToLinearScanCutoff) {
    const Graph::Adjacency* row = adj_.data() + begin;
    for (std::size_t p = 0; p < deg; ++p) {
      if (row[p].neighbor == v) return static_cast<Port>(p);
    }
    return kInvalidPort;
  }
  const NodeId* first = sorted_neighbors_.data() + begin;
  const NodeId* last = first + deg;
  const NodeId* it = std::lower_bound(first, last, v);
  if (it == last || *it != v) return kInvalidPort;
  return sorted_ports_[begin + (it - first)];
}

}  // namespace cpr
