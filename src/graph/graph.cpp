#include "graph/graph.hpp"

#include <stdexcept>

namespace cpr {

NodeId Graph::add_node() {
  adj_.emplace_back();
  return static_cast<NodeId>(adj_.size() - 1);
}

EdgeId Graph::add_edge(NodeId u, NodeId v) {
  if (u >= adj_.size() || v >= adj_.size()) {
    throw std::out_of_range("Graph::add_edge: node id out of range");
  }
  if (u == v) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (has_edge(u, v)) {
    throw std::invalid_argument("Graph::add_edge: parallel edge");
  }
  const EdgeId e = static_cast<EdgeId>(edges_.size());
  edges_.push_back({u, v});
  adj_[u].push_back({v, e});
  adj_[v].push_back({u, e});
  return e;
}

std::size_t Graph::max_degree() const {
  std::size_t d = 0;
  for (const auto& a : adj_) d = std::max(d, a.size());
  return d;
}

Port Graph::port_to(NodeId u, NodeId v) const {
  for (std::size_t p = 0; p < adj_[u].size(); ++p) {
    if (adj_[u][p].neighbor == v) return static_cast<Port>(p);
  }
  return kInvalidPort;
}

}  // namespace cpr
