#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cpr {

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.node_count() << " " << g.edge_count() << "\n";
  for (const auto& e : g.edges()) {
    out << e.u << " " << e.v << "\n";
  }
}

Graph read_edge_list(std::istream& in) {
  std::size_t n = 0, m = 0;
  if (!(in >> n >> m)) throw std::runtime_error("read_edge_list: bad header");
  Graph g(n);
  for (std::size_t i = 0; i < m; ++i) {
    NodeId u = 0, v = 0;
    if (!(in >> u >> v)) throw std::runtime_error("read_edge_list: bad edge");
    g.add_edge(u, v);
  }
  return g;
}

void write_weighted_edge_list(const Graph& g,
                              const EdgeMap<std::uint64_t>& weights,
                              std::ostream& out) {
  out << g.node_count() << " " << g.edge_count() << "\n";
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    out << g.edge(e).u << " " << g.edge(e).v << " " << weights[e] << "\n";
  }
}

Graph read_weighted_edge_list(std::istream& in,
                              EdgeMap<std::uint64_t>& weights_out) {
  std::size_t n = 0, m = 0;
  if (!(in >> n >> m)) {
    throw std::runtime_error("read_weighted_edge_list: bad header");
  }
  Graph g(n);
  weights_out.clear();
  for (std::size_t i = 0; i < m; ++i) {
    NodeId u = 0, v = 0;
    std::uint64_t w = 0;
    if (!(in >> u >> v >> w)) {
      throw std::runtime_error("read_weighted_edge_list: bad edge");
    }
    g.add_edge(u, v);
    weights_out.push_back(w);
  }
  return g;
}

std::string to_dot(const Graph& g,
                   const std::vector<std::string>* edge_labels) {
  std::ostringstream out;
  out << "graph G {\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out << "  n" << v << ";\n";
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    out << "  n" << g.edge(e).u << " -- n" << g.edge(e).v;
    if (edge_labels && e < edge_labels->size()) {
      out << " [label=\"" << (*edge_labels)[e] << "\"]";
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

std::string to_dot(const Digraph& g,
                   const std::vector<std::string>* arc_labels) {
  std::ostringstream out;
  out << "digraph G {\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out << "  n" << v << ";\n";
  }
  for (ArcId a = 0; a < g.arc_count(); ++a) {
    out << "  n" << g.arc(a).from << " -> n" << g.arc(a).to;
    if (arc_labels && a < arc_labels->size()) {
      out << " [label=\"" << (*arc_labels)[a] << "\"]";
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace cpr
