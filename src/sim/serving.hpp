// Churn served through the multi-process plane, end to end.
//
// measure_resilience_under_churn (sim/resilience.hpp) exercises the
// in-process patch path: one MaintainedFib, readers on the same arena.
// This module drives the *deployment* topology on top of it — a writer
// role that absorbs churn and publishes generations into an ArenaStore,
// and a reader role that discovers, validates and mmaps those
// generations between batches, exactly as a separate serving process
// would (the fork-based tests run the reader in a real child process;
// here both roles live in one process so sims and benches can measure
// the pipeline without fork plumbing).
//
// The reader intentionally serves whatever generation the store last
// made durable, which lags the writer's in-memory arena by up to
// `publish_every` events: the staleness window of a router fleet whose
// compiler pushes FIB updates in batches. The report separates what the
// writer did (publishes, compactions) from what the reader saw
// (distinct generations, delivery under the *current* failure mask), so
// a sim can dial publish_every and watch staleness eat delivery.
#pragma once

#include "fib/arena_store.hpp"
#include "fib/compile.hpp"
#include "fib/forward_engine.hpp"
#include "sim/churn.hpp"

#include <filesystem>
#include <utility>
#include <vector>

namespace cpr {

struct StoreServeReport {
  std::size_t events = 0;
  std::size_t published = 0;         // generations the writer made durable
  std::size_t generations_seen = 0;  // distinct arenas the reader adopted
  std::uint64_t last_generation = 0; // newest generation the reader served
  std::size_t queries = 0;
  std::size_t delivered = 0;         // against the live failure mask
  FibMaintainStats maintain;         // the writer's patch/compaction mix

  double delivery_fraction() const {
    return queries ? static_cast<double>(delivered) / queries : 1.0;
  }
};

// Plays `trace` through scheme + engine while serving every event's
// queries from the store: the writer absorbs each event into a
// MaintainedFib and publishes the arena every `publish_every` events
// (and always after the last), the reader re-resolves the current
// generation between batches and serves forward_batch from the mmap'd
// blob. S must be FIB-compilable; with a Cowen scheme the absorbs are
// mostly in-place seqlock patches and publishes are cheap blob dumps.
template <RoutingAlgebra A, typename S>
StoreServeReport serve_churn_through_store(
    S& scheme, ChurnEngine<A>& engine,
    const std::vector<ChurnEvent<typename A::Weight>>& trace,
    const std::filesystem::path& dir, std::size_t pairs_per_event, Rng& rng,
    std::size_t publish_every = 1) {
  const Graph& g = engine.graph();
  StoreServeReport report;
  if (g.node_count() == 0) return report;

  ArenaStore writer(dir);
  ArenaStore reader(dir);  // separate instance: its own mmap lifecycle
  MaintainedFib<S> plane(scheme, g);
  writer.publish(plane.fib());
  ++report.published;

  std::uint64_t last_seen = 0;
  const auto serve_batch = [&](const std::vector<bool>& down) {
    const auto arena = reader.current();
    if (!arena) return;  // nothing validated yet
    if (arena->generation() != last_seen) {
      last_seen = arena->generation();
      report.last_generation = last_seen;
      ++report.generations_seen;
    }
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(pairs_per_event);
    while (pairs.size() < pairs_per_event) {
      const NodeId s = static_cast<NodeId>(rng.index(g.node_count()));
      const NodeId t = static_cast<NodeId>(rng.index(g.node_count()));
      if (s != t) pairs.emplace_back(s, t);
    }
    if (pairs.empty()) return;
    FibBatchOptions opt;
    opt.record_paths = false;
    opt.edge_down = &down;
    const FibBatchOutput out = forward_batch(arena->fib(), pairs, opt);
    for (const FibRouteResult& r : out.results) {
      ++report.queries;
      report.delivered += r.delivered;
    }
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto applied = engine.apply(trace[i]);
    ++report.events;
    const auto repair = scheme.apply_event(applied.edge, applied.old_weight,
                                           applied.new_weight,
                                           engine.weights());
    if constexpr (requires { repair.fib_delta; }) {
      plane.absorb(repair.fib_delta, scheme);
    } else {
      plane.absorb(FibDelta{.recompile = true}, scheme);
    }
    if ((i + 1) % publish_every == 0 || i + 1 == trace.size()) {
      writer.publish(plane.fib());
      ++report.published;
    }
    serve_batch(engine.down_mask());
  }
  report.maintain = plane.stats();
  return report;
}

}  // namespace cpr
