// Churn served through the multi-process plane, end to end.
//
// measure_resilience_under_churn (sim/resilience.hpp) exercises the
// in-process patch path: one MaintainedFib, readers on the same arena.
// This module drives the *deployment* topology on top of it — a writer
// role that absorbs churn and publishes generations into an ArenaStore,
// and a reader role that discovers, validates and mmaps those
// generations between batches, exactly as a separate serving process
// would (the fork-based tests run the reader in a real child process;
// here both roles live in one process so sims and benches can measure
// the pipeline without fork plumbing).
//
// The reader intentionally serves whatever generation the store last
// made durable, which lags the writer's in-memory arena by up to
// `publish_every` events: the staleness window of a router fleet whose
// compiler pushes FIB updates in batches. The report separates what the
// writer did (publishes, compactions) from what the reader saw
// (distinct generations, delivery under the *current* failure mask), so
// a sim can dial publish_every and watch staleness eat delivery.
#pragma once

#include "fib/arena_store.hpp"
#include "fib/compile.hpp"
#include "fib/fib_delta.hpp"
#include "fib/forward_engine.hpp"
#include "fib/patch_channel.hpp"
#include "sim/churn.hpp"

#include <filesystem>
#include <utility>
#include <vector>

namespace cpr {

struct StoreServeReport {
  std::size_t events = 0;
  std::size_t published = 0;         // generations the writer made durable
  std::size_t generations_seen = 0;  // distinct arenas the reader adopted
  std::uint64_t last_generation = 0; // newest generation the reader served
  std::size_t queries = 0;
  std::size_t delivered = 0;         // against the live failure mask
  FibMaintainStats maintain;         // the writer's patch/compaction mix

  double delivery_fraction() const {
    return queries ? static_cast<double>(delivered) / queries : 1.0;
  }
};

// Plays `trace` through scheme + engine while serving every event's
// queries from the store: the writer absorbs each event into a
// MaintainedFib and publishes the arena every `publish_every` events
// (and always after the last), the reader re-resolves the current
// generation between batches and serves forward_batch from the mmap'd
// blob. S must be FIB-compilable; with a Cowen scheme the absorbs are
// mostly in-place seqlock patches and publishes are cheap blob dumps.
template <RoutingAlgebra A, typename S>
StoreServeReport serve_churn_through_store(
    S& scheme, ChurnEngine<A>& engine,
    const std::vector<ChurnEvent<typename A::Weight>>& trace,
    const std::filesystem::path& dir, std::size_t pairs_per_event, Rng& rng,
    std::size_t publish_every = 1) {
  const Graph& g = engine.graph();
  StoreServeReport report;
  if (g.node_count() == 0) return report;

  ArenaStore writer(dir);
  ArenaStore reader(dir);  // separate instance: its own mmap lifecycle
  MaintainedFib<S> plane(scheme, g);
  writer.publish(plane.fib());
  ++report.published;

  std::uint64_t last_seen = 0;
  const auto serve_batch = [&](const std::vector<bool>& down) {
    const auto arena = reader.current();
    if (!arena) return;  // nothing validated yet
    if (arena->generation() != last_seen) {
      last_seen = arena->generation();
      report.last_generation = last_seen;
      ++report.generations_seen;
    }
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(pairs_per_event);
    while (pairs.size() < pairs_per_event) {
      const NodeId s = static_cast<NodeId>(rng.index(g.node_count()));
      const NodeId t = static_cast<NodeId>(rng.index(g.node_count()));
      if (s != t) pairs.emplace_back(s, t);
    }
    if (pairs.empty()) return;
    FibBatchOptions opt;
    opt.record_paths = false;
    opt.edge_down = &down;
    const FibBatchOutput out = forward_batch(arena->fib(), pairs, opt);
    for (const FibRouteResult& r : out.results) {
      ++report.queries;
      report.delivered += r.delivered;
    }
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto applied = engine.apply(trace[i]);
    ++report.events;
    const auto repair = scheme.apply_event(applied.edge, applied.old_weight,
                                           applied.new_weight,
                                           engine.weights());
    if constexpr (requires { repair.fib_delta; }) {
      plane.absorb(repair.fib_delta, scheme);
    } else {
      FibDelta recompile;
      recompile.recompile = true;
      plane.absorb(recompile, scheme);
    }
    if ((i + 1) % publish_every == 0 || i + 1 == trace.size()) {
      writer.publish(plane.fib());
      ++report.published;
    }
    serve_batch(engine.down_mask());
  }
  report.maintain = plane.stats();
  return report;
}

// ---- The patch-channel deployment (live segment, zero-republish) ----

struct ChannelServeReport {
  std::size_t events = 0;
  std::size_t published = 0;         // full generations (initial + refused)
  std::size_t patched = 0;           // deltas absorbed live, zero republish
  std::size_t refused = 0;           // deltas the channel compacted instead
  std::size_t generations_seen = 0;  // distinct arenas the reader adopted
  std::uint64_t last_generation = 0;
  std::uint64_t patches_visible = 0; // reader-side header counter, final
  std::size_t channel_batches = 0;   // batches served through the segment
  std::size_t queries = 0;
  std::size_t delivered = 0;         // against the live failure mask

  double delivery_fraction() const {
    return queries ? static_cast<double>(delivered) / queries : 1.0;
  }
};

// The same pipeline over the shared-memory patch channel: the writer
// publishes ONE generation's segment, then streams every event's delta
// through PatchChannelWriter::apply — seqlock-bracketed stores in the
// MAP_SHARED mapping — and the reader serves each batch from its live
// PatchChannelReader snapshot. Unlike serve_churn_through_store there is
// no publish_every staleness dial: a patched row is visible to the next
// batch with no republish at all, and `published` only grows when a
// delta demands recompile (slack exhausted / structural change), which
// is the channel's compaction path. `patched`, `patches_visible` and
// `generations_seen` together prove which route every update took.
template <RoutingAlgebra A, typename S>
ChannelServeReport serve_churn_through_channel(
    S& scheme, ChurnEngine<A>& engine,
    const std::vector<ChurnEvent<typename A::Weight>>& trace,
    const std::filesystem::path& dir, std::size_t pairs_per_event, Rng& rng,
    std::uint64_t fence_token = 1) {
  const Graph& g = engine.graph();
  ChannelServeReport report;
  if (g.node_count() == 0) return report;

  // Slacked compile so single-row repairs patch in place instead of
  // forcing a republish per event (same options the maintainer uses).
  const FibCompileOptions copt = fib_churn_maintain_options().compile;
  PatchChannelWriter writer = PatchChannelWriter::acquire(dir, fence_token);
  writer.publish(compile_fib(scheme, g, copt));
  ++report.published;
  PatchChannelReader reader(dir);

  const auto serve_batch = [&](const std::vector<bool>& down) {
    const auto arena = reader.current();
    if (!arena) return;
    if (arena->arena_generation() != report.last_generation ||
        report.generations_seen == 0) {
      report.last_generation = arena->arena_generation();
      ++report.generations_seen;
    }
    report.patches_visible = arena->patches_applied();
    report.channel_batches += arena->via_channel() ? 1 : 0;
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(pairs_per_event);
    while (pairs.size() < pairs_per_event) {
      const NodeId s = static_cast<NodeId>(rng.index(g.node_count()));
      const NodeId t = static_cast<NodeId>(rng.index(g.node_count()));
      if (s != t) pairs.emplace_back(s, t);
    }
    if (pairs.empty()) return;
    FibBatchOptions opt;
    opt.record_paths = false;
    opt.edge_down = &down;
    // The segment is live under the writer; ride out patch windows.
    opt.seqlock_max_retries = 1u << 20;
    const FibBatchOutput out = forward_batch(arena->fib(), pairs, opt);
    for (const FibRouteResult& r : out.results) {
      ++report.queries;
      report.delivered += r.delivered;
    }
  };

  for (const auto& ev : trace) {
    const auto applied = engine.apply(ev);
    ++report.events;
    const auto repair = scheme.apply_event(applied.edge, applied.old_weight,
                                           applied.new_weight,
                                           engine.weights());
    FibDelta delta;
    if constexpr (requires { repair.fib_delta; }) {
      delta = repair.fib_delta;
    } else {
      delta.recompile = true;
    }
    if (writer.apply(delta)) {
      ++report.patched;
    } else {
      writer.publish(compile_fib(scheme, g, copt));
      ++report.published;
      ++report.refused;
    }
    serve_batch(engine.down_mask());
  }
  return report;
}

}  // namespace cpr
