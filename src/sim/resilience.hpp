// Failure injection for static routing schemes.
//
// The routing-function model is oblivious: forwarding state is computed
// once, so a scheme cannot react when links disappear. This harness walks
// packets through a scheme while a set of edges is down — a packet that
// is directed onto a failed edge is dropped — and measures the delivery
// degradation. The interesting systems question it answers (bench_resilience):
// how much *robustness* do the compact schemes give up along with memory?
// A spanning-tree scheme loses entire subtrees per failed tree edge, the
// Cowen scheme loses cluster and landmark routes crossing the failure,
// while destination tables only lose the pairs whose preferred path used
// the edge.
#pragma once

#include "graph/algorithms.hpp"
#include "scheme/scheme.hpp"
#include "util/random.hpp"

#include <vector>

namespace cpr {

template <CompactRoutingScheme S>
RouteResult simulate_route_with_failures(const S& scheme, const Graph& g,
                                         const std::vector<bool>& edge_down,
                                         NodeId source, NodeId target,
                                         std::size_t max_hops = 0) {
  if (max_hops == 0) max_hops = 4 * g.node_count() + 16;
  RouteResult result;
  result.path.push_back(source);
  typename S::Header header = scheme.make_header(target);
  NodeId current = source;
  for (std::size_t step = 0; step <= max_hops; ++step) {
    const Decision d = scheme.forward(current, header);
    if (d.deliver) {
      result.delivered = (current == target);
      return result;
    }
    if (d.port == kInvalidPort || d.port >= g.degree(current)) return result;
    const EdgeId e = g.edge_at(current, d.port);
    if (edge_down[e]) return result;  // packet dropped at the dead link
    current = g.neighbor(current, d.port);
    result.path.push_back(current);
  }
  return result;
}

struct ResilienceReport {
  std::size_t failed_edges = 0;
  std::size_t pairs_tested = 0;
  std::size_t delivered = 0;
  // Pairs that remained connected in the degraded graph yet were lost by
  // the (static) scheme — the scheme's own fragility, separated from
  // physical partition.
  std::size_t lost_but_connected = 0;

  double delivery_rate() const {
    return pairs_tested
               ? static_cast<double>(delivered) / pairs_tested
               : 1.0;
  }
};

// Fails `failures` distinct random edges and routes `trials` random pairs.
template <CompactRoutingScheme S>
ResilienceReport measure_resilience(const S& scheme, const Graph& g,
                                    std::size_t failures, std::size_t trials,
                                    Rng& rng) {
  ResilienceReport report;
  report.failed_edges = std::min(failures, g.edge_count());
  std::vector<bool> down(g.edge_count(), false);
  for (std::size_t i :
       rng.sample_without_replacement(g.edge_count(), report.failed_edges)) {
    down[i] = true;
  }
  // Connectivity of the degraded graph, for the lost-but-connected split.
  Graph degraded(g.node_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!down[e]) degraded.add_edge(g.edge(e).u, g.edge(e).v);
  }
  const std::vector<NodeId> comp = connected_components(degraded);

  for (std::size_t i = 0; i < trials; ++i) {
    const NodeId s = static_cast<NodeId>(rng.index(g.node_count()));
    const NodeId t = static_cast<NodeId>(rng.index(g.node_count()));
    if (s == t) continue;
    ++report.pairs_tested;
    const RouteResult r =
        simulate_route_with_failures(scheme, g, down, s, t);
    if (r.delivered) {
      ++report.delivered;
    } else if (comp[s] == comp[t]) {
      ++report.lost_but_connected;
    }
  }
  return report;
}

}  // namespace cpr
