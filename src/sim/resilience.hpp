// Failure injection for static routing schemes.
//
// The routing-function model is oblivious: forwarding state is computed
// once, so a scheme cannot react when links disappear. This harness walks
// packets through a scheme while a set of edges is down — a packet that
// is directed onto a failed edge is dropped — and measures the delivery
// degradation. The interesting systems question it answers (bench_resilience):
// how much *robustness* do the compact schemes give up along with memory?
// A spanning-tree scheme loses entire subtrees per failed tree edge, the
// Cowen scheme loses cluster and landmark routes crossing the failure,
// while destination tables only lose the pairs whose preferred path used
// the edge.
#pragma once

#include "fib/compile.hpp"
#include "fib/forward_engine.hpp"
#include "graph/algorithms.hpp"
#include "scheme/scheme.hpp"
#include "sim/churn.hpp"
#include "util/random.hpp"

#include <concepts>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace cpr {

// Walks a packet while `edge_down` edges drop it. Forwarding loops are
// detected exactly when the header type is equality-comparable: the pair
// (node, header-before-forward) fully determines every later step, so
// revisiting one is a proven loop and the walk stops with `looped` set —
// instead of burning the whole 4·n+16 hop budget and reporting the loop
// indistinguishably from a long path. Schemes whose headers cannot be
// compared keep the hop cap as the only guard.
template <CompactRoutingScheme S>
RouteResult simulate_route_with_failures(const S& scheme, const Graph& g,
                                         const std::vector<bool>& edge_down,
                                         NodeId source, NodeId target,
                                         std::size_t max_hops = 0) {
  if (max_hops == 0) max_hops = 4 * g.node_count() + 16;
  RouteResult result;
  result.path.push_back(source);
  typename S::Header header = scheme.make_header(target);
  NodeId current = source;
  [[maybe_unused]] std::vector<std::pair<NodeId, typename S::Header>> visited;
  for (std::size_t step = 0; step <= max_hops; ++step) {
    if constexpr (std::equality_comparable<typename S::Header>) {
      for (const auto& [vn, vh] : visited) {
        if (vn == current && vh == header) {
          result.looped = true;
          return result;
        }
      }
      visited.emplace_back(current, header);
    }
    const Decision d = scheme.forward(current, header);
    if (d.deliver) {
      result.delivered = (current == target);
      return result;
    }
    if (d.port == kInvalidPort || d.port >= g.degree(current)) return result;
    const EdgeId e = g.edge_at(current, d.port);
    if (edge_down[e]) return result;  // packet dropped at the dead link
    current = g.neighbor(current, d.port);
    result.path.push_back(current);
  }
  return result;
}

// Per-pair (delivered, looped) flags under a failure mask. Schemes with a
// FIB adapter are compiled once and the whole batch runs on the flat
// plane (drop-at-dead-link + exact loop detection in the engine); others
// fall back to per-query simulate_route_with_failures. The flags are
// identical either way — the compiled kinds keep their header immutable
// across hops, so the engine's node-revisit stamp detects exactly the
// (node, header) revisits the oracle walk does.
template <CompactRoutingScheme S>
std::vector<std::pair<bool, bool>> route_pairs_with_failures(
    const S& scheme, const Graph& g, const std::vector<bool>& edge_down,
    std::span<const std::pair<NodeId, NodeId>> pairs,
    std::size_t max_hops = 0) {
  std::vector<std::pair<bool, bool>> flags(pairs.size(), {false, false});
  if constexpr (requires { compile_fib(scheme, g); }) {
    if (g.node_count() > 0 && !pairs.empty()) {
      const FlatFib fib = compile_fib(scheme, g);
      FibBatchOptions opt;
      opt.max_hops = max_hops;
      opt.record_paths = false;
      opt.edge_down = &edge_down;
      const FibBatchOutput out = forward_batch(fib, pairs, opt);
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        flags[i] = {out.results[i].delivered != 0, out.results[i].looped != 0};
      }
      return flags;
    }
  }
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const RouteResult r = simulate_route_with_failures(
        scheme, g, edge_down, pairs[i].first, pairs[i].second, max_hops);
    flags[i] = {r.delivered, r.looped};
  }
  return flags;
}

struct ResilienceReport {
  std::size_t failed_edges = 0;
  std::size_t pairs_tested = 0;
  std::size_t delivered = 0;
  // Pairs that remained connected in the degraded graph yet were lost by
  // the (static) scheme — the scheme's own fragility, separated from
  // physical partition.
  std::size_t lost_but_connected = 0;

  double delivery_rate() const {
    return pairs_tested
               ? static_cast<double>(delivered) / pairs_tested
               : 1.0;
  }
};

// Fails `failures` distinct random edges and routes `trials` random pairs.
template <CompactRoutingScheme S>
ResilienceReport measure_resilience(const S& scheme, const Graph& g,
                                    std::size_t failures, std::size_t trials,
                                    Rng& rng) {
  ResilienceReport report;
  report.failed_edges = std::min(failures, g.edge_count());
  std::vector<bool> down(g.edge_count(), false);
  for (std::size_t i :
       rng.sample_without_replacement(g.edge_count(), report.failed_edges)) {
    down[i] = true;
  }
  // Connectivity of the degraded graph, for the lost-but-connected split.
  Graph degraded(g.node_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!down[e]) degraded.add_edge(g.edge(e).u, g.edge(e).v);
  }
  const std::vector<NodeId> comp = connected_components(degraded);

  // Draw every pair first (same rng consumption as the old one-at-a-time
  // loop), then route them as one batch over the compiled plane.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(trials);
  for (std::size_t i = 0; i < trials; ++i) {
    const NodeId s = static_cast<NodeId>(rng.index(g.node_count()));
    const NodeId t = static_cast<NodeId>(rng.index(g.node_count()));
    if (s != t) pairs.emplace_back(s, t);
  }
  report.pairs_tested = pairs.size();
  const auto flags = route_pairs_with_failures(scheme, g, down, pairs);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (flags[i].first) {
      ++report.delivered;
    } else if (comp[pairs[i].first] == comp[pairs[i].second]) {
      ++report.lost_but_connected;
    }
  }
  return report;
}

// Degradation *during* convergence, not just after a static failure set:
// for every churn event, the same random pairs are routed twice — once
// against the stale scheme (the event hit the topology, repair has not
// run: the convergence window) and once after apply_event. The gap
// between the two delivery counts is what incremental repair buys.
struct ChurnResilienceReport {
  std::size_t events = 0;
  std::size_t pairs_per_event = 0;
  std::size_t stale_delivered = 0;     // during the convergence window
  std::size_t repaired_delivered = 0;  // after incremental repair
  std::size_t stale_loops = 0;         // proven forwarding loops while stale
  // How the compiled plane absorbed the trace (zero when the scheme has
  // no FIB adapter and the measurement fell back to the object path).
  std::size_t fib_patched = 0;      // events absorbed by in-place patching
  std::size_t fib_compactions = 0;  // events absorbed by full recompile

  double stale_rate() const {
    const std::size_t total = events * pairs_per_event;
    return total ? static_cast<double>(stale_delivered) / total : 1.0;
  }
  double repaired_rate() const {
    const std::size_t total = events * pairs_per_event;
    return total ? static_cast<double>(repaired_delivered) / total : 1.0;
  }
};

// S is a dynamic scheme (SpanningTreeScheme or CowenScheme): a
// CompactRoutingScheme with
//   apply_event(edge, old_w, new_w, weights).
// The engine must be the one scheme was built against; events are played
// through engine.apply, so afterwards both have absorbed the full trace.
//
// Schemes with a FIB adapter keep ONE compiled arena alive across the
// whole trace (MaintainedFib): the stale pass routes on the arena as the
// previous event left it, apply_event's FibDelta then patches it in
// place (compaction recompiles when slack runs out or the delta is too
// wide), and the repaired pass routes on the patched arena. Fresh
// per-event recompiles — the old behaviour — survive only as the
// differential oracle in tests/test_fib_delta.cpp.
template <RoutingAlgebra A, typename S>
ChurnResilienceReport measure_resilience_under_churn(
    S& scheme, ChurnEngine<A>& engine,
    const std::vector<ChurnEvent<typename A::Weight>>& trace,
    std::size_t pairs_per_event, Rng& rng) {
  const Graph& g = engine.graph();
  ChurnResilienceReport report;
  report.pairs_per_event = pairs_per_event;
  constexpr bool kCompiled = requires(const S& s, const Graph& gg) {
    compile_fib(s, gg);
  };
  std::optional<MaintainedFib<S>> plane;
  if constexpr (kCompiled) {
    if (g.node_count() > 0) plane.emplace(scheme, g);
  }
  for (const ChurnEvent<typename A::Weight>& ev : trace) {
    const auto applied = engine.apply(ev);
    ++report.events;
    const std::vector<bool> down = engine.down_mask();
    // Draw the pairs once so stale and repaired runs route identical
    // traffic.
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(pairs_per_event);
    while (pairs.size() < pairs_per_event) {
      const NodeId s = static_cast<NodeId>(rng.index(g.node_count()));
      const NodeId t = static_cast<NodeId>(rng.index(g.node_count()));
      if (s != t) pairs.emplace_back(s, t);
    }
    const auto run_pairs = [&]() -> std::vector<std::pair<bool, bool>> {
      if constexpr (kCompiled) {
        if (plane && !pairs.empty()) {
          FibBatchOptions opt;
          opt.record_paths = false;
          opt.edge_down = &down;
          // Pin the arena for the batch (RCU snapshot): a compaction in
          // absorb() swaps the maintained pointer, and this reference is
          // what keeps the superseded arena mapped until the walk ends.
          const std::shared_ptr<const FlatFib> arena = plane->arena();
          const FibBatchOutput out = forward_batch(*arena, pairs, opt);
          std::vector<std::pair<bool, bool>> flags(pairs.size());
          for (std::size_t i = 0; i < pairs.size(); ++i) {
            flags[i] = {out.results[i].delivered != 0,
                        out.results[i].looped != 0};
          }
          return flags;
        }
      }
      return route_pairs_with_failures(scheme, g, down, pairs);
    };
    // Stale pass: the arena still reflects the pre-event scheme — the
    // convergence window made concrete.
    for (const auto& [delivered, looped] : run_pairs()) {
      report.stale_delivered += delivered ? 1 : 0;
      report.stale_loops += looped ? 1 : 0;
    }
    const auto repair = scheme.apply_event(
        applied.edge, applied.old_weight, applied.new_weight,
        engine.weights());
    if constexpr (kCompiled) {
      if (plane) {
        if constexpr (requires { repair.fib_delta; }) {
          plane->absorb(repair.fib_delta, scheme);
        } else {
          // Repair path without delta emission: always recompile.
          FibDelta full;
          full.recompile = true;
          full.touched_nodes = g.node_count();
          plane->absorb(full, scheme);
        }
      }
    }
    for (const auto& [delivered, looped] : run_pairs()) {
      report.repaired_delivered += delivered ? 1 : 0;
    }
  }
  if constexpr (kCompiled) {
    if (plane) {
      report.fib_patched = plane->stats().patched;
      report.fib_compactions = plane->stats().compactions;
    }
  }
  return report;
}

}  // namespace cpr
