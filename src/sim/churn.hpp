// Dynamic-topology churn: timestamped edge up/down and weight-change
// events over a mutable weight overlay.
//
// The paper analyzes its schemes as static objects; a serving system has
// to survive its inputs changing. The model here keeps the Graph (and
// with it every port number) immutable and represents liveness in the
// *algebra*: a downed edge carries the invalid weight φ, which every
// solver already skips (`is_phi` guards each Dijkstra relaxation, the
// Kruskal build filters φ edges). That makes "rebuild from scratch on
// the current overlay" a well-defined oracle for the incremental repair
// paths: `SpanningTreeScheme::apply_event` and `CowenScheme::apply_event`
// must leave the scheme byte-identical to a fresh build on
// `engine.weights()` — the differential property pinned by
// tests/test_churn_differential.cpp.
//
// The engine also bridges to the Section-5 protocol simulator: edge-down
// events map to `LinkFailure`s on the mirrored digraph (failures become
// withdrawals there), so convergence behaviour under the same trace can
// be measured on both the compact schemes and the path-vector protocol.
#pragma once

#include "algebra/algebra.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "proto/path_vector_protocol.hpp"
#include "util/random.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace cpr {

enum class ChurnKind : std::uint8_t {
  kEdgeDown,      // the edge disappears (weight becomes φ)
  kEdgeUp,        // a previously-down edge reappears with new_weight
  kWeightChange,  // a live edge's weight changes to new_weight
};

template <typename W>
struct ChurnEvent {
  double time = 0;
  ChurnKind kind = ChurnKind::kEdgeDown;
  EdgeId edge = kInvalidEdge;
  W new_weight{};  // meaningful for kEdgeUp / kWeightChange only
};

// What an applied event did to the overlay, in the φ encoding the repair
// paths consume: old/new weight of the edge, φ meaning "down".
template <typename W>
struct AppliedChurn {
  EdgeId edge = kInvalidEdge;
  W old_weight{};
  W new_weight{};
};

// Connectivity of g restricted to alive edges (churn.cpp). Used by the
// trace generator to keep traces partition-free, and by tests.
bool connected_under_mask(const Graph& g, const std::vector<bool>& alive);

// Same, with edge `e` additionally considered down.
bool connected_without_edge(const Graph& g, const std::vector<bool>& alive,
                            EdgeId e);

// Directed mirror of an undirected graph: edge e becomes the arc pair
// {2e: u→v, 2e+1: v→u}, so churn events translate to protocol failures
// by arc id arithmetic alone (churn.cpp).
Digraph digraph_mirror(const Graph& g);

// The topology overlay itself. Holds the last live weight of every edge
// (so kEdgeDown needs no weight payload) and the φ-masked weight map the
// schemes and solvers read.
template <RoutingAlgebra A>
class ChurnEngine {
 public:
  using W = typename A::Weight;

  ChurnEngine(const A& alg, const Graph& g, EdgeMap<W> base)
      : alg_(alg),
        graph_(&g),
        live_(base),
        masked_(std::move(base)),
        alive_(g.edge_count(), true) {
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      if (alg_.is_phi(masked_[e])) alive_[e] = false;  // down from the start
    }
  }

  const Graph& graph() const { return *graph_; }
  // The φ-masked weight map: the authoritative current topology. Every
  // rebuild oracle and every apply_event call reads this.
  const EdgeMap<W>& weights() const { return masked_; }
  bool alive(EdgeId e) const { return alive_[e]; }

  std::size_t down_count() const {
    std::size_t c = 0;
    for (bool b : alive_) c += b ? 0 : 1;
    return c;
  }

  // Edge-down bitmap in the polarity simulate_route_with_failures takes.
  std::vector<bool> down_mask() const {
    std::vector<bool> down(alive_.size());
    for (std::size_t e = 0; e < alive_.size(); ++e) down[e] = !alive_[e];
    return down;
  }

  bool connected() const { return connected_under_mask(*graph_, alive_); }

  // Count of successfully applied events: the index the next event will
  // carry in diagnostics, so a throw pinpoints where a trace went bad.
  std::size_t applied_events() const { return applied_events_; }

  // Applies one event and returns the (old, new) weight transition.
  // Inconsistent events — downing a dead edge, raising a live one,
  // re-weighting a dead one, or a φ payload on up/change — throw, so
  // malformed traces fail loudly instead of silently desynchronizing the
  // engine from the schemes it feeds. Messages carry the event's index
  // in the applied sequence, its timestamp and its edge id.
  AppliedChurn<W> apply(const ChurnEvent<W>& ev) {
    if (ev.edge >= graph_->edge_count()) {
      throw std::invalid_argument(fail("event edge out of range", ev));
    }
    AppliedChurn<W> applied;
    applied.edge = ev.edge;
    applied.old_weight = masked_[ev.edge];
    switch (ev.kind) {
      case ChurnKind::kEdgeDown:
        if (!alive_[ev.edge]) {
          throw std::invalid_argument(fail("edge already down", ev));
        }
        alive_[ev.edge] = false;
        masked_[ev.edge] = alg_.phi();
        break;
      case ChurnKind::kEdgeUp:
        if (alive_[ev.edge]) {
          throw std::invalid_argument(fail("edge already up", ev));
        }
        if (alg_.is_phi(ev.new_weight)) {
          throw std::invalid_argument(fail("up event with phi weight", ev));
        }
        alive_[ev.edge] = true;
        live_[ev.edge] = ev.new_weight;
        masked_[ev.edge] = ev.new_weight;
        break;
      case ChurnKind::kWeightChange:
        if (!alive_[ev.edge]) {
          throw std::invalid_argument(fail("weight change on a down edge", ev));
        }
        if (alg_.is_phi(ev.new_weight)) {
          throw std::invalid_argument(
              fail("weight change to phi (use kEdgeDown)", ev));
        }
        live_[ev.edge] = ev.new_weight;
        masked_[ev.edge] = ev.new_weight;
        break;
    }
    applied.new_weight = masked_[ev.edge];
    ++applied_events_;
    return applied;
  }

 private:
  std::string fail(const char* what, const ChurnEvent<W>& ev) const {
    return "ChurnEngine: " + std::string(what) + " (event index " +
           std::to_string(applied_events_) + ", t=" + std::to_string(ev.time) +
           ", edge " + std::to_string(ev.edge) + ")";
  }

  const A alg_;
  const Graph* graph_;
  EdgeMap<W> live_;    // last live weight per edge (down edges keep theirs)
  EdgeMap<W> masked_;  // live_ with φ substituted on down edges
  std::vector<bool> alive_;
  std::size_t applied_events_ = 0;
};

struct ChurnTraceOptions {
  double p_down = 0.4;  // remaining mass: weight changes on live edges
  double p_up = 0.3;
  // Refuse to down bridges of the current overlay, so every prefix of the
  // trace leaves the graph connected (what the spanning-tree repair and
  // the differential oracle assume).
  bool keep_connected = true;
  double dt = 1.0;  // event spacing
};

// Seeded random event trace against a simulated copy of the overlay:
// every emitted event is consistent with the state produced by its
// prefix (no double-downs, ups only on down edges). Pure function of
// (graph, base weights, rng state).
template <RoutingAlgebra A>
std::vector<ChurnEvent<typename A::Weight>> random_churn_trace(
    const A& alg, const Graph& g, const EdgeMap<typename A::Weight>& base,
    std::size_t events, Rng& rng, ChurnTraceOptions opt = {}) {
  using W = typename A::Weight;
  std::vector<bool> alive(g.edge_count(), true);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (alg.is_phi(base[e])) alive[e] = false;
  }
  std::vector<ChurnEvent<W>> trace;
  trace.reserve(events);
  double now = 0;
  for (std::size_t i = 0; i < events && g.edge_count() > 0; ++i) {
    now += opt.dt;
    ChurnEvent<W> ev;
    ev.time = now;
    // Retry a few draws if the chosen kind has no eligible edge (e.g. an
    // up event while everything is alive); give up on this slot after
    // that so sparse graphs cannot loop forever.
    bool emitted = false;
    for (int attempt = 0; attempt < 32 && !emitted; ++attempt) {
      const double roll = rng.real();
      const EdgeId e = static_cast<EdgeId>(rng.index(g.edge_count()));
      if (roll < opt.p_down) {
        if (!alive[e]) continue;
        if (opt.keep_connected && !connected_without_edge(g, alive, e)) {
          continue;  // bridge of the current overlay
        }
        ev.kind = ChurnKind::kEdgeDown;
        ev.edge = e;
        alive[e] = false;
        emitted = true;
      } else if (roll < opt.p_down + opt.p_up) {
        if (alive[e]) continue;
        ev.kind = ChurnKind::kEdgeUp;
        ev.edge = e;
        do {
          ev.new_weight = alg.sample(rng);
        } while (alg.is_phi(ev.new_weight));
        alive[e] = true;
        emitted = true;
      } else {
        if (!alive[e]) continue;
        ev.kind = ChurnKind::kWeightChange;
        ev.edge = e;
        do {
          ev.new_weight = alg.sample(rng);
        } while (alg.is_phi(ev.new_weight));
        emitted = true;
      }
    }
    if (emitted) trace.push_back(std::move(ev));
  }
  return trace;
}

// Protocol wiring: kEdgeDown events become LinkFailures on the
// digraph_mirror of the same graph (arc 2e is edge e's u→v direction).
// The protocol's fail_arc flushes the Adj-RIB entries on both sides and
// reselection propagates the implicit withdrawals — "failures become
// withdrawals". Up / weight-change events have no protocol counterpart
// (BGP sessions re-establish out of band), so they are skipped.
template <typename W>
std::vector<LinkFailure> protocol_failures(
    const std::vector<ChurnEvent<W>>& trace) {
  std::vector<LinkFailure> failures;
  for (const ChurnEvent<W>& ev : trace) {
    if (ev.kind != ChurnKind::kEdgeDown) continue;
    failures.push_back(LinkFailure{ev.time, static_cast<ArcId>(2 * ev.edge)});
  }
  return failures;
}

// Arc weights for the mirrored digraph: both directions of edge e carry
// w[e] (the undirected weights are symmetric).
template <typename W>
ArcMap<W> mirror_arc_weights(const Graph& g, const EdgeMap<W>& w) {
  ArcMap<W> arc_w(2 * g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    arc_w[2 * e] = w[e];
    arc_w[2 * e + 1] = w[e];
  }
  return arc_w;
}

}  // namespace cpr
