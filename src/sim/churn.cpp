#include "sim/churn.hpp"

#include <vector>

namespace cpr {

namespace {

// BFS over the alive-edge subgraph, with one optional extra exclusion.
bool connected_masked(const Graph& g, const std::vector<bool>& alive,
                      EdgeId excluded) {
  const std::size_t n = g.node_count();
  if (n <= 1) return true;
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<NodeId> stack{0};
  seen[0] = 1;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const Graph::Adjacency& adj : g.neighbors(u)) {
      if (adj.edge == excluded || !alive[adj.edge]) continue;
      if (seen[adj.neighbor]) continue;
      seen[adj.neighbor] = 1;
      ++reached;
      stack.push_back(adj.neighbor);
    }
  }
  return reached == n;
}

}  // namespace

bool connected_under_mask(const Graph& g, const std::vector<bool>& alive) {
  return connected_masked(g, alive, kInvalidEdge);
}

bool connected_without_edge(const Graph& g, const std::vector<bool>& alive,
                            EdgeId e) {
  return connected_masked(g, alive, e);
}

Digraph digraph_mirror(const Graph& g) {
  Digraph d(g.node_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    d.add_arc_pair(g.edge(e).u, g.edge(e).v);  // arcs 2e and 2e+1
  }
  return d;
}

}  // namespace cpr
