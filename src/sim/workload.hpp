// Traffic workloads and scheme evaluation.
//
// The stretch a compact scheme inflicts is traffic-dependent: Cowen's
// scheme serves in-cluster and landmark-bound traffic at stretch 1 and
// detours the rest, so the *distribution* of stretch depends on who talks
// to whom. This module provides the standard workload shapes —
//
//   uniform   : source and destination uniform over V,
//   gravity   : pair probability proportional to deg(s)·deg(t) (heavy
//               talkers are heavy listeners, the classic traffic-matrix
//               model),
//   hotspot   : a small set of servers receives a fixed fraction of all
//               traffic (client-server skew),
//   zipf      : destination popularity follows a power law — rank r is
//               drawn with probability ∝ 1/r^s — over a seeded random
//               rank→node assignment, sources uniform. This is the
//               Internet-like skew of Krioukov et al. (PAPERS.md):
//               a handful of popular destinations dominate the traffic,
//               which is what the forward engine's hot-destination
//               cache and the bench's zipf suites measure against,
//
// — and a generic evaluator that routes sampled demands through a scheme
// and aggregates delivery, hop and multiplicative-stretch statistics.
// bench_workloads reports how the same scheme's stretch profile shifts
// across patterns.
#pragma once

#include "algebra/algebra.hpp"
#include "routing/dijkstra.hpp"
#include "scheme/scheme.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

#include <cmath>
#include <vector>

namespace cpr {

struct Demand {
  NodeId source;
  NodeId target;
};

class WorkloadGenerator {
 public:
  enum class Kind { kUniform, kGravity, kHotspot, kZipf };

  WorkloadGenerator(Kind kind, const Graph& g, Rng& rng,
                    std::size_t hotspot_count = 4,
                    double hotspot_fraction = 0.7,
                    double zipf_exponent = 1.1)
      : kind_(kind),
        graph_(&g),
        rng_(&rng),
        hotspot_fraction_(hotspot_fraction) {
    if (kind == Kind::kGravity) {
      cumulative_degree_.reserve(g.node_count());
      std::size_t acc = 0;
      for (NodeId v = 0; v < g.node_count(); ++v) {
        acc += std::max<std::size_t>(g.degree(v), 1);
        cumulative_degree_.push_back(acc);
      }
    }
    if (kind == Kind::kHotspot) {
      hotspots_ = rng.sample_without_replacement(
          g.node_count(), std::min(hotspot_count, g.node_count()));
    }
    if (kind == Kind::kZipf) {
      // Rank r (1-based) gets weight 1/r^s; the rank→node assignment is
      // a seeded permutation so popularity is uncorrelated with node id
      // (and with it shard/DFS position). Sampling inverts the cumulative
      // weights with one binary search — a pure function of the seed, so
      // the same (seed, n, s) draws the same traffic on every machine.
      const std::size_t n = g.node_count();
      zipf_cumulative_.reserve(n);
      double acc = 0;
      for (std::size_t r = 1; r <= n; ++r) {
        acc += 1.0 / std::pow(static_cast<double>(r), zipf_exponent);
        zipf_cumulative_.push_back(acc);
      }
      zipf_rank_to_node_.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        zipf_rank_to_node_[i] = static_cast<NodeId>(i);
      }
      rng.shuffle(zipf_rank_to_node_);
    }
  }

  // Pins the hotspot set explicitly (e.g. to a scheme's landmark nodes).
  void set_hotspots(std::vector<std::size_t> hotspots) {
    hotspots_ = std::move(hotspots);
  }

  Demand next() {
    Demand d{pick(), pick_target()};
    while (d.target == d.source) d.target = pick_target();
    return d;
  }

 private:
  NodeId pick() {
    if (kind_ == Kind::kGravity) return degree_weighted();
    return static_cast<NodeId>(rng_->index(graph_->node_count()));
  }

  NodeId pick_target() {
    switch (kind_) {
      case Kind::kUniform:
        return static_cast<NodeId>(rng_->index(graph_->node_count()));
      case Kind::kGravity:
        return degree_weighted();
      case Kind::kHotspot:
        if (!hotspots_.empty() && rng_->coin(hotspot_fraction_)) {
          return static_cast<NodeId>(hotspots_[rng_->index(hotspots_.size())]);
        }
        return static_cast<NodeId>(rng_->index(graph_->node_count()));
      case Kind::kZipf:
        return zipf_target();
    }
    return 0;
  }

  NodeId zipf_target() {
    // Inverse-CDF draw: first rank whose cumulative weight covers the
    // dart. real() < 1, so dart < total and lo stays in range.
    const double dart = rng_->real() * zipf_cumulative_.back();
    std::size_t lo = 0, hi = zipf_cumulative_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (zipf_cumulative_[mid] <= dart) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return zipf_rank_to_node_[lo];
  }

  NodeId degree_weighted() {
    const std::size_t total = cumulative_degree_.back();
    const std::size_t dart = rng_->index(total) + 1;
    // Binary search the cumulative degree array.
    std::size_t lo = 0, hi = cumulative_degree_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cumulative_degree_[mid] < dart) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<NodeId>(lo);
  }

  Kind kind_;
  const Graph* graph_;
  Rng* rng_;
  double hotspot_fraction_;
  std::vector<std::size_t> cumulative_degree_;
  std::vector<std::size_t> hotspots_;
  std::vector<double> zipf_cumulative_;     // by rank, 1-based rank r at [r-1]
  std::vector<NodeId> zipf_rank_to_node_;   // seeded rank→node permutation
};

struct WorkloadEvaluation {
  std::size_t demands = 0;
  std::size_t delivered = 0;
  Summary hop_stats;
  // Multiplicative stretch achieved vs preferred weight, for algebras
  // whose weights expose a ratio via the provided functor.
  Summary stretch_stats;
  double stretch_1_fraction = 0;

  double delivery_rate() const {
    return demands ? static_cast<double>(delivered) / demands : 1.0;
  }
};

// Routes `count` demands through the scheme; `ratio` maps (preferred,
// achieved) weights to a multiplicative stretch value.
//
// Demands are drawn sequentially from the workload's Rng (so the traffic
// matrix is a pure function of the seed), routed as one batch over the
// pool, and aggregated in demand order — the statistics are identical to
// the old one-packet-at-a-time loop for any thread count.
template <CompactRoutingScheme S, RoutingAlgebra A, typename RatioFn>
WorkloadEvaluation evaluate_workload(
    const S& scheme, const A& alg, const Graph& g,
    const EdgeMap<typename A::Weight>& w,
    const std::vector<PathTree<typename A::Weight>>& trees,
    WorkloadGenerator& workload, std::size_t count, RatioFn ratio,
    ThreadPool* pool = nullptr) {
  WorkloadEvaluation eval;
  std::vector<std::pair<NodeId, NodeId>> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Demand d = workload.next();
    queries.emplace_back(d.source, d.target);
  }
  const std::vector<RouteResult> routed = route_batch(scheme, g, queries, pool);

  std::vector<double> hops, stretches;
  std::size_t at_one = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto [source, target] = queries[i];
    const RouteResult& r = routed[i];
    ++eval.demands;
    if (!r.delivered) continue;
    ++eval.delivered;
    hops.push_back(static_cast<double>(r.hops()));
    const auto achieved = weight_of_path(alg, g, w, r.path);
    const auto preferred = trees[target].weight(source);
    if (achieved.has_value() && preferred.has_value()) {
      const double s = ratio(*preferred, *achieved);
      stretches.push_back(s);
      if (s <= 1.0 + 1e-12) ++at_one;
    }
  }
  eval.hop_stats = summarize(std::move(hops));
  eval.stretch_stats = summarize(std::move(stretches));
  eval.stretch_1_fraction =
      eval.delivered ? static_cast<double>(at_one) / eval.delivered : 1.0;
  return eval;
}

}  // namespace cpr
