// Ground-truth preferred paths by exhaustive enumeration.
//
// Routing policies are defined on the set of *all* s–t paths (Section 2.1:
// Pol(P_st) picks a ⪯-minimal element), so exhaustive DFS enumeration is
// the reference solver every other algorithm is validated against in the
// tests. Exponential in general — intended for the small adversarial
// gadgets (Fig. 1, Fig. 2) and randomized cross-checks up to ~12 nodes.
// For monotone algebras, prefixes already strictly worse than the best
// known path are pruned (extensions can only stay as bad or get worse).
#pragma once

#include "algebra/algebra.hpp"
#include "graph/csr_graph.hpp"
#include "routing/path.hpp"
#include "util/thread_pool.hpp"

#include <optional>

namespace cpr {

template <typename W>
struct PreferredPath {
  std::optional<W> weight;  // nullopt: no traversable path
  NodePath path;

  bool traversable() const { return weight.has_value(); }
};

template <RoutingAlgebra A, GraphTopology G>
PreferredPath<typename A::Weight> exhaustive_preferred(
    const A& alg, const G& g, const EdgeMap<typename A::Weight>& w,
    NodeId s, NodeId t) {
  using W = typename A::Weight;
  PreferredPath<W> best;
  if (s == t) {
    best.path = {s};
    return best;  // the empty path, trivially optimal, weightless
  }
  const bool can_prune = alg.properties().monotone;

  NodePath current{s};
  std::vector<bool> visited(g.node_count(), false);
  visited[s] = true;

  // Iterative DFS over (node, weight-so-far).
  struct Frame {
    NodeId node;
    std::size_t next_port = 0;
    std::optional<W> weight;  // weight of the path s..node
  };
  std::vector<Frame> stack{{s, 0, std::nullopt}};

  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_port >= g.degree(f.node)) {
      visited[f.node] = false;
      current.pop_back();
      stack.pop_back();
      continue;
    }
    const auto& adj = g.neighbors(f.node)[f.next_port++];
    if (visited[adj.neighbor]) continue;
    const W step = w[adj.edge];
    const W cand =
        f.weight.has_value() ? alg.combine(*f.weight, step) : step;
    if (alg.is_phi(cand)) continue;
    if (can_prune && best.weight.has_value() &&
        alg.less(*best.weight, cand)) {
      continue;  // prefix already strictly worse; monotone ⇒ hopeless
    }
    if (adj.neighbor == t) {
      NodePath full = current;
      full.push_back(t);
      if (!best.weight.has_value() ||
          tie_break_better(alg, cand, full, *best.weight, best.path)) {
        best.weight = cand;
        best.path = std::move(full);
      }
      continue;
    }
    visited[adj.neighbor] = true;
    current.push_back(adj.neighbor);
    stack.push_back({adj.neighbor, 0, cand});
  }
  return best;
}

// All-pairs ground truth: result[s][t] is the preferred s→t path. The n²
// DFS enumerations are independent, so they fan out across the pool one
// source-row at a time (each row is a single task: rows share no state and
// write disjoint pre-sized slots, so the matrix is bit-identical to the
// sequential double loop for any thread count). Still exponential per
// pair — same ~12-node intended scale as above, just wall-clock compressed
// for the differential harnesses that cross-check whole graphs.
template <RoutingAlgebra A>
std::vector<std::vector<PreferredPath<typename A::Weight>>>
exhaustive_all_pairs(const A& alg, const CsrGraph& g,
                     const EdgeMap<typename A::Weight>& w,
                     ThreadPool* pool = nullptr) {
  using W = typename A::Weight;
  ThreadPool& p = pool ? *pool : ThreadPool::global();
  const std::size_t n = g.node_count();
  std::vector<std::vector<PreferredPath<W>>> truth(
      n, std::vector<PreferredPath<W>>(n));
  parallel_for(p, 0, n, [&](std::size_t s) {
    for (NodeId t = 0; t < n; ++t) {
      truth[s][t] = exhaustive_preferred(alg, g, w, static_cast<NodeId>(s), t);
    }
  });
  return truth;
}

// Graph entry point: snapshots the topology into CSR once so the n² DFS
// enumerations read packed adjacency rows.
template <RoutingAlgebra A>
std::vector<std::vector<PreferredPath<typename A::Weight>>>
exhaustive_all_pairs(const A& alg, const Graph& g,
                     const EdgeMap<typename A::Weight>& w,
                     ThreadPool* pool = nullptr) {
  const CsrGraph csr(g);
  return exhaustive_all_pairs(alg, csr, w, pool);
}

// Enumerates *all* traversable preferred paths (every path whose weight is
// order-equal to the optimum). Used by the Fig.-1 experiments, which argue
// about the full preferred-path set ("the preferred paths are exactly the
// direct edges").
template <RoutingAlgebra A, GraphTopology G>
std::vector<NodePath> all_preferred_paths(
    const A& alg, const G& g, const EdgeMap<typename A::Weight>& w,
    NodeId s, NodeId t) {
  using W = typename A::Weight;
  const PreferredPath<W> best = exhaustive_preferred(alg, g, w, s, t);
  std::vector<NodePath> out;
  if (!best.traversable()) return out;

  NodePath current{s};
  std::vector<bool> visited(g.node_count(), false);
  visited[s] = true;

  struct Frame {
    NodeId node;
    std::size_t next_port = 0;
    std::optional<W> weight;
  };
  std::vector<Frame> stack{{s, 0, std::nullopt}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_port >= g.degree(f.node)) {
      visited[f.node] = false;
      current.pop_back();
      stack.pop_back();
      continue;
    }
    const auto& adj = g.neighbors(f.node)[f.next_port++];
    if (visited[adj.neighbor]) continue;
    const W step = w[adj.edge];
    const W cand =
        f.weight.has_value() ? alg.combine(*f.weight, step) : step;
    if (alg.is_phi(cand)) continue;
    if (adj.neighbor == t) {
      if (order_equal(alg, cand, *best.weight)) {
        NodePath full = current;
        full.push_back(t);
        out.push_back(std::move(full));
      }
      continue;
    }
    visited[adj.neighbor] = true;
    current.push_back(adj.neighbor);
    stack.push_back({adj.neighbor, 0, cand});
  }
  return out;
}

}  // namespace cpr
