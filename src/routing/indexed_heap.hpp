// Indexed d-ary heap for the generalized-Dijkstra hot loop.
//
// The classic lazy-deletion std::priority_queue pays for every improved
// tentative weight twice: a stale duplicate entry is pushed, then popped
// and discarded later, each pop calling the algebra comparator O(log size)
// times on a queue inflated by the duplicates. This heap instead keys
// nodes directly: `pos[v]` tracks where v sits in the heap array, so an
// improvement is a decrease-key (sift-up from the current slot) and every
// node is pushed and popped at most once.
//
// Entries carry their key ({weight, hops, node} — the full tie-break
// tuple) rather than referencing the tree's per-node arrays: sift
// comparisons then read adjacent heap slots instead of gathering two
// random cache lines per comparison, and pop hands the settle loop the
// weight it needs without a further load. Keys must only change via
// `update` (decrease-key), never behind the heap's back.
//
// Arity 4 instead of 2: sift-down does the same number of comparisons per
// level-of-4 but halves the tree height, and the children of i are
// adjacent slots of one array. For comparator-heavy algebras (erased
// AnyAlgebra, lex products) fewer levels means fewer virtual calls.
//
// `pos_` doubles as the visited state Dijkstra needs anyway: never-seen /
// in-heap / settled (popped). Buffers are reused across runs via `reset`;
// dijkstra holds one heap per worker thread (thread_local), so a sweep of
// n single-source runs does not reallocate per source. See dijkstra.hpp.
#pragma once

#include "graph/graph.hpp"

#include <cstdint>
#include <utility>
#include <vector>

namespace cpr {

template <typename W>
class IndexedDaryHeap {
 public:
  static constexpr std::uint32_t kNever = static_cast<std::uint32_t>(-1);
  static constexpr std::uint32_t kSettled = static_cast<std::uint32_t>(-2);
  static constexpr std::size_t kArity = 4;

  struct Entry {
    W weight;
    std::uint32_t hops;
    NodeId node;
  };

  // Prepares for a run over n nodes: empties the heap, marks every node
  // never-seen. Reuses capacity from previous runs.
  void reset(std::size_t n) {
    heap_.clear();
    pos_.assign(n, kNever);
  }

  // Sparse alternative to reset(n) for truncated runs that touch only a
  // small neighborhood: the full pos_ init happens only when n changes;
  // otherwise the caller guarantees every slot is already never-seen by
  // having called forget() on each touched node after the previous run.
  // This is what keeps a sweep of n truncated-ball runs O(Σ|ball|)
  // instead of O(n²) in memset alone (see dijkstra.hpp).
  void prepare(std::size_t n) {
    heap_.clear();
    if (pos_.size() != n) pos_.assign(n, kNever);
  }

  // Restores one node to never-seen (the prepare() contract).
  void forget(NodeId v) { pos_[v] = kNever; }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  bool never_seen(NodeId v) const { return pos_[v] == kNever; }
  bool settled(NodeId v) const { return pos_[v] == kSettled; }
  bool in_heap(NodeId v) const {
    return pos_[v] != kNever && pos_[v] != kSettled;
  }

  // Marks v settled without it ever entering the heap (Dijkstra's source).
  void mark_settled(NodeId v) { pos_[v] = kSettled; }

  // Inserts e.node (must be never-seen). `better(a, b)` is the strict
  // settle-order predicate over entries.
  template <typename Better>
  void push(Entry e, const Better& better) {
    pos_[e.node] = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(std::move(e));
    sift_up(heap_.size() - 1, better);
  }

  // Replaces e.node's entry with a strictly better one (sift-up only:
  // keys never worsen in Dijkstra).
  template <typename Better>
  void update(Entry e, const Better& better) {
    const std::size_t i = pos_[e.node];
    heap_[i] = std::move(e);
    sift_up(i, better);
  }

  // Removes and returns the best entry, marking its node settled.
  template <typename Better>
  Entry pop(const Better& better) {
    Entry top = std::move(heap_.front());
    pos_[top.node] = kSettled;
    if (heap_.size() > 1) {
      heap_.front() = std::move(heap_.back());
      heap_.pop_back();
      pos_[heap_.front().node] = 0;
      sift_down(0, better);
    } else {
      heap_.pop_back();
    }
    return top;
  }

 private:
  template <typename Better>
  void sift_up(std::size_t i, const Better& better) {
    Entry e = std::move(heap_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!better(e, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      pos_[heap_[i].node] = static_cast<std::uint32_t>(i);
      i = parent;
    }
    heap_[i] = std::move(e);
    pos_[heap_[i].node] = static_cast<std::uint32_t>(i);
  }

  template <typename Better>
  void sift_down(std::size_t i, const Better& better) {
    Entry e = std::move(heap_[i]);
    const std::size_t size = heap_.size();
    for (;;) {
      const std::size_t first_child = kArity * i + 1;
      if (first_child >= size) break;
      const std::size_t last_child =
          first_child + kArity < size ? first_child + kArity : size;
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (better(heap_[c], heap_[best])) best = c;
      }
      if (!better(heap_[best], e)) break;
      heap_[i] = std::move(heap_[best]);
      pos_[heap_[i].node] = static_cast<std::uint32_t>(i);
      i = best;
    }
    heap_[i] = std::move(e);
    pos_[heap_[i].node] = static_cast<std::uint32_t>(i);
  }

  std::vector<Entry> heap_;
  std::vector<std::uint32_t> pos_;
};

// Specialized sibling of IndexedDaryHeap for order-keyed algebras
// (OrderKeyedAlgebra in algebra/algebra.hpp): the entire settle-order
// tuple packs into one 128-bit integer
//     key = order_key(weight) << 64 | hops << 32 | node
// whose natural `<` is exactly (⪯, then hops, then node id) — the
// Dijkstra tie-break — so this heap settles in the same order as the
// generic one, bit for bit. Entries are 16 bytes and every sift step is a
// single integer compare, where the generic comparator pays two algebra
// calls plus tie-break branches per step; on sparse sweeps that halves
// the per-source cost. The algebra's weight is recovered from the key on
// pop (order_key is an exact bijection by contract), so no weight copy is
// stored at all.
class KeyedDaryHeap {
 public:
  using Key = unsigned __int128;

  static constexpr std::uint32_t kNever = static_cast<std::uint32_t>(-1);
  static constexpr std::uint32_t kSettled = static_cast<std::uint32_t>(-2);
  static constexpr std::size_t kArity = 4;

  static Key make_key(std::uint64_t order_key, std::uint32_t hops,
                      NodeId node) {
    static_assert(sizeof(NodeId) == 4, "key layout packs node into 32 bits");
    return (static_cast<Key>(order_key) << 64) |
           (static_cast<std::uint64_t>(hops) << 32) | node;
  }
  static NodeId node_of(Key k) {
    return static_cast<NodeId>(static_cast<std::uint64_t>(k));
  }
  static std::uint32_t hops_of(Key k) {
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(k) >> 32);
  }
  static std::uint64_t order_of(Key k) {
    return static_cast<std::uint64_t>(k >> 64);
  }

  void reset(std::size_t n) {
    heap_.clear();
    pos_.assign(n, kNever);
  }

  // Sparse reset pair for truncated runs; same contract as the indexed
  // heap's prepare()/forget().
  void prepare(std::size_t n) {
    heap_.clear();
    if (pos_.size() != n) pos_.assign(n, kNever);
  }
  void forget(NodeId v) { pos_[v] = kNever; }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  bool never_seen(NodeId v) const { return pos_[v] == kNever; }
  bool settled(NodeId v) const { return pos_[v] == kSettled; }
  bool in_heap(NodeId v) const {
    return pos_[v] != kNever && pos_[v] != kSettled;
  }

  void mark_settled(NodeId v) { pos_[v] = kSettled; }

  void push(Key k) {
    pos_[node_of(k)] = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(k);
    sift_up(heap_.size() - 1);
  }

  // Decrease-key: replaces node_of(k)'s entry with the strictly smaller k.
  void update(Key k) {
    const std::size_t i = pos_[node_of(k)];
    heap_[i] = k;
    sift_up(i);
  }

  Key pop() {
    const Key top = heap_.front();
    pos_[node_of(top)] = kSettled;
    if (heap_.size() > 1) {
      heap_.front() = heap_.back();
      heap_.pop_back();
      pos_[node_of(heap_.front())] = 0;
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    return top;
  }

 private:
  void sift_up(std::size_t i) {
    const Key k = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!(k < heap_[parent])) break;
      heap_[i] = heap_[parent];
      pos_[node_of(heap_[i])] = static_cast<std::uint32_t>(i);
      i = parent;
    }
    heap_[i] = k;
    pos_[node_of(k)] = static_cast<std::uint32_t>(i);
  }

  void sift_down(std::size_t i) {
    const Key k = heap_[i];
    const std::size_t size = heap_.size();
    for (;;) {
      const std::size_t first = kArity * i + 1;
      if (first >= size) break;
      const std::size_t last =
          first + kArity < size ? first + kArity : size;
      // Best-of-children via conditional moves: the candidates sit in
      // adjacent slots, so this scan stays branch-predictable even on
      // random keys.
      std::size_t best = first;
      Key best_key = heap_[first];
      for (std::size_t c = first + 1; c < last; ++c) {
        const bool b = heap_[c] < best_key;
        best_key = b ? heap_[c] : best_key;
        best = b ? c : best;
      }
      if (!(best_key < k)) break;
      heap_[i] = best_key;
      pos_[node_of(best_key)] = static_cast<std::uint32_t>(i);
      i = best;
    }
    heap_[i] = k;
    pos_[node_of(k)] = static_cast<std::uint32_t>(i);
  }

  std::vector<Key> heap_;
  std::vector<std::uint32_t> pos_;
};

}  // namespace cpr
