// Paths and path weights over a weighted graph.
//
// A path is a node sequence; its weight is the ⊕-fold of its edge weights
// composed destination→source (Section 5's right fold, which agrees with
// every other order for the commutative algebras of Sections 2–4).
#pragma once

#include "algebra/algebra.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"

#include <optional>
#include <vector>

namespace cpr {

using NodePath = std::vector<NodeId>;

// True if consecutive nodes are adjacent and no node repeats.
inline bool is_simple_path(const Graph& g, const NodePath& p) {
  if (p.empty()) return false;
  std::vector<bool> seen(g.node_count(), false);
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] >= g.node_count() || seen[p[i]]) return false;
    seen[p[i]] = true;
    if (i > 0 && !g.has_edge(p[i - 1], p[i])) return false;
  }
  return true;
}

// Weight of a path with >= 2 nodes; nullopt for a single-node path (a
// semigroup has no identity, so the empty path carries no weight — callers
// treat "s == t" as trivially optimal).
template <RoutingAlgebra A>
std::optional<typename A::Weight> weight_of_path(
    const A& alg, const Graph& g, const EdgeMap<typename A::Weight>& w,
    const NodePath& p) {
  if (p.size() < 2) return std::nullopt;
  std::vector<typename A::Weight> ws;
  ws.reserve(p.size() - 1);
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    const Port port = g.port_to(p[i], p[i + 1]);
    ws.push_back(w[g.edge_at(p[i], port)]);
  }
  return path_weight(alg, ws);
}

// Directed variant over arc weights.
template <RoutingAlgebra A>
std::optional<typename A::Weight> weight_of_path(
    const A& alg, const Digraph& g, const ArcMap<typename A::Weight>& w,
    const NodePath& p) {
  if (p.size() < 2) return std::nullopt;
  std::vector<typename A::Weight> ws;
  ws.reserve(p.size() - 1);
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    const ArcId a = g.find_arc(p[i], p[i + 1]);
    if (a == kInvalidArc) return std::nullopt;
    ws.push_back(w[a]);
  }
  return path_weight(alg, ws);
}

// Deterministic tie-break shared by all solvers: primary the algebra
// order, then fewer hops, then lexicographically smaller node sequence.
// This makes "the" preferred path well-defined so schemes can be compared
// against ground truth; validation always compares *weights*, never the
// concrete tie-broken path.
template <RoutingAlgebra A>
bool tie_break_better(const A& alg, const typename A::Weight& wa,
                      const NodePath& pa, const typename A::Weight& wb,
                      const NodePath& pb) {
  if (alg.less(wa, wb)) return true;
  if (alg.less(wb, wa)) return false;
  if (pa.size() != pb.size()) return pa.size() < pb.size();
  return pa < pb;
}

}  // namespace cpr
