// The addressing layer: scheme-assigned labels, distinct from node ids.
//
// Every scheme before PR 10 routed on labels that were silently equal to
// node ids — the graph generator handed out ids, the scheme's tables were
// keyed by them, and the FIB walkers compared them directly. That works
// for *labeled* (name-dependent) routing, where the scheme is allowed to
// rename nodes. Name-independent routing (Thorup–Zwick, and the
// production requirement argued in "Compact Routing on Internet-Like
// Graphs", PAPERS.md) forbids it: nodes keep arbitrary external names,
// and the scheme must carry its own name→label dictionary.
//
// This header makes the distinction explicit:
//
//   - `Label` is a strong 32-bit type. A Label is what a routing table
//     row is keyed by; a NodeId (the packet's *name*) is what a query is
//     issued on. For every pre-existing scheme the two coincide — that is
//     the identity fast path, and it is represented by the *absence* of a
//     label map, so the existing hot paths pay nothing.
//
//   - `LabelMap` is the per-scheme bijection node→label emitted at
//     construction. Name-independent schemes draw it from the build Rng;
//     compile_fib serializes it (plus a hash-partitioned dictionary) into
//     the FlatFib blob so the walkers can resolve names without the
//     scheme object.
#pragma once

#include "graph/graph.hpp"
#include "util/random.hpp"

#include <cstdint>
#include <utility>
#include <vector>

namespace cpr {

// A scheme-assigned routing label. Strong type: constructing one from a
// NodeId requires going through a LabelMap (or make_label for literals),
// so accidental name/label mixups fail to compile.
struct Label {
  std::uint32_t value = static_cast<std::uint32_t>(-1);

  friend constexpr bool operator==(Label, Label) = default;
  friend constexpr auto operator<=>(Label, Label) = default;
};

inline constexpr Label kInvalidLabel{static_cast<std::uint32_t>(-1)};

constexpr Label make_label(std::uint32_t v) { return Label{v}; }

// Bijection between node ids (names) and labels for one scheme instance.
// `identity()` is the zero-cost map used by every labeled scheme;
// `from_permutation` is what a name-independent scheme builds from a
// seeded shuffle.
class LabelMap {
 public:
  static LabelMap identity(std::size_t n) {
    LabelMap m;
    m.identity_ = true;
    m.label_of_.resize(n);
    m.node_of_.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      m.label_of_[v] = static_cast<std::uint32_t>(v);
      m.node_of_[v] = static_cast<NodeId>(v);
    }
    return m;
  }

  // `label_of[v]` = the label of node v; must be a permutation of [0, n).
  static LabelMap from_permutation(std::vector<std::uint32_t> label_of) {
    LabelMap m;
    const std::size_t n = label_of.size();
    m.label_of_ = std::move(label_of);
    m.node_of_.assign(n, kInvalidNode);
    m.identity_ = true;
    m.valid_ = true;
    for (std::size_t v = 0; v < n; ++v) {
      const std::uint32_t l = m.label_of_[v];
      if (l >= n || m.node_of_[l] != kInvalidNode) {
        m.valid_ = false;  // not a permutation
        m.identity_ = false;
        return m;
      }
      m.node_of_[l] = static_cast<NodeId>(v);
      m.identity_ = m.identity_ && l == v;
    }
    return m;
  }

  std::size_t size() const { return label_of_.size(); }
  bool is_identity() const { return identity_; }
  bool valid() const { return valid_; }

  Label label_of(NodeId v) const { return Label{label_of_[v]}; }
  NodeId node_of(Label l) const { return node_of_[l.value]; }

  const std::vector<std::uint32_t>& raw_label_of() const { return label_of_; }

 private:
  std::vector<std::uint32_t> label_of_;
  std::vector<NodeId> node_of_;
  bool identity_ = false;
  bool valid_ = false;
};

// Draws a uniformly random non-identity label permutation (for n >= 2)
// from `rng`. Name-independent schemes use this at build time so tests
// cannot accidentally pass by treating labels as node ids.
inline LabelMap random_label_map(std::size_t n, Rng& rng) {
  std::vector<std::uint32_t> perm(n);
  for (std::size_t v = 0; v < n; ++v) perm[v] = static_cast<std::uint32_t>(v);
  rng.shuffle(perm);
  if (n >= 2) {
    bool identity = true;
    for (std::size_t v = 0; v < n && identity; ++v) identity = perm[v] == v;
    if (identity) std::swap(perm[0], perm[1]);
  }
  return LabelMap::from_permutation(std::move(perm));
}

}  // namespace cpr
