// Generalized Dijkstra (Sobrinho's lexicographic-lightest-path algorithm).
//
// For *regular* algebras — monotone and isotone (Definition 1) — the
// classic greedy settles nodes in non-decreasing weight order and the
// resulting preferred paths from a source form a tree (Proposition 2's
// premise). For non-isotone algebras such as shortest-widest path the
// greedy is unsound; callers must check `properties().regular()` and fall
// back to the exhaustive or specialized solvers. The unit tests include a
// demonstration that running this on SW produces suboptimal answers.
//
// Ties in ⪯ are broken by hop count and then node id, giving a
// deterministic tree without affecting algebraic optimality.
//
// Hot-path layout. The sweep is built for the all-pairs fan-outs the
// schemes run (n sources over one topology):
//   - the frontier is an indexed 4-ary heap with decrease-key
//     (indexed_heap.hpp) instead of a lazy-duplicate priority queue, so
//     each node is pushed/popped once; entries carry their {weight, hops,
//     node} key so sift comparisons never gather from the tree arrays —
//     and for order-keyed algebras (OrderKeyedAlgebra) the whole key
//     packs into one 128-bit integer, making each sift step a single
//     compare;
//   - the result tree stores weights in a flat array plus a reached
//     bitmap instead of std::optional<W> per node, halving the memory the
//     O(n²) scheme scans walk;
//   - the heap's buffers live in a per-thread scratch slot and are reused
//     across runs on the same worker (ThreadPool workers are long-lived),
//     so a sweep allocates only its output trees;
//   - the algorithm is generic over GraphTopology: pass the CsrGraph
//     snapshot (all_pairs_trees does this internally) to read adjacency
//     from packed rows.
#pragma once

#include "algebra/algebra.hpp"
#include "graph/csr_graph.hpp"
#include "routing/indexed_heap.hpp"
#include "routing/path.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

namespace cpr {

template <typename W>
struct PathTree;

// Optional-like view of one node's weight in a PathTree; what
// `tree.weight(v)` returns now that the storage is a flat array + bitmap
// rather than std::optional<W>. Valid as long as the tree is alive.
template <typename W>
class PathWeightRef {
 public:
  PathWeightRef(const PathTree<W>* tree, NodeId v) : tree_(tree), v_(v) {}

  bool has_value() const { return tree_->has_weight(v_); }
  explicit operator bool() const { return has_value(); }
  const W& operator*() const { return tree_->weights[v_]; }
  const W* operator->() const { return &tree_->weights[v_]; }
  const W& value() const { return tree_->weights[v_]; }

 private:
  const PathTree<W>* tree_;
  NodeId v_;
};

// Preferred-path tree rooted at `source`: parent pointers lead back toward
// the source; weight(v) is the weight of the preferred source→v path
// (absent: unreachable or v == source, where the empty path has no
// weight). Weights live in a flat `weights` array whose entries are
// meaningful only where the `reached` bitmap is set (unreached slots hold
// the φ fill value); `weight(v)` wraps the pair in an optional-like view.
template <typename W>
struct PathTree {
  NodeId source = kInvalidNode;
  std::vector<NodeId> parent;
  std::vector<EdgeId> parent_edge;
  std::vector<W> weights;            // flat; meaningful iff has_weight(v)
  std::vector<std::uint32_t> hops;
  std::vector<std::uint64_t> reached;  // bitmap over non-source reached nodes

  // Sizes every array for n nodes and clears previous state; `fill` (the
  // algebra's φ) pads the unreached weight slots.
  void reset(std::size_t n, NodeId src, const W& fill) {
    source = src;
    parent.assign(n, kInvalidNode);
    parent_edge.assign(n, kInvalidEdge);
    weights.assign(n, fill);
    hops.assign(n, 0);
    reached.assign((n + 63) / 64, 0);
    parent[src] = src;
  }

  // v was reached on a non-empty path (true for every node but the source
  // in a connected component).
  bool has_weight(NodeId v) const {
    return (reached[v >> 6] >> (v & 63)) & 1;
  }
  bool reachable(NodeId v) const { return v == source || has_weight(v); }

  // The weight slot itself; caller must have checked has_weight(v).
  const W& weight_at(NodeId v) const { return weights[v]; }

  // Optional-like view (has_value / * / ->) of v's weight.
  PathWeightRef<W> weight(NodeId v) const { return {this, v}; }

  // Installs/overwrites v's tentative entry.
  void record(NodeId v, NodeId from, EdgeId via, W w, std::uint32_t h) {
    parent[v] = from;
    parent_edge[v] = via;
    weights[v] = std::move(w);
    hops[v] = h;
    reached[v >> 6] |= std::uint64_t{1} << (v & 63);
  }

  // The source→v node sequence (empty if unreachable).
  NodePath extract_path(NodeId v) const {
    if (!reachable(v)) return {};
    NodePath p;
    for (NodeId x = v; x != source; x = parent[x]) p.push_back(x);
    p.push_back(source);
    std::reverse(p.begin(), p.end());
    return p;
  }
};

namespace detail {

// Per-thread scratch heap for weight type W: ThreadPool workers (and the
// calling thread) are long-lived, so the frontier buffers of repeated
// single-source runs are reused instead of reallocated. State never leaks
// across runs — every sweep starts with reset(n) — so results are
// independent of which worker executes which source (pinned by the
// determinism tests).
template <typename W>
inline IndexedDaryHeap<W>& dijkstra_scratch_heap() {
  thread_local IndexedDaryHeap<W> heap;
  return heap;
}

inline KeyedDaryHeap& dijkstra_scratch_keyed_heap() {
  thread_local KeyedDaryHeap heap;
  return heap;
}

// The sweep itself, generic over how an out-edge's weight is fetched:
// `weight_at(u, p, adj)` returns the weight of port p's edge at u. The
// EdgeMap entry points pass w[adj.edge]; all_pairs_trees instead passes a
// CSR-slot-aligned copy so the inner loop streams neighbor and weight
// from parallel arrays rather than dereferencing a random edge id per
// relaxation.
template <RoutingAlgebra A, GraphTopology G, typename WeightAt>
void dijkstra_run(const A& alg, const G& g, NodeId source,
                  PathTree<typename A::Weight>& tree,
                  IndexedDaryHeap<typename A::Weight>& heap,
                  const WeightAt& weight_at) {
  using W = typename A::Weight;
  using Entry = typename IndexedDaryHeap<W>::Entry;
  const std::size_t n = g.node_count();
  tree.reset(n, source, alg.phi());
  heap.reset(n);

  // Strict "a settles before b" order: algebra preference, then hop
  // count, then node id — identical to the lazy-queue tie-break. Entries
  // carry the whole key, so sift comparisons stay inside the heap array.
  const auto better = [&alg](const Entry& a, const Entry& b) {
    if (alg.less(a.weight, b.weight)) return true;
    if (alg.less(b.weight, a.weight)) return false;
    if (a.hops != b.hops) return a.hops < b.hops;
    return a.node < b.node;
  };

  const auto relax = [&](NodeId from, const Graph::Adjacency& adj, W cand,
                         std::uint32_t hops) {
    const NodeId v = adj.neighbor;
    if (heap.settled(v)) return;  // includes the source
    if (alg.is_phi(cand)) return;
    if (heap.never_seen(v)) {
      heap.push(Entry{cand, hops, v}, better);
      tree.record(v, from, adj.edge, std::move(cand), hops);
      return;
    }
    const bool improves =
        alg.less(cand, tree.weights[v]) ||
        (order_equal(alg, cand, tree.weights[v]) && hops < tree.hops[v]);
    if (improves) {
      heap.update(Entry{cand, hops, v}, better);  // decrease-key
      tree.record(v, from, adj.edge, std::move(cand), hops);
    }
  };

  heap.mark_settled(source);
  {
    const auto row = g.neighbors(source);
    for (std::size_t p = 0; p < row.size(); ++p) {
      relax(source, row[p], weight_at(source, p, row[p]), 1);
    }
  }
  while (!heap.empty()) {
    const Entry top = heap.pop(better);
    const std::uint32_t hu = top.hops + 1;
    const auto row = g.neighbors(top.node);
    for (std::size_t p = 0; p < row.size(); ++p) {
      relax(top.node, row[p], alg.combine(top.weight, weight_at(top.node, p, row[p])),
            hu);
    }
  }
}

// Same sweep over the flat-key frontier: for order-keyed algebras the
// settle-order tuple lives in one 128-bit integer (KeyedDaryHeap), the
// relax decisions are unchanged, and the popped key hands back node, hops
// and (via the exact inverse embedding) the weight. Settles in exactly
// the same order as dijkstra_run — pinned by the differential tests.
template <OrderKeyedAlgebra A, GraphTopology G, typename WeightAt>
void dijkstra_run_keyed(const A& alg, const G& g, NodeId source,
                        PathTree<typename A::Weight>& tree,
                        KeyedDaryHeap& heap, const WeightAt& weight_at) {
  using W = typename A::Weight;
  const std::size_t n = g.node_count();
  tree.reset(n, source, alg.phi());
  heap.reset(n);

  const auto relax = [&](NodeId from, const Graph::Adjacency& adj, W cand,
                         std::uint32_t hops) {
    const NodeId v = adj.neighbor;
    if (heap.settled(v)) return;  // includes the source
    if (alg.is_phi(cand)) return;
    if (heap.never_seen(v)) {
      heap.push(KeyedDaryHeap::make_key(alg.order_key(cand), hops, v));
      tree.record(v, from, adj.edge, std::move(cand), hops);
      return;
    }
    const bool improves =
        alg.less(cand, tree.weights[v]) ||
        (order_equal(alg, cand, tree.weights[v]) && hops < tree.hops[v]);
    if (improves) {
      heap.update(KeyedDaryHeap::make_key(alg.order_key(cand), hops, v));
      tree.record(v, from, adj.edge, std::move(cand), hops);
    }
  };

  heap.mark_settled(source);
  {
    const auto row = g.neighbors(source);
    for (std::size_t p = 0; p < row.size(); ++p) {
      relax(source, row[p], weight_at(source, p, row[p]), 1);
    }
  }
  while (!heap.empty()) {
    const KeyedDaryHeap::Key top = heap.pop();
    const NodeId u = KeyedDaryHeap::node_of(top);
    const W wu = alg.weight_from_order_key(KeyedDaryHeap::order_of(top));
    const std::uint32_t hu = KeyedDaryHeap::hops_of(top) + 1;
    const auto row = g.neighbors(u);
    for (std::size_t p = 0; p < row.size(); ++p) {
      relax(u, row[p], alg.combine(wu, weight_at(u, p, row[p])), hu);
    }
  }
}

// Picks the frontier for the algebra — flat 128-bit keys when the order
// embeds, the generic comparator heap otherwise — using the calling
// thread's scratch buffers.
template <RoutingAlgebra A, GraphTopology G, typename WeightAt>
void dijkstra_dispatch(const A& alg, const G& g, NodeId source,
                       PathTree<typename A::Weight>& tree,
                       const WeightAt& weight_at) {
  if constexpr (OrderKeyedAlgebra<A>) {
    dijkstra_run_keyed(alg, g, source, tree, dijkstra_scratch_keyed_heap(),
                       weight_at);
  } else {
    dijkstra_run(alg, g, source, tree,
                 dijkstra_scratch_heap<typename A::Weight>(), weight_at);
  }
}

}  // namespace detail

// Reusable scratch for repeated truncated-ball runs (truncated_ball
// below). The arrays are sized once per n and never cleared between
// runs: tentative weights/hops/parents are only ever read for nodes the
// current run has already pushed (the heap's never-seen state gates
// every access), and the heap itself uses the sparse prepare()/forget()
// pair driven by the `touched` list. A full per-source clear would cost
// O(n) — across a sweep of n sources that is O(n²) of memset, more than
// the truncated searches themselves.
template <typename W>
struct BallScratch {
  IndexedDaryHeap<W> heap;
  KeyedDaryHeap keyed_heap;
  std::vector<NodeId> parent;
  std::vector<W> weights;
  std::vector<std::uint32_t> hops;
  std::vector<NodeId> touched;

  void ensure(std::size_t n, const W& fill) {
    if (parent.size() != n) {
      parent.assign(n, kInvalidNode);
      weights.assign(n, fill);
      hops.assign(n, 0);
    }
  }
};

namespace detail {

// Per-thread truncated-ball scratch, sibling of dijkstra_scratch_heap.
template <typename W>
inline BallScratch<W>& ball_scratch() {
  thread_local BallScratch<W> scratch;
  return scratch;
}

// Truncated Dijkstra from `source`: settles exactly the ball
//     { u : d(source, u) ≺ limit }        (strict)
//     { u : d(source, u) ⪯ limit }        (non-strict)
// and calls visit(u, parent_of_u, weight, hops) at each settle, in
// settle order. Exactness rests on two facts. First, Dijkstra settles in
// non-decreasing ⪯ order, so the ball predicate is monotone over the
// settle sequence: every in-ball entry pops before any out-of-ball entry
// (a ≺/⪯ limit and ¬(b ≺/⪯ limit) imply a ≺ b in the total preorder).
// Second, candidates failing the predicate are pruned at relax time
// without affecting members: a member's final order class passes the
// predicate, so every candidate of that class — including the ones the
// hop/id tie-breaks choose between — survives pruning, and the relax
// sequence restricted to members is identical to the full run's. Hence
// visited members, their parents, weights and hops are bit-identical to
// the corresponding rows of the full tree dijkstra would build, which is
// what lets CowenScheme's streaming construction reproduce the
// materialized tables exactly (tests/test_cowen_streaming.cpp).
template <RoutingAlgebra A, GraphTopology G, typename WeightAt,
          typename Visit>
void truncated_ball_run(const A& alg, const G& g, NodeId source,
                        const typename A::Weight& limit, bool strict,
                        BallScratch<typename A::Weight>& scratch,
                        const WeightAt& weight_at, const Visit& visit) {
  using W = typename A::Weight;
  using Entry = typename IndexedDaryHeap<W>::Entry;
  const std::size_t n = g.node_count();
  scratch.ensure(n, alg.phi());
  auto& heap = scratch.heap;
  heap.prepare(n);

  const auto better = [&alg](const Entry& a, const Entry& b) {
    if (alg.less(a.weight, b.weight)) return true;
    if (alg.less(b.weight, a.weight)) return false;
    if (a.hops != b.hops) return a.hops < b.hops;
    return a.node < b.node;
  };

  const auto relax = [&](NodeId from, const Graph::Adjacency& adj, W cand,
                         std::uint32_t hops) {
    const NodeId v = adj.neighbor;
    if (heap.settled(v)) return;
    if (alg.is_phi(cand)) return;
    // Ball cutoff: a candidate outside the predicate can never become a
    // member (any later improvement arrives through a settled member and
    // is re-offered then), so pruning here keeps the frontier at the
    // ball boundary instead of one full expansion ring beyond it.
    if (!(strict ? alg.less(cand, limit) : leq(alg, cand, limit))) return;
    if (heap.never_seen(v)) {
      scratch.touched.push_back(v);
      heap.push(Entry{cand, hops, v}, better);
      scratch.parent[v] = from;
      scratch.weights[v] = std::move(cand);
      scratch.hops[v] = hops;
      return;
    }
    const bool improves =
        alg.less(cand, scratch.weights[v]) ||
        (order_equal(alg, cand, scratch.weights[v]) &&
         hops < scratch.hops[v]);
    if (improves) {
      heap.update(Entry{cand, hops, v}, better);
      scratch.parent[v] = from;
      scratch.weights[v] = std::move(cand);
      scratch.hops[v] = hops;
    }
  };

  heap.mark_settled(source);
  scratch.touched.push_back(source);
  {
    const auto row = g.neighbors(source);
    for (std::size_t p = 0; p < row.size(); ++p) {
      relax(source, row[p], weight_at(source, p, row[p]), 1);
    }
  }
  while (!heap.empty()) {
    const Entry top = heap.pop(better);
    visit(top.node, scratch.parent[top.node], top.weight, top.hops);
    const std::uint32_t hu = top.hops + 1;
    const auto row = g.neighbors(top.node);
    for (std::size_t p = 0; p < row.size(); ++p) {
      relax(top.node, row[p],
            alg.combine(top.weight, weight_at(top.node, p, row[p])), hu);
    }
  }
  for (const NodeId v : scratch.touched) heap.forget(v);
  scratch.touched.clear();
}

// Flat-key sibling (mirrors dijkstra_run_keyed): same pruning, same
// settle order, weight recovered from the popped 128-bit key.
template <OrderKeyedAlgebra A, GraphTopology G, typename WeightAt,
          typename Visit>
void truncated_ball_run_keyed(const A& alg, const G& g, NodeId source,
                              const typename A::Weight& limit, bool strict,
                              BallScratch<typename A::Weight>& scratch,
                              const WeightAt& weight_at, const Visit& visit) {
  using W = typename A::Weight;
  const std::size_t n = g.node_count();
  scratch.ensure(n, alg.phi());
  auto& heap = scratch.keyed_heap;
  heap.prepare(n);

  const auto relax = [&](NodeId from, const Graph::Adjacency& adj, W cand,
                         std::uint32_t hops) {
    const NodeId v = adj.neighbor;
    if (heap.settled(v)) return;
    if (alg.is_phi(cand)) return;
    if (!(strict ? alg.less(cand, limit) : leq(alg, cand, limit))) return;
    if (heap.never_seen(v)) {
      scratch.touched.push_back(v);
      heap.push(KeyedDaryHeap::make_key(alg.order_key(cand), hops, v));
      scratch.parent[v] = from;
      scratch.weights[v] = std::move(cand);
      scratch.hops[v] = hops;
      return;
    }
    const bool improves =
        alg.less(cand, scratch.weights[v]) ||
        (order_equal(alg, cand, scratch.weights[v]) &&
         hops < scratch.hops[v]);
    if (improves) {
      heap.update(KeyedDaryHeap::make_key(alg.order_key(cand), hops, v));
      scratch.parent[v] = from;
      scratch.weights[v] = std::move(cand);
      scratch.hops[v] = hops;
    }
  };

  heap.mark_settled(source);
  scratch.touched.push_back(source);
  {
    const auto row = g.neighbors(source);
    for (std::size_t p = 0; p < row.size(); ++p) {
      relax(source, row[p], weight_at(source, p, row[p]), 1);
    }
  }
  while (!heap.empty()) {
    const KeyedDaryHeap::Key top = heap.pop();
    const NodeId u = KeyedDaryHeap::node_of(top);
    const W wu = alg.weight_from_order_key(KeyedDaryHeap::order_of(top));
    visit(u, scratch.parent[u], wu, KeyedDaryHeap::hops_of(top));
    const std::uint32_t hu = KeyedDaryHeap::hops_of(top) + 1;
    const auto row = g.neighbors(u);
    for (std::size_t p = 0; p < row.size(); ++p) {
      relax(u, row[p], alg.combine(wu, weight_at(u, p, row[p])), hu);
    }
  }
  for (const NodeId v : scratch.touched) heap.forget(v);
  scratch.touched.clear();
}

}  // namespace detail

// Dispatching entry point for one truncated-ball enumeration; see
// truncated_ball_run. `weight_at` follows dijkstra_dispatch's contract.
template <RoutingAlgebra A, GraphTopology G, typename WeightAt,
          typename Visit>
void truncated_ball(const A& alg, const G& g, NodeId source,
                    const typename A::Weight& limit, bool strict,
                    BallScratch<typename A::Weight>& scratch,
                    const WeightAt& weight_at, const Visit& visit) {
  if constexpr (OrderKeyedAlgebra<A>) {
    detail::truncated_ball_run_keyed(alg, g, source, limit, strict, scratch,
                                     weight_at, visit);
  } else {
    detail::truncated_ball_run(alg, g, source, limit, strict, scratch,
                               weight_at, visit);
  }
}

// Runs the sweep into a caller-provided output tree (scratch frontier
// buffers are per-thread and reused); the building block behind
// `dijkstra` for callers that manage output reuse themselves.
template <RoutingAlgebra A, GraphTopology G>
void dijkstra_into(const A& alg, const G& g,
                   const EdgeMap<typename A::Weight>& w, NodeId source,
                   PathTree<typename A::Weight>& tree) {
  using W = typename A::Weight;
  detail::dijkstra_dispatch(alg, g, source, tree,
                            [&w](NodeId, std::size_t,
                                 const Graph::Adjacency& adj) -> const W& {
                              return w[adj.edge];
                            });
}

template <RoutingAlgebra A, GraphTopology G>
PathTree<typename A::Weight> dijkstra(const A& alg, const G& g,
                                      const EdgeMap<typename A::Weight>& w,
                                      NodeId source) {
  PathTree<typename A::Weight> tree;
  dijkstra_into(alg, g, w, source, tree);
  return tree;
}

// All-source trees (n Dijkstra runs). In an undirected graph with a
// commutative algebra, the tree rooted at t also encodes every node's
// preferred path *to* t, which is how destination-based routing tables are
// filled (Observation 1). The runs are independent policy-Dijkstras, so
// they fan out over the pool; each root writes only its own pre-sized
// slot, making the result bit-identical to the sequential loop for any
// thread count. Pass nullptr to use the process-global pool.
template <RoutingAlgebra A>
std::vector<PathTree<typename A::Weight>> all_pairs_trees(
    const A& alg, const CsrGraph& g, const EdgeMap<typename A::Weight>& w,
    ThreadPool* pool = nullptr) {
  using W = typename A::Weight;
  ThreadPool& p = pool ? *pool : ThreadPool::global();
  const std::size_t n = g.node_count();
  // Gather edge weights into CSR slot order once for the whole sweep
  // batch: every run then reads the weight of port p at u from the slot
  // next to the adjacency record it is scanning, instead of chasing
  // w[edge] at a random index per relaxation. Shared read-only across
  // workers.
  std::vector<W> slot_w;
  slot_w.reserve(2 * g.edge_count());
  for (NodeId v = 0; v < n; ++v) {
    for (const auto& adj : g.neighbors(v)) slot_w.push_back(w[adj.edge]);
  }
  std::vector<PathTree<W>> trees(n);
  parallel_for(p, 0, n, [&](std::size_t s) {
    detail::dijkstra_dispatch(alg, g, static_cast<NodeId>(s), trees[s],
                              [&slot_w, &g](NodeId u, std::size_t port,
                                            const Graph::Adjacency&)
                                  -> const W& {
                                return slot_w[g.row_begin(u) + port];
                              });
  });
  return trees;
}

// Graph entry point: snapshots the topology into CSR once (O(n + m),
// negligible next to n sweeps) and fans out over it.
template <RoutingAlgebra A>
std::vector<PathTree<typename A::Weight>> all_pairs_trees(
    const A& alg, const Graph& g, const EdgeMap<typename A::Weight>& w,
    ThreadPool* pool = nullptr) {
  const CsrGraph csr(g);
  return all_pairs_trees(alg, csr, w, pool);
}

}  // namespace cpr
