// Generalized Dijkstra (Sobrinho's lexicographic-lightest-path algorithm).
//
// For *regular* algebras — monotone and isotone (Definition 1) — the
// classic greedy settles nodes in non-decreasing weight order and the
// resulting preferred paths from a source form a tree (Proposition 2's
// premise). For non-isotone algebras such as shortest-widest path the
// greedy is unsound; callers must check `properties().regular()` and fall
// back to the exhaustive or specialized solvers. The unit tests include a
// demonstration that running this on SW produces suboptimal answers.
//
// Ties in ⪯ are broken by hop count and then node id, giving a
// deterministic tree without affecting algebraic optimality.
#pragma once

#include "algebra/algebra.hpp"
#include "routing/path.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <optional>
#include <queue>
#include <vector>

namespace cpr {

// Preferred-path tree rooted at `source`: parent pointers lead back toward
// the source; weight[v] is the weight of the preferred source→v path
// (nullopt: unreachable or v == source, where the empty path has no
// weight).
template <typename W>
struct PathTree {
  NodeId source = kInvalidNode;
  std::vector<NodeId> parent;
  std::vector<EdgeId> parent_edge;
  std::vector<std::optional<W>> weight;
  std::vector<std::size_t> hops;

  bool reachable(NodeId v) const {
    return v == source || weight[v].has_value();
  }

  // The source→v node sequence (empty if unreachable).
  NodePath extract_path(NodeId v) const {
    if (!reachable(v)) return {};
    NodePath p;
    for (NodeId x = v; x != source; x = parent[x]) p.push_back(x);
    p.push_back(source);
    std::reverse(p.begin(), p.end());
    return p;
  }
};

template <RoutingAlgebra A>
PathTree<typename A::Weight> dijkstra(const A& alg, const Graph& g,
                                      const EdgeMap<typename A::Weight>& w,
                                      NodeId source) {
  using W = typename A::Weight;
  const std::size_t n = g.node_count();
  PathTree<W> tree;
  tree.source = source;
  tree.parent.assign(n, kInvalidNode);
  tree.parent_edge.assign(n, kInvalidEdge);
  tree.weight.assign(n, std::nullopt);
  tree.hops.assign(n, 0);
  tree.parent[source] = source;

  struct Entry {
    W weight;
    std::size_t hops;
    NodeId node;
  };
  auto worse = [&alg](const Entry& a, const Entry& b) {
    if (alg.less(a.weight, b.weight)) return false;
    if (alg.less(b.weight, a.weight)) return true;
    if (a.hops != b.hops) return a.hops > b.hops;
    return a.node > b.node;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> queue(
      worse);
  std::vector<bool> settled(n, false);

  auto relax = [&](NodeId from, const Graph::Adjacency& adj, const W& cand,
                   std::size_t hops) {
    if (alg.is_phi(cand)) return;
    const NodeId v = adj.neighbor;
    if (settled[v] || v == source) return;
    const bool improves =
        !tree.weight[v].has_value() || alg.less(cand, *tree.weight[v]) ||
        (order_equal(alg, cand, *tree.weight[v]) && hops < tree.hops[v]);
    if (improves) {
      tree.weight[v] = cand;
      tree.hops[v] = hops;
      tree.parent[v] = from;
      tree.parent_edge[v] = adj.edge;
      queue.push({cand, hops, v});
    }
  };

  settled[source] = true;
  for (const auto& adj : g.neighbors(source)) {
    relax(source, adj, w[adj.edge], 1);
  }
  while (!queue.empty()) {
    const Entry top = queue.top();
    queue.pop();
    if (settled[top.node]) continue;
    // Stale entry: a better weight was queued later.
    if (!tree.weight[top.node].has_value() ||
        !order_equal(alg, *tree.weight[top.node], top.weight) ||
        tree.hops[top.node] != top.hops) {
      continue;
    }
    settled[top.node] = true;
    for (const auto& adj : g.neighbors(top.node)) {
      relax(top.node, adj, alg.combine(top.weight, w[adj.edge]),
            top.hops + 1);
    }
  }
  return tree;
}

// All-source trees (n Dijkstra runs). In an undirected graph with a
// commutative algebra, the tree rooted at t also encodes every node's
// preferred path *to* t, which is how destination-based routing tables are
// filled (Observation 1). The runs are independent policy-Dijkstras, so
// they fan out over the pool; each root writes only its own pre-sized
// slot, making the result bit-identical to the sequential loop for any
// thread count. Pass nullptr to use the process-global pool.
template <RoutingAlgebra A>
std::vector<PathTree<typename A::Weight>> all_pairs_trees(
    const A& alg, const Graph& g, const EdgeMap<typename A::Weight>& w,
    ThreadPool* pool = nullptr) {
  ThreadPool& p = pool ? *pool : ThreadPool::global();
  std::vector<PathTree<typename A::Weight>> trees(g.node_count());
  parallel_for(p, 0, g.node_count(), [&](std::size_t s) {
    trees[s] = dijkstra(alg, g, w, static_cast<NodeId>(s));
  });
  return trees;
}

}  // namespace cpr
