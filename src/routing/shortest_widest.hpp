// Exact shortest-widest path solver.
//
// SW = W × S (Table 1) is monotone but not isotone, so generalized
// Dijkstra is unsound on it and exhaustive search only scales to toy
// graphs. This solver exploits SW's structure instead: the preferred
// bottleneck b*(s,t) is the widest-path value (computable with Dijkstra on
// the regular factor W), and among paths achieving b* the preferred one is
// a cheapest path in the subgraph of edges with capacity >= b*. Grouping
// destinations by b* keeps it at one cost-Dijkstra per distinct bottleneck
// value per source. This is the scalable ground truth behind the Table-1
// row for SW and the source-destination table scheme.
#pragma once

#include "algebra/lex_product.hpp"
#include "algebra/primitives.hpp"
#include "routing/dijkstra.hpp"

#include <map>
#include <vector>

namespace cpr {

using ShortestWidest = LexProduct<WidestPath, ShortestPath>;
using WidestShortest = LexProduct<ShortestPath, WidestPath>;

// For one source: preferred SW weight, next hop, and hop-by-hop parents
// per destination.
template <typename W>
struct ShortestWidestRow {
  NodeId source = kInvalidNode;
  std::vector<std::optional<W>> weight;   // per destination
  std::vector<NodeId> parent;             // tree-of-sorts per destination;
                                          // only valid along each s→t path
  std::vector<NodePath> paths;            // explicit s→t node sequences
};

template <typename SW = ShortestWidest, GraphTopology G = Graph>
ShortestWidestRow<typename SW::Weight> shortest_widest_exact(
    const SW& alg, const G& g,
    const EdgeMap<typename SW::Weight>& weights, NodeId source) {
  using W = typename SW::Weight;
  const std::size_t n = g.node_count();
  ShortestWidestRow<W> row;
  row.source = source;
  row.weight.assign(n, std::nullopt);
  row.parent.assign(n, kInvalidNode);
  row.paths.assign(n, {});

  // Phase 1: widest-path values from the source (regular factor).
  const WidestPath& wp = alg.first_factor();
  EdgeMap<WidestPath::Weight> caps(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) caps[e] = weights[e].first;
  const auto widest = dijkstra(wp, g, caps, source);

  // Group destinations by bottleneck value.
  std::map<WidestPath::Weight, std::vector<NodeId>> by_bottleneck;
  for (NodeId t = 0; t < n; ++t) {
    if (t == source || !widest.has_weight(t)) continue;
    by_bottleneck[widest.weight_at(t)].push_back(t);
  }

  // Phase 2: per distinct bottleneck b, cheapest paths in the subgraph of
  // edges with capacity >= b (costs from the second factor).
  const ShortestPath& sp = alg.second_factor();
  for (const auto& [bottleneck, destinations] : by_bottleneck) {
    EdgeMap<ShortestPath::Weight> costs(g.edge_count());
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      costs[e] =
          weights[e].first >= bottleneck ? weights[e].second : sp.phi();
    }
    const auto cheapest = dijkstra(sp, g, costs, source);
    for (NodeId t : destinations) {
      if (!cheapest.has_weight(t)) continue;  // cannot happen
      row.weight[t] = W{bottleneck, cheapest.weight_at(t)};
      row.parent[t] = cheapest.parent[t];
      row.paths[t] = cheapest.extract_path(t);
    }
  }
  return row;
}

}  // namespace cpr
