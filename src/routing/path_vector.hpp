// Path-vector route computation (Section 5's protocol model).
//
// BGP-style algebras are only right-associative and possibly
// non-commutative, and weights compose from the destination toward the
// source; the natural solver is a path-vector fixed point: every node
// repeatedly adopts the best (⪯, then fewer hops, then lexicographically
// smaller) loop-free path advertised by a neighbor. For monotone algebras
// over finite weight sets the iteration reaches a stable state within a
// bounded number of rounds; the result records whether it converged so
// callers can detect dispute-wheel-style oscillation, which the paper's
// algebras exclude by monotonicity.
//
// Also usable on undirected graphs (via `as_symmetric_digraph`) as an
// independent cross-check of generalized Dijkstra.
#pragma once

#include "algebra/algebra.hpp"
#include "routing/path.hpp"

#include <algorithm>
#include <optional>
#include <vector>

namespace cpr {

template <typename W>
struct PathVectorRoutes {
  NodeId destination = kInvalidNode;
  // Per node: best known node→destination path (node first), empty if none.
  std::vector<NodePath> path;
  std::vector<std::optional<W>> weight;
  bool converged = false;
  std::size_t rounds = 0;

  bool reachable(NodeId v) const {
    return v == destination || weight[v].has_value();
  }
};

template <RoutingAlgebra A>
PathVectorRoutes<typename A::Weight> path_vector(
    const A& alg, const Digraph& g, const ArcMap<typename A::Weight>& w,
    NodeId destination, std::size_t max_rounds = 0) {
  using W = typename A::Weight;
  const std::size_t n = g.node_count();
  if (max_rounds == 0) max_rounds = n + 2;

  PathVectorRoutes<W> routes;
  routes.destination = destination;
  routes.path.assign(n, {});
  routes.weight.assign(n, std::nullopt);
  routes.path[destination] = {destination};

  for (std::size_t round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (NodeId u = 0; u < n; ++u) {
      if (u == destination) continue;
      for (ArcId a : g.out_arcs(u)) {
        const NodeId v = g.arc(a).to;
        const NodePath& via = routes.path[v];
        if (via.empty()) continue;
        // Loop suppression: u must not already appear in v's path.
        if (std::find(via.begin(), via.end(), u) != via.end()) continue;
        // Right-fold: w(u,v) ⊕ weight(v's path).
        const W cand_w = routes.weight[v].has_value()
                             ? alg.combine(w[a], *routes.weight[v])
                             : w[a];
        if (alg.is_phi(cand_w)) continue;
        NodePath cand_path;
        cand_path.reserve(via.size() + 1);
        cand_path.push_back(u);
        cand_path.insert(cand_path.end(), via.begin(), via.end());
        if (!routes.weight[u].has_value() ||
            tie_break_better(alg, cand_w, cand_path, *routes.weight[u],
                             routes.path[u])) {
          routes.weight[u] = cand_w;
          routes.path[u] = std::move(cand_path);
          changed = true;
        }
      }
    }
    routes.rounds = round + 1;
    if (!changed) {
      routes.converged = true;
      break;
    }
  }
  return routes;
}

// Lifts an undirected weighted graph into the symmetric digraph the
// path-vector solver expects (both arc directions carry the edge weight).
template <typename W>
std::pair<Digraph, ArcMap<W>> as_symmetric_digraph(const Graph& g,
                                                   const EdgeMap<W>& w) {
  Digraph d(g.node_count());
  ArcMap<W> aw;
  aw.reserve(2 * g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    d.add_arc_pair(g.edge(e).u, g.edge(e).v);
    aw.push_back(w[e]);
    aw.push_back(w[e]);
  }
  return {std::move(d), std::move(aw)};
}

}  // namespace cpr
