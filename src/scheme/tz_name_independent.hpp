// Thorup–Zwick-style name-independent stretch-3 routing.
//
// Every other scheme in the repo is *name-dependent*: it may rename
// nodes, so its routing labels coincide with node ids and a sender
// "knows" the topological address of its destination for free. The
// name-independent model (Awerbuch et al.; the TZ scheme evaluated for
// Internet graphs in "Compact Routing on Internet-Like Graphs" and "On
// Compact Routing for the Internet", PAPERS.md) removes that fiction:
// nodes keep arbitrary external *names*, the scheme privately assigns
// *labels* (routing/label.hpp), and resolution from name to label is
// part of the scheme's storage bill.
//
// Construction here follows the classic landmark recipe:
//
//   1. Build a Cowen landmark scheme (scheme/cowen.hpp) — the √(n ln n)
//      landmark sample, per-node vicinity balls via the streaming
//      truncated-Dijkstra machinery of PR 9, stretch ≤ 3 by Theorem 3.
//   2. Draw a seeded label permutation (never the identity) and re-key
//      every routing structure by label: node tables become sorted
//      (label, port) rows, and the per-label landmark/port arrays are
//      indexed by label.
//   3. Partition the name→label dictionary into hash buckets
//      (fib_dict_bucket, shared with the FIB loader/walkers) — the
//      hash-partitioned distributed dictionary of the TZ scheme, with
//      bucket b charged to the node that stores it.
//
// A packet addressed to name t resolves t's label once (make_header —
// the object-path analog of the kTz walker's dictionary probe), then
// forwards purely in label space with the Cowen precedence: deliver on
// label match, direct ball entry, the landmark's own hop, the entry
// toward the landmark. Labels are a bijection of names, so every
// decision — and with it delivery and the stretch ≤ 3 bound — carries
// over from the underlying Cowen scheme verbatim.
//
// Churn: apply_event delegates to the Cowen repair and *translates* the
// resulting FibDelta into label space (rows re-keyed and re-sorted,
// landmark slot patches re-indexed from node to label). Names and
// labels are stable across weight churn, so the label map and
// dictionary never appear in a translated delta; their patch sections
// exist for operator-driven relabeling and are exercised directly by
// the FIB tests.
#pragma once

#include "fib/flat_fib.hpp"
#include "routing/label.hpp"
#include "scheme/cowen.hpp"
#include "scheme/scheme.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace cpr {

struct TzOptions {
  // The underlying landmark construction. Balls::kAuto follows the
  // algebra's strict-monotonicity flag, exactly as a direct Cowen build.
  CowenOptions cowen;
};

template <RoutingAlgebra A>
class TzNameIndependentScheme {
 public:
  using W = typename A::Weight;

  struct Header {
    NodeId target = kInvalidNode;  // the *name* the packet is addressed to
    Label target_label = kInvalidLabel;
    Label landmark_label = kInvalidLabel;
    Port port_at_landmark = kInvalidPort;

    bool operator==(const Header&) const = default;
  };

  static TzNameIndependentScheme build(const A& alg, const Graph& g,
                                       const EdgeMap<W>& w, Rng& rng,
                                       TzOptions opt = {}) {
    TzNameIndependentScheme s(
        CowenScheme<A>::build(alg, g, w, rng, opt.cowen));
    // The permutation draws from the same rng stream, after the landmark
    // sample — one seed reproduces both.
    s.labels_ = random_label_map(g.node_count(), rng);
    s.rebuild_labeled_tables();
    s.rebuild_dictionary();
    return s;
  }

  Header make_header(NodeId target) const {
    Header h;
    h.target = target;
    h.target_label = resolve(target);
    const NodeId lm = cowen_.landmark_of(target);
    h.landmark_label =
        lm == kInvalidNode ? kInvalidLabel : labels_.label_of(lm);
    h.port_at_landmark = cowen_.port_at_landmark(target);
    return h;
  }

  Decision forward(NodeId u, Header& h) const {
    const Label ul = labels_.label_of(u);
    if (ul == h.target_label) return Decision::delivered();
    if (const Port* direct = labeled_lookup(u, h.target_label)) {
      return Decision::via(*direct);
    }
    if (ul == h.landmark_label) return Decision::via(h.port_at_landmark);
    if (const Port* toward = labeled_lookup(u, h.landmark_label)) {
      return Decision::via(*toward);
    }
    return Decision::via(kInvalidPort);
  }

  // The name-independent storage bill for node u: its labeled ball
  // table, its own label, and its share of the distributed dictionary —
  // bucket b is stored at node b (bucket_count ≤ n, so the assignment is
  // injective), which is what "hash-partitioned" costs in the TZ
  // accounting.
  std::size_t local_memory_bits(NodeId u) const {
    BitWriter bits;
    const std::size_t n = labels_.size();
    bits.write_varint(labeled_tables_[u].size());
    for (const auto& [lbl, port] : labeled_tables_[u]) {
      bits.write_bounded(lbl, n);
      bits.write_bounded(port, std::max<std::size_t>(graph().degree(u), 1));
    }
    bits.write_bounded(labels_.label_of(u).value, n);
    if (u < dict_buckets_.size()) {
      bits.write_varint(dict_buckets_[u].size());
      for (const std::uint64_t e : dict_buckets_[u]) {
        bits.write_bounded(fib_entry_key(e), n);
        bits.write_bounded(fib_entry_port(e), n);
      }
    }
    return bits.bit_count();
  }

  std::size_t label_bits(NodeId v) const {
    return encode_header(make_header(v)).second;
  }

  // Bit-exact codec for the (name, target label, landmark label, port)
  // quadruple, mirroring the Cowen codec with the two label fields.
  std::pair<std::vector<std::uint8_t>, std::size_t> encode_header(
      const Header& h) const {
    BitWriter bits;
    const std::size_t n = labels_.size();
    bits.write_bounded(h.target, n);
    bits.write_bounded(h.target_label.value, n);
    bits.write_bit(h.landmark_label != kInvalidLabel);
    if (h.landmark_label != kInvalidLabel) {
      bits.write_bounded(h.landmark_label.value, n);
    }
    bits.write_bit(h.port_at_landmark != kInvalidPort);
    if (h.port_at_landmark != kInvalidPort) {
      const NodeId lm = labels_.node_of(h.landmark_label);
      bits.write_bounded(h.port_at_landmark,
                         std::max<std::size_t>(graph().degree(lm), 1));
    }
    return {bits.bytes(), bits.bit_count()};
  }

  Header decode_header(const std::vector<std::uint8_t>& bytes) const {
    BitReader reader(bytes);
    const std::size_t n = labels_.size();
    Header h;
    h.target = static_cast<NodeId>(reader.read_bounded(n));
    h.target_label = make_label(static_cast<std::uint32_t>(reader.read_bounded(n)));
    if (reader.read_bit()) {
      h.landmark_label =
          make_label(static_cast<std::uint32_t>(reader.read_bounded(n)));
    }
    if (reader.read_bit()) {
      const NodeId lm = labels_.node_of(h.landmark_label);
      h.port_at_landmark = static_cast<Port>(reader.read_bounded(
          std::max<std::size_t>(graph().degree(lm), 1)));
    }
    return h;
  }

  // Incremental repair: delegate to the Cowen repair, then translate its
  // FibDelta into label space. Row patches are re-keyed (node-id keys →
  // labels) and re-sorted; landmark slot patches move from node index to
  // label index and their values from landmark node to landmark label.
  // The repaired scheme stays byte-identical to a fresh build on the
  // post-event weights with the same labels (pinned by test_fib_delta).
  CowenRepairStats apply_event(EdgeId e, const W& old_w, const W& new_w,
                               const EdgeMap<W>& w,
                               double rebuild_dirty_fraction = 0.25) {
    CowenRepairStats stats =
        cowen_.apply_event(e, old_w, new_w, w, rebuild_dirty_fraction);
    FibDelta translated;
    translated.recompile = stats.fib_delta.recompile;
    translated.touched_nodes = stats.fib_delta.touched_nodes;
    if (stats.full_rebuild || stats.fib_delta.recompile) {
      rebuild_labeled_tables();
      stats.fib_delta = std::move(translated);
      return stats;
    }
    std::vector<std::uint64_t> row;
    for (const FibRowPatch& p : stats.fib_delta.patches) {
      switch (p.section) {
        case fib_section::kCowenRows: {
          const NodeId v = p.row;
          relabel_table(v);
          row.clear();
          for (const auto& [lbl, port] : labeled_tables_[v]) {
            row.push_back(fib_pack_entry(lbl, port));
          }
          translated.patches.push_back(
              fib_patch_row_u64(fib_section::kCowenRows, v, row));
          break;
        }
        case fib_section::kCowenLandmark: {
          const NodeId v = p.row;
          const NodeId lm = cowen_.landmark_of(v);
          translated.patches.push_back(fib_patch_u32(
              fib_section::kCowenLandmark, labels_.label_of(v).value,
              lm == kInvalidNode ? kInvalidNode
                                 : labels_.label_of(lm).value));
          break;
        }
        case fib_section::kCowenLandmarkPort: {
          const NodeId v = p.row;
          translated.patches.push_back(fib_patch_u32(
              fib_section::kCowenLandmarkPort, labels_.label_of(v).value,
              cowen_.port_at_landmark(v)));
          break;
        }
        default:
          // The Cowen repair emits only the three sections above; seeing
          // anything else means the contract changed under us.
          translated.recompile = true;
          break;
      }
    }
    stats.fib_delta = std::move(translated);
    return stats;
  }

  // --- compile surface ---------------------------------------------
  // Deliberately *not* named table/landmark_of/port_at_landmark: those
  // names select the Cowen-shaped compile_fib adapter (fib/compile.hpp),
  // which would serialize a kCowen arena and lose the label layer. The
  // TZ-shaped adapter matches on these accessors instead.
  const std::vector<std::pair<std::uint32_t, Port>>& labeled_table(
      NodeId u) const {
    return labeled_tables_[u];
  }
  std::uint32_t label_of_node(NodeId v) const {
    return labels_.label_of(v).value;
  }
  // Landmark state indexed by *label*, the shape the kTz arena stores:
  // landmark_label_at(L) is the label of the landmark of the node whose
  // label is L (kInvalidNode when it has none).
  std::uint32_t landmark_label_at(std::uint32_t lbl) const {
    const NodeId lm = cowen_.landmark_of(labels_.node_of(make_label(lbl)));
    return lm == kInvalidNode ? kInvalidNode : labels_.label_of(lm).value;
  }
  Port port_at_landmark_at(std::uint32_t lbl) const {
    return cowen_.port_at_landmark(labels_.node_of(make_label(lbl)));
  }

  const LabelMap& labels() const { return labels_; }
  const CowenScheme<A>& cowen() const { return cowen_; }
  std::size_t landmark_count() const { return cowen_.landmark_count(); }

 private:
  explicit TzNameIndependentScheme(CowenScheme<A> cowen)
      : cowen_(std::move(cowen)) {}

  const Graph& graph() const { return cowen_.graph(); }

  // Name → label resolution through the same bucketed dictionary the
  // arena serves (identical layout by construction; the compile adapter
  // rebuilds it from the label map with the shared sizing helpers).
  Label resolve(NodeId name) const {
    const std::uint64_t b = fib_dict_bucket(name, dict_buckets_.size());
    for (const std::uint64_t e : dict_buckets_[b]) {
      if (fib_entry_key(e) == name) return make_label(fib_entry_port(e));
    }
    return kInvalidLabel;
  }

  const Port* labeled_lookup(NodeId u, Label lbl) const {
    const auto& t = labeled_tables_[u];
    const auto it = std::lower_bound(
        t.begin(), t.end(), lbl.value,
        [](const std::pair<std::uint32_t, Port>& e, std::uint32_t v) {
          return e.first < v;
        });
    return (it != t.end() && it->first == lbl.value) ? &it->second : nullptr;
  }

  void relabel_table(NodeId v) {
    auto& out = labeled_tables_[v];
    out.clear();
    for (const auto& [target, port] : cowen_.table(v)) {
      out.emplace_back(labels_.label_of(target).value, port);
    }
    std::sort(out.begin(), out.end());
  }

  void rebuild_labeled_tables() {
    labeled_tables_.resize(labels_.size());
    for (NodeId v = 0; v < labels_.size(); ++v) relabel_table(v);
  }

  void rebuild_dictionary() {
    const std::size_t n = labels_.size();
    dict_buckets_.assign(fib_dict_bucket_count(n), {});
    // Ascending name order keeps every bucket's entries sorted by name.
    for (std::uint32_t name = 0; name < n; ++name) {
      dict_buckets_[fib_dict_bucket(name, dict_buckets_.size())].push_back(
          fib_pack_entry(name, labels_.label_of(name).value));
    }
  }

  CowenScheme<A> cowen_;
  LabelMap labels_;
  // Per-node ball tables re-keyed by label, sorted by label.
  std::vector<std::vector<std::pair<std::uint32_t, Port>>> labeled_tables_;
  // Hash-partitioned name dictionary; bucket b is charged to node b.
  std::vector<std::vector<std::uint64_t>> dict_buckets_;
};

}  // namespace cpr
