// The policy routing function model (Section 2.3).
//
// A routing scheme implements the paper's mapping R: upon receiving a
// packet with header h, node u evaluates its local routing function
// R_u(h) = (h', l): a possibly rewritten header and an outgoing port.
// We model this as a concept:
//
//   - Header         : the packet header type (the model places no bound
//                      on header size; labels, in contrast, must fit in
//                      O(log n) bits and are measured separately).
//   - make_header(t) : initial header for a packet destined to t — this is
//                      exactly the node label L_V(t) plus mutable cursor
//                      state, so label_bits(t) reports its encoded size.
//   - forward(u, h)  : the local routing function; may rewrite h. Returns
//                      either "deliver" or a port. Ports are reported in
//                      graph-adjacency numbering purely as a simulation
//                      convenience — the model lets the *designer* choose
//                      the local port labeling L_E(u), so schemes account
//                      for memory under their own designed numbering.
//   - local_memory_bits(u): the honest encoded size of R_u (Definition 2's
//                      M_A(R,u)), produced through BitWriter.
//
// The hop-by-hop simulator below drives any such scheme over a graph and
// checks delivery, records the traversed path, and guards against loops.
#pragma once

#include "fib/compile.hpp"
#include "fib/forward_engine.hpp"
#include "graph/graph.hpp"
#include "routing/path.hpp"
#include "util/thread_pool.hpp"

#include <concepts>
#include <cstddef>
#include <span>
#include <unordered_map>
#include <utility>

namespace cpr {

struct Decision {
  bool deliver = false;
  Port port = kInvalidPort;

  static Decision delivered() { return {true, kInvalidPort}; }
  static Decision via(Port p) { return {false, p}; }
};

template <typename S>
concept CompactRoutingScheme =
    requires(const S s, NodeId v, typename S::Header& h) {
      typename S::Header;
      { s.make_header(v) } -> std::same_as<typename S::Header>;
      { s.forward(v, h) } -> std::same_as<Decision>;
      { s.local_memory_bits(v) } -> std::convertible_to<std::size_t>;
      { s.label_bits(v) } -> std::convertible_to<std::size_t>;
    };

struct RouteResult {
  bool delivered = false;
  // The walk revisited an exact (node, header) state — a proven forwarding
  // loop, as opposed to merely exhausting the hop budget. Set by the
  // failure simulator (sim/resilience.hpp) always, and by simulate_route
  // when detect_loops is requested.
  bool looped = false;
  NodePath path;  // nodes visited, starting at the source

  std::size_t hops() const { return path.empty() ? 0 : path.size() - 1; }
};

// Walks a packet from `source` toward `target` under the scheme. The walk
// aborts (delivered = false) after max_hops steps or on an invalid port,
// so incorrect schemes fail loudly in tests instead of spinning.
//
// With detect_loops set (and an equality-comparable header type), the
// walk additionally tracks every exact (node, header-before-forward)
// state: that pair fully determines all later steps, so revisiting one
// is a proven forwarding loop and the walk stops immediately with
// `looped` set — distinguishing a real loop from a long-but-progressing
// path that merely exhausts the hop budget. Promoted here from the
// failure simulator, where a downed edge routinely turns a repaired
// scheme's detour into a cycle; in a static scheme a loop is a
// construction bug, which is exactly why tests want the exact signal.
template <CompactRoutingScheme S>
RouteResult simulate_route(const S& scheme, const Graph& g, NodeId source,
                           NodeId target, std::size_t max_hops = 0,
                           bool detect_loops = false) {
  if (max_hops == 0) max_hops = 4 * g.node_count() + 16;
  RouteResult result;
  result.path.push_back(source);
  typename S::Header header = scheme.make_header(target);
  NodeId current = source;
  [[maybe_unused]] std::vector<std::pair<NodeId, typename S::Header>> visited;
  for (std::size_t step = 0; step <= max_hops; ++step) {
    if constexpr (std::equality_comparable<typename S::Header>) {
      if (detect_loops) {
        for (const auto& [vn, vh] : visited) {
          if (vn == current && vh == header) {
            result.looped = true;
            return result;
          }
        }
        visited.emplace_back(current, header);
      }
    }
    const Decision d = scheme.forward(current, header);
    if (d.deliver) {
      result.delivered = (current == target);
      return result;
    }
    if (d.port == kInvalidPort || d.port >= g.degree(current)) return result;
    current = g.neighbor(current, d.port);
    result.path.push_back(current);
  }
  return result;  // loop guard tripped
}

// Object-path batched query runtime: routes every (source, target) query
// through the scheme's own forward() and returns the results in input
// order. Queries fan out over the pool in blocks; each block keeps a
// per-thread scratch arena — a target → initial-header cache — so
// workloads with repeated destinations (gravity/hotspot traffic,
// all-pairs sweeps) pay make_header's label construction once per distinct
// target per block instead of once per packet. Every query writes only its
// own result slot, so the output is identical to a sequential
// simulate_route loop for any thread count and schedule.
//
// This is the differential oracle for the compiled forwarding plane:
// route_batch below serves compilable schemes from a FlatFib arena and
// must stay bit-identical to this path (tests/test_fib.cpp).
template <CompactRoutingScheme S>
std::vector<RouteResult> route_batch_object(
    const S& scheme, const Graph& g,
    std::span<const std::pair<NodeId, NodeId>> queries,
    ThreadPool* pool = nullptr, std::size_t max_hops = 0) {
  ThreadPool& p = pool ? *pool : ThreadPool::global();
  if (max_hops == 0) max_hops = 4 * g.node_count() + 16;
  std::vector<RouteResult> results(queries.size());
  constexpr std::size_t kBlock = 256;
  parallel_for_blocks(p, 0, queries.size(), kBlock, [&](std::size_t lo,
                                                        std::size_t hi) {
    // Scratch arena for this block: decoded initial headers by target.
    std::unordered_map<NodeId, typename S::Header> header_cache;
    header_cache.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      const auto [source, target] = queries[i];
      auto cached = header_cache.find(target);
      if (cached == header_cache.end()) {
        cached = header_cache.emplace(target, scheme.make_header(target)).first;
      }
      RouteResult& result = results[i];
      result.path.push_back(source);
      typename S::Header header = cached->second;  // fresh mutable copy
      NodeId current = source;
      for (std::size_t step = 0; step <= max_hops; ++step) {
        const Decision d = scheme.forward(current, header);
        if (d.deliver) {
          result.delivered = (current == target);
          break;
        }
        if (d.port == kInvalidPort || d.port >= g.degree(current)) break;
        current = g.neighbor(current, d.port);
        result.path.push_back(current);
      }
    }
  });
  return results;
}

// Batched query runtime. Schemes with a FIB compilation adapter
// (fib/compile.hpp) are compiled once per batch and served from the flat
// arena by the sharded engine — no virtual dispatch, no per-hop port_to,
// no header-cache hashing; everything else falls back to the object path
// above. Results are bit-identical either way, for any thread count.
template <CompactRoutingScheme S>
std::vector<RouteResult> route_batch(
    const S& scheme, const Graph& g,
    std::span<const std::pair<NodeId, NodeId>> queries,
    ThreadPool* pool = nullptr, std::size_t max_hops = 0) {
  if constexpr (requires { compile_fib(scheme, g); }) {
    if (g.node_count() > 0 && !queries.empty()) {
      const FlatFib fib = compile_fib(scheme, g);
      FibBatchOptions opt;
      opt.pool = pool;
      opt.max_hops = max_hops;
      const FibBatchOutput out = forward_batch(fib, queries, opt);
      std::vector<RouteResult> results(queries.size());
      ThreadPool& p = pool ? *pool : ThreadPool::global();
      parallel_for_blocks(p, 0, queries.size(), 256,
                          [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i) {
                              results[i].delivered =
                                  out.results[i].delivered != 0;
                              const auto path = out.path(i);
                              results[i].path.assign(path.begin(), path.end());
                            }
                          });
      return results;
    }
  }
  return route_batch_object(scheme, g, queries, pool, max_hops);
}

// Aggregate memory statistics over all nodes (Definition 2 takes the max;
// benches report both max and mean).
struct SchemeFootprint {
  std::size_t max_node_bits = 0;
  double mean_node_bits = 0;
  std::size_t max_label_bits = 0;
  double mean_label_bits = 0;
};

template <CompactRoutingScheme S>
SchemeFootprint measure_footprint(const S& scheme, std::size_t n) {
  SchemeFootprint f;
  double sum_node = 0, sum_label = 0;
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t nb = scheme.local_memory_bits(v);
    const std::size_t lb = scheme.label_bits(v);
    f.max_node_bits = std::max(f.max_node_bits, nb);
    f.max_label_bits = std::max(f.max_label_bits, lb);
    sum_node += static_cast<double>(nb);
    sum_label += static_cast<double>(lb);
  }
  if (n > 0) {
    f.mean_node_bits = sum_node / static_cast<double>(n);
    f.mean_label_bits = sum_label / static_cast<double>(n);
  }
  return f;
}

}  // namespace cpr
