#include "scheme/spanning_tree.hpp"

#include "util/thread_pool.hpp"

#include <cstdint>
#include <stdexcept>

namespace cpr {

namespace {

// Tree-restricted adjacency in flat CSR form — counting sort over the
// edge list, no per-node vectors. Slots per node keep tree_edges order
// (the order the old vector-of-vectors build produced), so BFS discovery
// order — and with it every children list and DFS labeling downstream —
// is unchanged. This sits on the churn-repair hot path: every tree swap
// re-roots, so allocation count matters as much as asymptotics.
struct TreeAdjacency {
  std::size_t n = 0;
  std::vector<std::uint32_t> offset;  // n + 1 prefix sums
  std::vector<NodeId> neighbor;       // 2 (n - 1) endpoints
  std::vector<EdgeId> via;            // matching edge ids
};

TreeAdjacency tree_adjacency(const Graph& g,
                             const std::vector<EdgeId>& tree_edges) {
  const std::size_t n = g.node_count();
  if (n > 0 && tree_edges.size() != n - 1) {
    throw std::invalid_argument("RootedTree: not a spanning edge set");
  }
  TreeAdjacency adj;
  adj.n = n;
  adj.offset.assign(n + 1, 0);
  for (EdgeId e : tree_edges) {
    ++adj.offset[g.edge(e).u + 1];
    ++adj.offset[g.edge(e).v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) adj.offset[i] += adj.offset[i - 1];
  adj.neighbor.resize(2 * tree_edges.size());
  adj.via.resize(2 * tree_edges.size());
  std::vector<std::uint32_t> cursor(adj.offset.begin(), adj.offset.end() - 1);
  for (EdgeId e : tree_edges) {
    const NodeId u = g.edge(e).u, v = g.edge(e).v;
    adj.neighbor[cursor[u]] = v;
    adj.via[cursor[u]++] = e;
    adj.neighbor[cursor[v]] = u;
    adj.via[cursor[v]++] = e;
  }
  return adj;
}

RootedTree root_over(const TreeAdjacency& adj, NodeId root,
                     bool with_children = true) {
  const std::size_t n = adj.n;
  if (root >= n) {
    // Covers the empty graph (no node can be a root of nothing) and bad
    // callers — fail loudly instead of indexing out of bounds below.
    throw std::invalid_argument("RootedTree: root out of range");
  }
  RootedTree t;
  t.root = root;
  t.parent.assign(n, kInvalidNode);
  t.parent_edge.assign(n, kInvalidEdge);
  t.subtree_size.assign(n, 1);
  t.parent[root] = root;

  // The BFS order vector doubles as the queue (head chases the tail).
  std::vector<NodeId> bfs_order;
  bfs_order.reserve(n);
  bfs_order.push_back(root);
  for (std::size_t head = 0; head < bfs_order.size(); ++head) {
    const NodeId u = bfs_order[head];
    for (std::uint32_t i = adj.offset[u]; i < adj.offset[u + 1]; ++i) {
      const NodeId v = adj.neighbor[i];
      if (t.parent[v] != kInvalidNode) continue;
      t.parent[v] = u;
      t.parent_edge[v] = adj.via[i];
      bfs_order.push_back(v);
    }
  }
  if (bfs_order.size() != n) {
    throw std::invalid_argument("RootedTree: edges do not span the graph");
  }
  // Children lists rebuilt from the BFS order (global discovery order =
  // per-parent discovery order), with exact-size reserves.
  if (with_children) {
    std::vector<std::uint32_t> child_count(n, 0);
    for (const NodeId v : bfs_order) {
      if (v != root) ++child_count[t.parent[v]];
    }
    t.children.assign(n, {});
    for (NodeId u = 0; u < n; ++u) t.children[u].reserve(child_count[u]);
    for (const NodeId v : bfs_order) {
      if (v != root) t.children[t.parent[v]].push_back(v);
    }
  }
  for (std::size_t i = bfs_order.size(); i-- > 0;) {
    const NodeId u = bfs_order[i];
    if (u != root) t.subtree_size[t.parent[u]] += t.subtree_size[u];
  }
  return t;
}

}  // namespace

RootedTree RootedTree::from_edges(const Graph& g,
                                  const std::vector<EdgeId>& tree_edges,
                                  NodeId root, bool with_children) {
  return root_over(tree_adjacency(g, tree_edges), root, with_children);
}

std::vector<RootedTree> rooted_forest(const Graph& g,
                                      const std::vector<EdgeId>& tree_edges,
                                      const std::vector<NodeId>& roots,
                                      ThreadPool* pool) {
  ThreadPool& p = pool ? *pool : ThreadPool::global();
  // One shared adjacency for every root: each BFS only reads it, so the
  // fan-out stays write-disjoint and bit-identical to the sequential loop.
  const TreeAdjacency adj = tree_adjacency(g, tree_edges);
  std::vector<RootedTree> forest(roots.size());
  parallel_for(p, 0, roots.size(), [&](std::size_t i) {
    forest[i] = root_over(adj, roots[i]);
  });
  return forest;
}

}  // namespace cpr
