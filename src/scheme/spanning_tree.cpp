#include "scheme/spanning_tree.hpp"

#include "util/thread_pool.hpp"

#include <deque>
#include <stdexcept>

namespace cpr {

namespace {

// Tree-restricted adjacency, per node in tree_edges order (the order
// from_edges always used, so sharing it across roots changes nothing).
using TreeAdjacency = std::vector<std::vector<std::pair<NodeId, EdgeId>>>;

TreeAdjacency tree_adjacency(const Graph& g,
                             const std::vector<EdgeId>& tree_edges) {
  const std::size_t n = g.node_count();
  if (n > 0 && tree_edges.size() != n - 1) {
    throw std::invalid_argument("RootedTree: not a spanning edge set");
  }
  TreeAdjacency adj(n);
  for (EdgeId e : tree_edges) {
    adj[g.edge(e).u].push_back({g.edge(e).v, e});
    adj[g.edge(e).v].push_back({g.edge(e).u, e});
  }
  return adj;
}

RootedTree root_over(const TreeAdjacency& adj, NodeId root) {
  const std::size_t n = adj.size();
  RootedTree t;
  t.root = root;
  t.parent.assign(n, kInvalidNode);
  t.parent_edge.assign(n, kInvalidEdge);
  t.children.assign(n, {});
  t.subtree_size.assign(n, 1);
  t.parent[root] = root;

  std::vector<NodeId> bfs_order;
  bfs_order.reserve(n);
  std::deque<NodeId> queue{root};
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    bfs_order.push_back(u);
    for (const auto& [v, e] : adj[u]) {
      if (t.parent[v] != kInvalidNode) continue;
      t.parent[v] = u;
      t.parent_edge[v] = e;
      t.children[u].push_back(v);
      queue.push_back(v);
    }
  }
  if (bfs_order.size() != n) {
    throw std::invalid_argument("RootedTree: edges do not span the graph");
  }
  for (std::size_t i = bfs_order.size(); i-- > 0;) {
    const NodeId u = bfs_order[i];
    if (u != root) t.subtree_size[t.parent[u]] += t.subtree_size[u];
  }
  return t;
}

}  // namespace

RootedTree RootedTree::from_edges(const Graph& g,
                                  const std::vector<EdgeId>& tree_edges,
                                  NodeId root) {
  return root_over(tree_adjacency(g, tree_edges), root);
}

std::vector<RootedTree> rooted_forest(const Graph& g,
                                      const std::vector<EdgeId>& tree_edges,
                                      const std::vector<NodeId>& roots,
                                      ThreadPool* pool) {
  ThreadPool& p = pool ? *pool : ThreadPool::global();
  // One shared adjacency for every root: each BFS only reads it, so the
  // fan-out stays write-disjoint and bit-identical to the sequential loop.
  const TreeAdjacency adj = tree_adjacency(g, tree_edges);
  std::vector<RootedTree> forest(roots.size());
  parallel_for(p, 0, roots.size(), [&](std::size_t i) {
    forest[i] = root_over(adj, roots[i]);
  });
  return forest;
}

}  // namespace cpr
