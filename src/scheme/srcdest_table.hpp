// Source-destination routing tables — the trivial routing function for
// non-isotone algebras (Section 3.1).
//
// When isotonicity fails (shortest-widest path), preferred paths toward a
// destination need not form a tree, so destination-only forwarding is
// insufficient; the paper's fallback stores a separate entry per
// source-destination pair, O(n² log d) bits per router in the worst case.
// The header carries (source, destination); node u keeps a port for every
// (s,t) whose preferred path routes through u. Whether this Õ(n²) bound is
// tight is one of the paper's open questions — the benches print it next
// to the Ω(n) lower bound so the gap is visible.
#pragma once

#include "routing/path.hpp"
#include "scheme/scheme.hpp"
#include "util/bitstream.hpp"

#include <map>
#include <utility>
#include <vector>

namespace cpr {

class SourceDestTableScheme {
 public:
  struct Header {
    NodeId source;
    NodeId target;
  };

  // `paths[s][t]` is the preferred s→t node sequence (may be empty when
  // unreachable). Any exact solver output fits: exhaustive enumeration,
  // the shortest-widest specialized solver, or path-vector results.
  SourceDestTableScheme(const Graph& g,
                        const std::vector<std::vector<NodePath>>& paths)
      : graph_(&g), tables_(g.node_count()) {
    for (NodeId s = 0; s < paths.size(); ++s) {
      for (NodeId t = 0; t < paths[s].size(); ++t) {
        const NodePath& p = paths[s][t];
        for (std::size_t i = 0; i + 1 < p.size(); ++i) {
          tables_[p[i]][{s, t}] = graph_->port_to(p[i], p[i + 1]);
        }
      }
    }
  }

  Header make_header(NodeId target) const {
    // The source field is stamped by simulate_route's first forward() call
    // being evaluated at the source; encode it lazily via kInvalidNode.
    return Header{kInvalidNode, target};
  }

  Decision forward(NodeId u, Header& h) const {
    if (h.source == kInvalidNode) h.source = u;  // stamp at origin
    if (u == h.target) return Decision::delivered();
    const auto it = tables_[u].find({h.source, h.target});
    if (it == tables_[u].end()) return Decision::via(kInvalidPort);
    return Decision::via(it->second);
  }

  std::size_t local_memory_bits(NodeId u) const {
    BitWriter bits;
    const std::size_t n = graph_->node_count();
    bits.write_varint(tables_[u].size());
    for (const auto& [key, port] : tables_[u]) {
      bits.write_bounded(key.first, n);
      bits.write_bounded(key.second, n);
      bits.write_bounded(port, std::max<std::size_t>(graph_->degree(u), 1));
    }
    return bits.bit_count();
  }

  std::size_t label_bits(NodeId) const {
    return bits_for_universe(graph_->node_count());
  }

  std::size_t entry_count(NodeId u) const { return tables_[u].size(); }

 private:
  const Graph* graph_;
  std::vector<std::map<std::pair<NodeId, NodeId>, Port>> tables_;
};

static_assert(CompactRoutingScheme<SourceDestTableScheme>);

}  // namespace cpr
