#include "scheme/interval_router.hpp"

#include "scheme/spanning_tree.hpp"
#include "util/bitstream.hpp"

#include <algorithm>

namespace cpr {

IntervalRouter::IntervalRouter(const Graph& g,
                               const std::vector<EdgeId>& tree_edges,
                               NodeId root)
    : graph_(&g), root_(root) {
  const RootedTree tree = RootedTree::from_edges(g, tree_edges, root);
  const std::size_t n = g.node_count();
  parent_ = tree.parent;
  children_ = tree.children;
  dfs_in_.assign(n, 0);
  dfs_out_.assign(n, 0);

  std::uint32_t counter = 0;
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    dfs_in_[u] = counter++;
    dfs_out_[u] =
        dfs_in_[u] + static_cast<std::uint32_t>(tree.subtree_size[u]) - 1;
    for (std::size_t i = children_[u].size(); i-- > 0;) {
      stack.push_back(children_[u][i]);
    }
  }
  // Children end up in DFS order already (stack pushes reversed), but be
  // explicit: binary search below requires dfs_in-sorted children.
  for (auto& kids : children_) {
    std::sort(kids.begin(), kids.end(),
              [&](NodeId a, NodeId b) { return dfs_in_[a] < dfs_in_[b]; });
  }
}

Decision IntervalRouter::forward(NodeId u, Header& h) const {
  if (h == dfs_in_[u]) return Decision::delivered();
  if (h < dfs_in_[u] || h > dfs_out_[u]) {
    return Decision::via(graph_->port_to(u, parent_[u]));
  }
  // Binary search the child whose interval contains h.
  const auto& kids = children_[u];
  std::size_t lo = 0, hi = kids.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (dfs_in_[kids[mid]] <= h) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  if (lo >= kids.size()) return Decision::via(kInvalidPort);
  return Decision::via(graph_->port_to(u, kids[lo]));
}

std::size_t IntervalRouter::local_memory_bits(NodeId u) const {
  BitWriter bits;
  const std::size_t n = graph_->node_count();
  bits.write_bounded(dfs_in_[u], n);
  bits.write_bounded(dfs_out_[u], n);
  bits.write_bit(u != root_);
  // One boundary per child: this is the Θ(deg·log n) term the heavy-path
  // scheme avoids.
  bits.write_varint(children_[u].size());
  for (NodeId c : children_[u]) bits.write_bounded(dfs_in_[c], n);
  return bits.bit_count();
}

std::size_t IntervalRouter::label_bits(NodeId) const {
  return bits_for_universe(graph_->node_count());
}

}  // namespace cpr
