// Classic interval routing on trees — the ablation baseline for the
// heavy-path TreeRouter.
//
// Every node stores its own DFS interval plus the interval *boundaries of
// each child*, and routes by binary search among them: O((deg+1)·log n)
// bits per node, O(log n)-bit labels. On bounded-degree trees this is as
// good as the heavy-path scheme; on a star the hub pays Θ(n log n) bits —
// exactly the gap the designer-chosen port trick of Fraigniaud–Gavoille
// closes. bench_ablation_tree quantifies the difference.
#pragma once

#include "graph/graph.hpp"
#include "scheme/scheme.hpp"

#include <cstdint>
#include <vector>

namespace cpr {

class IntervalRouter {
 public:
  using Header = std::uint64_t;  // the target's DFS number

  IntervalRouter(const Graph& g, const std::vector<EdgeId>& tree_edges,
                 NodeId root = 0);

  Header make_header(NodeId target) const { return dfs_in_[target]; }
  Decision forward(NodeId u, Header& h) const;

  std::size_t local_memory_bits(NodeId u) const;
  std::size_t label_bits(NodeId) const;

  // Raw labeling products, read by the FIB compiler (fib/compile.cpp).
  NodeId root() const { return root_; }
  NodeId parent(NodeId v) const { return parent_[v]; }
  std::uint32_t dfs_in(NodeId v) const { return dfs_in_[v]; }
  std::uint32_t dfs_out(NodeId v) const { return dfs_out_[v]; }
  const std::vector<NodeId>& children(NodeId u) const { return children_[u]; }

 private:
  const Graph* graph_;
  NodeId root_;
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> dfs_in_, dfs_out_;
  // children_[u] sorted by dfs_in; child intervals partition
  // [dfs_in(u)+1, dfs_out(u)].
  std::vector<std::vector<NodeId>> children_;
};

static_assert(CompactRoutingScheme<IntervalRouter>);

}  // namespace cpr
