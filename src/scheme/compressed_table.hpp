// Run-length-compressed destination tables — and why label assignment is
// the whole game.
//
// A destination table is a function dest → port. If many consecutive
// destination ids share a port, run-length encoding shrinks the table;
// but "consecutive" depends on how nodes are *named*. With arbitrary ids
// the runs are short and RLE saves nothing. If the scheme designer may
// relabel nodes (the model's L_V is designer-chosen, as in interval
// routing), numbering destinations by a DFS of the preferred tree makes
// each port's destination set a handful of intervals — and for selective
// algebras routed over a spanning tree, the table collapses to
// O(deg·log n) bits. This scheme makes that ablation concrete:
// bench_ablation_tree compares identity vs DFS relabeling.
//
// The header carries the *relabeled* destination id (the label), so the
// scheme stays within the model: labels are designer-chosen names of
// c·log n bits.
#pragma once

#include "scheme/scheme.hpp"
#include "util/bitstream.hpp"

#include <vector>

namespace cpr {

class CompressedTableScheme {
 public:
  using Header = NodeId;  // the relabeled destination id

  // next_hop[t][u]: neighbor of u toward t (original ids), as for
  // DestinationTableScheme. `relabel` maps original id -> label; pass the
  // identity for the no-relabeling baseline.
  CompressedTableScheme(const Graph& g,
                        const std::vector<std::vector<NodeId>>& next_hop,
                        std::vector<NodeId> relabel);

  // DFS order of a rooted spanning tree given by parent pointers — the
  // relabeling that makes selective-algebra tables compress.
  static std::vector<NodeId> dfs_relabeling(const Graph& g,
                                            const std::vector<NodeId>& parent,
                                            NodeId root);

  Header make_header(NodeId target) const { return relabel_[target]; }
  Decision forward(NodeId u, Header& h) const;

  // Honest encoding: per node, the run-length encoded port sequence over
  // label space (gamma-coded run lengths + bounded port ids).
  std::size_t local_memory_bits(NodeId u) const;
  std::size_t label_bits(NodeId) const {
    return bits_for_universe(ports_by_label_.size());
  }

  std::size_t run_count(NodeId u) const;

  // Raw table rows, read by the FIB compiler (fib/compile.cpp) when it
  // re-derives the RLE runs for the flat arena.
  NodeId relabel(NodeId v) const { return relabel_[v]; }
  const std::vector<Port>& ports_by_label(NodeId u) const {
    return ports_by_label_[u];
  }

 private:
  const Graph* graph_;
  std::vector<NodeId> relabel_;          // original -> label
  // ports_by_label_[u][label] = port at u toward the destination whose
  // label is `label` (kInvalidPort if unreachable or self).
  std::vector<std::vector<Port>> ports_by_label_;
};

static_assert(CompactRoutingScheme<CompressedTableScheme>);

}  // namespace cpr
