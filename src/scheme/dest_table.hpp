// Destination-based routing tables (Observation 1 / Proposition 2).
//
// For a regular algebra the preferred paths toward each destination form a
// tree, so a single (destination → port) entry per destination suffices:
// R̂_u(v) = (v, l_v). The per-node table is an array indexed by destination
// id holding a port in the node's local port space — O(n log d) bits, the
// paper's baseline that compact schemes try to beat. Proposition 2 says
// this is correct exactly for regular algebras; the tests exercise both
// directions (correct for S/W/R/WS, and the SW counterexample where
// tree-consistent destination tables cannot realize the preferred paths).
#pragma once

#include "algebra/algebra.hpp"
#include "graph/csr_graph.hpp"
#include "routing/dijkstra.hpp"
#include "scheme/scheme.hpp"
#include "util/bitstream.hpp"

#include <vector>

namespace cpr {

class DestinationTableScheme {
 public:
  using Header = NodeId;  // the header is just the destination's id

  // next_hop[t][u] = neighbor of u on u's path toward t (kInvalidNode when
  // u == t or t unreachable from u).
  DestinationTableScheme(const Graph& g,
                         std::vector<std::vector<NodeId>> next_hop)
      : graph_(&g), csr_(g), next_hop_(std::move(next_hop)) {}

  // Builds tables from preferred-path trees rooted at every destination
  // (undirected graph, commutative algebra: the tree rooted at t encodes
  // every node's preferred path to t).
  template <RoutingAlgebra A>
  static DestinationTableScheme from_algebra(
      const A& alg, const Graph& g, const EdgeMap<typename A::Weight>& w) {
    const std::size_t n = g.node_count();
    std::vector<std::vector<NodeId>> next_hop(n,
                                              std::vector<NodeId>(n, kInvalidNode));
    const CsrGraph csr(g);  // one snapshot for the n sweeps
    for (NodeId t = 0; t < n; ++t) {
      const auto tree = dijkstra(alg, csr, w, t);
      for (NodeId u = 0; u < n; ++u) {
        if (u != t && tree.reachable(u)) next_hop[t][u] = tree.parent[u];
      }
    }
    return DestinationTableScheme(g, std::move(next_hop));
  }

  Header make_header(NodeId target) const { return target; }

  // Next hop of u toward t (kInvalidNode when u == t or t unreachable);
  // the kTable compile adapter resolves these into ports.
  NodeId next_hop(NodeId t, NodeId u) const { return next_hop_[t][u]; }

  Decision forward(NodeId u, Header& h) const {
    if (u == h) return Decision::delivered();
    const NodeId nh = next_hop_[h][u];
    if (nh == kInvalidNode) return Decision::via(kInvalidPort);
    return Decision::via(csr_.port_to(u, nh));
  }

  // Destination-indexed port array: (n-1) entries of ceil(log2 deg(u))
  // bits each, plus one "unreachable" flag bit per entry.
  std::size_t local_memory_bits(NodeId u) const {
    BitWriter bits;
    const std::size_t n = graph_->node_count();
    for (NodeId t = 0; t < n; ++t) {
      if (t == u) continue;
      const NodeId nh = next_hop_[t][u];
      bits.write_bit(nh != kInvalidNode);
      if (nh != kInvalidNode) {
        bits.write_bounded(csr_.port_to(u, nh),
                           std::max<std::size_t>(graph_->degree(u), 1));
      }
    }
    return bits.bit_count();
  }

  std::size_t label_bits(NodeId) const {
    return bits_for_universe(graph_->node_count());
  }

 private:
  const Graph* graph_;
  CsrGraph csr_;  // O(log deg) port lookups for forwarding + accounting
  std::vector<std::vector<NodeId>> next_hop_;
};

static_assert(CompactRoutingScheme<DestinationTableScheme>);

}  // namespace cpr
