// Generalized Cowen stretch-3 compact routing (Theorem 3).
//
// For a delimited *regular* algebra, Cowen's landmark scheme carries over
// verbatim: pick a landmark set L, associate with each node u its
// ⪯-closest landmark l_u, define the ball
//     B(u) = { v : w(p*_uv) ≺ w(p*_u,l_u) }
// and the cluster C(u) = { v : u ∈ B(v) }. The label of v is the triplet
// (v, l_v, port_{l_v,v}); node u keeps a (target, port) entry for every
// v ∈ C(u) ∪ L. In-cluster packets follow preferred paths; everything
// else detours via the target's landmark, and Lemma 4 (triangle
// inequality + isotonicity) bounds the detour by algebraic stretch 3:
//     w(p*_u,l_v) ⊕ w(p*_l_v,v) ⪯ (w(p*_u,v))³.
//
// Ball strictness: for strictly monotone algebras the strict ball above is
// the right choice (proper subpaths of preferred paths strictly improve,
// so Lemma 3's "the next hop also stores the entry" holds — Cowen's
// original argument). For weakly monotone algebras correctness needs the
// non-strict ball w(p*_uv) ⪯ w(p*_u,l_u); with heavily tied weight sets
// (selective algebras) the non-strict balls and hence the tables can grow
// toward Θ(n) — which is exactly the paper's message in Section 4.1 that
// for selective algebras the *tree* scheme, not the landmark scheme, is
// the right tool (stretch-3 paths coincide with preferred paths there).
// The constructor picks strictness from the algebra's SM flag; tests pin
// both behaviours.
//
// Landmark sizing follows Thorup–Zwick's refinement of Cowen's analysis:
// an initial random sample of ~sqrt(n ln n) landmarks, then any node whose
// cluster exceeds the cap is promoted to a landmark and balls are
// recomputed, which terminates and keeps max |C(u)| bounded.
//
// Parallel construction: the heavy phases — per-root preferred-path trees,
// nearest-landmark assignment, ball/cluster scans, table fill — are
// independent per node, so they fan out over a ThreadPool. All randomness
// (the landmark sample) is drawn sequentially before any parallel region,
// every parallel loop writes only the slot of its own index, and the
// promotion reduction runs on the calling thread in node order, so the
// resulting scheme is bit-identical for every thread count (pinned by
// tests/test_parallel_determinism.cpp).
#pragma once

#include "algebra/algebra.hpp"
#include "graph/csr_graph.hpp"
#include "routing/dijkstra.hpp"
#include "scheme/scheme.hpp"
#include "util/bitstream.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace cpr {

struct CowenOptions {
  // 0 = automatic: ceil(sqrt(n * max(1, ln n))).
  std::size_t initial_landmarks = 0;
  // 0 = automatic: 4 * ceil(sqrt(n * max(1, ln n))). Nodes with bigger
  // clusters get promoted to landmarks.
  std::size_t cluster_cap = 0;
  // Force strict/non-strict balls; by default follows the SM flag.
  enum class Balls { kAuto, kStrict, kNonStrict } balls = Balls::kAuto;
  // Pool for the parallel construction phases; nullptr = process-global
  // pool. The built scheme does not depend on the pool's thread count.
  ThreadPool* pool = nullptr;
};

template <RoutingAlgebra A>
class CowenScheme {
 public:
  using W = typename A::Weight;

  struct Header {
    NodeId target = kInvalidNode;
    NodeId landmark = kInvalidNode;
    Port port_at_landmark = kInvalidPort;
  };

  static CowenScheme build(const A& alg, const Graph& g,
                           const EdgeMap<W>& w, Rng& rng,
                           CowenOptions opt = {}) {
    CowenScheme s(alg, g);
    const std::size_t n = g.node_count();
    const double lg = std::max(1.0, std::log(static_cast<double>(std::max<std::size_t>(n, 2))));
    const std::size_t init =
        opt.initial_landmarks > 0
            ? opt.initial_landmarks
            : static_cast<std::size_t>(
                  std::ceil(std::sqrt(static_cast<double>(n) * lg)));
    s.cluster_cap_ =
        opt.cluster_cap > 0 ? opt.cluster_cap : 4 * std::max<std::size_t>(init, 1);
    switch (opt.balls) {
      case CowenOptions::Balls::kStrict:
        s.strict_balls_ = true;
        break;
      case CowenOptions::Balls::kNonStrict:
        s.strict_balls_ = false;
        break;
      case CowenOptions::Balls::kAuto:
        s.strict_balls_ = alg.properties().strictly_monotone;
        break;
    }

    s.pool_ = opt.pool ? opt.pool : &ThreadPool::global();

    // Flat CSR snapshot: every later phase (tree fan-out, ball/cluster
    // scans, table fill with its O(log deg) port lookups) reads it.
    s.csr_ = CsrGraph(g);

    // Preferred-path trees from every root; tree[t] gives both w(p*_t,u)
    // and u's next hop toward t (undirected + commutative). One
    // policy-Dijkstra per root, fanned out across the pool.
    s.trees_ = all_pairs_trees(alg, s.csr_, w, s.pool_);

    s.is_landmark_.assign(n, false);
    for (std::size_t i : rng.sample_without_replacement(n, std::min(init, n))) {
      s.is_landmark_[i] = true;
    }
    s.recompute_until_stable();
    s.build_tables();
    return s;
  }

  Header make_header(NodeId target) const {
    Header h;
    h.target = target;
    h.landmark = landmark_of_[target];
    h.port_at_landmark = port_at_landmark_[target];
    return h;
  }

  Decision forward(NodeId u, Header& h) const {
    if (u == h.target) return Decision::delivered();
    if (const Port* direct = table_lookup(u, h.target)) {
      return Decision::via(*direct);
    }
    if (u == h.landmark) return Decision::via(h.port_at_landmark);
    if (const Port* toward = table_lookup(u, h.landmark)) {
      return Decision::via(*toward);
    }
    return Decision::via(kInvalidPort);
  }

  std::size_t local_memory_bits(NodeId u) const {
    BitWriter bits;
    const std::size_t n = graph_->node_count();
    bits.write_varint(tables_[u].size());
    for (const auto& [target, port] : tables_[u]) {
      bits.write_bounded(target, n);
      bits.write_bounded(port, std::max<std::size_t>(graph_->degree(u), 1));
    }
    return bits.bit_count();
  }

  std::size_t label_bits(NodeId v) const {
    return encode_header(make_header(v)).second;
  }

  // Bit-exact label codec for the (target, landmark, port-at-landmark)
  // triplet; round-tripped in the tests so the reported label sizes are
  // decodable, like the tree router's.
  std::pair<std::vector<std::uint8_t>, std::size_t> encode_header(
      const Header& h) const {
    BitWriter bits;
    const std::size_t n = graph_->node_count();
    bits.write_bounded(h.target, n);
    bits.write_bounded(h.landmark, n);
    bits.write_bit(h.port_at_landmark != kInvalidPort);
    if (h.port_at_landmark != kInvalidPort) {
      bits.write_bounded(
          h.port_at_landmark,
          std::max<std::size_t>(graph_->degree(h.landmark), 1));
    }
    return {bits.bytes(), bits.bit_count()};
  }

  Header decode_header(const std::vector<std::uint8_t>& bytes) const {
    BitReader reader(bytes);
    const std::size_t n = graph_->node_count();
    Header h;
    h.target = static_cast<NodeId>(reader.read_bounded(n));
    h.landmark = static_cast<NodeId>(reader.read_bounded(n));
    if (reader.read_bit()) {
      h.port_at_landmark = static_cast<Port>(reader.read_bounded(
          std::max<std::size_t>(graph_->degree(h.landmark), 1)));
    }
    return h;
  }

  std::size_t landmark_count() const {
    std::size_t c = 0;
    for (bool b : is_landmark_) c += b ? 1 : 0;
    return c;
  }
  std::size_t cluster_size(NodeId u) const {
    return cluster_sizes_.empty() ? 0 : cluster_sizes_[u];
  }
  bool strict_balls() const { return strict_balls_; }
  NodeId landmark_of(NodeId v) const { return landmark_of_[v]; }
  bool is_landmark(NodeId v) const { return is_landmark_[v]; }
  const PathTree<W>& tree(NodeId t) const { return trees_[t]; }
  // The raw (target, port) table of node u — sorted by target, flat so
  // the fill phase is a single allocation-free append stream — exposed so
  // the determinism tests can compare parallel builds entry-by-entry.
  const std::vector<std::pair<NodeId, Port>>& table(NodeId u) const {
    return tables_[u];
  }
  Port port_at_landmark(NodeId v) const { return port_at_landmark_[v]; }

 private:
  CowenScheme(const A& alg, const Graph& g) : alg_(alg), graph_(&g) {}

  // Binary search into u's flat sorted table; nullptr when target has no
  // entry (forwarding then falls back to the landmark route).
  const Port* table_lookup(NodeId u, NodeId target) const {
    const auto& t = tables_[u];
    const auto it = std::lower_bound(
        t.begin(), t.end(), target,
        [](const std::pair<NodeId, Port>& e, NodeId v) { return e.first < v; });
    return (it != t.end() && it->first == target) ? &it->second : nullptr;
  }

  // ⪯-distance from u to node x, read off tree(x)'s flat arrays.
  bool has_dist(NodeId u, NodeId x) const { return trees_[x].has_weight(u); }
  const W& dist_at(NodeId u, NodeId x) const { return trees_[x].weights[u]; }

  // Deterministic "closer landmark" comparison: algebra order, then hops,
  // then id.
  bool landmark_better(NodeId u, NodeId a, NodeId b) const {
    const bool ha = has_dist(u, a);
    const bool hb = has_dist(u, b);
    if (ha != hb) return ha;
    if (!ha) return a < b;
    const W& wa = dist_at(u, a);
    const W& wb = dist_at(u, b);
    if (alg_.less(wa, wb)) return true;
    if (alg_.less(wb, wa)) return false;
    if (trees_[a].hops[u] != trees_[b].hops[u]) {
      return trees_[a].hops[u] < trees_[b].hops[u];
    }
    return a < b;
  }

  // Ball radius of v (⪯-distance to its landmark); absent for landmarks
  // and disconnected nodes. Shared by the cluster scan and the table fill;
  // flat value array + presence flags so the O(n²) scans stream it.
  struct BallRadii {
    std::vector<W> value;
    std::vector<std::uint8_t> present;
    bool has(NodeId v) const { return present[v] != 0; }
  };
  BallRadii ball_radii() const {
    const std::size_t n = graph_->node_count();
    BallRadii radius;
    radius.value.assign(n, alg_.phi());
    radius.present.assign(n, 0);
    parallel_for(
        *pool_, 0, n,
        [&](std::size_t v) {
          if (is_landmark_[v]) return;  // B(landmark) = ∅
          const NodeId lv = landmark_of_[v];
          if (lv == kInvalidNode) return;
          if (!has_dist(static_cast<NodeId>(v), lv)) return;
          radius.value[v] = dist_at(static_cast<NodeId>(v), lv);
          radius.present[v] = 1;
        },
        /*grain=*/64);
    return radius;
  }

  void recompute_until_stable() {
    const std::size_t n = graph_->node_count();
    for (int round = 0;; ++round) {
      // Nearest landmark per node; each u scans the landmarks in ascending
      // id order, so the deterministic tie-break is schedule-independent.
      std::vector<NodeId> landmarks;
      for (NodeId l = 0; l < n; ++l) {
        if (is_landmark_[l]) landmarks.push_back(l);
      }
      landmark_of_.assign(n, kInvalidNode);
      parallel_for(
          *pool_, 0, n,
          [&](std::size_t i) {
            const NodeId u = static_cast<NodeId>(i);
            if (is_landmark_[u]) {
              landmark_of_[u] = u;
              return;
            }
            NodeId best = kInvalidNode;
            for (NodeId l : landmarks) {
              if (best == kInvalidNode || landmark_better(u, l, best)) best = l;
            }
            landmark_of_[u] = best;
          },
          /*grain=*/16);
      // Cluster sizes: C(u) = { v : u ∈ B(v) }, counted from u's side so
      // each task owns exactly one counter slot (no shared accumulators).
      const auto radius = ball_radii();
      cluster_sizes_.assign(n, 0);
      parallel_for(
          *pool_, 0, n,
          [&](std::size_t i) {
            const NodeId u = static_cast<NodeId>(i);
            // dist(v, u) for all v is tree u's flat weight row — the
            // whole scan streams two arrays plus the radius row.
            const PathTree<W>& tree_u = trees_[u];
            std::size_t count = 0;
            for (NodeId v = 0; v < n; ++v) {
              if (v == u || !radius.has(v) || !tree_u.has_weight(v)) continue;
              const W& d = tree_u.weights[v];
              const bool inside = strict_balls_
                                      ? alg_.less(d, radius.value[v])
                                      : leq(alg_, d, radius.value[v]);
              if (inside) ++count;
            }
            cluster_sizes_[u] = count;
          },
          /*grain=*/8);
      // Ordered promotion reduction on the calling thread.
      bool promoted = false;
      for (NodeId u = 0; u < n; ++u) {
        if (!is_landmark_[u] && cluster_sizes_[u] > cluster_cap_) {
          is_landmark_[u] = true;
          promoted = true;
        }
      }
      if (!promoted) break;
    }
  }

  void build_tables() {
    const std::size_t n = graph_->node_count();
    const auto radius = ball_radii();
    tables_.assign(n, {});
    // Each task fills one node's table in a single ascending scan over
    // the targets: landmarks contribute wherever they are reachable (they
    // carry no ball, so the two entry kinds are disjoint), non-landmarks
    // where u ∈ B(v). Scanning targets in id order appends the flat table
    // already sorted — no per-entry allocation, no rebalancing — and the
    // encoded tables stay schedule-independent. Port lookups go through
    // the CSR view.
    parallel_for(
        *pool_, 0, n,
        [&](std::size_t i) {
          const NodeId u = static_cast<NodeId>(i);
          const PathTree<W>& tree_u = trees_[u];
          auto& table = tables_[u];
          for (NodeId v = 0; v < n; ++v) {
            if (v == u) continue;
            if (is_landmark_[v]) {
              if (trees_[v].reachable(u)) {
                table.emplace_back(v, csr_.port_to(u, trees_[v].parent[u]));
              }
              continue;
            }
            if (!radius.has(v) || !tree_u.has_weight(v)) continue;
            if (!trees_[v].reachable(u)) continue;
            const W& d = tree_u.weights[v];
            const bool inside = strict_balls_
                                    ? alg_.less(d, radius.value[v])
                                    : leq(alg_, d, radius.value[v]);
            if (inside) {
              table.emplace_back(v, csr_.port_to(u, trees_[v].parent[u]));
            }
          }
        },
        /*grain=*/8);
    // Labels: first hop out of l_v on the preferred l_v→v path.
    port_at_landmark_.assign(n, kInvalidPort);
    parallel_for(
        *pool_, 0, n,
        [&](std::size_t i) {
          const NodeId v = static_cast<NodeId>(i);
          const NodeId lv = landmark_of_[v];
          if (lv == kInvalidNode || lv == v) return;
          // Walk v's parent chain in tree(lv) to find the hop adjacent to
          // lv.
          NodeId x = v;
          while (trees_[lv].parent[x] != lv) {
            x = trees_[lv].parent[x];
            if (x == kInvalidNode) break;
          }
          if (x != kInvalidNode) {
            port_at_landmark_[v] = csr_.port_to(lv, x);
          }
        },
        /*grain=*/64);
  }

  const A alg_;
  const Graph* graph_;
  CsrGraph csr_;
  ThreadPool* pool_ = nullptr;
  std::vector<PathTree<W>> trees_;
  std::vector<bool> is_landmark_;
  std::vector<NodeId> landmark_of_;
  std::vector<std::size_t> cluster_sizes_;
  std::vector<std::vector<std::pair<NodeId, Port>>> tables_;
  std::vector<Port> port_at_landmark_;
  std::size_t cluster_cap_ = 0;
  bool strict_balls_ = true;
};

}  // namespace cpr
