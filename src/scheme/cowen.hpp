// Generalized Cowen stretch-3 compact routing (Theorem 3).
//
// For a delimited *regular* algebra, Cowen's landmark scheme carries over
// verbatim: pick a landmark set L, associate with each node u its
// ⪯-closest landmark l_u, define the ball
//     B(u) = { v : w(p*_uv) ≺ w(p*_u,l_u) }
// and the cluster C(u) = { v : u ∈ B(v) }. The label of v is the triplet
// (v, l_v, port_{l_v,v}); node u keeps a (target, port) entry for every
// v ∈ C(u) ∪ L. In-cluster packets follow preferred paths; everything
// else detours via the target's landmark, and Lemma 4 (triangle
// inequality + isotonicity) bounds the detour by algebraic stretch 3:
//     w(p*_u,l_v) ⊕ w(p*_l_v,v) ⪯ (w(p*_u,v))³.
//
// Ball strictness: for strictly monotone algebras the strict ball above is
// the right choice (proper subpaths of preferred paths strictly improve,
// so Lemma 3's "the next hop also stores the entry" holds — Cowen's
// original argument). For weakly monotone algebras correctness needs the
// non-strict ball w(p*_uv) ⪯ w(p*_u,l_u); with heavily tied weight sets
// (selective algebras) the non-strict balls and hence the tables can grow
// toward Θ(n) — which is exactly the paper's message in Section 4.1 that
// for selective algebras the *tree* scheme, not the landmark scheme, is
// the right tool (stretch-3 paths coincide with preferred paths there).
// The constructor picks strictness from the algebra's SM flag; tests pin
// both behaviours.
//
// Landmark sizing follows Thorup–Zwick's refinement of Cowen's analysis:
// an initial random sample of ~sqrt(n ln n) landmarks, then any node whose
// cluster exceeds the cap is promoted to a landmark and balls are
// recomputed, which terminates and keeps max |C(u)| bounded.
//
// Parallel construction: the heavy phases — per-root preferred-path trees,
// nearest-landmark assignment, ball/cluster scans, table fill — are
// independent per node, so they fan out over a ThreadPool. All randomness
// (the landmark sample) is drawn sequentially before any parallel region,
// every parallel loop writes only the slot of its own index, and the
// promotion reduction runs on the calling thread in node order, so the
// resulting scheme is bit-identical for every thread count (pinned by
// tests/test_parallel_determinism.cpp).
#pragma once

#include "algebra/algebra.hpp"
#include "fib/fib_delta.hpp"
#include "graph/csr_graph.hpp"
#include "routing/dijkstra.hpp"
#include "scheme/scheme.hpp"
#include "util/bitstream.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace cpr {

struct CowenOptions {
  // 0 = automatic: ceil(sqrt(n * max(1, ln n))).
  std::size_t initial_landmarks = 0;
  // 0 = automatic: 4 * ceil(sqrt(n * max(1, ln n))). Nodes with bigger
  // clusters get promoted to landmarks.
  std::size_t cluster_cap = 0;
  // Force strict/non-strict balls; by default follows the SM flag.
  enum class Balls { kAuto, kStrict, kNonStrict } balls = Balls::kAuto;
  // Pool for the parallel construction phases; nullptr = process-global
  // pool. The built scheme does not depend on the pool's thread count.
  ThreadPool* pool = nullptr;
  // Construction strategy. kStreaming (default) runs full SSSP trees only
  // for the ~√(n ln n) landmarks and enumerates every other node's ball
  // with a truncated Dijkstra stopped at its nearest-landmark radius, so
  // peak memory is Θ(n·|L|) (the size of the output tables) instead of
  // the Θ(n²) of materializing all_pairs_trees. kMaterialized is the
  // original path, kept as the exhaustive differential oracle and for
  // churn-heavy workloads that want every tree resident before the first
  // apply_event. Both produce bit-identical schemes for every thread
  // count (tests/test_cowen_streaming.cpp).
  enum class Construction { kStreaming, kMaterialized };
  Construction construction = Construction::kStreaming;
  // Measurement-only escape hatch for the very largest streaming sweeps
  // (n ~ 10⁶, where the Θ(n·|L|) tables themselves are tens of GB):
  // false skips materializing tables_ — landmark assignment, cluster
  // sizes, promotion decisions and labels stay exact, but forward() has
  // no entries to route by. bench_json's 1M stretch-goal leg uses this.
  bool materialize_tables = true;
  // Landmark SSSP batch size for the streaming construction — bounds how
  // many full trees are resident at once during the nearest-landmark
  // fold. 0 = default (32).
  std::size_t landmark_batch = 0;
};

// What CowenScheme::apply_event did for one churn event.
struct CowenRepairStats {
  std::size_t dirty_trees = 0;       // |D|: roots whose tree was recomputed
  std::size_t reassigned_nodes = 0;  // nodes whose nearest landmark was redone
  std::size_t patched_targets = 0;   // |D ∪ R|: targets merged into tables
  bool full_rebuild = false;         // dirty fraction exceeded the threshold
  // Footprint on the compiled plane: one row patch per table that
  // actually changed, slot patches for moved landmark labels, recompile
  // on full_rebuild. Empty when forwarding is provably unchanged.
  FibDelta fib_delta;
};

template <RoutingAlgebra A>
class CowenScheme {
 public:
  using W = typename A::Weight;

  struct Header {
    NodeId target = kInvalidNode;
    NodeId landmark = kInvalidNode;
    Port port_at_landmark = kInvalidPort;

    // (node, header) pairs determine forwarding steps; equality feeds the
    // simulator's loop detection.
    bool operator==(const Header&) const = default;
  };

  static CowenScheme build(const A& alg, const Graph& g,
                           const EdgeMap<W>& w, Rng& rng,
                           CowenOptions opt = {}) {
    CowenScheme s(alg, g);
    const std::size_t n = g.node_count();
    const double lg = std::max(1.0, std::log(static_cast<double>(std::max<std::size_t>(n, 2))));
    const std::size_t init =
        opt.initial_landmarks > 0
            ? opt.initial_landmarks
            : static_cast<std::size_t>(
                  std::ceil(std::sqrt(static_cast<double>(n) * lg)));
    s.cluster_cap_ =
        opt.cluster_cap > 0 ? opt.cluster_cap : 4 * std::max<std::size_t>(init, 1);
    switch (opt.balls) {
      case CowenOptions::Balls::kStrict:
        s.strict_balls_ = true;
        break;
      case CowenOptions::Balls::kNonStrict:
        s.strict_balls_ = false;
        break;
      case CowenOptions::Balls::kAuto:
        s.strict_balls_ = alg.properties().strictly_monotone;
        break;
    }

    s.pool_ = opt.pool ? opt.pool : &ThreadPool::global();

    // Flat CSR snapshot: every later phase (tree fan-out, ball/cluster
    // scans, table fill with its O(log deg) port lookups) reads it.
    s.csr_ = CsrGraph(g);

    // The landmark sample is the only randomness; drawing it at the same
    // point in both constructions keeps the rng stream — and hence the
    // landmark set — identical between them.
    s.is_landmark_.assign(n, false);
    const std::size_t sample = std::min(init, n);
    for (std::size_t i : rng.sample_without_replacement(n, sample)) {
      s.is_landmark_[i] = true;
    }
    s.initial_landmark_count_ = sample;

    if (opt.construction == CowenOptions::Construction::kMaterialized) {
      // Preferred-path trees from every root; tree[t] gives both
      // w(p*_t,u) and u's next hop toward t (undirected + commutative).
      // One policy-Dijkstra per root, fanned out across the pool.
      s.trees_ = all_pairs_trees(alg, s.csr_, w, s.pool_);
      s.recompute_until_stable();
      if (opt.materialize_tables) {
        s.build_tables();
      } else {
        s.port_at_landmark_.assign(n, kInvalidPort);
        parallel_for(
            *s.pool_, 0, n,
            [&s](std::size_t i) {
              s.port_at_landmark_[i] =
                  s.compute_port_at_landmark(static_cast<NodeId>(i));
            },
            /*grain=*/64);
        s.tables_.assign(n, {});
      }
    } else {
      s.build_streaming(w, opt.materialize_tables,
                        opt.landmark_batch ? opt.landmark_batch : 32);
    }
    return s;
  }

  // Pinned-landmark full rebuild on the weight map `w`: recomputes every
  // tree, assignment, ball, cluster count and table, but keeps the
  // landmark *set* fixed (no promotion). This is both the bounded-
  // staleness fallback of apply_event and the differential oracle the
  // incremental path is tested against. Landmarks stay pinned under
  // churn so repair is a pure function of the event — the price is that
  // clusters may grow past cluster_cap_ until the operator rebuilds with
  // promotion (`build`); cluster_size() exposes the drift
  // (docs/dynamic_topology.md derives the staleness bound).
  void rebuild_from(const EdgeMap<W>& w) {
    trees_ = all_pairs_trees(alg_, csr_, w, pool_);
    assign_landmarks();
    refresh_cluster_sizes(ball_radii());
    build_tables();
  }

  // Incremental repair for one churn event on edge e. old_w/new_w use
  // the φ encoding (φ = down); `w` is the post-event weight map. The
  // repaired scheme is byte-identical to rebuild_from(w) — pinned per
  // event by tests/test_churn_differential.cpp. When more than
  // rebuild_dirty_fraction of the per-root trees are dirty, repair
  // degenerates to the parallel full rebuild (tracking beats patching
  // only while the dirty set is small).
  CowenRepairStats apply_event(EdgeId e, const W& old_w, const W& new_w,
                               const EdgeMap<W>& w,
                               double rebuild_dirty_fraction = 0.25) {
    CowenRepairStats stats;
    const std::size_t n = graph_->node_count();
    if (n == 0 || e >= graph_->edge_count()) return stats;

    // Streamed builds keep no resident trees, but every phase below —
    // dirty detection, landmark reassignment, the table patch — reads
    // them. Materialize once, from the *pre-event* weights: the event
    // moved exactly one edge, so the pre-event map is w with e rolled
    // back to old_w. From here on the scheme is byte-identical to one
    // built with Construction::kMaterialized, at a one-time Θ(n²) cost —
    // churn-heavy callers should build materialized up front instead of
    // paying it inside their first event.
    if (trees_.size() != n) {
      EdgeMap<W> pre = w;
      pre[e] = old_w;
      trees_ = all_pairs_trees(alg_, csr_, pre, pool_);
    }

    const NodeId ea = graph_->edge(e).u;
    const NodeId eb = graph_->edge(e).v;

    // Phase 1 — dirty-tree detection, O(1) per root: tree t must be
    // recomputed iff it uses e, or the event creates a candidate through
    // e that ties-or-beats t's current entry at e's far endpoint (ties
    // included: first-arrival and hop tie-breaks can flip on a tie; a
    // conservative recompute of a tied tree is still byte-exact).
    std::vector<std::uint8_t> dirty(n, 0);
    parallel_for(
        *pool_, 0, n,
        [&](std::size_t t) {
          dirty[t] = tree_dirty(static_cast<NodeId>(t), e, ea, eb, new_w) ? 1 : 0;
        },
        /*grain=*/256);
    std::vector<NodeId> dirty_roots;
    for (NodeId t = 0; t < n; ++t) {
      if (dirty[t]) dirty_roots.push_back(t);
    }
    stats.dirty_trees = dirty_roots.size();
    if (dirty_roots.empty()) return stats;  // forwarding provably unchanged

    if (static_cast<double>(dirty_roots.size()) >
        rebuild_dirty_fraction * static_cast<double>(n)) {
      rebuild_from(w);
      stats.full_rebuild = true;
      stats.fib_delta.recompile = true;
      stats.fib_delta.touched_nodes = n;
      return stats;
    }

    // Snapshots the repair needs for deltas: pre-event radii, pre-event
    // rows of every dirty *landmark* tree (assignment depends on them),
    // and the pre-event assignment itself.
    const BallRadii old_radii = ball_radii();
    std::vector<std::pair<NodeId, PathTree<W>>> saved_landmark_trees;
    for (NodeId t : dirty_roots) {
      if (is_landmark_[t]) saved_landmark_trees.emplace_back(t, trees_[t]);
    }
    const std::vector<NodeId> old_landmark_of = landmark_of_;

    // Phase 2 — recompute the dirty trees (same per-root sweep
    // all_pairs_trees fans out, so results are bitwise identical to the
    // full-rebuild oracle's).
    parallel_for(*pool_, 0, dirty_roots.size(), [&](std::size_t i) {
      dijkstra_into(alg_, csr_, w, dirty_roots[i], trees_[dirty_roots[i]]);
    });

    // Phase 3 — landmark reassignment, only where a dirty landmark's row
    // changed in a way landmark_better can see: every pairwise comparison
    // at u reads (presence, weight order, hops) of landmark rows, and
    // only dirty trees moved.
    std::vector<std::uint8_t> reassess(n, 0);
    for (const auto& [l, old_tree] : saved_landmark_trees) {
      const PathTree<W>& now = trees_[l];
      parallel_for(
          *pool_, 0, n,
          [&](std::size_t u) {
            if (reassess[u]) return;
            if (row_changed(old_tree, now, static_cast<NodeId>(u))) {
              reassess[u] = 1;
            }
          },
          /*grain=*/512);
    }
    std::vector<NodeId> landmarks;
    for (NodeId l = 0; l < n; ++l) {
      if (is_landmark_[l]) landmarks.push_back(l);
    }
    parallel_for(
        *pool_, 0, n,
        [&](std::size_t i) {
          if (!reassess[i]) return;
          landmark_of_[i] = nearest_landmark(static_cast<NodeId>(i), landmarks);
        },
        /*grain=*/64);
    for (NodeId u = 0; u < n; ++u) {
      stats.reassigned_nodes += reassess[u] ? 1 : 0;
    }

    // Phase 4 — new radii; R = targets whose ball radius changed at the
    // order level (order-equal radii keep every ball predicate intact).
    const BallRadii new_radii = ball_radii();
    std::vector<std::uint8_t> radius_changed(n, 0);
    parallel_for(
        *pool_, 0, n,
        [&](std::size_t v) {
          if (old_radii.present[v] != new_radii.present[v]) {
            radius_changed[v] = 1;
          } else if (new_radii.present[v] &&
                     !order_equal(alg_, old_radii.value[v],
                                  new_radii.value[v])) {
            radius_changed[v] = 1;
          }
        },
        /*grain=*/512);

    // Patch targets V* = D ∪ R, ascending (merged in id order below).
    std::vector<NodeId> patch;
    for (NodeId v = 0; v < n; ++v) {
      if (dirty[v] || radius_changed[v]) patch.push_back(v);
    }
    stats.patched_targets = patch.size();

    // Phase 5 — tables: nodes whose own tree moved refill from scratch;
    // everyone else merges recomputed entries for V* into their sorted
    // flat table (all other entries are provably byte-identical). Each
    // task flags only its own slot, so change tracking is race-free.
    std::vector<std::uint8_t> table_changed(n, 0);
    parallel_for(
        *pool_, 0, n,
        [&](std::size_t i) {
          const NodeId u = static_cast<NodeId>(i);
          if (dirty[u]) {
            const std::vector<std::pair<NodeId, Port>> before =
                std::move(tables_[u]);
            fill_table(u, new_radii);
            table_changed[u] = before != tables_[u] ? 1 : 0;
          } else {
            table_changed[u] = patch_table(u, patch, new_radii) ? 1 : 0;
          }
        },
        /*grain=*/8);

    // Phase 6 — cluster sizes: full recount where u's tree moved, exact
    // delta over the radius-changed targets elsewhere (for v ∉ R both
    // ball predicates at an unchanged tree_u row are unchanged).
    parallel_for(
        *pool_, 0, n,
        [&](std::size_t i) {
          const NodeId u = static_cast<NodeId>(i);
          if (dirty[u]) {
            cluster_sizes_[u] = count_cluster(u, new_radii);
            return;
          }
          const PathTree<W>& tree_u = trees_[u];
          std::size_t c = cluster_sizes_[u];
          for (NodeId v : patch) {
            if (v == u || !radius_changed[v]) continue;
            const bool was = in_ball(tree_u, v, old_radii);
            const bool is = in_ball(tree_u, v, new_radii);
            if (was && !is) --c;
            if (!was && is) ++c;
          }
          cluster_sizes_[u] = c;
        },
        /*grain=*/8);

    // Phase 7 — labels: the first-hop-at-landmark port moves only when
    // v's landmark changed or that landmark's tree was recomputed.
    std::vector<std::uint8_t> lport_changed(n, 0);
    parallel_for(
        *pool_, 0, n,
        [&](std::size_t i) {
          const NodeId v = static_cast<NodeId>(i);
          const NodeId lv = landmark_of_[v];
          const bool need = lv != old_landmark_of[v] ||
                            (lv != kInvalidNode && dirty[lv]);
          if (need) {
            const Port before = port_at_landmark_[v];
            port_at_landmark_[v] = compute_port_at_landmark(v);
            if (port_at_landmark_[v] != before) lport_changed[v] = 1;
          }
        },
        /*grain=*/64);

    // Emit the FIB delta: one full-row patch per table that moved plus
    // 4-byte slot patches for landmark / port-at-landmark changes, in
    // node-id order so the arena's patcher streams forward.
    std::vector<std::uint64_t> row;
    for (NodeId v = 0; v < n; ++v) {
      const bool lm_moved = landmark_of_[v] != old_landmark_of[v];
      if (!(table_changed[v] || lm_moved || lport_changed[v])) continue;
      ++stats.fib_delta.touched_nodes;
      if (table_changed[v]) {
        row.clear();
        for (const auto& [target, port] : tables_[v]) {
          row.push_back(fib_pack_entry(target, port));
        }
        stats.fib_delta.patches.push_back(
            fib_patch_row_u64(fib_section::kCowenRows, v, row));
      }
      if (lm_moved) {
        stats.fib_delta.patches.push_back(
            fib_patch_u32(fib_section::kCowenLandmark, v, landmark_of_[v]));
      }
      if (lport_changed[v]) {
        stats.fib_delta.patches.push_back(fib_patch_u32(
            fib_section::kCowenLandmarkPort, v, port_at_landmark_[v]));
      }
    }
    return stats;
  }

  Header make_header(NodeId target) const {
    Header h;
    h.target = target;
    h.landmark = landmark_of_[target];
    h.port_at_landmark = port_at_landmark_[target];
    return h;
  }

  Decision forward(NodeId u, Header& h) const {
    if (u == h.target) return Decision::delivered();
    if (const Port* direct = table_lookup(u, h.target)) {
      return Decision::via(*direct);
    }
    if (u == h.landmark) return Decision::via(h.port_at_landmark);
    if (const Port* toward = table_lookup(u, h.landmark)) {
      return Decision::via(*toward);
    }
    return Decision::via(kInvalidPort);
  }

  std::size_t local_memory_bits(NodeId u) const {
    BitWriter bits;
    const std::size_t n = graph_->node_count();
    bits.write_varint(tables_[u].size());
    for (const auto& [target, port] : tables_[u]) {
      bits.write_bounded(target, n);
      bits.write_bounded(port, std::max<std::size_t>(graph_->degree(u), 1));
    }
    return bits.bit_count();
  }

  std::size_t label_bits(NodeId v) const {
    return encode_header(make_header(v)).second;
  }

  // Bit-exact label codec for the (target, landmark, port-at-landmark)
  // triplet; round-tripped in the tests so the reported label sizes are
  // decodable, like the tree router's.
  std::pair<std::vector<std::uint8_t>, std::size_t> encode_header(
      const Header& h) const {
    BitWriter bits;
    const std::size_t n = graph_->node_count();
    bits.write_bounded(h.target, n);
    bits.write_bounded(h.landmark, n);
    bits.write_bit(h.port_at_landmark != kInvalidPort);
    if (h.port_at_landmark != kInvalidPort) {
      bits.write_bounded(
          h.port_at_landmark,
          std::max<std::size_t>(graph_->degree(h.landmark), 1));
    }
    return {bits.bytes(), bits.bit_count()};
  }

  Header decode_header(const std::vector<std::uint8_t>& bytes) const {
    BitReader reader(bytes);
    const std::size_t n = graph_->node_count();
    Header h;
    h.target = static_cast<NodeId>(reader.read_bounded(n));
    h.landmark = static_cast<NodeId>(reader.read_bounded(n));
    if (reader.read_bit()) {
      h.port_at_landmark = static_cast<Port>(reader.read_bounded(
          std::max<std::size_t>(graph_->degree(h.landmark), 1)));
    }
    return h;
  }

  std::size_t landmark_count() const {
    std::size_t c = 0;
    for (bool b : is_landmark_) c += b ? 1 : 0;
    return c;
  }
  std::size_t cluster_size(NodeId u) const {
    return cluster_sizes_.empty() ? 0 : cluster_sizes_[u];
  }
  bool strict_balls() const { return strict_balls_; }
  // The graph the scheme was built over. Wrapping schemes (the TZ
  // name-independent layer) route their size accounting through it.
  const Graph& graph() const { return *graph_; }
  NodeId landmark_of(NodeId v) const { return landmark_of_[v]; }
  bool is_landmark(NodeId v) const { return is_landmark_[v]; }
  // Construction counters for the bench trajectory: how many landmarks
  // the initial √(n ln n) sample drew, and how many the cluster-cap
  // promotion rounds added on top.
  std::size_t initial_landmark_count() const { return initial_landmark_count_; }
  std::size_t promoted_landmark_count() const {
    return promoted_landmark_count_;
  }
  // Whether all n preferred-path trees are resident: true after a
  // kMaterialized build, rebuild_from, or the first apply_event on a
  // streamed scheme; false right after a streaming build.
  bool trees_materialized() const {
    return trees_.size() == graph_->node_count();
  }
  const PathTree<W>& tree(NodeId t) const {
    if (!trees_materialized()) {
      throw std::logic_error(
          "CowenScheme::tree: trees not resident after a streaming build "
          "(use CowenOptions::Construction::kMaterialized or rebuild_from)");
    }
    return trees_[t];
  }
  // The raw (target, port) table of node u — sorted by target, flat so
  // the fill phase is a single allocation-free append stream — exposed so
  // the determinism tests can compare parallel builds entry-by-entry.
  const std::vector<std::pair<NodeId, Port>>& table(NodeId u) const {
    return tables_[u];
  }
  Port port_at_landmark(NodeId v) const { return port_at_landmark_[v]; }

 private:
  CowenScheme(const A& alg, const Graph& g) : alg_(alg), graph_(&g) {}

  // Binary search into u's flat sorted table; nullptr when target has no
  // entry (forwarding then falls back to the landmark route).
  const Port* table_lookup(NodeId u, NodeId target) const {
    const auto& t = tables_[u];
    const auto it = std::lower_bound(
        t.begin(), t.end(), target,
        [](const std::pair<NodeId, Port>& e, NodeId v) { return e.first < v; });
    return (it != t.end() && it->first == target) ? &it->second : nullptr;
  }

  // ⪯-distance from u to node x, read off tree(x)'s flat arrays.
  bool has_dist(NodeId u, NodeId x) const { return trees_[x].has_weight(u); }
  const W& dist_at(NodeId u, NodeId x) const { return trees_[x].weights[u]; }

  // Deterministic "closer landmark" comparison: algebra order, then hops,
  // then id.
  bool landmark_better(NodeId u, NodeId a, NodeId b) const {
    const bool ha = has_dist(u, a);
    const bool hb = has_dist(u, b);
    if (ha != hb) return ha;
    if (!ha) return a < b;
    const W& wa = dist_at(u, a);
    const W& wb = dist_at(u, b);
    if (alg_.less(wa, wb)) return true;
    if (alg_.less(wb, wa)) return false;
    if (trees_[a].hops[u] != trees_[b].hops[u]) {
      return trees_[a].hops[u] < trees_[b].hops[u];
    }
    return a < b;
  }

  // Ball radius of v (⪯-distance to its landmark); absent for landmarks
  // and disconnected nodes. Shared by the cluster scan and the table fill;
  // flat value array + presence flags so the O(n²) scans stream it.
  struct BallRadii {
    std::vector<W> value;
    std::vector<std::uint8_t> present;
    bool has(NodeId v) const { return present[v] != 0; }
  };
  BallRadii ball_radii() const {
    const std::size_t n = graph_->node_count();
    BallRadii radius;
    radius.value.assign(n, alg_.phi());
    radius.present.assign(n, 0);
    parallel_for(
        *pool_, 0, n,
        [&](std::size_t v) {
          if (is_landmark_[v]) return;  // B(landmark) = ∅
          const NodeId lv = landmark_of_[v];
          if (lv == kInvalidNode) return;
          if (!has_dist(static_cast<NodeId>(v), lv)) return;
          radius.value[v] = dist_at(static_cast<NodeId>(v), lv);
          radius.present[v] = 1;
        },
        /*grain=*/64);
    return radius;
  }

  // Nearest landmark per node; each u scans the landmarks in ascending
  // id order, so the deterministic tie-break is schedule-independent.
  void assign_landmarks() {
    const std::size_t n = graph_->node_count();
    std::vector<NodeId> landmarks;
    for (NodeId l = 0; l < n; ++l) {
      if (is_landmark_[l]) landmarks.push_back(l);
    }
    landmark_of_.assign(n, kInvalidNode);
    parallel_for(
        *pool_, 0, n,
        [&](std::size_t i) {
          const NodeId u = static_cast<NodeId>(i);
          landmark_of_[u] = nearest_landmark(u, landmarks);
        },
        /*grain=*/16);
  }

  NodeId nearest_landmark(NodeId u, const std::vector<NodeId>& landmarks) const {
    if (is_landmark_[u]) return u;
    NodeId best = kInvalidNode;
    for (NodeId l : landmarks) {
      if (best == kInvalidNode || landmark_better(u, l, best)) best = l;
    }
    return best;
  }

  // u ∈ B(v) under the current radius row?
  bool in_ball(const PathTree<W>& tree_u, NodeId v, const BallRadii& radius) const {
    if (!radius.has(v) || !tree_u.has_weight(v)) return false;
    const W& d = tree_u.weights[v];
    return strict_balls_ ? alg_.less(d, radius.value[v])
                         : leq(alg_, d, radius.value[v]);
  }

  std::size_t count_cluster(NodeId u, const BallRadii& radius) const {
    // dist(v, u) for all v is tree u's flat weight row — the whole scan
    // streams two arrays plus the radius row.
    const PathTree<W>& tree_u = trees_[u];
    const std::size_t n = graph_->node_count();
    std::size_t count = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (v != u && in_ball(tree_u, v, radius)) ++count;
    }
    return count;
  }

  // Cluster sizes: C(u) = { v : u ∈ B(v) }, counted from u's side so each
  // task owns exactly one counter slot (no shared accumulators).
  void refresh_cluster_sizes(const BallRadii& radius) {
    const std::size_t n = graph_->node_count();
    cluster_sizes_.assign(n, 0);
    parallel_for(
        *pool_, 0, n,
        [&](std::size_t i) {
          cluster_sizes_[i] = count_cluster(static_cast<NodeId>(i), radius);
        },
        /*grain=*/8);
  }

  // A candidate x --e--> y at weight w_e would tie or beat tree t's
  // current record at y (using only t's pre-event rows): the exact
  // single-edge condition under which t's Dijkstra result can move.
  bool candidate_matters(const PathTree<W>& tree, NodeId t, NodeId x,
                         NodeId y, const W& w_e) const {
    if (!tree.reachable(x)) return false;
    if (y == t) return false;  // the source never gets relaxed
    const W cand = x == t ? w_e : alg_.combine(tree.weights[x], w_e);
    if (alg_.is_phi(cand)) return false;
    if (!tree.has_weight(y)) return true;  // y may become reachable/better
    return !alg_.less(tree.weights[y], cand);  // cand ties or beats
  }

  // Does tree t need recomputing after edge e (endpoints ea/eb) moved to
  // new_w (φ = down)? Exact for downs of unused edges (a tree avoiding e
  // is bitwise invariant under its removal); conservative on ties
  // otherwise, which recomputation resolves exactly.
  bool tree_dirty(NodeId t, EdgeId e, NodeId ea, NodeId eb,
                  const W& new_w) const {
    const PathTree<W>& tree = trees_[t];
    if (ea != t && tree.parent_edge[ea] == e) return true;  // e in tree t
    if (eb != t && tree.parent_edge[eb] == e) return true;
    if (alg_.is_phi(new_w)) return false;  // down + unused: invariant
    return candidate_matters(tree, t, ea, eb, new_w) ||
           candidate_matters(tree, t, eb, ea, new_w);
  }

  // Did l's row at u change in a way landmark_better can observe?
  // (parent/parent_edge are included so the port-bearing consumers can
  // share the same predicate — conservative for assignment, exact cost.)
  bool row_changed(const PathTree<W>& before, const PathTree<W>& after,
                   NodeId u) const {
    if (before.has_weight(u) != after.has_weight(u)) return true;
    if (before.parent[u] != after.parent[u]) return true;
    if (before.parent_edge[u] != after.parent_edge[u]) return true;
    if (before.hops[u] != after.hops[u]) return true;
    return before.has_weight(u) &&
           !order_equal(alg_, before.weights[u], after.weights[u]);
  }

  // Merge freshly computed entries for the ascending target list `patch`
  // into u's sorted flat table; entries for targets outside `patch` are
  // byte-identical by construction and stream through untouched. Returns
  // whether any entry actually changed (added, dropped, or re-ported), so
  // apply_event emits FIB row patches only for rows that moved.
  bool patch_table(NodeId u, const std::vector<NodeId>& patch,
                   const BallRadii& radius) {
    auto& table = tables_[u];
    std::vector<std::pair<NodeId, Port>> merged;
    merged.reserve(table.size() + patch.size());
    bool changed = false;
    std::size_t ti = 0;
    for (NodeId v : patch) {
      while (ti < table.size() && table[ti].first < v) {
        merged.push_back(table[ti++]);
      }
      bool had = false;
      Port old_p = kInvalidPort;
      if (ti < table.size() && table[ti].first == v) {  // drop stale
        had = true;
        old_p = table[ti].second;
        ++ti;
      }
      Port p;
      const bool has = entry_port(u, v, radius, &p);
      if (has) merged.emplace_back(v, p);
      if (has != had || (has && p != old_p)) changed = true;
    }
    while (ti < table.size()) merged.push_back(table[ti++]);
    table = std::move(merged);
    return changed;
  }

  void recompute_until_stable() {
    const std::size_t n = graph_->node_count();
    for (int round = 0;; ++round) {
      assign_landmarks();
      refresh_cluster_sizes(ball_radii());
      // Ordered promotion reduction on the calling thread.
      bool promoted = false;
      for (NodeId u = 0; u < n; ++u) {
        if (!is_landmark_[u] && cluster_sizes_[u] > cluster_cap_) {
          is_landmark_[u] = true;
          ++promoted_landmark_count_;
          promoted = true;
        }
      }
      if (!promoted) break;
    }
  }

  // Streaming construction (CowenOptions::Construction::kStreaming). The
  // memory-bound phases of the materialized path — all_pairs_trees and
  // the Θ(n²) ball/cluster scans over it — are replaced by:
  //
  //   1. Full SSSP trees for *landmarks only*, swept in fixed-size
  //      batches (bounding resident trees to `batch`) and folded into a
  //      per-node nearest-landmark record. The fold implements exactly
  //      landmark_better's tie-break (reachability, ⪯, hops, id); its
  //      argmin is unique under that strict order, so folding promoted
  //      landmarks after the initial sample — any order at all — yields
  //      the same assignment nearest_landmark's ascending scan does.
  //      Only the parent arrays are retained (Θ(n·|L|), the same order
  //      as the tables they feed): they carry the landmark-entry ports
  //      and the port-at-landmark labels. Weights/hops die with the
  //      batch once folded.
  //
  //   2. Per-source truncated Dijkstras (truncated_ball, dijkstra.hpp)
  //      that stop at the source's nearest-landmark radius and hence
  //      enumerate exactly its ball. Ball membership of u in B(v) is an
  //      order-level predicate, so testing it at d(v,u) — what the
  //      truncated run measures — instead of the materialized path's
  //      d(u,v) changes nothing: with an undirected graph and the
  //      commutative combine the per-root trees already rely on, the
  //      two are order-equal. Cluster sizes accumulate through relaxed
  //      atomic increments — a commutative integer sum, so the counts
  //      are thread-count-independent — and promotion stays the same
  //      ordered scan on the calling thread.
  //
  //   3. After the landmark set stabilizes, one more ball sweep emits
  //      (member u, source v, port) triples into per-block buffers whose
  //      concatenation order is fixed (blocks are indexed, sources
  //      ascending within a block, settle order deterministic); a
  //      counting sort by member — sized exactly by the final cluster
  //      counts — then a per-member sort by source and a merge with the
  //      ascending landmark entries reproduce fill_table's flat tables
  //      byte for byte.
  //
  // Equivalence with the materialized oracle at 1 and 8 threads is
  // pinned by tests/test_cowen_streaming.cpp.
  void build_streaming(const EdgeMap<W>& w, bool materialize_tables,
                       std::size_t batch) {
    constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);
    const std::size_t n = graph_->node_count();

    // CSR-slot-aligned weights, shared read-only by every sweep (same
    // gather all_pairs_trees does).
    std::vector<W> slot_w;
    slot_w.reserve(2 * csr_.edge_count());
    for (NodeId v = 0; v < n; ++v) {
      for (const auto& adj : csr_.neighbors(v)) slot_w.push_back(w[adj.edge]);
    }
    const auto slot_weight = [this, &slot_w](NodeId u, std::size_t port,
                                             const Graph::Adjacency&)
        -> const W& { return slot_w[csr_.row_begin(u) + port]; };

    // Per-node nearest-landmark fold state; `weight` is bit-identical to
    // the materialized radius (both copy the landmark tree's row).
    std::vector<std::uint8_t> best_has(n, 0);
    std::vector<W> best_w(n, alg_.phi());
    std::vector<std::uint32_t> best_hops(n, 0);
    std::vector<NodeId> best_id(n, kInvalidNode);
    const auto fold = [&](NodeId u, NodeId l, const PathTree<W>& t) {
      const bool has = t.has_weight(u);
      bool take;
      if (best_id[u] == kInvalidNode) {
        take = true;
      } else if (has != (best_has[u] != 0)) {
        take = has;
      } else if (!has) {
        take = l < best_id[u];
      } else if (alg_.less(t.weights[u], best_w[u])) {
        take = true;
      } else if (alg_.less(best_w[u], t.weights[u])) {
        take = false;
      } else if (t.hops[u] != best_hops[u]) {
        take = t.hops[u] < best_hops[u];
      } else {
        take = l < best_id[u];
      }
      if (take) {
        best_has[u] = has ? 1 : 0;
        best_w[u] = t.weights[u];
        best_hops[u] = t.hops[u];
        best_id[u] = l;
      }
    };

    // Retained landmark parent arrays (materialize_tables mode), indexed
    // by insertion order through landmark_slot.
    std::vector<std::vector<NodeId>> landmark_parent;
    std::vector<std::uint32_t> landmark_slot(n, kNoSlot);
    std::vector<PathTree<W>> batch_trees;
    const auto sweep_landmarks = [&](const std::vector<NodeId>& fresh) {
      for (std::size_t b0 = 0; b0 < fresh.size(); b0 += batch) {
        const std::size_t b1 = std::min(fresh.size(), b0 + batch);
        batch_trees.resize(b1 - b0);
        parallel_for(*pool_, 0, b1 - b0, [&](std::size_t i) {
          detail::dijkstra_dispatch(alg_, csr_, fresh[b0 + i], batch_trees[i],
                                    slot_weight);
        });
        parallel_for(
            *pool_, 0, n,
            [&](std::size_t ui) {
              const NodeId u = static_cast<NodeId>(ui);
              for (std::size_t i = 0; i < b1 - b0; ++i) {
                if (u == fresh[b0 + i]) continue;
                fold(u, fresh[b0 + i], batch_trees[i]);
              }
            },
            /*grain=*/256);
        if (materialize_tables) {
          for (std::size_t i = 0; i < b1 - b0; ++i) {
            landmark_slot[fresh[b0 + i]] =
                static_cast<std::uint32_t>(landmark_parent.size());
            landmark_parent.push_back(std::move(batch_trees[i].parent));
          }
        }
      }
    };

    // One counting/emitting pass over every eligible source's ball. The
    // visitor sees (member, member's parent toward the source).
    const auto for_each_ball = [&](auto&& visit_source_member,
                                   std::size_t grain) {
      parallel_for(
          *pool_, 0, n,
          [&](std::size_t vi) {
            const NodeId v = static_cast<NodeId>(vi);
            // Mirrors ball_radii: landmarks carry no ball, nor do nodes
            // no landmark reaches.
            if (is_landmark_[v]) return;
            if (best_id[v] == kInvalidNode || !best_has[v]) return;
            auto& scratch = detail::ball_scratch<W>();
            truncated_ball(alg_, csr_, v, best_w[v], strict_balls_, scratch,
                           slot_weight,
                           [&](NodeId u, NodeId parent, const W&,
                               std::uint32_t) {
                             visit_source_member(v, u, parent);
                           });
          },
          grain);
    };

    // Promotion rounds, mirroring recompute_until_stable: fold fresh
    // landmark trees → assignment → ball sweep for cluster counts →
    // ordered promotion scan.
    std::vector<NodeId> fresh;
    for (NodeId l = 0; l < n; ++l) {
      if (is_landmark_[l]) fresh.push_back(l);
    }
    std::vector<std::uint32_t> counts(n, 0);
    for (;;) {
      sweep_landmarks(fresh);
      fresh.clear();
      landmark_of_.assign(n, kInvalidNode);
      parallel_for(
          *pool_, 0, n,
          [&](std::size_t u) {
            landmark_of_[u] =
                is_landmark_[u] ? static_cast<NodeId>(u) : best_id[u];
          },
          /*grain=*/512);
      std::fill(counts.begin(), counts.end(), 0);
      for_each_ball(
          [&](NodeId, NodeId u, NodeId) {
            std::atomic_ref<std::uint32_t>(counts[u])
                .fetch_add(1, std::memory_order_relaxed);
          },
          /*grain=*/16);
      bool promoted = false;
      for (NodeId u = 0; u < n; ++u) {
        if (!is_landmark_[u] && counts[u] > cluster_cap_) {
          is_landmark_[u] = true;
          ++promoted_landmark_count_;
          fresh.push_back(u);
          promoted = true;
        }
      }
      if (!promoted) break;
    }
    cluster_sizes_.assign(counts.begin(), counts.end());

    // Final landmark list, ascending — the merge below interleaves these
    // with the (disjoint: only non-landmarks have balls) ball targets.
    std::vector<NodeId> landmarks;
    for (NodeId l = 0; l < n; ++l) {
      if (is_landmark_[l]) landmarks.push_back(l);
    }

    // First hop out of l_v toward v, walking v's parent chain in l_v's
    // tree — compute_port_at_landmark verbatim, against a parent array.
    const auto chain_port = [&](NodeId v, NodeId lv,
                                const std::vector<NodeId>& par) -> Port {
      NodeId x = v;
      while (par[x] != lv) {
        x = par[x];
        if (x == kInvalidNode) break;
      }
      return x != kInvalidNode ? csr_.port_to(lv, x) : kInvalidPort;
    };

    port_at_landmark_.assign(n, kInvalidPort);
    tables_.assign(n, {});
    if (materialize_tables) {
      parallel_for(
          *pool_, 0, n,
          [&](std::size_t vi) {
            const NodeId v = static_cast<NodeId>(vi);
            const NodeId lv = landmark_of_[v];
            if (lv == kInvalidNode || lv == v) return;
            port_at_landmark_[v] =
                chain_port(v, lv, landmark_parent[landmark_slot[lv]]);
          },
          /*grain=*/64);

      // Ball entries: one more sweep, into per-block buffers whose
      // concatenation order is schedule-independent.
      struct BallEntry {
        NodeId owner;
        NodeId target;
        Port port;
      };
      constexpr std::size_t kBlock = 256;
      const std::size_t nblocks = (n + kBlock - 1) / kBlock;
      std::vector<std::vector<BallEntry>> block_entries(nblocks);
      parallel_for(*pool_, 0, nblocks, [&](std::size_t bi) {
        auto& out = block_entries[bi];
        const std::size_t lo = bi * kBlock;
        const std::size_t hi = std::min(n, lo + kBlock);
        for (std::size_t vi = lo; vi < hi; ++vi) {
          const NodeId v = static_cast<NodeId>(vi);
          if (is_landmark_[v]) continue;
          if (best_id[v] == kInvalidNode || !best_has[v]) continue;
          auto& scratch = detail::ball_scratch<W>();
          truncated_ball(alg_, csr_, v, best_w[v], strict_balls_, scratch,
                         slot_weight,
                         [&](NodeId u, NodeId parent, const W&,
                             std::uint32_t) {
                           out.push_back({u, v, csr_.port_to(u, parent)});
                         });
        }
      });

      // Counting sort by owner; the final cluster counts size each
      // owner's segment exactly (same sweep, same members).
      std::vector<std::size_t> offset(n + 1, 0);
      for (std::size_t u = 0; u < n; ++u) {
        offset[u + 1] = offset[u] + cluster_sizes_[u];
      }
      std::vector<std::pair<NodeId, Port>> ball_sorted(offset[n]);
      {
        std::vector<std::size_t> cursor(offset.begin(), offset.end() - 1);
        for (const auto& blk : block_entries) {
          for (const BallEntry& e : blk) {
            ball_sorted[cursor[e.owner]++] = {e.target, e.port};
          }
        }
      }
      block_entries.clear();
      block_entries.shrink_to_fit();

      // Per-owner: sort the ball segment by target and merge with the
      // ascending landmark entries — the same ascending-target stream
      // fill_table's scan appends.
      parallel_for(
          *pool_, 0, n,
          [&](std::size_t ui) {
            const NodeId u = static_cast<NodeId>(ui);
            const auto seg0 = ball_sorted.begin() + offset[u];
            const auto seg1 = ball_sorted.begin() + offset[u + 1];
            std::sort(seg0, seg1);  // targets unique within a segment
            auto& table = tables_[u];
            table.reserve(static_cast<std::size_t>(seg1 - seg0) +
                          landmarks.size());
            auto it = seg0;
            for (const NodeId l : landmarks) {
              while (it != seg1 && it->first < l) table.push_back(*it++);
              if (l == u) continue;
              const std::vector<NodeId>& par =
                  landmark_parent[landmark_slot[l]];
              if (par[u] == kInvalidNode) continue;  // unreachable
              table.emplace_back(l, csr_.port_to(u, par[u]));
            }
            while (it != seg1) table.push_back(*it++);
          },
          /*grain=*/8);
    } else {
      // Stats-only mode: tables are skipped, but labels stay exact — a
      // second batched landmark sweep recomputes each tree transiently
      // for the port-at-landmark chain walks.
      std::vector<std::uint32_t> in_batch(n, kNoSlot);
      for (std::size_t b0 = 0; b0 < landmarks.size(); b0 += batch) {
        const std::size_t b1 = std::min(landmarks.size(), b0 + batch);
        batch_trees.resize(b1 - b0);
        parallel_for(*pool_, 0, b1 - b0, [&](std::size_t i) {
          detail::dijkstra_dispatch(alg_, csr_, landmarks[b0 + i],
                                    batch_trees[i], slot_weight);
        });
        for (std::size_t i = 0; i < b1 - b0; ++i) {
          in_batch[landmarks[b0 + i]] = static_cast<std::uint32_t>(i);
        }
        parallel_for(
            *pool_, 0, n,
            [&](std::size_t vi) {
              const NodeId v = static_cast<NodeId>(vi);
              const NodeId lv = landmark_of_[v];
              if (lv == kInvalidNode || lv == v) return;
              const std::uint32_t i = in_batch[lv];
              if (i == kNoSlot) return;
              port_at_landmark_[v] = chain_port(v, lv, batch_trees[i].parent);
            },
            /*grain=*/64);
        for (std::size_t i = 0; i < b1 - b0; ++i) {
          in_batch[landmarks[b0 + i]] = kNoSlot;
        }
      }
    }
  }

  // The (target v, port) entry of node u's table, if any: landmarks
  // contribute wherever they are reachable (they carry no ball, so the
  // two entry kinds are disjoint), non-landmarks where u ∈ B(v).
  bool entry_port(NodeId u, NodeId v, const BallRadii& radius,
                  Port* out) const {
    if (v == u) return false;
    if (is_landmark_[v]) {
      if (!trees_[v].reachable(u)) return false;
      *out = csr_.port_to(u, trees_[v].parent[u]);
      return true;
    }
    if (!in_ball(trees_[u], v, radius)) return false;
    if (!trees_[v].reachable(u)) return false;
    *out = csr_.port_to(u, trees_[v].parent[u]);
    return true;
  }

  // One node's table in a single ascending scan over the targets.
  // Scanning targets in id order appends the flat table already sorted —
  // no per-entry allocation, no rebalancing — and the encoded tables stay
  // schedule-independent. Port lookups go through the CSR view.
  void fill_table(NodeId u, const BallRadii& radius) {
    const std::size_t n = graph_->node_count();
    auto& table = tables_[u];
    table.clear();
    for (NodeId v = 0; v < n; ++v) {
      Port p;
      if (entry_port(u, v, radius, &p)) table.emplace_back(v, p);
    }
  }

  // Label ingredient: first hop out of l_v on the preferred l_v→v path,
  // found by walking v's parent chain in tree(l_v).
  Port compute_port_at_landmark(NodeId v) const {
    const NodeId lv = landmark_of_[v];
    if (lv == kInvalidNode || lv == v) return kInvalidPort;
    NodeId x = v;
    while (trees_[lv].parent[x] != lv) {
      x = trees_[lv].parent[x];
      if (x == kInvalidNode) break;
    }
    return x != kInvalidNode ? csr_.port_to(lv, x) : kInvalidPort;
  }

  void build_tables() {
    const std::size_t n = graph_->node_count();
    const auto radius = ball_radii();
    tables_.assign(n, {});
    parallel_for(
        *pool_, 0, n,
        [&](std::size_t i) { fill_table(static_cast<NodeId>(i), radius); },
        /*grain=*/8);
    port_at_landmark_.assign(n, kInvalidPort);
    parallel_for(
        *pool_, 0, n,
        [&](std::size_t i) {
          port_at_landmark_[i] = compute_port_at_landmark(static_cast<NodeId>(i));
        },
        /*grain=*/64);
  }

  const A alg_;
  const Graph* graph_;
  CsrGraph csr_;
  ThreadPool* pool_ = nullptr;
  std::vector<PathTree<W>> trees_;
  std::vector<bool> is_landmark_;
  std::vector<NodeId> landmark_of_;
  std::vector<std::size_t> cluster_sizes_;
  std::vector<std::vector<std::pair<NodeId, Port>>> tables_;
  std::vector<Port> port_at_landmark_;
  std::size_t cluster_cap_ = 0;
  std::size_t initial_landmark_count_ = 0;
  std::size_t promoted_landmark_count_ = 0;
  bool strict_balls_ = true;
};

}  // namespace cpr
