#include "scheme/compressed_table.hpp"

#include <stdexcept>

namespace cpr {

CompressedTableScheme::CompressedTableScheme(
    const Graph& g, const std::vector<std::vector<NodeId>>& next_hop,
    std::vector<NodeId> relabel)
    : graph_(&g), relabel_(std::move(relabel)) {
  const std::size_t n = g.node_count();
  if (relabel_.size() != n) {
    throw std::invalid_argument("CompressedTableScheme: relabel size");
  }
  // The relabeling must be a permutation of [0, n): a duplicate label
  // would alias two destinations onto one table column and silently
  // misroute every packet for one of them.
  std::vector<std::uint8_t> seen(n, 0);
  for (NodeId label : relabel_) {
    if (label >= n || seen[label]) {
      throw std::invalid_argument(
          "CompressedTableScheme: relabel is not a permutation");
    }
    seen[label] = 1;
  }
  ports_by_label_.assign(n, std::vector<Port>(n, kInvalidPort));
  for (NodeId t = 0; t < n; ++t) {
    for (NodeId u = 0; u < n; ++u) {
      if (u == t) continue;
      const NodeId nh = next_hop[t][u];
      if (nh != kInvalidNode) {
        ports_by_label_[u][relabel_[t]] = g.port_to(u, nh);
      }
    }
  }
}

std::vector<NodeId> CompressedTableScheme::dfs_relabeling(
    const Graph& g, const std::vector<NodeId>& parent, NodeId root) {
  const std::size_t n = g.node_count();
  if (root >= n) {
    // Covers the empty graph: the seed push below would write
    // relabel[root] out of bounds.
    throw std::invalid_argument("dfs_relabeling: root out of range");
  }
  std::vector<std::vector<NodeId>> children(n);
  for (NodeId v = 0; v < n; ++v) {
    if (v != root && parent[v] != kInvalidNode) {
      children[parent[v]].push_back(v);
    }
  }
  std::vector<NodeId> relabel(n, kInvalidNode);
  NodeId counter = 0;
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    relabel[u] = counter++;
    for (std::size_t i = children[u].size(); i-- > 0;) {
      stack.push_back(children[u][i]);
    }
  }
  if (counter != n) {
    throw std::invalid_argument("dfs_relabeling: parents do not span");
  }
  return relabel;
}

Decision CompressedTableScheme::forward(NodeId u, Header& h) const {
  if (relabel_[u] == h) return Decision::delivered();
  const Port p = ports_by_label_[u][h];
  return Decision::via(p);
}

std::size_t CompressedTableScheme::local_memory_bits(NodeId u) const {
  BitWriter bits;
  const auto& ports = ports_by_label_[u];
  const std::size_t port_universe =
      std::max<std::size_t>(graph_->degree(u), 1) + 1;  // +1: "no route"
  std::size_t i = 0;
  while (i < ports.size()) {
    std::size_t j = i;
    while (j < ports.size() && ports[j] == ports[i]) ++j;
    bits.write_gamma(j - i);  // run length
    // Port value; kInvalidPort encodes as the extra "no route" symbol.
    const std::uint64_t symbol =
        ports[i] == kInvalidPort ? port_universe - 1 : ports[i];
    bits.write_bounded(symbol, port_universe);
    i = j;
  }
  return bits.bit_count();
}

std::size_t CompressedTableScheme::run_count(NodeId u) const {
  const auto& ports = ports_by_label_[u];
  std::size_t runs = 0, i = 0;
  while (i < ports.size()) {
    std::size_t j = i;
    while (j < ports.size() && ports[j] == ports[i]) ++j;
    ++runs;
    i = j;
  }
  return runs;
}

}  // namespace cpr
