// Routing in a complete graph with O(log n) bits per node — the "special
// port labeling" ingredient (Fraigniaud–Gavoille tech report [32]) that
// Theorem 7 uses to route across the root peer mesh.
//
// With designer-chosen ports, node i numbers its port toward j as
// j if j < i, else j-1; the forwarding decision is pure index arithmetic
// from (own id, target id), so the only stored state is the node's own id.
// The simulator-facing forward() translates the designed port back to the
// host graph's adjacency index, which is not charged to memory (the
// designed numbering IS the port labeling L_E).
#pragma once

#include "scheme/scheme.hpp"
#include "util/bitstream.hpp"

#include <stdexcept>

namespace cpr {

class CompleteMeshScheme {
 public:
  using Header = NodeId;

  explicit CompleteMeshScheme(const Graph& g) : graph_(&g) {
    const std::size_t n = g.node_count();
    if (g.edge_count() != n * (n - 1) / 2) {
      throw std::invalid_argument("CompleteMeshScheme: graph not complete");
    }
  }

  Header make_header(NodeId target) const { return target; }

  Decision forward(NodeId u, Header& h) const {
    if (u == h) return Decision::delivered();
    // Designed port = h < u ? h : h - 1 — recover the neighbor from pure
    // arithmetic and translate for the simulator.
    return Decision::via(graph_->port_to(u, h));
  }

  // Own id only.
  std::size_t local_memory_bits(NodeId u) const {
    BitWriter bits;
    bits.write_bounded(u, graph_->node_count());
    return bits.bit_count();
  }
  std::size_t label_bits(NodeId) const {
    return bits_for_universe(graph_->node_count());
  }

  // The designed port number (what the model's L_E assigns).
  Port designed_port(NodeId u, NodeId target) const {
    return target < u ? target : target - 1;
  }

 private:
  const Graph* graph_;
};

static_assert(CompactRoutingScheme<CompleteMeshScheme>);

}  // namespace cpr
