#include "scheme/tree_router.hpp"

#include "scheme/spanning_tree.hpp"
#include "util/bitstream.hpp"

#include <algorithm>
#include <stdexcept>

namespace cpr {

TreeRouter::TreeRouter(const Graph& g, const std::vector<EdgeId>& tree_edges,
                       NodeId root)
    : TreeRouter(g, RootedTree::from_edges(g, tree_edges, root)) {}

TreeRouter::TreeRouter(const Graph& g, RootedTree tree)
    : graph_(&g), root_(tree.root) {
  const NodeId root = tree.root;
  const std::size_t n = g.node_count();
  parent_ = std::move(tree.parent);
  port_up_.assign(n, kInvalidPort);
  port_down_.assign(n, kInvalidPort);
  for (NodeId u = 0; u < n; ++u) {
    if (u == root) continue;
    port_up_[u] = g.port_to(u, parent_[u]);
    port_down_[u] = g.port_to(parent_[u], u);
  }
  dfs_in_.assign(n, 0);
  dfs_out_.assign(n, 0);
  light_depth_.assign(n, 0);
  depth_.assign(n, 0);
  heavy_child_.assign(n, kInvalidNode);
  by_dfs_.assign(n, kInvalidNode);

  // Heavy child = largest subtree (ties: smaller id); light children in
  // decreasing subtree size, which is what makes the gamma codes
  // telescope. Both are derived from parent + subtree_size alone —
  // (size desc, id asc) is a strict total order, so the result does not
  // depend on any children-list ordering, and the children lists are not
  // needed at all (from_edges may skip building them on the repair path).
  for (NodeId v = 0; v < n; ++v) {
    if (v == root) continue;
    NodeId& h = heavy_child_[parent_[v]];
    if (h == kInvalidNode || tree.subtree_size[v] > tree.subtree_size[h]) {
      h = v;  // ascending v: first of an equal-size run keeps the slot
    }
  }
  light_off_.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (v != root && heavy_child_[parent_[v]] != v) {
      ++light_off_[parent_[v] + 1];
    }
  }
  for (NodeId u = 0; u < n; ++u) light_off_[u + 1] += light_off_[u];
  light_flat_.resize(light_off_[n]);
  {
    std::vector<std::uint32_t> cursor(light_off_.begin(),
                                      light_off_.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      if (v != root && heavy_child_[parent_[v]] != v) {
        light_flat_[cursor[parent_[v]]++] = v;
      }
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    if (light_off_[u + 1] - light_off_[u] > 1) {
      std::sort(light_flat_.begin() + light_off_[u],
                light_flat_.begin() + light_off_[u + 1],
                [&](NodeId a, NodeId b) {
                  if (tree.subtree_size[a] != tree.subtree_size[b]) {
                    return tree.subtree_size[a] > tree.subtree_size[b];
                  }
                  return a < b;
                });
    }
  }

  // Preorder DFS, heavy first. Subtrees are preorder-contiguous, so
  // dfs_out = dfs_in + size - 1.
  std::uint32_t counter = 0;
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    dfs_in_[u] = counter++;
    dfs_out_[u] =
        dfs_in_[u] + static_cast<std::uint32_t>(tree.subtree_size[u]) - 1;
    by_dfs_[dfs_in_[u]] = u;
    if (u != root) {
      depth_[u] = depth_[parent_[u]] + 1;
      const bool is_light = heavy_child_[parent_[u]] != u;
      light_depth_[u] = light_depth_[parent_[u]] + (is_light ? 1 : 0);
    }
    // Push light children in reverse so they pop in designed order after
    // the heavy child.
    for (std::uint32_t i = light_off_[u + 1]; i-- > light_off_[u];) {
      stack.push_back(light_flat_[i]);
    }
    if (heavy_child_[u] != kInvalidNode) stack.push_back(heavy_child_[u]);
  }
  if (counter != n) throw std::logic_error("TreeRouter: DFS did not span");
}

TreeRouter::Header TreeRouter::make_header(NodeId target) const {
  Header h;
  h.target_dfs = dfs_in_[target];
  // Collect light-child indices on root→target, built leaf→root then
  // reversed.
  std::vector<std::uint32_t> seq;
  for (NodeId v = target; v != root_; v = parent_[v]) {
    const NodeId p = parent_[v];
    if (heavy_child_[p] == v) continue;
    seq.push_back(light_index(p, v));
  }
  std::reverse(seq.begin(), seq.end());
  h.light_sequence = std::move(seq);
  return h;
}

Decision TreeRouter::forward(NodeId u, Header& h) const {
  const std::uint64_t x = h.target_dfs;
  if (x == dfs_in_[u]) return Decision::delivered();
  if (x < dfs_in_[u] || x > dfs_out_[u]) {
    return Decision::via(port_up_[u]);  // target outside my subtree: climb
  }
  const NodeId heavy = heavy_child_[u];
  if (heavy != kInvalidNode && x >= dfs_in_[heavy] && x <= dfs_out_[heavy]) {
    return Decision::via(port_down_[heavy]);
  }
  // Descend on a light edge; my entry is #light_depth_[u] because
  // root→u contributes exactly that many light edges to the label.
  const std::uint32_t idx = light_depth_[u];
  if (idx >= h.light_sequence.size() ||
      h.light_sequence[idx] >= light_count(u)) {
    return Decision::via(kInvalidPort);  // malformed label
  }
  return Decision::via(port_down_[light_child(u, h.light_sequence[idx])]);
}

std::size_t TreeRouter::local_memory_bits(NodeId u) const {
  BitWriter bits;
  const std::size_t n = graph_->node_count();
  bits.write_bounded(dfs_in_[u], n);
  bits.write_bounded(dfs_out_[u], n);
  bits.write_bit(u != root_);                       // have parent port
  bits.write_bit(heavy_child_[u] != kInvalidNode);  // have heavy port
  if (heavy_child_[u] != kInvalidNode) {
    bits.write_bounded(dfs_in_[heavy_child_[u]], n);
    bits.write_bounded(dfs_out_[heavy_child_[u]], n);
  }
  bits.write_gamma(light_depth_[u] + 1);
  return bits.bit_count();
}

std::size_t TreeRouter::label_bits(NodeId v) const {
  BitWriter bits;
  bits.write_bounded(dfs_in_[v], graph_->node_count());
  for (NodeId x = v; x != root_; x = parent_[x]) {
    const NodeId p = parent_[x];
    if (heavy_child_[p] == x) continue;
    bits.write_gamma(std::uint64_t{light_index(p, x)} + 1);
  }
  return bits.bit_count();
}

std::pair<std::vector<std::uint8_t>, std::size_t> TreeRouter::encode_header(
    const Header& h) const {
  BitWriter bits;
  bits.write_bounded(h.target_dfs, graph_->node_count());
  for (const std::uint32_t idx : h.light_sequence) {
    bits.write_gamma(std::uint64_t{idx} + 1);
  }
  return {bits.bytes(), bits.bit_count()};
}

TreeRouter::Header TreeRouter::decode_header(
    const std::vector<std::uint8_t>& bytes, std::size_t bit_count) const {
  BitReader reader(bytes);
  Header h;
  h.target_dfs = reader.read_bounded(graph_->node_count());
  while (reader.position() < bit_count) {
    h.light_sequence.push_back(
        static_cast<std::uint32_t>(reader.read_gamma() - 1));
  }
  return h;
}

std::uint32_t TreeRouter::light_index(NodeId p, NodeId v) const {
  const auto begin = light_flat_.begin() + light_off_[p];
  const auto end = light_flat_.begin() + light_off_[p + 1];
  return static_cast<std::uint32_t>(std::find(begin, end, v) - begin);
}

NodePath TreeRouter::tree_path(NodeId s, NodeId t) const {
  // Climb both endpoints to their LCA using depths.
  NodePath up, down;
  NodeId a = s, b = t;
  while (depth_[a] > depth_[b]) {
    up.push_back(a);
    a = parent_[a];
  }
  while (depth_[b] > depth_[a]) {
    down.push_back(b);
    b = parent_[b];
  }
  while (a != b) {
    up.push_back(a);
    down.push_back(b);
    a = parent_[a];
    b = parent_[b];
  }
  up.push_back(a);  // the LCA
  up.insert(up.end(), down.rbegin(), down.rend());
  return up;
}

}  // namespace cpr
