// Compact routing in trees with O(log n)-bit node state and O(log n)-bit
// labels (the Fraigniaud–Gavoille / Thorup–Zwick tree-routing ingredient
// behind Theorem 1 and the Θ(log n) rows of Table 1).
//
// Construction (heavy-path / interval labeling):
//  - Root the tree; number nodes in preorder DFS visiting the *heavy*
//    child (largest subtree) first and the light children in decreasing
//    subtree size. A subtree is then the contiguous interval
//    [dfs_in, dfs_in + size - 1].
//  - Designed port numbering at u: 0 = parent, 1 = heavy child, 2+i = i-th
//    light child. (The model lets the designer pick L_E(u); the mapping to
//    the simulator's adjacency indices is a simulation artifact and not
//    charged to memory.)
//  - Label(t) = dfs_in(t) plus the sequence of light-child indices taken
//    on the root→t path, Elias-gamma coded. Because the i-th light child
//    has subtree size at most size(u)/(i+1), the gamma codes telescope to
//    O(log n) bits total.
//  - Node state: own interval, heavy-child interval, light depth (number
//    of light edges above u), parent/heavy flags — O(log n) bits.
//
// Forwarding at u with target number x and light cursor: deliver if
// x == dfs_in(u); go to the parent if x is outside u's interval; go heavy
// if x is in the heavy interval; otherwise consume entry #light_depth(u)
// of the label's light sequence — valid because root→u is a prefix of
// root→t whenever the packet descends at u, so exactly light_depth(u)
// entries lie above u.
#pragma once

#include "graph/graph.hpp"
#include "scheme/scheme.hpp"

#include <cstdint>
#include <utility>
#include <vector>

namespace cpr {

class TreeRouter {
 public:
  struct Header {
    std::uint64_t target_dfs = 0;
    // Light-child indices on the root→target path, in root→leaf order.
    std::vector<std::uint32_t> light_sequence;
  };

  // `tree_edges` must span g. The router routes along tree paths only.
  TreeRouter(const Graph& g, const std::vector<EdgeId>& tree_edges,
             NodeId root = 0);

  Header make_header(NodeId target) const;
  Decision forward(NodeId u, Header& h) const;

  std::size_t local_memory_bits(NodeId u) const;
  std::size_t label_bits(NodeId v) const;

  // Bit-exact label codec: encode produces exactly label_bits(v) bits and
  // decode recovers the header from them (labels are length-framed by the
  // packet format, so the decoder is given the bit count). The round trip
  // is what certifies that label_bits is a real, decodable size.
  std::pair<std::vector<std::uint8_t>, std::size_t> encode_header(
      const Header& h) const;
  Header decode_header(const std::vector<std::uint8_t>& bytes,
                       std::size_t bit_count) const;

  // The unique in-tree s→t node sequence (for Lemma-1 validation: its
  // weight must be order-equal to the preferred weight for selective
  // monotone algebras).
  NodePath tree_path(NodeId s, NodeId t) const;

  NodeId root() const { return root_; }
  NodeId parent(NodeId v) const { return parent_[v]; }

 private:
  const Graph* graph_;
  NodeId root_;
  std::vector<NodeId> parent_;
  // forward() only ever exits along a tree edge, so the two ports of every
  // tree edge are resolved once at construction: port_up_[u] exits u toward
  // parent(u), port_down_[u] exits parent(u) toward u. O(1) per hop, no
  // adjacency lookup on the query path.
  std::vector<Port> port_up_, port_down_;
  std::vector<std::uint32_t> dfs_in_, dfs_out_;
  std::vector<std::uint32_t> light_depth_;
  std::vector<NodeId> heavy_child_;                 // kInvalidNode if leaf
  std::vector<std::vector<NodeId>> light_children_; // sorted, designed order
  std::vector<NodeId> by_dfs_;                      // dfs number -> node id
  std::vector<std::uint32_t> depth_;
};

static_assert(CompactRoutingScheme<TreeRouter>);

}  // namespace cpr
