// Compact routing in trees with O(log n)-bit node state and O(log n)-bit
// labels (the Fraigniaud–Gavoille / Thorup–Zwick tree-routing ingredient
// behind Theorem 1 and the Θ(log n) rows of Table 1).
//
// Construction (heavy-path / interval labeling):
//  - Root the tree; number nodes in preorder DFS visiting the *heavy*
//    child (largest subtree) first and the light children in decreasing
//    subtree size. A subtree is then the contiguous interval
//    [dfs_in, dfs_in + size - 1].
//  - Designed port numbering at u: 0 = parent, 1 = heavy child, 2+i = i-th
//    light child. (The model lets the designer pick L_E(u); the mapping to
//    the simulator's adjacency indices is a simulation artifact and not
//    charged to memory.)
//  - Label(t) = dfs_in(t) plus the sequence of light-child indices taken
//    on the root→t path, Elias-gamma coded. Because the i-th light child
//    has subtree size at most size(u)/(i+1), the gamma codes telescope to
//    O(log n) bits total.
//  - Node state: own interval, heavy-child interval, light depth (number
//    of light edges above u), parent/heavy flags — O(log n) bits.
//
// Forwarding at u with target number x and light cursor: deliver if
// x == dfs_in(u); go to the parent if x is outside u's interval; go heavy
// if x is in the heavy interval; otherwise consume entry #light_depth(u)
// of the label's light sequence — valid because root→u is a prefix of
// root→t whenever the packet descends at u, so exactly light_depth(u)
// entries lie above u.
#pragma once

#include "graph/graph.hpp"
#include "scheme/scheme.hpp"

#include <cstdint>
#include <utility>
#include <vector>

namespace cpr {

struct RootedTree;

class TreeRouter {
 public:
  struct Header {
    std::uint64_t target_dfs = 0;
    // Light-child indices on the root→target path, in root→leaf order.
    std::vector<std::uint32_t> light_sequence;

    // (node, header) pairs fully determine a forwarding step, so header
    // equality is what the simulator's loop detection keys on.
    bool operator==(const Header&) const = default;
  };

  // `tree_edges` must span g. The router routes along tree paths only.
  TreeRouter(const Graph& g, const std::vector<EdgeId>& tree_edges,
             NodeId root = 0);

  // Same construction from a tree that is already rooted. The churn
  // repair path re-hangs the tree on every swap and needs the rooted
  // form itself (parents, depths), so handing it over here avoids a
  // second BFS per event. Consumes `tree`.
  TreeRouter(const Graph& g, RootedTree tree);

  Header make_header(NodeId target) const;
  Decision forward(NodeId u, Header& h) const;

  std::size_t local_memory_bits(NodeId u) const;
  std::size_t label_bits(NodeId v) const;

  // Bit-exact label codec: encode produces exactly label_bits(v) bits and
  // decode recovers the header from them (labels are length-framed by the
  // packet format, so the decoder is given the bit count). The round trip
  // is what certifies that label_bits is a real, decodable size.
  std::pair<std::vector<std::uint8_t>, std::size_t> encode_header(
      const Header& h) const;
  Header decode_header(const std::vector<std::uint8_t>& bytes,
                       std::size_t bit_count) const;

  // The unique in-tree s→t node sequence (for Lemma-1 validation: its
  // weight must be order-equal to the preferred weight for selective
  // monotone algebras).
  NodePath tree_path(NodeId s, NodeId t) const;

  NodeId root() const { return root_; }
  NodeId parent(NodeId v) const { return parent_[v]; }

  // Subtrees are preorder-contiguous, so "is x in v's subtree" is one
  // interval test. The dynamic spanning-tree cut rule keys on this: the
  // two sides of a tree-edge cut are exactly inside/outside the child
  // endpoint's subtree, making the replacement scan O(1) per edge with
  // no BFS.
  bool in_subtree(NodeId v, NodeId x) const {
    return dfs_in_[x] >= dfs_in_[v] && dfs_in_[x] <= dfs_out_[v];
  }
  // Root-distance of every node, a byproduct of the labeling DFS (parents
  // are visited first). Exposed so tree-maintenance callers need not
  // re-walk the tree.
  const std::vector<std::uint32_t>& depths() const { return depth_; }

  // Raw labeling products, read by the FIB compiler (fib/compile.cpp)
  // when it flattens the router into a forwarding arena.
  std::uint32_t dfs_in(NodeId v) const { return dfs_in_[v]; }
  std::uint32_t dfs_out(NodeId v) const { return dfs_out_[v]; }
  std::uint32_t light_depth(NodeId v) const { return light_depth_[v]; }
  NodeId heavy_child(NodeId v) const { return heavy_child_[v]; }
  Port port_up(NodeId v) const { return port_up_[v]; }
  Port port_down(NodeId v) const { return port_down_[v]; }
  std::size_t light_count(NodeId u) const {
    return light_off_[u + 1] - light_off_[u];
  }
  NodeId light_child(NodeId u, std::uint32_t i) const {
    return light_flat_[light_off_[u] + i];
  }

 private:
  const Graph* graph_;
  NodeId root_;
  std::vector<NodeId> parent_;
  // forward() only ever exits along a tree edge, so the two ports of every
  // tree edge are resolved once at construction: port_up_[u] exits u toward
  // parent(u), port_down_[u] exits parent(u) toward u. O(1) per hop, no
  // adjacency lookup on the query path.
  std::vector<Port> port_up_, port_down_;
  std::vector<std::uint32_t> dfs_in_, dfs_out_;
  std::vector<std::uint32_t> light_depth_;
  std::vector<NodeId> heavy_child_;  // kInvalidNode if leaf
  // Light children in designed (decreasing-subtree) order, flattened to
  // CSR form: node u's lights are light_flat_[light_off_[u] ..
  // light_off_[u+1]). One allocation instead of one per branching node —
  // the router is rebuilt on every churn tree swap, so construction
  // allocations are hot.
  std::vector<std::uint32_t> light_off_;
  std::vector<NodeId> light_flat_;
  std::vector<NodeId> by_dfs_;  // dfs number -> node id
  std::vector<std::uint32_t> depth_;

  // Index of light child v under its parent p (designed port order).
  std::uint32_t light_index(NodeId p, NodeId v) const;
};

static_assert(CompactRoutingScheme<TreeRouter>);

}  // namespace cpr
