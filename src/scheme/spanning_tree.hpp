// Preferred spanning trees (Lemma 1, constructive direction).
//
// For a monotone and selective algebra, taking edges in non-decreasing
// ⪯-order and adding each edge that closes no cycle yields a spanning tree
// whose unique in-tree s–t path is a preferred s–t path for *every* pair —
// the algebra "maps to a tree". (This is the Kruskal construction from the
// proof; for widest path it degenerates to the maximum-capacity spanning
// tree, and the Spanning Tree Protocol footnote is the usable-path case.)
// Routing over the tree then needs only Θ(log n) bits per node via the
// tree router, which is how Theorem 1's compressibility is realized.
#pragma once

#include "algebra/algebra.hpp"
#include "fib/fib_delta.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "scheme/tree_router.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <vector>

namespace cpr {

template <RoutingAlgebra A>
std::vector<EdgeId> preferred_spanning_tree(
    const A& alg, const Graph& g, const EdgeMap<typename A::Weight>& w) {
  std::vector<EdgeId> order(g.edge_count());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return alg.less(w[a], w[b]);  // ties keep edge-id order (deterministic)
  });
  UnionFind uf(g.node_count());
  std::vector<EdgeId> tree;
  tree.reserve(g.node_count() > 0 ? g.node_count() - 1 : 0);
  for (EdgeId e : order) {
    if (uf.unite(g.edge(e).u, g.edge(e).v)) tree.push_back(e);
  }
  return tree;
}

// The tree as a rooted topology: parents, children lists, and the subgraph
// restricted to tree edges. Input edges must form a spanning tree of g.
struct RootedTree {
  NodeId root = 0;
  std::vector<NodeId> parent;        // parent[root] == root
  std::vector<EdgeId> parent_edge;   // edge id in the host graph
  std::vector<std::vector<NodeId>> children;
  std::vector<std::size_t> subtree_size;

  // with_children=false skips the per-node children lists (they cost one
  // allocation per branching node — the churn repair path rebuilds the
  // tree every event and its consumers derive everything from parent +
  // subtree_size).
  static RootedTree from_edges(const Graph& g,
                               const std::vector<EdgeId>& tree_edges,
                               NodeId root = 0, bool with_children = true);
};

class ThreadPool;

// One rooted view per requested root, built in parallel (each root is an
// independent BFS over the same edge set, writing only its own slot — the
// result is identical to calling from_edges per root sequentially). This
// is how the multi-root tree-router and ablation experiments amortize
// forest construction. Pass nullptr to use the process-global pool.
std::vector<RootedTree> rooted_forest(const Graph& g,
                                      const std::vector<EdgeId>& tree_edges,
                                      const std::vector<NodeId>& roots,
                                      ThreadPool* pool = nullptr);

// What an incremental repair did, for stats and bench accounting.
enum class ChurnRepairKind : std::uint8_t {
  kNoop,     // the event provably cannot change the preferred tree
  kSwap,     // one edge swapped; subtree re-hung, router re-ranked
  kRerank,   // tree edges unchanged, only their ⪯-rank order moved
};

// Repair verdict plus its footprint on the compiled plane. kNoop and
// kRerank leave the TreeRouter untouched, so the compiled FIB is
// provably unchanged (empty delta); kSwap rebuilds the router — the
// heavy-path DFS renumbers globally, so no row-level patch can express
// it and the delta demands a recompile (a compaction on the maintainer).
struct TreeRepair {
  ChurnRepairKind kind = ChurnRepairKind::kNoop;
  FibDelta fib_delta;
};

// Theorem-1 tree routing as a *dynamic* scheme: the Kruskal preferred
// spanning tree plus a heavy-path TreeRouter over it, with incremental
// repair under churn events.
//
// Exactness argument. `precedes` extends ⪯ to a strict total order on
// edges ((weight, edge-id) lexicographically), under which the
// minimum-spanning-tree is *unique* and equal to what the Kruskal build
// emits. Single-edge updates are then the textbook dynamic-MST rules:
//  - tree edge down (cut rule): the replacement is the precedes-minimum
//    alive edge crossing the cut the removal opens; non-tree edge down
//    is a no-op (fast path).
//  - edge up (cycle rule): the new edge enters iff it precedes the
//    precedes-maximum edge on the tree path between its endpoints,
//    which then leaves.
//  - weight change: on a tree edge, re-run the cut rule with the edge's
//    new weight competing (if it still wins its cut the tree is
//    unchanged — at most the rank order moved); on a non-tree edge,
//    the cycle rule.
// Each repair is O(n + m) against the O(m α(m) + sort) full rebuild; the
// router rebuild on a tree change is O(n log n). apply_event must leave
// the scheme identical to `build` on the post-event weights — pinned per
// event by tests/test_churn_differential.cpp.
template <RoutingAlgebra A>
class SpanningTreeScheme {
 public:
  using W = typename A::Weight;
  using Header = TreeRouter::Header;

  static SpanningTreeScheme build(const A& alg, const Graph& g,
                                  const EdgeMap<W>& w, NodeId root = 0) {
    SpanningTreeScheme s(alg, g, root);
    s.rebuild(w);
    return s;
  }

  Header make_header(NodeId target) const { return router_->make_header(target); }
  Decision forward(NodeId u, Header& h) const { return router_->forward(u, h); }
  std::size_t local_memory_bits(NodeId u) const {
    return router_->local_memory_bits(u);
  }
  std::size_t label_bits(NodeId v) const { return router_->label_bits(v); }

  const TreeRouter& router() const { return *router_; }
  // Current tree edges, sorted by the (⪯, edge-id) total order.
  const std::vector<EdgeId>& tree_edges() const { return tree_edges_; }
  bool in_tree(EdgeId e) const { return in_tree_[e]; }
  NodeId root() const { return root_; }

  // Full rebuild on the current overlay — the oracle the incremental
  // path is differentially tested against.
  void rebuild(const EdgeMap<W>& w) {
    const std::size_t n = graph_->node_count();
    std::vector<EdgeId> order;
    order.reserve(graph_->edge_count());
    for (EdgeId e = 0; e < graph_->edge_count(); ++e) {
      if (!alg_.is_phi(w[e])) order.push_back(e);
    }
    std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
      return alg_.less(w[a], w[b]);  // stable: ties keep id order
    });
    UnionFind uf(n);
    tree_edges_.clear();
    tree_edges_.reserve(n > 0 ? n - 1 : 0);
    for (EdgeId e : order) {
      if (uf.unite(graph_->edge(e).u, graph_->edge(e).v)) {
        tree_edges_.push_back(e);
      }
    }
    if (n > 0 && tree_edges_.size() != n - 1) {
      throw std::runtime_error("SpanningTreeScheme: graph is not connected");
    }
    // Kruskal consumed `order`, which is exactly the (⪯, edge-id) total
    // order, so tree_edges_ already carries the canonical sort adopt
    // relies on.
    adopt();
  }

  // Incremental repair for one churn event on edge e: old_w/new_w use the
  // φ encoding (φ = down), `w` is the post-event weight map (what
  // ChurnEngine::weights() holds after apply()). The returned fib_delta
  // tells a MaintainedFib what the repair did to the compiled plane.
  TreeRepair apply_event(EdgeId e, const W& old_w, const W& new_w,
                         const EdgeMap<W>& w) {
    const bool was_alive = !alg_.is_phi(old_w);
    const bool is_alive = !alg_.is_phi(new_w);
    if (!was_alive && !is_alive) return repair(ChurnRepairKind::kNoop);

    if (was_alive && !is_alive) {  // edge down
      if (!in_tree_[e]) return repair(ChurnRepairKind::kNoop);  // fast path
      const EdgeId replacement = best_cut_edge(e, w, /*include_self=*/false);
      if (replacement == kInvalidEdge) {
        throw std::runtime_error(
            "SpanningTreeScheme: churn disconnected the graph");
      }
      swap_edges(e, replacement, w);
      return repair(ChurnRepairKind::kSwap);
    }

    if (!was_alive && is_alive) {  // edge up: cycle rule
      return repair(try_cycle_insert(e, w));
    }

    // Weight change on a live edge.
    if (!in_tree_[e]) return repair(try_cycle_insert(e, w));
    // Tree edge re-weighted: re-run its cut with the edge itself
    // competing at the new weight.
    const EdgeId winner = best_cut_edge(e, w, /*include_self=*/true);
    if (winner == e) {
      // Still the cut minimum: same edge set, but its rank among the
      // tree edges may have moved — re-place it to keep the canonical
      // order for set comparisons. Only e's weight changed, so every
      // other pair's relative order is intact and one ordered
      // erase+insert restores sortedness. Forwarding is unchanged.
      reinsert_sorted(e, w);
      return repair(ChurnRepairKind::kRerank);
    }
    swap_edges(e, winner, w);
    return repair(ChurnRepairKind::kSwap);
  }

 private:
  SpanningTreeScheme(const A& alg, const Graph& g, NodeId root)
      : alg_(alg), graph_(&g), root_(root) {}

  // kNoop and kRerank never touch router_, so the compiled arena is
  // exactly what a fresh compile would produce — an empty delta. kSwap
  // ran adopt(): the DFS order renumbered globally, so the delta is a
  // recompile demand touching every node.
  TreeRepair repair(ChurnRepairKind kind) const {
    TreeRepair r;
    r.kind = kind;
    if (kind == ChurnRepairKind::kSwap) {
      r.fib_delta.recompile = true;
      r.fib_delta.touched_nodes = graph_->node_count();
    }
    return r;
  }

  // The strict total order that makes the preferred tree unique: ⪯ on
  // weights, edge id on ties (exactly the stable_sort order of `rebuild`).
  bool precedes(EdgeId a, EdgeId b, const EdgeMap<W>& w) const {
    if (alg_.less(w[a], w[b])) return true;
    if (alg_.less(w[b], w[a])) return false;
    return a < b;
  }

  // Recomputes every tree-derived structure from tree_edges_: membership
  // bitmap, parent/depth arrays, heavy-path router. Precondition:
  // tree_edges_ is sorted by `precedes` on the current weights — rebuild's
  // Kruskal emits that order, swap/rerank maintain it with an ordered
  // erase+insert. The rooted tree is built once and handed to the router
  // (the repair hot path pays one BFS per event, not two).
  void adopt() {
    in_tree_.assign(graph_->edge_count(), false);
    for (EdgeId e : tree_edges_) in_tree_[e] = true;
    RootedTree tree = RootedTree::from_edges(*graph_, tree_edges_, root_,
                                             /*with_children=*/false);
    parent_ = tree.parent;
    parent_edge_ = tree.parent_edge;
    router_.emplace(*graph_, std::move(tree));
    depth_ = router_->depths();  // byproduct of the labeling DFS
  }

  // Drop `out`, then place `in` at its sorted position. Every edge other
  // than `in` kept its weight, so pairwise order among the survivors is
  // untouched and one lower_bound insert restores the canonical order.
  void swap_edges(EdgeId out, EdgeId in, const EdgeMap<W>& w) {
    tree_edges_.erase(
        std::find(tree_edges_.begin(), tree_edges_.end(), out));
    const auto pos = std::lower_bound(
        tree_edges_.begin(), tree_edges_.end(), in,
        [&](EdgeId a, EdgeId b) { return precedes(a, b, w); });
    tree_edges_.insert(pos, in);
    adopt();
  }

  // Re-place edge e after its weight changed (set unchanged).
  void reinsert_sorted(EdgeId e, const EdgeMap<W>& w) {
    tree_edges_.erase(std::find(tree_edges_.begin(), tree_edges_.end(), e));
    const auto pos = std::lower_bound(
        tree_edges_.begin(), tree_edges_.end(), e,
        [&](EdgeId a, EdgeId b) { return precedes(a, b, w); });
    tree_edges_.insert(pos, e);
  }

  // Cut rule: the two sides of T − cut_edge are exactly the subtree of
  // the cut edge's child endpoint and its complement, and the router's
  // preorder intervals (built for the current tree, which still contains
  // cut_edge) answer the subtree test in O(1) — the whole rule is one
  // O(m) scan for the precedes-minimum crossing edge, no BFS.
  // include_self lets the (re-weighted) cut edge itself compete.
  EdgeId best_cut_edge(EdgeId cut_edge, const EdgeMap<W>& w,
                       bool include_self) const {
    const Graph::Edge& cut = graph_->edge(cut_edge);
    const NodeId child =
        parent_edge_[cut.u] == cut_edge ? cut.u : cut.v;
    const TreeRouter& r = *router_;
    EdgeId best = kInvalidEdge;
    for (EdgeId f = 0; f < graph_->edge_count(); ++f) {
      if (f == cut_edge && !include_self) continue;
      if (alg_.is_phi(w[f])) continue;
      const Graph::Edge& ef = graph_->edge(f);
      if (r.in_subtree(child, ef.u) == r.in_subtree(child, ef.v)) continue;
      if (best == kInvalidEdge || precedes(f, best, w)) best = f;
    }
    return best;
  }

  // Cycle rule: e joins iff it precedes the precedes-maximum edge on the
  // tree path between its endpoints (that edge then leaves).
  ChurnRepairKind try_cycle_insert(EdgeId e, const EdgeMap<W>& w) {
    NodeId a = graph_->edge(e).u;
    NodeId b = graph_->edge(e).v;
    EdgeId max_edge = kInvalidEdge;
    const auto consider = [&](EdgeId f) {
      if (max_edge == kInvalidEdge || precedes(max_edge, f, w)) max_edge = f;
    };
    while (a != b) {
      if (depth_[a] < depth_[b]) std::swap(a, b);
      consider(parent_edge_[a]);
      a = parent_[a];
    }
    if (max_edge == kInvalidEdge || !precedes(e, max_edge, w)) {
      return ChurnRepairKind::kNoop;
    }
    swap_edges(max_edge, e, w);
    return ChurnRepairKind::kSwap;
  }

  const A alg_;
  const Graph* graph_;
  NodeId root_;
  std::vector<EdgeId> tree_edges_;  // sorted by `precedes` on current w
  std::vector<bool> in_tree_;
  std::vector<NodeId> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<std::uint32_t> depth_;
  std::optional<TreeRouter> router_;  // rebuilt whenever the tree changes
};

}  // namespace cpr
