// Preferred spanning trees (Lemma 1, constructive direction).
//
// For a monotone and selective algebra, taking edges in non-decreasing
// ⪯-order and adding each edge that closes no cycle yields a spanning tree
// whose unique in-tree s–t path is a preferred s–t path for *every* pair —
// the algebra "maps to a tree". (This is the Kruskal construction from the
// proof; for widest path it degenerates to the maximum-capacity spanning
// tree, and the Spanning Tree Protocol footnote is the usable-path case.)
// Routing over the tree then needs only Θ(log n) bits per node via the
// tree router, which is how Theorem 1's compressibility is realized.
#pragma once

#include "algebra/algebra.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace cpr {

template <RoutingAlgebra A>
std::vector<EdgeId> preferred_spanning_tree(
    const A& alg, const Graph& g, const EdgeMap<typename A::Weight>& w) {
  std::vector<EdgeId> order(g.edge_count());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return alg.less(w[a], w[b]);  // ties keep edge-id order (deterministic)
  });
  UnionFind uf(g.node_count());
  std::vector<EdgeId> tree;
  tree.reserve(g.node_count() > 0 ? g.node_count() - 1 : 0);
  for (EdgeId e : order) {
    if (uf.unite(g.edge(e).u, g.edge(e).v)) tree.push_back(e);
  }
  return tree;
}

// The tree as a rooted topology: parents, children lists, and the subgraph
// restricted to tree edges. Input edges must form a spanning tree of g.
struct RootedTree {
  NodeId root = 0;
  std::vector<NodeId> parent;        // parent[root] == root
  std::vector<EdgeId> parent_edge;   // edge id in the host graph
  std::vector<std::vector<NodeId>> children;
  std::vector<std::size_t> subtree_size;

  static RootedTree from_edges(const Graph& g,
                               const std::vector<EdgeId>& tree_edges,
                               NodeId root = 0);
};

class ThreadPool;

// One rooted view per requested root, built in parallel (each root is an
// independent BFS over the same edge set, writing only its own slot — the
// result is identical to calling from_edges per root sequentially). This
// is how the multi-root tree-router and ablation experiments amortize
// forest construction. Pass nullptr to use the process-global pool.
std::vector<RootedTree> rooted_forest(const Graph& g,
                                      const std::vector<EdgeId>& tree_edges,
                                      const std::vector<NodeId>& roots,
                                      ThreadPool* pool = nullptr);

}  // namespace cpr
