// Asynchronous path-vector protocol simulation.
//
// The paper's Section-5 model is the path-vector protocol family (BGP):
// weights compose destination→source as routes are advertised hop by hop.
// The fixed-point solver in routing/path_vector.hpp computes *what* such a
// protocol converges to; this module simulates *how*: a discrete-event,
// message-passing execution in which every node keeps per-neighbor Adj-RIB
// state, reselects its best route on each update, and re-advertises on
// change, with randomized per-message delays. For monotone algebras the
// execution converges to the same routes as the synchronous fixed point
// regardless of message timing (the tests check this across seeds), which
// is the operational meaning of Sobrinho's correctness results.
//
// Link failures can be injected mid-execution: the adjacent nodes flush
// the neighbor's Adj-RIB entry and implicit withdrawals propagate through
// reselection. The simulator counts messages and events, giving the
// convergence-cost series reported by bench_protocol.
#pragma once

#include "algebra/algebra.hpp"
#include "graph/digraph.hpp"
#include "routing/path.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <queue>
#include <vector>

namespace cpr {

struct ProtocolOptions {
  // Messages are delivered after a uniform delay in [min_delay,
  // max_delay] simulated time units — asynchrony comes from the jitter.
  double min_delay = 1.0;
  double max_delay = 4.0;
  // Abort threshold: executions that exceed this many delivered messages
  // are reported as non-converged (oscillation guard).
  std::size_t max_events = 1'000'000;
};

struct LinkFailure {
  double time;   // when the arc pair disappears
  ArcId arc;     // either direction of the pair
};

template <typename W>
struct ProtocolResult {
  bool converged = false;
  std::size_t messages_delivered = 0;
  double convergence_time = 0;  // time of the last processed event
  // Final selected route per node (empty path = no route).
  std::vector<NodePath> path;
  std::vector<std::optional<W>> weight;
  // Per node: total nodes stored across Adj-RIB-In paths for this
  // destination — the raw protocol state a real router carries, which the
  // benches compare against the compact schemes' footprints.
  std::vector<std::size_t> rib_path_nodes;

  bool has_route(NodeId v) const { return !path[v].empty(); }
};

template <RoutingAlgebra A>
class PathVectorProtocol {
 public:
  using W = typename A::Weight;

  PathVectorProtocol(const A& alg, const Digraph& g, const ArcMap<W>& w)
      : alg_(alg), graph_(&g), weights_(&w) {}

  // Runs the protocol to convergence (empty event queue) for one
  // destination. Failures must be sorted by time.
  ProtocolResult<W> run(NodeId destination, Rng& rng,
                        const ProtocolOptions& opt = {},
                        const std::vector<LinkFailure>& failures = {}) {
    const std::size_t n = graph_->node_count();
    destination_ = destination;
    alive_.assign(graph_->arc_count(), true);
    channel_clear_.assign(graph_->arc_count(), 0.0);
    adj_rib_.assign(n, {});
    selected_path_.assign(n, {});
    selected_weight_.assign(n, std::nullopt);
    selected_path_[destination] = {destination};

    events_ = {};
    seq_ = 0;
    // The destination announces itself to all neighbors at t = 0
    // (advertisements travel on the arc advertiser → receiver).
    for (ArcId a : graph_->out_arcs(destination)) {
      schedule(rng, opt, 0.0, a, {destination}, std::nullopt);
    }
    for (const LinkFailure& f : failures) {
      events_.push(Event{f.time, seq_++, Event::kFail, f.arc, {}, {}});
    }

    ProtocolResult<W> result;
    result.path.assign(n, {});
    result.weight.assign(n, std::nullopt);

    std::size_t delivered = 0;
    double now = 0;
    while (!events_.empty()) {
      const Event ev = events_.top();
      events_.pop();
      now = ev.time;
      if (ev.kind == Event::kFail) {
        fail_arc(ev.arc, rng, opt, now);
        continue;
      }
      if (++delivered > opt.max_events) {
        result.messages_delivered = delivered;
        return result;  // converged stays false: oscillation guard
      }
      deliver(ev, rng, opt, now);
    }

    result.converged = true;
    result.messages_delivered = delivered;
    result.convergence_time = now;
    result.path = selected_path_;
    result.weight = selected_weight_;
    result.path[destination] = {destination};
    result.rib_path_nodes.assign(n, 0);
    for (NodeId u = 0; u < n; ++u) {
      for (const auto& [neighbor, entry] : adj_rib_[u]) {
        result.rib_path_nodes[u] += entry.first.size();
      }
    }
    return result;
  }

  // Runs one execution per destination (independent seeds derived from
  // `rng`) and returns the per-destination results — the whole-protocol
  // view used to compare total BGP state against the compact schemes.
  std::vector<ProtocolResult<W>> run_all_destinations(
      Rng& rng, const ProtocolOptions& opt = {}) {
    std::vector<ProtocolResult<W>> out;
    out.reserve(graph_->node_count());
    for (NodeId t = 0; t < graph_->node_count(); ++t) {
      Rng per_destination(rng.uniform(0, ~0ull));
      out.push_back(run(t, per_destination, opt));
    }
    return out;
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // deterministic FIFO tie-break
    enum Kind { kUpdate, kFail } kind;
    ArcId arc;               // the arc the message travels on (to -> from
                             // of the advertisement), or the failing arc
    NodePath advertised;     // advertised path (empty = withdrawal)
    std::optional<W> advertised_weight;

    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  void schedule(Rng& rng, const ProtocolOptions& opt, double now, ArcId arc,
                NodePath path, std::optional<W> weight) {
    const double delay =
        opt.min_delay + rng.real() * (opt.max_delay - opt.min_delay);
    // Channels are FIFO (BGP runs over TCP): a later advertisement on the
    // same arc must not overtake an earlier one, or receivers would pin
    // stale routes forever.
    const double at = std::max(now + delay, channel_clear_[arc] + 1e-9);
    channel_clear_[arc] = at;
    events_.push(
        Event{at, seq_++, Event::kUpdate, arc, std::move(path),
              std::move(weight)});
  }

  // An advertisement from arc.from's owner... the advertisement travels
  // along `arc`: arc.from is the advertiser, arc.to the receiver.
  void deliver(const Event& ev, Rng& rng, const ProtocolOptions& opt,
               double now) {
    if (!alive_[ev.arc]) return;  // the link died while in flight
    const NodeId from = graph_->arc(ev.arc).from;
    const NodeId to = graph_->arc(ev.arc).to;
    if (to == destination_) return;
    if (ev.advertised.empty()) {
      adj_rib_[to].erase(from);
    } else {
      adj_rib_[to][from] = {ev.advertised, ev.advertised_weight};
    }
    reselect(to, rng, opt, now);
  }

  void fail_arc(ArcId arc, Rng& rng, const ProtocolOptions& opt,
                double now) {
    const ArcId rev = graph_->reverse(arc);
    if (!alive_[arc] && !alive_[rev]) return;
    alive_[arc] = alive_[rev] = false;
    const NodeId u = graph_->arc(arc).from;
    const NodeId v = graph_->arc(arc).to;
    if (u != destination_) {
      adj_rib_[u].erase(v);
      reselect(u, rng, opt, now);
    }
    if (v != destination_) {
      adj_rib_[v].erase(u);
      reselect(v, rng, opt, now);
    }
  }

  void reselect(NodeId u, Rng& rng, const ProtocolOptions& opt, double now) {
    NodePath best_path;
    std::optional<W> best_weight;
    for (ArcId a : graph_->out_arcs(u)) {
      if (!alive_[a]) continue;
      const NodeId v = graph_->arc(a).to;
      const auto it = adj_rib_[u].find(v);
      if (it == adj_rib_[u].end()) continue;
      const auto& [via_path, via_weight] = it->second;
      if (std::find(via_path.begin(), via_path.end(), u) != via_path.end()) {
        continue;  // loop suppression
      }
      const W cand_weight = via_weight.has_value()
                                ? alg_.combine((*weights_)[a], *via_weight)
                                : (*weights_)[a];
      if (alg_.is_phi(cand_weight)) continue;
      NodePath cand_path;
      cand_path.reserve(via_path.size() + 1);
      cand_path.push_back(u);
      cand_path.insert(cand_path.end(), via_path.begin(), via_path.end());
      if (!best_weight.has_value() ||
          tie_break_better(alg_, cand_weight, cand_path, *best_weight,
                           best_path)) {
        best_weight = cand_weight;
        best_path = std::move(cand_path);
      }
    }
    const bool changed = best_path != selected_path_[u];
    if (!changed) return;
    selected_path_[u] = best_path;
    selected_weight_[u] = best_weight;
    // Advertise the new selection (or withdraw) to every live neighbor.
    for (ArcId a : graph_->out_arcs(u)) {
      if (!alive_[a]) continue;
      schedule(rng, opt, now, a, selected_path_[u], selected_weight_[u]);
    }
  }

  const A alg_;
  const Digraph* graph_;
  const ArcMap<W>* weights_;
  NodeId destination_ = kInvalidNode;

  std::vector<bool> alive_;
  std::vector<double> channel_clear_;  // per-arc FIFO watermark
  std::vector<std::map<NodeId, std::pair<NodePath, std::optional<W>>>>
      adj_rib_;
  std::vector<NodePath> selected_path_;
  std::vector<std::optional<W>> selected_weight_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t seq_ = 0;
};

}  // namespace cpr
