// Additional routing algebras beyond the Table-1 set: the hop-count
// metric, real-valued additive costs, and the generic "capped" operator
// that turns any delimited algebra into a *non-delimited* one by declaring
// weights beyond a budget untraversable (bounded-delay routing, the
// classic QoS constraint from the constraint-based-routing literature the
// paper cites). Capped algebras are the clean intra-domain illustration of
// the Section-4.1 pitfall: they can be perfectly regular and still break
// the stretch-3 machinery, because w(p*)³ may be φ — a "stretched" path
// may simply not exist.
#pragma once

#include "algebra/algebra.hpp"

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <utility>

namespace cpr {

// Hop count: shortest path with the unit weight only. The one-element
// weight set makes it condensed-free but cancellative; it is the minimal
// strictly monotone algebra (the cyclic semigroup ⟨1⟩ of Lemma 2 itself).
class HopCount {
 public:
  using Weight = std::uint64_t;  // number of hops; 0 is unused

  Weight combine(Weight a, Weight b) const {
    if (is_phi(a) || is_phi(b)) return phi();
    return a > phi() - b ? phi() : a + b;
  }
  bool less(Weight a, Weight b) const { return a < b; }
  Weight phi() const { return std::numeric_limits<Weight>::max(); }
  bool is_phi(Weight w) const { return w == phi(); }
  Weight sample(Rng&) const { return 1; }  // every edge is one hop
  std::size_t encoded_bits(Weight) const { return 1; }
  std::string name() const { return "hop-count"; }
  std::string to_string(Weight w) const {
    return is_phi(w) ? "phi" : std::to_string(w);
  }
  AlgebraProperties properties() const {
    AlgebraProperties p;
    p.monotone = true;
    p.isotone = true;
    p.strictly_monotone = true;
    p.cancellative = true;
    p.delimited = true;
    return p;
  }
};

// Additive real-valued cost (propagation delay in ms, monetary cost, …).
// Samples are drawn from the dyadic grid k/8 so that sums of sampled
// weights compare exactly in double and the property checker is not
// misled by rounding.
class RealCost {
 public:
  using Weight = double;

  explicit RealCost(double max_sample = 8.0) : max_sample_(max_sample) {}

  Weight combine(Weight a, Weight b) const {
    if (is_phi(a) || is_phi(b)) return phi();
    return a + b;
  }
  bool less(Weight a, Weight b) const { return a < b; }
  Weight phi() const { return std::numeric_limits<double>::infinity(); }
  bool is_phi(Weight w) const { return w == phi(); }
  Weight sample(Rng& rng) const {
    const auto steps = static_cast<std::uint64_t>(max_sample_ * 8.0);
    return static_cast<double>(rng.uniform(1, steps)) / 8.0;
  }
  std::size_t encoded_bits(Weight) const { return 64; }
  std::string name() const { return "real-cost"; }
  std::string to_string(Weight w) const {
    if (is_phi(w)) return "phi";
    std::ostringstream out;
    out << w;
    return out.str();
  }
  AlgebraProperties properties() const {
    AlgebraProperties p;
    p.monotone = true;
    p.isotone = true;
    p.strictly_monotone = true;
    p.cancellative = true;
    p.delimited = true;
    return p;
  }

 private:
  double max_sample_;
};

// Capped algebra: the root algebra with every composed weight worse than
// `budget` collapsed to φ. CappedAlgebra<ShortestPath> with budget D is
// bounded-delay routing: a path is traversable only if its total delay
// stays within D.
//
// Property algebra: monotonicity, strict monotonicity and isotonicity
// survive the cap (collapsing the top of a chain to the maximal element
// preserves order relations); delimitedness is destroyed by design; and
// cancellativity is lost as soon as two sums land above the cap.
template <RoutingAlgebra A>
class CappedAlgebra {
 public:
  using Weight = typename A::Weight;

  CappedAlgebra(A root, Weight budget)
      : root_(std::move(root)), budget_(budget) {}

  const A& root() const { return root_; }
  const Weight& budget() const { return budget_; }

  Weight combine(const Weight& a, const Weight& b) const {
    const Weight c = root_.combine(a, b);
    return root_.less(budget_, c) ? root_.phi() : c;
  }
  bool less(const Weight& a, const Weight& b) const {
    return root_.less(a, b);
  }
  Weight phi() const { return root_.phi(); }
  bool is_phi(const Weight& w) const { return root_.is_phi(w); }

  Weight sample(Rng& rng) const {
    // Single-edge weights must be traversable on their own.
    for (int tries = 0; tries < 4096; ++tries) {
      Weight w = root_.sample(rng);
      if (!root_.less(budget_, w)) return w;
    }
    return budget_;
  }

  std::size_t encoded_bits(const Weight& w) const {
    return root_.encoded_bits(w);
  }
  std::string name() const {
    return root_.name() + " capped at " + root_.to_string(budget_);
  }
  std::string to_string(const Weight& w) const { return root_.to_string(w); }

  AlgebraProperties properties() const {
    AlgebraProperties p = root_.properties();
    p.delimited = false;      // the whole point of the cap
    p.cancellative = false;   // x⊕y = x⊕y' = φ with y ≠ y'
    // The SM-subalgebra trigger of Theorem 2 needs *delimited* strict
    // monotonicity; the cap breaks the premise, so do not advertise it.
    p.sm_subalgebra = false;
    return p;
  }

 private:
  A root_;
  Weight budget_;
};

template <RoutingAlgebra A>
CappedAlgebra<A> capped(A root, typename A::Weight budget) {
  return CappedAlgebra<A>(std::move(root), budget);
}

static_assert(RoutingAlgebra<HopCount>);
static_assert(RoutingAlgebra<RealCost>);

}  // namespace cpr
