// Empirical validation of algebra axioms and property flags.
//
// Every algebra in the library *claims* a set of property flags
// (Definition 1 and the M/I/SM/S/N/C/D list); this checker exercises the
// claims on sampled finite weights: semigroup axioms (closure,
// associativity, commutativity), order axioms (irreflexivity of ≺,
// transitivity, totality), φ-compatibility (absorptivity, maximality) and
// the seven classification properties. A property verified on samples is
// of course not proven, but a single counterexample *disproves* a claim —
// and the unit tests require zero counterexamples across large sweeps,
// which is how the Proposition-1 product rules are exercised (experiment
// E11 in DESIGN.md).
#pragma once

#include "algebra/algebra.hpp"

#include <string>
#include <vector>

namespace cpr {

struct PropertyReport {
  // Axioms.
  bool associative = true;
  bool commutative = true;
  bool order_irreflexive = true;
  bool order_transitive = true;
  bool order_total = true;  // trivially holds for a strict weak order test
  bool absorptive = true;
  bool phi_maximal = true;
  // Classification properties (observed on samples).
  bool monotone = true;
  bool isotone = true;
  bool strictly_monotone = true;
  bool selective = true;
  bool cancellative = true;
  bool condensed = true;
  bool delimited = true;

  std::vector<std::string> counterexamples;

  bool axioms_hold() const {
    return associative && commutative && order_irreflexive &&
           order_transitive && order_total && absorptive && phi_maximal;
  }
};

std::string describe(const PropertyReport& r);

// Checks that the empirical observations are consistent with the claimed
// flags: every claimed-true property must be observed true (claimed-false
// properties may still hold on the sample — absence of a counterexample is
// not evidence of absence). Returns a list of violated claims.
std::vector<std::string> validate_claims(const AlgebraProperties& claimed,
                                         const PropertyReport& observed);

namespace detail {
std::string violation(const std::string& property, const std::string& a,
                      const std::string& b, const std::string& c);
}  // namespace detail

template <RoutingAlgebra A>
PropertyReport check_properties(const A& alg,
                                const std::vector<typename A::Weight>& ws) {
  using W = typename A::Weight;
  PropertyReport r;
  auto note = [&](const char* prop, const W& a, const W& b, const W& c,
                  bool have_c = true) {
    if (r.counterexamples.size() < 32) {
      r.counterexamples.push_back(detail::violation(
          prop, alg.to_string(a), alg.to_string(b),
          have_c ? alg.to_string(c) : std::string{}));
    }
  };
  const W phi = alg.phi();

  for (const W& a : ws) {
    if (alg.less(a, a)) {
      r.order_irreflexive = false;
      note("irreflexivity (w ≺ w)", a, a, a, false);
    }
    if (!alg.is_phi(a)) {
      if (!alg.less(a, phi)) {
        r.phi_maximal = false;
        note("maximality (w ≺ phi)", a, phi, a, false);
      }
    }
    if (!alg.is_phi(alg.combine(a, phi)) ||
        !alg.is_phi(alg.combine(phi, a))) {
      r.absorptive = false;
      note("absorptivity (w ⊕ phi = phi)", a, phi, a, false);
    }
  }

  for (const W& a : ws) {
    for (const W& b : ws) {
      const W ab = alg.combine(a, b);
      const W ba = alg.combine(b, a);
      if (!order_equal(alg, ab, ba)) {
        r.commutative = false;
        note("commutativity", a, b, ab, false);
      }
      if (alg.is_phi(ab)) {
        r.delimited = false;
        note("delimitedness (w1 ⊕ w2 = phi)", a, b, ab, false);
      }
      // M: a ⪯ b ⊕ a.
      if (alg.less(alg.combine(b, a), a)) {
        r.monotone = false;
        note("monotonicity (b ⊕ a ≺ a)", a, b, ab, false);
      }
      // SM: a ≺ b ⊕ a.
      if (!alg.less(a, alg.combine(b, a))) {
        r.strictly_monotone = false;
      }
      // S: a ⊕ b ∈ {a, b} (up to order-equality).
      if (!order_equal(alg, ab, a) && !order_equal(alg, ab, b)) {
        r.selective = false;
        note("selectivity (a ⊕ b ∉ {a,b})", a, b, ab);
      }
    }
  }

  for (const W& a : ws) {
    for (const W& b : ws) {
      for (const W& c : ws) {
        const W ab_c = alg.combine(alg.combine(a, b), c);
        const W a_bc = alg.combine(a, alg.combine(b, c));
        if (!order_equal(alg, ab_c, a_bc)) {
          r.associative = false;
          note("associativity", a, b, c);
        }
        // Order transitivity on ≺.
        if (alg.less(a, b) && alg.less(b, c) && !alg.less(a, c)) {
          r.order_transitive = false;
          note("transitivity of ≺", a, b, c);
        }
        // I: a ⪯ b ⇒ c⊕a ⪯ c⊕b.
        if (leq(alg, a, b) &&
            alg.less(alg.combine(c, b), alg.combine(c, a))) {
          r.isotone = false;
          note("isotonicity (a ⪯ b but c⊕b ≺ c⊕a)", a, b, c);
        }
        // N: a⊕b = a⊕c ⇒ b = c.
        if (order_equal(alg, alg.combine(a, b), alg.combine(a, c)) &&
            !order_equal(alg, b, c)) {
          r.cancellative = false;
        }
        // C: a⊕b = a⊕c for all.
        if (!order_equal(alg, alg.combine(a, b), alg.combine(a, c))) {
          r.condensed = false;
        }
      }
    }
  }
  return r;
}

// Convenience: draw `count` finite samples from the algebra itself.
template <RoutingAlgebra A>
PropertyReport check_properties_sampled(const A& alg, Rng& rng,
                                        std::size_t count = 24) {
  std::vector<typename A::Weight> ws;
  ws.reserve(count);
  for (std::size_t i = 0; i < count; ++i) ws.push_back(alg.sample(rng));
  return check_properties(alg, ws);
}

}  // namespace cpr
