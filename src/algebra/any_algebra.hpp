// Type-erased routing algebras.
//
// The template layer gives zero-cost composition but fixes the policy at
// compile time; AnyAlgebra erases the type so policies can be chosen at
// runtime (configuration files, the policy-expression parser, the
// policy_explorer example). AnyAlgebra itself satisfies RoutingAlgebra,
// so the *same* generic machinery — LexProduct, CappedAlgebra, Dijkstra,
// schemes, the property checker — composes over erased algebras without
// any parallel implementation:
//
//   AnyAlgebra a = AnyAlgebra::wrap(ShortestPath{});
//   AnyAlgebra b = AnyAlgebra::wrap(WidestPath{});
//   AnyAlgebra ws = AnyAlgebra::wrap(lex_product(a, b));   // S × W, erased
//
// Weights are held in std::any behind a value wrapper; every operation
// dispatches through one virtual call.
#pragma once

#include "algebra/algebra.hpp"

#include <any>
#include <memory>
#include <stdexcept>
#include <string>

namespace cpr {

class AnyWeight {
 public:
  AnyWeight() = default;
  explicit AnyWeight(std::any v) : value_(std::move(v)) {}

  template <typename T>
  const T& as() const {
    return std::any_cast<const T&>(value_);
  }
  bool empty() const { return !value_.has_value(); }

 private:
  std::any value_;
};

class AnyAlgebra {
 public:
  using Weight = AnyWeight;

  AnyAlgebra() = default;

  template <RoutingAlgebra A>
  static AnyAlgebra wrap(A alg) {
    AnyAlgebra out;
    out.impl_ = std::make_shared<Model<A>>(std::move(alg));
    return out;
  }

  Weight combine(const Weight& a, const Weight& b) const {
    return impl_->combine(a, b);
  }
  bool less(const Weight& a, const Weight& b) const {
    return impl_->less(a, b);
  }
  Weight phi() const { return impl_->phi(); }
  bool is_phi(const Weight& w) const { return impl_->is_phi(w); }
  Weight sample(Rng& rng) const { return impl_->sample(rng); }
  std::size_t encoded_bits(const Weight& w) const {
    return impl_->encoded_bits(w);
  }
  std::string name() const { return impl_->name(); }
  std::string to_string(const Weight& w) const {
    return impl_->to_string(w);
  }
  AlgebraProperties properties() const { return impl_->properties(); }

  // Builds a weight from an integer literal (used by the policy parser
  // for capped(...) budgets). Throws if the underlying weight type has no
  // integer interpretation.
  Weight weight_from_integer(std::uint64_t v) const {
    return impl_->weight_from_integer(v);
  }

  bool valid() const { return impl_ != nullptr; }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual AnyWeight combine(const AnyWeight&, const AnyWeight&) const = 0;
    virtual bool less(const AnyWeight&, const AnyWeight&) const = 0;
    virtual AnyWeight phi() const = 0;
    virtual bool is_phi(const AnyWeight&) const = 0;
    virtual AnyWeight sample(Rng&) const = 0;
    virtual std::size_t encoded_bits(const AnyWeight&) const = 0;
    virtual std::string name() const = 0;
    virtual std::string to_string(const AnyWeight&) const = 0;
    virtual AlgebraProperties properties() const = 0;
    virtual AnyWeight weight_from_integer(std::uint64_t) const = 0;
  };

  template <typename A>
  struct Model final : Concept {
    explicit Model(A a) : alg(std::move(a)) {}
    using W = typename A::Weight;

    AnyWeight combine(const AnyWeight& a, const AnyWeight& b) const override {
      return AnyWeight{std::any{alg.combine(a.as<W>(), b.as<W>())}};
    }
    bool less(const AnyWeight& a, const AnyWeight& b) const override {
      return alg.less(a.as<W>(), b.as<W>());
    }
    AnyWeight phi() const override { return AnyWeight{std::any{alg.phi()}}; }
    bool is_phi(const AnyWeight& w) const override {
      return alg.is_phi(w.as<W>());
    }
    AnyWeight sample(Rng& rng) const override {
      return AnyWeight{std::any{alg.sample(rng)}};
    }
    std::size_t encoded_bits(const AnyWeight& w) const override {
      return alg.encoded_bits(w.as<W>());
    }
    std::string name() const override { return alg.name(); }
    std::string to_string(const AnyWeight& w) const override {
      return alg.to_string(w.as<W>());
    }
    AlgebraProperties properties() const override { return alg.properties(); }
    AnyWeight weight_from_integer(std::uint64_t v) const override {
      if constexpr (std::is_integral_v<W> || std::is_floating_point_v<W>) {
        return AnyWeight{std::any{static_cast<W>(v)}};
      } else if constexpr (requires {
                             {
                               alg.root().weight_from_integer(v)
                             } -> std::convertible_to<W>;
                           }) {
        // Wrappers over an erased algebra (e.g. CappedAlgebra<AnyAlgebra>)
        // delegate to the inner algebra's interpretation.
        return AnyWeight{std::any{alg.root().weight_from_integer(v)}};
      } else {
        throw std::invalid_argument(
            alg.name() + ": weights have no integer interpretation");
      }
    }

    A alg;
  };

  std::shared_ptr<const Concept> impl_;
};

static_assert(RoutingAlgebra<AnyAlgebra>);

}  // namespace cpr
