// Type-erased routing algebras.
//
// The template layer gives zero-cost composition but fixes the policy at
// compile time; AnyAlgebra erases the type so policies can be chosen at
// runtime (configuration files, the policy-expression parser, the
// policy_explorer example). AnyAlgebra itself satisfies RoutingAlgebra,
// so the *same* generic machinery — LexProduct, CappedAlgebra, Dijkstra,
// schemes, the property checker — composes over erased algebras without
// any parallel implementation:
//
//   AnyAlgebra a = AnyAlgebra::wrap(ShortestPath{});
//   AnyAlgebra b = AnyAlgebra::wrap(WidestPath{});
//   AnyAlgebra ws = AnyAlgebra::wrap(lex_product(a, b));   // S × W, erased
//
// Weights are held behind a value wrapper with a small-buffer-optimized
// variant store: trivially-copyable weights of at most 16 bytes (every
// Table 1 primitive, integer/double lex pairs, the BGP label enums) live
// inline in the wrapper, so combine/less on erased policies allocate
// nothing; anything bigger or non-trivial falls back to std::any. Every
// operation dispatches through one virtual call either way.
#pragma once

#include "algebra/algebra.hpp"

#include <any>
#include <cstring>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <typeinfo>
#include <utility>

namespace cpr {

class AnyWeight {
 public:
  static constexpr std::size_t kInlineBytes = 16;

  template <typename T>
  static constexpr bool fits_inline =
      std::is_trivially_copyable_v<T> && sizeof(T) <= kInlineBytes &&
      alignof(T) <= alignof(std::max_align_t);

  AnyWeight() = default;
  // Boxed construction from a pre-made std::any (external callers that
  // already hold one); prefer `of` which picks the inline store. The
  // constraint keeps this candidate out of is_constructible queries for
  // other argument types — without it, converting-to-std::any would ask
  // whether AnyWeight is copy-constructible while that very trait is
  // being computed (infinite recursion).
  template <typename T>
    requires std::is_same_v<std::decay_t<T>, std::any>
  explicit AnyWeight(T&& v)
      : boxed_(std::forward<T>(v)), kind_(boxed_.has_value() ? kBoxed : kEmpty) {}

  // Wraps a weight value, inline when the type qualifies.
  template <typename T>
  static AnyWeight of(T v) {
    AnyWeight w;
    if constexpr (fits_inline<T>) {
      new (static_cast<void*>(w.inline_)) T(std::move(v));
      w.type_ = &typeid(T);
      w.kind_ = kInline;
    } else {
      w.boxed_ = std::move(v);
      w.kind_ = kBoxed;
    }
    return w;
  }

  template <typename T>
  const T& as() const {
    if (kind_ == kInline) {
      if (type_ != &typeid(T) && *type_ != typeid(T)) {
        throw std::bad_any_cast{};
      }
      return *std::launder(reinterpret_cast<const T*>(inline_));
    }
    return std::any_cast<const T&>(boxed_);
  }
  bool empty() const { return kind_ == kEmpty; }

 private:
  enum Kind : std::uint8_t { kEmpty, kInline, kBoxed };

  // Inline slot first for alignment; only trivially-copyable payloads land
  // here, so the defaulted copy/move of the byte array is their copy.
  alignas(std::max_align_t) unsigned char inline_[kInlineBytes] = {};
  const std::type_info* type_ = nullptr;
  std::any boxed_;
  Kind kind_ = kEmpty;
};

class AnyAlgebra {
 public:
  using Weight = AnyWeight;

  AnyAlgebra() = default;

  template <RoutingAlgebra A>
  static AnyAlgebra wrap(A alg) {
    AnyAlgebra out;
    out.impl_ = std::make_shared<Model<A>>(std::move(alg));
    return out;
  }

  Weight combine(const Weight& a, const Weight& b) const {
    return impl_->combine(a, b);
  }
  bool less(const Weight& a, const Weight& b) const {
    return impl_->less(a, b);
  }
  Weight phi() const { return impl_->phi(); }
  bool is_phi(const Weight& w) const { return impl_->is_phi(w); }
  Weight sample(Rng& rng) const { return impl_->sample(rng); }
  std::size_t encoded_bits(const Weight& w) const {
    return impl_->encoded_bits(w);
  }
  std::string name() const { return impl_->name(); }
  std::string to_string(const Weight& w) const {
    return impl_->to_string(w);
  }
  AlgebraProperties properties() const { return impl_->properties(); }

  // Builds a weight from an integer literal (used by the policy parser
  // for capped(...) budgets). Throws if the underlying weight type has no
  // integer interpretation.
  Weight weight_from_integer(std::uint64_t v) const {
    return impl_->weight_from_integer(v);
  }

  bool valid() const { return impl_ != nullptr; }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual AnyWeight combine(const AnyWeight&, const AnyWeight&) const = 0;
    virtual bool less(const AnyWeight&, const AnyWeight&) const = 0;
    virtual AnyWeight phi() const = 0;
    virtual bool is_phi(const AnyWeight&) const = 0;
    virtual AnyWeight sample(Rng&) const = 0;
    virtual std::size_t encoded_bits(const AnyWeight&) const = 0;
    virtual std::string name() const = 0;
    virtual std::string to_string(const AnyWeight&) const = 0;
    virtual AlgebraProperties properties() const = 0;
    virtual AnyWeight weight_from_integer(std::uint64_t) const = 0;
  };

  template <typename A>
  struct Model final : Concept {
    explicit Model(A a) : alg(std::move(a)) {}
    using W = typename A::Weight;

    AnyWeight combine(const AnyWeight& a, const AnyWeight& b) const override {
      return AnyWeight::of(alg.combine(a.as<W>(), b.as<W>()));
    }
    bool less(const AnyWeight& a, const AnyWeight& b) const override {
      return alg.less(a.as<W>(), b.as<W>());
    }
    AnyWeight phi() const override { return AnyWeight::of(alg.phi()); }
    bool is_phi(const AnyWeight& w) const override {
      return alg.is_phi(w.as<W>());
    }
    AnyWeight sample(Rng& rng) const override {
      return AnyWeight::of(alg.sample(rng));
    }
    std::size_t encoded_bits(const AnyWeight& w) const override {
      return alg.encoded_bits(w.as<W>());
    }
    std::string name() const override { return alg.name(); }
    std::string to_string(const AnyWeight& w) const override {
      return alg.to_string(w.as<W>());
    }
    AlgebraProperties properties() const override { return alg.properties(); }
    AnyWeight weight_from_integer(std::uint64_t v) const override {
      if constexpr (std::is_integral_v<W> || std::is_floating_point_v<W>) {
        return AnyWeight::of(static_cast<W>(v));
      } else if constexpr (requires {
                             {
                               alg.root().weight_from_integer(v)
                             } -> std::convertible_to<W>;
                           }) {
        // Wrappers over an erased algebra (e.g. CappedAlgebra<AnyAlgebra>)
        // delegate to the inner algebra's interpretation.
        return AnyWeight::of(alg.root().weight_from_integer(v));
      } else {
        throw std::invalid_argument(
            alg.name() + ": weights have no integer interpretation");
      }
    }

    A alg;
  };

  std::shared_ptr<const Concept> impl_;
};

static_assert(RoutingAlgebra<AnyAlgebra>);

}  // namespace cpr
