// Lexicographic product of routing algebras (Section 2.2).
//
// A × B composes weights componentwise and prefers by A's order with ties
// broken by B's order. Properties of the product are derived from the
// factors by Proposition 1 (Gurney & Griffin):
//
//   M(A×B)  ⇔ SM(A) ∨ (M(A) ∧ M(B))
//   I(A×B)  ⇔ I(A) ∧ I(B) ∧ (N(A) ∨ C(B))
//   SM(A×B) ⇔ SM(A) ∨ (M(A) ∧ SM(B))
//
// plus the direct rules D(A×B) = D(A) ∧ D(B), N(A×B) ⊇ N(A) ∧ N(B),
// C(A×B) ⊇ C(A) ∧ C(B). φ is the pair (φ_A, φ_B); as the paper notes this
// is only canonical when both factors are delimited, and we additionally
// treat any pair with an infinite component as untraversable (which is the
// natural reading for, e.g., a zero-capacity component in shortest-widest).
//
// The canonical instances are widest-shortest path WS = S × W and
// shortest-widest path SW = W × S (Table 1); SW is the paper's running
// example of a monotone, non-isotone algebra with no finite-stretch
// compact routing scheme (Theorem 4).
#pragma once

#include "algebra/algebra.hpp"

#include <string>
#include <utility>

namespace cpr {

template <RoutingAlgebra A, RoutingAlgebra B>
class LexProduct {
 public:
  using Weight = std::pair<typename A::Weight, typename B::Weight>;

  LexProduct() = default;
  LexProduct(A a, B b) : a_(std::move(a)), b_(std::move(b)) {}

  const A& first_factor() const { return a_; }
  const B& second_factor() const { return b_; }

  Weight combine(const Weight& x, const Weight& y) const {
    return {a_.combine(x.first, y.first), b_.combine(x.second, y.second)};
  }

  bool less(const Weight& x, const Weight& y) const {
    if (a_.less(x.first, y.first)) return true;
    if (a_.less(y.first, x.first)) return false;
    return b_.less(x.second, y.second);
  }

  Weight phi() const { return {a_.phi(), b_.phi()}; }

  bool is_phi(const Weight& w) const {
    return a_.is_phi(w.first) || b_.is_phi(w.second);
  }

  Weight sample(Rng& rng) const { return {a_.sample(rng), b_.sample(rng)}; }

  std::size_t encoded_bits(const Weight& w) const {
    return a_.encoded_bits(w.first) + b_.encoded_bits(w.second);
  }

  std::string name() const { return a_.name() + " x " + b_.name(); }

  std::string to_string(const Weight& w) const {
    return "(" + a_.to_string(w.first) + ", " + b_.to_string(w.second) + ")";
  }

  AlgebraProperties properties() const {
    const AlgebraProperties pa = a_.properties();
    const AlgebraProperties pb = b_.properties();
    AlgebraProperties p;
    p.monotone = pa.strictly_monotone || (pa.monotone && pb.monotone);
    p.isotone = pa.isotone && pb.isotone && (pa.cancellative || pb.condensed);
    p.strictly_monotone =
        pa.strictly_monotone || (pa.monotone && pb.strictly_monotone);
    p.delimited = pa.delimited && pb.delimited;
    p.cancellative = pa.cancellative && pb.cancellative;
    p.condensed = pa.condensed && pb.condensed;
    // A product of the factors' SM subalgebras is a subalgebra of the
    // product; the SM rule above then applies inside it.
    const bool sm_a = pa.strictly_monotone || pa.sm_subalgebra;
    const bool sm_b = pb.strictly_monotone || pb.sm_subalgebra;
    p.sm_subalgebra = sm_a || (pa.monotone && sm_b);
    p.right_associative_only =
        pa.right_associative_only || pb.right_associative_only;
    return p;
  }

 private:
  A a_;
  B b_;
};

// Table-1 composites.
template <RoutingAlgebra A, RoutingAlgebra B>
LexProduct<A, B> lex_product(A a, B b) {
  return LexProduct<A, B>(std::move(a), std::move(b));
}

}  // namespace cpr
