#include "algebra/property_check.hpp"

#include <sstream>

namespace cpr {

namespace detail {
std::string violation(const std::string& property, const std::string& a,
                      const std::string& b, const std::string& c) {
  std::ostringstream out;
  out << property << " violated at (" << a << ", " << b;
  if (!c.empty()) out << ", " << c;
  out << ")";
  return out.str();
}
}  // namespace detail

std::string describe(const PropertyReport& r) {
  std::ostringstream out;
  auto flag = [&](const char* label, bool v) {
    out << label << "=" << (v ? "yes" : "no") << " ";
  };
  out << "axioms: ";
  flag("assoc", r.associative);
  flag("comm", r.commutative);
  flag("irrefl", r.order_irreflexive);
  flag("trans", r.order_transitive);
  flag("absorb", r.absorptive);
  flag("phi-max", r.phi_maximal);
  out << "| properties: ";
  flag("M", r.monotone);
  flag("I", r.isotone);
  flag("SM", r.strictly_monotone);
  flag("S", r.selective);
  flag("N", r.cancellative);
  flag("C", r.condensed);
  flag("D", r.delimited);
  if (!r.counterexamples.empty()) {
    out << "\n  first counterexamples:";
    for (const auto& ce : r.counterexamples) out << "\n    " << ce;
  }
  return out.str();
}

std::vector<std::string> validate_claims(const AlgebraProperties& claimed,
                                         const PropertyReport& observed) {
  std::vector<std::string> violations;
  auto require = [&](const char* label, bool claim, bool obs) {
    if (claim && !obs) {
      violations.push_back(std::string("claimed ") + label +
                           " but found a counterexample");
    }
  };
  require("monotone", claimed.monotone, observed.monotone);
  require("isotone", claimed.isotone, observed.isotone);
  require("strictly monotone", claimed.strictly_monotone,
          observed.strictly_monotone);
  require("selective", claimed.selective, observed.selective);
  require("cancellative", claimed.cancellative, observed.cancellative);
  require("condensed", claimed.condensed, observed.condensed);
  require("delimited", claimed.delimited, observed.delimited);
  return violations;
}

}  // namespace cpr
