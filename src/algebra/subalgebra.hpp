// Subalgebras (Section 2.2): the restriction of A = (W, φ, ⊕, ⪯) to a
// ⊕-closed subset W' ⊆ W. Subalgebras inherit ⊕, ⪯ and φ; new properties
// may emerge on the smaller weight set (the paper's example: restricting
// the weakly monotone (N∪{0}, ∞, +, ≤) to positive weights makes it
// strictly monotone). Lemma 2 is stated in terms of subalgebras: an
// algebra is incompressible as soon as it *contains* a delimited strictly
// monotone subalgebra.
//
// The restriction is expressed as a sampling predicate: operations
// delegate to the root algebra, while sample() rejection-samples into W'.
// The caller declares the property flags that hold on W' (they are
// validated empirically by the checker, like every other claim).
#pragma once

#include "algebra/algebra.hpp"

#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

namespace cpr {

template <RoutingAlgebra A>
class Subalgebra {
 public:
  using Weight = typename A::Weight;
  using Predicate = std::function<bool(const A&, const Weight&)>;

  Subalgebra(A root, Predicate membership, AlgebraProperties claimed,
             std::string label)
      : root_(std::move(root)),
        member_(std::move(membership)),
        props_(claimed),
        label_(std::move(label)) {}

  const A& root() const { return root_; }
  bool contains(const Weight& w) const { return member_(root_, w); }

  Weight combine(const Weight& a, const Weight& b) const {
    return root_.combine(a, b);
  }
  bool less(const Weight& a, const Weight& b) const {
    return root_.less(a, b);
  }
  Weight phi() const { return root_.phi(); }
  bool is_phi(const Weight& w) const { return root_.is_phi(w); }

  Weight sample(Rng& rng) const {
    for (int tries = 0; tries < 4096; ++tries) {
      Weight w = root_.sample(rng);
      if (member_(root_, w)) return w;
    }
    throw std::runtime_error("Subalgebra::sample: predicate never satisfied");
  }

  std::size_t encoded_bits(const Weight& w) const {
    return root_.encoded_bits(w);
  }
  std::string name() const { return label_; }
  std::string to_string(const Weight& w) const { return root_.to_string(w); }
  AlgebraProperties properties() const { return props_; }

 private:
  A root_;
  Predicate member_;
  AlgebraProperties props_;
  std::string label_;
};

}  // namespace cpr
