// Table-driven finite routing algebras.
//
// A FiniteAlgebra is an algebra whose weight set is {0, …, k-1}, whose ⊕
// is an explicit k×k table, and whose ⪯ is a rank array — i.e. exactly
// the data a protocol designer would write down. Combined with the
// empirical property checker this turns the paper's classification
// program into a search tool: sample random composition tables, classify
// them (selective? monotone? strictly monotone?), and check the
// Lemma-1/Theorem-2 predictions instance by instance. bench_random_algebras
// runs that survey; test_finite_algebra pins the mechanics.
//
// Weight k (one past the table) is the infinity element φ; table entries
// may map finite pairs to φ, so non-delimited algebras are expressible.
#pragma once

#include "algebra/algebra.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace cpr {

class FiniteAlgebra {
 public:
  using Weight = std::uint8_t;

  // table is row-major k×k over values in {0..k} (k = φ); rank[i] orders
  // the finite weights (smaller rank = more preferred), must be a
  // permutation of {0..k-1}.
  FiniteAlgebra(std::vector<Weight> table, std::vector<Weight> rank,
                std::string label = "finite-algebra")
      : size_(rank.size()),
        table_(std::move(table)),
        rank_(std::move(rank)),
        label_(std::move(label)) {
    if (size_ == 0 || size_ > 200) {
      throw std::invalid_argument("FiniteAlgebra: size in [1, 200]");
    }
    if (table_.size() != size_ * size_) {
      throw std::invalid_argument("FiniteAlgebra: table must be k*k");
    }
    std::vector<bool> seen(size_, false);
    for (const Weight r : rank_) {
      if (r >= size_ || seen[r]) {
        throw std::invalid_argument("FiniteAlgebra: rank not a permutation");
      }
      seen[r] = true;
    }
    for (const Weight t : table_) {
      if (t > size_) {
        throw std::invalid_argument("FiniteAlgebra: table entry out of range");
      }
    }
  }

  // Convenience: the bottleneck table — combine keeps the *less preferred*
  // of the two weights (like widest path keeps the smaller capacity).
  // Selective, monotone, isotone, delimited. (Keeping the *more* preferred
  // weight instead would break monotonicity: prepending could improve a
  // path, which is why no such primitive is offered.)
  static FiniteAlgebra bottleneck(std::size_t k,
                                  std::string label = "finite-bottleneck");

  std::size_t size() const { return size_; }

  Weight combine(Weight a, Weight b) const {
    if (is_phi(a) || is_phi(b)) return phi();
    return table_[a * size_ + b];
  }
  bool less(Weight a, Weight b) const {
    if (a == b) return false;
    if (is_phi(b)) return true;
    if (is_phi(a)) return false;
    return rank_[a] < rank_[b];
  }
  Weight phi() const { return static_cast<Weight>(size_); }
  bool is_phi(Weight w) const { return w >= size_; }
  Weight sample(Rng& rng) const {
    return static_cast<Weight>(rng.index(size_));
  }
  std::size_t encoded_bits(Weight) const {
    std::size_t bits = 1;
    std::size_t v = size_;
    while (v >>= 1) ++bits;
    return bits;
  }
  std::string name() const { return label_; }
  std::string to_string(Weight w) const {
    return is_phi(w) ? "phi" : "w" + std::to_string(w);
  }
  // Flags are *not* statically known for arbitrary tables — callers run
  // the checker and use classify() below.
  AlgebraProperties properties() const { return claimed_; }
  void set_claimed_properties(const AlgebraProperties& p) { claimed_ = p; }

 private:
  std::size_t size_;
  std::vector<Weight> table_;
  std::vector<Weight> rank_;
  std::string label_;
  AlgebraProperties claimed_;
};

static_assert(RoutingAlgebra<FiniteAlgebra>);

// A random commutative composition table over k weights (with optional
// probability of φ entries for non-delimited samples). Commutativity and
// the identity rank order are imposed; associativity is NOT — callers
// filter with the property checker, mirroring how a designer would
// validate a hand-written policy. Valid algebras are *rare* among raw
// tables (the bench_random_algebras census quantifies how rare), so for
// theorem-level sweeps use random_structured_algebra below.
FiniteAlgebra random_finite_algebra(std::size_t k, double phi_probability,
                                    Rng& rng);

// A random member of the parametric families that are algebras by
// construction — bottleneck tables, (optionally capped) additive tables,
// and flattened lexicographic products of the two. The *classification*
// of each sample (selective? SM? delimited?) still comes from the
// exhaustive checker, so downstream theorem checks are not circular.
FiniteAlgebra random_structured_algebra(Rng& rng);

// Exhaustive classification of a finite algebra over its entire weight
// set (no sampling gap: for finite algebras the checker is a decision
// procedure). Returns the observed properties.
struct FiniteClassification {
  bool associative = false;
  bool commutative = false;
  AlgebraProperties observed;
};

FiniteClassification classify(const FiniteAlgebra& alg);

}  // namespace cpr
