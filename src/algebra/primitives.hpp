// The primitive intra-domain routing algebras of Table 1:
//
//   Shortest path    S = (N, ∞, +,   ≤)   SM, I, N, D      → Θ(n)
//   Widest path      W = (N, 0, min, ≥)   S, M, I, D       → Θ(log n)
//   Most reliable    R = ((0,1], 0, *, ≥) M, I, N, D, and a strictly
//                                         monotone subalgebra ((0,1),0,*,≥)
//                                                          → Θ(n)
//   Usable path      U = ({1}, 0, *, ≥)   S, M, I, N, C, D → Θ(log n)
//
// Each class carries its statically-claimed property flags; the empirical
// checker (property_check.hpp) cross-validates the claims on weight
// samples, and the unit tests assert the two agree.
#pragma once

#include "algebra/algebra.hpp"

#include <bit>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

namespace cpr {

// S = (N, ∞, +, ≤). Weights are positive integers (zero would break strict
// monotonicity); composition saturates instead of wrapping.
class ShortestPath {
 public:
  using Weight = std::uint64_t;

  explicit ShortestPath(Weight max_sample = 64) : max_sample_(max_sample) {}

  Weight combine(Weight a, Weight b) const {
    if (is_phi(a) || is_phi(b)) return phi();
    return a > phi() - b ? phi() : a + b;
  }
  bool less(Weight a, Weight b) const { return a < b; }
  // ≤ on weights is ≤ on the weights themselves: identity embedding.
  std::uint64_t order_key(Weight w) const { return w; }
  Weight weight_from_order_key(std::uint64_t k) const { return k; }
  Weight phi() const { return std::numeric_limits<Weight>::max(); }
  bool is_phi(Weight w) const { return w == phi(); }
  Weight sample(Rng& rng) const { return rng.uniform(1, max_sample_); }
  std::size_t encoded_bits(Weight w) const { return bit_width_of_weight(w); }
  std::string name() const { return "shortest-path"; }
  std::string to_string(Weight w) const {
    return is_phi(w) ? "phi" : std::to_string(w);
  }
  AlgebraProperties properties() const {
    AlgebraProperties p;
    p.monotone = true;
    p.isotone = true;
    p.strictly_monotone = true;
    p.cancellative = true;
    p.delimited = true;
    return p;
  }

 private:
  static std::size_t bit_width_of_weight(Weight w) {
    std::size_t bits = 1;
    while (w >>= 1) ++bits;
    return bits;
  }
  Weight max_sample_;
};

// W = (N, 0, min, ≥). Larger bottleneck capacity is preferred; φ = 0 means
// "no capacity at all" and absorbs under min.
class WidestPath {
 public:
  using Weight = std::uint64_t;

  explicit WidestPath(Weight max_sample = 64) : max_sample_(max_sample) {}

  Weight combine(Weight a, Weight b) const { return a < b ? a : b; }
  bool less(Weight a, Weight b) const { return a > b; }  // wider ≺ narrower
  // Preference is the *reverse* of numeric order: complement embeds it.
  std::uint64_t order_key(Weight w) const { return ~w; }
  Weight weight_from_order_key(std::uint64_t k) const { return ~k; }
  Weight phi() const { return 0; }
  bool is_phi(Weight w) const { return w == 0; }
  Weight sample(Rng& rng) const { return rng.uniform(1, max_sample_); }
  std::size_t encoded_bits(Weight w) const {
    std::size_t bits = 1;
    while (w >>= 1) ++bits;
    return bits;
  }
  std::string name() const { return "widest-path"; }
  std::string to_string(Weight w) const {
    return is_phi(w) ? "phi" : std::to_string(w);
  }
  AlgebraProperties properties() const {
    AlgebraProperties p;
    p.monotone = true;
    p.isotone = true;
    p.selective = true;
    p.delimited = true;
    return p;
  }

 private:
  Weight max_sample_;
};

// R = ((0,1], 0, *, ≥). Reliabilities multiply along a path; more reliable
// is preferred. Weakly monotone only (multiplying by 1 is neutral), but it
// contains the delimited strictly monotone subalgebra ((0,1), 0, *, ≥),
// which is what Lemma 2 needs for incompressibility.
//
// Samples are drawn from {1/64, 2/64, ..., 64/64} so that products of a
// handful of weights stay exactly representable in double and the property
// checker's equality tests are not fooled by rounding.
class MostReliablePath {
 public:
  using Weight = double;

  // allow_one=false restricts sampling to (0,1), i.e. the strictly
  // monotone subalgebra used in the Theorem-2 experiments.
  explicit MostReliablePath(bool allow_one = true) : allow_one_(allow_one) {}

  Weight combine(Weight a, Weight b) const { return a * b; }
  bool less(Weight a, Weight b) const { return a > b; }
  // Weights are non-negative doubles, whose IEEE-754 bit patterns sort
  // like the values; complement reverses into preference order. The
  // round trip is bit-exact, so reconstructed weights compose
  // identically.
  std::uint64_t order_key(Weight w) const {
    return ~std::bit_cast<std::uint64_t>(w);
  }
  Weight weight_from_order_key(std::uint64_t k) const {
    return std::bit_cast<double>(~k);
  }
  Weight phi() const { return 0.0; }
  bool is_phi(Weight w) const { return w == 0.0; }
  Weight sample(Rng& rng) const {
    const std::uint64_t hi = allow_one_ ? 64 : 63;
    return static_cast<double>(rng.uniform(1, hi)) / 64.0;
  }
  std::size_t encoded_bits(Weight) const { return 64; }
  std::string name() const {
    return allow_one_ ? "most-reliable-path" : "most-reliable-path-strict";
  }
  std::string to_string(Weight w) const {
    if (is_phi(w)) return "phi";
    std::ostringstream out;
    out << w;
    return out.str();
  }
  AlgebraProperties properties() const {
    AlgebraProperties p;
    p.monotone = true;
    p.isotone = true;
    p.cancellative = true;
    p.delimited = true;
    p.strictly_monotone = !allow_one_;
    p.sm_subalgebra = true;
    return p;
  }

 private:
  bool allow_one_;
};

// U = ({1}, 0, *, ≥). The single finite weight makes every traversable
// path equally preferred; this is the algebra of Ethernet-style usable-path
// routing and the target of Theorem 6's reduction. On a one-element weight
// set the algebra is simultaneously selective, condensed and cancellative.
class UsablePath {
 public:
  using Weight = std::uint8_t;  // 1 = usable, 0 = φ

  Weight combine(Weight a, Weight b) const {
    return (a != 0 && b != 0) ? 1 : 0;
  }
  bool less(Weight a, Weight b) const { return a > b; }  // usable ≺ φ
  std::uint64_t order_key(Weight w) const {
    return ~static_cast<std::uint64_t>(w);
  }
  Weight weight_from_order_key(std::uint64_t k) const {
    return static_cast<Weight>(~k);
  }
  Weight phi() const { return 0; }
  bool is_phi(Weight w) const { return w == 0; }
  Weight sample(Rng&) const { return 1; }
  std::size_t encoded_bits(Weight) const { return 1; }
  std::string name() const { return "usable-path"; }
  std::string to_string(Weight w) const { return w ? "1" : "phi"; }
  AlgebraProperties properties() const {
    AlgebraProperties p;
    p.monotone = true;
    p.isotone = true;
    p.selective = true;
    p.cancellative = true;
    p.condensed = true;
    p.delimited = true;
    return p;
  }
};

static_assert(RoutingAlgebra<ShortestPath>);
static_assert(RoutingAlgebra<WidestPath>);
static_assert(RoutingAlgebra<MostReliablePath>);
static_assert(RoutingAlgebra<UsablePath>);

}  // namespace cpr
