#include "algebra/policy_parser.hpp"

#include "algebra/finite_algebra.hpp"
#include "algebra/lex_product.hpp"
#include "algebra/more_algebras.hpp"
#include "algebra/primitives.hpp"
#include "algebra/subalgebra.hpp"
#include "bgp/bgp_algebra.hpp"

#include <cctype>
#include <optional>

namespace cpr {
namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  void skip_spaces() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_spaces();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  std::string identifier() {
    skip_spaces();
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '-' || text[pos] == '_')) {
      ++pos;
    }
    if (pos == start) {
      throw PolicyParseError("expected a policy name", pos);
    }
    return text.substr(start, pos - start);
  }

  std::optional<std::uint64_t> try_integer() {
    skip_spaces();
    if (pos >= text.size() ||
        !std::isdigit(static_cast<unsigned char>(text[pos]))) {
      return std::nullopt;
    }
    std::uint64_t v = 0;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      v = v * 10 + static_cast<std::uint64_t>(text[pos] - '0');
      ++pos;
    }
    return v;
  }

  struct Arg {
    std::optional<AnyAlgebra> policy;
    std::optional<std::uint64_t> integer;
  };

  std::vector<Arg> arguments() {
    std::vector<Arg> args;
    if (!consume('(')) return args;
    if (consume(')')) return args;
    while (true) {
      Arg a;
      if (auto v = try_integer()) {
        a.integer = v;
      } else {
        a.policy = policy();
      }
      args.push_back(std::move(a));
      if (consume(')')) break;
      if (!consume(',')) {
        throw PolicyParseError("expected ',' or ')'", pos);
      }
    }
    return args;
  }

  static std::uint64_t integer_arg(const std::vector<Arg>& args,
                                   std::size_t index, std::uint64_t fallback,
                                   std::size_t pos) {
    if (index >= args.size()) return fallback;
    if (!args[index].integer.has_value()) {
      throw PolicyParseError("expected an integer argument", pos);
    }
    return *args[index].integer;
  }

  AnyAlgebra policy() {
    const std::size_t name_pos = pos;
    const std::string name = identifier();
    const std::vector<Arg> args = arguments();
    auto expect_policies = [&](std::size_t count) {
      if (args.size() != count) {
        throw PolicyParseError(name + " expects " + std::to_string(count) +
                                   " argument(s)",
                               name_pos);
      }
    };

    if (name == "shortest") {
      return AnyAlgebra::wrap(
          ShortestPath{integer_arg(args, 0, 64, name_pos)});
    }
    if (name == "widest") {
      return AnyAlgebra::wrap(WidestPath{integer_arg(args, 0, 64, name_pos)});
    }
    if (name == "reliable") return AnyAlgebra::wrap(MostReliablePath{});
    if (name == "reliable-strict") {
      return AnyAlgebra::wrap(MostReliablePath{/*allow_one=*/false});
    }
    if (name == "usable") return AnyAlgebra::wrap(UsablePath{});
    if (name == "hops") return AnyAlgebra::wrap(HopCount{});
    if (name == "realcost") return AnyAlgebra::wrap(RealCost{});
    if (name == "bottleneck") {
      const std::uint64_t k = integer_arg(args, 0, 4, name_pos);
      if (k < 1 || k > 200) {
        throw PolicyParseError("bottleneck size out of range", name_pos);
      }
      return AnyAlgebra::wrap(FiniteAlgebra::bottleneck(k));
    }
    if (name == "b1") return AnyAlgebra::wrap(B1ProviderCustomer{});
    if (name == "b2") return AnyAlgebra::wrap(B2ValleyFree{});
    if (name == "b3") return AnyAlgebra::wrap(B3LocalPref{});
    if (name == "b4") return AnyAlgebra::wrap(B4LocalPrefShortest{});

    if (name == "lex") {
      expect_policies(2);
      if (!args[0].policy || !args[1].policy) {
        throw PolicyParseError("lex expects two policies", name_pos);
      }
      return AnyAlgebra::wrap(lex_product(*args[0].policy, *args[1].policy));
    }
    if (name == "capped") {
      expect_policies(2);
      if (!args[0].policy || !args[1].integer) {
        throw PolicyParseError("capped expects (policy, integer-budget)",
                               name_pos);
      }
      const AnyAlgebra inner = *args[0].policy;
      return AnyAlgebra::wrap(CappedAlgebra<AnyAlgebra>(
          inner, inner.weight_from_integer(*args[1].integer)));
    }
    throw PolicyParseError("unknown policy '" + name + "'", name_pos);
  }
};

}  // namespace

AnyAlgebra parse_policy(const std::string& expression) {
  Parser p{expression};
  AnyAlgebra result = p.policy();
  p.skip_spaces();
  if (p.pos != expression.size()) {
    throw PolicyParseError("trailing input", p.pos);
  }
  return result;
}

std::vector<std::string> policy_vocabulary() {
  return {"shortest[(maxw)]", "widest[(maxw)]", "reliable",
          "reliable-strict", "usable",          "hops",
          "realcost",         "bottleneck(k)",  "b1",
          "b2",               "b3",             "b4",
          "lex(p,q)",         "capped(p,budget)"};
}

}  // namespace cpr
