#include "algebra/finite_algebra.hpp"

#include "algebra/property_check.hpp"

#include <numeric>

namespace cpr {

FiniteAlgebra FiniteAlgebra::bottleneck(std::size_t k, std::string label) {
  std::vector<Weight> rank(k);
  std::iota(rank.begin(), rank.end(), Weight{0});
  std::vector<Weight> table(k * k);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b) {
      table[a * k + b] = static_cast<Weight>(std::max(a, b));
    }
  }
  FiniteAlgebra alg(std::move(table), std::move(rank), std::move(label));
  AlgebraProperties p;
  p.monotone = true;
  p.isotone = true;
  p.selective = true;
  p.delimited = true;
  alg.set_claimed_properties(p);
  return alg;
}

FiniteAlgebra random_finite_algebra(std::size_t k, double phi_probability,
                                    Rng& rng) {
  using Weight = FiniteAlgebra::Weight;
  std::vector<Weight> rank(k);
  std::iota(rank.begin(), rank.end(), Weight{0});
  std::vector<Weight> table(k * k, 0);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a; b < k; ++b) {
      Weight v;
      if (rng.coin(phi_probability)) {
        v = static_cast<Weight>(k);  // φ entry
      } else {
        v = static_cast<Weight>(rng.index(k));
      }
      table[a * k + b] = v;
      table[b * k + a] = v;  // impose commutativity
    }
  }
  return FiniteAlgebra(std::move(table), std::move(rank),
                       "random-finite-" + std::to_string(k));
}

namespace {

using Weight = FiniteAlgebra::Weight;

// Additive table over semantic values 1..k, entries beyond `cap` collapse
// to φ (cap >= 2k makes it plain saturating addition, i.e. delimited up
// to the table edge — we saturate at the top weight instead of φ there).
std::vector<Weight> additive_table(std::size_t k, std::size_t cap) {
  std::vector<Weight> table(k * k);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b) {
      const std::size_t sum = (a + 1) + (b + 1);
      if (sum > cap) {
        table[a * k + b] = static_cast<Weight>(k);  // φ
      } else {
        table[a * k + b] =
            static_cast<Weight>(std::min(sum - 1, k - 1));  // saturate
      }
    }
  }
  return table;
}

std::vector<Weight> identity_rank(std::size_t k) {
  std::vector<Weight> rank(k);
  std::iota(rank.begin(), rank.end(), Weight{0});
  return rank;
}

}  // namespace

FiniteAlgebra random_structured_algebra(Rng& rng) {
  const std::size_t kind = rng.index(4);
  switch (kind) {
    case 0: {  // bottleneck: selective family
      const std::size_t k = 2 + rng.index(5);
      return FiniteAlgebra::bottleneck(k, "structured-bottleneck-" +
                                              std::to_string(k));
    }
    case 1: {  // saturating addition: strictly monotone... except at the
               // saturation plateau, where w_top ⊕ w = w_top (weakly
               // monotone like R at weight 1)
      const std::size_t k = 2 + rng.index(5);
      return FiniteAlgebra(additive_table(k, 2 * k + 2), identity_rank(k),
                           "structured-additive-" + std::to_string(k));
    }
    case 2: {  // capped addition: non-delimited, strictly monotone.
               // The cap must stay within the representable range — a
               // saturation plateau *below* the cap would erase the true
               // sum and break associativity.
      const std::size_t k = 3 + rng.index(5);
      const std::size_t cap = 3 + rng.index(k - 2);
      return FiniteAlgebra(additive_table(k, cap), identity_rank(k),
                           "structured-capped-" + std::to_string(k));
    }
    default: {  // flattened lexicographic product: additive × bottleneck
      const std::size_t k1 = 2 + rng.index(2);
      const std::size_t k2 = 2 + rng.index(2);
      const auto t1 = additive_table(k1, 2 * k1 + 2);
      const FiniteAlgebra b = FiniteAlgebra::bottleneck(k2);
      const std::size_t k = k1 * k2;
      std::vector<Weight> table(k * k);
      for (std::size_t a = 0; a < k; ++a) {
        for (std::size_t c = 0; c < k; ++c) {
          const std::size_t a1 = a / k2, a2 = a % k2;
          const std::size_t c1 = c / k2, c2 = c % k2;
          const Weight first = t1[a1 * k1 + c1];
          if (first >= k1) {
            table[a * k + c] = static_cast<Weight>(k);  // φ in a factor
          } else {
            const Weight second =
                b.combine(static_cast<Weight>(a2), static_cast<Weight>(c2));
            table[a * k + c] = static_cast<Weight>(first * k2 + second);
          }
        }
      }
      return FiniteAlgebra(std::move(table), identity_rank(k),
                           "structured-product-" + std::to_string(k1) + "x" +
                               std::to_string(k2));
    }
  }
}

FiniteClassification classify(const FiniteAlgebra& alg) {
  std::vector<FiniteAlgebra::Weight> all(alg.size());
  std::iota(all.begin(), all.end(), FiniteAlgebra::Weight{0});
  const PropertyReport r = check_properties(alg, all);
  FiniteClassification c;
  c.associative = r.associative;
  c.commutative = r.commutative;
  c.observed.monotone = r.monotone;
  c.observed.isotone = r.isotone;
  c.observed.strictly_monotone = r.strictly_monotone;
  c.observed.selective = r.selective;
  c.observed.cancellative = r.cancellative;
  c.observed.condensed = r.condensed;
  c.observed.delimited = r.delimited;
  return c;
}

}  // namespace cpr
