// A tiny policy-expression language over the algebra library — the
// runtime face of the metarouting idea the paper builds on (policies as
// algebraic expressions over primitives and composition operators).
//
//   policy  := name | name '(' arg (',' arg)* ')'
//   arg     := policy | integer
//
// Primitives:
//   shortest[(maxw)]   S  = (N, ∞, +, ≤)
//   widest[(maxw)]     W  = (N, 0, min, ≥)
//   reliable           R  = ((0,1], 0, *, ≥)
//   reliable-strict    the (0,1) subalgebra of R (Lemma 2's witness)
//   usable             U  = ({1}, 0, *, ≥)
//   hops               unit-weight shortest path
//   realcost           additive real cost
//   bottleneck(k)      finite bottleneck algebra on k weights
//   b1 | b2 | b3 | b4  the Section-5 BGP algebras
//
// Operators:
//   lex(p, q)          lexicographic product p × q (Proposition 1 rules)
//   capped(p, budget)  CappedAlgebra: compositions worse than `budget`
//                      become φ (budget is an integer literal interpreted
//                      in p's weight type)
//
// Examples: "lex(shortest, widest)" is widest-shortest path;
// "capped(shortest, 50)" is bounded-delay routing.
#pragma once

#include "algebra/any_algebra.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace cpr {

struct PolicyParseError : std::runtime_error {
  PolicyParseError(const std::string& message, std::size_t position)
      : std::runtime_error(message + " (at offset " +
                           std::to_string(position) + ")"),
        offset(position) {}
  std::size_t offset;
};

AnyAlgebra parse_policy(const std::string& expression);

// The primitive and operator names the parser accepts (for help output).
std::vector<std::string> policy_vocabulary();

}  // namespace cpr
