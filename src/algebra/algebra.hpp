// Routing algebras (Section 2.1 of the paper).
//
// A routing algebra A = (W, φ, ⊕, ⪯) is a totally ordered commutative
// semigroup with a compatible infinity element φ: ⊕ composes weights along
// a path and ⪯ expresses preference (smaller-is-preferred). We model an
// algebra as a small value type satisfying the RoutingAlgebra concept:
//
//   - Weight       : value type of abstract weights; φ is representable
//                    inside Weight (the paper keeps φ ∉ W; our property
//                    checker and samplers only draw finite weights, which
//                    restores the distinction).
//   - combine(a,b) : a ⊕ b, with absorptivity combine(w, φ) = φ.
//   - less(a,b)    : strict preference a ≺ b; a total order up to
//                    order-equality (!less(a,b) && !less(b,a)).
//   - phi(), is_phi: the infinity element and its test.
//   - sample(rng)  : a random *finite* weight, for property checking.
//   - encoded_bits : honest serialized size of a weight.
//   - properties() : the statically known property flags (Definition 1 and
//                    the M/I/SM/S/N/C/D list), which the empirical checker
//                    in property_check.hpp validates against samples.
//
// Section 5 weakens algebras to right-associative, possibly non-commutative
// semigroups (BGP). Those set `right_associative_only`; path weights are
// always folded destination→source (a right fold), which coincides with any
// other order for the commutative associative algebras of Sections 2–4.
#pragma once

#include "util/random.hpp"

#include <concepts>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace cpr {

// Property flags from Definition 1 and Section 2.1. `regular()` is the
// paper's "well-behaved" class: monotone + isotone.
struct AlgebraProperties {
  bool monotone = false;            // M : w1 ⪯ w2 ⊕ w1
  bool isotone = false;             // I : w1 ⪯ w2 ⇒ w3⊕w1 ⪯ w3⊕w2
  bool strictly_monotone = false;   // SM: w1 ≺ w2 ⊕ w1
  bool selective = false;           // S : w1 ⊕ w2 ∈ {w1, w2}
  bool cancellative = false;        // N : w1⊕w2 = w1⊕w3 ⇒ w2 = w3
  bool condensed = false;           // C : w1⊕w2 = w1⊕w3 (∀)
  bool delimited = false;           // D : w1 ⊕ w2 ≠ φ
  // Lemma 2 applies as soon as *some* delimited strictly monotone
  // subalgebra exists (e.g. most-reliable-path's ((0,1),0,*,≥)).
  bool sm_subalgebra = false;
  // Section 5: only right-associativity is guaranteed; commutativity and
  // full associativity may fail (BGP algebras).
  bool right_associative_only = false;

  bool regular() const { return monotone && isotone; }
  // Theorem 2 / Lemma 2 trigger: delimited + strictly monotone (sub)algebra.
  bool incompressible_by_thm2() const {
    return delimited && (strictly_monotone || sm_subalgebra);
  }
  // Theorem 1 trigger: selective (hence delimited) + monotone.
  bool compressible_by_thm1() const { return selective && monotone; }
};

template <typename A>
concept RoutingAlgebra = requires(const A a, const typename A::Weight w,
                                  Rng& rng) {
  typename A::Weight;
  { a.combine(w, w) } -> std::same_as<typename A::Weight>;
  { a.less(w, w) } -> std::same_as<bool>;
  { a.phi() } -> std::same_as<typename A::Weight>;
  { a.is_phi(w) } -> std::same_as<bool>;
  { a.sample(rng) } -> std::same_as<typename A::Weight>;
  { a.encoded_bits(w) } -> std::convertible_to<std::size_t>;
  { a.name() } -> std::convertible_to<std::string>;
  { a.properties() } -> std::same_as<AlgebraProperties>;
  { a.to_string(w) } -> std::convertible_to<std::string>;
};

// Optional order embedding: the algebra additionally maps each weight to a
// 64-bit key with
//     less(a, b)  ⟺  order_key(a) < order_key(b)
// and weight_from_order_key inverting the map exactly (bit-identical
// round trip) on every weight the caller may compare — δ-delimited scalar
// orders (Table 1's shortest/widest/reliable/usable) all embed this way.
// Dijkstra exploits it to pack its whole settle-order key into one flat
// integer (routing/indexed_heap.hpp); algebras without an embedding (lex
// products, erased policies) take the generic comparator path instead.
template <typename A>
concept OrderKeyedAlgebra =
    RoutingAlgebra<A> &&
    requires(const A a, const typename A::Weight w, std::uint64_t k) {
      { a.order_key(w) } -> std::same_as<std::uint64_t>;
      { a.weight_from_order_key(k) } -> std::same_as<typename A::Weight>;
    };

// ---- Order helpers (all in terms of the strict relation `less`) ----

template <RoutingAlgebra A>
bool order_equal(const A& a, const typename A::Weight& x,
                 const typename A::Weight& y) {
  return !a.less(x, y) && !a.less(y, x);
}

template <RoutingAlgebra A>
bool leq(const A& a, const typename A::Weight& x,
         const typename A::Weight& y) {
  return !a.less(y, x);
}

template <RoutingAlgebra A>
typename A::Weight min_weight(const A& a, const typename A::Weight& x,
                              const typename A::Weight& y) {
  return a.less(y, x) ? y : x;
}

// ---- Path composition ----

// Folds a source→destination sequence of edge/arc weights right-to-left,
// matching the paper's path-vector convention (Section 5); equal to any
// fold order for commutative associative algebras. Empty sequences have no
// weight in a semigroup (no identity), so at least one weight is required.
template <RoutingAlgebra A>
typename A::Weight path_weight(const A& a,
                               const std::vector<typename A::Weight>& ws) {
  typename A::Weight acc = ws.back();
  for (std::size_t i = ws.size() - 1; i-- > 0;) {
    acc = a.combine(ws[i], acc);
  }
  return acc;
}

// w^k = w ⊕ w ⊕ ... ⊕ w (k times, k >= 1) — Definition 3's power.
template <RoutingAlgebra A>
typename A::Weight power(const A& a, const typename A::Weight& w,
                         std::size_t k) {
  typename A::Weight acc = w;
  for (std::size_t i = 1; i < k; ++i) acc = a.combine(acc, w);
  return acc;
}

// Algebraic stretch of an achieved weight against the preferred weight:
// the smallest k <= k_max with achieved ⪯ preferred^k (Definition 3), or
// nullopt if no such k exists within the cap (e.g. achieved = φ while
// preferred ≺ φ, the pathology Section 4.1 warns about for non-delimited
// algebras).
template <RoutingAlgebra A>
std::optional<std::size_t> algebraic_stretch(
    const A& a, const typename A::Weight& preferred,
    const typename A::Weight& achieved, std::size_t k_max = 16) {
  typename A::Weight pow = preferred;
  for (std::size_t k = 1; k <= k_max; ++k) {
    if (leq(a, achieved, pow)) return k;
    pow = a.combine(pow, preferred);
  }
  return std::nullopt;
}

}  // namespace cpr
