// Strongly connected valley-free components (Theorem 7).
//
// Neglecting peer arcs, the provider relation under A2 is a DAG; each node
// picks a *preferred provider* (its first provider arc) and following that
// choice up the hierarchy reaches a unique root. The resulting provider
// trees are the components the Theorem-7 scheme routes in: inside a
// component any two nodes are bidirectionally connected by the
// up-to-root/down-from-root valley-free path, and under A1+A2 the roots of
// distinct components are joined by a full peer mesh.
#pragma once

#include "bgp/as_topology.hpp"

#include <vector>

namespace cpr {

struct SvfcDecomposition {
  // Preferred provider per node (kInvalidNode at roots) and the arc used.
  std::vector<NodeId> preferred_provider;
  std::vector<ArcId> provider_arc;
  // Component index per node; component k's root is component_root[k].
  std::vector<NodeId> component;
  std::vector<NodeId> component_root;

  std::size_t component_count() const { return component_root.size(); }
};

// Requires A2 (the preferred-provider chains must terminate). Throws if a
// provider cycle is hit.
SvfcDecomposition decompose_svfc(const AsTopology& topo);

// True if every pair of distinct component roots is joined by a peer arc
// (the full-mesh premise the Theorem-7 scheme relies on).
bool roots_fully_peered(const AsTopology& topo, const SvfcDecomposition& d);

}  // namespace cpr
