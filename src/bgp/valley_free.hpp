// Direct valley-free route computation.
//
// A traversable path under Tables 2/3 has the shape up*·peer?·down*
// (provider arcs, at most one peer arc, customer arcs), and its weight is
// its first arc label. This module computes, per destination t, each
// node's best reachability class with a specialized three-phase reverse
// BFS — the scalable cross-check for the generic path-vector solver and
// the route source for the BGP table schemes:
//
//   kDown   — reaches t via customer (down) arcs only; weight c.
//   kPeer   — one peer arc followed by a down-only path; weight r.
//   kUp     — at least one provider arc first; weight p.
//
// Under B3's local preference (c ≺ r ≺ p) the class *is* the preferred
// weight; under B1/B2 every class is equally preferred and the class
// order merely fixes a deterministic choice. Next hops follow class-
// monotone level-decreasing steps, so hop-by-hop forwarding is loop-free
// and every forwarded path is valley-free by construction.
#pragma once

#include "bgp/as_topology.hpp"

#include <cstddef>
#include <vector>

namespace cpr {

enum class ValleyFreeClass : std::uint8_t {
  kSelf,
  kDown,
  kPeer,
  kUp,
  kUnreachable,
};

struct ValleyFreeReachability {
  NodeId destination = kInvalidNode;
  std::vector<ValleyFreeClass> klass;
  std::vector<NodeId> next_hop;       // kInvalidNode at t / unreachable
  std::vector<std::size_t> hops;      // length of the realized path

  // The realized s→t path (empty when unreachable).
  std::vector<NodeId> extract_path(NodeId s) const;

  // The algebra weight of s's best route (phi when unreachable).
  BgpLabel weight(NodeId s) const {
    switch (klass[s]) {
      case ValleyFreeClass::kDown: return BgpLabel::kCustomer;
      case ValleyFreeClass::kPeer: return BgpLabel::kPeer;
      case ValleyFreeClass::kUp: return BgpLabel::kProvider;
      default: return BgpLabel::kPhi;
    }
  }
};

ValleyFreeReachability valley_free_reachability(const AsTopology& topo,
                                                NodeId destination);

}  // namespace cpr
