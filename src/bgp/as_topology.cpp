#include "bgp/as_topology.hpp"

#include "bgp/valley_free.hpp"
#include "graph/algorithms.hpp"

#include <algorithm>
#include <stdexcept>

namespace cpr {

std::vector<NodeId> AsTopology::roots() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    bool has_provider = false;
    for (ArcId a : graph.out_arcs(v)) {
      if (relation[a] == Relationship::kProvider) {
        has_provider = true;
        break;
      }
    }
    if (!has_provider) out.push_back(v);
  }
  return out;
}

ArcMap<BgpLabel> AsTopology::labels() const {
  ArcMap<BgpLabel> w(relation.size());
  for (std::size_t a = 0; a < relation.size(); ++a) {
    switch (relation[a]) {
      case Relationship::kCustomer: w[a] = BgpLabel::kCustomer; break;
      case Relationship::kPeer: w[a] = BgpLabel::kPeer; break;
      case Relationship::kProvider: w[a] = BgpLabel::kProvider; break;
    }
  }
  return w;
}

namespace {

// Adds the arc pair for "customer → provider" and records both labels.
void add_provider_link(AsTopology& topo, NodeId customer, NodeId provider) {
  topo.graph.add_arc_pair(customer, provider);
  topo.relation.push_back(Relationship::kProvider);  // customer → provider
  topo.relation.push_back(Relationship::kCustomer);  // provider → customer
}

void add_peer_link(AsTopology& topo, NodeId a, NodeId b) {
  topo.graph.add_arc_pair(a, b);
  topo.relation.push_back(Relationship::kPeer);
  topo.relation.push_back(Relationship::kPeer);
}

}  // namespace

AsTopology generate_as_topology(const AsTopologyOptions& opt, Rng& rng) {
  if (opt.nodes == 0) throw std::invalid_argument("as topology: nodes >= 1");
  const std::size_t tier1 = std::max<std::size_t>(
      1, std::min(opt.tier1, opt.nodes));
  AsTopology topo;
  topo.graph = Digraph(opt.nodes);

  // Tier-1 full peer mesh (Theorem 7's "roots connected in a full peer
  // mesh"); a single root needs no mesh.
  for (NodeId a = 0; a + 1 < tier1; ++a) {
    for (NodeId b = a + 1; b < tier1; ++b) add_peer_link(topo, a, b);
  }

  // Every later node multihomes to 1..max_providers earlier nodes, so the
  // provider relation points strictly backwards — A2 by construction.
  for (NodeId v = static_cast<NodeId>(tier1); v < opt.nodes; ++v) {
    const std::size_t want =
        1 + rng.index(std::max<std::size_t>(opt.max_providers, 1));
    std::vector<NodeId> providers;
    for (std::size_t i = 0; i < want && providers.size() < v; ++i) {
      const NodeId cand = static_cast<NodeId>(rng.index(v));
      if (std::find(providers.begin(), providers.end(), cand) ==
          providers.end()) {
        providers.push_back(cand);
      }
    }
    if (providers.empty()) providers.push_back(0);
    for (NodeId p : providers) add_provider_link(topo, v, p);
  }

  // Optional lateral peering between non-root nodes.
  if (opt.extra_peer_prob > 0) {
    for (NodeId a = static_cast<NodeId>(tier1); a < opt.nodes; ++a) {
      for (NodeId b = a + 1; b < opt.nodes; ++b) {
        if (rng.coin(opt.extra_peer_prob) && !topo.graph.has_arc(a, b)) {
          add_peer_link(topo, a, b);
        }
      }
    }
  }

  if (opt.violate_a2 && opt.nodes >= 3) {
    // Deliberate provider cycle among three fresh nodes on top of the
    // hierarchy (only for the negative tests).
    const NodeId x = topo.graph.add_node();
    const NodeId y = topo.graph.add_node();
    const NodeId z = topo.graph.add_node();
    add_provider_link(topo, x, y);
    add_provider_link(topo, y, z);
    add_provider_link(topo, z, x);
    add_provider_link(topo, x, 0);  // keep the cycle attached
  }
  return topo;
}

bool satisfies_a2_no_provider_loops(const AsTopology& topo) {
  const auto succ = [&](NodeId u) {
    std::vector<NodeId> out;
    for (ArcId a : topo.graph.out_arcs(u)) {
      if (topo.relation[a] == Relationship::kProvider) {
        out.push_back(topo.graph.arc(a).to);
      }
    }
    return out;
  };
  return topological_order(topo.graph.node_count(), succ).has_value();
}

bool satisfies_a1_global_reachability(const AsTopology& topo) {
  const std::size_t n = topo.graph.node_count();
  for (NodeId t = 0; t < n; ++t) {
    const ValleyFreeReachability r = valley_free_reachability(topo, t);
    for (NodeId s = 0; s < n; ++s) {
      if (s != t && r.klass[s] == ValleyFreeClass::kUnreachable) return false;
    }
  }
  return true;
}

}  // namespace cpr
