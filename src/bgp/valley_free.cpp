#include "bgp/valley_free.hpp"

#include <deque>
#include <queue>

namespace cpr {

std::vector<NodeId> ValleyFreeReachability::extract_path(NodeId s) const {
  std::vector<NodeId> p;
  if (klass[s] == ValleyFreeClass::kUnreachable) return p;
  NodeId x = s;
  p.push_back(x);
  while (x != destination) {
    x = next_hop[x];
    if (x == kInvalidNode || p.size() > klass.size() + 1) return {};
    p.push_back(x);
  }
  return p;
}

ValleyFreeReachability valley_free_reachability(const AsTopology& topo,
                                                NodeId destination) {
  const Digraph& g = topo.graph;
  const std::size_t n = g.node_count();
  ValleyFreeReachability r;
  r.destination = destination;
  r.klass.assign(n, ValleyFreeClass::kUnreachable);
  r.next_hop.assign(n, kInvalidNode);
  r.hops.assign(n, 0);
  r.klass[destination] = ValleyFreeClass::kSelf;

  // Reverse-expansion helpers. An arc (u,v) has label X from u's viewpoint
  // exactly when the paired reverse arc (v,u) has the mirrored label, so
  // expanding "who can step onto v with label X" walks v's out-arcs:
  //   who reaches v with a customer (down) arc  = v's providers,
  //   who reaches v with a peer arc             = v's peers,
  //   who reaches v with a provider (up) arc    = v's customers.
  auto expand = [&](NodeId v, Relationship reverse_label, auto&& visit) {
    for (ArcId a : g.out_arcs(v)) {
      if (topo.relation[a] == reverse_label) visit(g.arc(a).to);
    }
  };

  // Phase 1 — kDown: all-customer paths to t (weight c). Plain BFS.
  std::deque<NodeId> queue{destination};
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    expand(v, Relationship::kProvider, [&](NodeId u) {
      if (r.klass[u] != ValleyFreeClass::kUnreachable) return;
      r.klass[u] = ValleyFreeClass::kDown;
      r.next_hop[u] = v;
      r.hops[u] = r.hops[v] + 1;
      queue.push_back(u);
    });
  }

  // Phase 2 — kPeer: one peer arc onto a down node or t (weight r).
  for (NodeId v = 0; v < n; ++v) {
    if (r.klass[v] != ValleyFreeClass::kDown &&
        r.klass[v] != ValleyFreeClass::kSelf) {
      continue;
    }
    expand(v, Relationship::kPeer, [&](NodeId u) {
      const std::size_t cand_hops = r.hops[v] + 1;
      const bool better = r.klass[u] == ValleyFreeClass::kUnreachable ||
                          (r.klass[u] == ValleyFreeClass::kPeer &&
                           cand_hops < r.hops[u]);
      if (better) {
        r.klass[u] = ValleyFreeClass::kPeer;
        r.next_hop[u] = v;
        r.hops[u] = cand_hops;
      }
    });
  }

  // Phase 3 — kUp: a provider arc onto anything already reachable
  // (weight p). Multi-source shortest-hop expansion; up-chains may pass
  // through other kUp nodes.
  using Entry = std::pair<std::size_t, NodeId>;  // (hops, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  for (NodeId v = 0; v < n; ++v) {
    if (r.klass[v] != ValleyFreeClass::kUnreachable) pq.push({r.hops[v], v});
  }
  while (!pq.empty()) {
    const auto [h, v] = pq.top();
    pq.pop();
    if (h != r.hops[v] && r.klass[v] != ValleyFreeClass::kUnreachable) {
      continue;  // stale
    }
    expand(v, Relationship::kCustomer, [&](NodeId u) {
      if (r.klass[u] != ValleyFreeClass::kUnreachable) return;
      r.klass[u] = ValleyFreeClass::kUp;
      r.next_hop[u] = v;
      r.hops[u] = h + 1;
      pq.push({r.hops[u], u});
    });
  }
  return r;
}

}  // namespace cpr
