// The BGP routing algebras of Section 5.
//
// Inter-domain policies are modeled on a symmetric digraph whose arcs are
// labeled by business relationships: arc (u,v) carries
//   p  — v is u's provider  (the packet crosses a provider link "up"),
//   c  — v is u's customer  (the packet goes "down"),
//   r  — u and v are peers,
// with w(i,j) = p ⇔ w(j,i) = c and w(i,j) = r ⇔ w(j,i) = r.
//
// The algebras are only right-associative (path weights compose from the
// destination toward the source, like a path-vector protocol) and not
// commutative; the RoutingAlgebra concept still fits, with the
// right_associative_only flag telling the property checker not to expect
// commutativity/associativity and solvers to use the path-vector engine.
//
//   B1 (provider-customer): weights {c,p}, Table 2 composition
//       (c⊕c = c, c⊕p = φ, p⊕c = p, p⊕p = p), all traversable paths
//       equally preferred. Monotone; neither delimited nor regular.
//   B2 (valley-free): weights {c,r,p}, Table 3 composition (a single peer
//       edge is allowed at the top of the path), equal preference.
//   B3 (local-pref): Table 3 composition, customer routes strictly
//       preferred: c ≺ r ≺ p (an instance of the paper's c ≺ r ⪯ p).
//   B4 = B3 × S (local-pref then path length), built with LexProduct.
//
// A handy structural fact the computations exploit (and the tests pin):
// the weight of any traversable path under Tables 2/3 equals its *first*
// arc label — c⊕ only absorbs c's, r⊕ only c's, p⊕ absorbs everything.
#pragma once

#include "algebra/algebra.hpp"
#include "algebra/lex_product.hpp"
#include "algebra/primitives.hpp"

#include <array>
#include <cstdint>
#include <string>

namespace cpr {

enum class BgpLabel : std::uint8_t { kCustomer = 0, kPeer = 1, kProvider = 2, kPhi = 3 };

inline const char* to_cstr(BgpLabel w) {
  switch (w) {
    case BgpLabel::kCustomer: return "c";
    case BgpLabel::kPeer: return "r";
    case BgpLabel::kProvider: return "p";
    case BgpLabel::kPhi: return "phi";
  }
  return "?";
}

// Shared implementation: the two composition tables differ only in
// whether the peer label exists; preference is parameterized.
template <bool kWithPeers, bool kLocalPref>
class BgpAlgebraT {
 public:
  using Weight = BgpLabel;

  Weight combine(Weight a, Weight b) const {
    if (a == BgpLabel::kPhi || b == BgpLabel::kPhi) return BgpLabel::kPhi;
    // Tables 2 and 3: row = first label (nearer the source).
    switch (a) {
      case BgpLabel::kCustomer:
        return b == BgpLabel::kCustomer ? BgpLabel::kCustomer
                                        : BgpLabel::kPhi;
      case BgpLabel::kPeer:
        return b == BgpLabel::kCustomer ? BgpLabel::kPeer : BgpLabel::kPhi;
      case BgpLabel::kProvider:
        return BgpLabel::kProvider;
      case BgpLabel::kPhi:
        break;
    }
    return BgpLabel::kPhi;
  }

  bool less(Weight a, Weight b) const {
    if (a == b) return false;
    if (b == BgpLabel::kPhi) return true;   // every finite weight ≺ φ
    if (a == BgpLabel::kPhi) return false;
    if constexpr (kLocalPref) {
      return static_cast<int>(a) < static_cast<int>(b);  // c ≺ r ≺ p
    } else {
      return false;  // c = r = p: all traversable paths equally preferred
    }
  }

  Weight phi() const { return BgpLabel::kPhi; }
  bool is_phi(Weight w) const { return w == BgpLabel::kPhi; }

  Weight sample(Rng& rng) const {
    if constexpr (kWithPeers) {
      static constexpr std::array<BgpLabel, 3> kAll = {
          BgpLabel::kCustomer, BgpLabel::kPeer, BgpLabel::kProvider};
      return kAll[rng.index(kAll.size())];
    } else {
      return rng.coin(0.5) ? BgpLabel::kCustomer : BgpLabel::kProvider;
    }
  }

  std::size_t encoded_bits(Weight) const { return 2; }

  std::string name() const {
    if constexpr (!kWithPeers) return "B1 provider-customer";
    return kLocalPref ? "B3 local-pref" : "B2 valley-free";
  }
  std::string to_string(Weight w) const { return to_cstr(w); }

  AlgebraProperties properties() const {
    AlgebraProperties p;
    p.monotone = true;  // prepending never improves a path's weight
    p.right_associative_only = true;
    return p;
  }
};

using B1ProviderCustomer = BgpAlgebraT<false, false>;
using B2ValleyFree = BgpAlgebraT<true, false>;
using B3LocalPref = BgpAlgebraT<true, true>;
using B4LocalPrefShortest = LexProduct<B3LocalPref, ShortestPath>;

static_assert(RoutingAlgebra<B1ProviderCustomer>);
static_assert(RoutingAlgebra<B2ValleyFree>);
static_assert(RoutingAlgebra<B3LocalPref>);
static_assert(RoutingAlgebra<B4LocalPrefShortest>);

}  // namespace cpr
