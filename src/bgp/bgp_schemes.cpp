#include "bgp/bgp_schemes.hpp"

#include "util/bitstream.hpp"

#include <stdexcept>

namespace cpr {

namespace {

// Arc pairs are appended together, so the shadow edge of arc a is a/2.
EdgeId shadow_edge_of_arc(ArcId a) { return a / 2; }

}  // namespace

ProviderTreeScheme::ProviderTreeScheme(const AsTopology& topo) {
  const SvfcDecomposition d = decompose_svfc(topo);
  if (d.component_count() != 1) {
    throw std::invalid_argument(
        "ProviderTreeScheme: expected a single root (Theorem 6 premises)");
  }
  shadow_ = std::make_unique<Graph>(topo.graph.undirected_shadow());
  std::vector<EdgeId> tree_edges;
  tree_edges.reserve(shadow_->node_count() - 1);
  for (NodeId v = 0; v < shadow_->node_count(); ++v) {
    if (d.provider_arc[v] != kInvalidArc) {
      tree_edges.push_back(shadow_edge_of_arc(d.provider_arc[v]));
    }
  }
  router_ = std::make_unique<TreeRouter>(*shadow_, tree_edges,
                                         d.component_root[0]);
}

SvfcPeerMeshScheme::SvfcPeerMeshScheme(const AsTopology& topo)
    : decomposition_(decompose_svfc(topo)) {
  if (!roots_fully_peered(topo, decomposition_)) {
    throw std::invalid_argument(
        "SvfcPeerMeshScheme: roots are not fully peered (Theorem 7 premises)");
  }
  shadow_ = std::make_unique<Graph>(topo.graph.undirected_shadow());
  const std::size_t n = shadow_->node_count();
  const std::size_t k = decomposition_.component_count();

  // Per-component subgraphs over the preferred-provider tree edges.
  local_id_.assign(n, kInvalidNode);
  global_id_.assign(k, {});
  for (NodeId v = 0; v < n; ++v) {
    const NodeId comp = decomposition_.component[v];
    local_id_[v] = static_cast<NodeId>(global_id_[comp].size());
    global_id_[comp].push_back(v);
  }
  component_graphs_.resize(k);
  component_routers_.resize(k);
  for (std::size_t comp = 0; comp < k; ++comp) {
    auto sub = std::make_unique<Graph>(global_id_[comp].size());
    std::vector<EdgeId> tree_edges;
    for (NodeId v : global_id_[comp]) {
      if (decomposition_.preferred_provider[v] == kInvalidNode) continue;
      tree_edges.push_back(sub->add_edge(
          local_id_[v], local_id_[decomposition_.preferred_provider[v]]));
    }
    const NodeId local_root = local_id_[decomposition_.component_root[comp]];
    component_routers_[comp] =
        std::make_unique<TreeRouter>(*sub, tree_edges, local_root);
    component_graphs_[comp] = std::move(sub);
  }
}

SvfcPeerMeshScheme::Header SvfcPeerMeshScheme::make_header(
    NodeId target) const {
  Header h;
  h.target_component = decomposition_.component[target];
  h.tree = component_routers_[h.target_component]->make_header(
      local_id_[target]);
  return h;
}

Decision SvfcPeerMeshScheme::forward(NodeId u, Header& h) const {
  const NodeId comp_u = decomposition_.component[u];
  const Graph& sub = *component_graphs_[comp_u];
  const TreeRouter& router = *component_routers_[comp_u];
  const NodeId local_u = local_id_[u];

  if (comp_u == h.target_component) {
    const Decision d = router.forward(local_u, h.tree);
    if (d.deliver) return d;
    if (d.port == kInvalidPort) return d;
    const NodeId next = global_id_[comp_u][sub.neighbor(local_u, d.port)];
    return Decision::via(shadow_->port_to(u, next));
  }

  // Foreign component: climb to my root, then cross the peer mesh. The
  // root's preorder number is 0, so a zero header climbs the tree without
  // any per-destination state.
  if (decomposition_.component_root[comp_u] == u) {
    const NodeId peer_root =
        decomposition_.component_root[h.target_component];
    return Decision::via(shadow_->port_to(u, peer_root));
  }
  TreeRouter::Header climb;  // target_dfs = 0 → toward the root
  const Decision d = router.forward(local_u, climb);
  if (d.deliver || d.port == kInvalidPort) {
    return Decision::via(kInvalidPort);
  }
  const NodeId next = global_id_[comp_u][sub.neighbor(local_u, d.port)];
  return Decision::via(shadow_->port_to(u, next));
}

std::size_t SvfcPeerMeshScheme::local_memory_bits(NodeId u) const {
  const NodeId comp = decomposition_.component[u];
  BitWriter bits;
  bits.write_bounded(comp, decomposition_.component_count());
  const bool is_root = decomposition_.component_root[comp] == u;
  bits.write_bit(is_root);
  if (is_root) {
    // The mesh port rule is index-arithmetic; the root only stores its own
    // mesh index.
    bits.write_bounded(comp, decomposition_.component_count());
  }
  return bits.bit_count() +
         component_routers_[comp]->local_memory_bits(local_id_[u]);
}

std::size_t SvfcPeerMeshScheme::label_bits(NodeId v) const {
  const NodeId comp = decomposition_.component[v];
  return bits_for_universe(decomposition_.component_count()) +
         component_routers_[comp]->label_bits(local_id_[v]);
}

DestinationTableScheme bgp_destination_tables(const AsTopology& topo,
                                              const Graph& shadow) {
  const std::size_t n = shadow.node_count();
  std::vector<std::vector<NodeId>> next_hop(n,
                                            std::vector<NodeId>(n, kInvalidNode));
  for (NodeId t = 0; t < n; ++t) {
    const ValleyFreeReachability r = valley_free_reachability(topo, t);
    for (NodeId u = 0; u < n; ++u) {
      if (u != t) next_hop[t][u] = r.next_hop[u];
    }
  }
  return DestinationTableScheme(shadow, std::move(next_hop));
}

}  // namespace cpr
