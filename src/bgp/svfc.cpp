#include "bgp/svfc.hpp"

#include <stdexcept>

namespace cpr {

SvfcDecomposition decompose_svfc(const AsTopology& topo) {
  const Digraph& g = topo.graph;
  const std::size_t n = g.node_count();
  SvfcDecomposition d;
  d.preferred_provider.assign(n, kInvalidNode);
  d.provider_arc.assign(n, kInvalidArc);
  d.component.assign(n, kInvalidNode);

  for (NodeId v = 0; v < n; ++v) {
    for (ArcId a : g.out_arcs(v)) {
      if (topo.relation[a] == Relationship::kProvider) {
        d.preferred_provider[v] = g.arc(a).to;
        d.provider_arc[v] = a;
        break;  // first provider arc = preferred provider
      }
    }
  }

  // Follow preferred-provider chains to the root; path-compress as we go.
  for (NodeId v = 0; v < n; ++v) {
    if (d.component[v] != kInvalidNode) continue;
    std::vector<NodeId> chain;
    NodeId x = v;
    while (d.component[x] == kInvalidNode &&
           d.preferred_provider[x] != kInvalidNode) {
      chain.push_back(x);
      x = d.preferred_provider[x];
      if (chain.size() > n) {
        throw std::runtime_error("decompose_svfc: provider cycle (A2 fails)");
      }
    }
    NodeId comp;
    if (d.component[x] != kInvalidNode) {
      comp = d.component[x];
    } else {
      comp = static_cast<NodeId>(d.component_root.size());
      d.component_root.push_back(x);
      d.component[x] = comp;
    }
    for (NodeId y : chain) d.component[y] = comp;
  }
  return d;
}

bool roots_fully_peered(const AsTopology& topo, const SvfcDecomposition& d) {
  for (std::size_t i = 0; i + 1 < d.component_root.size(); ++i) {
    for (std::size_t j = i + 1; j < d.component_root.size(); ++j) {
      const ArcId a =
          topo.graph.find_arc(d.component_root[i], d.component_root[j]);
      if (a == kInvalidArc || topo.relation[a] != Relationship::kPeer) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace cpr
