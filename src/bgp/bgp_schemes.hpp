// Compact routing schemes for the BGP algebras (Theorems 6 and 7), plus
// the baseline destination-table scheme built from exact valley-free
// routes.
//
// All three schemes run on the *undirected shadow* of the AS digraph (one
// edge per symmetric arc pair, identical adjacency), which is what the
// hop-by-hop simulator drives; validity of the traversed paths is always
// re-checked against the directed arc labels by the tests/benches.
//
// ProviderTreeScheme — Theorem 6. Under A1+A2 the provider DAG has a
// unique root; picking one preferred provider per node yields a spanning
// tree whose up-then-down paths are traversable (weight p or c), i.e. the
// topology reduces to the usable-path algebra U on the provider tree.
// Routing over that tree with the O(log n)-bit TreeRouter realizes the
// compressibility claim.
//
// SvfcPeerMeshScheme — Theorem 7. With peers, preferred-provider chains
// partition the nodes into provider trees (SVFCs); the roots form a full
// peer mesh under the theorem's premises. In-component packets use the
// component's tree router; cross-component packets climb to the local
// root, take one peer edge to the target component's root (the port is
// derivable from component indices — no per-destination state), and
// descend the target tree. Every such path is up*·peer?·down*, hence
// valley-free, and per-node state stays O(log n) bits.
#pragma once

#include "bgp/as_topology.hpp"
#include "bgp/svfc.hpp"
#include "bgp/valley_free.hpp"
#include "scheme/dest_table.hpp"
#include "scheme/scheme.hpp"
#include "scheme/tree_router.hpp"

#include <memory>
#include <vector>

namespace cpr {

class ProviderTreeScheme {
 public:
  using Header = TreeRouter::Header;

  // Requires a single-root topology satisfying A1+A2; throws otherwise.
  explicit ProviderTreeScheme(const AsTopology& topo);

  Header make_header(NodeId target) const { return router_->make_header(target); }
  Decision forward(NodeId u, Header& h) const { return router_->forward(u, h); }
  std::size_t local_memory_bits(NodeId u) const {
    return router_->local_memory_bits(u);
  }
  std::size_t label_bits(NodeId v) const { return router_->label_bits(v); }

  const Graph& shadow() const { return *shadow_; }
  const TreeRouter& router() const { return *router_; }

 private:
  std::unique_ptr<Graph> shadow_;
  std::unique_ptr<TreeRouter> router_;
};

class SvfcPeerMeshScheme {
 public:
  struct Header {
    NodeId target_component = kInvalidNode;
    TreeRouter::Header tree;  // label within the target component
    bool operator==(const Header&) const = default;
  };

  // Requires A2 and fully peered roots; throws otherwise.
  explicit SvfcPeerMeshScheme(const AsTopology& topo);

  Header make_header(NodeId target) const;
  Decision forward(NodeId u, Header& h) const;
  std::size_t local_memory_bits(NodeId u) const;
  std::size_t label_bits(NodeId v) const;

  const Graph& shadow() const { return *shadow_; }
  std::size_t component_count() const { return decomposition_.component_count(); }

  // Construction products exposed for the kMesh compile adapter
  // (fib/compile.cpp), which resolves every local tree port into the
  // shadow graph at compile time.
  const SvfcDecomposition& decomposition() const { return decomposition_; }
  const Graph& component_graph(std::size_t comp) const {
    return *component_graphs_[comp];
  }
  const TreeRouter& component_router(std::size_t comp) const {
    return *component_routers_[comp];
  }
  NodeId local_id(NodeId v) const { return local_id_[v]; }
  NodeId global_id(std::size_t comp, NodeId local) const {
    return global_id_[comp][local];
  }

 private:
  std::unique_ptr<Graph> shadow_;
  SvfcDecomposition decomposition_;
  std::vector<std::unique_ptr<Graph>> component_graphs_;
  std::vector<std::unique_ptr<TreeRouter>> component_routers_;
  std::vector<NodeId> local_id_;                  // global -> local
  std::vector<std::vector<NodeId>> global_id_;    // (comp, local) -> global
};

static_assert(CompactRoutingScheme<ProviderTreeScheme>);
static_assert(CompactRoutingScheme<SvfcPeerMeshScheme>);

// Baseline: destination tables over the shadow graph with next hops from
// the exact valley-free solver (class-preferred under B3's local-pref,
// deterministic under B1/B2). The shadow graph must outlive the scheme.
DestinationTableScheme bgp_destination_tables(const AsTopology& topo,
                                              const Graph& shadow);

}  // namespace cpr
