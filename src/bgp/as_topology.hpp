// Synthetic AS-level topologies with business relationships.
//
// The paper's Section-5 theorems are statements about relationship
// structure, not about any concrete Internet measurement, so we substitute
// a Gao–Rexford-style hierarchy generator whose knobs control exactly the
// assumptions the theorems depend on:
//
//   A1 (global reachability): every pair is connected by a traversable
//      (valley-free) path — guaranteed by attaching every non-root to at
//      least one provider and keeping the roots in a full peer mesh
//      (or having a single root).
//   A2 (no provider loops): provider arcs always point from a later node
//      to an earlier one, so the provider digraph is a DAG by
//      construction. A `violate_a2` knob adds a deliberate p-cycle for the
//      negative tests.
//
// Relationships are stored per arc: arc (u,v) labeled kProvider means v is
// u's provider; the paired reverse arc automatically carries kCustomer,
// and peer pairs carry kPeer both ways.
#pragma once

#include "bgp/bgp_algebra.hpp"
#include "graph/digraph.hpp"
#include "util/random.hpp"

#include <vector>

namespace cpr {

enum class Relationship : std::uint8_t { kCustomer, kPeer, kProvider };

struct AsTopology {
  Digraph graph;
  ArcMap<Relationship> relation;  // per arc, from the arc's tail viewpoint

  // Nodes with no provider (no out-arc labeled kProvider).
  std::vector<NodeId> roots() const;

  // Arc labels as weights of a BGP algebra (kPeer maps to BgpLabel::kPeer;
  // topologies fed to B1 must be generated without peers).
  ArcMap<BgpLabel> labels() const;
};

struct AsTopologyOptions {
  std::size_t nodes = 64;
  std::size_t tier1 = 1;          // number of roots (full peer mesh)
  std::size_t max_providers = 2;  // multihoming degree for non-roots
  double extra_peer_prob = 0.0;   // chance of adding lateral peer links
  bool violate_a2 = false;        // add a provider cycle (negative tests)
};

AsTopology generate_as_topology(const AsTopologyOptions& opt, Rng& rng);

// Assumption checkers (Theorems 6–8 are conditioned on these).
bool satisfies_a2_no_provider_loops(const AsTopology& topo);
bool satisfies_a1_global_reachability(const AsTopology& topo);

}  // namespace cpr
