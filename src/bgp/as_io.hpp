// AS-relationship serialization in the CAIDA as-rel line format:
//
//   # comment lines start with '#'
//   <provider-as>|<customer-as>|-1     provider-to-customer link
//   <peer-as>|<peer-as>|0              peer-to-peer link
//
// This is the de-facto interchange format for inferred AS relationships
// (Gao's inference work the paper cites publishes in it), so topologies
// generated here can be eyeballed with standard tooling and measured
// datasets can be loaded for the BGP experiments. Node ids are dense
// 0-based indices; an optional remapping is applied on load so sparse AS
// numbers from real datasets fit the Digraph.
#pragma once

#include "bgp/as_topology.hpp"

#include <iosfwd>
#include <map>

namespace cpr {

void write_as_rel(const AsTopology& topo, std::ostream& out);

struct AsRelLoadResult {
  AsTopology topology;
  // original AS number -> dense node id
  std::map<std::uint64_t, NodeId> id_of_asn;
};

AsRelLoadResult read_as_rel(std::istream& in);

}  // namespace cpr
