// AS-relationship serialization in the CAIDA as-rel line format:
//
//   # comment lines start with '#'
//   <provider-as>|<customer-as>|-1          provider-to-customer link
//   <peer-as>|<peer-as>|0                   peer-to-peer link
//   <as>|<as>|<rel>|<source>                serial-2 variant (4th field
//                                           names the inference source and
//                                           is ignored)
//
// This is the de-facto interchange format for inferred AS relationships
// (Gao's inference work the paper cites publishes in it), so topologies
// generated here can be eyeballed with standard tooling and measured
// datasets can be loaded for the BGP experiments — and, through
// as_rel_underlay below, for the Internet-scale Cowen construction sweeps
// (docs/internet_scale.md). Node ids are dense 0-based indices; an
// optional remapping is applied on load so sparse AS numbers from real
// datasets fit the Digraph.
//
// The reader is strict about structure and lenient about formatting:
// CRLF line endings and surrounding whitespace are tolerated, exact
// duplicate lines are skipped, but malformed lines, non-numeric fields,
// unknown relationship codes, self-loops and conflicting relationships
// for the same AS pair all raise std::runtime_error carrying the
// 1-based line number and the offending line text.
#pragma once

#include "bgp/as_topology.hpp"
#include "graph/graph.hpp"

#include <iosfwd>
#include <map>
#include <vector>

namespace cpr {

void write_as_rel(const AsTopology& topo, std::ostream& out);

struct AsRelLoadResult {
  AsTopology topology;
  // original AS number -> dense node id
  std::map<std::uint64_t, NodeId> id_of_asn;
};

AsRelLoadResult read_as_rel(std::istream& in);

// Reads a gzip-compressed as-rel file (the form CAIDA publishes its
// snapshots in — tests/data/ carries a checked-in excerpt). Inflates
// with zlib and delegates to read_as_rel, so parsing semantics and
// error reporting are identical to the plain-text reader. Throws
// std::runtime_error on a missing/corrupt file, or — in a build without
// zlib — unconditionally, with a message saying so; callers that can
// degrade (the fixture tests) catch and skip.
AsRelLoadResult read_as_rel_gz(const std::string& path);

// Whether this build can inflate gzipped fixtures at all.
bool as_rel_gz_supported();

// The undirected serving-plane view of a loaded AS topology: one simple
// Graph edge per AS adjacency (relationship labels dropped) plus unit
// weights, which is what CowenScheme's construction sweeps consume. The
// dense node ids match AsRelLoadResult::id_of_asn; asn_of_node inverts
// that map for reporting.
struct AsUnderlay {
  Graph graph;
  EdgeMap<std::uint32_t> unit_weights;  // 1 per edge
  std::vector<std::uint64_t> asn_of_node;
};

AsUnderlay as_rel_underlay(const AsRelLoadResult& loaded);

}  // namespace cpr
