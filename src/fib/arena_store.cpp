#include "fib/arena_store.hpp"

#include "fib/patch_channel.hpp"
#include "util/hugepage.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace cpr {
namespace fs = std::filesystem;
namespace {

constexpr char kCurrentName[] = "CURRENT";
constexpr char kArenaPrefix[] = "arena-";
constexpr char kArenaSuffix[] = ".fib";
constexpr char kSegmentSuffix[] = ".pch";
constexpr std::size_t kGenDigits = 8;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("ArenaStore: " + what + " (" +
                           std::strerror(errno) + ")");
}

std::string arena_name(std::uint64_t gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08llu%s", kArenaPrefix,
                static_cast<unsigned long long>(gen), kArenaSuffix);
  return buf;
}

std::string segment_name(std::uint64_t gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08llu%s", kArenaPrefix,
                static_cast<unsigned long long>(gen), kSegmentSuffix);
  return buf;
}

// Parses "arena-<8 digits>.fib"; returns false for anything else
// (temps, CURRENT, stray files).
bool parse_arena_name(const std::string& name, std::uint64_t* gen) {
  const std::size_t prefix = sizeof(kArenaPrefix) - 1;
  const std::size_t suffix = sizeof(kArenaSuffix) - 1;
  if (name.size() != prefix + kGenDigits + suffix) return false;
  if (name.compare(0, prefix, kArenaPrefix) != 0) return false;
  if (name.compare(prefix + kGenDigits, suffix, kArenaSuffix) != 0) {
    return false;
  }
  std::uint64_t g = 0;
  for (std::size_t i = 0; i < kGenDigits; ++i) {
    const char c = name[prefix + i];
    if (c < '0' || c > '9') return false;
    g = g * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *gen = g;
  return true;
}

// Durable whole-file write: the bytes reach the inode before we return,
// so the rename that follows can only ever expose complete content.
void write_file_sync(const fs::path& path, const void* data,
                     std::size_t bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot create " + path.string());
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < bytes) {
    const ssize_t w = ::write(fd, p + done, bytes - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail("write to " + path.string());
    }
    done += static_cast<std::size_t>(w);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync " + path.string());
  }
  ::close(fd);
}

// Makes the renames themselves durable: fsync on the directory inode.
void sync_dir(const fs::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) fail("cannot open directory " + dir.string());
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync directory " + dir.string());
  }
  ::close(fd);
}

void rename_or_fail(const fs::path& from, const fs::path& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    fail("rename " + from.string() + " -> " + to.string());
  }
}

// The arena file name CURRENT points at, or empty when absent/garbled.
std::string read_current(const fs::path& dir) {
  std::ifstream in(dir / kCurrentName);
  std::string name;
  if (!in || !std::getline(in, name)) return {};
  return name;
}

// All published generations in the directory, descending.
std::vector<std::uint64_t> scan_generations(const fs::path& dir) {
  std::vector<std::uint64_t> gens;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::uint64_t g = 0;
    if (parse_arena_name(entry.path().filename().string(), &g)) {
      gens.push_back(g);
    }
  }
  std::sort(gens.begin(), gens.end(), std::greater<>{});
  return gens;
}

}  // namespace

ServedArena::~ServedArena() {
  if (map_ != nullptr) ::munmap(map_, bytes_);
}

ArenaStore::ArenaStore(fs::path dir) : dir_(std::move(dir)) {
  fs::create_directories(dir_);
  const auto gens = scan_generations(dir_);
  if (!gens.empty()) next_generation_ = gens.front() + 1;
}

fs::path ArenaStore::arena_path(std::uint64_t gen) const {
  return dir_ / arena_name(gen);
}

std::uint64_t ArenaStore::publish(const FlatFib& fib, PublishStop stop) {
  const auto blob = fib.blob();  // refreshes any lazy checksum first
  return publish_blob(blob, stop);
}

std::uint64_t ArenaStore::publish_blob(std::span<const std::uint8_t> blob,
                                       PublishStop stop) {
  const std::uint64_t gen = next_generation_++;
  const fs::path arena = arena_path(gen);
  const fs::path temp = arena.string() + ".tmp";
  write_file_sync(temp, blob.data(), blob.size());
  if (stop == PublishStop::kBeforeRename) return gen;
  rename_or_fail(temp, arena);
  if (stop == PublishStop::kBeforeCurrent) return gen;

  // Patch-channel sidecar, after the immutable arena lands and before
  // CURRENT moves: a generation named current always has its segment in
  // place, and a crash in between leaves only an un-referenced pair the
  // next writer's stale-temp sweep / prune clears.
  if (patch_channel_) {
    const auto segment =
        patch_channel_segment_bytes(blob, gen, patch_fence_);
    const fs::path seg = segment_file(gen);
    const fs::path seg_tmp = seg.string() + ".tmp";
    write_file_sync(seg_tmp, segment.data(), segment.size());
    rename_or_fail(seg_tmp, seg);
  }

  const std::string name = arena_name(gen) + "\n";
  const fs::path current_tmp = dir_ / (std::string(kCurrentName) + ".tmp");
  write_file_sync(current_tmp, name.data(), name.size());
  rename_or_fail(current_tmp, dir_ / kCurrentName);
  sync_dir(dir_);
  return gen;
}

std::size_t ArenaStore::remove_stale_temps() {
  std::size_t removed = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".tmp") {
      if (fs::remove(entry.path(), ec)) ++removed;
    }
  }
  return removed;
}

std::size_t ArenaStore::prune(std::uint64_t keep_from) {
  const std::string current = read_current(dir_);
  std::size_t removed = 0;
  std::error_code ec;
  for (const std::uint64_t g : scan_generations(dir_)) {
    if (g >= keep_from || arena_name(g) == current) continue;
    if (fs::remove(arena_path(g), ec)) ++removed;
    // The sidecar segment dies with its arena; mapped readers keep the
    // unlinked inode alive exactly like the .fib files.
    fs::remove(segment_file(g), ec);
  }
  return removed;
}

fs::path ArenaStore::arena_file(std::uint64_t gen) const {
  return arena_path(gen);
}

fs::path ArenaStore::segment_file(std::uint64_t gen) const {
  return dir_ / segment_name(gen);
}

std::uint64_t ArenaStore::current_generation() const {
  std::uint64_t gen = 0;
  if (!parse_arena_name(read_current(dir_), &gen)) return 0;
  return gen;
}

std::vector<std::uint64_t> ArenaStore::generations() const {
  return scan_generations(dir_);
}

std::shared_ptr<const ServedArena> ArenaStore::try_open(
    std::uint64_t gen) const {
  const fs::path path = arena_path(gen);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return nullptr;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return nullptr;
  }
  const auto bytes = static_cast<std::size_t>(st.st_size);
  void* map = ::mmap(nullptr, bytes, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping outlives the descriptor
  if (map == MAP_FAILED) return nullptr;
  // Large arenas are randomly probed by every forwarded hop; ask for THP
  // backing so the probes stop paying dTLB misses. Best-effort: some
  // filesystems refuse MADV_HUGEPAGE on file maps, and serving from 4 KiB
  // pages is merely slower, so the result is ignored.
  advise_huge_pages(map, bytes);

  // Total validation against the mapped bytes — a blob that fails any
  // check (truncation, checksum, structure) is unmapped and reported
  // absent, exactly like a file that never appeared.
  std::shared_ptr<ServedArena> arena(new ServedArena());
  arena->path_ = path;
  arena->generation_ = gen;
  arena->map_ = map;
  arena->bytes_ = bytes;
  try {
    arena->fib_ = FlatFib::from_memory(map, bytes);
  } catch (const std::exception&) {
    return nullptr;  // ~ServedArena unmaps
  }
  return arena;
}

std::shared_ptr<const ServedArena> ArenaStore::current() {
  std::uint64_t want = 0;
  const std::string name = read_current(dir_);
  const bool have_current = parse_arena_name(name, &want);
  if (have_current) {
    if (cached_ && cached_->generation() == want) return cached_;
    if (auto arena = try_open(want)) {
      cached_ = std::move(arena);
      return cached_;
    }
  }
  // CURRENT missing, garbled, or naming a blob that failed validation:
  // serve the newest earlier generation that does validate.
  for (const std::uint64_t g : scan_generations(dir_)) {
    if (have_current && g == want) continue;  // already rejected
    if (cached_ && cached_->generation() == g) return cached_;
    if (auto arena = try_open(g)) {
      cached_ = std::move(arena);
      return cached_;
    }
  }
  // Nothing on disk validates; an old snapshot (whose mapping is still
  // alive regardless of what happened to the file) beats nothing.
  return cached_;
}

}  // namespace cpr
