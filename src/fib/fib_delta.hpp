// Structured churn deltas against a compiled FIB arena.
//
// The repair paths (SpanningTreeScheme::apply_event,
// CowenScheme::apply_event) know exactly which forwarding rows an event
// moved; a FibDelta carries that knowledge across the scheme → arena
// boundary so FlatFib::apply_delta can patch the compiled plane in place
// instead of recompiling it. A delta is one of three shapes:
//
//   empty      : the event provably left every compiled row unchanged
//                (non-tree edge down, rank-only reordering, clean dirty
//                scan) — the arena needs no touch at all;
//   row patches: the new bytes of every changed row, keyed by
//                (section id, row index) — Cowen table rows plus the
//                landmark / port-at-landmark label slots;
//   recompile  : the repair restructured global state (a tree swap
//                renumbers the whole DFS order; the Cowen dirty-fraction
//                fallback rebuilt everything), so patching cannot beat a
//                fresh compile_fib and the maintainer must compact.
//
// Deltas describe *rows*, not byte offsets: the arena owns its layout
// (including the per-row slack reserved at compile time), so the same
// delta applies to any arena compiled from the same scheme regardless of
// slack options, and slack exhaustion is apply_delta's verdict, not the
// emitter's.
#pragma once

#include "fib/flat_fib.hpp"

#include <cstdint>
#include <cstring>
#include <vector>

namespace cpr {

// One row rewrite: the full new payload of row `row` in section
// `section`. Variable-length rows (kCowenRows) may shrink or grow up to
// the compiled capacity; fixed-stride rows (the landmark arrays) must
// match the element size exactly.
struct FibRowPatch {
  std::uint32_t section = 0;
  std::uint32_t row = 0;
  std::vector<std::uint8_t> bytes;
};

struct FibDelta {
  // Patching cannot reproduce the repair (global renumbering or full
  // rebuild): the maintainer must fall back to a fresh compile_fib.
  bool recompile = false;
  // Distinct nodes with at least one changed row — the maintainer's
  // compaction threshold compares this against the node count.
  std::size_t touched_nodes = 0;
  std::vector<FibRowPatch> patches;

  bool empty() const { return !recompile && patches.empty(); }
};

inline FibRowPatch fib_patch_u32(std::uint32_t section, std::uint32_t row,
                                 std::uint32_t value) {
  FibRowPatch p{section, row, std::vector<std::uint8_t>(4)};
  std::memcpy(p.bytes.data(), &value, 4);
  return p;
}

inline FibRowPatch fib_patch_row_u64(std::uint32_t section, std::uint32_t row,
                                     const std::vector<std::uint64_t>& words) {
  FibRowPatch p{section, row, std::vector<std::uint8_t>(words.size() * 8)};
  std::memcpy(p.bytes.data(), words.data(), p.bytes.size());
  return p;
}

}  // namespace cpr
