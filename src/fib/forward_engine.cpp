#include "fib/forward_engine.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <stdexcept>
#include <thread>
#include <type_traits>

// TSan cannot see that the SIMD path's plain vector loads race benignly
// with apply_delta's relaxed atomic stores (the generation recheck
// discards any in-window value, and row_off — the only thing that could
// send a load out of bounds — is immutable), so under TSan the SIMD path
// is compiled out and every dispatch resolves to scalar.
#if defined(__SANITIZE_THREAD__)
#define CPR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CPR_TSAN 1
#endif
#endif
#ifndef CPR_TSAN
#define CPR_TSAN 0
#endif

#if !CPR_TSAN && defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CPR_SIMD 1
#include <immintrin.h>
#else
#define CPR_SIMD 0
#endif

namespace cpr {
namespace {

#if defined(__GNUC__) || defined(__clang__)
#define CPR_PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define CPR_PREFETCH(addr) ((void)0)
#endif

// Last entry in [begin, end) whose key is <= key, or nullptr. Rows are
// strictly increasing by key, so this is the containing-run / exact-match
// primitive for both row kinds.
inline const std::uint64_t* row_search(const std::uint64_t* begin,
                                       const std::uint64_t* end,
                                       std::uint32_t key) {
  // upper_bound on (key, max-port): everything <= key precedes it.
  const std::uint64_t probe = fib_pack_entry(key, 0xffffffffu);
  const std::uint64_t* it = std::upper_bound(begin, end, probe);
  return it == begin ? nullptr : it - 1;
}

struct StepResult {
  bool deliver = false;
  Port port = kInvalidPort;
};

// One walker per FIB kind: resolve(target) precomputes the immutable
// header once per query; step(u) is the per-hop decision, mirroring the
// object scheme's forward() exactly; prefetch(v) pulls the rows step(v)
// will read. Templating the walk over the walker keeps the hop loop free
// of any per-kind dispatch.
struct TreeWalker {
  const FlatFib::TreeView& t;
  std::uint32_t x = 0;                  // target's DFS number
  const std::uint32_t* seq = nullptr;   // target's light sequence
  std::uint32_t seq_len = 0;

  explicit TreeWalker(const FlatFib& fib) : t(fib.tree()) {}
  void resolve(NodeId target) {
    x = t.nodes[target].dfs_in;
    seq = t.label_seq + t.label_off[target];
    seq_len = t.label_off[target + 1] - t.label_off[target];
  }
  StepResult step(NodeId u) const {
    const FibTreeNode& r = t.nodes[u];
    if (x == r.dfs_in) return {true, kInvalidPort};
    if (x < r.dfs_in || x > r.dfs_out) return {false, r.port_up};
    if (x >= r.heavy_in && x <= r.heavy_out) return {false, r.heavy_port};
    const std::uint32_t idx = r.light_depth;
    const std::uint32_t lights = t.nodes[u + 1].light_off - r.light_off;
    if (idx >= seq_len || seq[idx] >= lights) return {false, kInvalidPort};
    return {false, t.light_ports[r.light_off + seq[idx]]};
  }
  void prefetch(NodeId v) const { CPR_PREFETCH(&t.nodes[v]); }
};

struct IntervalWalker {
  const FlatFib::IntervalView& t;
  std::uint32_t h = 0;

  explicit IntervalWalker(const FlatFib& fib) : t(fib.interval()) {}
  void resolve(NodeId target) { h = t.nodes[target].dfs_in; }
  StepResult step(NodeId u) const {
    const FibIntervalNode& r = t.nodes[u];
    if (h == r.dfs_in) return {true, kInvalidPort};
    if (h < r.dfs_in || h > r.dfs_out) return {false, r.parent_port};
    const std::uint32_t begin = r.child_off;
    const std::uint32_t count = t.nodes[u + 1].child_off - begin;
    if (count == 0) return {false, kInvalidPort};
    // Same last-child-with-dfs_in<=h search as the object router.
    std::uint32_t lo = 0, hi = count;
    while (lo + 1 < hi) {
      const std::uint32_t mid = (lo + hi) / 2;
      if (t.child_in[begin + mid] <= h) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return {false, t.child_port[begin + lo]};
  }
  void prefetch(NodeId v) const { CPR_PREFETCH(&t.nodes[v]); }
};

// Last live entry with key <= `key`, loaded atomically; returns false
// when the row has no such entry. Same contract as row_search. Shared by
// the Cowen walker and the TZ walker (whose keys are labels).
inline bool seq_row_search(const std::uint64_t* row, std::uint32_t len,
                           std::uint32_t key, std::uint64_t* out) {
  const std::uint64_t probe = fib_pack_entry(key, 0xffffffffu);
  std::uint32_t lo = 0, hi = len;
  while (lo < hi) {
    const std::uint32_t mid = (lo + hi) / 2;
    if (fib_seq_load_u64(row + mid) <= probe) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return false;
  *out = fib_seq_load_u64(row + lo - 1);
  return true;
}

// Cowen and TZ are the kinds apply_delta patches, so their walkers are
// the only ones that read the arena through the seqlock load helpers:
// every probe of rows / row_len / landmark / landmark_port is a relaxed
// atomic load racing benignly with a concurrent writer. A torn window
// can hand back a stale-or-new mixture of values — never out-of-bounds,
// since row_off is the immutable capacity CSR and any stored row_len is
// within it — and the generation recheck after the batch discards the
// whole result.
struct CowenWalker {
  const FlatFib::CowenView& t;
  NodeId target = kInvalidNode;
  NodeId landmark = kInvalidNode;
  Port port_at_landmark = kInvalidPort;

  explicit CowenWalker(const FlatFib& fib) : t(fib.cowen()) {}
  void resolve(NodeId tgt) {
    target = tgt;
    landmark = fib_seq_load_u32(t.landmark + tgt);
    port_at_landmark = fib_seq_load_u32(t.landmark_port + tgt);
  }
  bool search(const std::uint64_t* row, std::uint32_t len, std::uint32_t key,
              std::uint64_t* out) const {
    return seq_row_search(row, len, key, out);
  }
  StepResult step(NodeId u) const {
    if (u == target) return {true, kInvalidPort};
    // row_off[u] is the row's *capacity* base; only the live prefix
    // (row_len[u] entries) holds data, the rest is patching slack.
    const std::uint64_t* row = t.rows + t.row_off[u];
    const std::uint32_t len = fib_seq_load_u32(t.row_len + u);
    // Same precedence as CowenScheme::forward: direct entry, the
    // landmark's own hop, then the entry toward the landmark.
    std::uint64_t e;
    if (search(row, len, target, &e) && fib_entry_key(e) == target) {
      return {false, fib_entry_port(e)};
    }
    if (u == landmark) return {false, port_at_landmark};
    if (search(row, len, landmark, &e) && fib_entry_key(e) == landmark) {
      return {false, fib_entry_port(e)};
    }
    return {false, kInvalidPort};
  }
  void prefetch(NodeId v) const { CPR_PREFETCH(&t.rows[t.row_off[v]]); }
};

// Thorup–Zwick name-independent walker: the Cowen decision procedure
// lifted into label space, preceded by a per-query name resolution. The
// packet is addressed to a *name* (the external node id); resolve()
// looks the name up once in the arena's hash-partitioned dictionary to
// get the scheme-assigned target label, and every hop after that
// compares and searches labels exclusively — the deliver test is
// label_of[u] == target_label, which (labels being a bijection) fires
// exactly at the named node. This is the two-phase lookup of the label
// layer; labeled kinds skip phase one entirely because their arenas
// carry no dictionary and their keys *are* node ids. kTz arenas are
// patched like kCowen ones (label map and dictionary included), so every
// mutable-section probe goes through the seqlock load helpers.
struct TzWalker {
  const FlatFib::CowenView& t;  // rows/landmark arrays, label-keyed
  const FlatFib::TzView& z;     // label map + name dictionary
  std::uint32_t node_count = 0;
  std::uint32_t target_label = kInvalidNode;
  std::uint32_t landmark_label = kInvalidNode;
  Port port_at_landmark = kInvalidPort;

  explicit TzWalker(const FlatFib& fib)
      : t(fib.cowen()),
        z(fib.tz()),
        node_count(static_cast<std::uint32_t>(fib.node_count())) {}

  // Bucketed dictionary probe: scan the bucket's live prefix (strictly
  // increasing by name, kFibDictEmpty fill) for the name. Unknown names
  // return kInvalidNode — the walk then never delivers and drops at the
  // first router, the honest fate of an unroutable destination.
  std::uint32_t dict_resolve(std::uint32_t name) const {
    const std::uint64_t b = fib_dict_bucket(name, z.dict_bucket_count);
    const std::uint64_t* slot = z.dict + b * z.dict_bucket_cap;
    for (std::uint64_t i = 0; i < z.dict_bucket_cap; ++i) {
      const std::uint64_t e = fib_seq_load_u64(slot + i);
      if (e == kFibDictEmpty) break;  // end of the live prefix
      const std::uint32_t key = fib_entry_key(e);
      if (key == name) return fib_entry_port(e);
      if (key > name) break;  // sorted prefix: the name is not here
    }
    return kInvalidNode;
  }

  void resolve(NodeId name) {
    target_label = dict_resolve(name);
    if (target_label < node_count) {
      landmark_label = fib_seq_load_u32(t.landmark + target_label);
      port_at_landmark = fib_seq_load_u32(t.landmark_port + target_label);
    } else {
      landmark_label = kInvalidNode;
      port_at_landmark = kInvalidPort;
    }
  }
  StepResult step(NodeId u) const {
    const std::uint32_t ul = fib_seq_load_u32(z.label_of + u);
    if (ul == target_label) return {true, kInvalidPort};
    const std::uint64_t* row = t.rows + t.row_off[u];
    const std::uint32_t len = fib_seq_load_u32(t.row_len + u);
    // Same precedence as the Cowen walker, in label space: direct entry,
    // the landmark's own hop, then the entry toward the landmark. Row
    // keys are labels < n, so an invalid target/landmark label (unknown
    // name) can never match a key and the packet drops.
    std::uint64_t e;
    if (seq_row_search(row, len, target_label, &e) &&
        fib_entry_key(e) == target_label) {
      return {false, fib_entry_port(e)};
    }
    if (ul == landmark_label) return {false, port_at_landmark};
    if (seq_row_search(row, len, landmark_label, &e) &&
        fib_entry_key(e) == landmark_label) {
      return {false, fib_entry_port(e)};
    }
    return {false, kInvalidPort};
  }
  void prefetch(NodeId v) const { CPR_PREFETCH(&t.rows[t.row_off[v]]); }
};

// SVFC peer mesh (Theorem 7): in the target's component this is exactly
// the tree walker over per-component DFS numbers; in a foreign component
// the local root (preorder 0) crosses the peer mesh toward the target
// component's root, and everyone else climbs via port_up — the same
// decisions SvfcPeerMeshScheme::forward makes with its zero climb header,
// with every port already resolved into the shadow graph.
struct MeshWalker {
  const FlatFib::MeshView& t;
  std::uint32_t x = 0;                 // target's component-local DFS number
  std::uint32_t tc = 0;                // target's component
  const std::uint32_t* seq = nullptr;  // target's light sequence
  std::uint32_t seq_len = 0;

  explicit MeshWalker(const FlatFib& fib) : t(fib.mesh()) {}
  void resolve(NodeId target) {
    x = t.nodes[target].dfs_in;
    tc = t.comp[target];
    seq = t.label_seq + t.label_off[target];
    seq_len = t.label_off[target + 1] - t.label_off[target];
  }
  StepResult step(NodeId u) const {
    const FibTreeNode& r = t.nodes[u];
    const std::uint32_t cu = t.comp[u];
    if (cu != tc) {
      if (r.dfs_in == 0) {
        return {false, t.peer_port[cu * t.component_count + tc]};
      }
      return {false, r.port_up};
    }
    if (x == r.dfs_in) return {true, kInvalidPort};
    if (x < r.dfs_in || x > r.dfs_out) return {false, r.port_up};
    if (x >= r.heavy_in && x <= r.heavy_out) return {false, r.heavy_port};
    const std::uint32_t idx = r.light_depth;
    const std::uint32_t lights = t.nodes[u + 1].light_off - r.light_off;
    if (idx >= seq_len || seq[idx] >= lights) return {false, kInvalidPort};
    return {false, t.light_ports[r.light_off + seq[idx]]};
  }
  void prefetch(NodeId v) const { CPR_PREFETCH(&t.nodes[v]); }
};

struct TableWalker {
  const FlatFib::TableView& t;
  std::uint32_t label = 0;

  explicit TableWalker(const FlatFib& fib) : t(fib.table()) {}
  void resolve(NodeId target) { label = t.relabel[target]; }
  StepResult step(NodeId u) const {
    if (t.relabel[u] == label) return {true, kInvalidPort};
    const std::uint64_t* begin = t.runs + t.row_off[u];
    const std::uint64_t* end = t.runs + t.row_off[u + 1];
    const std::uint64_t* run = row_search(begin, end, label);
    if (run == nullptr) return {false, kInvalidPort};
    return {false, fib_entry_port(*run)};  // may be "no route"
  }
  void prefetch(NodeId v) const { CPR_PREFETCH(&t.runs[t.row_off[v]]); }
};

// Per-shard hot-cache telemetry: the probe verdict plus lifetime
// lookup/hit counters, flushed once per shard walk. Each worker owns
// exactly one slot, so the sums are race-free and thread-count-invariant.
struct HotCacheShardStats {
  std::uint8_t off = 0;
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
};

// Per-shard direct-mapped (node, target) -> decision cache. Safe because
// step() is a pure function of (node, target) for one arena generation:
// the cache is constructed per shard walk of one seqlock attempt and a
// generation change discards the whole attempt, so a hit can never
// resurrect a pre-patch decision. Under a skewed (Zipf) workload the hot
// targets' hop decisions collapse into ~kSlots cache lines that stay L2
// resident, replacing a row search per hop; under a uniform workload it
// is pure overhead — which is why it is opt-in and measured, not default.
struct HotDestCache {
  // 4096 slots * 16B = 64 KiB per shard: big enough that the ~hundred
  // hot (node, target) pairs of a Zipf(1.1) batch rarely collide, small
  // enough not to evict the arena's own hot rows from L2.
  static constexpr std::size_t kSlots = 4096;

  struct Entry {
    std::uint64_t key = ~std::uint64_t{0};  // unreachable: u is a valid node
    std::uint32_t port = 0;
    std::uint32_t deliver = 0;
  };
  std::vector<Entry> slots{kSlots};

  static std::uint64_t pack(NodeId u, NodeId target) {
    return (std::uint64_t{u} << 32) | target;
  }
  // Xor-fold the two 32-bit halves, then a 32-bit Fibonacci multiply,
  // top 12 bits. One 32-bit imul instead of the previous full 64-bit
  // multiply on the per-hop path; the fold keeps both node and target
  // entropy in the product, so Zipf hit rates match the 64-bit hash
  // (pinned by test_fib_simd.cpp's hit-rate floor).
  static std::size_t slot_of(std::uint64_t key) {
    const std::uint32_t folded =
        static_cast<std::uint32_t>(key >> 32) ^
        static_cast<std::uint32_t>(key);
    return (folded * 0x9e3779b9u) >> 20;  // top 12 bits: kSlots = 2^12
  }
  bool lookup(NodeId u, NodeId target, StepResult* out) const {
    const std::uint64_t key = pack(u, target);
    const Entry& e = slots[slot_of(key)];
    if (e.key != key) return false;
    out->deliver = e.deliver != 0;
    out->port = e.port;
    return true;
  }
  void insert(NodeId u, NodeId target, StepResult d) {
    const std::uint64_t key = pack(u, target);
    Entry& e = slots[slot_of(key)];
    e.key = key;
    e.port = d.port;
    e.deliver = d.deliver ? 1 : 0;
  }

  // Early hit-rate probe (kHotCacheProbeLookups): the first window of
  // step lookups votes on whether this shard's workload is skewed. A
  // cold cache misses its opening lookups no matter what, so the
  // threshold (1/8) is set well below any Zipf shard's steady-state hit
  // rate but above what a uniform shard ever reaches inside the window.
  // Once failed, active() pins false for the shard remainder and the
  // walk skips lookup+insert entirely.
  std::uint32_t probe_lookups = 0;
  std::uint32_t probe_hits = 0;
  bool enabled = true;

  // Lifetime counters over every lookup while active (probe window
  // included), aggregated per shard into FibBatchOutput.
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;

  bool active() const { return enabled; }
  void note(bool hit) {
    if (probe_lookups >= kHotCacheProbeLookups) return;
    ++probe_lookups;
    probe_hits += hit ? 1u : 0u;
    if (probe_lookups == kHotCacheProbeLookups &&
        probe_hits < kHotCacheProbeMinHits) {
      enabled = false;
    }
  }
};
static_assert(HotDestCache::kSlots == (std::size_t{1} << 12));

// kCache=false instantiations carry this instead of a HotDestCache so
// the hot serving path never pays the 64 KiB per-shard allocation+zero.
struct NoCache {};
template <bool kCache>
using ShardCache = std::conditional_t<kCache, HotDestCache, NoCache>;

// One probed step through the cache: lookup (feeding the probe), step on
// miss, insert. Falls through to a bare step once the probe has switched
// the shard's cache off.
template <typename Walker>
inline StepResult cached_step(HotDestCache& cache, const Walker& w, NodeId u,
                              NodeId target) {
  StepResult d;
  if (!cache.active()) return w.step(u);
  const bool hit = cache.lookup(u, target, &d);
  ++cache.lookups;
  cache.hits += hit ? 1u : 0u;
  cache.note(hit);
  if (!hit) {
    d = w.step(u);
    cache.insert(u, target, d);
  }
  return d;
}

// Per-shard scratch for exact loop detection without per-query clears:
// a node counts as visited when its stamp equals the current query's.
struct LoopStamps {
  std::vector<std::uint32_t> stamp;
  std::uint32_t current = 0;

  explicit LoopStamps(std::size_t n) : stamp(n, 0) {}
  void next_query() { ++current; }
  bool revisit(NodeId v) {
    if (stamp[v] == current) return true;
    stamp[v] = current;
    return false;
  }
};

template <typename Walker, bool kFailures, bool kRecord, bool kCache>
void walk_shard(const FlatFib& fib,
                std::span<const std::pair<NodeId, NodeId>> queries,
                std::span<const std::uint32_t> indices,
                const FibBatchOptions& opt, std::size_t max_hops,
                std::vector<FibRouteResult>& results,
                std::vector<NodeId>& shard_paths,
                HotCacheShardStats& cache_stats) {
  const FlatFib::TopoView& topo = fib.topo();
  Walker walker(fib);
  LoopStamps stamps(kFailures ? fib.node_count() : 0);
  ShardCache<kCache> cache;  // empty type when kCache is off
  for (const std::uint32_t qi : indices) {
    const auto [source, target] = queries[qi];
    FibRouteResult& r = results[qi];
    r.path_begin = shard_paths.size();  // shard-relative, rebased later
    if constexpr (kRecord) shard_paths.push_back(source);
    r.path_len = 1;
    if constexpr (kFailures) stamps.next_query();
    walker.resolve(target);
    NodeId current = source;
    for (std::size_t step = 0; step <= max_hops; ++step) {
      if constexpr (kFailures) {
        if (stamps.revisit(current)) {
          r.looped = 1;
          break;
        }
      }
      StepResult d;
      if constexpr (kCache) {
        d = cached_step(cache, walker, current, target);
      } else {
        d = walker.step(current);
      }
      if (d.deliver) {
        r.delivered = current == target ? 1 : 0;
        break;
      }
      if (d.port == kInvalidPort || d.port >= topo.degree(current)) break;
      const std::uint32_t slot = topo.offsets[current] + d.port;
      if constexpr (kFailures) {
        if ((*opt.edge_down)[topo.edge[slot]]) break;  // dead link: drop
      }
      current = topo.neighbor[slot];
      walker.prefetch(current);
      if constexpr (kRecord) shard_paths.push_back(current);
      ++r.path_len;
    }
  }
  if constexpr (kCache) {
    if (!cache.active()) cache_stats.off = 1;
    cache_stats.lookups += cache.lookups;
    cache_stats.hits += cache.hits;
  }
}

template <typename Walker>
void dispatch_shard(const FlatFib& fib,
                    std::span<const std::pair<NodeId, NodeId>> queries,
                    std::span<const std::uint32_t> indices,
                    const FibBatchOptions& opt, std::size_t max_hops,
                    std::vector<FibRouteResult>& results,
                    std::vector<NodeId>& shard_paths,
                    HotCacheShardStats& cache_stats) {
  const bool failures = opt.edge_down != nullptr;
  // The failures path never caches: drops and loop stamps are already the
  // slow diagnostic mode, and fewer instantiations keep the hop loop hot.
  if (failures && opt.record_paths) {
    walk_shard<Walker, true, true, false>(fib, queries, indices, opt,
                                          max_hops, results, shard_paths,
                                          cache_stats);
  } else if (failures) {
    walk_shard<Walker, true, false, false>(fib, queries, indices, opt,
                                           max_hops, results, shard_paths,
                                           cache_stats);
  } else if (opt.record_paths && opt.hot_dest_cache) {
    walk_shard<Walker, false, true, true>(fib, queries, indices, opt,
                                          max_hops, results, shard_paths,
                                          cache_stats);
  } else if (opt.record_paths) {
    walk_shard<Walker, false, true, false>(fib, queries, indices, opt,
                                           max_hops, results, shard_paths,
                                           cache_stats);
  } else if (opt.hot_dest_cache) {
    walk_shard<Walker, false, false, true>(fib, queries, indices, opt,
                                           max_hops, results, shard_paths,
                                           cache_stats);
  } else {
    walk_shard<Walker, false, false, false>(fib, queries, indices, opt,
                                            max_hops, results, shard_paths,
                                            cache_stats);
  }
}

#if CPR_SIMD

// ---- SIMD / lockstep path -------------------------------------------
//
// Only compiled on x86-64 non-TSan builds and only entered when
// fib_resolve_dispatch said the machine has AVX2, so the target("avx2")
// kernels below never execute on a machine that lacks them.

// Exact-match scan of a short sorted row, four packed entries per
// compare: shift the ports away, compare the keys against the probe in
// all lanes, and read the port out of the (unique) hit. Only full
// four-entry chunks inside the *live* length are touched — the tail and
// the zeroed slack are never loaded, so a key of 0 cannot false-match
// slack and ASan stays quiet about the last partially-filled chunk.
__attribute__((target("avx2"))) bool cowen_scan_avx2(
    const std::uint64_t* row, std::uint32_t len, std::uint32_t key,
    std::uint32_t* port_out) {
  const __m256i vkey = _mm256_set1_epi64x(static_cast<long long>(key));
  std::uint32_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    const __m256i keys = _mm256_srli_epi64(v, 32);
    const int hit = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(keys, vkey)));
    if (hit != 0) {
      *port_out = fib_entry_port(row[i + __builtin_ctz(hit)]);
      return true;
    }
  }
  for (; i < len; ++i) {
    if (fib_entry_key(row[i]) == key) {
      *port_out = fib_entry_port(row[i]);
      return true;
    }
  }
  return false;
}

// Branchless exact-match search of one row's Eytzinger mirror. The probe
// pack(key, 0) sorts before every entry with that key (ports occupy the
// low half), so the lower-bound slot is the exact match when one exists.
// The descend is one fused compare-add per level with no data-dependent
// branch; the ffs trick recovers the lower-bound's 1-based slot from the
// trail of right-turns.
inline bool cowen_eyt_search(const std::uint64_t* eyt, std::uint32_t len,
                             std::uint32_t key, std::uint32_t* port_out) {
  const std::uint64_t probe = fib_pack_entry(key, 0);
  std::uint64_t k = 1;
  while (k <= len) {
    CPR_PREFETCH(&eyt[std::min<std::uint64_t>(4 * k - 1, len - 1)]);
    k = 2 * k + (eyt[k - 1] < probe);
  }
  k >>= __builtin_ffsll(static_cast<long long>(~k));
  if (k == 0) return false;
  const std::uint64_t e = eyt[k - 1];
  if (fib_entry_key(e) != key) return false;
  *port_out = fib_entry_port(e);
  return true;
}

// Non-atomic binary search over the sorted image: the v2-blob fallback
// when no Eytzinger mirror exists. Same exact-match contract.
inline bool cowen_bsearch(const std::uint64_t* row, std::uint32_t len,
                          std::uint32_t key, std::uint32_t* port_out) {
  const std::uint64_t probe = fib_pack_entry(key, 0xffffffffu);
  std::uint32_t lo = 0, hi = len;
  while (lo < hi) {
    const std::uint32_t mid = (lo + hi) / 2;
    if (row[mid] <= probe) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0 || fib_entry_key(row[lo - 1]) != key) return false;
  *port_out = fib_entry_port(row[lo - 1]);
  return true;
}

// Cowen walker for the lockstep path: same decision procedure as
// CowenWalker (direct entry, the landmark's own hop, entry toward the
// landmark) with the row probe selected per row length — vectorized scan
// of the sorted image at or under kRowSearchLinearCutoff, branchless
// Eytzinger search of the v3 mirror above it (binary search when serving
// a v2 blob). Keys are unique per row, so every probe flavor agrees with
// the scalar walker's search bit for bit. Loads are plain (not
// atomic_ref): benign under the seqlock because row_off is immutable and
// torn values are discarded by the generation recheck; TSan builds never
// reach this type.
struct CowenSimdWalker {
  const FlatFib::CowenView& t;
  NodeId target = kInvalidNode;
  NodeId landmark = kInvalidNode;
  Port port_at_landmark = kInvalidPort;

  explicit CowenSimdWalker(const FlatFib& fib) : t(fib.cowen()) {}
  void resolve(NodeId tgt) {
    target = tgt;
    landmark = fib_seq_load_u32(t.landmark + tgt);
    port_at_landmark = fib_seq_load_u32(t.landmark_port + tgt);
  }
  bool find(std::uint32_t off, std::uint32_t len, std::uint32_t key,
            std::uint32_t* port_out) const {
    if (len <= kRowSearchLinearCutoff) {
      return cowen_scan_avx2(t.rows + off, len, key, port_out);
    }
    if (t.eyt != nullptr) {
      return cowen_eyt_search(t.eyt + off, len, key, port_out);
    }
    return cowen_bsearch(t.rows + off, len, key, port_out);
  }
  StepResult step(NodeId u) const {
    if (u == target) return {true, kInvalidPort};
    const std::uint32_t off = t.row_off[u];
    const std::uint32_t len = fib_seq_load_u32(t.row_len + u);
    std::uint32_t port;
    if (find(off, len, target, &port)) return {false, port};
    if (u == landmark) return {false, port_at_landmark};
    if (find(off, len, landmark, &port)) return {false, port};
    return {false, kInvalidPort};
  }
  void prefetch(NodeId v) const {
    const std::uint32_t off = t.row_off[v];
    CPR_PREFETCH(&t.rows[off]);
    if (t.eyt != nullptr) CPR_PREFETCH(&t.eyt[off]);
  }
};

// TZ walker for the lockstep path: TzWalker's label-space decision
// procedure with CowenSimdWalker's per-row probe selection (vectorized
// scan under the cutoff, Eytzinger mirror above it). The dictionary
// probe stays scalar — buckets average four entries, shorter than any
// vector ramp-up — and runs once per query, not per hop. Loads are plain
// for the same reason as CowenSimdWalker's: benign under the seqlock,
// discarded by the generation recheck, and TSan builds never reach this
// type.
struct TzSimdWalker {
  const FlatFib::CowenView& t;
  const FlatFib::TzView& z;
  std::uint32_t node_count = 0;
  std::uint32_t target_label = kInvalidNode;
  std::uint32_t landmark_label = kInvalidNode;
  Port port_at_landmark = kInvalidPort;

  explicit TzSimdWalker(const FlatFib& fib)
      : t(fib.cowen()),
        z(fib.tz()),
        node_count(static_cast<std::uint32_t>(fib.node_count())) {}

  std::uint32_t dict_resolve(std::uint32_t name) const {
    const std::uint64_t b = fib_dict_bucket(name, z.dict_bucket_count);
    const std::uint64_t* slot = z.dict + b * z.dict_bucket_cap;
    for (std::uint64_t i = 0; i < z.dict_bucket_cap; ++i) {
      const std::uint64_t e = slot[i];
      if (e == kFibDictEmpty) break;
      const std::uint32_t key = fib_entry_key(e);
      if (key == name) return fib_entry_port(e);
      if (key > name) break;
    }
    return kInvalidNode;
  }

  void resolve(NodeId name) {
    target_label = dict_resolve(name);
    if (target_label < node_count) {
      landmark_label = fib_seq_load_u32(t.landmark + target_label);
      port_at_landmark = fib_seq_load_u32(t.landmark_port + target_label);
    } else {
      landmark_label = kInvalidNode;
      port_at_landmark = kInvalidPort;
    }
  }
  bool find(std::uint32_t off, std::uint32_t len, std::uint32_t key,
            std::uint32_t* port_out) const {
    if (len <= kRowSearchLinearCutoff) {
      return cowen_scan_avx2(t.rows + off, len, key, port_out);
    }
    if (t.eyt != nullptr) {
      return cowen_eyt_search(t.eyt + off, len, key, port_out);
    }
    return cowen_bsearch(t.rows + off, len, key, port_out);
  }
  StepResult step(NodeId u) const {
    if (z.label_of[u] == target_label) return {true, kInvalidPort};
    const std::uint32_t off = t.row_off[u];
    const std::uint32_t len = fib_seq_load_u32(t.row_len + u);
    std::uint32_t port;
    if (find(off, len, target_label, &port)) return {false, port};
    if (z.label_of[u] == landmark_label) return {false, port_at_landmark};
    if (find(off, len, landmark_label, &port)) return {false, port};
    return {false, kInvalidPort};
  }
  void prefetch(NodeId v) const {
    const std::uint32_t off = t.row_off[v];
    CPR_PREFETCH(&t.rows[off]);
    if (t.eyt != nullptr) CPR_PREFETCH(&t.eyt[off]);
  }
};

// Lane classification out of the batched tree kernel.
inline constexpr std::uint32_t kLaneDeliver = 0;  // x == dfs_in: arrived
inline constexpr std::uint32_t kLanePort = 1;     // port[] holds the hop
inline constexpr std::uint32_t kLaneScalar = 2;   // light label: rederive

// Classifies up to eight tree-walker lanes in one shot: gather the six
// decision fields of every lane's current record, then compare the
// lane's target DFS number against the intervals in all lanes at once.
// The three vector-resolvable outcomes (deliver, climb via port_up,
// descend into the heavy child) cover almost every hop; lanes that need
// the light-label sequence fall back to the scalar step, which re-derives
// the same decision. DFS numbers are < n < 2^31, so the signed compares
// are exact.
__attribute__((target("avx2"))) void tree_step_lanes_avx2(
    const FibTreeNode* nodes, const std::uint32_t* xs, const NodeId* cur,
    const bool* active, std::size_t m, std::uint32_t* klass,
    std::uint32_t* port) {
  alignas(32) std::int32_t idx[8];
  alignas(32) std::int32_t tx[8];
  for (std::size_t i = 0; i < 8; ++i) {
    // Inactive / absent lanes gather record 0 (always mapped) and are
    // classified as kLaneScalar so nothing reads their outputs.
    // cur[i] * 8 must stay within int32: forward_batch routes graphs
    // above kSimdMaxNodeCount (2^28 nodes) to the scalar path.
    idx[i] = (i < m && active[i])
                 ? static_cast<std::int32_t>(cur[i] * 8u)
                 : 0;
    tx[i] = (i < m && active[i]) ? static_cast<std::int32_t>(xs[i]) : 0;
  }
  const auto* base = reinterpret_cast<const int*>(nodes);
  const __m256i vidx = _mm256_load_si256(reinterpret_cast<__m256i*>(idx));
  const __m256i vx = _mm256_load_si256(reinterpret_cast<__m256i*>(tx));
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i vin = _mm256_i32gather_epi32(base, vidx, 4);
  const __m256i vout =
      _mm256_i32gather_epi32(base, _mm256_add_epi32(vidx, one), 4);
  const __m256i vhin = _mm256_i32gather_epi32(
      base, _mm256_add_epi32(vidx, _mm256_set1_epi32(2)), 4);
  const __m256i vhout = _mm256_i32gather_epi32(
      base, _mm256_add_epi32(vidx, _mm256_set1_epi32(3)), 4);
  const __m256i vup = _mm256_i32gather_epi32(
      base, _mm256_add_epi32(vidx, _mm256_set1_epi32(4)), 4);
  const __m256i vhp = _mm256_i32gather_epi32(
      base, _mm256_add_epi32(vidx, _mm256_set1_epi32(5)), 4);

  const __m256i deliver = _mm256_cmpeq_epi32(vx, vin);
  const __m256i outside = _mm256_or_si256(_mm256_cmpgt_epi32(vin, vx),
                                          _mm256_cmpgt_epi32(vx, vout));
  // x in [heavy_in, heavy_out]  <=>  !(heavy_in > x) && !(x > heavy_out)
  const __m256i heavy = _mm256_andnot_si256(
      _mm256_or_si256(_mm256_cmpgt_epi32(vhin, vx),
                      _mm256_cmpgt_epi32(vx, vhout)),
      _mm256_set1_epi32(-1));

  alignas(32) std::uint32_t up_arr[8], hp_arr[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(up_arr), vup);
  _mm256_store_si256(reinterpret_cast<__m256i*>(hp_arr), vhp);
  const int dmask = _mm256_movemask_ps(_mm256_castsi256_ps(deliver));
  const int omask = _mm256_movemask_ps(_mm256_castsi256_ps(outside));
  const int hmask = _mm256_movemask_ps(_mm256_castsi256_ps(heavy));
  for (std::size_t i = 0; i < m; ++i) {
    if (!active[i]) continue;
    const int bit = 1 << i;
    if (dmask & bit) {
      klass[i] = kLaneDeliver;
    } else if (omask & bit) {
      klass[i] = kLanePort;
      port[i] = up_arr[i];
    } else if (hmask & bit) {
      klass[i] = kLanePort;
      port[i] = hp_arr[i];
    } else {
      klass[i] = kLaneScalar;  // light-label lane: scalar re-derivation
    }
  }
}

// One batched decision round over the live lanes. The generic form is a
// scalar loop — the lockstep win there is purely the eight overlapped
// load chains — with per-walker batched kernels layered on top.
template <typename Walker, bool kCache>
void step_lanes(Walker* w, const NodeId* cur, const NodeId* tgt,
                const bool* active, std::size_t m, StepResult* d,
                ShardCache<kCache>& cache) {
  for (std::size_t i = 0; i < m; ++i) {
    if (!active[i]) continue;
    if constexpr (kCache) {
      d[i] = cached_step(cache, w[i], cur[i], tgt[i]);
    } else {
      d[i] = w[i].step(cur[i]);
    }
  }
}

template <bool kCache>
void step_lanes_tree(TreeWalker* w, const NodeId* cur, const NodeId* tgt,
                     const bool* active, std::size_t m, StepResult* d,
                     ShardCache<kCache>& cache) {
  std::uint32_t xs[8];
  for (std::size_t i = 0; i < m; ++i) xs[i] = w[i].x;
  std::uint32_t klass[8] = {};
  std::uint32_t port[8] = {};
  bool live[8];
  std::size_t pending = 0;
  for (std::size_t i = 0; i < m; ++i) {
    live[i] = active[i];
    if constexpr (kCache) {
      if (live[i] && cache.active()) {
        const bool hit = cache.lookup(cur[i], tgt[i], &d[i]);
        cache.note(hit);
        if (hit) live[i] = false;
      }
    }
    pending += live[i] ? 1 : 0;
  }
  if (pending != 0) {
    tree_step_lanes_avx2(&w[0].t.nodes[0], xs, cur, live, m, klass, port);
    for (std::size_t i = 0; i < m; ++i) {
      if (!live[i]) continue;
      switch (klass[i]) {
        case kLaneDeliver:
          d[i] = {true, kInvalidPort};
          break;
        case kLanePort:
          d[i] = {false, static_cast<Port>(port[i])};
          break;
        default:
          d[i] = w[i].step(cur[i]);
          break;
      }
      if constexpr (kCache) {
        if (cache.active()) cache.insert(cur[i], tgt[i], d[i]);
      }
    }
  }
}

// Lockstep walk of one shard: groups of up to eight consecutive shard
// queries advance together, one hop per round. Results and path layout
// are bit-identical to walk_shard because lanes are flushed in shard
// query order and every lane runs the exact scalar decision procedure —
// only the interleaving (and with it the number of in-flight cache
// misses) differs. No failures mode here: edge_down batches stay scalar.
template <typename Walker, bool kRecord, bool kCache>
void walk_shard_lockstep(const FlatFib& fib,
                         std::span<const std::pair<NodeId, NodeId>> queries,
                         std::span<const std::uint32_t> indices,
                         std::size_t max_hops,
                         std::vector<FibRouteResult>& results,
                         std::vector<NodeId>& shard_paths,
                         HotCacheShardStats& cache_stats) {
  constexpr std::size_t kLanes = 8;
  const FlatFib::TopoView& topo = fib.topo();
  std::vector<Walker> w;
  w.reserve(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) w.emplace_back(fib);
  ShardCache<kCache> cache;
  std::array<std::vector<NodeId>, kLanes> lane_path;

  NodeId cur[kLanes], tgt[kLanes];
  bool active[kLanes];
  std::uint32_t plen[kLanes];
  std::uint8_t delivered[kLanes];
  StepResult d[kLanes];

  for (std::size_t g = 0; g < indices.size(); g += kLanes) {
    const std::size_t m = std::min(kLanes, indices.size() - g);
    std::size_t remaining = m;
    for (std::size_t i = 0; i < m; ++i) {
      const auto [source, target] = queries[indices[g + i]];
      cur[i] = source;
      tgt[i] = target;
      active[i] = true;
      delivered[i] = 0;
      plen[i] = 1;
      w[i].resolve(target);
      lane_path[i].clear();
      if constexpr (kRecord) lane_path[i].push_back(source);
      w[i].prefetch(source);
    }
    for (std::size_t step = 0; remaining > 0 && step <= max_hops; ++step) {
      if constexpr (std::is_same_v<Walker, TreeWalker>) {
        step_lanes_tree<kCache>(w.data(), cur, tgt, active, m, d, cache);
      } else {
        step_lanes<Walker, kCache>(w.data(), cur, tgt, active, m, d, cache);
      }
      for (std::size_t i = 0; i < m; ++i) {
        if (!active[i]) continue;
        if (d[i].deliver) {
          delivered[i] = cur[i] == tgt[i] ? 1 : 0;
          active[i] = false;
          --remaining;
          continue;
        }
        if (d[i].port == kInvalidPort || d[i].port >= topo.degree(cur[i])) {
          active[i] = false;
          --remaining;
          continue;
        }
        cur[i] = topo.neighbor[topo.offsets[cur[i]] + d[i].port];
        w[i].prefetch(cur[i]);
        if constexpr (kRecord) lane_path[i].push_back(cur[i]);
        ++plen[i];
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      FibRouteResult& r = results[indices[g + i]];
      r.path_begin = shard_paths.size();
      r.path_len = plen[i];
      r.delivered = delivered[i];
      r.looped = 0;
      if constexpr (kRecord) {
        shard_paths.insert(shard_paths.end(), lane_path[i].begin(),
                           lane_path[i].end());
      }
    }
  }
  if constexpr (kCache) {
    if (!cache.active()) cache_stats.off = 1;
    cache_stats.lookups += cache.lookups;
    cache_stats.hits += cache.hits;
  }
}

// Stats-only lockstep walk with continuous lane refill: the moment a
// lane's query retires, the next shard query is loaded into it, so the
// number of in-flight dependent-load chains stays pinned at kLanes
// instead of draining toward one on every group's tail (path lengths are
// skewed, so the grouped walk spends many rounds nearly empty). Without
// path recording the per-query outputs are written to results[qidx]
// directly and are order-independent — bit-identical to walk_shard.
// kLanes can exceed the 8-wide tree kernel; it then runs per 8-chunk.
template <typename Walker, bool kCache, std::size_t kLanes>
void walk_shard_lockstep_refill(
    const FlatFib& fib, std::span<const std::pair<NodeId, NodeId>> queries,
    std::span<const std::uint32_t> indices, std::size_t max_hops,
    std::vector<FibRouteResult>& results, std::vector<NodeId>& shard_paths,
    HotCacheShardStats& cache_stats) {
  static_assert(kLanes % 8 == 0);
  const FlatFib::TopoView& topo = fib.topo();
  std::vector<Walker> w;
  w.reserve(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) w.emplace_back(fib);
  ShardCache<kCache> cache;

  NodeId cur[kLanes], tgt[kLanes];
  std::uint32_t qidx[kLanes];
  std::uint32_t steps[kLanes];
  std::uint32_t plen[kLanes];
  bool active[kLanes] = {};
  StepResult d[kLanes];

  std::size_t filled = 0, live = 0;
  const auto load = [&](std::size_t i) {
    if (filled >= indices.size()) return;
    const std::uint32_t qi = indices[filled++];
    const auto [source, target] = queries[qi];
    qidx[i] = qi;
    cur[i] = source;
    tgt[i] = target;
    steps[i] = 0;
    plen[i] = 1;
    active[i] = true;
    ++live;
    w[i].resolve(target);
    w[i].prefetch(source);
  };
  const auto retire = [&](std::size_t i, std::uint8_t delivered) {
    FibRouteResult& r = results[qidx[i]];
    r.path_begin = shard_paths.size();  // constant: nothing is recorded
    r.path_len = plen[i];
    r.delivered = delivered;
    r.looped = 0;
    active[i] = false;
    --live;
    load(i);
  };
  for (std::size_t i = 0; i < kLanes; ++i) load(i);
  while (live > 0) {
    if constexpr (std::is_same_v<Walker, TreeWalker>) {
      for (std::size_t c = 0; c < kLanes; c += 8) {
        step_lanes_tree<kCache>(w.data() + c, cur + c, tgt + c, active + c, 8,
                                d + c, cache);
      }
    } else {
      step_lanes<Walker, kCache>(w.data(), cur, tgt, active, kLanes, d, cache);
    }
    for (std::size_t i = 0; i < kLanes; ++i) {
      if (!active[i]) continue;
      if (d[i].deliver) {
        retire(i, cur[i] == tgt[i] ? 1 : 0);
        continue;
      }
      if (d[i].port == kInvalidPort || d[i].port >= topo.degree(cur[i])) {
        retire(i, 0);
        continue;
      }
      cur[i] = topo.neighbor[topo.offsets[cur[i]] + d[i].port];
      w[i].prefetch(cur[i]);
      ++plen[i];
      // Same call budget as the scalar loop: max_hops+1 step() calls.
      if (++steps[i] > max_hops) retire(i, 0);
    }
  }
  if constexpr (kCache) {
    if (!cache.active()) cache_stats.off = 1;
    cache_stats.lookups += cache.lookups;
    cache_stats.hits += cache.hits;
  }
}

template <typename Walker>
void dispatch_shard_lockstep(const FlatFib& fib,
                             std::span<const std::pair<NodeId, NodeId>> queries,
                             std::span<const std::uint32_t> indices,
                             const FibBatchOptions& opt, std::size_t max_hops,
                             std::vector<FibRouteResult>& results,
                             std::vector<NodeId>& shard_paths,
                             HotCacheShardStats& cache_stats) {
  // Path recording needs shard_paths laid out in shard query order, so it
  // keeps the grouped walk; the stats-only serving mode takes the
  // refilling walk, which sustains full lane occupancy.
  constexpr std::size_t kRefillLanes = 16;
  if (opt.record_paths && opt.hot_dest_cache) {
    walk_shard_lockstep<Walker, true, true>(fib, queries, indices, max_hops,
                                            results, shard_paths, cache_stats);
  } else if (opt.record_paths) {
    walk_shard_lockstep<Walker, true, false>(fib, queries, indices, max_hops,
                                             results, shard_paths, cache_stats);
  } else if (opt.hot_dest_cache) {
    walk_shard_lockstep_refill<Walker, true, kRefillLanes>(
        fib, queries, indices, max_hops, results, shard_paths, cache_stats);
  } else {
    walk_shard_lockstep_refill<Walker, false, kRefillLanes>(
        fib, queries, indices, max_hops, results, shard_paths, cache_stats);
  }
}

#endif  // CPR_SIMD

}  // namespace

bool fib_simd_supported() {
#if CPR_SIMD
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

FibDispatch fib_resolve_dispatch(FibDispatch requested) {
  if (requested == FibDispatch::kScalar) return FibDispatch::kScalar;
  return fib_simd_supported() ? FibDispatch::kSimd : FibDispatch::kScalar;
}

FibDispatch fib_resolve_batch_dispatch(const FibBatchOptions& opt) {
  // Failure-mode pin: see the declaration comment. Everything else
  // resolves exactly as fib_resolve_dispatch.
  if (opt.edge_down != nullptr) return FibDispatch::kScalar;
  return fib_resolve_dispatch(opt.dispatch);
}

FibBatchOutput forward_batch(const FlatFib& fib,
                             std::span<const std::pair<NodeId, NodeId>> queries,
                             const FibBatchOptions& opt) {
  FibBatchOutput out;
  out.results.resize(queries.size());
  if (queries.empty() || fib.node_count() == 0) return out;

  const std::size_t n = fib.node_count();
  const std::size_t max_hops =
      opt.max_hops != 0 ? opt.max_hops : 4 * n + 16;

  // Bucket query indices by source shard (counting sort, stable within a
  // shard so per-shard walk order is the input order).
  const std::size_t shards = std::min(kFibShards, n);
  const auto shard_of = [&](NodeId source) {
    return static_cast<std::size_t>(
        static_cast<std::uint64_t>(source) * shards / n);
  };
  std::vector<std::uint32_t> shard_begin(shards + 1, 0);
  for (const auto& [source, target] : queries) {
    ++shard_begin[shard_of(source) + 1];
  }
  for (std::size_t s = 0; s < shards; ++s) {
    shard_begin[s + 1] += shard_begin[s];
  }
  std::vector<std::uint32_t> order(queries.size());
  {
    std::vector<std::uint32_t> cursor(shard_begin.begin(),
                                      shard_begin.end() - 1);
    for (std::uint32_t qi = 0; qi < queries.size(); ++qi) {
      order[cursor[shard_of(queries[qi].first)]++] = qi;
    }
  }

  // Resolve the hop-resolution path once per batch; failure-mode batches
  // (edge_down) are pinned scalar — see the header comment. kAuto also
  // consults the arena size: results are bit-identical either way, and
  // below kSimdAutoMinArenaBytes the walk is cache-resident, where the
  // single-chain scalar loop beats the lockstep lane overhead.
  // byte_size() — never blob() here: blob() refreshes the arena checksum,
  // a non-atomic write that must not run on the concurrent reader path.
  // The AVX2 tree kernel's 32-bit gather indices cap the node count; a
  // larger graph (beyond any current target) walks scalar, bit-identical.
  const bool simd =
      fib_resolve_batch_dispatch(opt) == FibDispatch::kSimd &&
      fib.node_count() <= kSimdMaxNodeCount &&
      (opt.dispatch != FibDispatch::kAuto ||
       fib.byte_size() >= kSimdAutoMinArenaBytes);
  // The failure-mode scalar pin is part of the engine's contract, not an
  // accident of the expression above.
  assert(opt.edge_down == nullptr || !simd);
  (void)simd;  // non-SIMD builds resolve every dispatch to scalar

  // Seqlock read side. Sample the generation, walk, issue an acquire
  // fence at the end of every shard (so each worker's data loads are
  // sequenced before its fence — the fence pairs with apply_delta's
  // release fence), then revalidate after the join. Odd entry or a
  // mismatch means a writer was active: discard everything and re-run
  // up to seqlock_max_retries times, then throw. The sharding above is a
  // pure function of the queries, so only the walk itself repeats.
  ThreadPool& pool = opt.pool ? *opt.pool : ThreadPool::global();
  std::vector<std::vector<NodeId>> shard_paths(shards);
  // Per-shard hot-cache probe verdicts and hit counters; each worker
  // writes only its own slot, summed into the output after the delivered
  // attempt.
  std::vector<HotCacheShardStats> cache_stats(shards);
  std::uint64_t gen = 0;
  for (std::size_t attempt = 0;; ++attempt) {
    gen = fib.generation();
    if ((gen & 1) == 0) {
      parallel_for(pool, 0, shards, [&](std::size_t s) {
        const std::span<const std::uint32_t> indices{
            order.data() + shard_begin[s],
            shard_begin[s + 1] - shard_begin[s]};
        if (indices.empty()) return;
#if CPR_SIMD
        if (simd) {
          switch (fib.kind()) {
            case FibKind::kTree:
              dispatch_shard_lockstep<TreeWalker>(fib, queries, indices, opt,
                                                  max_hops, out.results,
                                                  shard_paths[s],
                                                  cache_stats[s]);
              break;
            case FibKind::kInterval:
              dispatch_shard_lockstep<IntervalWalker>(fib, queries, indices,
                                                      opt, max_hops,
                                                      out.results,
                                                      shard_paths[s],
                                                      cache_stats[s]);
              break;
            case FibKind::kCowen:
              dispatch_shard_lockstep<CowenSimdWalker>(fib, queries, indices,
                                                       opt, max_hops,
                                                       out.results,
                                                       shard_paths[s],
                                                       cache_stats[s]);
              break;
            case FibKind::kTable:
              dispatch_shard_lockstep<TableWalker>(fib, queries, indices,
                                                   opt, max_hops, out.results,
                                                   shard_paths[s],
                                                   cache_stats[s]);
              break;
            case FibKind::kMesh:
              dispatch_shard_lockstep<MeshWalker>(fib, queries, indices, opt,
                                                  max_hops, out.results,
                                                  shard_paths[s],
                                                  cache_stats[s]);
              break;
            case FibKind::kTz:
              dispatch_shard_lockstep<TzSimdWalker>(fib, queries, indices,
                                                    opt, max_hops,
                                                    out.results,
                                                    shard_paths[s],
                                                    cache_stats[s]);
              break;
          }
          std::atomic_thread_fence(std::memory_order_acquire);
          return;
        }
#endif
        switch (fib.kind()) {
          case FibKind::kTree:
            dispatch_shard<TreeWalker>(fib, queries, indices, opt, max_hops,
                                       out.results, shard_paths[s],
                                       cache_stats[s]);
            break;
          case FibKind::kInterval:
            dispatch_shard<IntervalWalker>(fib, queries, indices, opt,
                                           max_hops, out.results,
                                           shard_paths[s], cache_stats[s]);
            break;
          case FibKind::kCowen:
            dispatch_shard<CowenWalker>(fib, queries, indices, opt, max_hops,
                                        out.results, shard_paths[s],
                                        cache_stats[s]);
            break;
          case FibKind::kTable:
            dispatch_shard<TableWalker>(fib, queries, indices, opt, max_hops,
                                        out.results, shard_paths[s],
                                        cache_stats[s]);
            break;
          case FibKind::kMesh:
            dispatch_shard<MeshWalker>(fib, queries, indices, opt, max_hops,
                                       out.results, shard_paths[s],
                                       cache_stats[s]);
            break;
          case FibKind::kTz:
            dispatch_shard<TzWalker>(fib, queries, indices, opt, max_hops,
                                     out.results, shard_paths[s],
                                     cache_stats[s]);
            break;
        }
        std::atomic_thread_fence(std::memory_order_acquire);
      });
      if (fib.generation() == gen) break;  // coherent snapshot
    }
    if (attempt >= opt.seqlock_max_retries) {
      throw std::runtime_error(
          (gen & 1) ? "forward_batch: FIB patch in progress"
                    : "forward_batch: FIB patched during batch");
    }
    // Discard the torn attempt entirely — partial results (a looped flag,
    // a recorded path) must never leak into the coherent re-run.
    ++out.seqlock_retries;
    std::fill(out.results.begin(), out.results.end(), FibRouteResult{});
    for (auto& p : shard_paths) p.clear();
    std::fill(cache_stats.begin(), cache_stats.end(), HotCacheShardStats{});
    std::this_thread::yield();
  }
  for (const HotCacheShardStats& cs : cache_stats) {
    out.hot_cache_disabled_shards += cs.off;
    out.hot_cache_lookups += cs.lookups;
    out.hot_cache_hits += cs.hits;
  }

  // Stitch the per-shard path buffers in shard order and rebase each
  // query's path_begin — layout depends only on the (fixed) sharding.
  if (opt.record_paths) {
    std::size_t total = 0;
    for (const auto& p : shard_paths) total += p.size();
    out.paths.reserve(total);
    std::vector<std::uint64_t> shard_base(shards, 0);
    for (std::size_t s = 0; s < shards; ++s) {
      shard_base[s] = out.paths.size();
      out.paths.insert(out.paths.end(), shard_paths[s].begin(),
                       shard_paths[s].end());
    }
    for (std::size_t s = 0; s < shards; ++s) {
      for (std::uint32_t i = shard_begin[s]; i < shard_begin[s + 1]; ++i) {
        out.results[order[i]].path_begin += shard_base[s];
      }
    }
  }
  return out;
}

}  // namespace cpr
