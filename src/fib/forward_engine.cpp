#include "fib/forward_engine.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

namespace cpr {
namespace {

#if defined(__GNUC__) || defined(__clang__)
#define CPR_PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define CPR_PREFETCH(addr) ((void)0)
#endif

// Last entry in [begin, end) whose key is <= key, or nullptr. Rows are
// strictly increasing by key, so this is the containing-run / exact-match
// primitive for both row kinds.
inline const std::uint64_t* row_search(const std::uint64_t* begin,
                                       const std::uint64_t* end,
                                       std::uint32_t key) {
  // upper_bound on (key, max-port): everything <= key precedes it.
  const std::uint64_t probe = fib_pack_entry(key, 0xffffffffu);
  const std::uint64_t* it = std::upper_bound(begin, end, probe);
  return it == begin ? nullptr : it - 1;
}

struct StepResult {
  bool deliver = false;
  Port port = kInvalidPort;
};

// One walker per FIB kind: resolve(target) precomputes the immutable
// header once per query; step(u) is the per-hop decision, mirroring the
// object scheme's forward() exactly; prefetch(v) pulls the rows step(v)
// will read. Templating the walk over the walker keeps the hop loop free
// of any per-kind dispatch.
struct TreeWalker {
  const FlatFib::TreeView& t;
  std::uint32_t x = 0;                  // target's DFS number
  const std::uint32_t* seq = nullptr;   // target's light sequence
  std::uint32_t seq_len = 0;

  explicit TreeWalker(const FlatFib& fib) : t(fib.tree()) {}
  void resolve(NodeId target) {
    x = t.nodes[target].dfs_in;
    seq = t.label_seq + t.label_off[target];
    seq_len = t.label_off[target + 1] - t.label_off[target];
  }
  StepResult step(NodeId u) const {
    const FibTreeNode& r = t.nodes[u];
    if (x == r.dfs_in) return {true, kInvalidPort};
    if (x < r.dfs_in || x > r.dfs_out) return {false, r.port_up};
    if (x >= r.heavy_in && x <= r.heavy_out) return {false, r.heavy_port};
    const std::uint32_t idx = r.light_depth;
    const std::uint32_t lights = t.nodes[u + 1].light_off - r.light_off;
    if (idx >= seq_len || seq[idx] >= lights) return {false, kInvalidPort};
    return {false, t.light_ports[r.light_off + seq[idx]]};
  }
  void prefetch(NodeId v) const { CPR_PREFETCH(&t.nodes[v]); }
};

struct IntervalWalker {
  const FlatFib::IntervalView& t;
  std::uint32_t h = 0;

  explicit IntervalWalker(const FlatFib& fib) : t(fib.interval()) {}
  void resolve(NodeId target) { h = t.nodes[target].dfs_in; }
  StepResult step(NodeId u) const {
    const FibIntervalNode& r = t.nodes[u];
    if (h == r.dfs_in) return {true, kInvalidPort};
    if (h < r.dfs_in || h > r.dfs_out) return {false, r.parent_port};
    const std::uint32_t begin = r.child_off;
    const std::uint32_t count = t.nodes[u + 1].child_off - begin;
    if (count == 0) return {false, kInvalidPort};
    // Same last-child-with-dfs_in<=h search as the object router.
    std::uint32_t lo = 0, hi = count;
    while (lo + 1 < hi) {
      const std::uint32_t mid = (lo + hi) / 2;
      if (t.child_in[begin + mid] <= h) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return {false, t.child_port[begin + lo]};
  }
  void prefetch(NodeId v) const { CPR_PREFETCH(&t.nodes[v]); }
};

// Cowen is the only kind apply_delta patches, so its walker is the only
// one that reads the arena through the seqlock load helpers: every probe
// of rows / row_len / landmark / landmark_port is a relaxed atomic load
// racing benignly with a concurrent writer. A torn window can hand back
// a stale-or-new mixture of values — never out-of-bounds, since row_off
// is the immutable capacity CSR and any stored row_len is within it —
// and the generation recheck after the batch discards the whole result.
struct CowenWalker {
  const FlatFib::CowenView& t;
  NodeId target = kInvalidNode;
  NodeId landmark = kInvalidNode;
  Port port_at_landmark = kInvalidPort;

  explicit CowenWalker(const FlatFib& fib) : t(fib.cowen()) {}
  void resolve(NodeId tgt) {
    target = tgt;
    landmark = fib_seq_load_u32(t.landmark + tgt);
    port_at_landmark = fib_seq_load_u32(t.landmark_port + tgt);
  }
  // Last live entry with key <= `key`, loaded atomically; returns false
  // when the row has no such entry. Same contract as row_search.
  bool search(const std::uint64_t* row, std::uint32_t len, std::uint32_t key,
              std::uint64_t* out) const {
    const std::uint64_t probe = fib_pack_entry(key, 0xffffffffu);
    std::uint32_t lo = 0, hi = len;
    while (lo < hi) {
      const std::uint32_t mid = (lo + hi) / 2;
      if (fib_seq_load_u64(row + mid) <= probe) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == 0) return false;
    *out = fib_seq_load_u64(row + lo - 1);
    return true;
  }
  StepResult step(NodeId u) const {
    if (u == target) return {true, kInvalidPort};
    // row_off[u] is the row's *capacity* base; only the live prefix
    // (row_len[u] entries) holds data, the rest is patching slack.
    const std::uint64_t* row = t.rows + t.row_off[u];
    const std::uint32_t len = fib_seq_load_u32(t.row_len + u);
    // Same precedence as CowenScheme::forward: direct entry, the
    // landmark's own hop, then the entry toward the landmark.
    std::uint64_t e;
    if (search(row, len, target, &e) && fib_entry_key(e) == target) {
      return {false, fib_entry_port(e)};
    }
    if (u == landmark) return {false, port_at_landmark};
    if (search(row, len, landmark, &e) && fib_entry_key(e) == landmark) {
      return {false, fib_entry_port(e)};
    }
    return {false, kInvalidPort};
  }
  void prefetch(NodeId v) const { CPR_PREFETCH(&t.rows[t.row_off[v]]); }
};

// SVFC peer mesh (Theorem 7): in the target's component this is exactly
// the tree walker over per-component DFS numbers; in a foreign component
// the local root (preorder 0) crosses the peer mesh toward the target
// component's root, and everyone else climbs via port_up — the same
// decisions SvfcPeerMeshScheme::forward makes with its zero climb header,
// with every port already resolved into the shadow graph.
struct MeshWalker {
  const FlatFib::MeshView& t;
  std::uint32_t x = 0;                 // target's component-local DFS number
  std::uint32_t tc = 0;                // target's component
  const std::uint32_t* seq = nullptr;  // target's light sequence
  std::uint32_t seq_len = 0;

  explicit MeshWalker(const FlatFib& fib) : t(fib.mesh()) {}
  void resolve(NodeId target) {
    x = t.nodes[target].dfs_in;
    tc = t.comp[target];
    seq = t.label_seq + t.label_off[target];
    seq_len = t.label_off[target + 1] - t.label_off[target];
  }
  StepResult step(NodeId u) const {
    const FibTreeNode& r = t.nodes[u];
    const std::uint32_t cu = t.comp[u];
    if (cu != tc) {
      if (r.dfs_in == 0) {
        return {false, t.peer_port[cu * t.component_count + tc]};
      }
      return {false, r.port_up};
    }
    if (x == r.dfs_in) return {true, kInvalidPort};
    if (x < r.dfs_in || x > r.dfs_out) return {false, r.port_up};
    if (x >= r.heavy_in && x <= r.heavy_out) return {false, r.heavy_port};
    const std::uint32_t idx = r.light_depth;
    const std::uint32_t lights = t.nodes[u + 1].light_off - r.light_off;
    if (idx >= seq_len || seq[idx] >= lights) return {false, kInvalidPort};
    return {false, t.light_ports[r.light_off + seq[idx]]};
  }
  void prefetch(NodeId v) const { CPR_PREFETCH(&t.nodes[v]); }
};

struct TableWalker {
  const FlatFib::TableView& t;
  std::uint32_t label = 0;

  explicit TableWalker(const FlatFib& fib) : t(fib.table()) {}
  void resolve(NodeId target) { label = t.relabel[target]; }
  StepResult step(NodeId u) const {
    if (t.relabel[u] == label) return {true, kInvalidPort};
    const std::uint64_t* begin = t.runs + t.row_off[u];
    const std::uint64_t* end = t.runs + t.row_off[u + 1];
    const std::uint64_t* run = row_search(begin, end, label);
    if (run == nullptr) return {false, kInvalidPort};
    return {false, fib_entry_port(*run)};  // may be "no route"
  }
  void prefetch(NodeId v) const { CPR_PREFETCH(&t.runs[t.row_off[v]]); }
};

// Per-shard scratch for exact loop detection without per-query clears:
// a node counts as visited when its stamp equals the current query's.
struct LoopStamps {
  std::vector<std::uint32_t> stamp;
  std::uint32_t current = 0;

  explicit LoopStamps(std::size_t n) : stamp(n, 0) {}
  void next_query() { ++current; }
  bool revisit(NodeId v) {
    if (stamp[v] == current) return true;
    stamp[v] = current;
    return false;
  }
};

template <typename Walker, bool kFailures, bool kRecord>
void walk_shard(const FlatFib& fib,
                std::span<const std::pair<NodeId, NodeId>> queries,
                std::span<const std::uint32_t> indices,
                const FibBatchOptions& opt, std::size_t max_hops,
                std::vector<FibRouteResult>& results,
                std::vector<NodeId>& shard_paths) {
  const FlatFib::TopoView& topo = fib.topo();
  Walker walker(fib);
  LoopStamps stamps(kFailures ? fib.node_count() : 0);
  for (const std::uint32_t qi : indices) {
    const auto [source, target] = queries[qi];
    FibRouteResult& r = results[qi];
    r.path_begin = shard_paths.size();  // shard-relative, rebased later
    if constexpr (kRecord) shard_paths.push_back(source);
    r.path_len = 1;
    if constexpr (kFailures) stamps.next_query();
    walker.resolve(target);
    NodeId current = source;
    for (std::size_t step = 0; step <= max_hops; ++step) {
      if constexpr (kFailures) {
        if (stamps.revisit(current)) {
          r.looped = 1;
          break;
        }
      }
      const StepResult d = walker.step(current);
      if (d.deliver) {
        r.delivered = current == target ? 1 : 0;
        break;
      }
      if (d.port == kInvalidPort || d.port >= topo.degree(current)) break;
      const std::uint32_t slot = topo.offsets[current] + d.port;
      if constexpr (kFailures) {
        if ((*opt.edge_down)[topo.edge[slot]]) break;  // dead link: drop
      }
      current = topo.neighbor[slot];
      walker.prefetch(current);
      if constexpr (kRecord) shard_paths.push_back(current);
      ++r.path_len;
    }
  }
}

template <typename Walker>
void dispatch_shard(const FlatFib& fib,
                    std::span<const std::pair<NodeId, NodeId>> queries,
                    std::span<const std::uint32_t> indices,
                    const FibBatchOptions& opt, std::size_t max_hops,
                    std::vector<FibRouteResult>& results,
                    std::vector<NodeId>& shard_paths) {
  const bool failures = opt.edge_down != nullptr;
  if (failures && opt.record_paths) {
    walk_shard<Walker, true, true>(fib, queries, indices, opt, max_hops,
                                   results, shard_paths);
  } else if (failures) {
    walk_shard<Walker, true, false>(fib, queries, indices, opt, max_hops,
                                    results, shard_paths);
  } else if (opt.record_paths) {
    walk_shard<Walker, false, true>(fib, queries, indices, opt, max_hops,
                                    results, shard_paths);
  } else {
    walk_shard<Walker, false, false>(fib, queries, indices, opt, max_hops,
                                     results, shard_paths);
  }
}

}  // namespace

FibBatchOutput forward_batch(const FlatFib& fib,
                             std::span<const std::pair<NodeId, NodeId>> queries,
                             const FibBatchOptions& opt) {
  FibBatchOutput out;
  out.results.resize(queries.size());
  if (queries.empty() || fib.node_count() == 0) return out;

  const std::size_t n = fib.node_count();
  const std::size_t max_hops =
      opt.max_hops != 0 ? opt.max_hops : 4 * n + 16;

  // Bucket query indices by source shard (counting sort, stable within a
  // shard so per-shard walk order is the input order).
  const std::size_t shards = std::min(kFibShards, n);
  const auto shard_of = [&](NodeId source) {
    return static_cast<std::size_t>(
        static_cast<std::uint64_t>(source) * shards / n);
  };
  std::vector<std::uint32_t> shard_begin(shards + 1, 0);
  for (const auto& [source, target] : queries) {
    ++shard_begin[shard_of(source) + 1];
  }
  for (std::size_t s = 0; s < shards; ++s) {
    shard_begin[s + 1] += shard_begin[s];
  }
  std::vector<std::uint32_t> order(queries.size());
  {
    std::vector<std::uint32_t> cursor(shard_begin.begin(),
                                      shard_begin.end() - 1);
    for (std::uint32_t qi = 0; qi < queries.size(); ++qi) {
      order[cursor[shard_of(queries[qi].first)]++] = qi;
    }
  }

  // Seqlock read side. Sample the generation, walk, issue an acquire
  // fence at the end of every shard (so each worker's data loads are
  // sequenced before its fence — the fence pairs with apply_delta's
  // release fence), then revalidate after the join. Odd entry or a
  // mismatch means a writer was active: discard everything and re-run
  // up to seqlock_max_retries times, then throw. The sharding above is a
  // pure function of the queries, so only the walk itself repeats.
  ThreadPool& pool = opt.pool ? *opt.pool : ThreadPool::global();
  std::vector<std::vector<NodeId>> shard_paths(shards);
  std::uint64_t gen = 0;
  for (std::size_t attempt = 0;; ++attempt) {
    gen = fib.generation();
    if ((gen & 1) == 0) {
      parallel_for(pool, 0, shards, [&](std::size_t s) {
        const std::span<const std::uint32_t> indices{
            order.data() + shard_begin[s],
            shard_begin[s + 1] - shard_begin[s]};
        if (indices.empty()) return;
        switch (fib.kind()) {
          case FibKind::kTree:
            dispatch_shard<TreeWalker>(fib, queries, indices, opt, max_hops,
                                       out.results, shard_paths[s]);
            break;
          case FibKind::kInterval:
            dispatch_shard<IntervalWalker>(fib, queries, indices, opt,
                                           max_hops, out.results,
                                           shard_paths[s]);
            break;
          case FibKind::kCowen:
            dispatch_shard<CowenWalker>(fib, queries, indices, opt, max_hops,
                                        out.results, shard_paths[s]);
            break;
          case FibKind::kTable:
            dispatch_shard<TableWalker>(fib, queries, indices, opt, max_hops,
                                        out.results, shard_paths[s]);
            break;
          case FibKind::kMesh:
            dispatch_shard<MeshWalker>(fib, queries, indices, opt, max_hops,
                                       out.results, shard_paths[s]);
            break;
        }
        std::atomic_thread_fence(std::memory_order_acquire);
      });
      if (fib.generation() == gen) break;  // coherent snapshot
    }
    if (attempt >= opt.seqlock_max_retries) {
      throw std::runtime_error(
          (gen & 1) ? "forward_batch: FIB patch in progress"
                    : "forward_batch: FIB patched during batch");
    }
    // Discard the torn attempt entirely — partial results (a looped flag,
    // a recorded path) must never leak into the coherent re-run.
    ++out.seqlock_retries;
    std::fill(out.results.begin(), out.results.end(), FibRouteResult{});
    for (auto& p : shard_paths) p.clear();
    std::this_thread::yield();
  }

  // Stitch the per-shard path buffers in shard order and rebase each
  // query's path_begin — layout depends only on the (fixed) sharding.
  if (opt.record_paths) {
    std::size_t total = 0;
    for (const auto& p : shard_paths) total += p.size();
    out.paths.reserve(total);
    std::vector<std::uint64_t> shard_base(shards, 0);
    for (std::size_t s = 0; s < shards; ++s) {
      shard_base[s] = out.paths.size();
      out.paths.insert(out.paths.end(), shard_paths[s].begin(),
                       shard_paths[s].end());
    }
    for (std::size_t s = 0; s < shards; ++s) {
      for (std::uint32_t i = shard_begin[s]; i < shard_begin[s + 1]; ++i) {
        out.results[order[i]].path_begin += shard_base[s];
      }
    }
  }
  return out;
}

}  // namespace cpr
